// api_test exercises the public façade exactly as a downstream user
// would: custom kernels over the exported ISA, the workload registry,
// the invariant checker, and the experiment session.
package gtsc_test

import (
	"bytes"
	"strings"
	"testing"

	"github.com/gtsc-sim/gtsc"
)

func apiConfig() gtsc.Config {
	cfg := gtsc.DefaultConfig()
	cfg.Mem.NumSMs = 4
	cfg.Mem.NumBanks = 2
	return cfg
}

func TestPublicAPICustomKernel(t *testing.T) {
	const base = gtsc.Addr(0x7000)
	cfg := apiConfig()
	cfg.Mem.Protocol = gtsc.ProtocolGTSC
	cfg.SM.Consistency = gtsc.RC
	rec := gtsc.NewRecorder()
	cfg.Observer = rec

	s := gtsc.NewSimulator(cfg)
	kernel := &gtsc.Kernel{
		Name: "api", CTAs: 2, WarpsPerCTA: 1, Regs: 3,
		Init: func(st *gtsc.Store) {
			for i := 0; i < 2*gtsc.WarpWidth; i++ {
				st.WriteWord(base+gtsc.Addr(i*4), uint32(i))
			}
		},
		ProgramFor: func(w *gtsc.Warp) gtsc.Program {
			own := func(t *gtsc.Thread) (gtsc.Addr, bool) {
				return base + gtsc.Addr(t.GTID*4), true
			}
			return gtsc.Seq(
				gtsc.Load(0, own),
				gtsc.ALU(func(t *gtsc.Thread) { t.Regs[0] *= 2 }, 0),
				gtsc.StoreOp(own, func(t *gtsc.Thread) uint32 { return t.Regs[0] }, 0),
				gtsc.Fence(),
				gtsc.Atomic(gtsc.AtomAdd, 1, func(t *gtsc.Thread) (gtsc.Addr, bool) {
					return base + 0x800, t.Lane == 0
				}, func(t *gtsc.Thread) uint32 { return 1 }),
			)
		},
	}
	run, err := s.Run(kernel)
	if err != nil {
		t.Fatal(err)
	}
	if run.Cycles == 0 {
		t.Fatal("no cycles")
	}
	for i := 0; i < 2*gtsc.WarpWidth; i++ {
		if got := s.ReadWord(base + gtsc.Addr(i*4)); got != uint32(2*i) {
			t.Fatalf("word %d: %d", i, got)
		}
	}
	if got := s.ReadWord(base + 0x800); got != 2 { // one atomic per warp (lane 0)
		t.Fatalf("atomic counter: %d", got)
	}
	if v := gtsc.CheckTimestampOrder(rec.Ops(), 3); len(v) > 0 {
		t.Fatalf("invariant violated: %v", v[0].Error())
	}
}

func TestPublicAPIRegistries(t *testing.T) {
	if len(gtsc.Workloads()) != 12 {
		t.Fatal("12 workloads expected")
	}
	if len(gtsc.CoherenceWorkloads()) != 6 || len(gtsc.NonCoherenceWorkloads()) != 6 {
		t.Fatal("6+6 split expected")
	}
	if len(gtsc.MicroWorkloads()) != 6 {
		t.Fatal("6 micros expected")
	}
	if _, ok := gtsc.WorkloadByName("CC"); !ok {
		t.Fatal("CC missing")
	}
	if _, ok := gtsc.MicroWorkloadByName("HIST"); !ok {
		t.Fatal("HIST missing")
	}
}

func TestPublicAPIWorkloadRun(t *testing.T) {
	cfg := apiConfig()
	cfg.Mem.Protocol = gtsc.ProtocolTC
	cfg.SM.Consistency = gtsc.SC
	wl, _ := gtsc.WorkloadByName("HS")
	run, err := wl.Build(1).Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if run.Protocol != "TC" || run.Consistency != "SC" {
		t.Fatalf("labels wrong: %s/%s", run.Protocol, run.Consistency)
	}
}

func TestPublicAPIEvaluation(t *testing.T) {
	cfg := gtsc.DefaultExperimentConfig()
	cfg.Scale = 1
	cfg.NumSMs = 4
	cfg.NumBanks = 2
	session := gtsc.NewExperimentSession(cfg)
	var buf bytes.Buffer
	if err := session.RunOne("fig12", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "G-TSC-RC") {
		t.Fatal("evaluation output incomplete")
	}
}
