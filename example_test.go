package gtsc_test

import (
	"fmt"
	"log"

	"github.com/gtsc-sim/gtsc"
)

// Running one of the paper's benchmarks under G-TSC and verifying it
// against its sequential reference.
func Example() {
	cfg := gtsc.DefaultConfig()
	cfg.Mem.Protocol = gtsc.ProtocolGTSC
	cfg.Mem.NumSMs = 4
	cfg.Mem.NumBanks = 2
	cfg.SM.Consistency = gtsc.RC

	wl, _ := gtsc.WorkloadByName("CC")
	run, err := wl.Build(1).Run(cfg) // Run verifies the fixpoint
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(run.Kernel, run.Protocol, run.Consistency, run.Cycles > 0)
	// Output: CC G-TSC RC true
}

// Building a custom kernel from the SIMT ISA: every thread doubles its
// own word.
func ExampleNewSimulator() {
	const base = gtsc.Addr(0x1000)
	cfg := gtsc.DefaultConfig()
	cfg.Mem.NumSMs = 2
	cfg.Mem.NumBanks = 2

	s := gtsc.NewSimulator(cfg)
	kernel := &gtsc.Kernel{
		Name: "double", CTAs: 2, WarpsPerCTA: 1, Regs: 2,
		Init: func(st *gtsc.Store) {
			for i := 0; i < 2*gtsc.WarpWidth; i++ {
				st.WriteWord(base+gtsc.Addr(i*4), uint32(i))
			}
		},
		ProgramFor: func(w *gtsc.Warp) gtsc.Program {
			own := func(t *gtsc.Thread) (gtsc.Addr, bool) {
				return base + gtsc.Addr(t.GTID*4), true
			}
			return gtsc.Seq(
				gtsc.Load(0, own),
				gtsc.ALU(func(t *gtsc.Thread) { t.Regs[0] *= 2 }, 0),
				gtsc.StoreOp(own, func(t *gtsc.Thread) uint32 { return t.Regs[0] }, 0),
			)
		},
	}
	if _, err := s.Run(kernel); err != nil {
		log.Fatal(err)
	}
	fmt.Println(s.ReadWord(base + 40)) // thread 10: 10*2
	// Output: 20
}

// Verifying the timestamp-ordering invariant of a run with the
// operation recorder.
func ExampleNewRecorder() {
	cfg := gtsc.DefaultConfig()
	cfg.Mem.Protocol = gtsc.ProtocolGTSC
	cfg.Mem.NumSMs = 4
	cfg.Mem.NumBanks = 2
	rec := gtsc.NewRecorder()
	cfg.Observer = rec

	wl, _ := gtsc.WorkloadByName("STN")
	if _, err := wl.Build(1).Run(cfg); err != nil {
		log.Fatal(err)
	}
	violations := gtsc.CheckTimestampOrder(rec.Ops(), 0)
	fmt.Println("ops observed:", rec.Len() > 1000, "violations:", len(violations))
	// Output: ops observed: true violations: 0
}
