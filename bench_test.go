// Benchmarks regenerating the paper's evaluation artifacts, one per
// table/figure (run with `go test -bench=. -benchmem`). Each benchmark
// executes the corresponding experiment on a reduced machine (4 SMs,
// scale 1) so the full suite completes in seconds, and reports the
// figure's headline quantity as a custom metric next to the usual
// ns/op. `cmd/gtscbench` runs the same drivers at paper scale.
package gtsc_test

import (
	"testing"

	"github.com/gtsc-sim/gtsc"
	"github.com/gtsc-sim/gtsc/internal/experiments"
)

// benchConfig is the reduced machine used by the benchmark harness.
func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Scale = 1
	cfg.NumSMs = 4
	cfg.NumBanks = 4
	return cfg
}

// BenchmarkTable2 regenerates Table II (absolute cycles of BL and TC).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(benchConfig())
		r, err := s.RunTableII()
		if err != nil {
			b.Fatal(err)
		}
		var bl, tc uint64
		for _, n := range r.Workloads {
			bl += r.BLCycles[n]
			tc += r.TCCycles[n]
		}
		b.ReportMetric(float64(bl), "BL-cycles")
		b.ReportMetric(float64(tc), "TC-cycles")
	}
}

// BenchmarkFig12 regenerates Fig 12 (performance of G-TSC/TC under
// RC/SC normalized to the no-L1 baseline) and reports the paper's
// headline: G-TSC-RC speedup over TC-RC on the coherence set.
func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(benchConfig())
		r, err := s.RunFig12()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.GTSCRCoverTCRC, "GTSC-RC/TC-RC-x")
		b.ReportMetric(r.GTSCSCoverTCRC, "GTSC-SC/TC-RC-x")
		b.ReportMetric(100*r.GTSCvsL1NCOverhead, "overhead-%")
	}
}

// BenchmarkFig13 regenerates Fig 13 (memory-delay pipeline stalls).
func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(benchConfig())
		r, err := s.RunFig13()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.TCOverGTSCSet1, "TC/GTSC-stalls-x")
	}
}

// BenchmarkFig14 regenerates Fig 14 (lease sensitivity sweep).
func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(benchConfig())
		r, err := s.RunFig14()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.MaxSpread, "max-spread-%")
	}
}

// BenchmarkFig15 regenerates Fig 15 (NoC traffic) and reports G-TSC's
// traffic reduction vs TC.
func BenchmarkFig15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(benchConfig())
		r, err := s.RunFig15()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.ReductionRC, "traffic-cut-RC-%")
		b.ReportMetric(100*r.ReductionSC, "traffic-cut-SC-%")
	}
}

// BenchmarkFig16 regenerates Fig 16 (total energy).
func BenchmarkFig16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(benchConfig())
		r, err := s.RunFig16()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.GTSCSavingVsTC, "energy-save-vs-TC-%")
	}
}

// BenchmarkFig17 regenerates Fig 17 (L1 energy in joules).
func BenchmarkFig17(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(benchConfig())
		r, err := s.RunFig17()
		if err != nil {
			b.Fatal(err)
		}
		var gtscJ float64
		for _, row := range r.Joules {
			gtscJ += row["G-TSC-RC"]
		}
		b.ReportMetric(gtscJ*1e6, "GTSC-L1-uJ")
	}
}

// BenchmarkExpiryMiss regenerates the §VI-E expiry-miss comparison.
func BenchmarkExpiryMiss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(benchConfig())
		r, err := s.RunExpiryMiss()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Reduction, "expiry-refetch-cut-%")
	}
}

// BenchmarkAblationVisibility regenerates the §V-A option-1 vs
// option-2 comparison.
func BenchmarkAblationVisibility(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(benchConfig())
		r, err := s.RunAblationVisibility()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Option2Speedup, "opt1/opt2-x")
	}
}

// BenchmarkAblationCombining regenerates the §V-B request-combining
// vs forward-all comparison.
func BenchmarkAblationCombining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(benchConfig())
		r, err := s.RunAblationCombining()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.MsgIncrease, "req-increase-%")
	}
}

// BenchmarkSimulator measures raw simulation throughput per protocol
// (simulated cycles per wall second) on the CC benchmark — the
// simulator's own performance, not the paper's.
func BenchmarkSimulator(b *testing.B) {
	for _, pc := range []struct {
		name  string
		proto gtsc.Protocol
	}{
		{"GTSC", gtsc.ProtocolGTSC},
		{"TC", gtsc.ProtocolTC},
		{"BL", gtsc.ProtocolBL},
	} {
		b.Run(pc.name, func(b *testing.B) {
			wl, _ := gtsc.WorkloadByName("CC")
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cfg := gtsc.DefaultConfig()
				cfg.Mem.Protocol = pc.proto
				cfg.Mem.NumSMs = 4
				cfg.Mem.NumBanks = 4
				run, err := wl.Build(1).Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				cycles += run.Cycles
			}
			b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simcycles/s")
		})
	}
}

// BenchmarkAblationLease regenerates the adaptive-lease extension.
func BenchmarkAblationLease(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(benchConfig())
		r, err := s.RunAblationLease()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.RenewalCut, "renewal-cut-%")
	}
}

// BenchmarkConsistencySpectrum regenerates the SC/TSO/RC comparison.
func BenchmarkConsistencySpectrum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(benchConfig())
		r, err := s.RunConsistencySpectrum()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.TSOoverSC, "TSO/SC-x")
		b.ReportMetric(r.RCoverSC, "RC/SC-x")
	}
}

// BenchmarkMicroSuite regenerates the microbenchmark characterization.
func BenchmarkMicroSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(benchConfig())
		r, err := s.RunMicroTable()
		if err != nil {
			b.Fatal(err)
		}
		fs := float64(r.Cycles["FS"]["TC-RC"]) / float64(r.Cycles["FS"]["G-TSC-RC"])
		b.ReportMetric(fs, "FS-GTSC/TC-x")
	}
}

// BenchmarkPlatformSweep regenerates the substrate sweep.
func BenchmarkPlatformSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(benchConfig())
		r, err := s.RunPlatform()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Speedup["mesh+banked"], "mesh+banked-x")
	}
}

// BenchmarkDirectoryCompare regenerates the §II-C characterization
// (invalidation-based directory vs G-TSC).
func BenchmarkDirectoryCompare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(benchConfig())
		r, err := s.RunDirectoryCompare()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.GTSCSpeedup, "GTSC/dir-x")
		b.ReportMetric(float64(r.InvsAt[32]), "invs-at-32SM")
	}
}
