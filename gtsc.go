// Package gtsc is a from-scratch reproduction of "G-TSC: Timestamp
// Based Coherence for GPUs" (Tabbakh, Qian, Annavaram — HPCA 2018): a
// cycle-approximate, execution-driven GPU simulator in pure Go, the
// G-TSC timestamp-ordering coherence protocol, the Temporal Coherence
// (TC) baseline it is evaluated against, the paper's no-L1 and
// non-coherent-L1 reference configurations, a GPUWattch-style energy
// model, twelve synthetic benchmarks mirroring the paper's suite, and
// experiment drivers that regenerate every table and figure of the
// evaluation.
//
// # Quick start
//
//	cfg := gtsc.DefaultConfig()
//	cfg.Mem.Protocol = gtsc.ProtocolGTSC
//	cfg.SM.Consistency = gtsc.RC
//	wl, _ := gtsc.WorkloadByName("CC")
//	run, err := wl.Build(1).Run(cfg)
//	if err != nil { ... }        // includes functional verification
//	fmt.Println(run)             // cycles, stalls, traffic, energy
//
// To reproduce the paper's evaluation:
//
//	session := gtsc.NewExperimentSession(gtsc.DefaultExperimentConfig())
//	session.RunAll(os.Stdout)
//
// Custom kernels are built from the small SIMT ISA in this package
// (Load/Store/Comp/ALU/Fence/Barrier) and run on any protocol; see
// examples/ for complete programs.
//
// The deeper layers remain importable for research use: the protocol
// state machines live in internal/core (G-TSC) and internal/tc (TC),
// the GPU core model in internal/gpu, and the hierarchy assembly in
// internal/memsys; this package re-exports the surface a downstream
// user needs.
package gtsc

import (
	"io"

	"github.com/gtsc-sim/gtsc/internal/check"
	"github.com/gtsc-sim/gtsc/internal/coherence"
	"github.com/gtsc-sim/gtsc/internal/experiments"
	"github.com/gtsc-sim/gtsc/internal/gpu"
	"github.com/gtsc-sim/gtsc/internal/mem"
	"github.com/gtsc-sim/gtsc/internal/memsys"
	"github.com/gtsc-sim/gtsc/internal/sim"
	"github.com/gtsc-sim/gtsc/internal/stats"
	"github.com/gtsc-sim/gtsc/internal/workload"
)

// Simulation configuration and execution.
type (
	// Config is the full configuration of one simulation (machine
	// geometry, protocol, consistency model, observer).
	Config = sim.Config
	// Simulator executes kernels over one assembled GPU.
	Simulator = sim.Simulator
	// Run holds the statistics of one kernel execution.
	Run = stats.Run
	// MemConfig describes the memory hierarchy (caches, NoC, DRAM,
	// protocol parameters).
	MemConfig = memsys.Config
	// Protocol selects the coherence configuration.
	Protocol = memsys.Protocol
	// Consistency selects the memory consistency model (SC or RC).
	Consistency = gpu.Consistency
)

// Protocols evaluated by the paper.
const (
	// ProtocolGTSC is the paper's contribution: timestamp-ordering
	// coherence (Tardis adapted to GPUs).
	ProtocolGTSC = memsys.GTSC
	// ProtocolTC is Temporal Coherence (TC-Weak under RC, TC-Strong
	// under SC, as the paper pairs them).
	ProtocolTC = memsys.TC
	// ProtocolBL disables the private L1 — the normalization baseline.
	ProtocolBL = memsys.BL
	// ProtocolL1NC is a non-coherent L1 (only for the second
	// benchmark set).
	ProtocolL1NC = memsys.L1NC
	// ProtocolDIR is a conventional invalidation-based full-map
	// directory (MESI-style) — the baseline class §II-C argues
	// against, implemented so the argument is measurable.
	ProtocolDIR = memsys.DIR
)

// Consistency models.
const (
	// SC is sequential consistency (one outstanding reference/warp).
	SC = gpu.SC
	// RC is release consistency (scoreboarded loads, fences order).
	RC = gpu.RC
	// TSO is total store order — the intermediate model (extension).
	TSO = gpu.TSO
)

// Warp schedulers.
const (
	// LRR is loose round-robin (the evaluation's default).
	LRR = gpu.LRR
	// GTO is greedy-then-oldest.
	GTO = gpu.GTO
)

// Atomic operation kinds (performed at the L2; see the Atomic
// instruction constructor).
const (
	AtomAdd = mem.AtomAdd
	AtomMin = mem.AtomMin
	AtomMax = mem.AtomMax
)

// AtomicOp is a read-modify-write operation kind.
type AtomicOp = mem.AtomicOp

// DefaultConfig returns the paper's machine: 16 SMs x 48 warps, 16KB
// L1s, 8 x 128KB L2 banks, G-TSC with RC.
func DefaultConfig() Config { return sim.DefaultConfig() }

// NewSimulator builds a simulator for cfg.
func NewSimulator(cfg Config) *Simulator { return sim.New(cfg) }

// Kernel construction: the SIMT ISA and program combinators.
type (
	// Kernel describes one grid launch.
	Kernel = gpu.Kernel
	// Instr is one kernel instruction.
	Instr = gpu.Instr
	// Thread is the per-lane SIMT context visible to address/value
	// functions.
	Thread = gpu.Thread
	// Warp is the per-warp context visible to Programs.
	Warp = gpu.Warp
	// Program generates a warp's instruction stream.
	Program = gpu.Program
	// LoopProgram iterates a body a fixed number of times.
	LoopProgram = gpu.LoopProgram
	// FuncProgram adapts a closure into a Program.
	FuncProgram = gpu.FuncProgram
	// Addr is a byte address in simulated global memory.
	Addr = mem.Addr
	// BlockAddr identifies a 128-byte cache block.
	BlockAddr = mem.BlockAddr
	// Store is the functional backing memory kernels initialize.
	Store = mem.Store
)

// WarpWidth is the SIMT width (32 threads per warp).
const WarpWidth = gpu.WarpWidth

// Instruction constructors (re-exported from the GPU core model).
var (
	Load    = gpu.Load
	StoreOp = gpu.Store
	Comp    = gpu.Comp
	ALU     = gpu.ALU
	Atomic  = gpu.Atomic
	Fence   = gpu.Fence
	Barrier = gpu.Barrier
	Seq     = gpu.Seq
)

// Workloads: the twelve-benchmark suite.
type (
	// Workload is one named benchmark with a builder and verifier.
	Workload = workload.Workload
	// WorkloadInstance is a buildable run of a workload.
	WorkloadInstance = workload.Instance
)

// Workloads returns the full suite in the paper's order.
func Workloads() []*Workload { return workload.All() }

// CoherenceWorkloads returns the six benchmarks that require coherence.
func CoherenceWorkloads() []*Workload { return workload.CoherenceSet() }

// NonCoherenceWorkloads returns the six that do not.
func NonCoherenceWorkloads() []*Workload { return workload.NonCoherenceSet() }

// WorkloadByName looks a workload up by name ("BH", "CC", ...).
func WorkloadByName(name string) (*Workload, bool) { return workload.ByName(name) }

// MicroWorkloads returns the microbenchmark registry (HIST, FS, BCAST,
// STRM, PING, PIPE) — protocol characterization kernels outside the
// paper's twelve-benchmark suite.
func MicroWorkloads() []*Workload { return workload.Micro() }

// MicroWorkloadByName looks a microbenchmark up by name.
func MicroWorkloadByName(name string) (*Workload, bool) { return workload.MicroByName(name) }

// Verification: protocol-invariant checking.
type (
	// Recorder logs every performed memory operation (plug into
	// Config.Observer).
	Recorder = check.Recorder
	// Violation describes one failed invariant check.
	Violation = check.Violation
	// Op is one observed memory operation.
	Op = coherence.Op
)

// NewRecorder returns an empty operation recorder.
func NewRecorder() *Recorder { return check.NewRecorder() }

// CheckTimestampOrder verifies G-TSC's timestamp-ordering invariant
// over a recorded run (§III-A of the paper).
func CheckTimestampOrder(ops []check.Record, max int) []Violation {
	return check.CheckTimestampOrder(ops, max)
}

// CheckPhysical verifies per-location linearizability in observation
// order (TC-Strong, BL).
func CheckPhysical(ops []check.Record, max int) []Violation {
	return check.CheckPhysical(ops, max)
}

// Experiments: the paper's evaluation.
type (
	// ExperimentConfig parameterizes an experiment session.
	ExperimentConfig = experiments.Config
	// ExperimentSession runs and caches the evaluation's simulations.
	ExperimentSession = experiments.Session
)

// DefaultExperimentConfig returns the paper-scale machine at scale 2.
func DefaultExperimentConfig() ExperimentConfig { return experiments.DefaultConfig() }

// NewExperimentSession builds a session for cfg.
func NewExperimentSession(cfg ExperimentConfig) *ExperimentSession {
	return experiments.NewSession(cfg)
}

// RunEvaluation runs every table and figure of the paper's evaluation
// at the given config, writing the report to w.
func RunEvaluation(cfg ExperimentConfig, w io.Writer) error {
	return experiments.NewSession(cfg).RunAll(w)
}
