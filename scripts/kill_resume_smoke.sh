#!/usr/bin/env bash
# Kill-and-resume smoke test, run by CI on every push.
#
# Exercises the resilience surface end to end, outside the Go test
# harness (real binaries, real signals, real files):
#
#   1. gtscsim: a single run is interrupted (-timeout), must exit 3
#      and write a checkpoint; -resume must complete it with output
#      bit-identical to an uninterrupted reference run.
#   2. gtscbench: a sweep with a journal is killed by SIGTERM, must
#      exit 3; rerunning with the same journal must replay the
#      completed simulations, finish the rest, and print the same
#      table as an uninterrupted reference sweep.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/gtscsim" ./cmd/gtscsim
go build -o "$workdir/gtscbench" ./cmd/gtscbench

fail() { echo "kill_resume_smoke: FAIL: $*" >&2; exit 1; }

echo "== gtscsim: interrupt, checkpoint, resume =="
sim_flags=(-workload CC -scale 64)

set +e
"$workdir/gtscsim" "${sim_flags[@]}" -checkpoint "$workdir/cc.ckpt" -timeout 400ms \
  >"$workdir/sim_interrupted.out" 2>&1
rc=$?
set -e
[ "$rc" -eq 3 ] || fail "interrupted gtscsim exited $rc, want 3 (output: $(cat "$workdir/sim_interrupted.out"))"
[ -f "$workdir/cc.ckpt" ] || fail "no checkpoint written on interrupt"

"$workdir/gtscsim" "${sim_flags[@]}" -checkpoint "$workdir/cc.ckpt" -resume \
  >"$workdir/sim_resumed.out" 2>&1 || fail "resume failed: $(cat "$workdir/sim_resumed.out")"
grep -q "replay digest verified" "$workdir/sim_resumed.out" || fail "resume did not verify the replay digest"
[ ! -f "$workdir/cc.ckpt" ] || fail "checkpoint not cleaned up after completion"

"$workdir/gtscsim" "${sim_flags[@]}" >"$workdir/sim_reference.out" 2>&1
# Drop the resume banner and the engine scheduling counters (a resumed
# run legitimately splits a cycle-skip window at the pause cycle);
# everything else (all stats) must match the uninterrupted run exactly.
grep -v "^resumed \|^engine: " "$workdir/sim_resumed.out" >"$workdir/sim_resumed_stats.out"
grep -v "^engine: " "$workdir/sim_reference.out" >"$workdir/sim_reference_stats.out"
diff -u "$workdir/sim_reference_stats.out" "$workdir/sim_resumed_stats.out" \
  || fail "resumed run differs from uninterrupted reference"
echo "   OK: exit 3 on interrupt, verified resume, bit-identical stats"

echo "== gtscbench: SIGTERM mid-sweep, journal resume =="
bench_flags=(-exp table2 -scale 4 -sms 8 -banks 4 -j 4)

set +e
"$workdir/gtscbench" "${bench_flags[@]}" -journal "$workdir/sweep.jrnl" \
  >"$workdir/bench_interrupted.out" 2>&1 &
bench_pid=$!
sleep 0.8
kill -TERM "$bench_pid" 2>/dev/null
wait "$bench_pid"
rc=$?
set -e
[ "$rc" -eq 3 ] || fail "interrupted gtscbench exited $rc, want 3 (output: $(cat "$workdir/bench_interrupted.out"))"
[ -f "$workdir/sweep.jrnl" ] || fail "no journal written"

"$workdir/gtscbench" "${bench_flags[@]}" -journal "$workdir/sweep.jrnl" \
  >"$workdir/bench_resumed.out" 2>&1 || fail "journal resume failed: $(cat "$workdir/bench_resumed.out")"
grep -q "^journal: replayed " "$workdir/bench_resumed.out" || fail "resume did not replay journaled runs"

"$workdir/gtscbench" "${bench_flags[@]}" >"$workdir/bench_reference.out" 2>&1
grep -v "^journal: " "$workdir/bench_resumed.out" >"$workdir/bench_resumed_table.out"
diff -u "$workdir/bench_reference.out" "$workdir/bench_resumed_table.out" \
  || fail "resumed sweep differs from uninterrupted reference"
echo "   OK: exit 3 on SIGTERM, journal replayed, bit-identical table"

echo "kill_resume_smoke: PASS"
