#!/usr/bin/env bash
# Distributed-sweep smoke test, run by CI on every push.
#
# Exercises the sweep service end to end with real binaries, real
# processes, and real SIGKILL — no test harness in the loop:
#
#   1. Start a journaled gtscd coordinator and two gtscd workers.
#   2. Submit a small grid with gtscctl submit -watch.
#   3. SIGKILL one worker mid-sweep: its lease must expire and the item
#      must be reassigned (resuming from the last streamed checkpoint).
#   4. SIGKILL the coordinator mid-sweep and restart it on the same
#      address from the same journal: the watch client and the surviving
#      worker must ride out the outage on retries.
#   5. The watch must complete with exit 0 and its results table must be
#      byte-identical to a serial local reference run (gtscctl -local).
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do kill -KILL "$pid" 2>/dev/null || true; done
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/gtscd" ./cmd/gtscd
go build -o "$workdir/gtscctl" ./cmd/gtscctl

fail() { echo "sweep_smoke: FAIL: $*" >&2; exit 1; }

grid=(-workloads CC,BH -variants gtsc-rc,bl-rc -scale 16 -sms 4 -banks 4)

echo "== local reference run =="
"$workdir/gtscctl" submit -local -q "${grid[@]}" >"$workdir/reference.out" 2>"$workdir/reference.err" \
  || fail "local reference run failed: $(cat "$workdir/reference.err")"

echo "== coordinator + 2 workers, kill one worker and the coordinator mid-sweep =="
"$workdir/gtscd" -addr 127.0.0.1:0 -journal "$workdir/sweep.jrnl" -lease-ttl 1s \
  >"$workdir/coord.out" 2>"$workdir/coord.err" &
coord_pid=$!
pids+=("$coord_pid"); disown "$coord_pid"

for _ in $(seq 1 100); do
  grep -q "listening on" "$workdir/coord.out" 2>/dev/null && break
  kill -0 "$coord_pid" 2>/dev/null || fail "coordinator died on startup: $(cat "$workdir/coord.err")"
  sleep 0.1
done
url=$(sed -n 's/^gtscd: listening on //p' "$workdir/coord.out" | head -n1)
[ -n "$url" ] || fail "could not parse coordinator address from: $(cat "$workdir/coord.out")"
echo "   coordinator at $url"

for name in smoke-a smoke-b; do
  "$workdir/gtscd" -worker -coordinator "$url" -name "$name" -slice 4000 \
    >"$workdir/$name.out" 2>&1 &
  pids+=("$!"); disown "$!"
done
victim_pid=${pids[2]}   # smoke-b, started last

"$workdir/gtscctl" submit -coordinator "$url" -watch "${grid[@]}" \
  >"$workdir/watch.out" 2>"$workdir/watch.err" &
watch_pid=$!
pids+=("$watch_pid")

sleep 0.8
# The kills below only prove anything if the sweep is still in flight.
"$workdir/gtscctl" status -coordinator "$url" >"$workdir/prekill.out" 2>&1 \
  || fail "status before kill failed: $(cat "$workdir/prekill.out")"
grep -q " 0 leased, 0 pending" "$workdir/prekill.out" \
  && fail "sweep finished before the kill; raise -scale (status: $(cat "$workdir/prekill.out"))"

kill -KILL "$victim_pid"
echo "   SIGKILLed worker smoke-b mid-sweep"

sleep 0.5
kill -KILL "$coord_pid"
"$workdir/gtscd" -addr "${url#http://}" -journal "$workdir/sweep.jrnl" -lease-ttl 1s \
  >"$workdir/coord2.out" 2>"$workdir/coord2.err" &
pids+=("$!"); disown "$!"
echo "   SIGKILLed coordinator mid-sweep, restarted from journal on the same address"

# Bounded wait: the watch must finish on its own well inside 120s.
for _ in $(seq 1 1200); do
  kill -0 "$watch_pid" 2>/dev/null || break
  sleep 0.1
done
kill -0 "$watch_pid" 2>/dev/null && fail "watch still running after 120s (progress: $(cat "$workdir/watch.out"))"
set +e
wait "$watch_pid"
rc=$?
set -e
[ "$rc" -eq 0 ] || fail "watch exited $rc, want 0 (stdout: $(cat "$workdir/watch.out"); stderr: $(cat "$workdir/watch.err"))"

# The results table (everything from the ITEM header on) must be
# byte-identical to the serial local reference — same items, same
# fingerprints — despite the worker death, the lease reassignment, and
# the coordinator restart.
sed -n '/^ITEM/,$p' "$workdir/watch.out" >"$workdir/watch_table.out"
sed -n '/^ITEM/,$p' "$workdir/reference.out" >"$workdir/reference_table.out"
[ -s "$workdir/watch_table.out" ] || fail "watch printed no results table: $(cat "$workdir/watch.out")"
diff -u "$workdir/reference_table.out" "$workdir/watch_table.out" \
  || fail "distributed results differ from the local reference"

"$workdir/gtscctl" status -coordinator "$url" >"$workdir/postkill.out" 2>&1 || true
echo "   final counters: $(head -n1 "$workdir/postkill.out")"
echo "   OK: watch exit 0, results bit-identical to local reference"

echo "sweep_smoke: PASS"
