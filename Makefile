# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test bench bench-sim vet fmt cover evaluate examples clean check smoke modelcheck

all: build test

# Pre-merge gate: static checks, the race detector, and a fixed-seed
# fault-injection smoke run on every protocol (see CONTRIBUTING.md).
check: vet
	$(GO) test -race ./...
	$(GO) test -run 'TestLitmusUnderFaults|TestWorkloadsUnderFaults' ./internal/sim ./internal/harness

# Exhaustive small-state model check: enumerate every interleaving of
# the 2-SM micro machine for all four protocols (G-TSC through §V-D
# rollover), plus the mutation tests that prove the checker has teeth.
modelcheck:
	$(GO) test -v -run 'TestExhaustive|TestMutation' ./internal/model

# Kill-and-resume smoke: interrupt real binaries with real signals,
# resume from checkpoint/journal, and diff against uninterrupted runs.
# The sweep smoke does the same for the distributed sweep service:
# SIGKILL a worker and the coordinator mid-sweep, diff the recovered
# results against a serial local reference.
smoke:
	bash scripts/kill_resume_smoke.sh
	bash scripts/sweep_smoke.sh

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# One testing.B benchmark per paper table/figure (+ extensions).
bench:
	$(GO) test -bench=. -benchmem .

# Simulator performance snapshot: single-sim ns/cycle and allocs at
# simworkers 1 vs N (with the skipped-cycle and per-component dispatch
# breakdowns), the same sim with per-component wakes on vs off
# back-to-back, plus Fig-12 grid wall time serial vs parallel (see
# EXPERIMENTS.md).
# Half the paper machine (8 SMs / 8 banks at scale 2): large enough
# that engine cost, not per-simulation construction, dominates the
# wall time the snapshot tracks.
bench-sim:
	$(GO) run ./cmd/gtscbench -benchsim BENCH_sim.json -scale 2 -sms 8 -banks 8 -j 4 -simworkers 4
	@cat BENCH_sim.json

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

cover:
	$(GO) test -cover ./internal/...

# Regenerate the paper's full evaluation at paper scale (Table II,
# Figs 12-17, ablations, extensions) into results_paper_scale.txt.
evaluate:
	$(GO) run ./cmd/gtscbench | tee results_paper_scale.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/paperwalkthrough
	$(GO) run ./examples/irregulargraph
	$(GO) run ./examples/leasesweep
	$(GO) run ./examples/atomichistogram

clean:
	$(GO) clean ./...
