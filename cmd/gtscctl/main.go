// Command gtscctl is the sweep-service client: it submits sweep
// manifests to a gtscd coordinator, watches their progress, and prints
// the results table.
//
// Usage:
//
//	gtscctl submit -workloads CC,BH -variants gtsc-rc,tc-rc,bl-rc -watch
//	gtscctl status
//	gtscctl watch -sweep s001
//	gtscctl cancel -sweep s001
//
// Graceful degradation: if the coordinator is unreachable at submit
// time, gtscctl warns and falls back to local in-process execution of
// the same manifest — same items, same retry semantics, bit-identical
// results (just not distributed).
//
// Exit status: 0 on success, 1 on failure (including any failed item),
// 3 when interrupted gracefully, 130 when a second signal forced an
// immediate abort.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"github.com/gtsc-sim/gtsc/internal/cli"
	"github.com/gtsc-sim/gtsc/internal/diag"
	"github.com/gtsc-sim/gtsc/internal/fault"
	"github.com/gtsc-sim/gtsc/internal/sweep"
)

func main() { os.Exit(realMain()) }

func usage() int {
	fmt.Fprintln(os.Stderr, `usage: gtscctl <command> [flags]

commands:
  submit   submit a sweep manifest (falls back to local execution when
           the coordinator is unreachable)
  status   show coordinator and sweep state
  watch    follow one sweep until it finishes, then print its results
  cancel   cancel a sweep

run "gtscctl <command> -h" for that command's flags`)
	return cli.ExitFailure
}

func realMain() int {
	if len(os.Args) < 2 {
		return usage()
	}
	ctx, stop := cli.WithSignals(context.Background(), "gtscctl")
	defer stop()

	switch os.Args[1] {
	case "submit":
		return cmdSubmit(ctx, os.Args[2:])
	case "status":
		return cmdStatus(ctx, os.Args[2:])
	case "watch":
		return cmdWatch(ctx, os.Args[2:])
	case "cancel":
		return cmdCancel(ctx, os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return cli.ExitOK
	default:
		fmt.Fprintf(os.Stderr, "gtscctl: unknown command %q\n", os.Args[1])
		return usage()
	}
}

// newClient builds the coordinator client, with optional chaos
// transport (used by the chaos smoke tests to stress the full path
// through the real binaries).
func newClient(coordinator string, chaosSeed int64) *sweep.Client {
	var transport = fault.NewTransport(fault.TransportConfig{}, nil)
	if chaosSeed != 0 {
		transport = fault.NewTransport(fault.ChaosTransport(chaosSeed), nil)
	}
	return sweep.NewClient(coordinator, transport)
}

func cmdSubmit(ctx context.Context, args []string) int {
	fs := flag.NewFlagSet("gtscctl submit", flag.ExitOnError)
	var (
		coordinator = fs.String("coordinator", "http://127.0.0.1:8077", "coordinator URL")
		workloads   = fs.String("workloads", "", "comma-separated workload names (required)")
		variants    = fs.String("variants", "gtsc-rc", "comma-separated protocol-consistency variants (e.g. gtsc-rc,tc-sc,bl-rc)")
		scale       = fs.Int("scale", 1, "workload scale factor")
		sms         = fs.Int("sms", 0, "number of SMs (0 = paper default)")
		banks       = fs.Int("banks", 0, "number of L2 banks (0 = paper default)")
		lease       = fs.Uint64("lease", 0, "protocol lease override (0 = protocol default)")
		maxCycles   = fs.Uint64("maxcycles", 0, "hard per-kernel cycle budget (0 = engine default)")
		faultSeed   = fs.Int64("faultseed", 0, "run items under the chaos fault plan with this base seed (retries derive per-attempt seeds)")
		watch       = fs.Bool("watch", false, "wait for the sweep to finish and print its results")
		local       = fs.Bool("local", false, "skip the coordinator and run the manifest locally in-process")
		chaosSeed   = fs.Int64("chaos-seed", 0, "inject transport chaos with this seed (0 = off)")
		quiet       = fs.Bool("q", false, "suppress progress logging")
	)
	fs.Parse(args)
	if *workloads == "" {
		fmt.Fprintln(os.Stderr, "gtscctl: submit requires -workloads")
		return cli.ExitFailure
	}
	logger := log.New(os.Stderr, "gtscctl: ", 0)
	if *quiet {
		logger.SetOutput(discard{})
	}

	base := sweep.Item{
		Scale:     *scale,
		NumSMs:    *sms,
		NumBanks:  *banks,
		Lease:     *lease,
		MaxCycles: *maxCycles,
		FaultSeed: *faultSeed,
	}
	manifest, err := sweep.Grid(splitCSV(*workloads), splitCSV(*variants), base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gtscctl: %v\n", err)
		return cli.ExitFailure
	}

	if !*local {
		client := newClient(*coordinator, *chaosSeed)
		client.Log = logger
		resp, err := client.Submit(ctx, manifest)
		switch {
		case err == nil:
			fmt.Printf("sweep %s submitted: %d items (%d shared with earlier sweeps)\n", resp.SweepID, resp.Total, resp.Deduped)
			if !*watch {
				fmt.Printf("follow it with: gtscctl watch -coordinator %s -sweep %s\n", *coordinator, resp.SweepID)
				return cli.ExitOK
			}
			return watchSweep(ctx, client, resp.SweepID, 250*time.Millisecond)
		case errors.As(err, new(*diag.RemoteError)) || errors.Is(err, context.Canceled):
			// The coordinator answered and rejected the manifest (or we
			// were interrupted): local execution would fare no better.
			fmt.Fprintf(os.Stderr, "gtscctl: %v\n", err)
			if errors.Is(err, context.Canceled) {
				return cli.ExitInterrupted
			}
			return cli.ExitFailure
		default:
			fmt.Fprintf(os.Stderr, "gtscctl: coordinator %s unreachable (%v)\n", *coordinator, err)
			fmt.Fprintln(os.Stderr, "gtscctl: WARNING: falling back to local in-process execution")
		}
	}

	results, err := sweep.RunLocal(ctx, manifest, 0, logger)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gtscctl: local run: %v\n", err)
		if errors.Is(err, context.Canceled) {
			return cli.ExitInterrupted
		}
		return cli.ExitFailure
	}
	sweep.PrintResults(os.Stdout, results)
	for _, r := range results {
		if r.State != "done" {
			return cli.ExitFailure
		}
	}
	return cli.ExitOK
}

func cmdStatus(ctx context.Context, args []string) int {
	fs := flag.NewFlagSet("gtscctl status", flag.ExitOnError)
	var (
		coordinator = fs.String("coordinator", "http://127.0.0.1:8077", "coordinator URL")
		sweepID     = fs.String("sweep", "", "narrow to one sweep")
		results     = fs.Bool("results", false, "print per-item results tables")
		chaosSeed   = fs.Int64("chaos-seed", 0, "inject transport chaos with this seed (0 = off)")
	)
	fs.Parse(args)
	client := newClient(*coordinator, *chaosSeed)
	st, err := client.Status(ctx, *sweepID, *results)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gtscctl: %v\n", err)
		return cli.ExitFailure
	}
	fmt.Printf("workers alive: %d; leases granted: %d; reassigned: %d; retried: %d\n",
		st.AliveWorkers, st.LeasesGranted, st.Reassigned, st.Retried)
	for _, sw := range st.Sweeps {
		fmt.Print(renderSweep(&sw))
		if *results {
			sweep.PrintResults(os.Stdout, sw.Results)
		}
	}
	return cli.ExitOK
}

func cmdWatch(ctx context.Context, args []string) int {
	fs := flag.NewFlagSet("gtscctl watch", flag.ExitOnError)
	var (
		coordinator = fs.String("coordinator", "http://127.0.0.1:8077", "coordinator URL")
		sweepID     = fs.String("sweep", "", "sweep to follow (required)")
		interval    = fs.Duration("interval", 250*time.Millisecond, "poll interval")
		chaosSeed   = fs.Int64("chaos-seed", 0, "inject transport chaos with this seed (0 = off)")
	)
	fs.Parse(args)
	if *sweepID == "" {
		fmt.Fprintln(os.Stderr, "gtscctl: watch requires -sweep")
		return cli.ExitFailure
	}
	return watchSweep(ctx, newClient(*coordinator, *chaosSeed), *sweepID, *interval)
}

func cmdCancel(ctx context.Context, args []string) int {
	fs := flag.NewFlagSet("gtscctl cancel", flag.ExitOnError)
	var (
		coordinator = fs.String("coordinator", "http://127.0.0.1:8077", "coordinator URL")
		sweepID     = fs.String("sweep", "", "sweep to cancel (required)")
		chaosSeed   = fs.Int64("chaos-seed", 0, "inject transport chaos with this seed (0 = off)")
	)
	fs.Parse(args)
	if *sweepID == "" {
		fmt.Fprintln(os.Stderr, "gtscctl: cancel requires -sweep")
		return cli.ExitFailure
	}
	if _, err := newClient(*coordinator, *chaosSeed).Cancel(ctx, *sweepID); err != nil {
		fmt.Fprintf(os.Stderr, "gtscctl: %v\n", err)
		return cli.ExitFailure
	}
	fmt.Printf("sweep %s canceled\n", *sweepID)
	return cli.ExitOK
}

// watchSweep polls one sweep until nothing in it can make progress,
// printing state transitions, then prints the final results table.
// The polling itself drives the coordinator's lease expiry, so a sweep
// whose workers all died still completes (reassignment) or is at least
// reported honestly.
func watchSweep(ctx context.Context, client *sweep.Client, sweepID string, interval time.Duration) int {
	lastLine := ""
	for {
		st, err := client.Status(ctx, sweepID, false)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gtscctl: %v\n", err)
			if errors.Is(err, context.Canceled) {
				return cli.ExitInterrupted
			}
			return cli.ExitFailure
		}
		if len(st.Sweeps) != 1 {
			fmt.Fprintf(os.Stderr, "gtscctl: sweep %s not found\n", sweepID)
			return cli.ExitFailure
		}
		sw := st.Sweeps[0]
		if line := renderSweep(&sw); line != lastLine {
			fmt.Print(line)
			lastLine = line
		}
		if sw.Finished() {
			full, err := client.Status(ctx, sweepID, true)
			if err != nil || len(full.Sweeps) != 1 {
				fmt.Fprintf(os.Stderr, "gtscctl: fetching results: %v\n", err)
				return cli.ExitFailure
			}
			sweep.PrintResults(os.Stdout, full.Sweeps[0].Results)
			if sw.Canceled || sw.Failed > 0 {
				return cli.ExitFailure
			}
			return cli.ExitOK
		}
		select {
		case <-ctx.Done():
			fmt.Fprintln(os.Stderr, "gtscctl: interrupted; the sweep continues server-side")
			return cli.ExitInterrupted
		case <-time.After(interval):
		}
	}
}

func renderSweep(sw *sweep.SweepStatus) string {
	note := ""
	if sw.Canceled {
		note = " (canceled)"
	}
	return fmt.Sprintf("%s: %d/%d done, %d failed, %d leased, %d pending%s\n",
		sw.ID, sw.Done, sw.Total, sw.Failed, sw.Leased, sw.Pending, note)
}

func splitCSV(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// discard is an io.Writer dropping all output (-q).
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
