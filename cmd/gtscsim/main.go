// Command gtscsim runs one or more benchmarks on one simulated GPU
// configuration and reports their statistics — the single-run entry
// point of the simulator.
//
// Usage:
//
//	gtscsim -workload CC -protocol gtsc -consistency rc -sms 16 -banks 8
//	gtscsim -workload BH,CC,STN -j 4     # several workloads in parallel
//	gtscsim -workload all -j 0           # every workload, GOMAXPROCS workers
//	gtscsim -workload CC -simworkers 4   # tick SMs on 4 workers inside the run
//	gtscsim -list
//	gtscsim -workload BFS -protocol tc -check
//	gtscsim -workload CC -cpuprofile cpu.pprof -memprofile mem.pprof
//	gtscsim -workload CC -checkpoint CC.ckpt            # killable: ^C writes a checkpoint
//	gtscsim -workload CC -checkpoint CC.ckpt -resume    # continue a killed run
//	gtscsim -workload CC -timeout 30s                   # bound wall-clock time
//
// Protocols: gtsc (the paper's contribution), tc (Temporal Coherence;
// TC-Weak under rc, TC-Strong under sc), bl (no L1 — the paper's
// baseline), l1nc (non-coherent L1; only valid for the second
// benchmark set).
//
// Exit status: 0 on success, 1 on failure, 3 when the run was
// interrupted (signal or -timeout) and suspended gracefully, 130 when
// a second signal forced an immediate abort.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"github.com/gtsc-sim/gtsc/internal/check"
	"github.com/gtsc-sim/gtsc/internal/checkpoint"
	"github.com/gtsc-sim/gtsc/internal/cli"
	"github.com/gtsc-sim/gtsc/internal/diag"
	"github.com/gtsc-sim/gtsc/internal/fault"
	"github.com/gtsc-sim/gtsc/internal/gpu"
	"github.com/gtsc-sim/gtsc/internal/memsys"
	"github.com/gtsc-sim/gtsc/internal/sim"
	"github.com/gtsc-sim/gtsc/internal/stats"
	"github.com/gtsc-sim/gtsc/internal/workload"
)

// Exit codes (shared across binaries; see internal/cli). A graceful
// interruption (signal or timeout) is distinguishable from a failure,
// so wrappers and CI can tell "killed mid-run, resumable" apart from
// "broken".
const (
	exitOK          = cli.ExitOK
	exitFailure     = cli.ExitFailure
	exitInterrupted = cli.ExitInterrupted
)

func main() { os.Exit(realMain()) }

// clampSimWorkers resolves -simworkers against the multi-workload
// worker count: each worker drives its own simulation, so the
// goroutine budget is jobs*simworkers. The product is clamped to
// 2*GOMAXPROCS — results are bit-identical at any setting, so the
// clamp only bounds scheduler oversubscription, never changes output.
func clampSimWorkers(jobs, simw int) int {
	maxprocs := runtime.GOMAXPROCS(0)
	if jobs <= 0 {
		jobs = maxprocs
	}
	if simw <= 0 {
		simw = maxprocs
	}
	if budget := 2 * maxprocs; jobs*simw > budget {
		simw = budget / jobs
	}
	if simw < 1 {
		simw = 1
	}
	return simw
}

func realMain() int {
	var (
		name     = flag.String("workload", "CC", "workload name, comma-separated list, or \"all\" (see -list)")
		proto    = flag.String("protocol", "gtsc", "coherence protocol: gtsc, tc, bl, l1nc, dir")
		cons     = flag.String("consistency", "rc", "memory consistency model: rc, sc, tso")
		scale    = flag.Int("scale", 1, "workload scale factor")
		sms      = flag.Int("sms", 16, "number of SMs")
		banks    = flag.Int("banks", 8, "number of L2 banks / DRAM partitions")
		lease    = flag.Uint64("lease", 0, "protocol lease (0 = default: 10 logical for gtsc, 400 cycles for tc)")
		tsBits   = flag.Int("tsbits", 16, "G-TSC timestamp width in bits")
		adaptive = flag.Bool("adaptive-lease", false, "G-TSC adaptive per-block lease policy (extension)")
		sched    = flag.String("scheduler", "lrr", "warp scheduler: lrr, gto")
		doCheck  = flag.Bool("check", false, "verify protocol invariants with the operation checker")
		list     = flag.Bool("list", false, "list workloads and exit")
		jobs     = flag.Int("j", 1, "workers for multi-workload runs (0 = GOMAXPROCS); each run is hermetic, so output is identical at any -j")
		simw     = flag.Int("simworkers", 1, "SM tick workers inside each simulation (0 = GOMAXPROCS); with multi-workload -j the goroutine budget is j*simworkers, clamped to 2*GOMAXPROCS; output is bit-identical at any setting")
		engine   = flag.String("engine", "auto", "cycle engine: auto (scheduled-wake event engine when its preconditions hold), event, or legacy (per-cycle loop); output is bit-identical under either")
		compW    = flag.Bool("compwakes", true, "per-component wake dispatch under the event engine (quiet cache banks, NoC and DRAM sleep through busy cycles); output is bit-identical either way")
		slack    = flag.Uint64("slack", 0, "relaxed-synchronization bound in cycles: domains free-run up to this many cycles between epoch barriers (0 = bit-exact). Nonzero slack perturbs cycle counts boundedly; functional results are preserved. Ignored under -faultseed and -engine legacy")

		maxCycles = flag.Uint64("maxcycles", 0, "hard per-kernel cycle budget (0 = default 200M)")
		watchdog  = flag.Uint64("watchdog", 0, "forward-progress watchdog window in cycles (0 = default 100k)")
		wdOff     = flag.Bool("watchdog-off", false, "disable the forward-progress watchdog (MaxCycles still applies)")
		faultSeed = flag.Int64("faultseed", 0, "enable the chaos fault-injection plan with this seed (0 = off)")

		timeout = flag.Duration("timeout", 0, "bound wall-clock time; on expiry the run suspends gracefully and exits 3")
		ckpt    = flag.String("checkpoint", "", "checkpoint file: an interrupted run writes its resume coordinate here (single workload only)")
		resume  = flag.Bool("resume", false, "resume from -checkpoint if it exists (verified deterministic replay)")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the simulation(s) to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile taken after the simulation(s) to this file")
	)
	flag.Parse()

	if *list {
		for _, w := range workload.All() {
			coh := " "
			if w.NeedsCoherence {
				coh = "*"
			}
			fmt.Printf("%s %-5s %s\n", coh, w.Name, w.Description)
		}
		fmt.Println("microbenchmarks:")
		for _, w := range workload.Micro() {
			coh := " "
			if w.NeedsCoherence {
				coh = "*"
			}
			fmt.Printf("%s %-5s %s\n", coh, w.Name, w.Description)
		}
		fmt.Println("(* requires coherence; not runnable under -protocol l1nc)")
		return exitOK
	}

	var wls []*workload.Workload
	if *name == "all" {
		wls = workload.All()
	} else {
		for _, n := range strings.Split(*name, ",") {
			n = strings.TrimSpace(n)
			wl, ok := workload.ByName(n)
			if !ok {
				wl, ok = workload.MicroByName(n)
			}
			if !ok {
				fatalf("unknown workload %q; try -list", n)
			}
			wls = append(wls, wl)
		}
	}

	cfg := sim.DefaultConfig()
	cfg.Mem.NumSMs = *sms
	cfg.Mem.NumBanks = *banks
	cfg.Mem.GTSC.TSBits = *tsBits
	cfg.Mem.GTSC.AdaptiveLease = *adaptive
	switch *sched {
	case "lrr":
		cfg.SM.Scheduler = gpu.LRR
	case "gto":
		cfg.SM.Scheduler = gpu.GTO
	default:
		fatalf("unknown scheduler %q", *sched)
	}
	switch *proto {
	case "gtsc":
		cfg.Mem.Protocol = memsys.GTSC
		if *lease != 0 {
			cfg.Mem.GTSC.Lease = *lease
		}
	case "tc":
		cfg.Mem.Protocol = memsys.TC
		if *lease != 0 {
			cfg.Mem.TC.Lease = *lease
		}
	case "bl":
		cfg.Mem.Protocol = memsys.BL
	case "l1nc":
		cfg.Mem.Protocol = memsys.L1NC
		for _, wl := range wls {
			if wl.NeedsCoherence {
				fatalf("workload %s requires coherence and is not runnable under l1nc", wl.Name)
			}
		}
	case "dir":
		cfg.Mem.Protocol = memsys.DIR
	default:
		fatalf("unknown protocol %q", *proto)
	}
	switch *cons {
	case "rc":
		cfg.SM.Consistency = gpu.RC
	case "sc":
		cfg.SM.Consistency = gpu.SC
	case "tso":
		cfg.SM.Consistency = gpu.TSO
	default:
		fatalf("unknown consistency %q", *cons)
	}

	cfg.MaxCycles = *maxCycles
	cfg.WatchdogWindow = *watchdog
	cfg.DisableWatchdog = *wdOff
	switch mode, err := sim.ParseEngineMode(*engine); {
	case err != nil:
		fatalf("%v", err)
	default:
		cfg.Engine = mode
	}
	cfg.DisableComponentWakes = !*compW
	cfg.SlackCycles = *slack
	if *faultSeed != 0 {
		cfg.Mem.Fault = fault.Chaos(*faultSeed)
		fmt.Printf("fault plan: %s\n", cfg.Mem.Fault)
	}

	// Cancellation: -timeout bounds wall-clock time; the first
	// SIGINT/SIGTERM suspends the run gracefully (stats flushed, the
	// checkpoint written) and exits 3; a second signal aborts
	// immediately with 130.
	ctx := context.Background()
	if *timeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, *timeout)
		defer tcancel()
	}
	ctx, stop := cli.WithSignals(ctx, "gtscsim")
	defer stop()

	if *cpuProfile != "" {
		// Label the engine's phases so the profile splits hierarchy tick,
		// SM tick and agenda overhead without manual stack bisection:
		// `go tool pprof -tagfocus engine_phase=hierarchy-tick cpu.pprof`.
		cfg.ProfileLabels = true
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	if *ckpt != "" {
		if len(wls) != 1 {
			fatalf("-checkpoint tracks a single execution; run one workload (got %d)", len(wls))
		}
		cfg.SimWorkers = clampSimWorkers(1, *simw)
		return runCheckpointed(ctx, wls[0], cfg, *scale, *ckpt, *resume)
	}

	// Run the workloads, fanning out across -j workers when several were
	// requested. Each run builds a fresh simulator from a copy of cfg
	// and — when checking — its own check.Recorder: observers record
	// per-run operation streams and must never be shared between
	// concurrently running simulations.
	type result struct {
		run *stats.Run
		rec *check.Recorder
		eng *sim.EngineStats
		err error
	}
	results := make([]result, len(wls))
	workers := *jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(wls) {
		workers = len(wls)
	}
	cfg.SimWorkers = clampSimWorkers(workers, *simw)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, wl := range wls {
		wg.Add(1)
		go func(i int, wl *workload.Workload) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			runCfg := cfg
			if *doCheck {
				results[i].rec = check.NewRecorder()
				runCfg.Observer = results[i].rec
			}
			s := sim.New(runCfg)
			results[i].run, results[i].err = wl.Build(*scale).RunOnContext(ctx, s)
			results[i].eng = s.Engine()
		}(i, wl)
	}
	wg.Wait()

	failed, interrupted := false, false
	for i, wl := range wls {
		res := results[i]
		if len(wls) > 1 {
			fmt.Printf("==== %s ====\n", wl.Name)
		}
		if res.err != nil {
			// Structured failures carry a machine-state dump; print it so a
			// wedged run is diagnosable from the terminal alone. An
			// interruption is not a failure: report where the run stopped
			// and exit with the distinct status below.
			var ce *diag.CanceledError
			var de *diag.DeadlockError
			var pe *diag.ProtocolError
			switch {
			case errors.As(res.err, &ce):
				fmt.Fprintf(os.Stderr, "gtscsim: %s interrupted at cycle %d (%s, kernel %s): %v\n",
					wl.Name, ce.Cycle, ce.Phase, ce.Kernel, ce.Cause)
				fmt.Fprintln(os.Stderr, "gtscsim: no -checkpoint given; partial state discarded")
				interrupted = true
				continue
			case errors.As(res.err, &de):
				fmt.Fprintln(os.Stderr, de.Dump.String())
			case errors.As(res.err, &pe):
				fmt.Fprintln(os.Stderr, pe.Dump.String())
			}
			fmt.Fprintf(os.Stderr, "gtscsim: %s failed: %v\n", wl.Name, res.err)
			failed = true
			continue
		}
		fmt.Print(res.run)
		if eng := res.eng; eng != nil {
			printEngineLine(eng)
		}
		if res.rec != nil && !reportChecker(cfg, res.rec) {
			failed = true
		}
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatalf("memprofile: %v", err)
		}
		defer f.Close()
		runtime.GC() // up-to-date heap statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatalf("memprofile: %v", err)
		}
	}

	switch {
	case failed:
		return exitFailure
	case interrupted:
		return exitInterrupted
	}
	return exitOK
}

// runCheckpointed executes one workload through the checkpoint layer:
// an interruption (signal or timeout) suspends the machine, writes its
// resume coordinate to path and exits 3; a later -resume invocation
// rebuilds the exact machine by verified deterministic replay and
// continues. Results are bit-identical however many times the run is
// killed and resumed.
func runCheckpointed(ctx context.Context, wl *workload.Workload, cfg sim.Config, scale int, path string, resume bool) int {
	inst := wl.Build(scale)
	var e *checkpoint.Execution
	if resume {
		switch ck, err := checkpoint.LoadFile(path); {
		case err == nil:
			start := time.Now()
			e, err = checkpoint.ResumeExecution(ck, cfg, inst, wl.Name, scale)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gtscsim: resume: %v\n", err)
				return exitFailure
			}
			fmt.Printf("resumed %s at cycle %d (%s, %d kernels done; replay digest verified in %v)\n",
				wl.Name, ck.Cycle, ck.Phase, ck.KernelIndex, time.Since(start).Round(time.Millisecond))
		case errors.Is(err, os.ErrNotExist):
			fmt.Printf("no checkpoint at %s; starting %s from cycle 0\n", path, wl.Name)
			e = checkpoint.NewExecution(cfg, inst, wl.Name, scale)
		default:
			fmt.Fprintf(os.Stderr, "gtscsim: resume: %v\n", err)
			return exitFailure
		}
	} else {
		e = checkpoint.NewExecution(cfg, inst, wl.Name, scale)
	}

	run, err := e.Run(ctx)
	if err != nil {
		var ce *diag.CanceledError
		if errors.As(err, &ce) {
			ck := e.Checkpoint()
			if serr := ck.SaveFile(path); serr != nil {
				fmt.Fprintf(os.Stderr, "gtscsim: interrupted, but checkpoint save failed: %v\n", serr)
				return exitFailure
			}
			fmt.Fprintf(os.Stderr, "gtscsim: %s interrupted at cycle %d (%s, kernel %s): %v\n",
				wl.Name, ce.Cycle, ce.Phase, ce.Kernel, ce.Cause)
			fmt.Fprintf(os.Stderr, "gtscsim: checkpoint written to %s; rerun with -resume to continue\n", path)
			return exitInterrupted
		}
		var de *diag.DeadlockError
		var pe *diag.ProtocolError
		switch {
		case errors.As(err, &de):
			fmt.Fprintln(os.Stderr, de.Dump.String())
		case errors.As(err, &pe):
			fmt.Fprintln(os.Stderr, pe.Dump.String())
		}
		fmt.Fprintf(os.Stderr, "gtscsim: %s failed: %v\n", wl.Name, err)
		return exitFailure
	}
	fmt.Print(run)
	printEngineLine(e.Sim().Engine())
	// The run completed; a stale checkpoint would otherwise replay a
	// finished execution on the next -resume.
	os.Remove(path)
	return exitOK
}

// printEngineLine reports the engine's scheduling counters for one run.
// mode and simworkers are the EFFECTIVE values (auto-selection resolves
// against cycle-skip settings and fault injection; -simworkers clamps
// to GOMAXPROCS, so a 1-CPU host always reports 1). executed/skipped
// split the simulated cycles by whether the engine ticked them or
// fast-forwarded over them; dispatches break the executed work into
// hierarchy and SM evaluations — sleeping SMs are never dispatched, so
// sm_ticks stays far below executed*numSMs on stall-heavy workloads.
func printEngineLine(eng *sim.EngineStats) {
	executed := eng.RunCycles + eng.DrainCycles
	fmt.Printf("engine: mode=%s simworkers=%d executed=%d skipped=%d (windows %d, mean width %.1f) dispatches=%d (hierarchy %d + sm %d) sm_sleep_cycles=%d sm_wakes=%d parallel_tick_efficiency=%.2f\n",
		eng.Mode(), eng.Workers, executed, eng.SkippedCycles(), eng.SkipWindows, eng.MeanSkipWidth(),
		eng.Dispatches(), eng.EventCycles, eng.SMTicks, eng.SMSleepCycles, eng.SMWakes,
		eng.ParallelTickEfficiency())
	// Per-component dispatch breakdown (event engine with component
	// wakes on): of the hierarchy dispatches above, which component
	// Ticks actually ran vs slept. Omitted when the mode never engaged
	// (legacy engine, -compwakes=false, fault injection).
	// Relaxed-sync breakdown (only when -slack engaged): epoch count,
	// how the domains spent the windows (executed vs skipped domain
	// cycles), and the barrier NoC replay's traffic.
	if r := &eng.Relaxed; r.Epochs > 0 {
		fmt.Printf("engine: relaxed slack=%d epochs=%d sm_domain_cycles=%d/%d skipped mem_domain_cycles=%d/%d skipped exchanged=%d held=%d\n",
			r.SlackCycles, r.Epochs,
			r.SMDomainCycles, r.SMDomainSkipped,
			r.MemDomainCycles, r.MemDomainSkipped,
			r.ExchangedMsgs, r.HeldMsgs)
	}
	c := &eng.Comp
	if total := c.HierarchyTicks() + c.HierarchySleeps(); total > 0 {
		fmt.Printf("engine: hierarchy dispatch (ticks/sleeps): noc %d/%d dram %d/%d l2 %d/%d l1 %d/%d, sleep fraction %.2f\n",
			c.NoCTicks, c.NoCSleeps, c.DRAMTicks, c.DRAMSleeps,
			c.L2Ticks, c.L2Sleeps, c.L1Ticks, c.L1Sleeps,
			float64(c.HierarchySleeps())/float64(total))
	}
}

// reportChecker prints the invariant-checker verdict for one run and
// reports whether it passed.
func reportChecker(cfg sim.Config, rec *check.Recorder) bool {
	loads, stores := check.Summary(rec.Ops())
	fmt.Printf("checker: %d loads, %d stores observed\n", loads, stores)
	var violations []check.Violation
	switch cfg.Mem.Protocol {
	case memsys.GTSC:
		violations = check.CheckTimestampOrder(rec.Ops(), 10)
	case memsys.BL, memsys.DIR:
		violations = check.CheckPhysical(rec.Ops(), 10)
	case memsys.TC:
		if cfg.SM.Consistency == gpu.SC {
			violations = check.CheckPhysical(rec.Ops(), 10)
		} else {
			fmt.Println("checker: TC-Weak permits bounded staleness; only functional verification applies")
		}
	default:
		fmt.Println("checker: no ordering invariant applies to this configuration")
	}
	for _, v := range violations {
		fmt.Println("VIOLATION:", v.Error())
	}
	if len(violations) == 0 {
		fmt.Println("checker: no ordering violations")
		return true
	}
	return false
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gtscsim: "+format+"\n", args...)
	os.Exit(1)
}
