// Command gtscsim runs one or more benchmarks on one simulated GPU
// configuration and reports their statistics — the single-run entry
// point of the simulator.
//
// Usage:
//
//	gtscsim -workload CC -protocol gtsc -consistency rc -sms 16 -banks 8
//	gtscsim -workload BH,CC,STN -j 4     # several workloads in parallel
//	gtscsim -workload all -j 0           # every workload, GOMAXPROCS workers
//	gtscsim -list
//	gtscsim -workload BFS -protocol tc -check
//	gtscsim -workload CC -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Protocols: gtsc (the paper's contribution), tc (Temporal Coherence;
// TC-Weak under rc, TC-Strong under sc), bl (no L1 — the paper's
// baseline), l1nc (non-coherent L1; only valid for the second
// benchmark set).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"

	"github.com/gtsc-sim/gtsc/internal/check"
	"github.com/gtsc-sim/gtsc/internal/diag"
	"github.com/gtsc-sim/gtsc/internal/fault"
	"github.com/gtsc-sim/gtsc/internal/gpu"
	"github.com/gtsc-sim/gtsc/internal/memsys"
	"github.com/gtsc-sim/gtsc/internal/sim"
	"github.com/gtsc-sim/gtsc/internal/stats"
	"github.com/gtsc-sim/gtsc/internal/workload"
)

func main() {
	var (
		name     = flag.String("workload", "CC", "workload name, comma-separated list, or \"all\" (see -list)")
		proto    = flag.String("protocol", "gtsc", "coherence protocol: gtsc, tc, bl, l1nc, dir")
		cons     = flag.String("consistency", "rc", "memory consistency model: rc, sc, tso")
		scale    = flag.Int("scale", 1, "workload scale factor")
		sms      = flag.Int("sms", 16, "number of SMs")
		banks    = flag.Int("banks", 8, "number of L2 banks / DRAM partitions")
		lease    = flag.Uint64("lease", 0, "protocol lease (0 = default: 10 logical for gtsc, 400 cycles for tc)")
		tsBits   = flag.Int("tsbits", 16, "G-TSC timestamp width in bits")
		adaptive = flag.Bool("adaptive-lease", false, "G-TSC adaptive per-block lease policy (extension)")
		sched    = flag.String("scheduler", "lrr", "warp scheduler: lrr, gto")
		doCheck  = flag.Bool("check", false, "verify protocol invariants with the operation checker")
		list     = flag.Bool("list", false, "list workloads and exit")
		jobs     = flag.Int("j", 1, "workers for multi-workload runs (0 = GOMAXPROCS); each run is hermetic, so output is identical at any -j")

		maxCycles = flag.Uint64("maxcycles", 0, "hard per-kernel cycle budget (0 = default 200M)")
		watchdog  = flag.Uint64("watchdog", 0, "forward-progress watchdog window in cycles (0 = default 100k)")
		wdOff     = flag.Bool("watchdog-off", false, "disable the forward-progress watchdog (MaxCycles still applies)")
		faultSeed = flag.Int64("faultseed", 0, "enable the chaos fault-injection plan with this seed (0 = off)")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the simulation(s) to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile taken after the simulation(s) to this file")
	)
	flag.Parse()

	if *list {
		for _, w := range workload.All() {
			coh := " "
			if w.NeedsCoherence {
				coh = "*"
			}
			fmt.Printf("%s %-5s %s\n", coh, w.Name, w.Description)
		}
		fmt.Println("microbenchmarks:")
		for _, w := range workload.Micro() {
			coh := " "
			if w.NeedsCoherence {
				coh = "*"
			}
			fmt.Printf("%s %-5s %s\n", coh, w.Name, w.Description)
		}
		fmt.Println("(* requires coherence; not runnable under -protocol l1nc)")
		return
	}

	var wls []*workload.Workload
	if *name == "all" {
		wls = workload.All()
	} else {
		for _, n := range strings.Split(*name, ",") {
			n = strings.TrimSpace(n)
			wl, ok := workload.ByName(n)
			if !ok {
				wl, ok = workload.MicroByName(n)
			}
			if !ok {
				fatalf("unknown workload %q; try -list", n)
			}
			wls = append(wls, wl)
		}
	}

	cfg := sim.DefaultConfig()
	cfg.Mem.NumSMs = *sms
	cfg.Mem.NumBanks = *banks
	cfg.Mem.GTSC.TSBits = *tsBits
	cfg.Mem.GTSC.AdaptiveLease = *adaptive
	switch *sched {
	case "lrr":
		cfg.SM.Scheduler = gpu.LRR
	case "gto":
		cfg.SM.Scheduler = gpu.GTO
	default:
		fatalf("unknown scheduler %q", *sched)
	}
	switch *proto {
	case "gtsc":
		cfg.Mem.Protocol = memsys.GTSC
		if *lease != 0 {
			cfg.Mem.GTSC.Lease = *lease
		}
	case "tc":
		cfg.Mem.Protocol = memsys.TC
		if *lease != 0 {
			cfg.Mem.TC.Lease = *lease
		}
	case "bl":
		cfg.Mem.Protocol = memsys.BL
	case "l1nc":
		cfg.Mem.Protocol = memsys.L1NC
		for _, wl := range wls {
			if wl.NeedsCoherence {
				fatalf("workload %s requires coherence and is not runnable under l1nc", wl.Name)
			}
		}
	case "dir":
		cfg.Mem.Protocol = memsys.DIR
	default:
		fatalf("unknown protocol %q", *proto)
	}
	switch *cons {
	case "rc":
		cfg.SM.Consistency = gpu.RC
	case "sc":
		cfg.SM.Consistency = gpu.SC
	case "tso":
		cfg.SM.Consistency = gpu.TSO
	default:
		fatalf("unknown consistency %q", *cons)
	}

	cfg.MaxCycles = *maxCycles
	cfg.WatchdogWindow = *watchdog
	cfg.DisableWatchdog = *wdOff
	if *faultSeed != 0 {
		cfg.Mem.Fault = fault.Chaos(*faultSeed)
		fmt.Printf("fault plan: %s\n", cfg.Mem.Fault)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	// Run the workloads, fanning out across -j workers when several were
	// requested. Each run builds a fresh simulator from a copy of cfg
	// and — when checking — its own check.Recorder: observers record
	// per-run operation streams and must never be shared between
	// concurrently running simulations.
	type result struct {
		run *stats.Run
		rec *check.Recorder
		err error
	}
	results := make([]result, len(wls))
	workers := *jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(wls) {
		workers = len(wls)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, wl := range wls {
		wg.Add(1)
		go func(i int, wl *workload.Workload) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			runCfg := cfg
			if *doCheck {
				results[i].rec = check.NewRecorder()
				runCfg.Observer = results[i].rec
			}
			results[i].run, results[i].err = wl.Build(*scale).Run(runCfg)
		}(i, wl)
	}
	wg.Wait()

	failed := false
	for i, wl := range wls {
		res := results[i]
		if len(wls) > 1 {
			fmt.Printf("==== %s ====\n", wl.Name)
		}
		if res.err != nil {
			// Structured failures carry a machine-state dump; print it so a
			// wedged run is diagnosable from the terminal alone.
			var de *diag.DeadlockError
			var pe *diag.ProtocolError
			switch {
			case errors.As(res.err, &de):
				fmt.Fprintln(os.Stderr, de.Dump.String())
			case errors.As(res.err, &pe):
				fmt.Fprintln(os.Stderr, pe.Dump.String())
			}
			fmt.Fprintf(os.Stderr, "gtscsim: %s failed: %v\n", wl.Name, res.err)
			failed = true
			continue
		}
		fmt.Print(res.run)
		if res.rec != nil && !reportChecker(cfg, res.rec) {
			failed = true
		}
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatalf("memprofile: %v", err)
		}
		defer f.Close()
		runtime.GC() // up-to-date heap statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatalf("memprofile: %v", err)
		}
	}

	if failed {
		if *cpuProfile != "" {
			pprof.StopCPUProfile()
		}
		os.Exit(1)
	}
}

// reportChecker prints the invariant-checker verdict for one run and
// reports whether it passed.
func reportChecker(cfg sim.Config, rec *check.Recorder) bool {
	loads, stores := check.Summary(rec.Ops())
	fmt.Printf("checker: %d loads, %d stores observed\n", loads, stores)
	var violations []check.Violation
	switch cfg.Mem.Protocol {
	case memsys.GTSC:
		violations = check.CheckTimestampOrder(rec.Ops(), 10)
	case memsys.BL, memsys.DIR:
		violations = check.CheckPhysical(rec.Ops(), 10)
	case memsys.TC:
		if cfg.SM.Consistency == gpu.SC {
			violations = check.CheckPhysical(rec.Ops(), 10)
		} else {
			fmt.Println("checker: TC-Weak permits bounded staleness; only functional verification applies")
		}
	default:
		fmt.Println("checker: no ordering invariant applies to this configuration")
	}
	for _, v := range violations {
		fmt.Println("VIOLATION:", v.Error())
	}
	if len(violations) == 0 {
		fmt.Println("checker: no ordering violations")
		return true
	}
	return false
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gtscsim: "+format+"\n", args...)
	os.Exit(1)
}
