// Command gtscsim runs one benchmark on one simulated GPU
// configuration and reports its statistics — the single-run entry
// point of the simulator.
//
// Usage:
//
//	gtscsim -workload CC -protocol gtsc -consistency rc -sms 16 -banks 8
//	gtscsim -list
//	gtscsim -workload BFS -protocol tc -check
//
// Protocols: gtsc (the paper's contribution), tc (Temporal Coherence;
// TC-Weak under rc, TC-Strong under sc), bl (no L1 — the paper's
// baseline), l1nc (non-coherent L1; only valid for the second
// benchmark set).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"github.com/gtsc-sim/gtsc/internal/check"
	"github.com/gtsc-sim/gtsc/internal/diag"
	"github.com/gtsc-sim/gtsc/internal/fault"
	"github.com/gtsc-sim/gtsc/internal/gpu"
	"github.com/gtsc-sim/gtsc/internal/memsys"
	"github.com/gtsc-sim/gtsc/internal/sim"
	"github.com/gtsc-sim/gtsc/internal/workload"
)

func main() {
	var (
		name     = flag.String("workload", "CC", "workload name (see -list)")
		proto    = flag.String("protocol", "gtsc", "coherence protocol: gtsc, tc, bl, l1nc, dir")
		cons     = flag.String("consistency", "rc", "memory consistency model: rc, sc, tso")
		scale    = flag.Int("scale", 1, "workload scale factor")
		sms      = flag.Int("sms", 16, "number of SMs")
		banks    = flag.Int("banks", 8, "number of L2 banks / DRAM partitions")
		lease    = flag.Uint64("lease", 0, "protocol lease (0 = default: 10 logical for gtsc, 400 cycles for tc)")
		tsBits   = flag.Int("tsbits", 16, "G-TSC timestamp width in bits")
		adaptive = flag.Bool("adaptive-lease", false, "G-TSC adaptive per-block lease policy (extension)")
		sched    = flag.String("scheduler", "lrr", "warp scheduler: lrr, gto")
		doCheck  = flag.Bool("check", false, "verify protocol invariants with the operation checker")
		list     = flag.Bool("list", false, "list workloads and exit")

		maxCycles = flag.Uint64("maxcycles", 0, "hard per-kernel cycle budget (0 = default 200M)")
		watchdog  = flag.Uint64("watchdog", 0, "forward-progress watchdog window in cycles (0 = default 100k)")
		wdOff     = flag.Bool("watchdog-off", false, "disable the forward-progress watchdog (MaxCycles still applies)")
		faultSeed = flag.Int64("faultseed", 0, "enable the chaos fault-injection plan with this seed (0 = off)")
	)
	flag.Parse()

	if *list {
		for _, w := range workload.All() {
			coh := " "
			if w.NeedsCoherence {
				coh = "*"
			}
			fmt.Printf("%s %-5s %s\n", coh, w.Name, w.Description)
		}
		fmt.Println("microbenchmarks:")
		for _, w := range workload.Micro() {
			coh := " "
			if w.NeedsCoherence {
				coh = "*"
			}
			fmt.Printf("%s %-5s %s\n", coh, w.Name, w.Description)
		}
		fmt.Println("(* requires coherence; not runnable under -protocol l1nc)")
		return
	}

	wl, ok := workload.ByName(*name)
	if !ok {
		wl, ok = workload.MicroByName(*name)
	}
	if !ok {
		fatalf("unknown workload %q; try -list", *name)
	}

	cfg := sim.DefaultConfig()
	cfg.Mem.NumSMs = *sms
	cfg.Mem.NumBanks = *banks
	cfg.Mem.GTSC.TSBits = *tsBits
	cfg.Mem.GTSC.AdaptiveLease = *adaptive
	switch *sched {
	case "lrr":
		cfg.SM.Scheduler = gpu.LRR
	case "gto":
		cfg.SM.Scheduler = gpu.GTO
	default:
		fatalf("unknown scheduler %q", *sched)
	}
	switch *proto {
	case "gtsc":
		cfg.Mem.Protocol = memsys.GTSC
		if *lease != 0 {
			cfg.Mem.GTSC.Lease = *lease
		}
	case "tc":
		cfg.Mem.Protocol = memsys.TC
		if *lease != 0 {
			cfg.Mem.TC.Lease = *lease
		}
	case "bl":
		cfg.Mem.Protocol = memsys.BL
	case "l1nc":
		cfg.Mem.Protocol = memsys.L1NC
		if wl.NeedsCoherence {
			fatalf("workload %s requires coherence and is not runnable under l1nc", wl.Name)
		}
	case "dir":
		cfg.Mem.Protocol = memsys.DIR
	default:
		fatalf("unknown protocol %q", *proto)
	}
	switch *cons {
	case "rc":
		cfg.SM.Consistency = gpu.RC
	case "sc":
		cfg.SM.Consistency = gpu.SC
	case "tso":
		cfg.SM.Consistency = gpu.TSO
	default:
		fatalf("unknown consistency %q", *cons)
	}

	cfg.MaxCycles = *maxCycles
	cfg.WatchdogWindow = *watchdog
	cfg.DisableWatchdog = *wdOff
	if *faultSeed != 0 {
		cfg.Mem.Fault = fault.Chaos(*faultSeed)
		fmt.Printf("fault plan: %s\n", cfg.Mem.Fault)
	}

	var rec *check.Recorder
	if *doCheck {
		rec = check.NewRecorder()
		cfg.Observer = rec
	}

	run, err := wl.Build(*scale).Run(cfg)
	if err != nil {
		// Structured failures carry a machine-state dump; print it so a
		// wedged run is diagnosable from the terminal alone.
		var de *diag.DeadlockError
		var pe *diag.ProtocolError
		switch {
		case errors.As(err, &de):
			fmt.Fprintln(os.Stderr, de.Dump.String())
		case errors.As(err, &pe):
			fmt.Fprintln(os.Stderr, pe.Dump.String())
		}
		fatalf("run failed: %v", err)
	}
	fmt.Print(run)

	if rec != nil {
		loads, stores := check.Summary(rec.Ops())
		fmt.Printf("checker: %d loads, %d stores observed\n", loads, stores)
		var violations []check.Violation
		switch cfg.Mem.Protocol {
		case memsys.GTSC:
			violations = check.CheckTimestampOrder(rec.Ops(), 10)
		case memsys.BL, memsys.DIR:
			violations = check.CheckPhysical(rec.Ops(), 10)
		case memsys.TC:
			if cfg.SM.Consistency == gpu.SC {
				violations = check.CheckPhysical(rec.Ops(), 10)
			} else {
				fmt.Println("checker: TC-Weak permits bounded staleness; only functional verification applies")
			}
		default:
			fmt.Println("checker: no ordering invariant applies to this configuration")
		}
		for _, v := range violations {
			fmt.Println("VIOLATION:", v.Error())
		}
		if len(violations) == 0 {
			fmt.Println("checker: no ordering violations")
		} else {
			os.Exit(1)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gtscsim: "+format+"\n", args...)
	os.Exit(1)
}
