// Command gtscd is the distributed sweep service daemon: by default a
// coordinator that shards sweep manifests across a worker fleet with
// lease-based reassignment and journaled crash recovery; with -worker
// it is one member of that fleet.
//
// Usage:
//
//	gtscd -addr :8077 -journal sweep.jrnl          # coordinator
//	gtscd -worker -coordinator http://host:8077    # worker
//	gtscd -worker -coordinator URL -chaos-seed 42  # chaos-test the wire
//
// Coordinator semantics: work items are handed out as leases with
// heartbeat-extended deadlines; a worker that misses its heartbeats has
// its lease revoked and the item is reassigned to the next worker,
// resuming from the last checkpoint frame the dead worker streamed
// back. Every durable transition (submit, complete, fail, checkpoint,
// cancel) is journaled before it is acknowledged, so a coordinator
// restarted after a crash — torn mid-append write included — replays to
// the exact pre-crash state and never re-executes a finished run.
//
// Exit status: 0 on success, 1 on failure, 3 when suspended gracefully
// by a signal, 130 when a second signal forced an immediate abort.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"github.com/gtsc-sim/gtsc/internal/cli"
	"github.com/gtsc-sim/gtsc/internal/fault"
	"github.com/gtsc-sim/gtsc/internal/sweep"
)

func main() { os.Exit(realMain()) }

func realMain() int {
	var (
		addr        = flag.String("addr", ":8077", "coordinator listen address")
		journal     = flag.String("journal", "", "coordinator assignment journal (crash recovery); empty = in-memory only")
		leaseTTL    = flag.Duration("lease-ttl", 5*time.Second, "lease heartbeat deadline; a silent worker loses its item after this")
		maxAttempts = flag.Int("max-attempts", 3, "transient-failure attempts per item (fault-seeded items only)")

		worker      = flag.Bool("worker", false, "run as a worker instead of the coordinator")
		coordinator = flag.String("coordinator", "http://127.0.0.1:8077", "coordinator URL (worker mode)")
		name        = flag.String("name", "", "worker name (default worker-<pid>)")
		slice       = flag.Uint64("slice", 0, "cycles per execution slice between heartbeats (0 = default 20000)")
		chaosSeed   = flag.Int64("chaos-seed", 0, "inject transport chaos (drops, dups, delays, disconnects) with this seed (worker mode; 0 = off)")

		quiet = flag.Bool("q", false, "suppress event logging")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "gtscd: ", log.LstdFlags|log.Lmsgprefix)
	if *quiet {
		logger.SetOutput(discard{})
	}

	ctx, stop := cli.WithSignals(context.Background(), "gtscd")
	defer stop()

	if *worker {
		return runWorker(ctx, *coordinator, *name, *slice, *chaosSeed, logger)
	}
	return runCoordinator(ctx, *addr, *journal, *leaseTTL, *maxAttempts, logger)
}

func runCoordinator(ctx context.Context, addr, journal string, leaseTTL time.Duration, maxAttempts int, logger *log.Logger) int {
	opt := sweep.Options{LeaseTTL: leaseTTL, MaxAttempts: maxAttempts, Log: logger}
	var (
		coord *sweep.Coordinator
		err   error
	)
	if journal != "" {
		coord, err = sweep.OpenCoordinator(journal, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gtscd: open journal %s: %v\n", journal, err)
			return cli.ExitFailure
		}
		if coord.DroppedTail() {
			logger.Printf("journal %s had a torn final record (crash mid-append); repaired by truncation", journal)
		}
		defer coord.Close()
	} else {
		coord = sweep.NewCoordinator(opt)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gtscd: listen %s: %v\n", addr, err)
		return cli.ExitFailure
	}
	// Stdout, unbuffered by the println below, so scripts starting a
	// coordinator on :0 can read the bound address.
	fmt.Printf("gtscd: listening on http://%s\n", ln.Addr())

	srv := &http.Server{Handler: sweep.NewServer(coord)}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case <-ctx.Done():
		shctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		srv.Shutdown(shctx)
		logger.Printf("suspended; journal holds the sweep state")
		return cli.ExitInterrupted
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "gtscd: serve: %v\n", err)
			return cli.ExitFailure
		}
		return cli.ExitOK
	}
}

func runWorker(ctx context.Context, coordinator, name string, slice uint64, chaosSeed int64, logger *log.Logger) int {
	if name == "" {
		name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	var transport http.RoundTripper
	if chaosSeed != 0 {
		tcfg := fault.ChaosTransport(chaosSeed)
		logger.Printf("worker %s: transport chaos enabled: %s", name, tcfg)
		transport = fault.NewTransport(tcfg, nil)
	}
	client := sweep.NewClient(coordinator, transport)
	client.Log = logger
	w := &sweep.Worker{Name: name, Client: client, SliceCycles: slice, Log: logger}
	logger.Printf("worker %s: serving %s", name, coordinator)
	err := w.Run(ctx)
	if err == nil || errors.Is(err, context.Canceled) {
		return cli.ExitInterrupted // the loop only ends via cancellation
	}
	fmt.Fprintf(os.Stderr, "gtscd: worker %s: %v\n", name, err)
	return cli.ExitFailure
}

// discard is an io.Writer dropping all output (log -q).
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
