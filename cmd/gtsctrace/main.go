// Command gtsctrace makes coherence protocols visible message by
// message.
//
// Without flags it replays the paper's Figure 9 walkthrough: two warps
// on two SMs exchange two shared locations (warp 0: LD X, ST Y, LD X —
// warp 1: LD Y, ST X, LD Y) and every message crossing the NoC is
// printed with its timestamps — the renewal/fill/write-ack flows of
// Figs 2–8 end to end.
//
// With -workload it traces a real benchmark instead:
//
//	gtsctrace                              # Fig 9 under G-TSC
//	gtsctrace -protocol tc                 # the same scenario under TC
//	gtsctrace -workload CC -limit 40       # first 40 messages of CC
//	gtsctrace -workload BFS -type BusRnw   # only renewals
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/gtsc-sim/gtsc/internal/gpu"
	"github.com/gtsc-sim/gtsc/internal/mem"
	"github.com/gtsc-sim/gtsc/internal/memsys"
	"github.com/gtsc-sim/gtsc/internal/sim"
	"github.com/gtsc-sim/gtsc/internal/trace"
	"github.com/gtsc-sim/gtsc/internal/workload"
)

func main() {
	var (
		proto  = flag.String("protocol", "gtsc", "coherence protocol: gtsc, tc, bl")
		wlName = flag.String("workload", "", "trace a benchmark instead of the Fig 9 scenario")
		limit  = flag.Int("limit", 60, "max events to print in workload mode")
		typ    = flag.String("type", "", "only trace one message type (BusRd, BusWr, BusFill, BusRnw, BusWrAck, BusAtom, BusAtomAck)")
	)
	flag.Parse()

	cfg := sim.DefaultConfig()
	cfg.SM.Consistency = gpu.SC
	switch *proto {
	case "gtsc":
		cfg.Mem.Protocol = memsys.GTSC
	case "tc":
		cfg.Mem.Protocol = memsys.TC
	case "bl":
		cfg.Mem.Protocol = memsys.BL
	default:
		fatalf("unknown protocol %q", *proto)
	}

	var opts []trace.Option
	if *typ != "" {
		ty, ok := msgTypeByName(*typ)
		if !ok {
			fatalf("unknown message type %q", *typ)
		}
		opts = append(opts, trace.WithTypes(ty))
	}

	if *wlName != "" {
		traceWorkload(cfg, *wlName, *limit, opts)
		return
	}
	traceFig9(cfg, opts)
}

func msgTypeByName(name string) (mem.MsgType, bool) {
	for _, ty := range []mem.MsgType{
		mem.BusRd, mem.BusWr, mem.BusFill, mem.BusRnw, mem.BusWrAck,
		mem.BusAtom, mem.BusAtomAck,
	} {
		if ty.String() == name {
			return ty, true
		}
	}
	return 0, false
}

func traceWorkload(cfg sim.Config, name string, limit int, opts []trace.Option) {
	wl, ok := workload.ByName(name)
	if !ok {
		wl, ok = workload.MicroByName(name)
	}
	if !ok {
		fatalf("unknown workload %q", name)
	}
	cfg.Mem.NumSMs = 4
	cfg.Mem.NumBanks = 2
	cfg.SM.Consistency = gpu.RC
	s := sim.New(cfg)
	tr := trace.Attach(s.Sys, s.Now, append(opts, trace.WithLimit(limit))...)

	run, err := wl.Build(1).RunOn(s)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("%s under %s (first %d messages):\n\n", wl.Name, cfg.Mem.Protocol, limit)
	tr.Dump(os.Stdout)
	fmt.Printf("\nmessage totals over the whole run (%d cycles):\n", run.Cycles)
	tr.Summary(os.Stdout)
}

func traceFig9(cfg sim.Config, opts []trace.Option) {
	cfg.Mem.NumSMs = 2
	cfg.Mem.NumBanks = 1
	s := sim.New(cfg)
	tr := trace.Attach(s.Sys, s.Now, opts...)

	const (
		addrX = mem.Addr(0x1000)
		addrY = mem.Addr(0x2000)
	)
	lane0 := func(a mem.Addr) func(t *gpu.Thread) (mem.Addr, bool) {
		return func(t *gpu.Thread) (mem.Addr, bool) { return a, t.Lane == 0 }
	}
	kernel := &gpu.Kernel{
		Name: "fig9", CTAs: 2, WarpsPerCTA: 1, Regs: 2, MaxCTAsPerSM: 1,
		NeedsCoherence: true,
		ProgramFor: func(w *gpu.Warp) gpu.Program {
			if w.CTA.ID == 0 {
				return gpu.Seq( // warp 0 on SM0: A1 LD X, A2 ST Y, A3 LD X
					gpu.Load(0, lane0(addrX)),
					gpu.Store(lane0(addrY), func(t *gpu.Thread) uint32 { return 0xA2 }),
					gpu.Load(1, lane0(addrX)),
				)
			}
			return gpu.Seq( // warp 1 on SM1: B1 LD Y, B2 ST X, B3 LD Y
				gpu.Load(0, lane0(addrY)),
				gpu.Store(lane0(addrX), func(t *gpu.Thread) uint32 { return 0xB2 }),
				gpu.Load(1, lane0(addrY)),
			)
		},
	}

	fmt.Printf("Fig 9 walkthrough under %s (SM0: LD X, ST Y, LD X — SM1: LD Y, ST X, LD Y)\n", cfg.Mem.Protocol)
	fmt.Printf("block %v = X, block %v = Y\n\n", addrX.Block(), addrY.Block())
	run, err := s.Run(kernel)
	if err != nil {
		fatalf("%v", err)
	}
	tr.Dump(os.Stdout)
	fmt.Printf("\nfinished in %d cycles; X=%#x Y=%#x\n",
		run.Cycles, s.ReadWord(addrX), s.ReadWord(addrY))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gtsctrace: "+format+"\n", args...)
	os.Exit(1)
}
