// Command gtscbench regenerates the paper's evaluation: Table II,
// Figures 12–17, the §VI-E expiry-miss characterization, and the §V
// design ablations, printing the same rows and series the paper
// reports (normalized to the same baselines).
//
// Usage:
//
//	gtscbench                  # full suite at paper scale
//	gtscbench -exp fig12       # one experiment
//	gtscbench -exp lease       # an extension (lease, tso, scale, micro, platform, cache)
//	gtscbench -scale 1 -sms 8  # smaller machine / inputs
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/gtsc-sim/gtsc/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment: all, table2, fig12..fig17, expiry, vis, combine, lease, tso, scale, micro, platform, cache")
		scale = flag.Int("scale", 2, "workload scale factor")
		sms   = flag.Int("sms", 16, "number of SMs")
		banks = flag.Int("banks", 8, "number of L2 banks")
		lease = flag.Uint64("gtsc-lease", 10, "G-TSC logical lease")
		tcl   = flag.Uint64("tc-lease", 400, "TC lease in cycles")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.Scale = *scale
	cfg.NumSMs = *sms
	cfg.NumBanks = *banks
	cfg.GTSCLease = *lease
	cfg.TCLease = *tcl
	s := experiments.NewSession(cfg)

	var err error
	if *exp == "all" {
		err = s.RunAll(os.Stdout)
	} else {
		err = s.RunOne(*exp, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gtscbench:", err)
		os.Exit(1)
	}
}
