// Command gtscbench regenerates the paper's evaluation: Table II,
// Figures 12–17, the §VI-E expiry-miss characterization, and the §V
// design ablations, printing the same rows and series the paper
// reports (normalized to the same baselines).
//
// Usage:
//
//	gtscbench                  # full suite at paper scale
//	gtscbench -exp fig12       # one experiment
//	gtscbench -exp lease       # an extension (lease, tso, scale, micro, platform, cache)
//	gtscbench -scale 1 -sms 8  # smaller machine / inputs
//	gtscbench -j 8             # fan simulations across 8 workers
//	gtscbench -j 4 -simworkers 2  # also tick SMs in parallel inside each simulation
//	gtscbench -journal sweep.jrnl       # crash-safe: rerun with the same journal to resume
//	gtscbench -timeout 10m              # bound wall-clock time (suspends gracefully)
//	gtscbench -keep-going               # survive per-run failures; print partial figures
//	gtscbench -benchsim BENCH_sim.json  # perf snapshot (see EXPERIMENTS.md)
//
// A sweep run with -journal survives kill -9: every completed
// simulation is fsynced to the journal before its result is used, and
// rerunning the same command replays the journal and re-executes only
// the missing runs. SIGINT/SIGTERM suspend the sweep gracefully (exit
// 3); a second signal aborts immediately (exit 130).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"

	"github.com/gtsc-sim/gtsc/internal/cli"
	"github.com/gtsc-sim/gtsc/internal/diag"
	"github.com/gtsc-sim/gtsc/internal/experiments"
	"github.com/gtsc-sim/gtsc/internal/sim"
)

// clampSimWorkers resolves -simworkers against -j: each of the j
// session workers drives its own simulation, so the goroutine budget
// is j*simworkers. The product is clamped to 2*GOMAXPROCS — results
// are bit-identical at any setting, so the clamp only bounds scheduler
// oversubscription, never changes output.
func clampSimWorkers(jobs, simw int) int {
	maxprocs := runtime.GOMAXPROCS(0)
	if jobs <= 0 {
		jobs = maxprocs
	}
	if simw <= 0 {
		simw = maxprocs
	}
	if budget := 2 * maxprocs; jobs*simw > budget {
		simw = budget / jobs
	}
	if simw < 1 {
		simw = 1
	}
	return simw
}

// Exit codes (shared across binaries; see internal/cli).
const (
	exitOK          = cli.ExitOK
	exitFailure     = cli.ExitFailure
	exitInterrupted = cli.ExitInterrupted
)

func main() { os.Exit(realMain()) }

func realMain() int {
	var (
		exp      = flag.String("exp", "all", "experiment: all, table2, fig12..fig17, expiry, vis, combine, lease, tso, scale, micro, platform, cache")
		scale    = flag.Int("scale", 2, "workload scale factor")
		sms      = flag.Int("sms", 16, "number of SMs")
		banks    = flag.Int("banks", 8, "number of L2 banks")
		lease    = flag.Uint64("gtsc-lease", 10, "G-TSC logical lease")
		tsbits   = flag.Int("tsbits", 0, "G-TSC timestamp width in bits (0 = protocol default 16; narrow widths make the §V-D overflow reset routine)")
		tcl      = flag.Uint64("tc-lease", 400, "TC lease in cycles")
		jobs     = flag.Int("j", 0, "simulation workers (0 = GOMAXPROCS, 1 = serial); results are bit-identical at any -j")
		simw     = flag.Int("simworkers", 1, "SM tick workers inside each simulation (0 = GOMAXPROCS); goroutine budget is j*simworkers, clamped so it stays <= 2*GOMAXPROCS; results are bit-identical at any setting")
		engine   = flag.String("engine", "auto", "cycle engine: auto (scheduled-wake event engine when its preconditions hold), event, or legacy (per-cycle loop); results are bit-identical under either")
		slack    = flag.Uint64("slack", 0, "relaxed-synchronization bound in cycles for every run (0 = bit-exact). Nonzero slack perturbs cycle counts boundedly with functional results preserved; it is result-affecting, so it is part of cache keys and journal signatures. Ignored under -faultseed and -engine legacy")
		benchsim = flag.String("benchsim", "", "write a performance snapshot (wall time, ns/cycle, allocs) to this JSON file and exit")

		journal   = flag.String("journal", "", "crash-safe run journal: completed simulations are persisted here and replayed on restart")
		timeout   = flag.Duration("timeout", 0, "bound wall-clock time; on expiry the sweep suspends gracefully and exits 3")
		keepGoing = flag.Bool("keep-going", false, "survive individual run failures: assemble partial figures plus a missing-runs manifest")
		faultSeed = flag.Int64("faultseed", 0, "run every simulation under the chaos fault-injection plan with this seed (0 = off)")
		retry     = flag.Int("retry", 0, "retries (with backoff and derived seeds) for transient fault-injected failures")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.Scale = *scale
	cfg.NumSMs = *sms
	cfg.NumBanks = *banks
	cfg.GTSCLease = *lease
	cfg.GTSCTSBits = *tsbits
	cfg.TCLease = *tcl
	cfg.Workers = *jobs
	cfg.SimWorkers = clampSimWorkers(*jobs, *simw)
	cfg.FaultSeed = *faultSeed
	cfg.RetryTransient = *retry
	cfg.Slack = *slack
	cfg.KeepGoing = *keepGoing
	mode, err := sim.ParseEngineMode(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gtscbench:", err)
		return exitFailure
	}
	cfg.Engine = mode

	if *benchsim != "" {
		b, err := experiments.RunBenchSim(cfg, *jobs, *simw)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gtscbench:", err)
			return exitFailure
		}
		if err := b.WriteJSON(*benchsim); err != nil {
			fmt.Fprintln(os.Stderr, "gtscbench:", err)
			return exitFailure
		}
		fmt.Printf("bench-sim: %s written (fig12 grid: %d sims, serial %.2fs, parallel %.2fs at %d workers, speedup %.2fx, bit-identical %v)\n",
			*benchsim, b.Fig12Grid.Simulations,
			float64(b.Fig12Grid.SerialNs)/1e9, float64(b.Fig12Grid.ParallelNs)/1e9,
			b.Workers, b.Fig12Grid.Speedup, b.Fig12Grid.BitIdentical)
		fmt.Printf("bench-sim: single-sim %s: %d/%d run cycles skipped, %d/%d drain cycles skipped; simworkers %d: %.2fx vs serial, tick efficiency %.2f, bit-identical %v\n",
			b.SingleSim.Workload,
			b.SingleSim.RunCyclesSkipped, b.SingleSim.RunCyclesExecuted+b.SingleSim.RunCyclesSkipped,
			b.SingleSim.DrainCyclesSkipped, b.SingleSim.DrainCyclesExecuted+b.SingleSim.DrainCyclesSkipped,
			b.ParallelTick.SimWorkers, b.ParallelTick.Speedup,
			b.ParallelTick.ParallelTickEfficiency, b.ParallelTick.BitIdentical)
		fmt.Printf("bench-sim: engine: mode=%s dispatches=%d (hierarchy %d + sm %d) mean_skip=%.1f sm_sleep_cycles=%d sm_wakes=%d; legacy loop %.2fx the wall time, bit-identical %v\n",
			b.SingleSim.Engine, b.SingleSim.Dispatches, b.SingleSim.EventCycles, b.SingleSim.SMTicks,
			b.SingleSim.MeanSkipWidth, b.SingleSim.SMSleepCycles, b.SingleSim.SMWakes,
			b.LegacyLoop.EventSpeedup, b.LegacyLoop.BitIdentical)
		fmt.Printf("bench-sim: engine: hierarchy dispatch (ticks/sleeps): noc %d/%d dram %d/%d l2 %d/%d l1 %d/%d, sleep fraction %.2f; full-tick mode %.2fx the wall time, bit-identical %v\n",
			b.SingleSim.NoCTicks, b.SingleSim.NoCSleeps,
			b.SingleSim.DRAMTicks, b.SingleSim.DRAMSleeps,
			b.SingleSim.L2Ticks, b.SingleSim.L2Sleeps,
			b.SingleSim.L1Ticks, b.SingleSim.L1Sleeps,
			b.SingleSim.HierarchySleepFraction,
			b.FullTick.CompWakesSpeedup, b.FullTick.BitIdentical)
		fmt.Printf("bench-sim: relaxed_sync: slack=%d simworkers=%d grid %.2fs -> %.2fs (%.2fx vs serial event engine), cycle deviation mean %.2f%% max %.2f%%, single-sim epochs=%d over %d domains, exchanged=%d held=%d\n",
			b.RelaxedSync.SlackCycles, b.RelaxedSync.SimWorkers,
			float64(b.RelaxedSync.ExactNs)/1e9, float64(b.RelaxedSync.RelaxedNs)/1e9,
			b.RelaxedSync.Speedup,
			b.RelaxedSync.MeanAbsCycleDeviationPct, b.RelaxedSync.MaxAbsCycleDeviationPct,
			b.RelaxedSync.Epochs, len(b.RelaxedSync.DomainEpochs),
			b.RelaxedSync.ExchangedMsgs, b.RelaxedSync.HeldMsgs)
		return exitOK
	}

	// First SIGINT/SIGTERM: cancel the session; in-flight simulations
	// suspend at their next poll point, the journal already holds every
	// completed run, and we exit 3. Second signal: abort hard, 130.
	ctx := context.Background()
	if *timeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, *timeout)
		defer tcancel()
	}
	ctx, stop := cli.WithSignals(ctx, "gtscbench")
	defer stop()

	s := experiments.NewSession(cfg).WithContext(ctx)
	if *journal != "" {
		replayed, err := s.AttachJournal(*journal)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gtscbench:", err)
			return exitFailure
		}
		defer func() {
			if err := s.CloseJournal(); err != nil {
				fmt.Fprintln(os.Stderr, "gtscbench: journal:", err)
			}
		}()
		if s.JournalDroppedTail() {
			fmt.Fprintf(os.Stderr, "gtscbench: journal %s had a torn final record (crash mid-append); dropped it\n", *journal)
		}
		if replayed > 0 {
			fmt.Printf("journal: replayed %d completed run(s) from %s; only missing runs will execute\n", replayed, *journal)
		}
	}

	if *exp == "all" {
		err = s.RunAll(os.Stdout)
	} else {
		err = s.RunOne(*exp, os.Stdout)
	}
	if err != nil {
		var ce *diag.CanceledError
		if errors.As(err, &ce) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "gtscbench: interrupted: %v\n", err)
			fmt.Fprintf(os.Stderr, "gtscbench: %d simulation(s) had completed", len(s.CachedRuns()))
			if *journal != "" {
				fmt.Fprintf(os.Stderr, " and are journaled; rerun with -journal %s to resume", *journal)
			}
			fmt.Fprintln(os.Stderr)
			return exitInterrupted
		}
		fmt.Fprintln(os.Stderr, "gtscbench:", err)
		return exitFailure
	}
	if missing := s.Missing(); len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "gtscbench: completed with %d failed run(s); see the PARTIAL OUTPUT manifests above\n", len(missing))
		return exitFailure
	}
	return exitOK
}
