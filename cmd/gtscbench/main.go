// Command gtscbench regenerates the paper's evaluation: Table II,
// Figures 12–17, the §VI-E expiry-miss characterization, and the §V
// design ablations, printing the same rows and series the paper
// reports (normalized to the same baselines).
//
// Usage:
//
//	gtscbench                  # full suite at paper scale
//	gtscbench -exp fig12       # one experiment
//	gtscbench -exp lease       # an extension (lease, tso, scale, micro, platform, cache)
//	gtscbench -scale 1 -sms 8  # smaller machine / inputs
//	gtscbench -j 8             # fan simulations across 8 workers
//	gtscbench -benchsim BENCH_sim.json  # perf snapshot (see EXPERIMENTS.md)
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/gtsc-sim/gtsc/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: all, table2, fig12..fig17, expiry, vis, combine, lease, tso, scale, micro, platform, cache")
		scale    = flag.Int("scale", 2, "workload scale factor")
		sms      = flag.Int("sms", 16, "number of SMs")
		banks    = flag.Int("banks", 8, "number of L2 banks")
		lease    = flag.Uint64("gtsc-lease", 10, "G-TSC logical lease")
		tcl      = flag.Uint64("tc-lease", 400, "TC lease in cycles")
		jobs     = flag.Int("j", 0, "simulation workers (0 = GOMAXPROCS, 1 = serial); results are bit-identical at any -j")
		benchsim = flag.String("benchsim", "", "write a performance snapshot (wall time, ns/cycle, allocs) to this JSON file and exit")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.Scale = *scale
	cfg.NumSMs = *sms
	cfg.NumBanks = *banks
	cfg.GTSCLease = *lease
	cfg.TCLease = *tcl
	cfg.Workers = *jobs

	if *benchsim != "" {
		b, err := experiments.RunBenchSim(cfg, *jobs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gtscbench:", err)
			os.Exit(1)
		}
		if err := b.WriteJSON(*benchsim); err != nil {
			fmt.Fprintln(os.Stderr, "gtscbench:", err)
			os.Exit(1)
		}
		fmt.Printf("bench-sim: %s written (fig12 grid: %d sims, serial %.2fs, parallel %.2fs at %d workers, speedup %.2fx, bit-identical %v)\n",
			*benchsim, b.Fig12Grid.Simulations,
			float64(b.Fig12Grid.SerialNs)/1e9, float64(b.Fig12Grid.ParallelNs)/1e9,
			b.Workers, b.Fig12Grid.Speedup, b.Fig12Grid.BitIdentical)
		return
	}

	s := experiments.NewSession(cfg)

	var err error
	if *exp == "all" {
		err = s.RunAll(os.Stdout)
	} else {
		err = s.RunOne(*exp, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gtscbench:", err)
		os.Exit(1)
	}
}
