// Paper walkthrough: the exact two-warp scenario of the paper's
// Figure 9, written as a custom kernel against the public API, with
// the protocol's invariant checker attached. Warp 0 (SM0) runs
// LD X / ST Y / LD X; warp 1 (SM1) runs LD Y / ST X / LD Y. The
// program prints what each load observed and the logical timestamps
// the protocol assigned, demonstrating timestamp ordering end to end:
// the final order class is A1,B1 -> A2,B2 -> A3,B3 regardless of
// physical interleaving.
package main

import (
	"fmt"
	"log"

	"github.com/gtsc-sim/gtsc"
)

const (
	addrX = gtsc.Addr(0x1000)
	addrY = gtsc.Addr(0x2000)
)

func lane0(a gtsc.Addr) func(t *gtsc.Thread) (gtsc.Addr, bool) {
	return func(t *gtsc.Thread) (gtsc.Addr, bool) { return a, t.Lane == 0 }
}

func main() {
	cfg := gtsc.DefaultConfig()
	cfg.Mem.Protocol = gtsc.ProtocolGTSC
	cfg.Mem.NumSMs = 2
	cfg.Mem.NumBanks = 1
	cfg.SM.Consistency = gtsc.SC

	rec := gtsc.NewRecorder()
	cfg.Observer = rec
	s := gtsc.NewSimulator(cfg)

	kernel := &gtsc.Kernel{
		Name: "fig9", CTAs: 2, WarpsPerCTA: 1, Regs: 2, MaxCTAsPerSM: 1,
		NeedsCoherence: true,
		Init: func(st *gtsc.Store) {
			st.WriteWord(addrX, 0x0)
			st.WriteWord(addrY, 0x0)
		},
		ProgramFor: func(w *gtsc.Warp) gtsc.Program {
			if w.CTA.ID == 0 {
				return gtsc.Seq(
					gtsc.Load(0, lane0(addrX)), // A1
					gtsc.StoreOp(lane0(addrY), func(*gtsc.Thread) uint32 { return 0xA2 }), // A2
					gtsc.Load(1, lane0(addrX)), // A3
				)
			}
			return gtsc.Seq(
				gtsc.Load(0, lane0(addrY)), // B1
				gtsc.StoreOp(lane0(addrX), func(*gtsc.Thread) uint32 { return 0xB2 }), // B2
				gtsc.Load(1, lane0(addrY)), // B3
			)
		},
	}

	run, err := s.Run(kernel)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("operations in timestamp order (ts, then physical time):")
	name := map[gtsc.BlockAddr]string{addrX.Block(): "X", addrY.Block(): "Y"}
	for _, r := range rec.Ops() {
		kind := "LD"
		if r.Store {
			kind = "ST"
		}
		var val uint32
		for w := 0; w < 32; w++ {
			if r.Mask.Has(w) {
				val = r.Data.Words[w]
			}
		}
		fmt.Printf("  SM%d %s %s = %#04x   ts=%-3d (cycle %d)\n",
			r.SM, kind, name[r.Block], val, r.TS, r.Cycle)
	}

	if v := gtsc.CheckTimestampOrder(rec.Ops(), 5); len(v) > 0 {
		log.Fatalf("timestamp ordering violated: %v", v[0].Error())
	}
	fmt.Printf("\ntimestamp-ordering invariant holds; kernel took %d cycles\n", run.Cycles)
	fmt.Printf("final memory: X=%#x Y=%#x\n", s.ReadWord(addrX), s.ReadWord(addrY))
}
