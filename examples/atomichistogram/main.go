// Atomic histogram example: global atomics (an extension to the
// paper's protocol set) performed at the shared L2, with the message
// tracer attached so the BusAtom/BusAtomAck flows are visible.
//
// Every thread classifies items into 32 shared buckets with atomicAdd;
// the warp-level coalescer aggregates same-bucket lanes into one
// request and reconstructs each lane's return value (old + prefix).
// The final counts are exact under every protocol — atomics serialize
// at the L2 — which the program verifies.
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/gtsc-sim/gtsc"
	"github.com/gtsc-sim/gtsc/internal/trace"
)

const (
	buckets        = 32
	itemsPerThread = 8
	bucketBase     = gtsc.Addr(0x50000)
)

func bucketOf(gtid, i int) int { return (gtid*37 + i*11) % buckets }

func main() {
	cfg := gtsc.DefaultConfig()
	cfg.Mem.Protocol = gtsc.ProtocolGTSC
	cfg.SM.Consistency = gtsc.RC

	s := gtsc.NewSimulator(cfg)
	tr := trace.Attach(s.Sys, s.Now, trace.WithLimit(10))

	kernel := &gtsc.Kernel{
		Name: "histogram", CTAs: 8, WarpsPerCTA: 2, Regs: 2,
		ProgramFor: func(w *gtsc.Warp) gtsc.Program {
			return &gtsc.LoopProgram{
				Iters: itemsPerThread,
				Body: func(i int) []*gtsc.Instr {
					return []*gtsc.Instr{
						gtsc.Atomic(gtsc.AtomAdd, 0, func(t *gtsc.Thread) (gtsc.Addr, bool) {
							return bucketBase + gtsc.Addr(bucketOf(t.GTID, i)*4), true
						}, func(t *gtsc.Thread) uint32 { return 1 }),
						gtsc.Comp(3),
					}
				},
			}
		},
	}

	run, err := s.Run(kernel)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("first protocol messages (atomics ride BusAtom/BusAtomAck):")
	tr.Dump(os.Stdout)

	total := 8 * 2 * gtsc.WarpWidth
	want := make([]uint32, buckets)
	for t := 0; t < total; t++ {
		for i := 0; i < itemsPerThread; i++ {
			want[bucketOf(t, i)]++
		}
	}
	var sum uint32
	for b := 0; b < buckets; b++ {
		got := s.ReadWord(bucketBase + gtsc.Addr(b*4))
		if got != want[b] {
			log.Fatalf("bucket %d: got %d, want %d", b, got, want[b])
		}
		sum += got
	}
	fmt.Printf("\nall %d buckets exact (%d increments total) in %d cycles; %d atomics performed at L2\n",
		buckets, sum, run.Cycles, run.L2.Atomics)
	fmt.Println("\nmessage totals:")
	tr.Summary(os.Stdout)
}
