// Irregular-graph example: builds a custom BFS-style kernel from the
// public ISA — the class of irregular application the paper's
// introduction motivates GPU coherence for — and runs it under a
// coherent protocol (G-TSC) and, to show why coherence matters, under
// the non-coherent L1, where the level relaxation converges to the
// wrong answer.
//
// The kernel relaxes BFS levels over a user-built graph:
//
//	for iter { for each owned v { d[v] = min(d[v], d[u]+1 for u in N(v)) }; fence }
//
// Vertices are distributed grid-stride across CTAs, so neighbor reads
// cross SM boundaries constantly.
package main

import (
	"fmt"
	"log"

	"github.com/gtsc-sim/gtsc"
)

const (
	vertices = 512
	degree   = 4
	iters    = 60
	distBase = gtsc.Addr(0x100000)
	adjBase  = gtsc.Addr(0x200000)
	inf      = uint32(1 << 20)
)

// buildGraph makes a ring plus pseudo-random chords (deterministic).
func buildGraph() []uint32 {
	adj := make([]uint32, vertices*degree)
	seed := uint64(42)
	next := func() uint64 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return seed
	}
	for v := 0; v < vertices; v++ {
		adj[v*degree+0] = uint32((v + 1) % vertices)
		adj[v*degree+1] = uint32((v + vertices - 1) % vertices)
		for j := 2; j < degree; j++ {
			adj[v*degree+j] = uint32(next() % vertices)
		}
	}
	return adj
}

// reference computes the BFS fixpoint sequentially.
func reference(adj []uint32) []uint32 {
	dist := make([]uint32, vertices)
	for i := 1; i < vertices; i++ {
		dist[i] = inf
	}
	for changed := true; changed; {
		changed = false
		for v := 0; v < vertices; v++ {
			for j := 0; j < degree; j++ {
				if d := dist[adj[v*degree+j]] + 1; d < dist[v] {
					dist[v] = d
					changed = true
				}
			}
		}
	}
	return dist
}

func bfsKernel(adj []uint32) *gtsc.Kernel {
	const ctas, warpsPerCTA = 16, 1
	total := ctas * warpsPerCTA * gtsc.WarpWidth
	return &gtsc.Kernel{
		Name: "bfs-custom", CTAs: ctas, WarpsPerCTA: warpsPerCTA, Regs: 4,
		NeedsCoherence: true,
		Init: func(st *gtsc.Store) {
			for v := 0; v < vertices; v++ {
				d := inf
				if v == 0 {
					d = 0
				}
				st.WriteWord(distBase+gtsc.Addr(v*4), d)
			}
			for i, a := range adj {
				st.WriteWord(adjBase+gtsc.Addr(i*4), a)
			}
		},
		ProgramFor: func(w *gtsc.Warp) gtsc.Program {
			vert := func(t *gtsc.Thread) (int, bool) { return t.GTID, t.GTID < vertices }
			own := func(t *gtsc.Thread) (gtsc.Addr, bool) {
				v, ok := vert(t)
				if !ok {
					return 0, false
				}
				return distBase + gtsc.Addr(v*4), true
			}
			var body []*gtsc.Instr
			body = append(body, gtsc.Load(0, own))
			for j := 0; j < degree; j++ {
				j := j
				body = append(body,
					gtsc.Load(1, func(t *gtsc.Thread) (gtsc.Addr, bool) {
						v, ok := vert(t)
						if !ok {
							return 0, false
						}
						return adjBase + gtsc.Addr((v*degree+j)*4), true
					}),
					gtsc.Load(2, func(t *gtsc.Thread) (gtsc.Addr, bool) {
						if _, ok := vert(t); !ok {
							return 0, false
						}
						return distBase + gtsc.Addr(t.Regs[1]*4), true
					}, 1),
					gtsc.ALU(func(t *gtsc.Thread) {
						if d := t.Regs[2] + 1; d < t.Regs[0] {
							t.Regs[0] = d
						}
					}, 0, 2),
				)
			}
			body = append(body,
				gtsc.StoreOp(own, func(t *gtsc.Thread) uint32 { return t.Regs[0] }, 0),
				gtsc.Fence(),
			)
			_ = total
			return &gtsc.LoopProgram{Iters: iters, Body: func(int) []*gtsc.Instr { return body }}
		},
	}
}

func run(proto gtsc.Protocol, adj []uint32) (*gtsc.Run, int, *gtsc.Simulator) {
	cfg := gtsc.DefaultConfig()
	cfg.Mem.Protocol = proto
	cfg.SM.Consistency = gtsc.RC
	s := gtsc.NewSimulator(cfg)
	r, err := s.Run(bfsKernel(adj))
	if err != nil {
		log.Fatal(err)
	}
	want := reference(adj)
	wrong := 0
	for v := 0; v < vertices; v++ {
		if s.ReadWord(distBase+gtsc.Addr(v*4)) != want[v] {
			wrong++
		}
	}
	return r, wrong, s
}

func main() {
	adj := buildGraph()

	gtscRun, gtscWrong, _ := run(gtsc.ProtocolGTSC, adj)
	fmt.Printf("G-TSC:   %7d cycles, %d/%d vertices wrong\n", gtscRun.Cycles, gtscWrong, vertices)

	tcRun, tcWrong, _ := run(gtsc.ProtocolTC, adj)
	fmt.Printf("TC:      %7d cycles, %d/%d vertices wrong\n", tcRun.Cycles, tcWrong, vertices)

	ncRun, ncWrong, _ := run(gtsc.ProtocolL1NC, adj)
	fmt.Printf("no-coh:  %7d cycles, %d/%d vertices wrong\n", ncRun.Cycles, ncWrong, vertices)

	if gtscWrong != 0 || tcWrong != 0 {
		log.Fatal("coherent protocols must converge to the reference")
	}
	if ncWrong == 0 {
		log.Fatal("the non-coherent L1 should NOT have converged (it demonstrates why GPUs need coherence)")
	}
	fmt.Printf("\ncoherent protocols reach the BFS fixpoint; the non-coherent L1 leaves %d stale vertices\n", ncWrong)
	fmt.Printf("G-TSC speedup over TC on this kernel: %.2fx\n", float64(tcRun.Cycles)/float64(gtscRun.Cycles))
}
