// Quickstart: run one coherence-requiring benchmark (connected
// components) under G-TSC and under Temporal Coherence on the paper's
// 16-SM machine, verify both against the sequential reference, and
// compare cycles, stalls and NoC traffic — the paper's headline
// comparison in ~40 lines.
package main

import (
	"fmt"
	"log"

	"github.com/gtsc-sim/gtsc"
)

func main() {
	wl, ok := gtsc.WorkloadByName("CC")
	if !ok {
		log.Fatal("workload CC not registered")
	}

	type result struct {
		name string
		run  *gtsc.Run
	}
	var results []result
	for _, p := range []struct {
		name  string
		proto gtsc.Protocol
	}{
		{"G-TSC (RC)", gtsc.ProtocolGTSC},
		{"TC    (RC)", gtsc.ProtocolTC},
		{"no-L1 baseline", gtsc.ProtocolBL},
	} {
		cfg := gtsc.DefaultConfig()
		cfg.Mem.Protocol = p.proto
		cfg.SM.Consistency = gtsc.RC

		// Build + Run verifies the result against a sequential
		// reference: a coherence bug would surface as an error here.
		run, err := wl.Build(2).Run(cfg)
		if err != nil {
			log.Fatalf("%s: %v", p.name, err)
		}
		results = append(results, result{p.name, run})
	}

	fmt.Printf("%-16s %10s %12s %12s %10s\n", "config", "cycles", "mem stalls", "NoC flits", "energy")
	for _, r := range results {
		fmt.Printf("%-16s %10d %12d %12d %9.2gJ\n",
			r.name, r.run.Cycles, r.run.SM.MemStallCycles,
			r.run.NoC.TotalFlits(), r.run.EnergyJ.Total())
	}
	base := float64(results[2].run.Cycles)
	fmt.Printf("\nspeedup over the no-L1 baseline: G-TSC %.2fx, TC %.2fx\n",
		base/float64(results[0].run.Cycles), base/float64(results[1].run.Cycles))
	fmt.Printf("G-TSC over TC: %.2fx (paper reports ~1.38x geomean over the coherence suite)\n",
		float64(results[1].run.Cycles)/float64(results[0].run.Cycles))
}
