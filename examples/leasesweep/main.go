// Lease sweep: the paper's Fig 14 claim, interactively. G-TSC's lease
// is a *logical* interval, so performance is insensitive to it (the
// paper sweeps 8-20 and sees no change); TC's lease is *physical
// cycles*, so it trades renewal traffic against write stalls and the
// sweet spot must be tuned per workload. This example sweeps both on
// the same benchmark.
package main

import (
	"fmt"
	"log"

	"github.com/gtsc-sim/gtsc"
)

func main() {
	wl, _ := gtsc.WorkloadByName("STN")

	fmt.Println("G-TSC-RC, logical lease sweep (paper Fig 14):")
	var base uint64
	for _, lease := range []uint64{8, 10, 12, 14, 16, 18, 20} {
		cfg := gtsc.DefaultConfig()
		cfg.Mem.Protocol = gtsc.ProtocolGTSC
		cfg.Mem.GTSC.Lease = lease
		cfg.SM.Consistency = gtsc.RC
		run, err := wl.Build(1).Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = run.Cycles
		}
		fmt.Printf("  lease=%2d: %7d cycles (%.3fx)\n", lease, run.Cycles,
			float64(base)/float64(run.Cycles))
	}

	fmt.Println("\nTC-RC, physical lease sweep (cycles):")
	for _, lease := range []uint64{50, 100, 200, 400, 800, 1600} {
		cfg := gtsc.DefaultConfig()
		cfg.Mem.Protocol = gtsc.ProtocolTC
		cfg.Mem.TC.Lease = lease
		cfg.SM.Consistency = gtsc.RC
		run, err := wl.Build(1).Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		// Under TC-Weak the lease cost shows up at fences: every fence
		// waits for the warp's GWCT (the lease expiry of its stores).
		fmt.Printf("  lease=%4d: %7d cycles, %7d fence-stall cycles, %7d flits\n",
			lease, run.Cycles, run.SM.FenceStallCycles, run.NoC.TotalFlits())
	}

	fmt.Println("\nG-TSC is lease-insensitive (logical time); TC must tune a physical lease.")
}
