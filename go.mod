module github.com/gtsc-sim/gtsc

go 1.22
