package mem

// Pool recycles Msg and Block allocations inside one clock domain of
// the memory hierarchy. Messages flow in closed loops (L1 request ->
// L2 response -> L1, L2 DRAM read -> fill -> L2), so a controller that
// frees every message it consumes and allocates every message it sends
// from its own pool reaches a steady state where the hot paths
// allocate nothing.
//
// Ownership discipline: a message belongs to exactly one component at
// a time — the sender until the transport's Deliver callback runs,
// the receiver afterwards. The receiver frees the message (and its
// Data payload) once the handler returns, which is sound because every
// consumer in this codebase copies what it keeps: fills install block
// contents into a cache array, completions hand data to Done callbacks
// that must not retain it (see coherence.Completion).
//
// Pools are NOT thread-safe. Each pool is owned by one component and
// follows the simulator's two-phase tick ownership rule: an L1's pool
// is touched by its SM's worker during the compute phase and by the
// master goroutine during the hierarchy phase, with the phase barrier
// ordering the two; L2/DRAM pools are hierarchy-phase only.
type Pool struct {
	msgs   []*Msg
	blocks []*Block
}

// poolKeep bounds each free list. Flows between pools are not all
// closed (an L1 gains a fill block per load but only spends blocks on
// stores), so without a cap an unbalanced workload would grow a free
// list forever; past the cap PutX drops the object for the GC.
const poolKeep = 256

// Msg returns a zeroed message.
func (p *Pool) Msg() *Msg {
	if n := len(p.msgs); n > 0 {
		m := p.msgs[n-1]
		p.msgs[n-1] = nil
		p.msgs = p.msgs[:n-1]
		return m
	}
	return &Msg{}
}

// PutMsg recycles a consumed message. Zeroing happens here so Msg()
// hands out the exact equivalent of &Msg{}, and so a pooled message
// never pins its old Data block or payload for the GC.
func (p *Pool) PutMsg(m *Msg) {
	if m == nil || len(p.msgs) >= poolKeep {
		return
	}
	*m = Msg{}
	p.msgs = append(p.msgs, m)
}

// Block returns a zeroed data block.
func (p *Pool) Block() *Block {
	if n := len(p.blocks); n > 0 {
		b := p.blocks[n-1]
		p.blocks[n-1] = nil
		p.blocks = p.blocks[:n-1]
		return b
	}
	return &Block{}
}

// PutBlock recycles a data block (nil is a no-op, so callers can free
// msg.Data unconditionally).
func (p *Pool) PutBlock(b *Block) {
	if b == nil || len(p.blocks) >= poolKeep {
		return
	}
	*b = Block{}
	p.blocks = append(p.blocks, b)
}

// MsgQueue is a FIFO of messages that reuses its backing array: Pop
// advances a head index instead of reslicing, and the array rewinds to
// the front whenever the queue empties. The simulator's queues drain
// fully almost every cycle, so the backing stabilizes at the high-water
// depth and enqueueing stops allocating.
type MsgQueue struct {
	buf  []*Msg
	head int
}

// Push appends a message.
func (q *MsgQueue) Push(m *Msg) { q.buf = append(q.buf, m) }

// Len returns the number of queued messages.
func (q *MsgQueue) Len() int { return len(q.buf) - q.head }

// Empty reports whether the queue is empty.
func (q *MsgQueue) Empty() bool { return q.head == len(q.buf) }

// Head returns the oldest message without removing it.
func (q *MsgQueue) Head() *Msg { return q.buf[q.head] }

// Items returns the queued messages oldest-first, as a view into the
// backing array (valid until the next Push/Pop) — for state digests
// and diagnostics.
func (q *MsgQueue) Items() []*Msg { return q.buf[q.head:] }

// Pop removes and returns the oldest message.
func (q *MsgQueue) Pop() *Msg {
	m := q.buf[q.head]
	q.buf[q.head] = nil // release for the pool/GC
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return m
}
