package mem

import (
	"fmt"
	"io"
	"sort"
)

// DigestInto writes a canonical rendering of the store's contents: the
// full sparse block image in ascending block-address order. The
// rendering is process-independent — it contains no pointer values —
// so equal digests across two processes mean equal memory images.
//
// Zero-filled blocks that were allocated but never written digest
// identically to absent blocks would not; they are included because
// their presence is an architectural effect of the write path and is
// reproduced exactly by deterministic replay.
func (s *Store) DigestInto(w io.Writer) {
	keys := make([]BlockAddr, 0, len(s.blocks))
	for b := range s.blocks {
		keys = append(keys, b)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, b := range keys {
		fmt.Fprintf(w, "blk %#x %x\n", uint64(b), s.blocks[b].Words)
	}
}

// DigestInto writes a canonical rendering of the message. Every field
// is rendered by value (the Data payload is dereferenced into its
// words), so the output is identical across processes for equal
// messages.
func (m *Msg) DigestInto(w io.Writer) {
	fmt.Fprintf(w, "msg %d %#x %d>%d w%d r%d wt%d g%d m%#x id%d wp%d a%d rs%t e%d",
		m.Type, uint64(m.Block), m.Src, m.Dst,
		m.WTS, m.RTS, m.WarpTS, m.GWCT,
		uint32(m.Mask), m.ReqID, m.Warp, m.Atom, m.Reset, m.Epoch)
	if m.Data != nil {
		fmt.Fprintf(w, " d%x", m.Data.Words)
	}
	io.WriteString(w, "\n")
}

// DigestMsgs renders an ordered message queue under a label. Queue
// order is architectural (FIFO order), so it is preserved verbatim.
func DigestMsgs(w io.Writer, label string, msgs []*Msg) {
	if len(msgs) == 0 {
		return
	}
	fmt.Fprintf(w, "%s n=%d\n", label, len(msgs))
	for _, m := range msgs {
		m.DigestInto(w)
	}
}

// DigestBlockMap visits a block-keyed table in ascending block order,
// handing each entry to render. It gives controllers a deterministic
// iteration over their transient-state maps (outstanding misses,
// blocked writes, directory busy entries) regardless of Go's map
// ordering.
func DigestBlockMap[V any](w io.Writer, m map[BlockAddr]V, render func(io.Writer, BlockAddr, V)) {
	if len(m) == 0 {
		return
	}
	keys := make([]BlockAddr, 0, len(m))
	for b := range m {
		keys = append(keys, b)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, b := range keys {
		render(w, b, m[b])
	}
}

// DigestIDTable renders a request-ID-keyed in-flight table as its
// sorted IDs under a label. It is used for tables whose values hold
// completion callbacks (not renderable process-independently); the
// IDs pin the table's occupancy and correlation state, and the
// entries' architectural content is digested where it lives — in the
// messages carrying it and the warps awaiting it.
func DigestIDTable[V any](w io.Writer, label string, m map[uint64]V) {
	if len(m) == 0 {
		return
	}
	ids := make([]uint64, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	fmt.Fprintf(w, "%s %d\n", label, ids)
}
