// Package mem defines the memory primitives shared by every level of
// the simulated hierarchy: byte/block addressing, cache-block payloads
// at word granularity, the backing store that models DRAM contents, and
// the coherence messages exchanged between the private L1 caches and
// the shared L2 banks (Table I of the paper plus the DRAM-side
// messages of Fig 1).
package mem

import (
	"fmt"
	"sort"
)

// Geometry of the simulated memory system. The paper's setup uses
// 128-byte cache lines (GPGPU-Sim default); lanes access 4-byte words.
const (
	BlockBytes    = 128
	WordBytes     = 4
	WordsPerBlock = BlockBytes / WordBytes // 32, one word per lane
	blockShift    = 7
)

// Addr is a byte address in the simulated global memory space.
type Addr uint64

// Block returns the block-aligned address containing a.
func (a Addr) Block() BlockAddr { return BlockAddr(a >> blockShift) }

// WordIndex returns the index of a's word within its block.
func (a Addr) WordIndex() int { return int(a>>2) & (WordsPerBlock - 1) }

// BlockAddr identifies one cache block (the byte address >> 7).
type BlockAddr uint64

// Addr returns the first byte address of the block.
func (b BlockAddr) Addr() Addr { return Addr(b) << blockShift }

// WordAddr returns the byte address of word i within the block.
func (b BlockAddr) WordAddr(i int) Addr { return b.Addr() + Addr(i*WordBytes) }

// String renders the block address in hex.
func (b BlockAddr) String() string { return fmt.Sprintf("blk:%#x", uint64(b)) }

// Block is the data payload of one cache line, at word granularity so
// that per-lane stores can be merged and functionally verified.
type Block struct {
	Words [WordsPerBlock]uint32
}

// WordMask selects a subset of the 32 words of a block; bit i covers
// word i. Coalesced accesses carry the mask of words their lanes touch.
type WordMask uint32

// MaskAll selects every word of a block.
const MaskAll WordMask = 0xFFFFFFFF

// Set returns m with word i selected.
func (m WordMask) Set(i int) WordMask { return m | 1<<uint(i) }

// Has reports whether word i is selected.
func (m WordMask) Has(i int) bool { return m&(1<<uint(i)) != 0 }

// Count returns the number of selected words.
func (m WordMask) Count() int {
	n := 0
	for v := uint32(m); v != 0; v &= v - 1 {
		n++
	}
	return n
}

// Bytes returns the number of data bytes the mask covers.
func (m WordMask) Bytes() int { return m.Count() * WordBytes }

// Merge copies the masked words of src into dst.
func Merge(dst *Block, src *Block, mask WordMask) {
	for i := 0; i < WordsPerBlock; i++ {
		if mask.Has(i) {
			dst.Words[i] = src.Words[i]
		}
	}
}

// Store is the functional backing store: the architected contents of
// the simulated global memory (what DRAM would hold). It is sparse;
// unwritten blocks read as zero.
type Store struct {
	blocks map[BlockAddr]*Block
}

// NewStore returns an empty backing store.
func NewStore() *Store { return &Store{blocks: make(map[BlockAddr]*Block)} }

// ReadBlock copies the current contents of block b into out.
func (s *Store) ReadBlock(b BlockAddr, out *Block) {
	if blk, ok := s.blocks[b]; ok {
		*out = *blk
	} else {
		*out = Block{}
	}
}

// WriteBlock merges the masked words of data into block b.
func (s *Store) WriteBlock(b BlockAddr, data *Block, mask WordMask) {
	blk, ok := s.blocks[b]
	if !ok {
		blk = &Block{}
		s.blocks[b] = blk
	}
	Merge(blk, data, mask)
}

// ReadWord returns the word at byte address a.
func (s *Store) ReadWord(a Addr) uint32 {
	blk, ok := s.blocks[a.Block()]
	if !ok {
		return 0
	}
	return blk.Words[a.WordIndex()]
}

// WriteWord sets the word at byte address a. Used by workloads to
// initialize input data before a kernel launch.
func (s *Store) WriteWord(a Addr, v uint32) {
	b := a.Block()
	blk, ok := s.blocks[b]
	if !ok {
		blk = &Block{}
		s.blocks[b] = blk
	}
	blk.Words[a.WordIndex()] = v
}

// Blocks returns the number of blocks ever written.
func (s *Store) Blocks() int { return len(s.blocks) }

// ForEachBlock visits every allocated block address in ascending
// order. Equivalence tests use it to enumerate the touched address
// space so they can compare two runs' architected memory (the
// L2-overlaid view, not this store's raw image) word for word.
func (s *Store) ForEachBlock(f func(BlockAddr)) {
	keys := make([]BlockAddr, 0, len(s.blocks))
	for b := range s.blocks {
		keys = append(keys, b)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, b := range keys {
		f(b)
	}
}
