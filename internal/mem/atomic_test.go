package mem

import (
	"testing"
	"testing/quick"
)

func TestAtomicApply(t *testing.T) {
	cases := []struct {
		op       AtomicOp
		old, arg uint32
		want     uint32
	}{
		{AtomAdd, 10, 5, 15},
		{AtomAdd, ^uint32(0), 1, 0}, // wraps
		{AtomMin, 10, 5, 5},
		{AtomMin, 5, 10, 5},
		{AtomMax, 10, 5, 10},
		{AtomMax, 5, 10, 10},
	}
	for _, c := range cases {
		if got := c.op.Apply(c.old, c.arg); got != c.want {
			t.Errorf("%v.Apply(%d,%d) = %d, want %d", c.op, c.old, c.arg, got, c.want)
		}
	}
}

// TestAtomicCombineConsistent: applying combined operands must equal
// applying them one at a time — the property warp aggregation relies on.
func TestAtomicCombineConsistent(t *testing.T) {
	for _, op := range []AtomicOp{AtomAdd, AtomMin, AtomMax} {
		op := op
		f := func(old, a, b uint32) bool {
			serial := op.Apply(op.Apply(old, a), b)
			combined := op.Apply(old, op.Combine(a, b))
			return serial == combined
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("%v: %v", op, err)
		}
	}
}

// TestAtomicAddPrefixReconstruction: lane i's hardware return value is
// old + sum of preceding operands — the coalescer's prefix rule.
func TestAtomicAddPrefixReconstruction(t *testing.T) {
	f := func(old uint32, operands []uint32) bool {
		if len(operands) > 8 {
			operands = operands[:8]
		}
		cur := old
		var prefix uint32
		for _, arg := range operands {
			want := cur         // serial old value
			got := old + prefix // reconstruction
			if want != got {
				return false
			}
			cur = AtomAdd.Apply(cur, arg)
			prefix += arg
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAtomicStrings(t *testing.T) {
	if AtomAdd.String() != "add" || AtomMin.String() != "min" || AtomMax.String() != "max" {
		t.Fatal("names wrong")
	}
	if AtomicOp(9).String() != "atom?" {
		t.Fatal("unknown kind name")
	}
}

func TestAtomicUnknownPanics(t *testing.T) {
	for _, f := range []func(){
		func() { AtomicOp(9).Apply(1, 2) },
		func() { AtomicOp(9).Combine(1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestAtomMsgWireSizes(t *testing.T) {
	at := &Msg{Type: BusAtom, Data: &Block{}, Mask: WordMask(0).Set(0)}
	ack := &Msg{Type: BusAtomAck, Data: &Block{}, Mask: WordMask(0).Set(0)}
	if at.WireBytes() <= ctrlBytes || ack.WireBytes() <= ctrlBytes {
		t.Fatal("atomic messages must carry payload bytes")
	}
	// Masked payloads: one word only.
	if at.WireBytes() > ctrlBytes+tsFieldBytes+1+4 {
		t.Fatalf("BusAtom too large: %d", at.WireBytes())
	}
	if BusAtom.String() != "BusAtom" || BusAtomAck.String() != "BusAtomAck" {
		t.Fatal("names wrong")
	}
}
