package mem

// MsgType enumerates the coherence messages of Table I and Fig 1 of
// the paper. The same message vocabulary carries both G-TSC and TC
// traffic; fields that a protocol does not use stay zero and do not
// count toward the wire size.
type MsgType uint8

// Message types exchanged between L1, L2 and DRAM.
const (
	// BusRd is a read or renewal request from L1 to L2. For G-TSC it
	// carries the requester's block wts (0 on a tag miss) and warp_ts.
	BusRd MsgType = iota
	// BusWr is a write-through store request from L1 to L2, carrying
	// the store data, word mask and the writing warp's warp_ts.
	BusWr
	// BusFill is a data response from L2 to L1 (new data + lease).
	BusFill
	// BusRnw is a dataless renewal response from L2 to L1 extending
	// the lease of data the L1 already holds (G-TSC only).
	BusRnw
	// BusWrAck acknowledges a store, carrying the timestamps assigned
	// by L2 (G-TSC) or the global write completion time (TC-Weak).
	BusWrAck
	// DRAMRd is an L2 miss request to the memory partition.
	DRAMRd
	// DRAMWr writes back an evicted dirty L2 block to memory.
	DRAMWr
	// DRAMFill is the memory partition's data response to L2.
	DRAMFill
	// BusAtom is a read-modify-write request performed at the L2
	// (GPU global atomic). Carries combined per-word operands.
	BusAtom
	// BusAtomAck returns an atomic's pre-update values plus the
	// timestamps (G-TSC) or GWCT (TC-Weak) of its write half.
	BusAtomAck
	// BusGetM requests exclusive (writable) ownership of a block from
	// the directory (invalidation-based protocol only).
	BusGetM
	// BusInv tells an L1 to invalidate its copy (directory protocol).
	BusInv
	// BusInvAck acknowledges an invalidation; it carries the block
	// data when the invalidated copy was dirty.
	BusInvAck
	// BusWB writes a dirty evicted L1 block back to the L2
	// (directory protocol; G-TSC and TC L1s are write-through).
	BusWB
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case BusRd:
		return "BusRd"
	case BusWr:
		return "BusWr"
	case BusFill:
		return "BusFill"
	case BusRnw:
		return "BusRnw"
	case BusWrAck:
		return "BusWrAck"
	case DRAMRd:
		return "DRAMRd"
	case DRAMWr:
		return "DRAMWr"
	case DRAMFill:
		return "DRAMFill"
	case BusAtom:
		return "BusAtom"
	case BusAtomAck:
		return "BusAtomAck"
	case BusGetM:
		return "BusGetM"
	case BusInv:
		return "BusInv"
	case BusInvAck:
		return "BusInvAck"
	case BusWB:
		return "BusWB"
	default:
		return "Msg?"
	}
}

// NoWTS is the sentinel a BusWr carries when the storing L1 holds no
// copy of the block (write-no-allocate miss), so the L2 knows there is
// no local base version to keep consistent.
const NoWTS = ^uint64(0)

// Msg is one packet on the interconnect (or on the L2<->DRAM channel).
//
// Timestamp fields are interpreted per protocol: under G-TSC they are
// logical timestamps (wts/rts/warp_ts); under TC, RTS carries the
// lease expiry in global cycles and GWCT the write completion time.
type Msg struct {
	Type  MsgType
	Block BlockAddr

	Src int // originating node: SM index for requests, L2 bank for responses
	Dst int // destination node

	WTS    uint64 // write timestamp (G-TSC)
	RTS    uint64 // read timestamp / lease expiry
	WarpTS uint64 // requesting warp's timestamp (G-TSC)
	GWCT   uint64 // global write completion time (TC-Weak)

	Data *Block   // payload for BusWr/BusFill/DRAM messages, nil otherwise
	Mask WordMask // valid words for write messages

	ReqID uint64   // request/response correlation token assigned by L1
	Warp  int      // issuing warp index within the SM (for acks)
	Atom  AtomicOp // operation kind for BusAtom
	Reset bool     // G-TSC timestamp-overflow reset indication
	Epoch uint64   // G-TSC timestamp epoch (increments on overflow reset)
}

// Wire sizing. Control headers are 8 bytes; each timestamp adds 2 bytes
// (the paper shows 16-bit timestamps suffice); data adds the masked
// words. The NoC serializes packets into flits of FlitBytes.
const (
	ctrlBytes    = 8
	tsFieldBytes = 2
	// FlitBytes is the interconnect flit width (GPGPU-Sim default 32B).
	FlitBytes = 32
)

// WireBytes returns the size of the message on the interconnect.
func (m *Msg) WireBytes() int {
	n := ctrlBytes
	switch m.Type {
	case BusRd:
		n += 2 * tsFieldBytes // wts + warp_ts
	case BusWr:
		n += tsFieldBytes // warp_ts
	case BusFill:
		n += 2 * tsFieldBytes // wts + rts
	case BusRnw:
		n += tsFieldBytes // rts
	case BusWrAck:
		n += 2 * tsFieldBytes // wts + rts (or GWCT)
	case BusAtom:
		n += tsFieldBytes + 1 // warp_ts + op kind
	case BusAtomAck:
		n += 2 * tsFieldBytes
	case BusGetM, BusInv, BusInvAck:
		// control-only coherence messages
	}
	if m.Data != nil {
		if m.Type == BusWr || m.Type == DRAMWr || m.Type == BusAtom || m.Type == BusAtomAck {
			n += m.Mask.Bytes()
		} else {
			n += BlockBytes
		}
	}
	return n
}

// Flits returns the number of NoC flits the message occupies.
func (m *Msg) Flits() int {
	b := m.WireBytes()
	f := (b + FlitBytes - 1) / FlitBytes
	if f < 1 {
		f = 1
	}
	return f
}

// AtomicOp is a read-modify-write operation kind, performed at the
// shared L2 bank (GPU global atomics bypass the L1 data array).
type AtomicOp uint8

// Atomic operation kinds.
const (
	// AtomAdd returns the old value and adds the operand.
	AtomAdd AtomicOp = iota
	// AtomMin returns the old value and stores min(old, operand).
	AtomMin
	// AtomMax returns the old value and stores max(old, operand).
	AtomMax
)

// String names the operation.
func (a AtomicOp) String() string {
	switch a {
	case AtomAdd:
		return "add"
	case AtomMin:
		return "min"
	case AtomMax:
		return "max"
	default:
		return "atom?"
	}
}

// Apply computes the new memory value of the atomic.
func (a AtomicOp) Apply(old, operand uint32) uint32 {
	switch a {
	case AtomAdd:
		return old + operand
	case AtomMin:
		if operand < old {
			return operand
		}
		return old
	case AtomMax:
		if operand > old {
			return operand
		}
		return old
	default:
		panic("mem: unknown atomic op")
	}
}

// Combine folds two operands targeting the same word into one (the
// warp-aggregation the coalescer performs: addition sums, min/max
// reduce). The per-lane return values are reconstructed from the
// pre-update value plus, for add, each lane's running prefix.
func (a AtomicOp) Combine(x, y uint32) uint32 {
	switch a {
	case AtomAdd:
		return x + y
	case AtomMin:
		if y < x {
			return y
		}
		return x
	case AtomMax:
		if y > x {
			return y
		}
		return x
	default:
		panic("mem: unknown atomic op")
	}
}
