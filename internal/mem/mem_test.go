package mem

import (
	"testing"
	"testing/quick"
)

func TestAddrBlockAndWord(t *testing.T) {
	cases := []struct {
		addr  Addr
		block BlockAddr
		word  int
	}{
		{0, 0, 0},
		{4, 0, 1},
		{124, 0, 31},
		{128, 1, 0},
		{0x1000, 0x20, 0},
		{0x1004, 0x20, 1},
	}
	for _, c := range cases {
		if got := c.addr.Block(); got != c.block {
			t.Errorf("%#x.Block() = %#x, want %#x", c.addr, got, c.block)
		}
		if got := c.addr.WordIndex(); got != c.word {
			t.Errorf("%#x.WordIndex() = %d, want %d", c.addr, got, c.word)
		}
	}
}

func TestAddrRoundTrip(t *testing.T) {
	// Property: block.WordAddr(word) inverts (Block, WordIndex) for
	// word-aligned addresses.
	f := func(raw uint64) bool {
		a := Addr(raw &^ 3) // word aligned
		b := a.Block()
		return b.WordAddr(a.WordIndex()) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWordMask(t *testing.T) {
	var m WordMask
	if m.Count() != 0 {
		t.Fatal("empty mask should count 0")
	}
	m = m.Set(0).Set(5).Set(31)
	if !m.Has(0) || !m.Has(5) || !m.Has(31) || m.Has(1) {
		t.Fatalf("mask membership wrong: %#x", m)
	}
	if m.Count() != 3 || m.Bytes() != 12 {
		t.Fatalf("count=%d bytes=%d", m.Count(), m.Bytes())
	}
	if MaskAll.Count() != WordsPerBlock {
		t.Fatal("MaskAll must cover the block")
	}
}

func TestWordMaskCountMatchesNaive(t *testing.T) {
	f := func(m uint32) bool {
		n := 0
		for i := 0; i < 32; i++ {
			if m&(1<<i) != 0 {
				n++
			}
		}
		return WordMask(m).Count() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMerge(t *testing.T) {
	var dst, src Block
	for i := range src.Words {
		src.Words[i] = uint32(i + 100)
	}
	Merge(&dst, &src, WordMask(0).Set(3).Set(7))
	for i, v := range dst.Words {
		want := uint32(0)
		if i == 3 || i == 7 {
			want = uint32(i + 100)
		}
		if v != want {
			t.Fatalf("word %d: got %d want %d", i, v, want)
		}
	}
}

func TestStoreReadWrite(t *testing.T) {
	s := NewStore()
	var out Block
	s.ReadBlock(42, &out)
	if out != (Block{}) {
		t.Fatal("unwritten block must read zero")
	}
	s.WriteWord(0x1004, 7)
	if got := s.ReadWord(0x1004); got != 7 {
		t.Fatalf("got %d", got)
	}
	if got := s.ReadWord(0x1008); got != 0 {
		t.Fatalf("adjacent word polluted: %d", got)
	}
	var blk Block
	blk.Words[2] = 9
	s.WriteBlock(Addr(0x1000).Block(), &blk, WordMask(0).Set(2))
	if got := s.ReadWord(0x1008); got != 9 {
		t.Fatalf("masked block write failed: %d", got)
	}
	if got := s.ReadWord(0x1004); got != 7 {
		t.Fatalf("masked block write clobbered word 1: %d", got)
	}
	if s.Blocks() != 1 {
		t.Fatalf("blocks=%d", s.Blocks())
	}
}

func TestMsgWireSizes(t *testing.T) {
	rd := &Msg{Type: BusRd}
	if rd.WireBytes() != 12 || rd.Flits() != 1 {
		t.Fatalf("BusRd: %d bytes %d flits", rd.WireBytes(), rd.Flits())
	}
	rnw := &Msg{Type: BusRnw}
	if rnw.WireBytes() != 10 || rnw.Flits() != 1 {
		t.Fatalf("BusRnw: %d bytes %d flits", rnw.WireBytes(), rnw.Flits())
	}
	fill := &Msg{Type: BusFill, Data: &Block{}}
	if fill.WireBytes() != 12+BlockBytes {
		t.Fatalf("BusFill bytes: %d", fill.WireBytes())
	}
	if fill.Flits() != 5 { // 140B / 32B
		t.Fatalf("BusFill flits: %d", fill.Flits())
	}
	// A renewal response is much smaller than a fill — the NoC saving
	// the paper's Fig 15 builds on.
	if rnw.Flits() >= fill.Flits() {
		t.Fatal("renewal must be cheaper than fill")
	}
	wr := &Msg{Type: BusWr, Data: &Block{}, Mask: WordMask(0).Set(0).Set(1)}
	if wr.WireBytes() != 10+8 {
		t.Fatalf("BusWr bytes: %d", wr.WireBytes())
	}
	// Masked store payloads only pay for the words they carry.
	wrFull := &Msg{Type: BusWr, Data: &Block{}, Mask: MaskAll}
	if wrFull.WireBytes() <= wr.WireBytes() {
		t.Fatal("full-mask store must be larger")
	}
}

func TestMsgTypeString(t *testing.T) {
	types := []MsgType{BusRd, BusWr, BusFill, BusRnw, BusWrAck, DRAMRd, DRAMWr, DRAMFill}
	seen := map[string]bool{}
	for _, ty := range types {
		s := ty.String()
		if s == "" || s == "Msg?" || seen[s] {
			t.Fatalf("bad or duplicate name %q", s)
		}
		seen[s] = true
	}
	if MsgType(200).String() != "Msg?" {
		t.Fatal("unknown type should stringify as Msg?")
	}
}
