package sched

import (
	"math/rand"
	"testing"
)

func TestHorizonEmpty(t *testing.T) {
	a := NewAgenda()
	if got := a.Horizon(5); got != Never {
		t.Fatalf("empty agenda horizon = %d, want Never", got)
	}
	idx := a.AddSlot()
	if got := a.Wake(idx); got != Never {
		t.Fatalf("fresh slot wake = %d, want Never", got)
	}
	if got := a.Horizon(5); got != Never {
		t.Fatalf("all-Never horizon = %d, want Never", got)
	}
}

func TestHotPinsHorizon(t *testing.T) {
	a := NewAgenda()
	s0, s1 := a.AddSlot(), a.AddSlot()
	a.Schedule(s0, 100)
	a.Schedule(s1, Hot)
	if got := a.Horizon(10); got != 11 {
		t.Fatalf("horizon with hot slot = %d, want 11", got)
	}
	a.Schedule(s1, Never)
	if got := a.Horizon(10); got != 100 {
		t.Fatalf("horizon after hot slot went inert = %d, want 100", got)
	}
}

func TestRescheduleLazyDeletion(t *testing.T) {
	a := NewAgenda()
	s := a.AddSlot()
	a.Schedule(s, 50)
	a.Schedule(s, 200) // the 50 entry is now stale
	if got := a.Horizon(10); got != 200 {
		t.Fatalf("horizon after reschedule = %d, want 200", got)
	}
	a.Schedule(s, 30) // earlier again
	if got := a.Horizon(10); got != 30 {
		t.Fatalf("horizon after earlier reschedule = %d, want 30", got)
	}
	a.Schedule(s, Never)
	if got := a.Horizon(10); got != Never {
		t.Fatalf("horizon after slot went inert = %d, want Never", got)
	}
}

func TestScheduleSameValueIsNoOp(t *testing.T) {
	a := NewAgenda()
	s := a.AddSlot()
	for i := 0; i < 1000; i++ {
		a.Schedule(s, 77)
	}
	if got := len(a.heap); got != 1 {
		t.Fatalf("heap grew to %d entries from repeated identical schedules, want 1", got)
	}
	for i := 0; i < 1000; i++ {
		a.Schedule(s, Hot)
	}
	if a.hot != 1 {
		t.Fatalf("hot count = %d after repeated Hot schedules, want 1", a.hot)
	}
	a.Schedule(s, Never)
	if a.hot != 0 {
		t.Fatalf("hot count = %d after leaving Hot, want 0", a.hot)
	}
}

func TestOverdueWakeIsNotJumpedPast(t *testing.T) {
	a := NewAgenda()
	s := a.AddSlot()
	a.Schedule(s, 8)
	// The engine is at cycle 20 but the slot still claims 8: the
	// horizon must force execution, never skip beyond a due event.
	if got := a.Horizon(20); got != 21 {
		t.Fatalf("horizon over overdue wake = %d, want 21", got)
	}
}

func TestDeterministicTiebreak(t *testing.T) {
	// Same-cycle wakes must surface lowest slot index first regardless
	// of insertion order.
	for trial := 0; trial < 8; trial++ {
		a := NewAgenda()
		idxs := make([]int, 16)
		for i := range idxs {
			idxs[i] = a.AddSlot()
		}
		rng := rand.New(rand.NewSource(int64(trial)))
		perm := rng.Perm(len(idxs))
		for _, i := range perm {
			a.Schedule(idxs[i], 42)
		}
		if got := a.Horizon(0); got != 42 {
			t.Fatalf("horizon = %d, want 42", got)
		}
		if top := a.heap[0]; top.idx != 0 {
			t.Fatalf("trial %d: heap top idx = %d, want 0 (canonical tiebreak)", trial, top.idx)
		}
	}
}

// TestAgendaMatchesNaiveScan drives a randomized schedule/advance
// sequence and checks Horizon against a brute-force scan of the
// authoritative wake slice.
func TestAgendaMatchesNaiveScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := NewAgenda()
	const slots = 24
	for i := 0; i < slots; i++ {
		a.AddSlot()
	}
	naive := func(now uint64) uint64 {
		horizon := uint64(Never)
		for i := 0; i < slots; i++ {
			switch w := a.Wake(i); {
			case w == Never:
			case w <= now: // Hot or overdue
				return now + 1
			case w < horizon:
				horizon = w
			}
		}
		return horizon
	}
	now := uint64(0)
	for step := 0; step < 20000; step++ {
		idx := rng.Intn(slots)
		switch rng.Intn(5) {
		case 0:
			a.Schedule(idx, Hot)
		case 1:
			a.Schedule(idx, Never)
		default:
			a.Schedule(idx, now+1+uint64(rng.Intn(200)))
		}
		if rng.Intn(4) == 0 {
			now += uint64(rng.Intn(3))
		}
		want := naive(now)
		if got := a.Horizon(now); got != want {
			t.Fatalf("step %d now %d: Horizon = %d, naive scan = %d", step, now, got, want)
		}
	}
	// The heap must not retain unbounded garbage: lazy deletion pops
	// stale entries as they surface, so size stays bounded by total
	// pushes minus surfaced stales. Just sanity-check it's not empty
	// logic-free.
	if len(a.heap) > 20000 {
		t.Fatalf("heap retained %d entries", len(a.heap))
	}
}
