// Package sched provides the shared event agenda behind the
// simulator's scheduled-wake engine.
//
// The agenda inverts the legacy timing contract. Instead of the engine
// probing every component every cycle ("tick me, I'll tell you if it
// mattered"), each component owns a slot and registers the next cycle
// at which ticking it could matter ("I'll tell you when to tick me").
// The engine asks Horizon(now) for the earliest such cycle and advances
// time directly to it.
//
// A slot's wake value is one of three classes:
//
//   - Hot: the component must be ticked every cycle (it is actively
//     doing work, or cannot bound its next state change). Any Hot slot
//     pins the horizon to now+1.
//   - Never: the component will not act again until some external input
//     arrives (at which point whoever delivered the input reschedules
//     it). Never slots are invisible to the horizon.
//   - A concrete future cycle c: the component is provably inert until
//     c (a port finishes serializing, a DRAM fill lands, a warp's
//     busy-until expires).
//
// Hot and Never transitions are O(1) and touch no heap state: only
// concrete future cycles enter the min-heap, which is keyed by
// (cycle, slot index) so that ties resolve in canonical component
// order and the agenda is deterministic regardless of insertion order.
// Reschedules use lazy deletion: the wake slice is authoritative and
// stale heap entries are discarded when they surface at the top.
//
// Note the horizon only bounds how far time may jump; on every executed
// cycle the engine still dispatches components in their fixed canonical
// order (see DESIGN.md §7), so the agenda never influences intra-cycle
// ordering — only which cycles execute at all.
package sched

// Never is the sentinel wake cycle for "no scheduled work": the
// component is inert until an external input reschedules it. It is
// shared by every component package (noc, dram, memsys) as the
// NextEvent horizon sentinel too.
const Never = ^uint64(0)

// Hot marks a slot that must be ticked every cycle. The zero value is
// safe as a sentinel because real wake cycles are always strictly in
// the future (>= now+1 >= 1).
const Hot = uint64(0)

// entry is a scheduled (cycle, slot) pair in the min-heap. An entry is
// valid iff wake[idx] still equals at; anything else is a stale
// leftover from a reschedule, discarded lazily.
type entry struct {
	at  uint64
	idx int
}

// Agenda is a deterministic wake-up agenda over a fixed set of slots.
// It is not safe for concurrent use; the engine drives it from the
// serial section of the cycle loop.
type Agenda struct {
	wake []uint64 // authoritative wake per slot: Hot, Never, or a future cycle
	heap []entry  // min-heap on (at, idx) of possibly-stale concrete wakes
	hot  int      // number of slots currently Hot
}

// NewAgenda returns an empty agenda; add slots with AddSlot.
func NewAgenda() *Agenda { return &Agenda{} }

// AddSlot registers a new component slot and returns its index. Slots
// are allocated in canonical component order once at machine
// construction; the index doubles as the deterministic tiebreak for
// same-cycle events. New slots start at Never.
func (a *Agenda) AddSlot() int {
	a.wake = append(a.wake, Never)
	return len(a.wake) - 1
}

// Slots returns the number of registered slots.
func (a *Agenda) Slots() int { return len(a.wake) }

// Wake returns the current wake value of a slot (Hot, Never, or a
// concrete cycle).
func (a *Agenda) Wake(idx int) uint64 { return a.wake[idx] }

// Schedule sets a slot's wake to at (Hot, Never, or a concrete future
// cycle). Rescheduling to the current value is a no-op, so callers may
// re-register unconditionally on every state change without flooding
// the heap with duplicates. Old concrete entries are invalidated
// implicitly (lazy deletion).
func (a *Agenda) Schedule(idx int, at uint64) {
	old := a.wake[idx]
	if old == at {
		return
	}
	if old == Hot {
		a.hot--
	}
	if at == Hot {
		a.hot++
	}
	a.wake[idx] = at
	if at != Hot && at != Never {
		a.push(entry{at: at, idx: idx})
	}
}

// Horizon returns the earliest cycle at which any slot needs to run,
// relative to the current cycle now:
//
//   - now+1 if any slot is Hot (no skipping possible), or if a concrete
//     wake is already due (defensive: the engine should have executed
//     it, but an overdue wake must never be jumped past);
//   - the smallest concrete future wake otherwise;
//   - Never if every slot is inert.
//
// Stale heap entries surfacing at the top are discarded here; the call
// is amortized O(log n).
func (a *Agenda) Horizon(now uint64) uint64 {
	if a.hot > 0 {
		return now + 1
	}
	for len(a.heap) > 0 {
		top := a.heap[0]
		if a.wake[top.idx] != top.at {
			a.pop() // stale: slot was rescheduled since this was pushed
			continue
		}
		if top.at <= now {
			return now + 1
		}
		return top.at
	}
	return Never
}

// less orders heap entries by (cycle, slot index): time first, then
// canonical component order, so the agenda minimum is deterministic
// even when many components wake on the same cycle.
func (a *Agenda) less(i, j int) bool {
	if a.heap[i].at != a.heap[j].at {
		return a.heap[i].at < a.heap[j].at
	}
	return a.heap[i].idx < a.heap[j].idx
}

func (a *Agenda) push(e entry) {
	a.heap = append(a.heap, e)
	i := len(a.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !a.less(i, parent) {
			break
		}
		a.heap[i], a.heap[parent] = a.heap[parent], a.heap[i]
		i = parent
	}
}

func (a *Agenda) pop() {
	n := len(a.heap) - 1
	a.heap[0] = a.heap[n]
	a.heap = a.heap[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && a.less(l, small) {
			small = l
		}
		if r < n && a.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		a.heap[i], a.heap[small] = a.heap[small], a.heap[i]
		i = small
	}
}
