package noc

import (
	"testing"

	"github.com/gtsc-sim/gtsc/internal/mem"
)

type delivery struct {
	node int
	msg  *mem.Msg
	at   uint64
}

func newTestNet(nSM, nBank int, cfg Config) (*Network, *[]delivery, *[]delivery) {
	n := New(cfg, nSM, nBank)
	l2s := &[]delivery{}
	l1s := &[]delivery{}
	var now *uint64
	nowV := uint64(0)
	now = &nowV
	_ = now
	n.DeliverL2 = func(bank int, msg *mem.Msg) { *l2s = append(*l2s, delivery{bank, msg, 0}) }
	n.DeliverL1 = func(sm int, msg *mem.Msg) { *l1s = append(*l1s, delivery{sm, msg, 0}) }
	return n, l2s, l1s
}

func runUntil(n *Network, from, to uint64) uint64 {
	for c := from; c <= to; c++ {
		n.Tick(c)
	}
	return to
}

func TestDeliveryLatency(t *testing.T) {
	n, l2s, _ := newTestNet(2, 2, Config{Latency: 10, InjectQueue: 4})
	n.Tick(1)
	msg := &mem.Msg{Type: mem.BusRd, Src: 0, Dst: 1}
	if !n.SendToL2(msg) {
		t.Fatal("send rejected")
	}
	// Departs at the next tick (cycle 2), 1 flit serialization + 10
	// latency: arrival at cycle 13.
	for c := uint64(2); c <= 12; c++ {
		n.Tick(c)
		if len(*l2s) != 0 {
			t.Fatalf("delivered too early at %d", c)
		}
	}
	n.Tick(13)
	if len(*l2s) != 1 || (*l2s)[0].node != 1 {
		t.Fatalf("delivery missing: %v", l2s)
	}
	if n.Pending() != 0 {
		t.Fatal("pending should drain")
	}
}

func TestSerializationDelaysLargeMessages(t *testing.T) {
	n, _, l1s := newTestNet(1, 1, Config{Latency: 5, InjectQueue: 8})
	n.Tick(1)
	big := &mem.Msg{Type: mem.BusFill, Src: 0, Dst: 0, Data: &mem.Block{}} // 5 flits
	small := &mem.Msg{Type: mem.BusRnw, Src: 0, Dst: 0}                    // 1 flit
	n.SendToL1(big)
	n.SendToL1(small)
	runUntil(n, 2, 30)
	if len(*l1s) != 2 {
		t.Fatalf("expected 2 deliveries, got %d", len(*l1s))
	}
	// The small message serializes after the big one's 5 flits.
	if (*l1s)[0].msg != big || (*l1s)[1].msg != small {
		t.Fatal("order violated")
	}
	st := n.Stats()
	if st.FlitsToL1 != 6 {
		t.Fatalf("flits=%d want 6", st.FlitsToL1)
	}
	if st.MsgsToL1 != 2 || st.MsgsToL2 != 0 {
		t.Fatalf("msg counters wrong: %+v", st)
	}
}

func TestInjectQueueBackpressure(t *testing.T) {
	n, _, _ := newTestNet(1, 1, Config{Latency: 1, InjectQueue: 2})
	// Do not tick: the port queue fills.
	m := func() *mem.Msg { return &mem.Msg{Type: mem.BusRd, Src: 0, Dst: 0} }
	if !n.SendToL2(m()) || !n.SendToL2(m()) {
		t.Fatal("first two sends must be accepted")
	}
	if n.SendToL2(m()) {
		t.Fatal("third send must be rejected (queue full)")
	}
	if n.Pending() != 2 {
		t.Fatalf("pending=%d", n.Pending())
	}
}

func TestPerPortIndependence(t *testing.T) {
	// Two SMs injecting simultaneously do not serialize each other.
	n, l2s, _ := newTestNet(2, 1, Config{Latency: 3, InjectQueue: 4})
	n.Tick(1)
	n.SendToL2(&mem.Msg{Type: mem.BusRd, Src: 0, Dst: 0})
	n.SendToL2(&mem.Msg{Type: mem.BusRd, Src: 1, Dst: 0})
	runUntil(n, 2, 6)
	if len(*l2s) != 2 {
		t.Fatalf("both should arrive by cycle 6, got %d", len(*l2s))
	}
}

func TestQueueDelayAccounting(t *testing.T) {
	n, _, _ := newTestNet(1, 1, Config{Latency: 1, InjectQueue: 8})
	n.Tick(1)
	// Five 5-flit fills: the later ones wait for the port.
	for i := 0; i < 5; i++ {
		n.SendToL1(&mem.Msg{Type: mem.BusFill, Src: 0, Dst: 0, Data: &mem.Block{}})
	}
	runUntil(n, 2, 60)
	if n.Stats().QueueDelay == 0 {
		t.Fatal("queue delay should accumulate under contention")
	}
}

func TestMeshDistanceLatency(t *testing.T) {
	// 16 SMs + 8 banks on a 5x5 mesh: SM0 is adjacent to bank
	// placement start differently than SM far corner.
	n, l2s, _ := newTestNet(16, 8, Config{Topology: Mesh, PerHop: 3, InjectQueue: 8, Latency: 16})
	n.Tick(1)
	near := &mem.Msg{Type: mem.BusRd, Src: 15, Dst: 0} // SM15 at (0,3); bank0 at (1,3): 1 hop
	far := &mem.Msg{Type: mem.BusRd, Src: 0, Dst: 7}   // SM0 at (0,0); bank7 at (3,4): 7 hops
	n.SendToL2(near)
	n.SendToL2(far)
	var nearAt, farAt uint64
	for c := uint64(2); c <= 100; c++ {
		n.Tick(c)
		for _, d := range *l2s {
			if d.msg == near && nearAt == 0 {
				nearAt = c
			}
			if d.msg == far && farAt == 0 {
				farAt = c
			}
		}
	}
	if nearAt == 0 || farAt == 0 {
		t.Fatal("mesh lost messages")
	}
	if farAt <= nearAt {
		t.Fatalf("far route (%d) must take longer than near route (%d)", farAt, nearAt)
	}
}

func TestMeshBisectionThrottles(t *testing.T) {
	cfg := Config{Topology: Mesh, PerHop: 1, InjectQueue: 64, Latency: 16}
	// Uniform random-ish traffic crossing the bisection from many SMs:
	// the mesh must deliver strictly later than a crossbar would.
	run := func(c Config) uint64 {
		n, l2s, _ := newTestNet(16, 8, c)
		n.Tick(1)
		for sm := 0; sm < 16; sm++ {
			for k := 0; k < 4; k++ {
				n.SendToL2(&mem.Msg{Type: mem.BusFill, Src: sm, Dst: (sm + k) % 8, Data: &mem.Block{}})
			}
		}
		var last uint64
		for c := uint64(2); c <= 2000; c++ {
			n.Tick(c)
			if len(*l2s) == 64 {
				last = c
				break
			}
		}
		if last == 0 {
			t.Fatal("traffic did not drain")
		}
		return last
	}
	meshDone := run(cfg)
	xbarDone := run(Config{Topology: Crossbar, Latency: 16, InjectQueue: 64})
	if meshDone <= xbarDone {
		t.Fatalf("mesh (%d) should be slower than crossbar (%d) under bisection pressure", meshDone, xbarDone)
	}
}

// TestInjectionMidQuietWindowMovesWakeUp is the regression test for the
// cached-horizon staleness hazard the per-component dispatcher sleeps
// on: `next` is recomputed only at the end of a real Tick, so when the
// event engine lets a quiet network sleep, an injection arriving
// mid-window (an L1 miss from an SM that kept running) must pull the
// cached wake up THROUGH noteWork, with n.now kept current by Sync —
// otherwise the network would sleep until Never and swallow the
// message. It also pins that sleeping until the claimed wake delivers
// at the exact cycle a tick-every-cycle network delivers at.
func TestInjectionMidQuietWindowMovesWakeUp(t *testing.T) {
	send := func(n *Network) {
		if !n.SendToL2(&mem.Msg{Type: mem.BusRd, Src: 0, Dst: 1}) {
			t.Fatal("send rejected")
		}
	}

	n := New(Config{Latency: 10, InjectQueue: 4}, 2, 2)
	var arrival, cur uint64
	n.DeliverL2 = func(bank int, msg *mem.Msg) { arrival = cur }
	n.DeliverL1 = func(int, *mem.Msg) {}
	n.Tick(1)
	if got := n.NextWork(1); got != uint64(Never) {
		t.Fatalf("quiet network claims work at %d, want Never", got)
	}

	// The engine sleeps the network; machine time advances to cycle 40
	// with only clock syncs (the skip-window resync). An injection then
	// lands mid-window.
	n.Sync(40)
	send(n)
	if got := n.NextWork(40); got != 41 {
		t.Fatalf("wake after mid-quiet-window injection = %d, want 41 (stale cached horizon)", got)
	}

	// Sleep-until-wake discipline: tick only when the claimed wake is
	// due, exactly like TickDue.
	ticks := 0
	for cur = 41; cur <= 100; cur++ {
		if n.NextWork(cur-1) > cur {
			continue
		}
		n.Tick(cur)
		ticks++
		if arrival != 0 {
			break
		}
	}

	// Reference: identical network ticked every cycle.
	ref := New(Config{Latency: 10, InjectQueue: 4}, 2, 2)
	var refArrival, refCur uint64
	ref.DeliverL2 = func(bank int, msg *mem.Msg) { refArrival = refCur }
	ref.DeliverL1 = func(int, *mem.Msg) {}
	for refCur = 1; refCur <= 100; refCur++ {
		ref.Tick(refCur)
		if refCur == 40 {
			send(ref)
		}
		if refArrival != 0 {
			break
		}
	}

	if arrival == 0 || arrival != refArrival {
		t.Fatalf("sleeping network delivered at %d, tick-every-cycle reference at %d", arrival, refArrival)
	}
	if ticks >= int(arrival-40) {
		t.Fatalf("sleeping network ticked %d times for a %d-cycle window; it never actually slept", ticks, arrival-40)
	}
	if n.Pending() != 0 {
		t.Fatal("pending should drain")
	}
	if got := n.NextWork(arrival); got != uint64(Never) {
		t.Fatalf("drained network claims work at %d, want Never", got)
	}
}
