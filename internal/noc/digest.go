package noc

import (
	"fmt"
	"io"
	"sort"
)

// DigestState writes a canonical, process-independent rendering of the
// interconnect: per-port queues in port order, and the full in-flight
// wire sorted by (arrival, sequence) — unlike DumpState's diagnostic
// view, nothing is capped. The sequence counter is included because it
// seeds future arrival ordering.
func (n *Network) DigestState(w io.Writer) {
	fmt.Fprintf(w, "noc now=%d seq=%d inflight=%d bis=%d\n",
		n.now, n.seqCtr, n.inFlight, n.mesh.bisFree)
	digestPorts(w, "toL2", n.toL2)
	digestPorts(w, "toL1", n.toL1)
	wire := make([]arrival, len(n.wire))
	copy(wire, n.wire)
	sort.Slice(wire, func(i, j int) bool {
		if wire[i].at != wire[j].at {
			return wire[i].at < wire[j].at
		}
		return wire[i].seq < wire[j].seq
	})
	for _, a := range wire {
		fmt.Fprintf(w, "wire %d %d %t ", a.at, a.seq, a.toL2)
		a.msg.DigestInto(w)
	}
}

func digestPorts(w io.Writer, label string, ports []*port) {
	for i, p := range ports {
		if p.len() == 0 && p.busyUntil == 0 {
			continue
		}
		fmt.Fprintf(w, "port %s[%d] busy=%d\n", label, i, p.busyUntil)
		for j := p.head; j < len(p.q); j++ {
			fmt.Fprintf(w, "q enq=%d ", p.q[j].enq)
			p.q[j].msg.DigestInto(w)
		}
	}
}
