package noc

import "github.com/gtsc-sim/gtsc/internal/mem"

// Topology selects the interconnect model.
type Topology uint8

// Topologies.
const (
	// Crossbar is the paper's assumption: uniform latency between any
	// SM and any bank (default).
	Crossbar Topology = iota
	// Mesh is a 2D mesh with XY routing: latency grows with Manhattan
	// distance and traffic crossing the horizontal bisection
	// serializes over its links — the first-order costs a real mesh
	// adds over a crossbar. Exposed for topology ablations.
	Mesh
)

// String names the topology.
func (t Topology) String() string {
	if t == Mesh {
		return "mesh"
	}
	return "crossbar"
}

// meshState holds the placement and bisection bookkeeping for Mesh
// mode. SM nodes fill the grid row-major from the top-left; bank nodes
// continue after them, which naturally spreads banks across the lower
// rows (memory partitions on the die edge).
type meshState struct {
	width int
	nSM   int
	// bisection serialization: one flit per cycle per vertical link
	// crossing the mid row.
	bisFree  uint64
	bisWidth uint64
}

func (n *Network) initMesh(nSM, nBank int) {
	total := nSM + nBank
	w := 1
	for w*w < total {
		w++
	}
	n.mesh = meshState{width: w, nSM: nSM, bisWidth: uint64(w)}
}

// pos returns a node's mesh coordinates. Requests address SMs
// (id < nSM) and banks (id >= 0 on the bank side); toL2 tells which
// namespace the id lives in.
func (m *meshState) pos(id int, isBank bool) (x, y int) {
	node := id
	if isBank {
		node = m.nSM + id
	}
	return node % m.width, node / m.width
}

// hops returns the Manhattan distance between an SM and a bank.
func (m *meshState) hops(sm, bank int) int {
	sx, sy := m.pos(sm, false)
	bx, by := m.pos(bank, true)
	dx := sx - bx
	if dx < 0 {
		dx = -dx
	}
	dy := sy - by
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// crossesBisection reports whether the XY route between an SM and a
// bank crosses the grid's horizontal mid-line.
func (m *meshState) crossesBisection(sm, bank int) bool {
	_, sy := m.pos(sm, false)
	_, by := m.pos(bank, true)
	mid := m.width / 2
	return (sy < mid) != (by < mid)
}

// meshLatency computes the pipe latency for msg under Mesh: PerHop
// cycles per hop plus inject/eject overhead.
func (n *Network) meshLatency(msg *mem.Msg, toL2 bool) uint64 {
	sm, bank := msg.Src, msg.Dst
	if !toL2 {
		sm, bank = msg.Dst, msg.Src
	}
	return uint64(n.mesh.hops(sm, bank))*n.cfg.PerHop + 2
}

// bisectionDelay serializes flits that cross the bisection: each
// crossing packet occupies one of the width vertical links for its
// flit count. Returns the additional queueing delay.
func (n *Network) bisectionDelay(msg *mem.Msg, toL2 bool, depart uint64) uint64 {
	sm, bank := msg.Src, msg.Dst
	if !toL2 {
		sm, bank = msg.Dst, msg.Src
	}
	if !n.mesh.crossesBisection(sm, bank) {
		return 0
	}
	flits := uint64(msg.Flits())
	// The shared links admit bisWidth flits per cycle in aggregate;
	// model them as one resource running bisWidth times faster.
	cost := (flits + n.mesh.bisWidth - 1) / n.mesh.bisWidth
	start := depart
	if n.mesh.bisFree > start {
		start = n.mesh.bisFree
	}
	n.mesh.bisFree = start + cost
	return start - depart
}
