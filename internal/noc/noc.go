// Package noc models the on-chip interconnect between the SMs' private
// L1 caches and the shared L2 banks: a crossbar with per-port
// serialization (one flit per cycle per injection port), a fixed pipe
// latency, and bounded injection queues that exert backpressure on the
// cache controllers. NoC bandwidth is the GPU's scarce resource the
// paper's traffic results (Fig 15) revolve around, so every message's
// flit count is accounted.
package noc

import (
	"sort"

	"github.com/gtsc-sim/gtsc/internal/diag"
	"github.com/gtsc-sim/gtsc/internal/mem"
	"github.com/gtsc-sim/gtsc/internal/sched"
	"github.com/gtsc-sim/gtsc/internal/stats"
)

// Config sets the interconnect parameters.
type Config struct {
	// Topology selects crossbar (default, the paper's model) or mesh.
	Topology Topology
	// Latency is the crossbar pipe traversal latency in cycles,
	// applied after serialization (default 16).
	Latency uint64
	// PerHop is the mesh per-hop latency in cycles (default 3).
	PerHop uint64
	// InjectQueue is the per-port injection queue depth in messages
	// (default 8). A full queue rejects TrySend.
	InjectQueue int
}

// DefaultConfig returns the parameters used by the paper-scale setup.
func DefaultConfig() Config { return Config{Latency: 16, InjectQueue: 8} }

// DefaultMeshConfig returns a 2D-mesh interconnect configuration.
func DefaultMeshConfig() Config {
	cfg := DefaultConfig()
	cfg.Topology = Mesh
	return cfg
}

// Network is a crossbar between nSM request ports and nBank response
// ports. Delivery callbacks hand arrived messages to the receiving
// controller.
type Network struct {
	cfg    Config
	now    uint64
	next   uint64  // cached earliest cycle ticking could change state (lower bound; Never when empty)
	toL2   []*port // one per SM
	toL1   []*port // one per L2 bank
	wire   arrivalHeap
	seqCtr uint64
	stats  stats.NoCStats
	mesh   meshState

	// DeliverL2 receives messages addressed to bank Dst.
	DeliverL2 func(bank int, msg *mem.Msg)
	// DeliverL1 receives messages addressed to SM Dst.
	DeliverL1 func(sm int, msg *mem.Msg)

	inFlight    int
	deliveredL2 uint64 // lifetime count of wire deliveries into L2 banks
}

// DeliveredL2 returns the lifetime count of messages delivered into L2
// banks. The relaxed exchange compares successive values to learn,
// in O(1), whether a tick handed any bank new work.
func (n *Network) DeliveredL2() uint64 { return n.deliveredL2 }

// New builds a crossbar with nSM SM-side ports and nBank bank-side ports.
func New(cfg Config, nSM, nBank int) *Network {
	n := &Network{cfg: cfg, next: Never}
	if n.cfg.Latency == 0 {
		n.cfg.Latency = DefaultConfig().Latency
	}
	if n.cfg.InjectQueue == 0 {
		n.cfg.InjectQueue = DefaultConfig().InjectQueue
	}
	if n.cfg.PerHop == 0 {
		n.cfg.PerHop = 3
	}
	if n.cfg.Topology == Mesh {
		n.initMesh(nSM, nBank)
	}
	n.toL2 = make([]*port, nSM)
	for i := range n.toL2 {
		n.toL2[i] = &port{cap: n.cfg.InjectQueue}
	}
	n.toL1 = make([]*port, nBank)
	for i := range n.toL1 {
		n.toL1[i] = &port{cap: n.cfg.InjectQueue}
	}
	return n
}

// Stats returns the accumulated traffic counters.
func (n *Network) Stats() *stats.NoCStats { return &n.stats }

// Pending reports messages queued or in flight, for drain checks.
func (n *Network) Pending() int { return n.inFlight }

// DumpState snapshots the interconnect for failure diagnostics: port
// queue depths and the oldest in-flight wire transactions (capped at
// diag.WireCap).
func (n *Network) DumpState() diag.NoCState {
	s := diag.NoCState{InFlight: n.inFlight, WireTotal: len(n.wire)}
	for i, p := range n.toL2 {
		if p.len() > 0 || p.busyUntil > n.now {
			s.ToL2 = append(s.ToL2, diag.PortState{ID: i, Queue: p.len(), BusyUntil: p.busyUntil})
		}
	}
	for i, p := range n.toL1 {
		if p.len() > 0 || p.busyUntil > n.now {
			s.ToL1 = append(s.ToL1, diag.PortState{ID: i, Queue: p.len(), BusyUntil: p.busyUntil})
		}
	}
	wire := make([]arrival, len(n.wire))
	copy(wire, n.wire)
	sort.Slice(wire, func(i, j int) bool {
		if wire[i].at != wire[j].at {
			return wire[i].at < wire[j].at
		}
		return wire[i].seq < wire[j].seq
	})
	for _, a := range wire {
		if len(s.Wire) >= diag.WireCap {
			break
		}
		s.Wire = append(s.Wire, diag.TxnState{
			Due: a.at, Type: a.msg.Type.String(), Block: a.msg.Block.String(),
			Src: a.msg.Src, Dst: a.msg.Dst, ToL2: a.toL2,
		})
	}
	return s
}

// SendToL2 injects a request from SM msg.Src toward bank msg.Dst.
func (n *Network) SendToL2(msg *mem.Msg) bool {
	p := n.toL2[msg.Src]
	if !p.push(msg, n.now) {
		return false
	}
	n.inFlight++
	n.noteWork(p)
	return true
}

// SendToL1 injects a response from bank msg.Src toward SM msg.Dst.
func (n *Network) SendToL1(msg *mem.Msg) bool {
	p := n.toL1[msg.Src]
	if !p.push(msg, n.now) {
		return false
	}
	n.inFlight++
	n.noteWork(p)
	return true
}

// noteWork lowers the cached next-event cycle after an injection: the
// port just became (or stayed) non-empty, so its head can serialize no
// earlier than the later of the port going un-busy and the next tick.
//
// Staleness audit (every event that can schedule EARLIER work must
// invalidate the cache, or NextWork overclaims and the wake engine
// sleeps through real work):
//
//   - Injection (SendToL2/SendToL1): handled here, on every push.
//   - Port credit return (busyUntil expiry): busyUntil only ever moves
//     inside drainPort, which runs inside Tick, and Tick rebuilds the
//     cache from its drain results — already covered.
//   - Wire arrivals: pushed only by drainPort; Tick's post-drain wire
//     top check covers them.
//
// The one remaining hazard is the clock itself: the clamp below reads
// n.now, so if the network's clock lags the machine's (its tick was
// skipped by the per-component dispatcher), an injection would register
// a wake in the PAST and Horizon would clamp it into an extra no-op
// tick at best — or, worse, the enqueue timestamp behind QueueDelay
// would be wrong. Sync keeps n.now current on exactly the cycles Tick
// is skipped, closing that hole; TestNoCWakeMovesUpOnInject pins the
// mid-quiet-window behaviour.
func (n *Network) noteWork(p *port) {
	if c := max(p.busyUntil, n.now+1); c < n.next {
		n.next = c
	}
}

// Sync advances the network's local clock without ticking it. The
// per-component wake dispatcher calls this on executed cycles where
// the network's wake is not due: n.now feeds the enqueue timestamps
// behind the QueueDelay stat and the noteWork clamp, so it must track
// the global clock even on cycles the tick body provably would not
// run. It touches nothing else — exactly what Tick does on a quiet
// cycle (now < n.next), minus the due-check.
func (n *Network) Sync(now uint64) { n.now = now }

// Tick serializes queued messages onto the wire and delivers arrivals.
//
// The cached next-event cycle makes ticking a provably idle network
// O(1): n.next is a lower bound on the first cycle at which any port
// head could serialize or any wire arrival come due (maintained by
// noteWork on injection and recomputed after real work below), so when
// now < n.next the legacy body would scan every port and the wire top
// and do nothing — we return without the scan, leaving identical state.
func (n *Network) Tick(now uint64) {
	n.now = now
	if now < n.next {
		return
	}
	// The cache is rebuilt incrementally during the drains below rather
	// than by a trailing NextEvent rescan: each port's head-serialize
	// cycle is known the moment its drain stops, and the wire's earliest
	// arrival is its heap top once the due deliveries pop. Delivery
	// callbacks can inject new messages mid-tick; resetting the cache to
	// Never first lets noteWork fold those in, and the final min keeps
	// the result identical to the full rescan.
	n.next = Never
	next := uint64(Never)
	for _, p := range n.toL2 {
		if c := n.drainPort(p, true, now); c < next {
			next = c
		}
	}
	for _, p := range n.toL1 {
		if c := n.drainPort(p, false, now); c < next {
			next = c
		}
	}
	for len(n.wire) > 0 && n.wire[0].at <= now {
		a := n.wire.pop()
		n.inFlight--
		if a.toL2 {
			n.deliveredL2++
			n.DeliverL2(a.msg.Dst, a.msg)
		} else {
			n.DeliverL1(a.msg.Dst, a.msg)
		}
	}
	if len(n.wire) > 0 {
		if c := max(n.wire[0].at, now+1); c < next {
			next = c
		}
	}
	if next < n.next {
		n.next = next
	}
}

// drainPort serializes the port's due heads onto the wire and returns
// the cycle its remaining head can next serialize (Never if it drained
// empty), feeding Tick's incremental next-event rebuild.
func (n *Network) drainPort(p *port, toL2 bool, now uint64) uint64 {
	for p.len() > 0 && p.busyUntil <= now {
		head := p.pop()
		msg := head.msg
		n.stats.QueueDelay += now - head.enq
		flits := uint64(msg.Flits())
		p.busyUntil = now + flits
		bytes := uint64(msg.WireBytes())
		if toL2 {
			n.stats.MsgsToL2++
			n.stats.FlitsToL2 += flits
			n.stats.BytesToL2 += bytes
		} else {
			n.stats.MsgsToL1++
			n.stats.FlitsToL1 += flits
			n.stats.BytesToL1 += bytes
		}
		lat := n.cfg.Latency
		if n.cfg.Topology == Mesh {
			lat = n.meshLatency(msg, toL2)
			lat += n.bisectionDelay(msg, toL2, now+flits)
		}
		n.wire.push(arrival{at: now + flits + lat, seq: n.seq(), msg: msg, toL2: toL2})
	}
	if p.len() == 0 {
		return Never
	}
	return max(p.busyUntil, now+1)
}

// seq is a per-network monotone counter used as the FIFO tiebreak for
// same-cycle arrivals. It is a Network field (not a package global) so
// that concurrently running simulations never share mutable state.
func (n *Network) seq() uint64 { n.seqCtr++; return n.seqCtr }

type queued struct {
	msg *mem.Msg
	enq uint64
}

// port is a bounded FIFO injection queue. Dequeue advances a head
// index instead of reslicing so the backing array is reused once the
// queue drains, keeping the per-message cost allocation-free in
// steady state.
type port struct {
	q         []queued
	head      int
	cap       int
	busyUntil uint64
}

func (p *port) len() int { return len(p.q) - p.head }

func (p *port) push(m *mem.Msg, now uint64) bool {
	if p.len() >= p.cap {
		return false
	}
	p.q = append(p.q, queued{msg: m, enq: now})
	return true
}

func (p *port) pop() queued {
	v := p.q[p.head]
	p.q[p.head] = queued{} // drop the msg reference for the GC
	p.head++
	if p.head == len(p.q) {
		p.q = p.q[:0]
		p.head = 0
	}
	return v
}

type arrival struct {
	at   uint64
	seq  uint64 // FIFO tiebreak for same-cycle arrivals
	msg  *mem.Msg
	toL2 bool
}

// arrivalHeap is a hand-rolled binary min-heap ordered by (at, seq).
// It replaces container/heap to avoid the interface boxing that
// allocated on every wire push/pop; (at, seq) is a total order (seq is
// unique per network), so pop order is identical.
type arrivalHeap []arrival

func (h arrivalHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *arrivalHeap) push(a arrival) {
	*h = append(*h, a)
	s := *h
	for i := len(s) - 1; i > 0; {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *arrivalHeap) pop() arrival {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s[last] = arrival{} // drop the msg reference for the GC
	s = s[:last]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= len(s) {
			break
		}
		c := l
		if r < len(s) && s.less(r, l) {
			c = r
		}
		if !s.less(c, i) {
			break
		}
		s[i], s[c] = s[c], s[i]
		i = c
	}
	return top
}

// Never is the NextEvent result when no event is scheduled at all
// (shared sentinel, see internal/sched).
const Never = sched.Never

// NextEvent returns the earliest future cycle (> now) at which ticking
// the network could change any state: the earliest cycle a non-empty
// injection port can serialize its head onto the wire, or the earliest
// wire arrival. It returns Never when the network is completely empty.
// The cycle-skipping engine uses this to fast-forward the clock across
// provably idle cycles without perturbing delivery order.
func (n *Network) NextEvent(now uint64) uint64 {
	next := uint64(Never)
	for _, p := range n.toL2 {
		if p.len() > 0 {
			next = min(next, max(p.busyUntil, now+1))
		}
	}
	for _, p := range n.toL1 {
		if p.len() > 0 {
			next = min(next, max(p.busyUntil, now+1))
		}
	}
	if len(n.wire) > 0 {
		next = min(next, max(n.wire[0].at, now+1))
	}
	return next
}

// NextWork returns the cached next-event cycle in O(1) for the
// scheduled-wake engine. It is exact (equal to NextEvent) whenever the
// network was ticked at its current clock, and otherwise still a sound
// wake cycle: the cache only ever under-estimates (candidates were
// clamped to an older now+1), and under-estimates are clamped back up
// to now+1 here, which merely schedules a no-op tick.
func (n *Network) NextWork(now uint64) uint64 {
	if n.next <= now {
		return now + 1
	}
	return n.next
}

// NextL1Arrival returns a sound lower bound on the earliest cycle at
// which any in-flight L1-bound message can be delivered: the minimum
// over wire arrivals already bound for L1s and the earliest possible
// arrival of each toL1 port's head (serialize no earlier than the
// port frees, then flits plus base route latency — the mesh's
// bisection stall only ever adds delay, so omitting it keeps the
// bound sound). Never when nothing L1-bound is in flight. The relaxed
// engine uses this to pull epoch barriers in to response arrivals so
// a stalled SM observes its data without waiting out the full slack.
func (n *Network) NextL1Arrival(now uint64) uint64 {
	next := uint64(Never)
	for _, a := range n.wire {
		if !a.toL2 && a.at < next {
			next = a.at
		}
	}
	for _, p := range n.toL1 {
		if p.len() == 0 {
			continue
		}
		msg := p.q[p.head].msg
		lat := n.cfg.Latency
		if n.cfg.Topology == Mesh {
			lat = n.meshLatency(msg, false)
		}
		if at := max(p.busyUntil, now+1) + uint64(msg.Flits()) + lat; at < next {
			next = at
		}
	}
	return next
}

// InjectSpaceToL2 returns how many more messages SM sm's injection
// port accepts before backpressuring. The port only drains inside
// Tick, so during the SM compute phase (which runs after the network
// tick) the vacancy is exact — the staged-commit machinery uses it to
// admit precisely the sends that would have succeeded serially.
func (n *Network) InjectSpaceToL2(sm int) int {
	p := n.toL2[sm]
	return p.cap - p.len()
}
