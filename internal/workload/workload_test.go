package workload

import (
	"testing"

	"github.com/gtsc-sim/gtsc/internal/gpu"
	"github.com/gtsc-sim/gtsc/internal/memsys"
	"github.com/gtsc-sim/gtsc/internal/sim"
)

// testConfig builds a reduced machine (4 SMs) so the full suite runs
// quickly under `go test`.
func testConfig(p memsys.Protocol, c gpu.Consistency) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Mem.Protocol = p
	cfg.Mem.NumSMs = 4
	cfg.Mem.NumBanks = 4
	cfg.SM.Consistency = c
	cfg.MaxCycles = 20_000_000
	return cfg
}

func coherentConfigs() map[string]sim.Config {
	return map[string]sim.Config{
		"gtsc-rc": testConfig(memsys.GTSC, gpu.RC),
		"gtsc-sc": testConfig(memsys.GTSC, gpu.SC),
		"tc-rc":   testConfig(memsys.TC, gpu.RC),
		"tc-sc":   testConfig(memsys.TC, gpu.SC),
		"bl-rc":   testConfig(memsys.BL, gpu.RC),
	}
}

// TestCoherenceSetConverges verifies all six coherence-requiring
// workloads reach the exact sequential fixpoint under every coherent
// configuration.
func TestCoherenceSetConverges(t *testing.T) {
	for _, w := range CoherenceSet() {
		for name, cfg := range coherentConfigs() {
			w, cfg := w, cfg
			t.Run(w.Name+"/"+name, func(t *testing.T) {
				t.Parallel()
				inst := w.Build(1)
				run, err := inst.Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if run.Cycles == 0 || run.L1.Loads == 0 && cfg.Mem.Protocol != memsys.BL {
					t.Fatalf("suspicious stats: %v", run)
				}
			})
		}
	}
}

// TestNonCoherenceSet verifies the six coherence-free workloads under
// every configuration including the non-coherent L1.
func TestNonCoherenceSet(t *testing.T) {
	cfgs := coherentConfigs()
	cfgs["l1nc-rc"] = testConfig(memsys.L1NC, gpu.RC)
	cfgs["l1nc-sc"] = testConfig(memsys.L1NC, gpu.SC)
	for _, w := range NonCoherenceSet() {
		for name, cfg := range cfgs {
			w, cfg := w, cfg
			t.Run(w.Name+"/"+name, func(t *testing.T) {
				t.Parallel()
				if _, err := w.Build(1).Run(cfg); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestCoherenceSetNeedsCoherence demonstrates the paper's premise: a
// non-coherent L1 produces wrong results on the first benchmark set
// (stale labels never propagate between SMs).
func TestCoherenceSetNeedsCoherence(t *testing.T) {
	cfg := testConfig(memsys.L1NC, gpu.RC)
	inst := CC().Build(1)
	if _, err := inst.Run(cfg); err == nil {
		t.Fatal("CC verified successfully under a non-coherent L1; it must not")
	}
}

func TestWorkloadRegistry(t *testing.T) {
	all := All()
	if len(all) != 12 {
		t.Fatalf("expected 12 workloads, got %d", len(all))
	}
	seen := map[string]bool{}
	for _, w := range all {
		if seen[w.Name] {
			t.Fatalf("duplicate workload %s", w.Name)
		}
		seen[w.Name] = true
		if w.Description == "" {
			t.Fatalf("%s: empty description", w.Name)
		}
		if _, ok := ByName(w.Name); !ok {
			t.Fatalf("%s not found by name", w.Name)
		}
	}
	if len(CoherenceSet()) != 6 || len(NonCoherenceSet()) != 6 {
		t.Fatal("sets must be 6+6")
	}
	for _, w := range CoherenceSet() {
		if !w.NeedsCoherence {
			t.Fatalf("%s should need coherence", w.Name)
		}
	}
	for _, w := range NonCoherenceSet() {
		if w.NeedsCoherence {
			t.Fatalf("%s should not need coherence", w.Name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName(nope) should fail")
	}
}
