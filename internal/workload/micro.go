package workload

import (
	"fmt"

	"github.com/gtsc-sim/gtsc/internal/gpu"
	"github.com/gtsc-sim/gtsc/internal/mem"
)

// Microbenchmarks: small kernels isolating one memory-system behaviour
// each, used by the characterization experiment and the protocol
// stress tests. They are not part of the paper's twelve-benchmark
// suite (Micro() keeps them in their own registry).
//
//	HIST  — atomic histogram (global atomics, heavy same-block conflicts)
//	FS    — false sharing (distinct words of one block across all SMs)
//	BCAST — read-only broadcast (renewal/lease efficiency)
//	STRM  — write-once streaming (write-no-allocate path, DRAM bandwidth)
//	PING  — cross-SM max-reduction ping-pong (atomics + fences)
//	PIPE  — two-kernel producer/consumer (kernel-boundary handoff)

// Micro returns the microbenchmark registry.
func Micro() []*Workload {
	return []*Workload{HIST(), FS(), BCAST(), STRM(), PING(), PIPE()}
}

// MicroByName looks a microbenchmark up by name.
func MicroByName(name string) (*Workload, bool) {
	for _, w := range Micro() {
		if w.Name == name {
			return w, true
		}
	}
	return nil, false
}

// HIST builds a histogram with atomic adds: every thread classifies
// items into a small bucket array shared by the whole grid. Exact
// counts are verified — atomics serialize at the L2, so this is
// correct under every configuration, including the non-coherent L1.
func HIST() *Workload {
	return &Workload{
		Name:        "HIST",
		Description: "atomic histogram over shared buckets (global atomics, hot blocks)",
		Build: func(scale int) *Instance {
			const buckets = 64
			itemsPerThread := 6 * scale
			ctas, warps := ctaScale(scale), 2
			total := ctas * warps * gpu.WarpWidth

			lay := newLayout(0x2000000)
			bucketBase := lay.array(buckets)

			want := make([]uint32, buckets)
			item := func(gtid, i int) int { return (gtid*131 + i*17) % buckets }
			for t := 0; t < total; t++ {
				for i := 0; i < itemsPerThread; i++ {
					want[item(t, i)]++
				}
			}

			kernel := &gpu.Kernel{
				Name: "HIST", CTAs: ctas, WarpsPerCTA: warps, Regs: 2,
				ProgramFor: func(w *gpu.Warp) gpu.Program {
					return &gpu.LoopProgram{
						Iters: itemsPerThread,
						Body: func(i int) []*gpu.Instr {
							return []*gpu.Instr{
								gpu.Atomic(mem.AtomAdd, 0, always(func(t *gpu.Thread) mem.Addr {
									return wordAddr(bucketBase, item(t.GTID, i))
								}), func(t *gpu.Thread) uint32 { return 1 }),
								gpu.Comp(2),
							}
						},
					}
				},
			}
			return &Instance{
				Kernels: []*gpu.Kernel{kernel},
				Verify: func(read func(mem.Addr) uint32) error {
					return compareArrays("HIST buckets", readBack(read, bucketBase, buckets), want)
				},
			}
		},
	}
}

// FS is deliberate false sharing: every thread read-modify-writes its
// own word, but 32 threads from different SMs share each block. Under
// G-TSC this hammers the update-visibility and stale-base-store paths.
func FS() *Workload {
	return &Workload{
		Name:           "FS",
		Description:    "false sharing: per-thread words interleaved across SMs in shared blocks",
		NeedsCoherence: true,
		Build: func(scale int) *Instance {
			iters := 6 * scale
			ctas, warps := ctaScale(scale), 1
			total := ctas * warps * gpu.WarpWidth

			lay := newLayout(0x2400000)
			base := lay.array(total)

			// Interleave so each block's words belong to 32 different
			// CTAs (word index = CTA, block index = lane).
			slot := func(gtid int) int {
				cta := gtid / (warps * gpu.WarpWidth)
				lane := gtid % gpu.WarpWidth
				return lane*ctas + cta
			}
			want := make([]uint32, total)
			for t := 0; t < total; t++ {
				want[slot(t)] = uint32(iters)
			}

			kernel := &gpu.Kernel{
				Name: "FS", CTAs: ctas, WarpsPerCTA: warps, Regs: 2,
				NeedsCoherence: true,
				ProgramFor: func(w *gpu.Warp) gpu.Program {
					own := always(func(t *gpu.Thread) mem.Addr {
						return wordAddr(base, slot(t.GTID))
					})
					return &gpu.LoopProgram{
						Iters: iters,
						Body: func(i int) []*gpu.Instr {
							return []*gpu.Instr{
								gpu.Load(0, own),
								gpu.ALU(func(t *gpu.Thread) { t.Regs[0]++ }, 0),
								gpu.Store(own, func(t *gpu.Thread) uint32 { return t.Regs[0] }, 0),
								gpu.Fence(),
							}
						},
					}
				},
			}
			return &Instance{
				Kernels: []*gpu.Kernel{kernel},
				Verify: func(read func(mem.Addr) uint32) error {
					return compareArrays("FS words", readBack(read, base, total), want)
				},
			}
		},
	}
}

// BCAST has every thread re-read the same small read-only table each
// iteration: the best case for leases (one fill, then pure hits or
// dataless renewals).
func BCAST() *Workload {
	return &Workload{
		Name:        "BCAST",
		Description: "read-only broadcast table (lease/renewal efficiency)",
		Build: func(scale int) *Instance {
			const tableWords = 64
			iters := 10 * scale
			ctas, warps := ctaScale(scale), 2
			total := ctas * warps * gpu.WarpWidth

			lay := newLayout(0x2800000)
			tabBase := lay.array(tableWords)
			outBase := lay.array(total)

			r := newRNG(977)
			tab := make([]uint32, tableWords)
			for i := range tab {
				tab[i] = uint32(r.intn(1 << 16))
			}
			want := make([]uint32, total)
			for t := 0; t < total; t++ {
				var acc uint32
				for i := 0; i < iters; i++ {
					acc += tab[(t+i)%tableWords]
				}
				want[t] = acc
			}

			kernel := &gpu.Kernel{
				Name: "BCAST", CTAs: ctas, WarpsPerCTA: warps, Regs: 2,
				Init: func(store *mem.Store) { writeArray(store, tabBase, tab) },
				ProgramFor: func(w *gpu.Warp) gpu.Program {
					return &gpu.LoopProgram{
						Iters: iters,
						Body: func(i int) []*gpu.Instr {
							return []*gpu.Instr{
								gpu.Load(1, always(func(t *gpu.Thread) mem.Addr {
									return wordAddr(tabBase, (t.GTID+i)%tableWords)
								})),
								gpu.ALU(func(t *gpu.Thread) {
									if i == 0 {
										t.Regs[0] = 0
									}
									t.Regs[0] += t.Regs[1]
								}, 0, 1),
							}
						},
					}
				},
			}
			kernel.ProgramFor = withEpilogue(kernel.ProgramFor,
				gpu.Store(always(func(t *gpu.Thread) mem.Addr {
					return wordAddr(outBase, t.GTID)
				}), func(t *gpu.Thread) uint32 { return t.Regs[0] }, 0))
			return &Instance{
				Kernels: []*gpu.Kernel{kernel},
				Verify: func(read func(mem.Addr) uint32) error {
					return compareArrays("BCAST sums", readBack(read, outBase, total), want)
				},
			}
		},
	}
}

// STRM is pure write-once streaming: each thread fills a private
// output range and never reads it back — the write-no-allocate path
// and DRAM write bandwidth.
func STRM() *Workload {
	return &Workload{
		Name:        "STRM",
		Description: "write-once streaming output (write-no-allocate, DRAM bandwidth)",
		Build: func(scale int) *Instance {
			wordsPerThread := 8 * scale
			ctas, warps := ctaScale(scale), 2
			total := ctas * warps * gpu.WarpWidth

			lay := newLayout(0x2C00000)
			outBase := lay.array(total * wordsPerThread)

			kernel := &gpu.Kernel{
				Name: "STRM", CTAs: ctas, WarpsPerCTA: warps, Regs: 1,
				ProgramFor: func(w *gpu.Warp) gpu.Program {
					return &gpu.LoopProgram{
						Iters: wordsPerThread,
						Body: func(i int) []*gpu.Instr {
							return []*gpu.Instr{
								gpu.Store(always(func(t *gpu.Thread) mem.Addr {
									return wordAddr(outBase, i*total+t.GTID)
								}), func(t *gpu.Thread) uint32 {
									return uint32(t.GTID*1000 + i)
								}),
							}
						},
					}
				},
			}
			return &Instance{
				Kernels: []*gpu.Kernel{kernel},
				Verify: func(read func(mem.Addr) uint32) error {
					for i := 0; i < wordsPerThread; i++ {
						for t := 0; t < total; t++ {
							got := read(wordAddr(outBase, i*total+t))
							if want := uint32(t*1000 + i); got != want {
								return fmt.Errorf("STRM[%d,%d]: got %d want %d", i, t, got, want)
							}
						}
					}
					return nil
				},
			}
		},
	}
}

// PING is a cross-SM reduction ping-pong: every warp atomically folds
// its round value into one shared word, fences, and reads it back —
// maximal single-address contention across the whole chip.
func PING() *Workload {
	return &Workload{
		Name:        "PING",
		Description: "whole-chip atomic max ping-pong on one word (worst-case contention)",
		Build: func(scale int) *Instance {
			rounds := 4 * scale
			ctas, warps := ctaScale(scale), 1
			total := ctas * warps * gpu.WarpWidth

			lay := newLayout(0x3000000)
			hot := lay.array(1)
			outBase := lay.array(total)

			// Max over all contributions of all rounds: thread t round r
			// contributes t*8+r.
			var finalMax uint32
			for t := 0; t < total; t++ {
				for r := 0; r < rounds; r++ {
					if v := uint32(t*8 + r); v > finalMax {
						finalMax = v
					}
				}
			}

			kernel := &gpu.Kernel{
				Name: "PING", CTAs: ctas, WarpsPerCTA: warps, Regs: 2,
				NeedsCoherence: true,
				ProgramFor: func(w *gpu.Warp) gpu.Program {
					var body []*gpu.Instr
					for r := 0; r < rounds; r++ {
						r := r
						body = append(body,
							gpu.Atomic(mem.AtomMax, 0, always(func(t *gpu.Thread) mem.Addr {
								return wordAddr(hot, 0)
							}), func(t *gpu.Thread) uint32 { return uint32(t.GTID*8 + r) }),
							gpu.Fence(),
						)
					}
					body = append(body, gpu.Store(always(func(t *gpu.Thread) mem.Addr {
						return wordAddr(outBase, t.GTID)
					}), func(t *gpu.Thread) uint32 { return t.Regs[0] }, 0))
					return gpu.Seq(body...)
				},
			}
			return &Instance{
				Kernels: []*gpu.Kernel{kernel},
				Verify: func(read func(mem.Addr) uint32) error {
					if got := read(wordAddr(hot, 0)); got != finalMax {
						return fmt.Errorf("PING hot word: got %d want %d", got, finalMax)
					}
					// Every thread's final observation is some valid
					// intermediate max >= its own last contribution.
					for t := 0; t < total; t++ {
						got := read(wordAddr(outBase, t))
						if got > finalMax {
							return fmt.Errorf("PING out[%d]: %d exceeds final max %d", t, got, finalMax)
						}
						if got < uint32(t*8) {
							return fmt.Errorf("PING out[%d]: %d below own contribution %d", t, got, t*8)
						}
					}
					return nil
				},
			}
		},
	}
}

// PIPE is a two-kernel pipeline: a producer kernel writes a buffer,
// then a consumer kernel (a separate launch, after the L1 flush and
// timestamp reset of the kernel boundary) transforms it. It exercises
// the multi-kernel path: per-kernel flush, timestamp reset, and data
// handoff through the L2.
func PIPE() *Workload {
	return &Workload{
		Name:        "PIPE",
		Description: "two-kernel producer/consumer pipeline (kernel-boundary handoff)",
		Build: func(scale int) *Instance {
			ctas, warps := ctaScale(scale), 1
			total := ctas * warps * gpu.WarpWidth

			lay := newLayout(0x3400000)
			bufBase := lay.array(total)
			outBase := lay.array(total)

			want := make([]uint32, total)
			for t := 0; t < total; t++ {
				want[t] = uint32(t)*3 + 7
			}

			producer := &gpu.Kernel{
				Name: "PIPE-produce", CTAs: ctas, WarpsPerCTA: warps, Regs: 2,
				ProgramFor: func(w *gpu.Warp) gpu.Program {
					return gpu.Seq(gpu.Store(always(func(t *gpu.Thread) mem.Addr {
						return wordAddr(bufBase, t.GTID)
					}), func(t *gpu.Thread) uint32 { return uint32(t.GTID) * 3 }))
				},
			}
			consumer := &gpu.Kernel{
				Name: "PIPE-consume", CTAs: ctas, WarpsPerCTA: warps, Regs: 2,
				ProgramFor: func(w *gpu.Warp) gpu.Program {
					return gpu.Seq(
						gpu.Load(0, always(func(t *gpu.Thread) mem.Addr {
							return wordAddr(bufBase, t.GTID)
						})),
						gpu.ALU(func(t *gpu.Thread) { t.Regs[0] += 7 }, 0),
						gpu.Store(always(func(t *gpu.Thread) mem.Addr {
							return wordAddr(outBase, t.GTID)
						}), func(t *gpu.Thread) uint32 { return t.Regs[0] }, 0),
					)
				},
			}
			return &Instance{
				Kernels: []*gpu.Kernel{producer, consumer},
				Verify: func(read func(mem.Addr) uint32) error {
					return compareArrays("PIPE out", readBack(read, outBase, total), want)
				},
			}
		},
	}
}
