// Package workload provides the twelve synthetic benchmarks standing
// in for the paper's CUDA suite (§VI-A), split exactly as the paper
// splits them:
//
//   - Set 1 — require coherence for correctness: BH, CC, DLP, VPR,
//     STN, BFS. These are converging relaxation kernels that
//     communicate *between CTAs inside a single kernel*; with a
//     non-coherent L1 they reach the wrong fixpoint, with any coherent
//     configuration (G-TSC, TC, BL) they reach the exact sequential
//     fixpoint, which Verify checks.
//   - Set 2 — do not require coherence: CCP, GE, HS, KM, BP, SGM.
//     Write-once / CTA-private patterns spanning compute-bound,
//     cache-friendly and memory-streaming behaviour.
//
// Every workload is deterministic (integer arithmetic, seeded
// generators) and ships a sequential reference against which the
// simulated result is verified word-for-word. The names approximate
// the paper's benchmarks by reproducing each one's characteristic
// memory access pattern; see DESIGN.md ("Substitutions").
package workload

import (
	"context"
	"fmt"

	"github.com/gtsc-sim/gtsc/internal/gpu"
	"github.com/gtsc-sim/gtsc/internal/mem"
	"github.com/gtsc-sim/gtsc/internal/sim"
	"github.com/gtsc-sim/gtsc/internal/stats"
)

// Workload is one named benchmark.
type Workload struct {
	Name           string
	Description    string
	NeedsCoherence bool

	// Build instantiates the benchmark at a given scale (1 = smallest
	// correct instance, used by tests; experiments use larger scales).
	Build func(scale int) *Instance
}

// Instance is one buildable run of a workload: kernels to launch in
// order plus a verifier over the final memory image.
type Instance struct {
	Kernels []*gpu.Kernel
	// Verify checks the final architected memory; read returns the
	// current value of a word (L2-or-DRAM).
	Verify func(read func(mem.Addr) uint32) error
}

// Run executes the instance on a fresh simulator for cfg, verifies the
// result, and returns the aggregated statistics of all its kernels.
func (inst *Instance) Run(cfg sim.Config) (*stats.Run, error) {
	return inst.RunContext(context.Background(), cfg)
}

// RunContext is Run honoring a context: cancellation or deadline
// expiry suspends the simulation and surfaces a *diag.CanceledError.
func (inst *Instance) RunContext(ctx context.Context, cfg sim.Config) (*stats.Run, error) {
	s := sim.New(cfg)
	return inst.RunOnContext(ctx, s)
}

// RunOn executes the instance on an existing simulator.
func (inst *Instance) RunOn(s *sim.Simulator) (*stats.Run, error) {
	return inst.RunOnContext(context.Background(), s)
}

// RunOnContext executes the instance on an existing simulator,
// honoring ctx between and within kernels.
func (inst *Instance) RunOnContext(ctx context.Context, s *sim.Simulator) (*stats.Run, error) {
	var agg *stats.Run
	for _, k := range inst.Kernels {
		run, err := s.RunContext(ctx, k)
		if err != nil {
			return nil, err
		}
		if agg == nil {
			agg = run
		} else {
			agg.Accumulate(run)
		}
	}
	if inst.Verify != nil {
		if err := inst.Verify(s.ReadWord); err != nil {
			return agg, fmt.Errorf("workload verification failed: %w", err)
		}
	}
	return agg, nil
}

// All returns the full suite in the paper's presentation order:
// the coherence-requiring set first, then the coherence-free set.
func All() []*Workload {
	return []*Workload{
		BH(), CC(), DLP(), VPR(), STN(), BFS(),
		CCP(), GE(), HS(), KM(), BP(), SGM(),
	}
}

// CoherenceSet returns the six benchmarks that require coherence.
func CoherenceSet() []*Workload {
	return []*Workload{BH(), CC(), DLP(), VPR(), STN(), BFS()}
}

// NonCoherenceSet returns the six benchmarks that do not.
func NonCoherenceSet() []*Workload {
	return []*Workload{CCP(), GE(), HS(), KM(), BP(), SGM()}
}

// ByName looks a workload up by its (case-sensitive) name.
func ByName(name string) (*Workload, bool) {
	for _, w := range All() {
		if w.Name == name {
			return w, true
		}
	}
	return nil, false
}
