package workload

import (
	"fmt"

	"github.com/gtsc-sim/gtsc/internal/gpu"
	"github.com/gtsc-sim/gtsc/internal/mem"
)

// rng is a small deterministic xorshift64* generator so workload
// construction is reproducible without math/rand.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// layout is a bump allocator over the simulated address space,
// block-aligning each array so workloads' regions do not false-share.
type layout struct{ next mem.Addr }

func newLayout(base mem.Addr) *layout { return &layout{next: base} }

// array reserves words 4-byte words and returns the base address.
func (l *layout) array(words int) mem.Addr {
	a := l.next
	bytes := mem.Addr(words * 4)
	// round the next region up to a block boundary
	l.next = (a + bytes + mem.BlockBytes - 1) &^ (mem.BlockBytes - 1)
	return a
}

// wordAddr indexes a uint32 array at base.
func wordAddr(base mem.Addr, i int) mem.Addr { return base + mem.Addr(i*4) }

// writeArray stores a uint32 slice into the backing store.
func writeArray(store *mem.Store, base mem.Addr, vals []uint32) {
	for i, v := range vals {
		store.WriteWord(wordAddr(base, i), v)
	}
}

// readBack reads words [0,n) of an array through the verifier's read
// function.
func readBack(read func(mem.Addr) uint32, base mem.Addr, n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = read(wordAddr(base, i))
	}
	return out
}

// compareArrays reports the first mismatch between got and want.
func compareArrays(what string, got, want []uint32) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: length %d != %d", what, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("%s[%d]: got %d, want %d", what, i, got[i], want[i])
		}
	}
	return nil
}

// paddedGraph is an adjacency structure padded to a fixed degree so
// warp programs are static: vertex v's neighbors are
// adj[v*deg .. v*deg+deg-1], padded with self-loops.
type paddedGraph struct {
	n   int
	deg int
	adj []uint32
}

// randGraph builds an undirected random graph of n vertices with
// degree deg (self-loop padded). Every vertex also gets a ring edge to
// (v+1)%n so the graph is connected and its structure deterministic.
func randGraph(n, deg int, r *rng) *paddedGraph {
	if deg < 2 {
		panic("workload: randGraph needs degree >= 2")
	}
	g := &paddedGraph{n: n, deg: deg, adj: make([]uint32, n*deg)}
	for v := 0; v < n; v++ {
		g.adj[v*deg] = uint32((v + 1) % n) // ring edge: connectivity
		g.adj[v*deg+1] = uint32((v + n - 1) % n)
		for j := 2; j < deg; j++ {
			g.adj[v*deg+j] = uint32(r.intn(n))
		}
	}
	return g
}

// scaleFreeGraph builds a preferential-attachment-flavoured graph: a
// few hub vertices attract most edges (BFS's irregular fan-in/fan-out).
func scaleFreeGraph(n, deg, hubs int, r *rng) *paddedGraph {
	g := &paddedGraph{n: n, deg: deg, adj: make([]uint32, n*deg)}
	for v := 0; v < n; v++ {
		g.adj[v*deg] = uint32((v + 1) % n)
		for j := 1; j < deg; j++ {
			if r.intn(100) < 60 {
				g.adj[v*deg+j] = uint32(r.intn(hubs)) // hub edge
			} else {
				g.adj[v*deg+j] = uint32(r.intn(n))
			}
		}
	}
	return g
}

// randTreeParents builds a random tree's parent array: parent[0]=0
// (root), parent[v] uniform in [0, v).
func randTreeParents(n int, r *rng) []uint32 {
	p := make([]uint32, n)
	for v := 1; v < n; v++ {
		if v == 1 {
			p[v] = 0
		} else {
			p[v] = uint32(r.intn(v))
		}
	}
	return p
}

// minRelaxFixpoint runs dist[v] = min(dist[v], dist[adj]+w) over the
// padded graph until no change and returns the fixpoint and the number
// of rounds taken. weights may be nil (treated as all-zero, pure min
// propagation) or per-edge (same layout as adj).
func minRelaxFixpoint(g *paddedGraph, init []uint32, weights []uint32) (fix []uint32, rounds int) {
	dist := make([]uint32, g.n)
	copy(dist, init)
	for {
		changed := false
		for v := 0; v < g.n; v++ {
			for j := 0; j < g.deg; j++ {
				u := int(g.adj[v*g.deg+j])
				w := uint32(0)
				if weights != nil {
					w = weights[v*g.deg+j]
				}
				if cand := dist[u] + w; cand < dist[v] {
					dist[v] = cand
					changed = true
				}
			}
		}
		rounds++
		if !changed {
			return dist, rounds
		}
	}
}

// jacobiRounds returns the rounds a synchronous (Jacobi) relaxation
// needs: all cells update from the previous round's values. Chaotic
// parallel execution converges at least this fast when reads are
// coherent, so iteration allowances derive from it.
func jacobiRounds(g *paddedGraph, init []uint32, weights []uint32, useMax bool) int {
	cur := make([]uint32, g.n)
	copy(cur, init)
	next := make([]uint32, g.n)
	for rounds := 1; ; rounds++ {
		changed := false
		copy(next, cur)
		for v := 0; v < g.n; v++ {
			for j := 0; j < g.deg; j++ {
				u := int(g.adj[v*g.deg+j])
				w := uint32(0)
				if weights != nil {
					w = weights[v*g.deg+j]
				}
				if useMax {
					if cur[u] > next[v] {
						next[v] = cur[u]
						changed = true
					}
				} else if cand := cur[u] + w; cand < next[v] {
					next[v] = cand
					changed = true
				}
			}
		}
		cur, next = next, cur
		if !changed {
			return rounds
		}
	}
}

// maxRelaxFixpoint is the max-propagation analogue (VPR).
func maxRelaxFixpoint(g *paddedGraph, init []uint32) (fix []uint32, rounds int) {
	val := make([]uint32, g.n)
	copy(val, init)
	for {
		changed := false
		for v := 0; v < g.n; v++ {
			for j := 0; j < g.deg; j++ {
				u := int(g.adj[v*g.deg+j])
				if val[u] > val[v] {
					val[v] = val[u]
					changed = true
				}
			}
		}
		rounds++
		if !changed {
			return val, rounds
		}
	}
}

// gridStride returns the vertices owned by a thread: gtid, gtid+T,
// gtid+2T, ... below n.
func ownedVertices(gtid, totalThreads, n int) []int {
	var out []int
	for v := gtid; v < n; v += totalThreads {
		out = append(out, v)
	}
	return out
}

// ctaScale grows the grid with the workload scale so larger machines
// stay fully occupied (capped at 32 CTAs).
func ctaScale(scale int) int {
	c := 8 * scale
	if c > 32 {
		c = 32
	}
	return c
}

func minu32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

func maxu32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}

// always adapts a plain address function to the (addr, active) form.
func always(f func(t *gpu.Thread) mem.Addr) func(t *gpu.Thread) (mem.Addr, bool) {
	return func(t *gpu.Thread) (mem.Addr, bool) { return f(t), true }
}
