package workload

import (
	"github.com/gtsc-sim/gtsc/internal/gpu"
	"github.com/gtsc-sim/gtsc/internal/mem"
)

// globalSyncProgram runs an iteration body and then a grid-wide
// barrier, the classic GPU software global barrier (Xiao & Feng):
// every warp fences and joins a CTA barrier; warp 0 of each CTA then
// bumps a global atomic counter and polls it (atomics serialize at the
// L2, so polling makes progress under every protocol — including
// G-TSC, where a plain-load spin on a cached block would never see the
// update); a second CTA barrier releases the other warps.
//
// The barrier makes each iteration one exact synchronous (Jacobi)
// relaxation round for coherent protocols, so fixpoint convergence is
// timing-independent; under the non-coherent L1 the *data* reads still
// go stale, preserving the workloads' "requires coherence" property.
type globalSyncProgram struct {
	body    []*gpu.Instr
	iters   int
	ctas    int
	ctrAddr mem.Addr

	iter        int
	phase       int // 0 body, 1 epilogue
	pc          int
	queue       []*gpu.Instr
	qi          int
	backoffNext bool
}

// barrier register: the relax bodies use r0..r3; the counter poll
// lands in r4 (kernels must declare Regs >= 5).
const barReg = 4

func newGlobalSync(body []*gpu.Instr, iters, ctas int, ctrAddr mem.Addr) *globalSyncProgram {
	return &globalSyncProgram{body: body, iters: iters, ctas: ctas, ctrAddr: ctrAddr}
}

// Next implements gpu.Program.
func (p *globalSyncProgram) Next(w *gpu.Warp) (*gpu.Instr, bool) {
	for {
		switch p.phase {
		case 0: // iteration body
			if p.iter >= p.iters {
				return nil, true
			}
			if p.pc < len(p.body) {
				i := p.body[p.pc]
				p.pc++
				return i, true
			}
			p.pc = 0
			if p.iter == p.iters-1 {
				// No barrier after the final iteration.
				p.iter++
				continue
			}
			p.phase = 1
			p.queue = p.epilogue(w)
			p.qi = 0
		case 1: // fence + global barrier
			if p.qi < len(p.queue) {
				i := p.queue[p.qi]
				// The spin re-enqueues itself until the counter
				// reaches the target; gate on the poll result.
				if i == nil {
					if !w.RegsReady(barReg) {
						return nil, false
					}
					target := uint32(p.ctas * (p.iter + 1))
					if w.Reg(0, barReg) >= target {
						p.qi++ // spin satisfied
						continue
					}
					// Poll again: back off, then re-read.
					return p.pollInstr(), true
				}
				p.qi++
				return i, true
			}
			p.phase = 0
			p.iter++
		}
	}
}

// epilogue builds this warp's barrier sequence for the current
// iteration. Warp 0 of the CTA arrives at the counter and spins; the
// rest just meet the two CTA barriers.
func (p *globalSyncProgram) epilogue(w *gpu.Warp) []*gpu.Instr {
	ctr := func(t *gpu.Thread) (mem.Addr, bool) { return p.ctrAddr, t.Lane == 0 }
	if w.InCTA != 0 {
		return []*gpu.Instr{gpu.Fence(), gpu.Barrier(), gpu.Barrier()}
	}
	return []*gpu.Instr{
		gpu.Fence(),
		gpu.Barrier(),
		// Arrive: announce this CTA and read the count so far.
		gpu.Atomic(mem.AtomAdd, barReg, ctr, func(*gpu.Thread) uint32 { return 1 }),
		gpu.ALU(func(t *gpu.Thread) { t.Regs[barReg]++ }, barReg), // old+1 = count incl. us
		nil, // spin marker: re-polls until the count reaches the target
		gpu.Barrier(),
	}
}

// pollInstr alternates a short backoff with an atomic +0 re-read of
// the counter (uncached; serializes at the L2). The program counter
// stays on the spin marker, so Next re-evaluates the loaded count
// after every read.
func (p *globalSyncProgram) pollInstr() *gpu.Instr {
	if p.backoffNext {
		p.backoffNext = false
		return gpu.Atomic(mem.AtomAdd, barReg, func(t *gpu.Thread) (mem.Addr, bool) {
			return p.ctrAddr, t.Lane == 0
		}, func(*gpu.Thread) uint32 { return 0 })
	}
	p.backoffNext = true
	return gpu.Comp(24)
}
