package workload

import (
	"fmt"

	"github.com/gtsc-sim/gtsc/internal/gpu"
	"github.com/gtsc-sim/gtsc/internal/mem"
)

// The six coherence-requiring benchmarks (paper Fig 12, left cluster).
// Each reproduces its namesake's characteristic sharing pattern as a
// converging relaxation with inter-CTA communication inside one
// kernel; see the package comment for why this class of kernel
// faithfully exercises coherence.

// BH approximates Barnes-Hut's tree walks: depth relaxation over a
// random tree via parent pointers — single-dependency pointer chasing
// with highly irregular, hub-heavy sharing (every path leads to the
// root blocks).
func BH() *Workload {
	return &Workload{
		Name:           "BH",
		Description:    "tree depth relaxation via parent pointers (Barnes-Hut-style irregular tree access)",
		NeedsCoherence: true,
		Build: func(scale int) *Instance {
			n := 192 * scale
			r := newRNG(11)
			parents := randTreeParents(n, r)
			g := &paddedGraph{n: n, deg: 1, adj: parents}
			weights := make([]uint32, n)
			for i := range weights {
				weights[i] = 1
			}
			weights[0] = 0 // root self-loop contributes nothing
			init := make([]uint32, n)
			const inf = 1 << 20
			for i := 1; i < n; i++ {
				init[i] = inf
			}
			return relaxInstance(relaxSpec{
				name: "BH", g: g, init: init, weights: weights,
				ctas: ctaScale(scale), warpsPerCTA: 1,
			})
		},
	}
}

// CC is connected-components label propagation on a random graph:
// label[v] = min(label[v], label[u]) over undirected neighbors.
func CC() *Workload {
	return &Workload{
		Name:           "CC",
		Description:    "connected-components min-label propagation on a random graph",
		NeedsCoherence: true,
		Build: func(scale int) *Instance {
			n := 256 * scale
			g := randGraph(n, 4, newRNG(23))
			init := make([]uint32, n)
			for i := range init {
				init[i] = uint32(i)
			}
			return relaxInstance(relaxSpec{
				name: "CC", g: g, init: init,
				ctas: ctaScale(scale), warpsPerCTA: 2,
			})
		},
	}
}

// DLP is a data-parallel Bellman-Ford shortest-path relaxation with
// edge weights (weighted irregular graph traffic with both index and
// value indirection).
func DLP() *Workload {
	return &Workload{
		Name:           "DLP",
		Description:    "Bellman-Ford shortest paths (weighted relaxation, double indirection)",
		NeedsCoherence: true,
		Build: func(scale int) *Instance {
			n := 224 * scale
			r := newRNG(37)
			g := randGraph(n, 3, r)
			weights := make([]uint32, len(g.adj))
			for i := range weights {
				weights[i] = uint32(1 + r.intn(7))
			}
			init := make([]uint32, n)
			const inf = 1 << 20
			for i := 1; i < n; i++ {
				init[i] = inf
			}
			return relaxInstance(relaxSpec{
				name: "DLP", g: g, init: init, weights: weights,
				ctas: ctaScale(scale), warpsPerCTA: 2,
			})
		},
	}
}

// VPR approximates placement-style netlist iteration: max-propagation
// over a bipartite cells/nets hypergraph (every net touches several
// cells; iterating cells and nets couples distant CTAs quickly).
func VPR() *Workload {
	return &Workload{
		Name:           "VPR",
		Description:    "bipartite cells/nets max-propagation (place-and-route netlist iteration)",
		NeedsCoherence: true,
		Build: func(scale int) *Instance {
			cells := 160 * scale
			nets := 96 * scale
			deg := 3
			r := newRNG(53)
			n := cells + nets
			g := &paddedGraph{n: n, deg: deg, adj: make([]uint32, n*deg)}
			// Cells point at random nets; nets point at random cells.
			for c := 0; c < cells; c++ {
				for j := 0; j < deg; j++ {
					g.adj[c*deg+j] = uint32(cells + r.intn(nets))
				}
			}
			for nt := 0; nt < nets; nt++ {
				v := cells + nt
				for j := 0; j < deg; j++ {
					g.adj[v*deg+j] = uint32(r.intn(cells))
				}
			}
			init := make([]uint32, n)
			for i := range init {
				init[i] = uint32(r.intn(1 << 16))
			}
			return relaxInstance(relaxSpec{
				name: "VPR", g: g, init: init, useMax: true,
				ctas: ctaScale(scale), warpsPerCTA: 2,
			})
		},
	}
}

// STN is a 2D five-point stencil distance transform: regular,
// coalesced addressing whose halo rows are owned by neighboring CTAs —
// the classic inter-block stencil exchange.
func STN() *Workload {
	return &Workload{
		Name:           "STN",
		Description:    "2D stencil distance transform with inter-CTA halo sharing",
		NeedsCoherence: true,
		Build: func(scale int) *Instance {
			h := 16 * scale
			w := 32
			return stencilInstance(h, w, ctaScale(scale), 2)
		},
	}
}

// BFS relaxes BFS levels over a scale-free graph from a single source:
// dist[v] = min(dist[v], dist[u]+1). Hub vertices concentrate sharing.
func BFS() *Workload {
	return &Workload{
		Name:           "BFS",
		Description:    "BFS level relaxation on a scale-free graph (hub-concentrated sharing)",
		NeedsCoherence: true,
		Build: func(scale int) *Instance {
			n := 288 * scale
			g := scaleFreeGraph(n, 4, 8, newRNG(71))
			weights := make([]uint32, len(g.adj))
			for i := range weights {
				weights[i] = 1
			}
			init := make([]uint32, n)
			const inf = 1 << 20
			for i := 1; i < n; i++ {
				init[i] = inf
			}
			// Self-padded edges would add +1 to self distance, which is
			// harmless (min(d, d+1) = d), so padding needs no special case.
			return relaxInstance(relaxSpec{
				name: "BFS", g: g, init: init, weights: weights,
				ctas: ctaScale(scale), warpsPerCTA: 2,
			})
		},
	}
}

// stencilInstance builds STN: cells owned grid-stride by rows; each
// iteration reads the four neighbors directly (no indirection) and
// stores the min+1 relaxation.
func stencilInstance(h, w, ctas, warpsPerCTA int) *Instance {
	n := h * w
	lay := newLayout(0x400000)
	valBase := lay.array(n)

	init := make([]uint32, n)
	const inf = 1 << 20
	for i := range init {
		init[i] = inf
	}
	// Deterministic seeds sprinkled over the grid.
	r := newRNG(97)
	for s := 0; s < maxi(1, n/64); s++ {
		init[r.intn(n)] = 0
	}

	// Sequential fixpoint.
	grid := &paddedGraph{n: n, deg: 4, adj: make([]uint32, n*4)}
	weights := make([]uint32, n*4)
	for i := 0; i < h; i++ {
		for j := 0; j < w; j++ {
			v := i*w + j
			nb := [4]int{v, v, v, v}
			if i > 0 {
				nb[0] = v - w
			}
			if i < h-1 {
				nb[1] = v + w
			}
			if j > 0 {
				nb[2] = v - 1
			}
			if j < w-1 {
				nb[3] = v + 1
			}
			for k, u := range nb {
				grid.adj[v*4+k] = uint32(u)
				weights[v*4+k] = 1
			}
		}
	}
	fix, rounds := minRelaxFixpoint(grid, init, weights)
	jrounds := jacobiRounds(grid, init, weights, false)
	iters := maxi(rounds*2, jrounds*2) + 6

	totalThreads := ctas * warpsPerCTA * gpu.WarpWidth
	maxOwned := (n + totalThreads - 1) / totalThreads

	ctrAddr := lay.array(1) // global-barrier counter

	kernel := &gpu.Kernel{
		Name:           "STN",
		CTAs:           ctas,
		WarpsPerCTA:    warpsPerCTA,
		Regs:           5,
		NeedsCoherence: true,
		Init:           func(store *mem.Store) { writeArray(store, valBase, init) },
		ProgramFor: func(warp *gpu.Warp) gpu.Program {
			var body []*gpu.Instr
			for k := 0; k < maxOwned; k++ {
				k := k
				cell := func(t *gpu.Thread) (int, bool) {
					v := t.GTID + k*totalThreads
					return v, v < n
				}
				own := func(t *gpu.Thread) (mem.Addr, bool) {
					v, ok := cell(t)
					if !ok {
						return 0, false
					}
					return wordAddr(valBase, v), true
				}
				body = append(body, gpu.Load(0, own))
				for d := 0; d < 4; d++ {
					d := d
					body = append(body, gpu.Load(1, func(t *gpu.Thread) (mem.Addr, bool) {
						v, ok := cell(t)
						if !ok {
							return 0, false
						}
						i, j := v/w, v%w
						switch d {
						case 0:
							if i > 0 {
								v -= w
							}
						case 1:
							if i < h-1 {
								v += w
							}
						case 2:
							if j > 0 {
								v--
							}
						case 3:
							if j < w-1 {
								v++
							}
						}
						return wordAddr(valBase, v), true
					}))
					body = append(body, gpu.ALU(func(t *gpu.Thread) {
						t.Regs[0] = minu32(t.Regs[0], t.Regs[1]+1)
					}, 0, 1))
				}
				body = append(body, gpu.Store(own, func(t *gpu.Thread) uint32 { return t.Regs[0] }, 0))
			}
			return newGlobalSync(body, iters, ctas, ctrAddr)
		},
	}

	return &Instance{
		Kernels: []*gpu.Kernel{kernel},
		Verify: func(read func(mem.Addr) uint32) error {
			got := readBack(read, valBase, n)
			if err := compareArrays("STN grid", got, fix); err != nil {
				return fmt.Errorf("%w (fixpoint needs %d rounds, ran %d iterations)", err, rounds, iters)
			}
			return nil
		},
	}
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
