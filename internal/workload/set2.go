package workload

import (
	"github.com/gtsc-sim/gtsc/internal/gpu"
	"github.com/gtsc-sim/gtsc/internal/mem"
)

// The six benchmarks that do not require coherence (paper Fig 12,
// right cluster): write-once outputs, CTA-private or read-only shared
// working sets. They are functionally correct even under the
// non-coherent L1 (Baseline-w/L1), which the tests assert.

// CCP approximates cutoff Coulombic potential: compute-bound threads
// reading a small read-only lattice (high L1 reuse) and writing one
// output each.
func CCP() *Workload {
	return &Workload{
		Name:        "CCP",
		Description: "compute-bound lattice summation (cutcp-style), read-only sharing",
		Build: func(scale int) *Instance {
			const latticeWords = 512
			loadsPerThread := 8
			ctas, warps := ctaScale(scale), 2
			total := ctas * warps * gpu.WarpWidth

			lay := newLayout(0x800000)
			latBase := lay.array(latticeWords)
			outBase := lay.array(total)

			r := newRNG(131)
			lattice := make([]uint32, latticeWords)
			for i := range lattice {
				lattice[i] = uint32(r.intn(1 << 12))
			}
			want := make([]uint32, total)
			for t := 0; t < total; t++ {
				var acc uint32
				for i := 0; i < loadsPerThread*scale; i++ {
					acc += lattice[(t*7+i*13)%latticeWords] * uint32(i+1)
				}
				want[t] = acc
			}

			kernel := &gpu.Kernel{
				Name: "CCP", CTAs: ctas, WarpsPerCTA: warps, Regs: 3,
				Init: func(store *mem.Store) { writeArray(store, latBase, lattice) },
				ProgramFor: func(w *gpu.Warp) gpu.Program {
					return &gpu.LoopProgram{
						Iters: loadsPerThread * scale,
						Body: func(i int) []*gpu.Instr {
							return []*gpu.Instr{
								gpu.Load(1, always(func(t *gpu.Thread) mem.Addr {
									return wordAddr(latBase, (t.GTID*7+i*13)%latticeWords)
								})),
								gpu.Comp(12), // the "cutoff kernel" arithmetic
								gpu.ALU(func(t *gpu.Thread) {
									if i == 0 {
										t.Regs[0] = 0
									}
									t.Regs[0] += t.Regs[1] * uint32(i+1)
								}, 0, 1),
							}
						},
					}
				},
			}
			kernel.ProgramFor = withEpilogue(kernel.ProgramFor,
				gpu.Store(always(func(t *gpu.Thread) mem.Addr {
					return wordAddr(outBase, t.GTID)
				}), func(t *gpu.Thread) uint32 { return t.Regs[0] }, 0))

			return &Instance{
				Kernels: []*gpu.Kernel{kernel},
				Verify: func(read func(mem.Addr) uint32) error {
					return compareArrays("CCP out", readBack(read, outBase, total), want)
				},
			}
		},
	}
}

// GE is per-CTA-tile integer Gaussian elimination: each step, every
// column thread reads the pivot row's and its own row's column-k
// elements (written by other threads of the same CTA in earlier
// steps), so the CTA's columns communicate through the L1 with
// fence+barrier ordering — intra-SM sharing only.
func GE() *Workload {
	return &Workload{
		Name:        "GE",
		Description: "per-CTA tile integer Gaussian elimination (intra-CTA column sharing)",
		Build: func(scale int) *Instance {
			rows := 6 + 2*scale
			ctas, warps := ctaScale(scale), 1
			cols := warps * gpu.WarpWidth
			tile := rows * cols

			lay := newLayout(0xA00000)
			aBase := lay.array(ctas * tile)

			r := newRNG(139)
			a := make([]uint32, ctas*tile)
			for i := range a {
				a[i] = uint32(r.intn(1 << 8))
			}
			// Sequential reference: row_i += A[i][k] * row_k for i > k.
			want := make([]uint32, len(a))
			copy(want, a)
			for c := 0; c < ctas; c++ {
				t := want[c*tile : (c+1)*tile]
				for k := 0; k < rows-1; k++ {
					for i := k + 1; i < rows; i++ {
						f := t[i*cols+k]
						for j := 0; j < cols; j++ {
							t[i*cols+j] += f * t[k*cols+j]
						}
					}
				}
			}

			elem := func(cta, i, j int) mem.Addr { return wordAddr(aBase, cta*tile+i*cols+j) }
			kernel := &gpu.Kernel{
				Name: "GE", CTAs: ctas, WarpsPerCTA: warps, Regs: 4,
				Init: func(store *mem.Store) { writeArray(store, aBase, a) },
				ProgramFor: func(w *gpu.Warp) gpu.Program {
					var body []*gpu.Instr
					for k := 0; k < rows-1; k++ {
						k := k
						for i := k + 1; i < rows; i++ {
							i := i
							body = append(body,
								// r1 = factor A[i][k] (thread k's column)
								gpu.Load(1, always(func(t *gpu.Thread) mem.Addr {
									return elem(t.CTA, i, k)
								})),
								// r2 = pivot row element A[k][j]
								gpu.Load(2, always(func(t *gpu.Thread) mem.Addr {
									return elem(t.CTA, k, t.TIDInCTA)
								})),
								// r3 = own element A[i][j]
								gpu.Load(3, always(func(t *gpu.Thread) mem.Addr {
									return elem(t.CTA, i, t.TIDInCTA)
								})),
								gpu.ALU(func(t *gpu.Thread) {
									t.Regs[3] += t.Regs[1] * t.Regs[2]
								}, 1, 2, 3),
								gpu.Store(always(func(t *gpu.Thread) mem.Addr {
									return elem(t.CTA, i, t.TIDInCTA)
								}), func(t *gpu.Thread) uint32 { return t.Regs[3] }, 3),
							)
						}
						// Order step k's stores before step k+1's reads.
						body = append(body, gpu.Fence(), gpu.Barrier())
					}
					return gpu.Seq(body...)
				},
			}

			return &Instance{
				Kernels: []*gpu.Kernel{kernel},
				Verify: func(read func(mem.Addr) uint32) error {
					return compareArrays("GE tiles", readBack(read, aBase, len(want)), want)
				},
			}
		},
	}
}

// HS is hotspot-style: a double-buffered five-point averaging stencil
// over CTA-private tiles with frozen halos — regular coalesced
// addressing, intra-CTA sharing only.
func HS() *Workload {
	return &Workload{
		Name:        "HS",
		Description: "per-CTA double-buffered averaging stencil (hotspot-style)",
		Build: func(scale int) *Instance {
			th, tw := 4, gpu.WarpWidth // tile geometry: one warp row per grid row
			ctas := ctaScale(scale)
			warps := th // one warp per tile row
			iters := 4 * scale
			tile := th * tw

			lay := newLayout(0xC00000)
			aBase := lay.array(ctas * tile)
			bBase := lay.array(ctas * tile)

			r := newRNG(149)
			a := make([]uint32, ctas*tile)
			for i := range a {
				a[i] = uint32(r.intn(1 << 10))
			}

			// Reference: interior cells average; boundary frozen.
			step := func(src, dst []uint32) {
				copy(dst, src)
				for i := 1; i < th-1; i++ {
					for j := 1; j < tw-1; j++ {
						c := i*tw + j
						dst[c] = (src[c-tw] + src[c+tw] + src[c-1] + src[c+1] + 4*src[c]) / 8
					}
				}
			}
			want := make([]uint32, len(a))
			copy(want, a)
			tmp := make([]uint32, tile)
			for c := 0; c < ctas; c++ {
				cur := want[c*tile : (c+1)*tile]
				for it := 0; it < iters; it++ {
					step(cur, tmp)
					copy(cur, tmp)
				}
			}

			buf := func(base mem.Addr, cta, cell int) mem.Addr {
				return wordAddr(base, cta*tile+cell)
			}
			kernel := &gpu.Kernel{
				Name: "HS", CTAs: ctas, WarpsPerCTA: warps, Regs: 4,
				Init: func(store *mem.Store) { writeArray(store, aBase, a) },
				ProgramFor: func(w *gpu.Warp) gpu.Program {
					cellOf := func(t *gpu.Thread) (int, bool) {
						i, j := t.Warp, t.Lane
						return i*tw + j, i > 0 && i < th-1 && j > 0 && j < tw-1
					}
					mkIter := func(src, dst mem.Addr) []*gpu.Instr {
						off := func(d int) func(t *gpu.Thread) (mem.Addr, bool) {
							return func(t *gpu.Thread) (mem.Addr, bool) {
								c, in := cellOf(t)
								if !in {
									return 0, false
								}
								return buf(src, t.CTA, c+d), true
							}
						}
						return []*gpu.Instr{
							gpu.Load(0, off(0)),
							gpu.ALU(func(t *gpu.Thread) { t.Regs[3] = 4 * t.Regs[0] }, 0),
							gpu.Load(0, off(-tw)),
							gpu.ALU(func(t *gpu.Thread) { t.Regs[3] += t.Regs[0] }, 0, 3),
							gpu.Load(0, off(tw)),
							gpu.ALU(func(t *gpu.Thread) { t.Regs[3] += t.Regs[0] }, 0, 3),
							gpu.Load(0, off(-1)),
							gpu.ALU(func(t *gpu.Thread) { t.Regs[3] += t.Regs[0] }, 0, 3),
							gpu.Load(0, off(1)),
							gpu.ALU(func(t *gpu.Thread) { t.Regs[3] += t.Regs[0] }, 0, 3),
							gpu.Store(func(t *gpu.Thread) (mem.Addr, bool) {
								c, in := cellOf(t)
								if !in {
									return 0, false
								}
								return buf(dst, t.CTA, c), true
							}, func(t *gpu.Thread) uint32 { return t.Regs[3] / 8 }, 3),
							gpu.Fence(),
							gpu.Barrier(),
						}
					}
					// Boundary copy for dst happens once up front: copy
					// frozen halo A -> B so both buffers agree.
					halo := []*gpu.Instr{
						gpu.Load(0, func(t *gpu.Thread) (mem.Addr, bool) {
							c, in := cellOf(t)
							if in {
								return 0, false
							}
							return buf(aBase, t.CTA, c), true
						}),
						gpu.Store(func(t *gpu.Thread) (mem.Addr, bool) {
							c, in := cellOf(t)
							if in {
								return 0, false
							}
							return buf(bBase, t.CTA, c), true
						}, func(t *gpu.Thread) uint32 { return t.Regs[0] }, 0),
						gpu.Fence(),
						gpu.Barrier(),
					}
					var body []*gpu.Instr
					body = append(body, halo...)
					src, dst := aBase, bBase
					for it := 0; it < iters; it++ {
						body = append(body, mkIter(src, dst)...)
						src, dst = dst, src
					}
					// Copy back into A if the final state landed in B.
					if src != aBase {
						body = append(body,
							gpu.Load(0, func(t *gpu.Thread) (mem.Addr, bool) {
								c, _ := cellOf(t)
								return buf(bBase, t.CTA, c), true
							}),
							gpu.Store(func(t *gpu.Thread) (mem.Addr, bool) {
								c, _ := cellOf(t)
								return buf(aBase, t.CTA, c), true
							}, func(t *gpu.Thread) uint32 { return t.Regs[0] }, 0),
						)
					}
					return gpu.Seq(body...)
				},
			}

			return &Instance{
				Kernels: []*gpu.Kernel{kernel},
				Verify: func(read func(mem.Addr) uint32) error {
					return compareArrays("HS tiles", readBack(read, aBase, len(want)), want)
				},
			}
		},
	}
}

// KM approximates k-means' assignment pass: every thread streams many
// points from memory (working set far beyond L1 — memory intensive)
// and reduces them into one private accumulator.
func KM() *Workload {
	return &Workload{
		Name:        "KM",
		Description: "streaming point reduction (kmeans-style, memory-intensive)",
		Build: func(scale int) *Instance {
			features := 8
			ctas, warps := ctaScale(scale), 2
			total := ctas * warps * gpu.WarpWidth
			pointsPerThread := 12 * scale
			points := total * pointsPerThread

			lay := newLayout(0x1000000)
			ptBase := lay.array(points * features)
			outBase := lay.array(total)

			r := newRNG(151)
			pts := make([]uint32, points*features)
			for i := range pts {
				pts[i] = uint32(r.intn(1 << 10))
			}
			want := make([]uint32, total)
			for t := 0; t < total; t++ {
				var acc uint32
				for p := 0; p < pointsPerThread; p++ {
					idx := (p*total + t) * features
					for f := 0; f < features; f++ {
						acc += pts[idx+f] * uint32(f+1)
					}
				}
				want[t] = acc
			}

			kernel := &gpu.Kernel{
				Name: "KM", CTAs: ctas, WarpsPerCTA: warps, Regs: 3,
				Init: func(store *mem.Store) { writeArray(store, ptBase, pts) },
				ProgramFor: func(w *gpu.Warp) gpu.Program {
					return &gpu.LoopProgram{
						Iters: pointsPerThread * features,
						Body: func(i int) []*gpu.Instr {
							p, f := i/features, i%features
							return []*gpu.Instr{
								gpu.Load(1, always(func(t *gpu.Thread) mem.Addr {
									return wordAddr(ptBase, ((p*total+t.GTID)*features)+f)
								})),
								gpu.ALU(func(t *gpu.Thread) {
									if i == 0 {
										t.Regs[0] = 0
									}
									t.Regs[0] += t.Regs[1] * uint32(f+1)
								}, 0, 1),
							}
						},
					}
				},
			}
			kernel.ProgramFor = withEpilogue(kernel.ProgramFor,
				gpu.Store(always(func(t *gpu.Thread) mem.Addr {
					return wordAddr(outBase, t.GTID)
				}), func(t *gpu.Thread) uint32 { return t.Regs[0] }, 0))

			return &Instance{
				Kernels: []*gpu.Kernel{kernel},
				Verify: func(read func(mem.Addr) uint32) error {
					return compareArrays("KM sums", readBack(read, outBase, total), want)
				},
			}
		},
	}
}

// BP approximates backprop's forward pass: layer 1 reads a shared
// input vector (broadcast reuse) against private weight rows; layer 2
// reduces the CTA's own hidden tile — intra-CTA sharing only.
func BP() *Workload {
	return &Workload{
		Name:        "BP",
		Description: "two-layer integer forward pass (backprop-style, broadcast + tile reuse)",
		Build: func(scale int) *Instance {
			in := 16 * scale
			ctas, warps := ctaScale(scale), 1
			ctaThreads := warps * gpu.WarpWidth
			total := ctas * ctaThreads

			lay := newLayout(0x1400000)
			inBase := lay.array(in)
			w1Base := lay.array(total * in)
			hidBase := lay.array(total)
			w2Base := lay.array(total * ctaThreads)
			outBase := lay.array(total)

			r := newRNG(163)
			inv := make([]uint32, in)
			for i := range inv {
				inv[i] = uint32(r.intn(1 << 8))
			}
			w1 := make([]uint32, total*in)
			for i := range w1 {
				w1[i] = uint32(r.intn(1 << 8))
			}
			w2 := make([]uint32, total*ctaThreads)
			for i := range w2 {
				w2[i] = uint32(r.intn(1 << 8))
			}
			hidden := make([]uint32, total)
			for j := 0; j < total; j++ {
				var acc uint32
				for i := 0; i < in; i++ {
					acc += inv[i] * w1[j*in+i]
				}
				hidden[j] = acc
			}
			want := make([]uint32, total)
			for k := 0; k < total; k++ {
				cta := k / ctaThreads
				var acc uint32
				for j := 0; j < ctaThreads; j++ {
					acc += hidden[cta*ctaThreads+j] * w2[k*ctaThreads+j]
				}
				want[k] = acc
			}

			kernel := &gpu.Kernel{
				Name: "BP", CTAs: ctas, WarpsPerCTA: warps, Regs: 4,
				Init: func(store *mem.Store) {
					writeArray(store, inBase, inv)
					writeArray(store, w1Base, w1)
					writeArray(store, w2Base, w2)
				},
				ProgramFor: func(w *gpu.Warp) gpu.Program {
					var body []*gpu.Instr
					for i := 0; i < in; i++ {
						i := i
						body = append(body,
							gpu.Load(1, always(func(t *gpu.Thread) mem.Addr { return wordAddr(inBase, i) })),
							gpu.Load(2, always(func(t *gpu.Thread) mem.Addr {
								return wordAddr(w1Base, t.GTID*in+i)
							})),
							gpu.ALU(func(t *gpu.Thread) {
								if i == 0 {
									t.Regs[0] = 0
								}
								t.Regs[0] += t.Regs[1] * t.Regs[2]
							}, 0, 1, 2),
						)
					}
					body = append(body,
						gpu.Store(always(func(t *gpu.Thread) mem.Addr {
							return wordAddr(hidBase, t.GTID)
						}), func(t *gpu.Thread) uint32 { return t.Regs[0] }, 0),
						gpu.Fence(), gpu.Barrier(),
					)
					for j := 0; j < ctaThreads; j++ {
						j := j
						body = append(body,
							gpu.Load(1, always(func(t *gpu.Thread) mem.Addr {
								return wordAddr(hidBase, t.CTA*ctaThreads+j)
							})),
							gpu.Load(2, always(func(t *gpu.Thread) mem.Addr {
								return wordAddr(w2Base, t.GTID*ctaThreads+j)
							})),
							gpu.ALU(func(t *gpu.Thread) {
								if j == 0 {
									t.Regs[3] = 0
								}
								t.Regs[3] += t.Regs[1] * t.Regs[2]
							}, 1, 2, 3),
						)
					}
					body = append(body, gpu.Store(always(func(t *gpu.Thread) mem.Addr {
						return wordAddr(outBase, t.GTID)
					}), func(t *gpu.Thread) uint32 { return t.Regs[3] }, 3))
					return gpu.Seq(body...)
				},
			}

			return &Instance{
				Kernels: []*gpu.Kernel{kernel},
				Verify: func(read func(mem.Addr) uint32) error {
					return compareArrays("BP out", readBack(read, outBase, total), want)
				},
			}
		},
	}
}

// SGM is a blocked integer GEMM: each warp computes one row of its
// CTA's output tile; A elements broadcast across the warp, B rows are
// read coalesced — compute-bound with heavy read-only reuse.
func SGM() *Workload {
	return &Workload{
		Name:        "SGM",
		Description: "blocked integer matrix multiply (sgemm-style, read-only reuse)",
		Build: func(scale int) *Instance {
			k := 16 * scale
			ctas, warps := ctaScale(scale), 2
			m := ctas * warps // one output row per warp
			n := gpu.WarpWidth

			lay := newLayout(0x1800000)
			aBase := lay.array(m * k)
			bBase := lay.array(k * n)
			cBase := lay.array(m * n)

			r := newRNG(173)
			a := make([]uint32, m*k)
			for i := range a {
				a[i] = uint32(r.intn(1 << 8))
			}
			b := make([]uint32, k*n)
			for i := range b {
				b[i] = uint32(r.intn(1 << 8))
			}
			want := make([]uint32, m*n)
			for i := 0; i < m; i++ {
				for j := 0; j < n; j++ {
					var acc uint32
					for kk := 0; kk < k; kk++ {
						acc += a[i*k+kk] * b[kk*n+j]
					}
					want[i*n+j] = acc
				}
			}

			rowOf := func(t *gpu.Thread) int { return t.CTA*warps + t.Warp }
			kernel := &gpu.Kernel{
				Name: "SGM", CTAs: ctas, WarpsPerCTA: warps, Regs: 3,
				Init: func(store *mem.Store) {
					writeArray(store, aBase, a)
					writeArray(store, bBase, b)
				},
				ProgramFor: func(w *gpu.Warp) gpu.Program {
					return &gpu.LoopProgram{
						Iters: k,
						Body: func(kk int) []*gpu.Instr {
							return []*gpu.Instr{
								gpu.Load(1, always(func(t *gpu.Thread) mem.Addr {
									return wordAddr(aBase, rowOf(t)*k+kk)
								})),
								gpu.Load(2, always(func(t *gpu.Thread) mem.Addr {
									return wordAddr(bBase, kk*n+t.Lane)
								})),
								gpu.Comp(4),
								gpu.ALU(func(t *gpu.Thread) {
									if kk == 0 {
										t.Regs[0] = 0
									}
									t.Regs[0] += t.Regs[1] * t.Regs[2]
								}, 0, 1, 2),
							}
						},
					}
				},
			}
			kernel.ProgramFor = withEpilogue(kernel.ProgramFor,
				gpu.Store(always(func(t *gpu.Thread) mem.Addr {
					return wordAddr(cBase, rowOf(t)*n+t.Lane)
				}), func(t *gpu.Thread) uint32 { return t.Regs[0] }, 0))

			return &Instance{
				Kernels: []*gpu.Kernel{kernel},
				Verify: func(read func(mem.Addr) uint32) error {
					return compareArrays("SGM C", readBack(read, cBase, len(want)), want)
				},
			}
		},
	}
}

// withEpilogue appends trailing instructions to every warp's program.
func withEpilogue(inner func(w *gpu.Warp) gpu.Program, tail ...*gpu.Instr) func(w *gpu.Warp) gpu.Program {
	return func(w *gpu.Warp) gpu.Program {
		p := inner(w)
		i := 0
		return gpu.FuncProgram(func(w *gpu.Warp) (*gpu.Instr, bool) {
			if p != nil {
				instr, ready := p.Next(w)
				if !ready {
					return nil, false
				}
				if instr != nil {
					return instr, true
				}
				p = nil
			}
			if i < len(tail) {
				i++
				return tail[i-1], true
			}
			return nil, true
		})
	}
}
