package workload

import (
	"fmt"

	"github.com/gtsc-sim/gtsc/internal/gpu"
	"github.com/gtsc-sim/gtsc/internal/mem"
)

// relaxSpec describes a converging relaxation kernel over a padded
// adjacency structure — the shared skeleton of the coherence-requiring
// benchmarks. Every iteration, each thread reduces its owned vertices'
// values with op over their neighbors' values (+ optional edge
// weight), stores the result, and fences. Vertices are distributed
// grid-stride across all CTAs, so neighbor reads routinely cross CTA
// (and SM) boundaries: the kernel only converges to the sequential
// fixpoint if the memory system propagates stores between private
// caches — i.e. it requires coherence.
type relaxSpec struct {
	name string
	g    *paddedGraph
	init []uint32
	// weights, if non-nil, adds adj-parallel edge weights to the
	// relaxed value (Bellman-Ford flavour).
	weights []uint32
	// useMax switches from min- to max-propagation (VPR).
	useMax bool
	// iters overrides the iteration count; 0 derives it from the
	// sequential convergence round count with a staleness allowance.
	iters int

	ctas        int
	warpsPerCTA int
}

// relaxInstance materializes the spec: memory layout, kernel, verifier.
func relaxInstance(spec relaxSpec) *Instance {
	g := spec.g
	lay := newLayout(0x100000)
	valBase := lay.array(g.n)
	adjBase := lay.array(len(g.adj))
	var wBase mem.Addr
	if spec.weights != nil {
		wBase = lay.array(len(spec.weights))
	}

	var fix []uint32
	var rounds int
	if spec.useMax {
		fix, rounds = maxRelaxFixpoint(g, spec.init)
	} else {
		fix, rounds = minRelaxFixpoint(g, spec.init, spec.weights)
	}
	iters := spec.iters
	if iters == 0 {
		// The grid barrier makes each iteration one synchronous
		// (Jacobi) round for coherent protocols; time-based staleness
		// (TC leases outliving an iteration) gets 2x headroom + slack.
		jrounds := jacobiRounds(g, spec.init, spec.weights, spec.useMax)
		iters = maxi(rounds*2, jrounds*2) + 6
	}

	totalThreads := spec.ctas * spec.warpsPerCTA * gpu.WarpWidth
	maxOwned := (g.n + totalThreads - 1) / totalThreads

	ctrAddr := lay.array(1) // global-barrier counter

	kernel := &gpu.Kernel{
		Name:           spec.name,
		CTAs:           spec.ctas,
		WarpsPerCTA:    spec.warpsPerCTA,
		Regs:           5, // r0..r3 relax, r4 barrier counter
		NeedsCoherence: true,
		Init: func(store *mem.Store) {
			writeArray(store, valBase, spec.init)
			writeArray(store, adjBase, g.adj)
			if spec.weights != nil {
				writeArray(store, wBase, spec.weights)
			}
		},
		ProgramFor: func(w *gpu.Warp) gpu.Program {
			body := relaxBody(spec, g, valBase, adjBase, wBase, totalThreads, maxOwned)
			// The grid-wide barrier makes every iteration one
			// synchronous relaxation round (see globalSyncProgram).
			return newGlobalSync(body, iters, spec.ctas, ctrAddr)
		},
	}

	return &Instance{
		Kernels: []*gpu.Kernel{kernel},
		Verify: func(read func(mem.Addr) uint32) error {
			got := readBack(read, valBase, g.n)
			if err := compareArrays(spec.name+" values", got, fix); err != nil {
				return fmt.Errorf("%w (fixpoint needs %d rounds, ran %d iterations)", err, rounds, iters)
			}
			return nil
		},
	}
}

// relaxBody builds the per-iteration instruction slice. Registers:
// r0 = accumulator, r1 = neighbor id, r2 = neighbor value, r3 = weight.
func relaxBody(spec relaxSpec, g *paddedGraph, valBase, adjBase, wBase mem.Addr, totalThreads, maxOwned int) []*gpu.Instr {
	var body []*gpu.Instr
	vertexOf := func(t *gpu.Thread, k int) (int, bool) {
		v := t.GTID + k*totalThreads
		return v, v < g.n
	}
	for k := 0; k < maxOwned; k++ {
		k := k
		ownAddr := func(t *gpu.Thread) (mem.Addr, bool) {
			v, ok := vertexOf(t, k)
			if !ok {
				return 0, false
			}
			return wordAddr(valBase, v), true
		}
		body = append(body, gpu.Load(0, ownAddr))
		for j := 0; j < g.deg; j++ {
			j := j
			body = append(body, gpu.Load(1, func(t *gpu.Thread) (mem.Addr, bool) {
				v, ok := vertexOf(t, k)
				if !ok {
					return 0, false
				}
				return wordAddr(adjBase, v*g.deg+j), true
			}))
			body = append(body, gpu.Load(2, func(t *gpu.Thread) (mem.Addr, bool) {
				if _, ok := vertexOf(t, k); !ok {
					return 0, false
				}
				return wordAddr(valBase, int(t.Regs[1])), true
			}, 1))
			if spec.weights != nil {
				body = append(body, gpu.Load(3, func(t *gpu.Thread) (mem.Addr, bool) {
					v, ok := vertexOf(t, k)
					if !ok {
						return 0, false
					}
					return wordAddr(wBase, v*g.deg+j), true
				}))
				// Inactive lanes compute junk into r0 but never store
				// it (their Store lane is inactive too).
				body = append(body, gpu.ALU(func(t *gpu.Thread) {
					t.Regs[0] = minu32(t.Regs[0], t.Regs[2]+t.Regs[3])
				}, 0, 2, 3))
			} else if spec.useMax {
				body = append(body, gpu.ALU(func(t *gpu.Thread) {
					t.Regs[0] = maxu32(t.Regs[0], t.Regs[2])
				}, 0, 2))
			} else {
				body = append(body, gpu.ALU(func(t *gpu.Thread) {
					t.Regs[0] = minu32(t.Regs[0], t.Regs[2])
				}, 0, 2))
			}
		}
		body = append(body, gpu.Store(ownAddr, func(t *gpu.Thread) uint32 { return t.Regs[0] }, 0))
	}
	return body
}
