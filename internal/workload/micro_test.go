package workload

import (
	"testing"

	"github.com/gtsc-sim/gtsc/internal/check"
	"github.com/gtsc-sim/gtsc/internal/gpu"
	"github.com/gtsc-sim/gtsc/internal/memsys"
	"github.com/gtsc-sim/gtsc/internal/sim"
)

// TestMicroRegistry checks the microbenchmark registry's shape.
func TestMicroRegistry(t *testing.T) {
	micros := Micro()
	if len(micros) != 6 {
		t.Fatalf("expected 6 microbenchmarks, got %d", len(micros))
	}
	for _, m := range micros {
		if _, ok := MicroByName(m.Name); !ok {
			t.Fatalf("%s not found by name", m.Name)
		}
	}
	if _, ok := MicroByName("nope"); ok {
		t.Fatal("unknown name must not resolve")
	}
}

// TestMicrosUnderCoherentProtocols verifies every microbenchmark under
// every coherent configuration, both consistency models.
func TestMicrosUnderCoherentProtocols(t *testing.T) {
	for _, m := range Micro() {
		for name, cfg := range coherentConfigs() {
			m, cfg := m, cfg
			t.Run(m.Name+"/"+name, func(t *testing.T) {
				t.Parallel()
				if _, err := m.Build(1).Run(cfg); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestAtomicsWorkWithoutCoherence: atomics serialize at the L2, so
// HIST is exact even under the non-coherent L1 and TSO.
func TestAtomicsWorkWithoutCoherence(t *testing.T) {
	cfgs := map[string]sim.Config{
		"l1nc-rc":  testConfig(memsys.L1NC, gpu.RC),
		"gtsc-tso": testConfig(memsys.GTSC, gpu.TSO),
		"bl-tso":   testConfig(memsys.BL, gpu.TSO),
	}
	for name, cfg := range cfgs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			if _, err := HIST().Build(1).Run(cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMicrosSatisfyTimestampOrder runs the contention-heavy micros
// under G-TSC with the invariant checker attached.
func TestMicrosSatisfyTimestampOrder(t *testing.T) {
	for _, name := range []string{"HIST", "FS", "PING"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := testConfig(memsys.GTSC, gpu.RC)
			rec := check.NewRecorder()
			cfg.Observer = rec
			m, _ := MicroByName(name)
			if _, err := m.Build(1).Run(cfg); err != nil {
				t.Fatal(err)
			}
			if v := check.CheckTimestampOrder(rec.Ops(), 3); len(v) > 0 {
				t.Fatalf("timestamp order violated: %v", v[0].Error())
			}
		})
	}
}

// TestWorkloadsUnderTSO runs a representative subset of the main suite
// under the TSO extension on both protocols.
func TestWorkloadsUnderTSO(t *testing.T) {
	for _, wn := range []string{"CC", "STN", "HS", "SGM"} {
		for _, pn := range []struct {
			name string
			p    memsys.Protocol
		}{{"gtsc", memsys.GTSC}, {"tc", memsys.TC}} {
			wn, pn := wn, pn
			t.Run(wn+"/"+pn.name, func(t *testing.T) {
				t.Parallel()
				w, _ := ByName(wn)
				if _, err := w.Build(1).Run(testConfig(pn.p, gpu.TSO)); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestGTOScheduler runs workloads under the greedy-then-oldest
// scheduler to exercise the alternative issue order.
func TestGTOScheduler(t *testing.T) {
	for _, wn := range []string{"CC", "KM"} {
		wn := wn
		t.Run(wn, func(t *testing.T) {
			t.Parallel()
			cfg := testConfig(memsys.GTSC, gpu.RC)
			cfg.SM.Scheduler = gpu.GTO
			w, _ := ByName(wn)
			if _, err := w.Build(1).Run(cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDirectoryProtocolRunsSuite: the invalidation-based baseline is
// functionally coherent on both benchmark sets and satisfies physical
// linearizability (invalidation-before-grant = single-writer in
// physical time).
func TestDirectoryProtocolRunsSuite(t *testing.T) {
	for _, wl := range All() {
		for _, cons := range []gpu.Consistency{gpu.RC, gpu.SC} {
			wl, cons := wl, cons
			t.Run(wl.Name+"/"+cons.String(), func(t *testing.T) {
				t.Parallel()
				cfg := testConfig(memsys.DIR, cons)
				rec := check.NewRecorder()
				cfg.Observer = rec
				if _, err := wl.Build(1).Run(cfg); err != nil {
					t.Fatal(err)
				}
				if v := check.CheckPhysical(rec.Ops(), 3); len(v) > 0 {
					t.Fatalf("linearizability violated: %v", v[0].Error())
				}
			})
		}
	}
}

// TestDirectoryMicros runs the microbenchmarks under the directory
// baseline.
func TestDirectoryMicros(t *testing.T) {
	for _, m := range Micro() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			t.Parallel()
			if _, err := m.Build(1).Run(testConfig(memsys.DIR, gpu.RC)); err != nil {
				t.Fatal(err)
			}
		})
	}
}
