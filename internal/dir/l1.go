package dir

import (
	"fmt"

	"github.com/gtsc-sim/gtsc/internal/cache"
	"github.com/gtsc-sim/gtsc/internal/coherence"
	"github.com/gtsc-sim/gtsc/internal/diag"
	"github.com/gtsc-sim/gtsc/internal/mem"
	"github.com/gtsc-sim/gtsc/internal/stats"
)

// l1State is an L1 line's MESI-style state (I is an invalid line).
type l1State uint8

const (
	stateS l1State = iota + 1
	stateE
	stateM
)

type l1Meta struct {
	state l1State
}

type waiter struct {
	req *coherence.Request
}

// pendingM tracks a block's outstanding GetM and the stores waiting on
// the grant.
type pendingM struct {
	block  mem.BlockAddr
	stores []*coherence.Request
}

// pendingAtomic tracks one atomic forwarded to the L2.
type pendingAtomic struct {
	req *coherence.Request
}

// L1 is the directory protocol's private cache: write-back,
// write-allocate, invalidated on demand by the directory. It
// implements coherence.L1.
type L1 struct {
	cfg    Config
	smID   int
	nBanks int
	now    uint64

	array *cache.Array[l1Meta]
	mshr  *cache.MSHR[waiter]

	send  coherence.Sender
	outQ  []*mem.Msg
	stats stats.L1Stats
	obs   coherence.Observer

	// getm holds blocks with an outstanding GetM (at most one each).
	getm map[mem.BlockAddr]*pendingM
	// wbInFlight marks blocks whose dirty eviction writeback has been
	// sent but (as far as this L1 knows) not yet consumed; an
	// invalidation for such a block acknowledges with the flag so the
	// directory waits for the writeback's data.
	wbInFlight map[mem.BlockAddr]bool

	atomics   map[uint64]*pendingAtomic
	nextReqID uint64
	pending   int
	fail      *diag.ProtocolError

	// MutAckWithoutInval is a test-only mutation hook for the model
	// checker's teeth: when set, onInv acknowledges the directory's
	// invalidation without actually invalidating (or downgrading) the
	// local copy — a misordered-ack bug that breaks single-writer:
	// this L1 keeps serving stale hits after another SM is granted M.
	MutAckWithoutInval bool
}

// Geometry describes the cache organization.
type Geometry struct {
	Sets  int
	Ways  int
	MSHRs int
}

// NewL1 builds the directory-protocol L1 for SM smID.
func NewL1(cfg Config, smID, nBanks int, geo Geometry, send coherence.Sender, obs coherence.Observer) *L1 {
	cfg.fillDefaults()
	return &L1{
		cfg:        cfg,
		smID:       smID,
		nBanks:     nBanks,
		array:      cache.NewArray[l1Meta](geo.Sets, geo.Ways),
		mshr:       cache.NewMSHR[waiter](geo.MSHRs),
		send:       send,
		obs:        obs,
		getm:       make(map[mem.BlockAddr]*pendingM),
		wbInFlight: make(map[mem.BlockAddr]bool),
		atomics:    make(map[uint64]*pendingAtomic),
	}
}

// Stats implements coherence.L1.
func (l *L1) Stats() *stats.L1Stats { return &l.stats }

// Pending implements coherence.L1.
func (l *L1) Pending() int { return l.pending }

// Quiescent implements coherence.L1: Tick only drains outQ, so an
// empty output queue means ticking is a pure no-op until new input.
func (l *L1) Quiescent() bool { return len(l.outQ) == 0 }

// failf records the first protocol violation; the controller then
// drops further input until the simulator surfaces the error.
func (l *L1) failf(event, format string, args ...any) {
	if l.fail == nil {
		l.fail = diag.Errf(fmt.Sprintf("dir-l1[%d]", l.smID), event, format, args...)
	}
}

// Err implements coherence.L1.
func (l *L1) Err() error {
	if l.fail == nil {
		return nil
	}
	return l.fail
}

// DumpState implements coherence.L1.
func (l *L1) DumpState() diag.CacheState {
	return diag.CacheState{
		Name: "dir-l1", ID: l.smID, Pending: l.pending,
		MSHRUsed: l.mshr.Len(), MSHRCap: l.mshr.Cap(), OutQ: len(l.outQ),
		Blocked: len(l.getm),
	}
}

// Access implements coherence.L1.
func (l *L1) Access(req *coherence.Request) coherence.AccessResult {
	switch {
	case req.Atomic:
		return l.accessAtomic(req)
	case req.Store:
		return l.accessStore(req)
	default:
		return l.accessLoad(req)
	}
}

func (l *L1) accessLoad(req *coherence.Request) coherence.AccessResult {
	l.stats.Loads++
	l.stats.TagProbes++
	line := l.array.Lookup(req.Block)
	if line != nil && l.getm[req.Block] == nil {
		// Any valid state serves loads (single-writer holds: if some
		// other SM had M, this line would have been invalidated).
		l.stats.Hits++
		l.stats.DataAccesses++
		l.array.Touch(line, l.now)
		l.pending++ // completeLoad decrements
		l.completeLoad(req, &line.Data)
		return coherence.Hit
	}
	if line != nil {
		// A GetM for this block is outstanding: the load is ordered
		// after the store and waits for the grant.
		l.stats.MissLocked++
	} else {
		l.stats.MissCold++
	}
	e := l.mshr.Lookup(req.Block)
	if e == nil && l.mshr.Full() {
		l.stats.MSHRStalls++
		return coherence.Reject
	}
	if e != nil {
		l.stats.MSHRMerges++
		e.Waiters = append(e.Waiters, waiter{req: req})
		l.pending++
		return coherence.Pending
	}
	if e = l.mshr.Allocate(req.Block); e == nil {
		l.failf("mshr-allocate", "allocate for %v failed despite capacity check", req.Block)
		return coherence.Reject
	}
	e.Waiters = append(e.Waiters, waiter{req: req})
	l.pending++
	if l.getm[req.Block] == nil {
		// No request in flight yet: send GetS.
		e.Issued = true
		l.nextReqID++
		l.post(&mem.Msg{
			Type: mem.BusRd, Block: req.Block, Src: l.smID,
			Dst: bankOf(uint64(req.Block), l.nBanks), ReqID: l.nextReqID,
		})
	}
	return coherence.Pending
}

func (l *L1) accessStore(req *coherence.Request) coherence.AccessResult {
	l.stats.Stores++
	l.stats.TagProbes++
	line := l.array.Lookup(req.Block)
	if line != nil && l.getm[req.Block] == nil &&
		(line.Meta.state == stateM || line.Meta.state == stateE) {
		// Exclusive: write locally; E upgrades to M silently.
		mem.Merge(&line.Data, req.Data, req.Mask)
		line.Meta.state = stateM
		line.Dirty = true
		l.stats.DataAccesses++
		l.array.Touch(line, l.now)
		l.observeStore(req)
		req.Done(coherence.Completion{})
		return coherence.Hit
	}
	// S or I (or M-grant already pending): needs M.
	pm := l.getm[req.Block]
	if pm == nil {
		pm = &pendingM{block: req.Block}
		l.getm[req.Block] = pm
		l.nextReqID++
		l.post(&mem.Msg{
			Type: mem.BusGetM, Block: req.Block, Src: l.smID,
			Dst: bankOf(uint64(req.Block), l.nBanks), ReqID: l.nextReqID,
		})
	}
	pm.stores = append(pm.stores, req)
	l.pending++
	return coherence.Pending
}

func (l *L1) accessAtomic(req *coherence.Request) coherence.AccessResult {
	l.stats.Atomics++
	l.nextReqID++
	l.atomics[l.nextReqID] = &pendingAtomic{req: req}
	l.pending++
	data := &mem.Block{}
	mem.Merge(data, req.Data, req.Mask)
	l.post(&mem.Msg{
		Type: mem.BusAtom, Block: req.Block, Src: l.smID,
		Dst: bankOf(uint64(req.Block), l.nBanks), Data: data, Mask: req.Mask,
		Atom: req.Atom, ReqID: l.nextReqID, Warp: req.Warp,
	})
	return coherence.Pending
}

func (l *L1) completeLoad(req *coherence.Request, data *mem.Block) {
	out := &mem.Block{}
	mem.Merge(out, data, req.Mask)
	if l.obs != nil {
		l.obs.Observe(coherence.Op{
			SM: l.smID, Warp: req.Warp, Block: req.Block, Mask: req.Mask,
			Data: *out, Cycle: l.now,
		})
	}
	l.pending--
	req.Done(coherence.Completion{Data: out})
}

func (l *L1) observeStore(req *coherence.Request) {
	if l.obs == nil {
		return
	}
	var stored mem.Block
	mem.Merge(&stored, req.Data, req.Mask)
	l.obs.Observe(coherence.Op{
		SM: l.smID, Warp: req.Warp, Store: true, Block: req.Block,
		Mask: req.Mask, Data: stored, Cycle: l.now,
	})
}

// Deliver implements coherence.L1.
func (l *L1) Deliver(msg *mem.Msg) {
	if l.fail != nil {
		return
	}
	switch msg.Type {
	case mem.BusFill:
		l.onGrant(msg)
	case mem.BusInv:
		l.onInv(msg)
	case mem.BusAtomAck:
		pa, ok := l.atomics[msg.ReqID]
		if !ok {
			l.failf("unknown-atomic-ack", "atomic ack req=%d block=%v has no pending request", msg.ReqID, msg.Block)
			return
		}
		delete(l.atomics, msg.ReqID)
		l.pending--
		pa.req.Done(coherence.Completion{Data: msg.Data})
	default:
		l.failf("unexpected-message", "message %v for block %v from bank %d", msg.Type, msg.Block, msg.Src)
	}
}

// onGrant installs granted data. GetS grants carry S or E; GetM grants
// carry M, and the block's pending stores apply on top.
func (l *L1) onGrant(msg *mem.Msg) {
	l.stats.Fills++
	// A fill means every message this L1 sent for the block earlier
	// (including a writeback) has been consumed by the bank.
	delete(l.wbInFlight, msg.Block)

	line := l.array.Lookup(msg.Block)
	if line == nil {
		victim := l.array.Victim(msg.Block, nil)
		if victim.Valid {
			l.evict(victim)
		}
		l.array.Install(victim, msg.Block, msg.Data, l.now)
		line = victim
	} else {
		line.Data = *msg.Data
		l.array.Touch(line, l.now)
	}
	l.stats.DataAccesses++

	switch msg.WTS {
	case grantS:
		line.Meta.state = stateS
	case grantE:
		line.Meta.state = stateE
	case grantM:
		line.Meta.state = stateM
		line.Dirty = true
		pm := l.getm[msg.Block]
		if pm == nil {
			l.failf("orphan-m-grant", "M grant for %v without pending GetM", msg.Block)
			return
		}
		delete(l.getm, msg.Block)
		for _, st := range pm.stores {
			mem.Merge(&line.Data, st.Data, st.Mask)
			l.stats.DataAccesses++
			l.observeStore(st)
			l.pending--
			st.Done(coherence.Completion{})
		}
	default:
		l.failf("unknown-grant", "grant for %v carries unknown state %d", msg.Block, msg.WTS)
		return
	}

	// Wake loads parked on this block.
	if e := l.mshr.Lookup(msg.Block); e != nil {
		for _, w := range e.Waiters {
			l.stats.DataAccesses++
			l.completeLoad(w.req, &line.Data)
		}
		l.mshr.Release(msg.Block)
	}
}

// onInv serves a directory invalidation or downgrade: acknowledge,
// carrying data when our copy is dirty, or the wb-in-flight flag when
// the dirty copy was already evicted toward the bank.
func (l *L1) onInv(msg *mem.Msg) {
	l.stats.InvsReceived++
	line := l.array.Lookup(msg.Block)
	ack := &mem.Msg{
		Type: mem.BusInvAck, Block: msg.Block, Src: l.smID,
		Dst: bankOf(uint64(msg.Block), l.nBanks), ReqID: msg.ReqID,
	}
	if line != nil {
		if line.Dirty {
			data := &mem.Block{}
			*data = line.Data
			ack.Data = data
			ack.Mask = mem.MaskAll
		}
		if l.MutAckWithoutInval {
			l.post(ack)
			return
		}
		if msg.WTS == invDowngrade {
			line.Meta.state = stateS
			line.Dirty = false
		} else {
			l.stats.SelfInval++
			l.array.Invalidate(line)
		}
	} else if l.wbInFlight[msg.Block] {
		// Our dirty copy's writeback is racing this invalidation: tell
		// the directory to wait for it.
		ack.Reset = true
	}
	l.post(ack)
}

// ForEachLineState implements coherence.StateHolder, reporting each
// valid line's MESI letter ("S", "E", or "M") so an external checker
// can verify the single-writer invariant across SMs.
func (l *L1) ForEachLineState(fn func(b mem.BlockAddr, state string)) {
	l.array.ForEach(func(c *cache.Line[l1Meta]) {
		var s string
		switch c.Meta.state {
		case stateS:
			s = "S"
		case stateE:
			s = "E"
		case stateM:
			s = "M"
		default:
			s = "?"
		}
		fn(c.Addr, s)
	})
}

// evict writes back dirty victims; clean victims leave silently (the
// directory's sharer list goes stale, which later invalidations
// tolerate).
func (l *L1) evict(victim *cache.Line[l1Meta]) {
	if victim.Dirty {
		l.stats.Writebacks++
		l.wbInFlight[victim.Addr] = true
		data := &mem.Block{}
		*data = victim.Data
		l.post(&mem.Msg{
			Type: mem.BusWB, Block: victim.Addr, Src: l.smID,
			Dst: bankOf(uint64(victim.Addr), l.nBanks), Data: data, Mask: mem.MaskAll,
		})
	}
	l.array.Invalidate(victim)
}

// Flush implements coherence.L1: write back every dirty line and drop
// the rest (kernel boundary).
func (l *L1) Flush() {
	if l.pending != 0 {
		l.failf("flush-outstanding", "flush with %d outstanding accesses", l.pending)
		return
	}
	l.stats.Flushes++
	l.array.ForEach(func(c *cache.Line[l1Meta]) {
		l.evict(c)
	})
}

func (l *L1) post(msg *mem.Msg) {
	if len(l.outQ) == 0 && l.send.TrySend(msg) {
		return
	}
	l.outQ = append(l.outQ, msg)
}

// SyncClock implements coherence.L1.
func (l *L1) SyncClock(now uint64) { l.now = now }

// Tick implements coherence.L1.
func (l *L1) Tick(now uint64) {
	l.now = now
	for len(l.outQ) > 0 {
		if !l.send.TrySend(l.outQ[0]) {
			return
		}
		l.outQ = l.outQ[1:]
	}
}
