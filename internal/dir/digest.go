package dir

import (
	"fmt"
	"io"
	"sort"

	"github.com/gtsc-sim/gtsc/internal/mem"
)

// DigestState implements coherence.StateDigester for a directory L1.
func (l *L1) DigestState(w io.Writer) {
	fmt.Fprintf(w, "dir-l1[%d] now=%d next=%d pend=%d\n", l.smID, l.now, l.nextReqID, l.pending)
	l.array.DigestInto(w)
	l.mshr.DigestInto(w)
	mem.DigestMsgs(w, "outq", l.outQ)
	// Outstanding GetMs: the queued stores are callback carriers, so
	// digest the block and the waiting-store count.
	mem.DigestBlockMap(w, l.getm, func(w io.Writer, b mem.BlockAddr, p *pendingM) {
		fmt.Fprintf(w, "getm %#x n=%d\n", uint64(b), len(p.stores))
	})
	mem.DigestBlockMap(w, l.wbInFlight, func(w io.Writer, b mem.BlockAddr, v bool) {
		fmt.Fprintf(w, "wb %#x %t\n", uint64(b), v)
	})
	mem.DigestIDTable(w, "atom", l.atomics)
}

// DigestState implements coherence.StateDigester for a directory bank.
func (l *L2) DigestState(w io.Writer) {
	fmt.Fprintf(w, "dir-l2[%d] now=%d\n", l.bankID, l.now)
	l.array.DigestInto(w)
	mem.DigestBlockMap(w, l.miss, func(w io.Writer, b mem.BlockAddr, m *l2Miss) {
		fmt.Fprintf(w, "miss %#x", uint64(b))
		if m.data != nil {
			fmt.Fprintf(w, " d%x", m.data.Words)
		}
		io.WriteString(w, "\n")
		mem.DigestMsgs(w, "wait", m.waiting)
	})
	mem.DigestBlockMap(w, l.busy, func(w io.Writer, b mem.BlockAddr, bs *busyState) {
		fmt.Fprintf(w, "busy %#x", uint64(b))
		sms := make([]int, 0, len(bs.targets))
		for sm := range bs.targets {
			sms = append(sms, sm)
		}
		sort.Ints(sms)
		for _, sm := range sms {
			t := bs.targets[sm]
			fmt.Fprintf(w, " %d:%t/%t", sm, t.done, t.waitWB)
		}
		io.WriteString(w, "\n")
		if bs.grant != nil {
			io.WriteString(w, "grant ")
			bs.grant.DigestInto(w)
		}
		mem.DigestMsgs(w, "wait", bs.waiting)
	})
	mem.DigestMsgs(w, "inq", l.inQ)
	mem.DigestMsgs(w, "outnoc", l.outNoC)
	mem.DigestMsgs(w, "outdram", l.outDRAM)
}
