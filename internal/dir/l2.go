package dir

import (
	"fmt"
	"slices"

	"github.com/gtsc-sim/gtsc/internal/cache"
	"github.com/gtsc-sim/gtsc/internal/coherence"
	"github.com/gtsc-sim/gtsc/internal/diag"
	"github.com/gtsc-sim/gtsc/internal/mem"
	"github.com/gtsc-sim/gtsc/internal/stats"
)

// dirMeta is the full-map directory entry of one L2 line.
type dirMeta struct {
	sharers uint64 // bit per SM holding S
	owner   int    // SM holding E/M, or -1
}

func (d *dirMeta) clearOwner() { d.owner = -1 }

// target tracks one pending invalidation acknowledgment.
type target struct {
	done   bool
	waitWB bool // ack said a dirty writeback is in flight; wait for it
}

// busyState is an in-progress directory transaction on one block:
// invalidations/downgrades are outstanding and other requests for the
// block queue behind it.
type busyState struct {
	block   mem.BlockAddr
	targets map[int]*target
	// grant, when non-nil, is the request to serve once all targets
	// acknowledge (GetS with owner, GetM, or an atomic). When nil the
	// busy is an eviction recall and completion frees the line.
	grant   *mem.Msg
	waiting []*mem.Msg
}

func (b *busyState) remaining() int {
	n := 0
	for _, t := range b.targets {
		if !t.done {
			n++
		}
	}
	return n
}

// l2Miss tracks a DRAM fetch in progress.
type l2Miss struct {
	block   mem.BlockAddr
	waiting []*mem.Msg
	data    *mem.Block // non-nil once DRAM returned but install stalled
}

// L2 is one directory bank: an inclusive shared cache whose lines
// carry a full sharer map. It implements coherence.L2.
type L2 struct {
	cfg    Config
	bankID int
	now    uint64

	array *cache.Array[dirMeta]
	miss  map[mem.BlockAddr]*l2Miss
	busy  map[mem.BlockAddr]*busyState

	inQ      []*mem.Msg
	perCycle int

	sendNoC  coherence.Sender
	sendDRAM coherence.Sender
	outNoC   []*mem.Msg
	outDRAM  []*mem.Msg

	stats stats.L2Stats
	obs   coherence.Observer
	fail  *diag.ProtocolError

	// stalledFills counts misses whose DRAM data has returned but whose
	// install stalled on a protected victim (m.data != nil). While any
	// fill is stalled, Tick retries installs (counting EvictStalls and
	// issuing recalls) every cycle, so the bank is not quiescent.
	stalledFills int
}

// L2Geometry describes one bank's organization.
type L2Geometry struct {
	Sets     int
	Ways     int
	PerCycle int
}

// NewL2 builds directory bank bankID.
func NewL2(cfg Config, bankID int, geo L2Geometry, sendNoC, sendDRAM coherence.Sender, obs coherence.Observer) *L2 {
	cfg.fillDefaults()
	if geo.PerCycle == 0 {
		geo.PerCycle = 1
	}
	return &L2{
		cfg:      cfg,
		bankID:   bankID,
		array:    cache.NewArray[dirMeta](geo.Sets, geo.Ways),
		miss:     make(map[mem.BlockAddr]*l2Miss),
		busy:     make(map[mem.BlockAddr]*busyState),
		perCycle: geo.PerCycle,
		sendNoC:  sendNoC,
		sendDRAM: sendDRAM,
		obs:      obs,
	}
}

// Stats implements coherence.L2.
func (l *L2) Stats() *stats.L2Stats { return &l.stats }

// ForEachLineState implements coherence.StateHolder, reporting each
// directory entry as "owner=<sm> sharers=<bitmap>" so checker
// counterexamples can show the directory's view next to the L1s'.
func (l *L2) ForEachLineState(fn func(b mem.BlockAddr, state string)) {
	l.array.ForEach(func(c *cache.Line[dirMeta]) {
		fn(c.Addr, fmt.Sprintf("owner=%d sharers=%#x", c.Meta.owner, c.Meta.sharers))
	})
}

// Pending implements coherence.L2.
func (l *L2) Pending() int {
	n := len(l.inQ) + len(l.outNoC) + len(l.outDRAM)
	for _, m := range l.miss {
		n += len(m.waiting) + 1
	}
	for _, b := range l.busy {
		n += len(b.waiting) + b.remaining() + 1
	}
	return n
}

// Quiescent implements coherence.L2. Stalled fills bar quiescence
// (Tick retries them, counting EvictStalls and issuing recalls, every
// cycle). Plain misses and busy directory transactions do not: both
// advance only when a message arrives, which the skip engine models
// as scheduled NoC/DRAM events.
func (l *L2) Quiescent() bool {
	return len(l.inQ) == 0 && len(l.outNoC) == 0 && len(l.outDRAM) == 0 &&
		l.stalledFills == 0
}

// Drained implements coherence.L2: O(1) Pending() == 0.
func (l *L2) Drained() bool {
	return len(l.inQ) == 0 && len(l.outNoC) == 0 && len(l.outDRAM) == 0 &&
		len(l.miss) == 0 && len(l.busy) == 0
}

// failf records the first protocol violation; the bank then drops
// further input until the simulator surfaces the error.
func (l *L2) failf(event, format string, args ...any) {
	if l.fail == nil {
		l.fail = diag.Errf(fmt.Sprintf("dir-l2[%d]", l.bankID), event, format, args...)
	}
}

// Err implements coherence.L2.
func (l *L2) Err() error {
	if l.fail == nil {
		return nil
	}
	return l.fail
}

// DumpState implements coherence.L2.
func (l *L2) DumpState() diag.CacheState {
	blocked := 0
	for _, b := range l.busy {
		blocked += len(b.waiting) + b.remaining()
	}
	return diag.CacheState{
		Name: "dir-l2", ID: l.bankID, Pending: l.Pending(),
		MSHRUsed: len(l.miss), InQ: len(l.inQ),
		OutQ:   len(l.outNoC) + len(l.outDRAM),
		Misses: len(l.miss), Blocked: blocked,
	}
}

// Peek implements coherence.L2 (verification hook). Note the
// architecturally current data may live in an owner's L1 until the
// kernel-boundary flush writes it back.
func (l *L2) Peek(b mem.BlockAddr) (*mem.Block, bool) {
	line := l.array.Lookup(b)
	if line == nil {
		return nil, false
	}
	data := line.Data
	return &data, true
}

// Deliver implements coherence.L2.
func (l *L2) Deliver(msg *mem.Msg) {
	if l.fail != nil {
		return
	}
	l.inQ = append(l.inQ, msg)
}

// DRAMFill implements coherence.L2.
func (l *L2) DRAMFill(msg *mem.Msg) {
	if l.fail != nil {
		return
	}
	m, ok := l.miss[msg.Block]
	if !ok {
		l.failf("orphan-dram-fill", "DRAM fill for %v without outstanding miss", msg.Block)
		return
	}
	m.data = msg.Data
	l.stalledFills++
	l.tryInstall(m)
}

// tryInstall places a fetched block. Inclusion: the victim must have
// no live L1 copies; otherwise a recall (invalidation round) runs
// first and the install retries.
func (l *L2) tryInstall(m *l2Miss) {
	victim := l.array.Victim(m.block, func(c *cache.Line[dirMeta]) bool {
		return c.Meta.sharers == 0 && c.Meta.owner < 0 && l.busy[c.Addr] == nil
	})
	if victim == nil {
		l.stats.EvictStalls++
		l.startRecall(m.block)
		return
	}
	if victim.Valid {
		l.evictClean(victim)
	}
	l.array.Install(victim, m.block, m.data, l.now)
	victim.Meta.clearOwner()
	l.stats.DataAccesses++
	delete(l.miss, m.block)
	l.stalledFills--
	waiting := m.waiting
	l.runQueue(m.block, waiting)
}

// startRecall begins invalidating the LRU victim's L1 copies so a
// stalled install can proceed — the §II-C recall traffic.
func (l *L2) startRecall(forBlock mem.BlockAddr) {
	victim := l.array.Victim(forBlock, func(c *cache.Line[dirMeta]) bool {
		return l.busy[c.Addr] == nil
	})
	if victim == nil {
		return // every way is mid-transaction; retry next tick
	}
	if victim.Meta.sharers == 0 && victim.Meta.owner < 0 {
		return // became clean meanwhile; the retry will install over it
	}
	l.stats.Recalls++
	l.beginBusy(victim.Addr, &victim.Meta, -1, nil)
}

// evictClean evicts a line with no L1 copies, writing dirty data back
// to memory.
func (l *L2) evictClean(victim *cache.Line[dirMeta]) {
	l.stats.Evictions++
	if victim.Dirty {
		l.stats.WritebackDRAM++
		data := &mem.Block{}
		*data = victim.Data
		l.postDRAM(&mem.Msg{
			Type: mem.DRAMWr, Block: victim.Addr, Src: l.bankID, Dst: l.bankID,
			Data: data, Mask: mem.MaskAll,
		})
	}
	l.array.Invalidate(victim)
}

// beginBusy sends invalidations (or a downgrade, for GetS-vs-owner) to
// every live copy except exclude, and parks grant until all targets
// acknowledge.
func (l *L2) beginBusy(block mem.BlockAddr, meta *dirMeta, exclude int, grant *mem.Msg) {
	b := &busyState{block: block, targets: map[int]*target{}, grant: grant}
	downgrade := grant != nil && grant.Type == mem.BusRd
	subtype := uint64(invInvalidate)
	if downgrade {
		subtype = invDowngrade
	}
	for sm := 0; sm < l.cfg.MaxSharers; sm++ {
		if sm == exclude {
			continue
		}
		hasCopy := meta.sharers&(1<<uint(sm)) != 0 || meta.owner == sm
		if !hasCopy {
			continue
		}
		b.targets[sm] = &target{}
		l.stats.Invalidations++
		l.postNoC(&mem.Msg{
			Type: mem.BusInv, Block: block, Src: l.bankID, Dst: sm, WTS: subtype,
		})
	}
	if len(b.targets) == 0 {
		l.failf("busy-no-targets", "transaction on %v has no invalidation targets (sharers=%#x owner=%d)", block, meta.sharers, meta.owner)
		return
	}
	l.busy[block] = b
}

// onInvAck processes one acknowledgment.
func (l *L2) onInvAck(msg *mem.Msg) {
	b := l.busy[msg.Block]
	if b == nil {
		return // stale ack after a completed recall; harmless
	}
	t := b.targets[msg.Src]
	if t == nil || t.done {
		return
	}
	line := l.array.Lookup(msg.Block)
	if msg.Data != nil && line != nil {
		mem.Merge(&line.Data, msg.Data, msg.Mask)
		line.Dirty = true
	}
	if msg.Reset {
		// The dirty copy's writeback is in flight; completion waits
		// for the BusWB itself.
		t.waitWB = true
		l.maybeFinishBusy(b)
		return
	}
	t.done = true
	l.maybeFinishBusy(b)
}

// onWB merges a writeback. A writeback from a targeted L1 completes
// that target outright: the sender provably holds no copy any more and
// its data has arrived. (Its invalidation ack — flagged wb-in-flight —
// follows the writeback on the same FIFO pair, so waiting for t.waitWB
// before honoring the writeback would deadlock the transaction.)
func (l *L2) onWB(msg *mem.Msg) {
	line := l.array.Lookup(msg.Block)
	if line != nil {
		mem.Merge(&line.Data, msg.Data, msg.Mask)
		line.Dirty = true
		if line.Meta.owner == msg.Src {
			line.Meta.clearOwner()
		}
		l.stats.DataAccesses++
	}
	if b := l.busy[msg.Block]; b != nil {
		if t := b.targets[msg.Src]; t != nil && !t.done {
			t.done = true
			l.maybeFinishBusy(b)
		}
	}
}

// maybeFinishBusy completes the transaction once every target is done:
// the directory state collapses and the parked grant (if any) is
// served, then queued requests replay.
func (l *L2) maybeFinishBusy(b *busyState) {
	if b.remaining() != 0 {
		return
	}
	delete(l.busy, b.block)
	line := l.array.Lookup(b.block)
	if line == nil {
		l.failf("busy-line-vanished", "completed transaction on %v but the line is gone", b.block)
		return
	}
	// All targeted copies are gone (or downgraded).
	if b.grant != nil && b.grant.Type == mem.BusRd {
		// Downgrade path: the old owner keeps an S copy.
		if line.Meta.owner >= 0 {
			line.Meta.sharers |= 1 << uint(line.Meta.owner)
		}
	} else {
		for sm := range b.targets {
			line.Meta.sharers &^= 1 << uint(sm)
		}
	}
	if line.Meta.owner >= 0 {
		line.Meta.clearOwner()
	}

	if b.grant != nil {
		l.serve(b.grant, line)
	}
	l.runQueue(b.block, b.waiting)
}

// runQueue replays parked requests in order; a request that starts a
// new transaction absorbs the rest of the queue.
func (l *L2) runQueue(block mem.BlockAddr, msgs []*mem.Msg) {
	for i, msg := range msgs {
		line := l.array.Lookup(block)
		if line == nil {
			// The line was evicted between replays (recall-for-install
			// completed): refetch through the miss path.
			l.route(msg)
			continue
		}
		l.serve(msg, line)
		if nb := l.busy[block]; nb != nil {
			nb.waiting = append(nb.waiting, msgs[i+1:]...)
			return
		}
	}
}

// serve handles one request against a present, non-busy line.
func (l *L2) serve(msg *mem.Msg, line *cache.Line[dirMeta]) {
	meta := &line.Meta
	switch msg.Type {
	case mem.BusRd: // GetS
		if meta.owner >= 0 && meta.owner != msg.Src {
			l.beginBusy(msg.Block, meta, msg.Src, msg)
			return
		}
		if meta.owner == msg.Src {
			// Re-request from the owner itself (lost its copy after a
			// silent E eviction): keep exclusivity.
			l.grant(msg, line, grantE)
			return
		}
		if meta.sharers == 0 {
			meta.owner = msg.Src
			l.grant(msg, line, grantE)
			return
		}
		meta.sharers |= 1 << uint(msg.Src)
		l.grant(msg, line, grantS)
	case mem.BusGetM:
		others := meta.sharers &^ (1 << uint(msg.Src))
		if others == 0 && (meta.owner < 0 || meta.owner == msg.Src) {
			meta.sharers = 0
			meta.owner = msg.Src
			l.grant(msg, line, grantM)
			return
		}
		l.beginBusy(msg.Block, meta, msg.Src, msg)
	case mem.BusAtom:
		if meta.sharers != 0 || meta.owner >= 0 {
			// Recall every copy (including the requester's), then
			// perform at the L2.
			l.beginBusy(msg.Block, meta, -1, msg)
			return
		}
		l.performAtomic(msg, line)
	case mem.BusWB:
		l.onWB(msg)
	default:
		l.failf("unexpected-message", "message %v for block %v from SM %d", msg.Type, msg.Block, msg.Src)
	}
}

// grant completes a GetS/GetM (state per the grant code). GetM grants
// re-run through serve's GetM arm; by construction all other copies
// are gone, so this sends the fill.
func (l *L2) grant(msg *mem.Msg, line *cache.Line[dirMeta], state uint64) {
	if msg.Type == mem.BusGetM {
		line.Meta.sharers = 0
		line.Meta.owner = msg.Src
		state = grantM
	}
	if msg.Type == mem.BusAtom {
		l.performAtomic(msg, line)
		return
	}
	l.stats.FillsSent++
	l.stats.DataAccesses++
	data := &mem.Block{}
	*data = line.Data
	l.array.Touch(line, l.now)
	l.postNoC(&mem.Msg{
		Type: mem.BusFill, Block: msg.Block, Src: l.bankID, Dst: msg.Src,
		WTS: state, Data: data, ReqID: msg.ReqID,
	})
}

func (l *L2) performAtomic(msg *mem.Msg, line *cache.Line[dirMeta]) {
	old := &mem.Block{}
	mem.Merge(old, &line.Data, msg.Mask)
	for i := 0; i < mem.WordsPerBlock; i++ {
		if msg.Mask.Has(i) {
			line.Data.Words[i] = msg.Atom.Apply(line.Data.Words[i], msg.Data.Words[i])
		}
	}
	line.Dirty = true
	l.array.Touch(line, l.now)
	l.stats.DataAccesses++
	if l.obs != nil {
		l.obs.Observe(coherence.Op{
			SM: msg.Src, Warp: msg.Warp, Block: msg.Block,
			Mask: msg.Mask, Data: *old, Cycle: l.now,
		})
		var stored mem.Block
		mem.Merge(&stored, &line.Data, msg.Mask)
		l.obs.Observe(coherence.Op{
			SM: msg.Src, Warp: msg.Warp, Store: true, Block: msg.Block,
			Mask: msg.Mask, Data: stored, Cycle: l.now,
		})
	}
	l.postNoC(&mem.Msg{
		Type: mem.BusAtomAck, Block: msg.Block, Src: l.bankID, Dst: msg.Src,
		Data: old, Mask: msg.Mask, ReqID: msg.ReqID, Warp: msg.Warp,
	})
}

// route dispatches a request when the line may be absent or busy.
func (l *L2) route(msg *mem.Msg) {
	if b, ok := l.busy[msg.Block]; ok {
		if msg.Type == mem.BusInvAck {
			l.onInvAck(msg)
			return
		}
		if msg.Type == mem.BusWB {
			l.onWB(msg)
			return
		}
		b.waiting = append(b.waiting, msg)
		return
	}
	switch msg.Type {
	case mem.BusInvAck:
		l.onInvAck(msg)
		return
	case mem.BusWB:
		l.onWB(msg)
		return
	}
	if m, ok := l.miss[msg.Block]; ok {
		m.waiting = append(m.waiting, msg)
		return
	}
	line := l.array.Lookup(msg.Block)
	if line == nil {
		l.stats.Misses++
		m := &l2Miss{block: msg.Block, waiting: []*mem.Msg{msg}}
		l.miss[msg.Block] = m
		l.postDRAM(&mem.Msg{Type: mem.DRAMRd, Block: msg.Block, Src: l.bankID, Dst: l.bankID})
		return
	}
	l.stats.Hits++
	l.serve(msg, line)
}

// SyncClock implements coherence.L2.
func (l *L2) SyncClock(now uint64) { l.now = now }

// Tick implements coherence.L2.
func (l *L2) Tick(now uint64) {
	l.now = now
	l.drainOut()
	// Retry stalled installs (their recalls may have completed). Sorted
	// by block address so replay order is independent of map layout.
	// The scan is gated on the O(1) stalled-fill count: with none
	// stalled it built an empty slice anyway, so skipping it is exact.
	var stalled []mem.BlockAddr
	if l.stalledFills > 0 {
		for b, m := range l.miss {
			if m.data != nil && l.busy[b] == nil {
				stalled = append(stalled, b)
			}
		}
	}
	slices.Sort(stalled)
	for _, b := range stalled {
		if m, ok := l.miss[b]; ok && m.data != nil && l.busy[b] == nil {
			l.tryInstall(m)
		}
	}
	if len(l.outNoC) > 0 || len(l.outDRAM) > 0 {
		return
	}
	for i := 0; i < l.perCycle && len(l.inQ) > 0; i++ {
		msg := l.inQ[0]
		l.inQ = l.inQ[1:]
		switch msg.Type {
		case mem.BusRd:
			l.stats.Reads++
		case mem.BusGetM:
			l.stats.Writes++
		case mem.BusAtom:
			l.stats.Atomics++
		}
		l.stats.TagProbes++
		l.route(msg)
	}
}

func (l *L2) postNoC(msg *mem.Msg) {
	if len(l.outNoC) == 0 && l.sendNoC.TrySend(msg) {
		return
	}
	l.outNoC = append(l.outNoC, msg)
}

func (l *L2) postDRAM(msg *mem.Msg) {
	if len(l.outDRAM) == 0 && l.sendDRAM.TrySend(msg) {
		return
	}
	l.outDRAM = append(l.outDRAM, msg)
}

func (l *L2) drainOut() {
	for len(l.outNoC) > 0 {
		if !l.sendNoC.TrySend(l.outNoC[0]) {
			break
		}
		l.outNoC = l.outNoC[1:]
	}
	for len(l.outDRAM) > 0 {
		if !l.sendDRAM.TrySend(l.outDRAM[0]) {
			break
		}
		l.outDRAM = l.outDRAM[1:]
	}
}
