package dir

import (
	"testing"
	"testing/quick"

	"github.com/gtsc-sim/gtsc/internal/check"
	"github.com/gtsc-sim/gtsc/internal/coherence"
	"github.com/gtsc-sim/gtsc/internal/mem"
)

// newHarnessObs builds a harness with an operation observer and a tiny
// L2 (2 sets x 2 ways) so inclusion recalls and writeback races fire
// constantly under fuzzing.
func newHarnessObs(t *testing.T, nSM int, obs coherence.Observer) *harness {
	h := &harness{t: t, store: mem.NewStore()}
	cfg := Config{MaxSharers: nSM}
	h.l2 = NewL2(cfg, 0, L2Geometry{Sets: 2, Ways: 2},
		coherence.SenderFunc(func(m *mem.Msg) bool { h.toL1 = append(h.toL1, m); return true }),
		coherence.SenderFunc(func(m *mem.Msg) bool { h.dram = append(h.dram, m); return true }),
		obs)
	for i := 0; i < nSM; i++ {
		h.l1s = append(h.l1s, NewL1(cfg, i, 1,
			Geometry{Sets: 2, Ways: 2, MSHRs: 4},
			coherence.SenderFunc(func(m *mem.Msg) bool { h.toL2 = append(h.toL2, m); return true }),
			obs))
	}
	return h
}

// TestFuzzLinearizability: random racing loads, stores and atomics
// over a tiny block pool with a tiny inclusive L2 (constant recalls,
// evictions and writeback races) must always produce a per-location
// linearizable history — the invariant invalidation-based protocols
// guarantee by construction.
func TestFuzzLinearizability(t *testing.T) {
	f := func(raw []byte) bool {
		rec := check.NewRecorder()
		h := newHarnessObs(t, 3, rec)
		var vals uint32
		i := 0
		for i+1 < len(raw) {
			burst := int(raw[i]%4) + 1
			i++
			for b := 0; b < burst && i+1 < len(raw); b++ {
				op, arg := raw[i], raw[i+1]
				i += 2
				sm := int(op) % len(h.l1s)
				warp := int(op>>2) % 4
				block := mem.BlockAddr(1 + int(arg)%6)
				word := int(arg>>4) % 4
				switch op % 5 {
				case 0, 1:
					h.load(sm, warp, block, word)
				case 2:
					vals++
					h.storeWord(sm, warp, block, word, vals)
				case 3:
					h.atomic(sm, warp, block, word, mem.AtomAdd, uint32(arg)+1)
				default:
					h.atomic(sm, warp, block, word, mem.AtomMax, uint32(arg))
				}
			}
			h.pump()
		}
		h.pump()
		if v := check.CheckPhysical(rec.Ops(), 1); len(v) > 0 {
			t.Logf("violation: %s", v[0].Error())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func (h *harness) atomic(sm, warp int, b mem.BlockAddr, word int, op mem.AtomicOp, operand uint32) *captured {
	out := &captured{}
	data := &mem.Block{}
	data.Words[word] = operand
	out.res = h.l1s[sm].Access(&coherence.Request{
		Block: b, Atomic: true, Atom: op, Mask: mem.WordMask(0).Set(word),
		Data: data, Warp: warp,
		Done: func(c coherence.Completion) { out.done = true; out.c = c },
	})
	return out
}

// TestFuzzFinalState replays the observed stores in observation order
// against a reference memory and compares with the architected state
// (L1 owner copies flushed through the L2 by Flush).
func TestFuzzFinalState(t *testing.T) {
	f := func(raw []byte) bool {
		rec := check.NewRecorder()
		h := newHarnessObs(t, 3, rec)
		var vals uint32
		for i := 0; i+1 < len(raw); i += 2 {
			op, arg := raw[i], raw[i+1]
			sm := int(op) % len(h.l1s)
			warp := int(op>>2) % 4
			block := mem.BlockAddr(1 + int(arg)%4)
			word := int(arg>>4) % 4
			if op%3 == 0 {
				vals++
				h.storeWord(sm, warp, block, word, vals)
			} else {
				h.atomic(sm, warp, block, word, mem.AtomAdd, uint32(arg)%5)
			}
			if op%4 == 0 {
				h.pump()
			}
		}
		h.pump()
		for _, l1 := range h.l1s {
			l1.Flush()
		}
		h.pump()

		type wkey struct {
			b mem.BlockAddr
			w int
		}
		want := map[wkey]uint32{}
		for _, o := range rec.Ops() {
			if !o.Store {
				continue
			}
			for w := 0; w < 4; w++ {
				if o.Mask.Has(w) {
					want[wkey{o.Block, w}] = o.Data.Words[w]
				}
			}
		}
		for k, v := range want {
			var got uint32
			if data, ok := h.l2.Peek(k.b); ok {
				got = data.Words[k.w]
			} else {
				var blk mem.Block
				h.store.ReadBlock(k.b, &blk)
				got = blk.Words[k.w]
			}
			if got != v {
				t.Logf("final state mismatch at %v word %d: got %d want %d", k.b, k.w, got, v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
