// Package dir implements a conventional invalidation-based directory
// coherence protocol (MESI-style) adapted to the GPU hierarchy — the
// class of protocol Section II-C of the paper argues is ill-suited to
// GPUs. It exists so that argument can be *measured* on this
// simulator rather than assumed: the §II-C characterization experiment
// compares its invalidation/recall traffic, storage overhead and
// performance against G-TSC and TC.
//
// Design (standard full-map directory, simplified where the paper's
// complaints do not depend on the detail):
//
//   - L1s are write-back, write-allocate, with MESI-style states:
//     a load miss sends GetS (BusRd) and is granted E when no other
//     copy exists, S otherwise; a store needs M, obtained by GetM
//     (BusGetM); E upgrades to M silently.
//   - The L2 keeps a full-map directory per line: a sharer bit per SM
//     plus an exclusive owner. GetM invalidates every other copy and
//     waits for acknowledgments before granting — the write-latency
//     and traffic cost invalidation protocols pay on GPUs.
//   - The L2 is inclusive: evicting a line with live L1 copies first
//     recalls them (the §II-C "recall traffic").
//   - Dirty L1 evictions write back (BusWB); an invalidation that
//     catches a dirty copy acknowledges with data. A race between a
//     spontaneous writeback and an invalidation is resolved with a
//     wb-in-flight flag on the acknowledgment, after which the
//     directory waits for the writeback itself.
//   - Atomics recall every copy and execute at the L2.
//
// Storage: a full-map directory costs (NumSMs + owner id) bits per L2
// line, growing linearly with SM count — versus G-TSC's two 16-bit
// timestamps per line regardless of SM count. The characterization
// experiment reports both.
package dir

// Config holds the directory protocol's (few) parameters.
type Config struct {
	// MaxSharers bounds the full-map width (default 64; must cover
	// the machine's SM count).
	MaxSharers int
}

func (c *Config) fillDefaults() {
	if c.MaxSharers == 0 {
		c.MaxSharers = 64
	}
}

// Grant state codes carried in BusFill.WTS.
const (
	grantS = 1
	grantE = 2
	grantM = 3
)

// Invalidation subtypes carried in BusInv.WTS.
const (
	invInvalidate = 0 // drop the copy
	invDowngrade  = 1 // keep a shared copy, surrender exclusivity
)

func bankOf(b uint64, nBanks int) int { return int(b % uint64(nBanks)) }
