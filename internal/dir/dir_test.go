package dir

import (
	"testing"

	"github.com/gtsc-sim/gtsc/internal/coherence"
	"github.com/gtsc-sim/gtsc/internal/mem"
)

// harness wires directory L1s to one directory bank with explicit
// queues and instant DRAM.
type harness struct {
	t     *testing.T
	l1s   []*L1
	l2    *L2
	store *mem.Store
	toL2  []*mem.Msg
	toL1  []*mem.Msg
	dram  []*mem.Msg
	now   uint64
	log   []*mem.Msg
}

func newHarness(t *testing.T, nSM int, l2geo L2Geometry) *harness {
	h := &harness{t: t, store: mem.NewStore()}
	cfg := Config{MaxSharers: nSM}
	if l2geo.Sets == 0 {
		l2geo = L2Geometry{Sets: 64, Ways: 8}
	}
	h.l2 = NewL2(cfg, 0, l2geo,
		coherence.SenderFunc(func(m *mem.Msg) bool { h.toL1 = append(h.toL1, m); h.log = append(h.log, m); return true }),
		coherence.SenderFunc(func(m *mem.Msg) bool { h.dram = append(h.dram, m); return true }),
		nil)
	for i := 0; i < nSM; i++ {
		h.l1s = append(h.l1s, NewL1(cfg, i, 1,
			Geometry{Sets: 16, Ways: 4, MSHRs: 8},
			coherence.SenderFunc(func(m *mem.Msg) bool { h.toL2 = append(h.toL2, m); h.log = append(h.log, m); return true }),
			nil))
	}
	return h
}

func (h *harness) pump() {
	for i := 0; i < 100000; i++ {
		h.now++
		for _, l1 := range h.l1s {
			l1.Tick(h.now)
		}
		h.l2.Tick(h.now)
		progress := false
		for len(h.toL2) > 0 {
			m := h.toL2[0]
			h.toL2 = h.toL2[1:]
			h.l2.Deliver(m)
			progress = true
		}
		for len(h.toL1) > 0 {
			m := h.toL1[0]
			h.toL1 = h.toL1[1:]
			h.l1s[m.Dst].Deliver(m)
			progress = true
		}
		for len(h.dram) > 0 {
			m := h.dram[0]
			h.dram = h.dram[1:]
			progress = true
			switch m.Type {
			case mem.DRAMRd:
				data := &mem.Block{}
				h.store.ReadBlock(m.Block, data)
				h.l2.DRAMFill(&mem.Msg{Type: mem.DRAMFill, Block: m.Block, Data: data})
			case mem.DRAMWr:
				h.store.WriteBlock(m.Block, m.Data, m.Mask)
			}
		}
		if !progress && h.l2.Pending() == 0 {
			idle := true
			for _, l1 := range h.l1s {
				if l1.Pending() != 0 {
					idle = false
				}
			}
			if idle {
				return
			}
		}
	}
	h.t.Fatal("harness did not quiesce")
}

type captured struct {
	res  coherence.AccessResult
	done bool
	c    coherence.Completion
}

func (h *harness) load(sm, warp int, b mem.BlockAddr, word int) *captured {
	out := &captured{}
	out.res = h.l1s[sm].Access(&coherence.Request{
		Block: b, Mask: mem.WordMask(0).Set(word), Warp: warp,
		Done: func(c coherence.Completion) { out.done = true; out.c = c },
	})
	return out
}

func (h *harness) storeWord(sm, warp int, b mem.BlockAddr, word int, val uint32) *captured {
	out := &captured{}
	data := &mem.Block{}
	data.Words[word] = val
	out.res = h.l1s[sm].Access(&coherence.Request{
		Block: b, Store: true, Mask: mem.WordMask(0).Set(word), Data: data, Warp: warp,
		Done: func(c coherence.Completion) { out.done = true; out.c = c },
	})
	return out
}

func (h *harness) count(ty mem.MsgType) int {
	n := 0
	for _, m := range h.log {
		if m.Type == ty {
			n++
		}
	}
	return n
}

func TestExclusiveGrantAndSilentUpgrade(t *testing.T) {
	h := newHarness(t, 2, L2Geometry{})
	X := mem.BlockAddr(5)
	h.store.WriteWord(X.WordAddr(0), 9)

	ld := h.load(0, 0, X, 0)
	h.pump()
	if !ld.done || ld.c.Data.Words[0] != 9 {
		t.Fatal("fill failed")
	}
	// Sole reader got E: the following store upgrades silently (no
	// GetM on the wire).
	st := h.storeWord(0, 0, X, 0, 10)
	if st.res != coherence.Hit || !st.done {
		t.Fatal("store to E must complete locally")
	}
	if h.count(mem.BusGetM) != 0 {
		t.Fatal("silent E->M upgrade must not send GetM")
	}
	// Local re-read sees the new value without traffic.
	ld2 := h.load(0, 0, X, 0)
	if ld2.res != coherence.Hit || ld2.c.Data.Words[0] != 10 {
		t.Fatal("local M read failed")
	}
}

func TestSharersThenInvalidation(t *testing.T) {
	h := newHarness(t, 3, L2Geometry{})
	X := mem.BlockAddr(5)
	h.store.WriteWord(X.WordAddr(0), 1)

	// Two readers share.
	h.load(0, 0, X, 0)
	h.pump()
	h.load(1, 0, X, 0)
	h.pump()

	// SM2 writes: both copies must be invalidated before the grant.
	st := h.storeWord(2, 0, X, 0, 2)
	h.pump()
	if !st.done {
		t.Fatal("store never granted")
	}
	if got := h.count(mem.BusInv); got < 2 {
		t.Fatalf("expected >= 2 invalidations, saw %d", got)
	}
	// The old sharers' next loads miss and see the new value.
	for sm := 0; sm < 2; sm++ {
		ld := h.load(sm, 0, X, 0)
		if ld.res == coherence.Hit {
			t.Fatalf("sm%d stale copy survived invalidation", sm)
		}
		h.pump()
		if ld.c.Data.Words[0] != 2 {
			t.Fatalf("sm%d read %d, want 2", sm, ld.c.Data.Words[0])
		}
	}
}

func TestOwnerDowngradeOnRead(t *testing.T) {
	h := newHarness(t, 2, L2Geometry{})
	X := mem.BlockAddr(7)

	// SM0 writes (M).
	h.storeWord(0, 0, X, 0, 42)
	h.pump()
	// SM1 reads: SM0 downgrades, data flows through the L2.
	ld := h.load(1, 0, X, 0)
	h.pump()
	if !ld.done || ld.c.Data.Words[0] != 42 {
		t.Fatalf("reader got %+v, want 42", ld.c)
	}
	// SM0 still has a readable S copy (no extra traffic on re-read).
	before := len(h.log)
	ld0 := h.load(0, 0, X, 0)
	if ld0.res != coherence.Hit || ld0.c.Data.Words[0] != 42 {
		t.Fatal("downgraded owner lost its S copy")
	}
	if len(h.log) != before {
		t.Fatal("S re-read generated traffic")
	}
}

func TestWritebackRace(t *testing.T) {
	// SM0 dirties a block, evicts it (WB in flight pattern), then SM1
	// writes: the directory must not lose SM0's data.
	h := newHarness(t, 2, L2Geometry{})
	X := mem.BlockAddr(3)
	h.storeWord(0, 0, X, 1, 0x11) // word 1 dirty at SM0
	h.pump()

	// Force SM0 to evict X by filling its 4-way set (same L1 set:
	// stride = l1 sets = 16).
	for i := 1; i <= 4; i++ {
		h.load(0, 0, X+mem.BlockAddr(16*i), 0)
		h.pump()
	}
	// SM1 writes word 2; after everything settles both words coexist.
	h.storeWord(1, 0, X, 2, 0x22)
	h.pump()
	ld1 := h.load(0, 1, X, 1)
	h.pump()
	ld2 := h.load(0, 1, X, 2)
	h.pump()
	if ld1.c.Data.Words[1] != 0x11 {
		t.Fatalf("evicted dirty word lost: %#x", ld1.c.Data.Words[1])
	}
	if ld2.c.Data.Words[2] != 0x22 {
		t.Fatalf("second writer's word lost: %#x", ld2.c.Data.Words[2])
	}
}

// TestInvalidationVsWritebackRace stages the FIFO-ordered race the
// fault-injection harness first exposed: the owner evicts a dirty
// block (BusWB in flight), the directory — still listing it as owner —
// targets it for another SM's GetM, and the eviction's writeback
// reaches the bank before the wb-in-flight-flagged invalidation ack
// (same L1->L2 FIFO pair, writeback sent first). The writeback itself
// must complete the invalidation target, or the transaction waits
// forever for data it already consumed.
func TestInvalidationVsWritebackRace(t *testing.T) {
	h := newHarness(t, 2, L2Geometry{})
	X := mem.BlockAddr(3)
	h.storeWord(0, 0, X, 1, 0x11)
	h.pump() // SM0 owns X in M, word 1 dirty

	// SM0 evicts X; hold the BusWB on the wire.
	h.l1s[0].evict(h.l1s[0].array.Lookup(X))
	if len(h.toL2) != 1 || h.toL2[0].Type != mem.BusWB {
		t.Fatalf("expected a held BusWB, have %v", h.toL2)
	}
	wb := h.toL2[0]
	h.toL2 = nil

	// SM1's store reaches the directory first: it still thinks SM0 owns
	// X, so it goes busy and targets SM0 with an invalidation.
	st := h.storeWord(1, 0, X, 2, 0x22)
	h.l2.Deliver(h.toL2[0])
	h.toL2 = nil
	h.now++
	h.l2.Tick(h.now)
	if len(h.toL1) != 1 || h.toL1[0].Type != mem.BusInv || h.toL1[0].Dst != 0 {
		t.Fatalf("expected BusInv to SM0, have %v", h.toL1)
	}

	// SM0 answers the invalidation with the wb-in-flight flag.
	h.l1s[0].Deliver(h.toL1[0])
	h.toL1 = nil
	if len(h.toL2) != 1 || h.toL2[0].Type != mem.BusInvAck || !h.toL2[0].Reset {
		t.Fatalf("expected a wb-in-flight InvAck, have %v", h.toL2)
	}
	ack := h.toL2[0]
	h.toL2 = nil

	// FIFO delivery: the writeback lands before the ack.
	h.l2.Deliver(wb)
	h.l2.Deliver(ack)
	h.pump() // deadlocks here ("did not quiesce") without the onWB fix

	if !st.done {
		t.Fatal("store never granted")
	}
	ld1 := h.load(1, 1, X, 1)
	if ld1.res != coherence.Hit || ld1.c.Data.Words[1] != 0x11 {
		t.Fatalf("writeback data lost: %+v", ld1.c)
	}
	ld2 := h.load(0, 1, X, 2)
	h.pump()
	if ld2.c.Data.Words[2] != 0x22 {
		t.Fatalf("second writer's word lost: %#x", ld2.c.Data.Words[2])
	}
}

func TestInclusionRecall(t *testing.T) {
	// A 1-set/1-way L2: installing a second block must recall the
	// first block's L1 copy.
	h := newHarness(t, 1, L2Geometry{Sets: 1, Ways: 1})
	A, B := mem.BlockAddr(1), mem.BlockAddr(2)
	h.load(0, 0, A, 0)
	h.pump()
	ldB := h.load(0, 1, B, 0)
	h.pump()
	if !ldB.done {
		t.Fatal("install after recall failed")
	}
	if h.l2.Stats().Recalls == 0 {
		t.Fatal("recall not counted")
	}
	// A's copy at the L1 must be gone (inclusion).
	ldA := h.load(0, 0, A, 0)
	if ldA.res == coherence.Hit {
		t.Fatal("L1 copy survived the recall: inclusion violated")
	}
	h.pump()
}

func TestAtomicRecallsAllCopies(t *testing.T) {
	h := newHarness(t, 3, L2Geometry{})
	X := mem.BlockAddr(9)
	h.store.WriteWord(X.WordAddr(0), 100)
	h.load(0, 0, X, 0)
	h.pump()
	h.load(1, 0, X, 0)
	h.pump()

	out := &captured{}
	data := &mem.Block{}
	data.Words[0] = 5
	h.l1s[2].Access(&coherence.Request{
		Block: X, Atomic: true, Atom: mem.AtomAdd, Mask: 1, Data: data, Warp: 0,
		Done: func(c coherence.Completion) { out.done = true; out.c = c },
	})
	h.pump()
	if !out.done || out.c.Data.Words[0] != 100 {
		t.Fatalf("atomic old value wrong: %+v", out.c)
	}
	// Old sharers must not see stale data.
	ld := h.load(0, 1, X, 0)
	if ld.res == coherence.Hit {
		t.Fatal("stale copy survived atomic recall")
	}
	h.pump()
	if ld.c.Data.Words[0] != 105 {
		t.Fatalf("post-atomic read %d, want 105", ld.c.Data.Words[0])
	}
}

func TestFlushWritesBackDirty(t *testing.T) {
	h := newHarness(t, 1, L2Geometry{})
	X := mem.BlockAddr(4)
	h.storeWord(0, 0, X, 0, 77)
	h.pump()
	h.l1s[0].Flush()
	h.pump()
	if data, ok := h.l2.Peek(X); !ok || data.Words[0] != 77 {
		t.Fatal("flush lost dirty data")
	}
	if h.l1s[0].Stats().Writebacks == 0 {
		t.Fatal("writeback not counted")
	}
}
