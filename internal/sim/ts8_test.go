package sim_test

import (
	"testing"

	"github.com/gtsc-sim/gtsc/internal/check"
	"github.com/gtsc-sim/gtsc/internal/gpu"
	"github.com/gtsc-sim/gtsc/internal/memsys"
	"github.com/gtsc-sim/gtsc/internal/sim"
	"github.com/gtsc-sim/gtsc/internal/workload"
)

// TestCoherenceWorkloadsAtTSBits8 runs the six coherence benchmarks
// (the paper's Table II set) with 8-bit G-TSC timestamp counters —
// narrow enough that the §V-D overflow reset fires mid-kernel — under
// an attached verifier. The recorded log's unrolled timestamps must
// stay coherent across every epoch crossing, and the set as a whole
// must actually cross epochs (a run that never overflowed would prove
// nothing about the reset paths).
func TestCoherenceWorkloadsAtTSBits8(t *testing.T) {
	var totalResets uint64
	for _, wl := range workload.CoherenceSet() {
		rec := check.NewRecorder()
		cfg := sim.DefaultConfig()
		cfg.Mem.Protocol = memsys.GTSC
		cfg.Mem.NumSMs = 4
		cfg.Mem.NumBanks = 4
		cfg.Mem.GTSC.TSBits = 8
		cfg.SM.Consistency = gpu.RC
		cfg.Observer = rec
		s := sim.New(cfg)
		if _, err := wl.Build(1).RunOn(s); err != nil {
			t.Fatalf("%s at TSBits=8: %v", wl.Name, err)
		}
		if vio := check.CheckTimestampOrder(rec.Ops(), 3); len(vio) > 0 {
			t.Fatalf("%s at TSBits=8: ordering violated across overflow reset: %v",
				wl.Name, vio[0].Error())
		}
		r := s.Sys.Resets.Resets()
		t.Logf("%s: %d ops verified, %d §V-D reset(s)", wl.Name, rec.Len(), r)
		totalResets += r
	}
	if totalResets == 0 {
		t.Fatal("no workload triggered a §V-D overflow reset; TSBits=8 should make them routine")
	}
}
