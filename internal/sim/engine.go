package sim

import (
	"runtime"

	"github.com/gtsc-sim/gtsc/internal/gpu"
	"github.com/gtsc-sim/gtsc/internal/memsys"
)

// EngineStats counts what the cycle ENGINE did, as opposed to what the
// simulated machine did: how many cycles were actually executed vs
// fast-forwarded by quiescence skipping, and how many ran through the
// parallel SM pool. These are scheduling observability counters — they
// deliberately live outside stats.Run, whose exact rendering is pinned
// by the 84 golden fingerprints, and outside the checkpoint digests,
// because the same simulation reaches the same machine state with any
// engine configuration.
type EngineStats struct {
	// Workers is the SM tick parallelism of the most recent run phase
	// (1 = serial loop).
	Workers int

	// RunCycles / DrainCycles count cycles the engine executed with a
	// real tick; RunSkipped / DrainSkipped count cycles bulk-applied by
	// quiescence skipping. Executed + skipped = simulated cycles.
	RunCycles    uint64
	RunSkipped   uint64
	DrainCycles  uint64
	DrainSkipped uint64

	// SkipWindows counts fast-forward events (each covers >= 1 cycle).
	SkipWindows uint64

	// ParallelCycles counts executed run-phase cycles whose SM compute
	// phase ran on the worker pool.
	ParallelCycles uint64

	// SMTickCycles counts executed run-phase cycles on which at least
	// one SM was actually ticked (the event engine skips cycles whose
	// SMs all sleep) — the denominator of ParallelTickEfficiency: only
	// cycles with SM work could have used the pool.
	SMTickCycles uint64

	// Relaxed counts what the bounded-slack engine did; all zero unless
	// a phase ran relaxed (Config.SlackCycles > 0 and preconditions
	// held).
	Relaxed RelaxedStats

	// EventCycles counts executed cycles dispatched by the
	// scheduled-wake event engine (a subset of RunCycles+DrainCycles;
	// zero means every phase ran on the legacy loop).
	EventCycles uint64
	// SMTicks counts individual SM tick dispatches under the event
	// engine. Sleeping SMs are not ticked, so on stall-heavy workloads
	// this is far below EventCycles * numSMs.
	SMTicks uint64
	// SMSleepCycles counts SM-cycles bulk-applied lazily while an SM
	// slept through executed machine cycles (the per-SM analogue of
	// RunSkipped, which only counts whole-machine skips).
	SMSleepCycles uint64
	// SMWakes counts sleep -> awake transitions (including the forced
	// flushes at phase boundaries and pause points).
	SMWakes uint64

	// Comp breaks the hierarchy side of executed event cycles down per
	// component class under per-component wake dispatch: for the NoC,
	// DRAM partitions, L2 banks, and L1s, how many per-cycle Ticks were
	// dispatched vs slept through (the hierarchy analogue of
	// SMTicks/SMSleepCycles). All zero when the dispatch mode is off
	// (legacy engine, DisableComponentWakes, fault injection) — the
	// hierarchy is then ticked wholesale and only EventCycles counts it.
	Comp memsys.DispatchStats
}

// RelaxedStats counts the relaxed-synchronization engine's work (see
// Config.SlackCycles and sim/relaxed.go).
type RelaxedStats struct {
	// SlackCycles is the slack bound of the most recent relaxed phase.
	SlackCycles uint64
	// Epochs counts epoch barriers executed (grid barriers and forced
	// pause barriers alike).
	Epochs uint64
	// SMDomainCycles / SMDomainSkipped count SM-domain cycles executed
	// vs bulk-applied by intra-epoch quiescence skipping, summed over
	// all SM domains. MemDomainCycles / MemDomainSkipped are the same
	// for the L2-bank+DRAM domains.
	SMDomainCycles   uint64
	SMDomainSkipped  uint64
	MemDomainCycles  uint64
	MemDomainSkipped uint64
	// ExchangedMsgs counts NoC injections replayed at epoch barriers;
	// HeldMsgs counts the subset that met a full port on their tagged
	// cycle and were deferred (the one relaxed-mode timing perturbation
	// beyond barrier-crossing delivery).
	ExchangedMsgs uint64
	HeldMsgs      uint64
	// DomainEpochs[i] counts epochs in which domain i executed at least
	// one real cycle (domains 0..numSMs-1 are SM domains; the final
	// entry is the serialized mem-domain chain).
	DomainEpochs []uint64
}

// Dispatches is the total number of event dispatches the event engine
// performed: one hierarchy dispatch per executed event cycle plus one
// per SM tick.
func (e *EngineStats) Dispatches() uint64 { return e.EventCycles + e.SMTicks }

// Mode names the engine that actually dispatched cycles — "relaxed"
// if any phase ran bounded-slack epochs, "event" if any phase ran on
// the scheduled-wake agenda, "legacy" otherwise. This is what the
// CLIs' `engine:` line reports: the EFFECTIVE engine after
// auto-selection and fallbacks, not the requested one.
func (e *EngineStats) Mode() string {
	if e.Relaxed.Epochs > 0 {
		return "relaxed"
	}
	if e.EventCycles > 0 {
		return "event"
	}
	return "legacy"
}

// MeanSkipWidth is the average number of cycles a machine-level
// fast-forward jumped over (0 when no window was skipped).
func (e *EngineStats) MeanSkipWidth() float64 {
	if e.SkipWindows == 0 {
		return 0
	}
	return float64(e.SkippedCycles()) / float64(e.SkipWindows)
}

// SkippedCycles is the total number of simulated cycles that were
// never executed: the machine's clock jumped over them because every
// component was provably quiescent.
func (e *EngineStats) SkippedCycles() uint64 { return e.RunSkipped + e.DrainSkipped }

// ParallelTickEfficiency is the compute-phase pool utilization: of the
// executed run-phase cycles that had SM work to do (SMTickCycles),
// the fraction whose SM compute phase actually ran on the worker pool.
// 0 on the serial loop (effective workers == 1); 1.0 when every
// SM-work cycle used the pool. Cycles whose SMs all slept are excluded
// from the denominator — they have no compute phase to parallelize.
func (e *EngineStats) ParallelTickEfficiency() float64 {
	if e.SMTickCycles == 0 {
		return 0
	}
	return float64(e.ParallelCycles) / float64(e.SMTickCycles)
}

// Engine returns the engine's scheduling counters, accumulated across
// every kernel this simulator has run.
func (s *Simulator) Engine() *EngineStats { return &s.eng }

// effectiveWorkers resolves Config.SimWorkers to the parallelism the
// run phase actually uses. The request is clamped to GOMAXPROCS —
// workers beyond the schedulable CPUs only add barrier spin, and on a
// single-CPU host the barrier pool loses outright (BENCH_sim.json:
// 0.51x at simworkers=4 on 1 CPU), so GOMAXPROCS==1 falls back to the
// serial loop — and to one worker per SM, beyond which extra workers
// can never have work. The resolved value lands in EngineStats.Workers,
// which is what the CLIs report on their `engine:` line; results are
// bit-identical at any setting, so the clamp is pure scheduling.
func (s *Simulator) effectiveWorkers() int {
	w := s.Cfg.SimWorkers
	if w < 1 {
		return 1
	}
	if mp := runtime.GOMAXPROCS(0); w > mp {
		w = mp
	}
	if n := len(s.SMs); w > n {
		w = n
	}
	return w
}

// trySkipRun attempts one quiescence fast-forward inside the run
// phase. It succeeds only when the whole machine is provably inert:
// the hierarchy's next event lies beyond the next cycle AND every SM
// probes as a pure stall. It then advances the clock to j — capped at
// the event horizon, the next watchdog/ctx-poll sampling boundary
// (multiples of 64; ctx polls at multiples of 1024 are a subset), the
// MaxCycles budget, and the pause point — bulk-applying the per-cycle
// stall-counter deltas so the machine state at j is bit-identical to
// having ticked every cycle. The single Sys.Tick(j) re-synchronizes
// component-local clocks; it is provably a no-op because j is before
// the event horizon.
func (s *Simulator) trySkipRun(st *runState, stopAt uint64) bool {
	horizon := s.Sys.NextEvent(s.now)
	if horizon <= s.now+1 {
		return false
	}
	if s.probes == nil {
		s.probes = make([]gpu.StallProbe, len(s.SMs))
	}
	for i, sm := range s.SMs {
		p, ok := sm.Quiesce()
		if !ok {
			return false
		}
		s.probes[i] = p
		if p.Wake < horizon {
			horizon = p.Wake
		}
	}
	if horizon <= s.now+1 {
		return false
	}
	j := min(horizon-1, (s.now|63)+1, st.start+s.Cfg.MaxCycles)
	if stopAt != 0 {
		j = min(j, stopAt)
	}
	if j <= s.now {
		return false
	}
	k := j - s.now
	s.now = j
	s.Sys.Tick(j)
	for i, sm := range s.SMs {
		sm.SkipCycles(j, k, s.probes[i])
	}
	s.eng.RunSkipped += k
	s.eng.SkipWindows++
	return true
}

// trySkipDrain is trySkipRun for the drain phase: SMs are not ticked
// there, so only the hierarchy's event horizon matters, and the budget
// is the drain guard counter rather than cycles since phase start.
func (s *Simulator) trySkipDrain(st *runState, stopAt uint64) bool {
	horizon := s.Sys.NextEvent(s.now)
	if horizon <= s.now+1 {
		return false
	}
	j := min(horizon-1, (s.now|63)+1, s.now+(s.Cfg.MaxCycles-st.guard))
	if stopAt != 0 {
		j = min(j, stopAt)
	}
	if j <= s.now {
		return false
	}
	k := j - s.now
	s.now = j
	s.Sys.Tick(j)
	st.guard += k - 1 // the drain loop's post-statement adds the last one
	s.eng.DrainSkipped += k
	s.eng.SkipWindows++
	return true
}
