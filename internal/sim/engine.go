package sim

import (
	"runtime"

	"github.com/gtsc-sim/gtsc/internal/gpu"
	"github.com/gtsc-sim/gtsc/internal/memsys"
)

// EngineStats counts what the cycle ENGINE did, as opposed to what the
// simulated machine did: how many cycles were actually executed vs
// fast-forwarded by quiescence skipping, and how many ran through the
// parallel SM pool. These are scheduling observability counters — they
// deliberately live outside stats.Run, whose exact rendering is pinned
// by the 84 golden fingerprints, and outside the checkpoint digests,
// because the same simulation reaches the same machine state with any
// engine configuration.
type EngineStats struct {
	// Workers is the SM tick parallelism of the most recent run phase
	// (1 = serial loop).
	Workers int

	// RunCycles / DrainCycles count cycles the engine executed with a
	// real tick; RunSkipped / DrainSkipped count cycles bulk-applied by
	// quiescence skipping. Executed + skipped = simulated cycles.
	RunCycles    uint64
	RunSkipped   uint64
	DrainCycles  uint64
	DrainSkipped uint64

	// SkipWindows counts fast-forward events (each covers >= 1 cycle).
	SkipWindows uint64

	// ParallelCycles counts executed run-phase cycles whose SM compute
	// phase ran on the worker pool.
	ParallelCycles uint64

	// EventCycles counts executed cycles dispatched by the
	// scheduled-wake event engine (a subset of RunCycles+DrainCycles;
	// zero means every phase ran on the legacy loop).
	EventCycles uint64
	// SMTicks counts individual SM tick dispatches under the event
	// engine. Sleeping SMs are not ticked, so on stall-heavy workloads
	// this is far below EventCycles * numSMs.
	SMTicks uint64
	// SMSleepCycles counts SM-cycles bulk-applied lazily while an SM
	// slept through executed machine cycles (the per-SM analogue of
	// RunSkipped, which only counts whole-machine skips).
	SMSleepCycles uint64
	// SMWakes counts sleep -> awake transitions (including the forced
	// flushes at phase boundaries and pause points).
	SMWakes uint64

	// Comp breaks the hierarchy side of executed event cycles down per
	// component class under per-component wake dispatch: for the NoC,
	// DRAM partitions, L2 banks, and L1s, how many per-cycle Ticks were
	// dispatched vs slept through (the hierarchy analogue of
	// SMTicks/SMSleepCycles). All zero when the dispatch mode is off
	// (legacy engine, DisableComponentWakes, fault injection) — the
	// hierarchy is then ticked wholesale and only EventCycles counts it.
	Comp memsys.DispatchStats
}

// Dispatches is the total number of event dispatches the event engine
// performed: one hierarchy dispatch per executed event cycle plus one
// per SM tick.
func (e *EngineStats) Dispatches() uint64 { return e.EventCycles + e.SMTicks }

// Mode names the engine that actually dispatched cycles — "event" if
// any phase ran on the scheduled-wake agenda, "legacy" otherwise. This
// is what the CLIs' `engine:` line reports: the EFFECTIVE engine after
// auto-selection and fallbacks, not the requested one.
func (e *EngineStats) Mode() string {
	if e.EventCycles > 0 {
		return "event"
	}
	return "legacy"
}

// MeanSkipWidth is the average number of cycles a machine-level
// fast-forward jumped over (0 when no window was skipped).
func (e *EngineStats) MeanSkipWidth() float64 {
	if e.SkipWindows == 0 {
		return 0
	}
	return float64(e.SkippedCycles()) / float64(e.SkipWindows)
}

// SkippedCycles is the total number of simulated cycles that were
// never executed: the machine's clock jumped over them because every
// component was provably quiescent.
func (e *EngineStats) SkippedCycles() uint64 { return e.RunSkipped + e.DrainSkipped }

// ParallelTickEfficiency is the fraction of executed run-phase cycles
// that ticked SMs on the worker pool (0 on the serial loop). Low
// values with SimWorkers > 1 mean the run kept falling back to the
// serial path (observer attached, fault injection enabled).
func (e *EngineStats) ParallelTickEfficiency() float64 {
	if e.RunCycles == 0 {
		return 0
	}
	return float64(e.ParallelCycles) / float64(e.RunCycles)
}

// Engine returns the engine's scheduling counters, accumulated across
// every kernel this simulator has run.
func (s *Simulator) Engine() *EngineStats { return &s.eng }

// effectiveWorkers resolves Config.SimWorkers to the parallelism the
// run phase actually uses. The request is clamped to GOMAXPROCS —
// workers beyond the schedulable CPUs only add barrier spin, and on a
// single-CPU host the barrier pool loses outright (BENCH_sim.json:
// 0.51x at simworkers=4 on 1 CPU), so GOMAXPROCS==1 falls back to the
// serial loop — and to one worker per SM, beyond which extra workers
// can never have work. The resolved value lands in EngineStats.Workers,
// which is what the CLIs report on their `engine:` line; results are
// bit-identical at any setting, so the clamp is pure scheduling.
func (s *Simulator) effectiveWorkers() int {
	w := s.Cfg.SimWorkers
	if w < 1 {
		return 1
	}
	if mp := runtime.GOMAXPROCS(0); w > mp {
		w = mp
	}
	if n := len(s.SMs); w > n {
		w = n
	}
	return w
}

// trySkipRun attempts one quiescence fast-forward inside the run
// phase. It succeeds only when the whole machine is provably inert:
// the hierarchy's next event lies beyond the next cycle AND every SM
// probes as a pure stall. It then advances the clock to j — capped at
// the event horizon, the next watchdog/ctx-poll sampling boundary
// (multiples of 64; ctx polls at multiples of 1024 are a subset), the
// MaxCycles budget, and the pause point — bulk-applying the per-cycle
// stall-counter deltas so the machine state at j is bit-identical to
// having ticked every cycle. The single Sys.Tick(j) re-synchronizes
// component-local clocks; it is provably a no-op because j is before
// the event horizon.
func (s *Simulator) trySkipRun(st *runState, stopAt uint64) bool {
	horizon := s.Sys.NextEvent(s.now)
	if horizon <= s.now+1 {
		return false
	}
	if s.probes == nil {
		s.probes = make([]gpu.StallProbe, len(s.SMs))
	}
	for i, sm := range s.SMs {
		p, ok := sm.Quiesce()
		if !ok {
			return false
		}
		s.probes[i] = p
		if p.Wake < horizon {
			horizon = p.Wake
		}
	}
	if horizon <= s.now+1 {
		return false
	}
	j := min(horizon-1, (s.now|63)+1, st.start+s.Cfg.MaxCycles)
	if stopAt != 0 {
		j = min(j, stopAt)
	}
	if j <= s.now {
		return false
	}
	k := j - s.now
	s.now = j
	s.Sys.Tick(j)
	for i, sm := range s.SMs {
		sm.SkipCycles(j, k, s.probes[i])
	}
	s.eng.RunSkipped += k
	s.eng.SkipWindows++
	return true
}

// trySkipDrain is trySkipRun for the drain phase: SMs are not ticked
// there, so only the hierarchy's event horizon matters, and the budget
// is the drain guard counter rather than cycles since phase start.
func (s *Simulator) trySkipDrain(st *runState, stopAt uint64) bool {
	horizon := s.Sys.NextEvent(s.now)
	if horizon <= s.now+1 {
		return false
	}
	j := min(horizon-1, (s.now|63)+1, s.now+(s.Cfg.MaxCycles-st.guard))
	if stopAt != 0 {
		j = min(j, stopAt)
	}
	if j <= s.now {
		return false
	}
	k := j - s.now
	s.now = j
	s.Sys.Tick(j)
	st.guard += k - 1 // the drain loop's post-statement adds the last one
	s.eng.DrainSkipped += k
	s.eng.SkipWindows++
	return true
}
