package sim

import (
	"errors"
	"testing"

	"github.com/gtsc-sim/gtsc/internal/diag"
	"github.com/gtsc-sim/gtsc/internal/fault"
	"github.com/gtsc-sim/gtsc/internal/gpu"
	"github.com/gtsc-sim/gtsc/internal/memsys"
)

// TestBudgetSemanticsUnified pins the cycle-budget contract shared by
// the run and drain phases: a phase executes at most MaxCycles cycles,
// and the budget check fires before the cycle that would exceed it.
// The run and drain loops historically used two different comparisons
// (`s.now-start > MaxCycles` vs `guard > MaxCycles`) which both let a
// phase run one cycle past the budget; both now route through
// budgetExhausted with explicit >= semantics.
func TestBudgetSemanticsUnified(t *testing.T) {
	s := New(DefaultConfig())
	max := s.Cfg.MaxCycles
	for _, tc := range []struct {
		elapsed uint64
		want    bool
	}{
		{0, false},
		{max - 1, false},
		{max, true},
		{max + 1, true},
	} {
		if got := s.budgetExhausted(tc.elapsed); got != tc.want {
			t.Errorf("budgetExhausted(%d) = %v, want %v (MaxCycles %d)", tc.elapsed, got, tc.want, max)
		}
	}
}

// TestRunPhaseBudgetAbortsExactlyAtMaxCycles wedges the machine (every
// NoC injection rejected), disables the watchdog so only the hard
// budget applies, and asserts the run phase aborts after executing
// exactly MaxCycles cycles — not MaxCycles+1.
func TestRunPhaseBudgetAbortsExactlyAtMaxCycles(t *testing.T) {
	cfg := smallConfig(memsys.GTSC, gpu.RC)
	cfg.Mem.Fault = fault.Config{Seed: 7, RejectProb: 1.0}
	cfg.DisableWatchdog = true
	cfg.MaxCycles = 1_000
	_, err := New(cfg).Run(writeReadKernel(0x50000))
	if err == nil {
		t.Fatal("wedged run completed")
	}
	var de *diag.DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("want DeadlockError, got %T: %v", err, err)
	}
	if de.Phase != "run" || de.Reason != "max-cycles" {
		t.Fatalf("phase/reason = %q/%q, want run/max-cycles", de.Phase, de.Reason)
	}
	if de.Cycle != cfg.MaxCycles {
		t.Fatalf("aborted at cycle %d, want exactly MaxCycles = %d", de.Cycle, cfg.MaxCycles)
	}
}
