// The scheduled-wake (event-driven) cycle engine.
//
// The legacy loop asks every component every cycle whether ticking it
// would matter (trySkipRun's NextEvent/Quiesce probes) and only skips
// when the WHOLE machine is simultaneously inert. This engine inverts
// the contract: components register their next wake cycle on an agenda
// (internal/sched) whenever their state changes, and the loop advances
// time straight to the agenda horizon. Two independent levers fall out:
//
//   - machine-level skips no longer pay an O(components) probe per
//     cycle — the horizon is an O(1) agenda query off cached wakes;
//   - SMs sleep INDIVIDUALLY: a stall-quiesced SM is simply not ticked
//     while the rest of the machine executes, and its provably
//     identical stall cycles are bulk-applied on wake-up
//     (gpu.SkipCycles). The legacy loop could only skip an SM's stall
//     cycles when every other component was idle too;
//   - hierarchy components sleep individually too: on each executed
//     cycle, memsys.TickDue dispatches Tick only to the L1s, L2 banks,
//     NoC, and DRAM partitions whose agenda wake is due, instead of
//     ticking the machine wholesale (Config.DisableComponentWakes
//     restores the wholesale behaviour for comparison).
//
// Bit-identity argument (DESIGN.md §7 carries the full version): the
// engine executes exactly the cycles the legacy loop executes; on each
// of them it ticks the due hierarchy components in the wholesale
// tick's canonical order while the skipped ones were provably no-ops
// (quiescent controller, pre-deadline DRAM, pre-wake NoC — the
// contracts in memsys/wakes.go); and it ticks every SM either really
// (awake) or as a bulk-applied pure stall whose per-cycle effects the
// Quiesce probe proved constant. All sampling boundaries (watchdog,
// ctx poll, checkpoint pauses, the (now|63)+1 cap) are preserved, so
// every check fires at the same cycle with the same state, and no
// lazily-slept state ever crosses a pause point: every exit path
// flushes sleeping SMs first, which keeps checkpoints engine-agnostic.
package sim

import (
	"context"

	"github.com/gtsc-sim/gtsc/internal/gpu"
	"github.com/gtsc-sim/gtsc/internal/sched"
)

// eventState is the engine's per-simulator bookkeeping: one agenda slot
// and one sleep record per SM. It is lazily allocated on the first
// event-engine phase and reused across kernels.
type eventState struct {
	smBase int // first SM slot in the shared agenda (SM i = smBase+i)

	asleep []bool           // SM is sleeping (not ticked; stats applied lazily)
	probes []gpu.StallProbe // the probe that justified the sleep
	comps  []uint64         // sm.Completions() snapshot at sleep time
	clocks []uint64         // last cycle each SM's stats actually cover
	act    []uint64         // scratch: ActiveCycles before this cycle's tick
	due    []int            // scratch: awake SM indices this cycle

	// compWakes mirrors Config.DisableComponentWakes for the running
	// phase: true means executed cycles dispatch the hierarchy through
	// TickDue/RefreshDue (per-component sleep) instead of the wholesale
	// Tick/RefreshWakes pair.
	compWakes bool
}

// useEventEngine reports whether the next phase runs on the
// scheduled-wake engine. Fault-injected runs fall back to the legacy
// loop for the same reason they disable cycle skipping: delay shims
// hold messages on schedules the wake registrations do not model.
func (s *Simulator) useEventEngine() bool {
	if s.Cfg.Engine == EngineLegacy || s.Cfg.DisableCycleSkip {
		return false
	}
	return s.Sys.SkipSafe()
}

func (s *Simulator) ensureEventState() *eventState {
	if s.ev != nil {
		return s.ev
	}
	n := len(s.SMs)
	ev := &eventState{
		asleep: make([]bool, n),
		probes: make([]gpu.StallProbe, n),
		comps:  make([]uint64, n),
		clocks: make([]uint64, n),
		act:    make([]uint64, n),
		due:    make([]int, 0, n),
	}
	ev.smBase = s.Sys.AddSlot()
	for i := 1; i < n; i++ {
		s.Sys.AddSlot()
	}
	s.ev = ev
	return ev
}

// flushSMs applies every sleeping SM's deferred stall cycles up
// through s.now and marks it awake (agenda slot Hot). It is called at
// every point control can leave the event loop — pause, cancellation,
// completion, error, deadlock — so that no lazily-deferred state is
// observable from outside: stats, dumps, and checkpoint digests are
// identical to the legacy loop's at the same cycle.
func (s *Simulator) flushSMs() {
	ev := s.ev
	if ev == nil {
		return
	}
	for i, sm := range s.SMs {
		if !ev.asleep[i] {
			continue
		}
		if k := s.now - ev.clocks[i]; k > 0 {
			sm.SkipCycles(s.now, k, ev.probes[i])
			s.eng.SMSleepCycles += k
		}
		ev.asleep[i] = false
		ev.clocks[i] = s.now
		s.Sys.Wakes.Schedule(ev.smBase+i, sched.Hot)
		s.eng.SMWakes++
	}
}

// runPhaseEvent is the event-driven main cycle loop. Per iteration it
// either executes one cycle (hierarchy tick + awake-SM ticks + wake
// refresh) or jumps the clock to just before the agenda horizon,
// capped — exactly like trySkipRun — at the watchdog/ctx-poll sampling
// boundary (now|63)+1, the MaxCycles budget, and the pause point, so
// every check below fires at the same cycles as under the legacy loop.
func (s *Simulator) runPhaseEvent(ctx context.Context, stopAt uint64) (bool, error) {
	st := s.cur
	ev := s.ensureEventState()
	workers := s.effectiveWorkers()
	par := workers > 1
	var pool *tickPool
	if par {
		pool = newTickPool(s.SMs, workers)
		defer pool.shutdown()
		for _, sm := range s.SMs {
			sm.SetDeferFills(true)
		}
		defer func() {
			for _, sm := range s.SMs {
				sm.SetDeferFills(false)
			}
		}()
		s.eng.Workers = workers
	} else {
		s.eng.Workers = 1
	}

	// Phase entry: everything awake (slots Hot) with stats current
	// through s.now, wakes re-registered from live component state.
	// This also erases any slot state a previous phase (or the other
	// engine) left behind, which is what makes engines freely mixable
	// across pause/resume. The full RefreshWakes scan (not the
	// incremental RefreshDue) is required here: between-phase work —
	// the kernel-boundary L1 flush, a checkpoint restore, cycles run on
	// the other engine — mutates components outside any dispatch.
	s.flushSMs()
	ev.compWakes = !s.Cfg.DisableComponentWakes
	s.Sys.SetComponentWakes(ev.compWakes)
	for i := range s.SMs {
		ev.clocks[i] = s.now
		s.Sys.Wakes.Schedule(ev.smBase+i, sched.Hot)
	}
	s.Sys.RefreshWakes(s.now)
	pl := s.newPhaseLabels()
	defer pl.clear()

	for {
		if stopAt != 0 && s.now >= stopAt {
			s.flushSMs()
			return true, nil
		}
		if s.now&ctxPollMask == 0 && ctx.Err() != nil {
			s.flushSMs()
			return true, s.canceled(ctx, "run")
		}
		if s.budgetExhausted(s.now - st.start) {
			s.flushSMs()
			return false, s.deadlock(st.kernel.Name, "run", "max-cycles", s.now-st.lastProgress)
		}
		pl.set(pl.agenda)
		if !s.trySkipEvent(st.start+s.Cfg.MaxCycles, stopAt, true) {
			s.now++
			pl.set(pl.hierarchy)
			if ev.compWakes {
				s.Sys.TickDue(s.now, &s.eng.Comp)
			} else {
				s.Sys.Tick(s.now)
			}
			pl.set(pl.smTick)
			s.tickSMsEvent(pool, par)
			pl.set(pl.agenda)
			if ev.compWakes {
				s.Sys.RefreshDue(s.now, ev.due)
			} else {
				s.Sys.RefreshWakes(s.now)
			}
			s.eng.RunCycles++
			s.eng.EventCycles++
		}
		if err := s.Sys.Err(); err != nil {
			s.flushSMs()
			return false, s.attachDump(err)
		}
		if s.done() {
			s.flushSMs()
			return false, nil
		}
		if !s.Cfg.DisableWatchdog && s.now&63 == 0 {
			if sig := s.progressSig(); sig != st.lastSig {
				st.lastSig = sig
				st.lastProgress = s.now
			} else if s.now-st.lastProgress >= s.Cfg.WatchdogWindow {
				s.flushSMs()
				return false, s.deadlock(st.kernel.Name, "run", "no-forward-progress", s.now-st.lastProgress)
			}
		}
	}
}

// trySkipEvent fast-forwards to just before the agenda horizon. The
// horizon is now+1 whenever any slot is Hot (an awake SM, a
// non-quiescent controller) — identical to the legacy condition "some
// component would do work next cycle" — so a jump here proves the
// machine fully inert for the window, and the single Sys.Tick(j)
// resync is a no-op exactly as in trySkipRun. Under per-component
// wakes even that wholesale no-op tick is elided: every slot's wake
// lies beyond j, so the only state a Tick(j) would touch is the NoC's
// local clock, which SyncClocks advances directly. Sleeping SMs' stall
// stats stay deferred: the skipped window lies inside their sleep.
func (s *Simulator) trySkipEvent(budgetCap, stopAt uint64, run bool) bool {
	horizon := s.Sys.Wakes.Horizon(s.now)
	if horizon <= s.now+1 {
		return false
	}
	j := min(horizon-1, (s.now|63)+1, budgetCap)
	if stopAt != 0 {
		j = min(j, stopAt)
	}
	if j <= s.now {
		return false
	}
	k := j - s.now
	s.now = j
	if s.ev.compWakes {
		s.Sys.SyncClocks(j)
	} else {
		s.Sys.Tick(j)
	}
	if run {
		s.eng.RunSkipped += k
	} else {
		s.eng.DrainSkipped += k
		s.cur.guard += k - 1 // the drain loop's post-statement adds the last one
	}
	s.eng.SkipWindows++
	return true
}

// tickSMsEvent runs the SM side of one executed cycle. Sleeping SMs
// wake when their probe's wake cycle arrives or a memory completion
// landed on them (the hierarchy tick for this cycle already ran, so
// this-cycle deliveries are visible); waking bulk-applies the deferred
// stall cycles before the real tick. Awake SMs tick in canonical index
// order — serially, or via the pool's due-list with the same staged
// commit as the legacy parallel path. After ticking, any SM that
// issued nothing and probes quiescent goes to sleep, registering its
// wake on the agenda.
func (s *Simulator) tickSMsEvent(pool *tickPool, par bool) {
	ev := s.ev
	now := s.now
	due := ev.due[:0]
	for i, sm := range s.SMs {
		if ev.asleep[i] {
			if sm.Completions() == ev.comps[i] && now < ev.probes[i].Wake {
				continue // provably still the same pure stall
			}
			if k := now - 1 - ev.clocks[i]; k > 0 {
				sm.SkipCycles(now-1, k, ev.probes[i])
				s.eng.SMSleepCycles += k
			}
			ev.asleep[i] = false
			s.Sys.Wakes.Schedule(ev.smBase+i, sched.Hot)
			s.eng.SMWakes++
		}
		ev.act[i] = sm.Stats().ActiveCycles
		due = append(due, i)
	}
	ev.due = due
	if len(due) > 0 {
		s.eng.SMTickCycles++
		if par {
			s.Sys.BeginSMStage()
			pool.tick(now, due)
			s.Sys.CommitSMStage()
			for _, sm := range s.SMs {
				sm.CommitFill()
			}
			s.eng.ParallelCycles++
		} else {
			for _, i := range due {
				s.SMs[i].Tick(now)
			}
		}
		s.eng.SMTicks += uint64(len(due))
	}
	// Stall-onset probe, after fills committed so liveWarps is final.
	// A zero-issue tick means the scheduler scanned every non-skipped
	// warp without issuing, so the probe's view is exactly this tick's.
	for _, i := range due {
		sm := s.SMs[i]
		ev.clocks[i] = now
		if sm.Stats().ActiveCycles != ev.act[i] {
			continue
		}
		if p, ok := sm.Quiesce(); ok {
			ev.asleep[i] = true
			ev.probes[i] = p
			ev.comps[i] = sm.Completions()
			// p.Wake is NeverWake (== sched.Never) or a cycle > now;
			// either way it is a valid agenda registration.
			s.Sys.Wakes.Schedule(ev.smBase+i, p.Wake)
		}
	}
}

// drainPhaseEvent is the event-driven kernel-boundary drain. SMs are
// never ticked during drain (their warps have all retired), so their
// slots are parked at Never and only the hierarchy drives the horizon.
func (s *Simulator) drainPhaseEvent(ctx context.Context, stopAt uint64) (bool, error) {
	st := s.cur
	ev := s.ensureEventState()
	s.flushSMs()
	ev.compWakes = !s.Cfg.DisableComponentWakes
	s.Sys.SetComponentWakes(ev.compWakes)
	for i := range s.SMs {
		s.Sys.Wakes.Schedule(ev.smBase+i, sched.Never)
	}
	s.Sys.RefreshWakes(s.now)
	pl := s.newPhaseLabels()
	defer pl.clear()
	for ; !s.Sys.Drained(); st.guard++ {
		if stopAt != 0 && s.now >= stopAt {
			return true, nil
		}
		if s.now&ctxPollMask == 0 && ctx.Err() != nil {
			return true, s.canceled(ctx, "drain")
		}
		if s.budgetExhausted(st.guard) {
			return false, s.deadlock(st.kernel.Name, "drain", "max-cycles", s.now-st.lastProgress)
		}
		pl.set(pl.agenda)
		if !s.trySkipEvent(s.now+(s.Cfg.MaxCycles-st.guard), stopAt, false) {
			s.now++
			pl.set(pl.hierarchy)
			if ev.compWakes {
				s.Sys.TickDue(s.now, &s.eng.Comp)
			} else {
				s.Sys.Tick(s.now)
			}
			pl.set(pl.agenda)
			if ev.compWakes {
				s.Sys.RefreshDue(s.now, nil)
			} else {
				s.Sys.RefreshWakes(s.now)
			}
			s.eng.DrainCycles++
			s.eng.EventCycles++
		}
		if err := s.Sys.Err(); err != nil {
			return false, s.attachDump(err)
		}
		if !s.Cfg.DisableWatchdog && s.now&63 == 0 {
			if sig := s.progressSig(); sig != st.lastSig {
				st.lastSig = sig
				st.lastProgress = s.now
			} else if s.now-st.lastProgress >= s.Cfg.WatchdogWindow {
				return false, s.deadlock(st.kernel.Name, "drain", "no-forward-progress", s.now-st.lastProgress)
			}
		}
	}
	return false, nil
}
