package sim

import (
	"errors"
	"strings"
	"testing"

	"github.com/gtsc-sim/gtsc/internal/diag"
	"github.com/gtsc-sim/gtsc/internal/dram"
	"github.com/gtsc-sim/gtsc/internal/gpu"
	"github.com/gtsc-sim/gtsc/internal/mem"
	"github.com/gtsc-sim/gtsc/internal/memsys"
	"github.com/gtsc-sim/gtsc/internal/noc"
)

// TestMaxCyclesGuard: a kernel that cannot finish reports a structured
// deadlock error instead of hanging.
func TestMaxCyclesGuard(t *testing.T) {
	cfg := smallConfig(memsys.GTSC, gpu.RC)
	cfg.MaxCycles = 200
	k := &gpu.Kernel{
		Name: "forever", CTAs: 1, WarpsPerCTA: 1, Regs: 1,
		ProgramFor: func(w *gpu.Warp) gpu.Program {
			return gpu.FuncProgram(func(w *gpu.Warp) (*gpu.Instr, bool) {
				return gpu.Comp(1), true // infinite compute
			})
		},
	}
	_, err := New(cfg).Run(k)
	var de *diag.DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("expected DeadlockError, got %v", err)
	}
	if de.Reason != "max-cycles" || de.Kernel != "forever" {
		t.Fatalf("wrong deadlock detail: %+v", de)
	}
	if de.Dump == nil || !strings.Contains(de.Dump.String(), "machine state") {
		t.Fatal("deadlock error must carry a state dump")
	}
}

// TestAtomicsThroughFullStack: a cross-SM atomic counter reaches the
// exact total through NoC, L2 and DRAM on every protocol and both
// relevant consistency models.
func TestAtomicsThroughFullStack(t *testing.T) {
	const counter = mem.Addr(0x9000)
	k := &gpu.Kernel{
		Name: "count", CTAs: 4, WarpsPerCTA: 2, Regs: 2,
		ProgramFor: func(w *gpu.Warp) gpu.Program {
			return &gpu.LoopProgram{
				Iters: 3,
				Body: func(int) []*gpu.Instr {
					return []*gpu.Instr{
						gpu.Atomic(mem.AtomAdd, 0, func(t *gpu.Thread) (mem.Addr, bool) {
							return counter, true
						}, func(t *gpu.Thread) uint32 { return 1 }),
					}
				},
			}
		},
	}
	want := uint32(4 * 2 * gpu.WarpWidth * 3)
	for _, tc := range allConfigs() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			s := New(smallConfig(tc.p, tc.c))
			if _, err := s.Run(k); err != nil {
				t.Fatal(err)
			}
			if got := s.ReadWord(counter); got != want {
				t.Fatalf("counter = %d, want %d", got, want)
			}
		})
	}
}

// TestMeshAndBankedSubstrate: the write-read kernel stays correct on
// the higher-fidelity substrate, and the mesh is measurably slower
// than the crossbar.
func TestMeshAndBankedSubstrate(t *testing.T) {
	base := smallConfig(memsys.GTSC, gpu.RC)
	runWith := func(cfg Config) uint64 {
		s := New(cfg)
		kernel := writeReadKernel(0x30000)
		run, err := s.Run(kernel)
		if err != nil {
			t.Fatal(err)
		}
		threads := kernel.CTAs * kernel.WarpsPerCTA * gpu.WarpWidth
		for i := 0; i < threads; i++ {
			if got := s.ReadWord(0x30000 + mem.Addr(i*4)); got != uint32(i)+1 {
				t.Fatalf("word %d wrong: %d", i, got)
			}
		}
		return run.Cycles
	}
	flat := runWith(base)

	meshCfg := base
	meshCfg.Mem.NoC = noc.DefaultMeshConfig()
	meshCycles := runWith(meshCfg)
	if meshCycles <= flat/2 {
		t.Fatalf("mesh run implausibly fast: %d vs %d", meshCycles, flat)
	}

	bankedCfg := base
	bankedCfg.Mem.DRAM = dram.DefaultBankedConfig()
	bankedCycles := runWith(bankedCfg)
	if bankedCycles == 0 {
		t.Fatal("banked run broken")
	}

	both := base
	both.Mem.NoC = noc.DefaultMeshConfig()
	both.Mem.DRAM = dram.DefaultBankedConfig()
	runWith(both)
}

// TestOccupancyLimitAcrossSMs: MaxCTAsPerSM spreads a large grid over
// time rather than space.
func TestOccupancyLimitAcrossSMs(t *testing.T) {
	cfg := smallConfig(memsys.GTSC, gpu.RC)
	k := &gpu.Kernel{
		Name: "occ", CTAs: 16, WarpsPerCTA: 2, Regs: 2, MaxCTAsPerSM: 1,
		ProgramFor: func(w *gpu.Warp) gpu.Program {
			return gpu.Seq(gpu.Comp(5), gpu.Store(func(t *gpu.Thread) (mem.Addr, bool) {
				return 0x40000 + mem.Addr(t.GTID*4), true
			}, func(t *gpu.Thread) uint32 { return 1 }))
		},
	}
	s := New(cfg)
	run, err := s.Run(k)
	if err != nil {
		t.Fatal(err)
	}
	if run.SM.CTAsRetired != 16 {
		t.Fatalf("retired %d CTAs", run.SM.CTAsRetired)
	}
	for i := 0; i < 16*2*gpu.WarpWidth; i++ {
		if s.ReadWord(0x40000+mem.Addr(i*4)) != 1 {
			t.Fatalf("thread %d missing", i)
		}
	}
}

// TestGTOvsLRRDeterminism: both schedulers complete the same kernel
// correctly (timing may differ).
func TestGTOvsLRRDeterminism(t *testing.T) {
	for _, sched := range []gpu.Scheduler{gpu.LRR, gpu.GTO} {
		cfg := smallConfig(memsys.GTSC, gpu.RC)
		cfg.SM.Scheduler = sched
		s := New(cfg)
		if _, err := s.Run(conflictKernel(0x50000, 4, 8)); err != nil {
			t.Fatalf("%v: %v", sched, err)
		}
	}
}

// TestDeterministicReplay: two identical simulations produce identical
// cycle counts and statistics (the repo's determinism guarantee).
func TestDeterministicReplay(t *testing.T) {
	run := func() uint64 {
		s := New(smallConfig(memsys.GTSC, gpu.RC))
		r, err := s.Run(conflictKernel(0x60000, 5, 16))
		if err != nil {
			t.Fatal(err)
		}
		return r.Cycles
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic: %d vs %d cycles", a, b)
	}
}
