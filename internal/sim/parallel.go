package sim

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/gtsc-sim/gtsc/internal/gpu"
)

// tickPool is the persistent worker pool behind the parallel SM
// compute phase. One pool lives for the duration of a run phase; each
// cycle the master publishes the cycle number and a fresh work cursor,
// bumps the epoch, and every participant (the master included) claims
// SM indices off the cursor until it is exhausted. The master then
// waits for every worker's acknowledgement, which is the cycle
// barrier: a worker acks only after its claimed SM ticks returned, and
// it re-enters the claiming loop only after the next epoch is
// published, so no worker can ever touch a stale cursor or cycle
// number. All coordination is sync/atomic (sequentially consistent in
// Go), making the pool race-detector clean, and the acks give the
// happens-before edge from worker SM writes to the master's commit
// phase. No channels or locks on the hot path.
type tickPool struct {
	sms     []*gpu.SM
	workers int // pool goroutines, excluding the master

	// fn is the per-item work function. The default ticks one SM at the
	// published cycle; the relaxed engine substitutes a function that
	// runs one whole domain through an epoch window (see relaxed.go).
	// Written only between cycles (before the epoch bump), like due.
	fn func(i int, now uint64)

	// due lists the SM indices to tick this cycle. The master writes it
	// before the epoch bump; workers read it only after observing the
	// new epoch, so the atomic store/load pair gives the happens-before
	// edge and the plain field stays race-detector clean. The event
	// engine passes only awake SMs; the legacy loop passes all (the
	// prebuilt identity list).
	due []int
	all []int

	now    atomic.Uint64
	epoch  atomic.Uint64
	cursor atomic.Int64
	acks   atomic.Int64

	stop atomic.Bool
	wg   sync.WaitGroup
}

// newTickPool spawns workers-1 goroutines (the master is the final
// participant). workers must be >= 2; the serial loop needs no pool.
func newTickPool(sms []*gpu.SM, workers int) *tickPool {
	p := &tickPool{sms: sms, workers: workers - 1}
	p.fn = func(i int, now uint64) { p.sms[i].Tick(now) }
	p.all = make([]int, len(sms))
	for i := range p.all {
		p.all[i] = i
	}
	for i := 0; i < p.workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// newWorkPool builds a pool over n abstract work items with a custom
// work function — the relaxed engine's domain pool. Same barrier
// discipline as the SM tick pool.
func newWorkPool(n, workers int, fn func(i int, now uint64)) *tickPool {
	p := &tickPool{workers: workers - 1, fn: fn}
	p.all = make([]int, n)
	for i := range p.all {
		p.all[i] = i
	}
	for i := 0; i < p.workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// tick runs one parallel compute phase: the SMs listed in due (nil =
// all of them) tick at cycle now, partitioned dynamically over the
// pool. It returns only after every listed SM tick has completed and
// every worker has acknowledged the cycle.
func (p *tickPool) tick(now uint64, due []int) {
	if due == nil {
		due = p.all
	}
	p.due = due
	p.now.Store(now)
	p.cursor.Store(0)
	p.acks.Store(0)
	p.epoch.Add(1) // release the workers into this cycle
	p.work(now)
	for p.acks.Load() != int64(p.workers) {
		runtime.Gosched()
	}
}

// work claims and runs due items until the cursor runs out.
func (p *tickPool) work(now uint64) {
	due := p.due
	n := int64(len(due))
	for {
		i := p.cursor.Add(1) - 1
		if i >= n {
			return
		}
		p.fn(due[i], now)
	}
}

// worker processes every epoch in order: wait for the epoch to
// advance, drain the cursor, acknowledge, repeat until shutdown. The
// master publishes epoch e+1 only after collecting all acks for e, so
// epochs arrive one at a time.
func (p *tickPool) worker() {
	defer p.wg.Done()
	seen := uint64(0)
	for {
		for p.epoch.Load() == seen {
			if p.stop.Load() {
				return
			}
			runtime.Gosched()
		}
		seen++
		p.work(p.now.Load())
		p.acks.Add(1)
	}
}

// shutdown terminates the pool's goroutines and waits for them. Only
// call it between cycles (never mid-tick).
func (p *tickPool) shutdown() {
	p.stop.Store(true)
	p.wg.Wait()
}
