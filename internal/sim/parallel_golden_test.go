package sim_test

import (
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"testing"

	"github.com/gtsc-sim/gtsc/internal/checkpoint"
	"github.com/gtsc-sim/gtsc/internal/sim"
	"github.com/gtsc-sim/gtsc/internal/workload"
)

// TestParallelTickGoldenEquivalence is the determinism gate for
// intra-simulation parallelism: every golden row must reproduce its
// pre-parallelism FNV-1a fingerprint bit for bit at every SimWorkers
// setting. The two-phase tick (concurrent compute into staged buffers,
// canonical-order commit) and quiescence cycle-skipping are pure
// engine scheduling — if any worker count shifts a single counter
// anywhere in the machine, this test names the row and the setting.
// Run under -race it doubles as the data-race gate for the worker
// pool (CI runs it with GOMAXPROCS=4; a 1-CPU host would mask
// scheduling races).
func TestParallelTickGoldenEquivalence(t *testing.T) {
	wls := map[string]*workload.Workload{}
	for _, wl := range workload.All() {
		wls[wl.Name] = wl
	}
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		for _, row := range goldenRows {
			row := row
			t.Run(fmt.Sprintf("w%d/%s/%s", workers, row.workload, row.config), func(t *testing.T) {
				t.Parallel()
				wl, ok := wls[row.workload]
				if !ok {
					t.Fatalf("unknown workload %q", row.workload)
				}
				cfg, ok := goldenConfig(row.config)
				if !ok {
					t.Fatalf("unknown config label %q", row.config)
				}
				cfg.SimWorkers = workers
				run, err := wl.Build(1).Run(cfg)
				if err != nil {
					t.Fatalf("run failed: %v", err)
				}
				h := fnv.New64a()
				fmt.Fprintf(h, "%+v", *run)
				if got := h.Sum64(); got != row.hash {
					t.Errorf("simworkers=%d fingerprint = %#x, golden %#x (parallel tick diverged)", workers, got, row.hash)
				}
			})
		}
	}
}

// TestKillResumeUnderParallelTick reuses the PR 4 checkpoint-digest
// machinery under the parallel engine: a run ticking SMs on 4 workers
// is paused at a fuzzed cycle, round-tripped through the binary codec
// (digest verified on restore), and — the stronger claim — resumed
// with a DIFFERENT worker count (serial) and with cycle-skipping
// inverted. The final fingerprint must still match the golden:
// checkpoints are coordinates in the simulation, not in the engine's
// schedule, so a checkpoint taken at any SimWorkers restores under
// any other.
func TestKillResumeUnderParallelTick(t *testing.T) {
	wls := map[string]*workload.Workload{}
	for _, wl := range workload.All() {
		wls[wl.Name] = wl
	}
	for _, row := range goldenRows {
		row := row
		if row.workload != "CC" {
			continue // one workload across all protocol configs keeps this O(seconds)
		}
		t.Run(row.workload+"/"+row.config, func(t *testing.T) {
			t.Parallel()
			wl := wls[row.workload]
			cfg, ok := goldenConfig(row.config)
			if !ok {
				t.Fatalf("unknown config label %q", row.config)
			}
			cfg.SimWorkers = 4
			pause := 1 + row.hash%row.cycles

			e1 := checkpoint.NewExecution(cfg, wl.Build(1), row.workload, 1)
			_, paused, err := e1.RunUntil(context.Background(), pause)
			if err != nil {
				t.Fatalf("parallel run to pause cycle %d failed: %v", pause, err)
			}
			if !paused {
				t.Fatalf("execution did not pause at cycle %d", pause)
			}
			var buf bytes.Buffer
			if err := e1.Checkpoint().Encode(&buf); err != nil {
				t.Fatalf("encode: %v", err)
			}
			ck, err := checkpoint.Decode(&buf)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}

			// Resume on a deliberately different engine schedule.
			resumeCfg := cfg
			resumeCfg.SimWorkers = 1
			resumeCfg.DisableCycleSkip = !cfg.DisableCycleSkip
			e2, err := checkpoint.ResumeExecution(ck, resumeCfg, wl.Build(1), row.workload, 1)
			if err != nil {
				t.Fatalf("resume (verified replay to cycle %d): %v", ck.Cycle, err)
			}
			run, err := e2.Run(context.Background())
			if err != nil {
				t.Fatalf("post-resume run failed: %v", err)
			}
			h := fnv.New64a()
			fmt.Fprintf(h, "%+v", *run)
			if got := h.Sum64(); got != row.hash {
				t.Errorf("parallel-pause/serial-resume fingerprint = %#x, golden %#x (pause at %d)", got, row.hash, pause)
			}
		})
	}
}

// TestEngineCountersConsistent sanity-checks the EngineStats
// bookkeeping on one memory-bound golden row: executed + skipped run
// cycles must equal the simulated kernel cycles, and with skipping
// disabled the skip counters must stay zero while the fingerprint is
// unchanged.
func TestEngineCountersConsistent(t *testing.T) {
	wl, ok := workload.ByName("BH")
	if !ok {
		t.Fatal("workload BH missing")
	}
	cfg, _ := goldenConfig("gtsc-rc")

	s := sim.New(cfg)
	run, err := wl.Build(1).RunOn(s)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	eng := s.Engine()
	if eng.RunCycles+eng.RunSkipped != run.Cycles {
		t.Errorf("run cycles executed+skipped = %d+%d, want %d", eng.RunCycles, eng.RunSkipped, run.Cycles)
	}

	cfg2 := cfg
	cfg2.DisableCycleSkip = true
	s2 := sim.New(cfg2)
	run2, err := wl.Build(1).RunOn(s2)
	if err != nil {
		t.Fatalf("run (skip disabled): %v", err)
	}
	if e2 := s2.Engine(); e2.SkippedCycles() != 0 {
		t.Errorf("DisableCycleSkip still skipped %d cycles", e2.SkippedCycles())
	}
	h1, h2 := fnv.New64a(), fnv.New64a()
	fmt.Fprintf(h1, "%+v", *run)
	fmt.Fprintf(h2, "%+v", *run2)
	if h1.Sum64() != h2.Sum64() {
		t.Error("DisableCycleSkip changed the stats fingerprint")
	}
}
