package sim

import (
	"runtime"
	"testing"

	"github.com/gtsc-sim/gtsc/internal/gpu"
	"github.com/gtsc-sim/gtsc/internal/memsys"
)

// TestEffectiveWorkersClamp pins the resolution chain of
// Config.SimWorkers: floor 1, clamped to GOMAXPROCS (oversubscribing a
// small host makes the parallel tick SLOWER than serial — the clamp
// turns a pessimization into a no-op), then to the SM count (idle
// workers can never have work). BENCH_sim.json documented the failure
// mode this prevents: simworkers=4 at 0.51x on a 1-CPU host.
func TestEffectiveWorkersClamp(t *testing.T) {
	maxprocs := runtime.GOMAXPROCS(0)
	cfg := DefaultConfig()
	cfg.Mem.NumSMs = 4
	cfg.Mem.NumBanks = 2

	cases := []struct {
		simWorkers int
		want       int
	}{
		{0, 1},  // unset: serial
		{-3, 1}, // nonsense: serial
		{1, 1},
		{2, min(2, maxprocs)},
		{64, min(min(64, maxprocs), 4)}, // GOMAXPROCS clamp, then SM-count clamp
	}
	for _, tc := range cases {
		cfg.SimWorkers = tc.simWorkers
		s := New(cfg)
		if got := s.effectiveWorkers(); got != tc.want {
			t.Errorf("SimWorkers=%d at GOMAXPROCS=%d: effectiveWorkers=%d, want %d",
				tc.simWorkers, maxprocs, got, tc.want)
		}
	}
}

// TestEngineReportsEffectiveWorkers: the engine: line the CLIs print
// reads EngineStats.Workers after a run, which must be the EFFECTIVE
// value, not the requested one — a 1-CPU host asking for -simworkers
// 64 must see simworkers=1 reported, and no host may report more than
// GOMAXPROCS.
func TestEngineReportsEffectiveWorkers(t *testing.T) {
	cfg := smallConfig(memsys.GTSC, gpu.RC)
	cfg.SimWorkers = 64 // far beyond any host
	s := New(cfg)
	want := s.effectiveWorkers()
	if want > runtime.GOMAXPROCS(0) {
		t.Fatalf("effectiveWorkers=%d exceeds GOMAXPROCS=%d", want, runtime.GOMAXPROCS(0))
	}
	if _, err := s.Run(writeReadKernel(0)); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := s.Engine().Workers
	if got > runtime.GOMAXPROCS(0) {
		t.Errorf("EngineStats.Workers = %d exceeds GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	// The effective clamp value must surface verbatim (observers and
	// fault shims no longer force a serial fallback).
	if got != want {
		t.Errorf("EngineStats.Workers = %d, want effective %d", got, want)
	}
}
