package sim_test

import (
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"testing"

	"github.com/gtsc-sim/gtsc/internal/checkpoint"
	"github.com/gtsc-sim/gtsc/internal/sim"
	"github.com/gtsc-sim/gtsc/internal/workload"
)

// TestLegacyEngineGoldenEquivalence re-runs every golden row with the
// legacy per-cycle loop forced, serial and on 4 workers. The default
// suite (TestOptimizedCycleLoopBitIdentical and the SimWorkers sweep)
// exercises the scheduled-wake event engine, because EngineAuto picks
// it; this is the other half of the engine matrix, proving the legacy
// loop still reproduces every fingerprint after the agenda refactor —
// the two engines must remain interchangeable schedules of the same
// machine.
func TestLegacyEngineGoldenEquivalence(t *testing.T) {
	wls := map[string]*workload.Workload{}
	for _, wl := range workload.All() {
		wls[wl.Name] = wl
	}
	for _, workers := range []int{1, 4} {
		workers := workers
		for _, row := range goldenRows {
			row := row
			t.Run(fmt.Sprintf("legacy/w%d/%s/%s", workers, row.workload, row.config), func(t *testing.T) {
				t.Parallel()
				wl, ok := wls[row.workload]
				if !ok {
					t.Fatalf("unknown workload %q", row.workload)
				}
				cfg, ok := goldenConfig(row.config)
				if !ok {
					t.Fatalf("unknown config label %q", row.config)
				}
				cfg.Engine = sim.EngineLegacy
				cfg.SimWorkers = workers
				run, err := wl.Build(1).Run(cfg)
				if err != nil {
					t.Fatalf("run failed: %v", err)
				}
				h := fnv.New64a()
				fmt.Fprintf(h, "%+v", *run)
				if got := h.Sum64(); got != row.hash {
					t.Errorf("legacy engine (w=%d) fingerprint = %#x, golden %#x", workers, got, row.hash)
				}
			})
		}
	}
}

// TestEngineCheckpointInterop pins the claim Config.Engine makes: a
// checkpoint is a coordinate in the simulation, not in the engine's
// schedule, so a checkpoint taken under one engine restores and
// completes under the other — in BOTH directions. Each CC golden row
// is paused at a row-derived cycle under engine A, round-tripped
// through the binary codec, resumed under engine B, and the final
// fingerprint must still match the golden table.
func TestEngineCheckpointInterop(t *testing.T) {
	wls := map[string]*workload.Workload{}
	for _, wl := range workload.All() {
		wls[wl.Name] = wl
	}
	directions := []struct {
		name           string
		pause, resume  sim.EngineMode
		resumeDisables bool // invert cycle skipping on the resume side too
	}{
		{"event-to-legacy", sim.EngineEvent, sim.EngineLegacy, true},
		{"legacy-to-event", sim.EngineLegacy, sim.EngineEvent, false},
	}
	for _, dir := range directions {
		dir := dir
		for _, row := range goldenRows {
			row := row
			if row.workload != "CC" {
				continue // one workload across all protocol configs keeps this O(seconds)
			}
			t.Run(dir.name+"/"+row.workload+"/"+row.config, func(t *testing.T) {
				t.Parallel()
				wl := wls[row.workload]
				cfg, ok := goldenConfig(row.config)
				if !ok {
					t.Fatalf("unknown config label %q", row.config)
				}
				cfg.Engine = dir.pause
				pause := 1 + row.hash%row.cycles

				e1 := checkpoint.NewExecution(cfg, wl.Build(1), row.workload, 1)
				_, paused, err := e1.RunUntil(context.Background(), pause)
				if err != nil {
					t.Fatalf("%s run to pause cycle %d failed: %v", dir.pause, pause, err)
				}
				if !paused {
					t.Fatalf("execution did not pause at cycle %d", pause)
				}
				var buf bytes.Buffer
				if err := e1.Checkpoint().Encode(&buf); err != nil {
					t.Fatalf("encode: %v", err)
				}
				ck, err := checkpoint.Decode(&buf)
				if err != nil {
					t.Fatalf("decode: %v", err)
				}

				resumeCfg := cfg
				resumeCfg.Engine = dir.resume
				resumeCfg.DisableCycleSkip = dir.resumeDisables
				e2, err := checkpoint.ResumeExecution(ck, resumeCfg, wl.Build(1), row.workload, 1)
				if err != nil {
					t.Fatalf("resume under %s (verified replay to cycle %d): %v", dir.resume, ck.Cycle, err)
				}
				run, err := e2.Run(context.Background())
				if err != nil {
					t.Fatalf("post-resume run failed: %v", err)
				}
				h := fnv.New64a()
				fmt.Fprintf(h, "%+v", *run)
				if got := h.Sum64(); got != row.hash {
					t.Errorf("%s fingerprint = %#x, golden %#x (pause at %d)", dir.name, got, row.hash, pause)
				}
			})
		}
	}
}
