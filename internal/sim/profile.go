// pprof phase attribution for the cycle engines.
//
// A CPU profile of a simulation is dominated by three interleaved
// activities — the memory-hierarchy tick, the SM tick, and the engine's
// own scheduling work (agenda queries, wake refreshes, quiescence
// probes, watchdog sampling). They inline into each other enough that
// separating them by stack frame needs manual bisection; goroutine
// labels split them directly: `go tool pprof -tagfocus
// engine_phase=hierarchy-tick` isolates one phase.
package sim

import (
	"context"
	"runtime/pprof"
)

// Engine phase label values (label key "engine_phase").
const (
	phaseLabelHierarchy = "hierarchy-tick"
	phaseLabelSM        = "sm-tick"
	phaseLabelAgenda    = "agenda"

	// Relaxed-sync engine phases: a domain free-running through its
	// epoch window (set on whichever goroutine runs the domain, so
	// multi-core time attributes correctly), the barrier's NoC replay,
	// and the rest of the barrier (commits, observer merge, checks).
	phaseLabelDomainRun = "domain-run"
	phaseLabelExchange  = "noc-exchange"
	phaseLabelBarrier   = "epoch-barrier"
)

// phaseLabels carries pre-built label contexts for the engine's hot
// phases. Building the contexts once per phase call keeps the per-cycle
// cost to a single SetGoroutineLabels store per transition — and, when
// Config.ProfileLabels is off (the default), to one predictable branch.
type phaseLabels struct {
	on        bool
	hierarchy context.Context
	smTick    context.Context
	agenda    context.Context
	domainRun context.Context
	exchange  context.Context
	barrier   context.Context
}

func (s *Simulator) newPhaseLabels() phaseLabels {
	pl := phaseLabels{on: s.Cfg.ProfileLabels}
	if !pl.on {
		return pl
	}
	base := context.Background()
	pl.hierarchy = pprof.WithLabels(base, pprof.Labels("engine_phase", phaseLabelHierarchy))
	pl.smTick = pprof.WithLabels(base, pprof.Labels("engine_phase", phaseLabelSM))
	pl.agenda = pprof.WithLabels(base, pprof.Labels("engine_phase", phaseLabelAgenda))
	pl.domainRun = pprof.WithLabels(base, pprof.Labels("engine_phase", phaseLabelDomainRun))
	pl.exchange = pprof.WithLabels(base, pprof.Labels("engine_phase", phaseLabelExchange))
	pl.barrier = pprof.WithLabels(base, pprof.Labels("engine_phase", phaseLabelBarrier))
	return pl
}

// set switches the goroutine's labels to the given phase context.
func (pl *phaseLabels) set(ctx context.Context) {
	if pl.on {
		pprof.SetGoroutineLabels(ctx)
	}
}

// clear drops the labels on phase exit so code outside the cycle loop
// is not attributed to the last phase that ran.
func (pl *phaseLabels) clear() {
	if pl.on {
		pprof.SetGoroutineLabels(context.Background())
	}
}
