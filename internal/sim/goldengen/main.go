// Command goldengen regenerates the fingerprint table of
// internal/sim/golden_test.go (TestOptimizedCycleLoopBitIdentical).
// Run it on a known-good build and paste its output into the test
// whenever the simulated machine's intended behaviour changes.
package main

import (
	"fmt"
	"hash/fnv"
	"os"

	"github.com/gtsc-sim/gtsc/internal/dram"
	"github.com/gtsc-sim/gtsc/internal/gpu"
	"github.com/gtsc-sim/gtsc/internal/memsys"
	"github.com/gtsc-sim/gtsc/internal/noc"
	"github.com/gtsc-sim/gtsc/internal/sim"
	"github.com/gtsc-sim/gtsc/internal/workload"
)

func main() {
	type cfgT struct {
		label  string
		proto  memsys.Protocol
		cons   gpu.Consistency
		mesh   bool
		bank   bool
		tsbits int
	}
	cfgs := []cfgT{
		{"gtsc-rc", memsys.GTSC, gpu.RC, false, false, 0},
		{"gtsc-sc", memsys.GTSC, gpu.SC, false, false, 0},
		{"gtsc-tso", memsys.GTSC, gpu.TSO, false, false, 0},
		{"tc-rc", memsys.TC, gpu.RC, false, false, 0},
		{"bl-rc", memsys.BL, gpu.RC, false, false, 0},
		{"dir-rc", memsys.DIR, gpu.RC, false, false, 0},
		{"gtsc-rc-mesh-banked", memsys.GTSC, gpu.RC, true, true, 0},
		// 8-bit timestamps: the §V-D overflow reset becomes a routine
		// event, so its epoch-crossing paths are golden-pinned too.
		{"gtsc-rc-ts8", memsys.GTSC, gpu.RC, false, false, 8},
	}
	for _, wl := range workload.All() {
		for _, c := range cfgs {
			cfg := sim.DefaultConfig()
			cfg.Mem.Protocol = c.proto
			cfg.Mem.NumSMs = 4
			cfg.Mem.NumBanks = 4
			cfg.SM.Consistency = c.cons
			if c.mesh {
				cfg.Mem.NoC = noc.DefaultMeshConfig()
			}
			if c.bank {
				cfg.Mem.DRAM = dram.DefaultBankedConfig()
			}
			cfg.Mem.GTSC.TSBits = c.tsbits
			// Same override the golden tests honor: CI's drift check
			// regenerates the table under both dispatch modes, and the
			// output must be identical either way.
			switch v := os.Getenv("GTSC_COMPONENT_WAKES"); v {
			case "", "on", "1":
			case "off", "0":
				cfg.DisableComponentWakes = true
			default:
				panic(fmt.Sprintf("GTSC_COMPONENT_WAKES: want on/1/off/0, got %q", v))
			}
			run, err := wl.Build(1).Run(cfg)
			if err != nil {
				panic(fmt.Sprintf("%s/%s: %v", wl.Name, c.label, err))
			}
			h := fnv.New64a()
			fmt.Fprintf(h, "%+v", *run)
			fmt.Printf("\t{%q, %q, %d, %d, %#x},\n", wl.Name, c.label, run.Cycles, run.NoC.TotalFlits(), h.Sum64())
		}
	}
}
