package sim_test

import (
	"fmt"
	"hash/fnv"
	"testing"

	"github.com/gtsc-sim/gtsc/internal/sim"
	"github.com/gtsc-sim/gtsc/internal/workload"
)

// TestComponentWakesOffGoldenEquivalence re-runs every golden row on
// the event engine with per-component wake dispatch disabled, serial
// and on 4 workers. The default suite exercises the event engine WITH
// per-component wakes (the default); this is the wholesale-tick leg of
// the dispatch-mode matrix, proving DisableComponentWakes is a pure
// scheduling knob — the two dispatch modes must remain interchangeable
// schedules of the same machine, and CI runs the golden drift check on
// both.
func TestComponentWakesOffGoldenEquivalence(t *testing.T) {
	wls := map[string]*workload.Workload{}
	for _, wl := range workload.All() {
		wls[wl.Name] = wl
	}
	for _, workers := range []int{1, 4} {
		workers := workers
		for _, row := range goldenRows {
			row := row
			t.Run(fmt.Sprintf("fulltick/w%d/%s/%s", workers, row.workload, row.config), func(t *testing.T) {
				t.Parallel()
				wl, ok := wls[row.workload]
				if !ok {
					t.Fatalf("unknown workload %q", row.workload)
				}
				cfg, ok := goldenConfig(row.config)
				if !ok {
					t.Fatalf("unknown config label %q", row.config)
				}
				cfg.Engine = sim.EngineEvent
				cfg.DisableComponentWakes = true
				cfg.SimWorkers = workers
				run, err := wl.Build(1).Run(cfg)
				if err != nil {
					t.Fatalf("run failed: %v", err)
				}
				h := fnv.New64a()
				fmt.Fprintf(h, "%+v", *run)
				if got := h.Sum64(); got != row.hash {
					t.Errorf("full-tick event engine (w=%d) fingerprint = %#x, golden %#x", workers, got, row.hash)
				}
			})
		}
	}
}

// TestComponentDispatchAccounting pins the bookkeeping identity behind
// the engine's hierarchy breakdown: under per-component dispatch every
// executed event cycle makes exactly one tick-or-sleep decision per
// component, so per class ticks + sleeps = EventCycles * class size —
// and on real workloads at least one class must actually sleep, or the
// dispatcher is dead weight. With the mode disabled the counters must
// stay exactly zero (the line CLIs omit).
func TestComponentDispatchAccounting(t *testing.T) {
	wl := func() *workload.Workload {
		for _, w := range workload.All() {
			if w.Name == "CC" {
				return w
			}
		}
		t.Fatal("workload CC missing")
		return nil
	}()
	for _, label := range []string{"gtsc-rc", "tc-rc"} {
		label := label
		t.Run(label, func(t *testing.T) {
			t.Parallel()
			cfg, ok := goldenConfig(label)
			if !ok {
				t.Fatalf("unknown config label %q", label)
			}
			cfg.Engine = sim.EngineEvent
			cfg.DisableComponentWakes = false
			s := sim.New(cfg)
			if _, err := wl.Build(1).RunOn(s); err != nil {
				t.Fatalf("run failed: %v", err)
			}
			eng := s.Engine()
			if eng.EventCycles == 0 {
				t.Fatal("event engine never dispatched; accounting test is vacuous")
			}
			c := eng.Comp
			nL1, nL2, nPart := len(s.Sys.L1s), len(s.Sys.L2s), len(s.Sys.Parts)
			checks := []struct {
				class         string
				ticks, sleeps uint64
				size          int
			}{
				{"noc", c.NoCTicks, c.NoCSleeps, 1},
				{"dram", c.DRAMTicks, c.DRAMSleeps, nPart},
				{"l2", c.L2Ticks, c.L2Sleeps, nL2},
				{"l1", c.L1Ticks, c.L1Sleeps, nL1},
			}
			for _, ch := range checks {
				want := eng.EventCycles * uint64(ch.size)
				if got := ch.ticks + ch.sleeps; got != want {
					t.Errorf("%s: ticks %d + sleeps %d = %d, want EventCycles(%d) * %d = %d",
						ch.class, ch.ticks, ch.sleeps, got, eng.EventCycles, ch.size, want)
				}
			}
			if c.HierarchySleeps() == 0 {
				t.Error("no hierarchy component ever slept; per-component dispatch bought nothing on a real workload")
			}

			off := cfg
			off.DisableComponentWakes = true
			s2 := sim.New(off)
			if _, err := wl.Build(1).RunOn(s2); err != nil {
				t.Fatalf("full-tick run failed: %v", err)
			}
			if c2 := s2.Engine().Comp; c2.HierarchyTicks() != 0 || c2.HierarchySleeps() != 0 {
				t.Errorf("dispatch counters nonzero with component wakes disabled: %+v", c2)
			}
		})
	}
}
