package sim

import (
	"fmt"
	"testing"

	"github.com/gtsc-sim/gtsc/internal/gpu"
	"github.com/gtsc-sim/gtsc/internal/mem"
	"github.com/gtsc-sim/gtsc/internal/memsys"
	"github.com/gtsc-sim/gtsc/internal/noc"
)

// Classic two-thread litmus tests, run with one warp per SM (lane 0
// active) across a spread of NoC/DRAM timings so different
// interleavings arise. Under SC (and under TC-Strong paired with SC),
// the forbidden outcome of each test must never appear; the fenced
// variants must also be forbidden under RC.

const (
	litX   = mem.Addr(0x11000)
	litY   = mem.Addr(0x12000) // different block (and usually bank) than X
	litOut = mem.Addr(0x13000)
)

func lane0(a mem.Addr) func(t *gpu.Thread) (mem.Addr, bool) {
	return func(t *gpu.Thread) (mem.Addr, bool) { return a, t.Lane == 0 }
}

// litmusKernel builds a 2-CTA kernel whose two programs are given per
// CTA; each program's final register values r0/r1 are stored to the
// observation array.
func litmusKernel(name string, prog0, prog1 []*gpu.Instr) *gpu.Kernel {
	writeBack := func(cta int) []*gpu.Instr {
		return []*gpu.Instr{
			gpu.Fence(),
			gpu.Store(lane0(litOut+mem.Addr(cta*8)), func(t *gpu.Thread) uint32 { return t.Regs[0] }, 0),
			gpu.Store(lane0(litOut+mem.Addr(cta*8+4)), func(t *gpu.Thread) uint32 { return t.Regs[1] }, 1),
			gpu.Fence(),
		}
	}
	return &gpu.Kernel{
		Name: name, CTAs: 2, WarpsPerCTA: 1, Regs: 2, MaxCTAsPerSM: 1,
		NeedsCoherence: true,
		ProgramFor: func(w *gpu.Warp) gpu.Program {
			if w.CTA.ID == 0 {
				return gpu.Seq(append(append([]*gpu.Instr{}, prog0...), writeBack(0)...)...)
			}
			return gpu.Seq(append(append([]*gpu.Instr{}, prog1...), writeBack(1)...)...)
		},
	}
}

// timingVariations builds configs with different latencies so the two
// SMs' operations interleave differently.
func timingVariations(p memsys.Protocol, c gpu.Consistency) []Config {
	var out []Config
	for _, nocLat := range []uint64{1, 4, 16, 33} {
		for _, banks := range []int{1, 2} {
			cfg := smallConfig(p, c)
			cfg.Mem.NumSMs = 2
			cfg.Mem.NumBanks = banks
			cfg.Mem.NoC = noc.Config{Latency: nocLat, InjectQueue: 8}
			out = append(out, cfg)
		}
	}
	return out
}

// runLitmus executes the kernel and returns (r0,r1) of both threads.
func runLitmus(t *testing.T, cfg Config, k *gpu.Kernel) [2][2]uint32 {
	t.Helper()
	s := New(cfg)
	if _, err := s.Run(k); err != nil {
		t.Fatal(err)
	}
	var out [2][2]uint32
	for cta := 0; cta < 2; cta++ {
		out[cta][0] = s.ReadWord(litOut + mem.Addr(cta*8))
		out[cta][1] = s.ReadWord(litOut + mem.Addr(cta*8+4))
	}
	return out
}

// TestLitmusMessagePassing: P0 stores data then flag (with fence under
// RC); P1 reads flag then data. Forbidden: flag==1 && data==0.
func TestLitmusMessagePassing(t *testing.T) {
	mp := func(fenced bool) *gpu.Kernel {
		p0 := []*gpu.Instr{
			gpu.Store(lane0(litX), func(*gpu.Thread) uint32 { return 1 }), // data
		}
		if fenced {
			p0 = append(p0, gpu.Fence())
		}
		p0 = append(p0, gpu.Store(lane0(litY), func(*gpu.Thread) uint32 { return 1 })) // flag
		p1 := []*gpu.Instr{
			gpu.Load(0, lane0(litY)), // flag
			gpu.Load(1, lane0(litX)), // data
		}
		name := "mp"
		if fenced {
			name = "mp-fenced"
		}
		return litmusKernel(name, p0, p1)
	}

	check := func(t *testing.T, k *gpu.Kernel, cfgs []Config, what string) {
		for i, cfg := range cfgs {
			r := runLitmus(t, cfg, k)
			flag, data := r[1][0], r[1][1]
			if flag == 1 && data == 0 {
				t.Fatalf("%s cfg %d: forbidden MP outcome flag=1,data=0", what, i)
			}
		}
	}
	check(t, mp(false), timingVariations(memsys.GTSC, gpu.SC), "gtsc-sc")
	check(t, mp(false), timingVariations(memsys.TC, gpu.SC), "tc-sc")
	check(t, mp(false), timingVariations(memsys.BL, gpu.SC), "bl-sc")
	// Under RC the unfenced outcome is architecturally allowed, but the
	// fenced version must be forbidden.
	check(t, mp(true), timingVariations(memsys.GTSC, gpu.RC), "gtsc-rc-fenced")
	check(t, mp(true), timingVariations(memsys.TC, gpu.RC), "tc-rc-fenced")
	// TSO preserves store order and load order: MP is forbidden even
	// without the fence.
	check(t, mp(false), timingVariations(memsys.GTSC, gpu.TSO), "gtsc-tso")
}

// TestLitmusStoreBuffering: P0: ST x; LD y. P1: ST y; LD x.
// Forbidden under SC: both loads 0.
func TestLitmusStoreBuffering(t *testing.T) {
	sb := litmusKernel("sb",
		[]*gpu.Instr{
			gpu.Store(lane0(litX), func(*gpu.Thread) uint32 { return 1 }),
			gpu.Load(0, lane0(litY)),
		},
		[]*gpu.Instr{
			gpu.Store(lane0(litY), func(*gpu.Thread) uint32 { return 1 }),
			gpu.Load(0, lane0(litX)),
		})
	for _, pc := range []struct {
		name string
		p    memsys.Protocol
	}{{"gtsc", memsys.GTSC}, {"tc", memsys.TC}, {"bl", memsys.BL}} {
		for i, cfg := range timingVariations(pc.p, gpu.SC) {
			r := runLitmus(t, cfg, sb)
			if r[0][0] == 0 && r[1][0] == 0 {
				t.Fatalf("%s-sc cfg %d: forbidden SB outcome 0/0", pc.name, i)
			}
		}
	}
}

// TestLitmusLoadBuffering: P0: LD x; ST y=1. P1: LD y; ST x=1.
// Forbidden everywhere here (no speculation): both loads 1.
func TestLitmusLoadBuffering(t *testing.T) {
	lb := litmusKernel("lb",
		[]*gpu.Instr{
			gpu.Load(0, lane0(litX)),
			gpu.Store(lane0(litY), func(*gpu.Thread) uint32 { return 1 }),
		},
		[]*gpu.Instr{
			gpu.Load(0, lane0(litY)),
			gpu.Store(lane0(litX), func(*gpu.Thread) uint32 { return 1 }),
		})
	for _, cons := range []gpu.Consistency{gpu.SC, gpu.TSO, gpu.RC} {
		for i, cfg := range timingVariations(memsys.GTSC, cons) {
			r := runLitmus(t, cfg, lb)
			if r[0][0] == 1 && r[1][0] == 1 {
				t.Fatalf("gtsc-%v cfg %d: forbidden LB outcome 1/1", cons, i)
			}
		}
	}
}

// TestLitmusCoherenceCO: two stores to the same location from two SMs;
// after both complete, every protocol agrees on a single final value
// and both writers' subsequent reads see it.
func TestLitmusCoherenceCO(t *testing.T) {
	co := litmusKernel("co",
		[]*gpu.Instr{
			gpu.Store(lane0(litX), func(*gpu.Thread) uint32 { return 1 }),
			gpu.Fence(),
			gpu.Load(0, lane0(litX)),
		},
		[]*gpu.Instr{
			gpu.Store(lane0(litX), func(*gpu.Thread) uint32 { return 2 }),
			gpu.Fence(),
			gpu.Load(0, lane0(litX)),
		})
	for _, pc := range []memsys.Protocol{memsys.GTSC, memsys.TC, memsys.BL} {
		for i, cfg := range timingVariations(pc, gpu.SC) {
			s := New(cfg)
			if _, err := s.Run(co); err != nil {
				t.Fatal(err)
			}
			final := s.ReadWord(litX)
			if final != 1 && final != 2 {
				t.Fatalf("%v cfg %d: impossible final value %d", pc, i, final)
			}
		}
	}
}

func ExampleConfig_litmus() {
	cfg := smallConfig(memsys.GTSC, gpu.SC)
	cfg.Mem.NumSMs = 2
	k := litmusKernel("example-mp",
		[]*gpu.Instr{gpu.Store(lane0(litX), func(*gpu.Thread) uint32 { return 1 })},
		[]*gpu.Instr{gpu.Load(0, lane0(litX)), gpu.Load(1, lane0(litX))})
	s := New(cfg)
	if _, err := s.Run(k); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("done")
	// Output: done
}

// TestLitmusIRIW: independent reads of independent writes. P0: ST x=1.
// P1: ST y=1. P2: LD x, LD y. P3: LD y, LD x. Under SC, writes are
// atomically visible in one global order (§II-B's write atomicity):
// the two readers must not disagree — forbidden outcome is P2 seeing
// (x=1, y=0) while P3 sees (y=1, x=0).
func TestLitmusIRIW(t *testing.T) {
	iriw := &gpu.Kernel{
		Name: "iriw", CTAs: 4, WarpsPerCTA: 1, Regs: 2, MaxCTAsPerSM: 1,
		NeedsCoherence: true,
		ProgramFor: func(w *gpu.Warp) gpu.Program {
			writeBack := []*gpu.Instr{
				gpu.Fence(),
				gpu.Store(func(t *gpu.Thread) (mem.Addr, bool) {
					return litOut + mem.Addr(t.CTA*8), t.Lane == 0
				}, func(t *gpu.Thread) uint32 { return t.Regs[0] }, 0),
				gpu.Store(func(t *gpu.Thread) (mem.Addr, bool) {
					return litOut + mem.Addr(t.CTA*8+4), t.Lane == 0
				}, func(t *gpu.Thread) uint32 { return t.Regs[1] }, 1),
			}
			switch w.CTA.ID {
			case 0:
				return gpu.Seq(gpu.Store(lane0(litX), func(*gpu.Thread) uint32 { return 1 }))
			case 1:
				return gpu.Seq(gpu.Store(lane0(litY), func(*gpu.Thread) uint32 { return 1 }))
			case 2: // r0 = x (first), r1 = y (second)
				return gpu.Seq(append([]*gpu.Instr{
					gpu.Load(0, lane0(litX)),
					gpu.Load(1, lane0(litY)),
				}, writeBack...)...)
			default: // r0 = y (first), r1 = x (second)
				return gpu.Seq(append([]*gpu.Instr{
					gpu.Load(0, lane0(litY)),
					gpu.Load(1, lane0(litX)),
				}, writeBack...)...)
			}
		},
	}
	for _, pc := range []memsys.Protocol{memsys.GTSC, memsys.TC, memsys.BL} {
		for i, cfg := range timingVariations(pc, gpu.SC) {
			cfg.Mem.NumSMs = 4
			s := New(cfg)
			if _, err := s.Run(iriw); err != nil {
				t.Fatal(err)
			}
			// P2: r0=x, r1=y. P3: r0=y, r1=x.
			p2x := s.ReadWord(litOut + 2*8)
			p2y := s.ReadWord(litOut + 2*8 + 4)
			p3y := s.ReadWord(litOut + 3*8)
			p3x := s.ReadWord(litOut + 3*8 + 4)
			if p2x == 1 && p2y == 0 && p3y == 1 && p3x == 0 {
				t.Fatalf("%v cfg %d: forbidden IRIW outcome (readers disagree on store order)", pc, i)
			}
		}
	}
}
