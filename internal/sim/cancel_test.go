package sim_test

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"testing"

	"github.com/gtsc-sim/gtsc/internal/checkpoint"
	"github.com/gtsc-sim/gtsc/internal/diag"
	"github.com/gtsc-sim/gtsc/internal/workload"
)

// TestCancellationSuspendsAndResumes pins the graceful-shutdown
// contract end to end: canceling the context mid-kernel surfaces a
// typed *diag.CanceledError carrying the suspension coordinate, the
// machine stays paused (nothing is torn down), and resuming with a
// live context completes the run bit-identically to the golden
// uninterrupted fingerprint — cancellation is pure suspension, not a
// different execution.
func TestCancellationSuspendsAndResumes(t *testing.T) {
	row := goldenRows[0]
	wls := map[string]*workload.Workload{}
	for _, wl := range workload.All() {
		wls[wl.Name] = wl
	}
	wl, ok := wls[row.workload]
	if !ok {
		t.Fatalf("unknown workload %q", row.workload)
	}
	cfg, ok := goldenConfig(row.config)
	if !ok {
		t.Fatalf("unknown config label %q", row.config)
	}

	// Advance to somewhere inside the run, then hit it with an
	// already-canceled context: the engine must suspend at its next
	// poll point instead of completing.
	pause := 1 + row.cycles/2
	e := checkpoint.NewExecution(cfg, wl.Build(1), row.workload, 1)
	if _, paused, err := e.RunUntil(context.Background(), pause); err != nil || !paused {
		t.Fatalf("run to pause cycle %d: paused=%v err=%v", pause, paused, err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.Run(ctx)
	var ce *diag.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("canceled run returned %v, want *diag.CanceledError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("CanceledError does not unwrap to context.Canceled")
	}
	if ce.Kernel == "" || ce.Phase == "" {
		t.Errorf("suspension coordinate incomplete: %+v", ce)
	}
	if ce.Cycle < pause {
		t.Errorf("suspended at cycle %d, before the already-reached cycle %d", ce.Cycle, pause)
	}
	if !e.Sim().Paused() && e.Sim().KernelsDone() == 0 {
		t.Error("machine torn down by cancellation instead of suspended")
	}

	// The suspension is checkpointable like any other pause.
	if ck := e.Checkpoint(); ck.Cycle != ce.Cycle {
		t.Errorf("checkpoint cycle %d != suspension cycle %d", ck.Cycle, ce.Cycle)
	}

	// Resume with a live context: the run completes as if never touched.
	run, err := e.Run(context.Background())
	if err != nil {
		t.Fatalf("resume after cancellation: %v", err)
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", *run)
	if got := h.Sum64(); got != row.hash {
		t.Errorf("post-cancellation fingerprint %#x != golden %#x", got, row.hash)
	}
}
