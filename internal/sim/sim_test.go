package sim

import (
	"fmt"
	"testing"

	"github.com/gtsc-sim/gtsc/internal/check"
	"github.com/gtsc-sim/gtsc/internal/gpu"
	"github.com/gtsc-sim/gtsc/internal/mem"
	"github.com/gtsc-sim/gtsc/internal/memsys"
)

// smallConfig builds a modest machine so tests run fast: 4 SMs, 4 L2
// banks, small caches.
func smallConfig(p memsys.Protocol, c gpu.Consistency) Config {
	cfg := DefaultConfig()
	cfg.Mem.Protocol = p
	cfg.Mem.NumSMs = 4
	cfg.Mem.NumBanks = 4
	cfg.Mem.L1Sets = 8
	cfg.Mem.L1Ways = 2
	cfg.Mem.L1MSHRs = 8
	cfg.Mem.L2Sets = 32
	cfg.Mem.L2Ways = 4
	cfg.SM.Consistency = c
	cfg.MaxCycles = 5_000_000
	return cfg
}

// writeReadKernel has every thread store a unique value to its own
// word, fence, and load it back.
func writeReadKernel(base mem.Addr) *gpu.Kernel {
	addr := func(t *gpu.Thread) (mem.Addr, bool) {
		return base + mem.Addr(t.GTID*4), true
	}
	return &gpu.Kernel{
		Name: "write-read", CTAs: 4, WarpsPerCTA: 2, Regs: 4,
		ProgramFor: func(w *gpu.Warp) gpu.Program {
			return gpu.Seq(
				gpu.Store(addr, func(t *gpu.Thread) uint32 { return uint32(t.GTID) + 1 }),
				gpu.Fence(),
				gpu.Load(0, addr),
				gpu.Comp(3),
			)
		},
	}
}

func allConfigs() []struct {
	name string
	p    memsys.Protocol
	c    gpu.Consistency
} {
	return []struct {
		name string
		p    memsys.Protocol
		c    gpu.Consistency
	}{
		{"gtsc-sc", memsys.GTSC, gpu.SC},
		{"gtsc-rc", memsys.GTSC, gpu.RC},
		{"tc-sc", memsys.TC, gpu.SC},
		{"tc-rc", memsys.TC, gpu.RC},
		{"bl-sc", memsys.BL, gpu.SC},
		{"bl-rc", memsys.BL, gpu.RC},
		{"l1nc-sc", memsys.L1NC, gpu.SC},
		{"l1nc-rc", memsys.L1NC, gpu.RC},
	}
}

func TestWriteReadAllProtocols(t *testing.T) {
	const base = mem.Addr(0x10000)
	for _, tc := range allConfigs() {
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallConfig(tc.p, tc.c)
			rec := check.NewRecorder()
			cfg.Observer = rec
			s := New(cfg)
			kernel := writeReadKernel(base)
			run, err := s.Run(kernel)
			if err != nil {
				t.Fatal(err)
			}
			threads := kernel.CTAs * kernel.WarpsPerCTA * gpu.WarpWidth
			for i := 0; i < threads; i++ {
				got := s.ReadWord(base + mem.Addr(i*4))
				if got != uint32(i)+1 {
					t.Fatalf("word %d: got %d, want %d", i, got, i+1)
				}
			}
			loads, stores := check.Summary(rec.Ops())
			if wantAcc := threads / gpu.WarpWidth; loads < wantAcc || stores < wantAcc {
				t.Fatalf("observed %d loads, %d stores; want >= %d each", loads, stores, wantAcc)
			}
			if tc.p == memsys.GTSC {
				if v := check.CheckTimestampOrder(rec.Ops(), 5); len(v) > 0 {
					t.Fatalf("timestamp order violated: %v", v[0].Error())
				}
			}
			if run.Cycles == 0 || run.SM.InstrIssued == 0 {
				t.Fatalf("empty run stats: %+v", run)
			}
		})
	}
}

// conflictKernel makes every warp hammer a small shared region with
// read-modify-write traffic — a protocol stress test.
func conflictKernel(base mem.Addr, iters, sharedWords int) *gpu.Kernel {
	addr := func(t *gpu.Thread) (mem.Addr, bool) {
		// All CTAs collide over sharedWords words.
		return base + mem.Addr((t.GTID%sharedWords)*4), true
	}
	return &gpu.Kernel{
		Name: "conflict", CTAs: 4, WarpsPerCTA: 2, Regs: 4, NeedsCoherence: true,
		ProgramFor: func(w *gpu.Warp) gpu.Program {
			return &gpu.LoopProgram{
				Iters: iters,
				Body: func(iter int) []*gpu.Instr {
					return []*gpu.Instr{
						gpu.Load(0, addr),
						gpu.Comp(2),
						gpu.Store(addr, func(t *gpu.Thread) uint32 {
							return t.Regs[0] + 1
						}, 0),
						gpu.Fence(),
					}
				},
			}
		},
	}
}

func TestConflictStress(t *testing.T) {
	const base = mem.Addr(0x40000)
	for _, tc := range allConfigs() {
		if tc.p == memsys.L1NC {
			continue // non-coherent L1 is not expected to survive sharing
		}
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallConfig(tc.p, tc.c)
			rec := check.NewRecorder()
			cfg.Observer = rec
			s := New(cfg)
			if _, err := s.Run(conflictKernel(base, 6, 16)); err != nil {
				t.Fatal(err)
			}
			if tc.p == memsys.GTSC {
				if v := check.CheckTimestampOrder(rec.Ops(), 3); len(v) > 0 {
					t.Fatalf("timestamp order violated: %v", v[0].Error())
				}
				if tc.c == gpu.SC {
					if errs := check.CheckWarpMonotonic(rec.Ops()); len(errs) > 0 {
						t.Fatalf("warp timestamps not monotonic under SC: %v", errs[0])
					}
				}
			}
			if tc.p == memsys.BL || (tc.p == memsys.TC && tc.c == gpu.SC) {
				if v := check.CheckPhysical(rec.Ops(), 3); len(v) > 0 {
					t.Fatalf("physical order violated: %v", v[0].Error())
				}
			}
		})
	}
}

// TestBackToBackKernels runs two dependent kernels and checks the
// second sees the first's output through the kernel-boundary flush.
func TestBackToBackKernels(t *testing.T) {
	const base = mem.Addr(0x80000)
	addr := func(t *gpu.Thread) (mem.Addr, bool) { return base + mem.Addr(t.GTID*4), true }
	k1 := &gpu.Kernel{
		Name: "producer", CTAs: 2, WarpsPerCTA: 1, Regs: 2,
		ProgramFor: func(w *gpu.Warp) gpu.Program {
			return gpu.Seq(gpu.Store(addr, func(t *gpu.Thread) uint32 { return uint32(t.GTID) * 3 }))
		},
	}
	k2 := &gpu.Kernel{
		Name: "consumer", CTAs: 2, WarpsPerCTA: 1, Regs: 2,
		ProgramFor: func(w *gpu.Warp) gpu.Program {
			return gpu.Seq(
				gpu.Load(0, addr),
				gpu.Store(func(t *gpu.Thread) (mem.Addr, bool) {
					return base + mem.Addr(0x1000) + mem.Addr(t.GTID*4), true
				}, func(t *gpu.Thread) uint32 { return t.Regs[0] + 7 }, 0),
			)
		},
	}
	for _, tc := range allConfigs() {
		t.Run(tc.name, func(t *testing.T) {
			s := New(smallConfig(tc.p, tc.c))
			if _, err := s.Run(k1); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Run(k2); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 2*gpu.WarpWidth; i++ {
				got := s.ReadWord(base + 0x1000 + mem.Addr(i*4))
				want := uint32(i)*3 + 7
				if got != want {
					t.Fatalf("thread %d: got %d, want %d", i, got, want)
				}
			}
		})
	}
}

func ExampleRunToCompletion() {
	cfg := smallConfig(memsys.GTSC, gpu.RC)
	run, err := RunToCompletion(cfg, writeReadKernel(0x1000))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(run.Kernel, run.Protocol, run.Consistency, run.Cycles > 0)
	// Output: write-read G-TSC RC true
}
