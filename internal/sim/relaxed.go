// The relaxed-synchronization (bounded-slack) cycle engine.
//
// The bit-exact engines synchronize every component every cycle (or
// prove whole windows inert before skipping them). This engine — the
// structure of "Parallelizing a modern GPU simulator" (arXiv
// 2502.14691) — instead partitions the machine into domains that
// share no mutable state mid-epoch:
//
//   - one domain per SM: the SM plus its private L1 (SM domains run
//     concurrently on the worker pool when GOMAXPROCS allows);
//   - the shared side — the NoC, every L2 bank, and every DRAM
//     partition — which never runs inside an epoch at all: it is
//     simulated cycle-exactly by the master during the barrier's
//     coupling phase (memsys.RelaxedExchange), in canonical order,
//     which keeps the shared G-TSC reset controller and the
//     functional backing store deterministic without locks.
//
// Each SM domain free-runs up to SlackCycles cycles, capturing every
// outbound NoC injection in a cycle-tagged epoch buffer. At the epoch
// barrier the master replays the whole shared side over the window —
// injecting buffered requests at their tagged cycles, ticking the
// banks so those requests are serviced at their true arrival cycles,
// and putting the responses on the wire within the same window — then
// commits deferred CTA refills in SM order and merges staged
// observations in canonical cycle order. The schedule of every domain
// therefore depends only on its own state and the barrier-delivered
// inputs — never on goroutine interleaving — so a relaxed run is
// deterministic at any worker count, including serial (GOMAXPROCS=1),
// where the same epoch structure is executed inline and still wins by
// amortizing per-cycle engine bookkeeping over whole epochs.
//
// What slack perturbs, and what it cannot (DESIGN.md §7 carries the
// full argument): an SM's outbound request is replayed at its true
// cycle and its response comes back cycle-exactly, but the SM only
// *observes* the response at the next barrier, so each dependent
// round trip stretches by at most one epoch-boundary rounding;
// barrier replay into a full port adds queueing the sender never saw.
// Both are pure added latency on coherence traffic — the same
// perturbation class the chaos fault plans inject deliberately — and
// every protocol here is latency-tolerant by construction, so final
// memory state, workload verification, and coherence invariants are
// preserved exactly while cycle counts drift boundedly. At
// SlackCycles=0 this engine never engages and the golden-pinned
// bit-exact engines run unchanged.
package sim

import (
	"context"

	"github.com/gtsc-sim/gtsc/internal/gpu"
)

// relaxFine is the delivery-horizon rounding grid: when a response is
// in flight, epoch barriers land on multiples of this (phase-anchored)
// instead of the full SlackCycles grid. 8 sits at the measured knee of
// the barrier-cost vs observation-latency tradeoff: at slack 32 it
// halves the mean cycle deviation (8.5% -> 4.3% on the Fig-12 grid)
// with no measurable wall-time cost.
const relaxFine = 8

// relaxedState is the relaxed engine's per-simulator bookkeeping,
// lazily allocated on the first relaxed phase and reused across
// kernels.
type relaxedState struct {
	pool *tickPool // domain pool (nil when effective workers == 1)

	// Epoch window published to the domain runners before the pool
	// barrier (the epoch bump's release/acquire pair orders it).
	from uint64

	// Per-SM-domain scratch, each entry owned by whichever goroutine
	// runs that domain this epoch.
	smTicks   []uint64
	smSkipped []uint64
	asleep    []bool           // domain slept through its last epoch tail...
	probes    []gpu.StallProbe // ...justified by this probe...
	comps     []uint64         // ...taken at this sm.Completions() count

	// Shared-side (mem) cycle accounting from the barrier exchange
	// (master-owned).
	memTicks   uint64
	memSkipped uint64

	pl phaseLabels
}

// useRelaxed reports whether the next run phase executes bounded-slack
// epochs. Fault injection forces SlackCycles=0 semantics (SkipSafe is
// false under an injector): perturbation schedules are defined in
// terms of exact per-cycle interleaving, and the chaos harness pins
// bit-exact replay from a seed. Legacy-engine requests and
// DisableCycleSkip also disengage it — both demand per-cycle ticking.
func (s *Simulator) useRelaxed() bool {
	return s.Cfg.SlackCycles > 0 &&
		s.Cfg.Engine != EngineLegacy &&
		!s.Cfg.DisableCycleSkip &&
		s.Sys.SkipSafe()
}

func (s *Simulator) ensureRelaxed() *relaxedState {
	if s.rx != nil {
		return s.rx
	}
	n := len(s.SMs)
	s.rx = &relaxedState{
		smTicks:   make([]uint64, n),
		smSkipped: make([]uint64, n),
		asleep:    make([]bool, n),
		probes:    make([]gpu.StallProbe, n),
		comps:     make([]uint64, n),
	}
	return s.rx
}

// runPhaseRelaxed is the epoch loop. Epoch barriers sit on a fixed
// grid — multiples of SlackCycles from the phase start — so barrier
// positions are a function of machine state, never of scheduling.
// A pause (RunUntil stopAt) that lands mid-window clamps the current
// epoch to the stop cycle, inserting an extra exchange — an extra
// observation point — which perturbs the trajectory from there on in
// the same bounded, functionally-invisible way slack itself does
// (TestRelaxedPauseFunctionalEquivalence). Resuming continues the
// suspended trajectory exactly; checkpoint restore reproduces it by
// replaying the recorded pause schedule (Checkpoint.PauseCycles).
func (s *Simulator) runPhaseRelaxed(ctx context.Context, stopAt uint64) (bool, error) {
	st := s.cur
	rx := s.ensureRelaxed()
	slack := s.Cfg.SlackCycles

	// Relaxed phases never drain the wake agenda, so the ingress hooks
	// must be inert (same contract as the legacy loop).
	s.Sys.SetComponentWakes(false)
	s.Sys.RelaxedBegin()
	defer s.Sys.RelaxedEnd()
	for _, sm := range s.SMs {
		sm.SetDeferFills(true)
	}
	defer func() {
		for _, sm := range s.SMs {
			sm.SetDeferFills(false)
		}
	}()
	defer func() {
		for i := range rx.smTicks {
			s.eng.Relaxed.SMDomainCycles += rx.smTicks[i]
			s.eng.Relaxed.SMDomainSkipped += rx.smSkipped[i]
			rx.smTicks[i], rx.smSkipped[i] = 0, 0
		}
		s.eng.Relaxed.MemDomainCycles += rx.memTicks
		s.eng.Relaxed.MemDomainSkipped += rx.memSkipped
		rx.memTicks, rx.memSkipped = 0, 0
	}()

	domains := len(s.SMs) // the shared side runs at the barrier, not in the pool
	workers := s.effectiveWorkers()
	if workers > 1 {
		rx.pool = newWorkPool(domains, workers, s.relaxedDomain)
		defer func() {
			rx.pool.shutdown()
			rx.pool = nil
		}()
	}
	s.eng.Workers = workers
	s.eng.Relaxed.SlackCycles = slack
	if s.eng.Relaxed.DomainEpochs == nil {
		// +1: the final entry counts barrier exchanges that ticked the
		// shared mem side at least once.
		s.eng.Relaxed.DomainEpochs = make([]uint64, domains+1)
	}
	rx.pl = s.newPhaseLabels()
	defer rx.pl.clear()

	for {
		if stopAt != 0 && s.now >= stopAt {
			return true, nil
		}
		if ctx.Err() != nil {
			return true, s.canceled(ctx, "run")
		}
		if s.budgetExhausted(s.now - st.start) {
			return false, s.deadlock(st.kernel.Name, "run", "max-cycles", s.now-st.lastProgress)
		}

		// This epoch ends at the next grid barrier, clamped to the
		// budget and the pause point (clamped barriers are not grid
		// barriers: they exchange traffic but commit nothing).
		from := s.now
		to := st.start + ((from-st.start)/slack+1)*slack
		grid := true
		// Delivery-horizon pull-in: when an L1-bound response is in
		// flight, end the window at its (sound lower bound) arrival
		// cycle instead of the full slack bound, rounded up to the
		// fine grid so barrier positions stay phase-anchored (pause
		// and worker-count determinism). This caps the latency a
		// round trip gains from free-running at relaxFine instead of
		// SlackCycles, which is what keeps cycle deviation flat as
		// slack grows. The horizon is a function of barrier-time
		// machine state only, so the pulled barrier is as
		// deterministic as the grid itself.
		if slack > relaxFine {
			if d := s.Sys.RelaxedDeliveryHorizon(from); d < to {
				if t := st.start + ((max(d, from+1)-1-st.start)/relaxFine+1)*relaxFine; t < to {
					to, grid = t, false
				}
			}
		}
		if budget := st.start + s.Cfg.MaxCycles; to > budget {
			to, grid = budget, false
		}
		if stopAt != 0 && to > stopAt {
			to, grid = stopAt, false
		}

		// Domain-run phase: every domain free-runs (from, to].
		rx.from = from
		rx.pl.set(rx.pl.domainRun)
		if rx.pool != nil {
			rx.pool.tick(to, nil)
		} else {
			for d := 0; d < domains; d++ {
				s.relaxedDomain(d, to)
			}
		}

		// Epoch barrier: simulate the shared side (NoC + L2 banks +
		// DRAM) cycle-exactly over the window, land the global clock,
		// then (grid barriers only) commit deferred CTA refills in
		// canonical SM order.
		rx.pl.set(rx.pl.exchange)
		injected, held, mticks, mskipped := s.Sys.RelaxedExchange(from, to)
		rx.pl.set(rx.pl.barrier)
		s.now = to
		s.eng.Relaxed.Epochs++
		s.eng.Relaxed.ExchangedMsgs += uint64(injected)
		s.eng.Relaxed.HeldMsgs += uint64(held)
		rx.memTicks += mticks
		rx.memSkipped += mskipped
		if mticks > 0 {
			s.eng.Relaxed.DomainEpochs[len(s.SMs)]++
		}
		if grid {
			for i, sm := range s.SMs {
				if sm.PendingFill() {
					// New CTAs invalidate the domain's stall probe.
					rx.asleep[i] = false
					sm.CommitFill()
				}
			}
		}
		s.Sys.RelaxedFlushObs()

		if err := s.Sys.Err(); err != nil {
			return false, s.attachDump(err)
		}
		if s.done() {
			return false, nil
		}
		if grid && !s.Cfg.DisableWatchdog {
			if sig := s.progressSig(); sig != st.lastSig {
				st.lastSig = sig
				st.lastProgress = s.now
			} else if s.now-st.lastProgress >= s.Cfg.WatchdogWindow {
				return false, s.deadlock(st.kernel.Name, "run", "no-forward-progress", s.now-st.lastProgress)
			}
		}
	}
}

// relaxedDomain runs one SM domain through the published epoch window
// — the pool work function (also called inline when serial).
func (s *Simulator) relaxedDomain(d int, to uint64) {
	rx := s.rx
	rx.pl.set(rx.pl.domainRun)
	s.relaxedRunSM(d, rx.from, to)
}

// relaxedRunSM free-runs SM domain i over (from, to]. Mid-epoch the
// domain is closed — deliveries only land at barriers — so a stall
// probe taken here stays valid until its wake cycle or the epoch end.
// A probe that outlives the epoch (asleep) stays valid into the next
// epoch unless the barrier woke the domain: a delivery completed an
// SM access (L1 responses are processed synchronously at Deliver, so
// the signal is sm.Completions() moving, exactly as in the event
// engine), left the L1 with queued work (non-quiescent), or committed
// a CTA refill (checked at the barrier itself).
func (s *Simulator) relaxedRunSM(i int, from, to uint64) {
	rx := s.rx
	sm, l1 := s.SMs[i], s.Sys.L1s[i]
	c := from
	if rx.asleep[i] {
		rx.asleep[i] = false
		if l1.Quiescent() && sm.Completions() == rx.comps[i] {
			// The barrier delivered nothing: the carried probe still
			// holds. Jump straight to its wake (or the epoch end).
			p := rx.probes[i]
			j := to
			if p.Wake-1 < j {
				j = p.Wake - 1
			}
			if j > c {
				sm.SkipCycles(j, j-c, p)
				l1.SyncClock(j)
				rx.smSkipped[i] += j - c
				c = j
			}
			if c >= to {
				rx.asleep[i] = true // slept through the whole epoch
				return
			}
		}
	}
	s.eng.Relaxed.DomainEpochs[i]++
	st := sm.Stats()
	for c < to {
		c++
		s.Sys.RelaxedTickL1(i, c)
		act := st.ActiveCycles
		sm.Tick(c)
		rx.smTicks[i]++
		if c >= to {
			break
		}
		// Stall-onset gate, as in the event engine: only a zero-issue
		// tick can begin a stall, so the warp-scanning probe is not
		// worth attempting while the SM is issuing.
		if st.ActiveCycles != act {
			continue
		}
		if !l1.Quiescent() {
			continue
		}
		p, ok := sm.Quiesce()
		if !ok {
			continue
		}
		j := to
		if p.Wake-1 < j {
			j = p.Wake - 1
		}
		if j <= c {
			continue
		}
		sm.SkipCycles(j, j-c, p)
		l1.SyncClock(j)
		rx.smSkipped[i] += j - c
		if j >= to {
			// The probe outlives the epoch: carry the sleep across the
			// barrier so the next epoch can fast-path.
			rx.asleep[i] = true
			rx.probes[i] = p
			rx.comps[i] = sm.Completions()
		}
		c = j
	}
}
