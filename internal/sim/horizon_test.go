package sim

import (
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"regexp"
	"testing"

	"github.com/gtsc-sim/gtsc/internal/coherence"
	"github.com/gtsc-sim/gtsc/internal/fault"
	"github.com/gtsc-sim/gtsc/internal/gpu"
	"github.com/gtsc-sim/gtsc/internal/memsys"
	"github.com/gtsc-sim/gtsc/internal/noc"
)

// TestHorizonClaimsSound is the property test behind every fast-forward
// the engines perform: a wake claim must never be early. Stepping a
// simulation one executed cycle at a time (skipping disabled, legacy
// loop), it records each cycle's claims — the hierarchy's NextEvent
// horizon and, when every SM probes quiescent, the machine-wide wake —
// and then asserts that nothing observable happened strictly before the
// claimed cycle: the progress signature (instructions, warp
// retirements, NoC and DRAM traffic) is frozen and the hierarchy's
// canonical state digest is bit-identical across the window. Both
// engines build their skip windows and agenda wakes from exactly these
// claims, so an overclaiming component would surface here as a state
// change inside a window it promised was inert.
func TestHorizonClaimsSound(t *testing.T) {
	cases := []struct {
		name   string
		proto  memsys.Protocol
		kernel *gpu.Kernel
	}{
		{"gtsc-conflict", memsys.GTSC, conflictKernel(0x60000, 4, 8)},
		{"gtsc-writeread", memsys.GTSC, writeReadKernel(0x50000)},
		{"dir-conflict", memsys.DIR, conflictKernel(0x61000, 4, 8)},
		{"tc-writeread", memsys.TC, writeReadKernel(0x52000)},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := smallConfig(tc.proto, gpu.RC)
			cfg.DisableCycleSkip = true // execute every cycle; claims are recorded, never acted on
			cfg.Engine = EngineLegacy
			s := New(cfg)
			ctx := context.Background()

			// The state digest includes each controller's local clock,
			// which advances on every Tick — including the provably
			// inert ticks inside a quiet window (a real skip re-syncs
			// those clocks with the same Sys.Tick call). Clocks are
			// schedule, not state; strip them before comparing.
			clocks := regexp.MustCompile(` now=\d+`)
			digest := func() uint64 {
				var buf bytes.Buffer
				s.Sys.DigestState(&buf)
				h := fnv.New64a()
				h.Write(clocks.ReplaceAll(buf.Bytes(), nil))
				return h.Sum64()
			}
			type claim struct {
				at    uint64 // cycle the claim was made
				until uint64 // earliest cycle anything may happen
				sig   uint64 // progress signature at claim time
				hier  uint64 // hierarchy digest at claim time
			}
			var c *claim
			windows := 0

			step := func(first bool) bool {
				var paused bool
				var err error
				if first {
					_, paused, err = s.RunUntil(ctx, tc.kernel, s.now+1)
				} else {
					_, paused, err = s.Resume(ctx, s.now+1)
				}
				if err != nil {
					t.Fatalf("step to cycle %d: %v", s.now+1, err)
				}
				return paused
			}

			for i := 0; ; i++ {
				if i > 100_000 {
					t.Fatal("step budget exhausted")
				}
				if !step(i == 0) {
					break // kernel completed
				}
				// Verify the outstanding claim before anything else: we
				// are now strictly inside (c.at, c.until), so the machine
				// must not have moved.
				if c != nil && s.now < c.until {
					if got := s.progressSig(); got != c.sig {
						t.Fatalf("progress signature changed at cycle %d inside claimed-quiet window (%d, %d)",
							s.now, c.at, c.until)
					}
					if got := digest(); got != c.hier {
						t.Fatalf("hierarchy state changed at cycle %d inside claimed-quiet window (%d, %d)",
							s.now, c.at, c.until)
					}
					continue // claim still standing; no need to re-probe
				}
				c = nil
				horizon := s.Sys.NextEvent(s.now)
				m := horizon
				if s.cur != nil && s.cur.phase == phaseRun {
					// SMs tick in this phase, so a machine-wide claim also
					// needs every SM provably stalled until the window ends.
					for _, sm := range s.SMs {
						p, ok := sm.Quiesce()
						if !ok {
							m = s.now + 1
							break
						}
						m = min(m, p.Wake)
					}
				}
				if m > s.now+1 {
					c = &claim{at: s.now, until: m, sig: s.progressSig(), hier: digest()}
					windows++
				}
			}
			if windows == 0 {
				t.Fatal("no quiet window was ever claimed; the property test is vacuous")
			}
		})
	}
}

// TestComponentWakeClaimsSound is the per-component refinement of
// TestHorizonClaimsSound: the property behind TickDue's dispatch
// decisions. The wholesale horizon test proves the MACHINE-wide claim;
// this one probes each component's LOCAL claim — the exact contract the
// per-component dispatcher sleeps on:
//
//   - an L1/L2 reporting Quiescent() promises Tick at any future cycle
//     is a pure no-op until new input arrives;
//   - the NoC's NextWork(now) promises Tick on any earlier cycle only
//     advances its clock;
//   - a DRAM partition's NextEvent(now) promises the same with no clock
//     at all.
//
// Stepping a simulation one executed cycle at a time (legacy loop,
// skipping disabled), every component currently claiming quiet is
// given an EXTRA Tick one cycle in the future, its clock is restored
// with SyncClock/Sync, and its canonical state digest must be
// bit-identical — so each probe is also provably invisible to the
// ongoing run, and the run doubles as millions of adversarial inputs.
// An overclaiming component fails here with its name and cycle rather
// than as a fingerprint mismatch 80 tests later.
func TestComponentWakeClaimsSound(t *testing.T) {
	cases := []struct {
		name   string
		proto  memsys.Protocol
		kernel *gpu.Kernel
	}{
		{"gtsc-conflict", memsys.GTSC, conflictKernel(0x60000, 4, 8)},
		{"gtsc-writeread", memsys.GTSC, writeReadKernel(0x50000)},
		{"dir-conflict", memsys.DIR, conflictKernel(0x61000, 4, 8)},
		{"tc-writeread", memsys.TC, writeReadKernel(0x52000)},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := smallConfig(tc.proto, gpu.RC)
			cfg.DisableCycleSkip = true
			cfg.Engine = EngineLegacy
			s := New(cfg)
			ctx := context.Background()

			// Component clocks advance on the probe tick by design;
			// SyncClock restores them, and the comparison strips them
			// anyway (clocks are schedule, not state).
			clocks := regexp.MustCompile(` now=\d+`)
			digest := func(d coherence.StateDigester) uint64 {
				var buf bytes.Buffer
				d.DigestState(&buf)
				h := fnv.New64a()
				h.Write(clocks.ReplaceAll(buf.Bytes(), nil))
				return h.Sum64()
			}

			covered := map[string]int{}
			step := func(first bool) bool {
				var paused bool
				var err error
				if first {
					_, paused, err = s.RunUntil(ctx, tc.kernel, s.now+1)
				} else {
					_, paused, err = s.Resume(ctx, s.now+1)
				}
				if err != nil {
					t.Fatalf("step to cycle %d: %v", s.now+1, err)
				}
				return paused
			}
			for i := 0; ; i++ {
				if i > 100_000 {
					t.Fatal("step budget exhausted")
				}
				if !step(i == 0) {
					break // kernel completed
				}
				// Every component ticked at s.now; probe one cycle ahead.
				probe := s.now + 1
				sys := s.Sys
				for j, l1 := range sys.L1s {
					if !l1.Quiescent() {
						continue
					}
					d := l1.(coherence.StateDigester)
					before := digest(d)
					l1.Tick(probe)
					l1.SyncClock(s.now)
					if digest(d) != before {
						t.Fatalf("l1[%d] claimed Quiescent at cycle %d but Tick(%d) changed state", j, s.now, probe)
					}
					covered["l1"]++
				}
				for j, l2 := range sys.L2s {
					if !l2.Quiescent() {
						continue
					}
					d := l2.(coherence.StateDigester)
					before := digest(d)
					l2.Tick(probe)
					l2.SyncClock(s.now)
					if digest(d) != before {
						t.Fatalf("l2[%d] claimed Quiescent at cycle %d but Tick(%d) changed state", j, s.now, probe)
					}
					covered["l2"]++
				}
				if sys.Net.NextWork(s.now) > probe {
					before := digest(sys.Net)
					sys.Net.Tick(probe)
					sys.Net.Sync(s.now)
					if digest(sys.Net) != before {
						t.Fatalf("noc claimed NextWork beyond %d at cycle %d but Tick(%d) changed state", probe, s.now, probe)
					}
					covered["noc"]++
				}
				for j, p := range sys.Parts {
					if p.NextEvent(s.now) <= probe {
						continue
					}
					before := digest(p)
					p.Tick(probe)
					if digest(p) != before {
						t.Fatalf("dram[%d] claimed NextEvent beyond %d at cycle %d but Tick(%d) changed state", j, probe, s.now, probe)
					}
					covered["dram"]++
				}
			}
			for _, class := range []string{"l1", "l2", "noc", "dram"} {
				if covered[class] == 0 {
					t.Errorf("component class %q never claimed a quiet cycle; its half of the property test is vacuous", class)
				}
			}
		})
	}
}

// TestChaosNeverTrustsHorizons pins the soundness story under fault
// injection: delay shims hold messages on release schedules the
// next-event query does not model, so under an active injector the
// hierarchy must bound every horizon claim at now+1 and the engines
// must never fast-forward or use the agenda — even with cycle skipping
// nominally enabled and the event engine requested. The perturbed run
// must then be bit-identical to the same seed executed on the legacy
// loop with skipping disabled outright, proving the fallback is a pure
// scheduling decision.
func TestChaosNeverTrustsHorizons(t *testing.T) {
	for _, seed := range faultSeeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			newCfg := func() Config {
				cfg := smallConfig(memsys.GTSC, gpu.RC)
				cfg.Mem.NoC = noc.Config{Latency: 4, InjectQueue: 8}
				cfg.Mem.Fault = fault.Chaos(seed)
				return cfg
			}

			cfg := newCfg()
			cfg.Engine = EngineEvent // request it; the engine must refuse
			s := New(cfg)
			if got := s.Sys.NextEvent(123); got != 124 {
				t.Fatalf("faulted hierarchy claimed horizon %d from cycle 123, want 124", got)
			}
			run, err := s.Run(conflictKernel(0x60000, 4, 8))
			if err != nil {
				t.Fatal(err)
			}
			if s.eng.EventCycles != 0 {
				t.Errorf("event engine dispatched %d cycles under fault injection", s.eng.EventCycles)
			}
			if skipped := s.eng.SkippedCycles(); skipped != 0 {
				t.Errorf("engine skipped %d cycles under fault injection", skipped)
			}
			if ticks, sleeps := s.eng.Comp.HierarchyTicks(), s.eng.Comp.HierarchySleeps(); ticks != 0 || sleeps != 0 {
				t.Errorf("per-component dispatch ran under fault injection (%d ticks, %d sleeps); perturbed runs must tick the hierarchy wholesale", ticks, sleeps)
			}

			refCfg := newCfg()
			refCfg.Engine = EngineLegacy
			refCfg.DisableCycleSkip = true
			ref, err := New(refCfg).Run(conflictKernel(0x60000, 4, 8))
			if err != nil {
				t.Fatal(err)
			}
			h1, h2 := fnv.New64a(), fnv.New64a()
			fmt.Fprintf(h1, "%+v", *run)
			fmt.Fprintf(h2, "%+v", *ref)
			if h1.Sum64() != h2.Sum64() {
				t.Error("chaos run under the refused event engine diverged from the explicit legacy run")
			}
		})
	}
}
