package sim_test

import (
	"fmt"
	"hash/fnv"
	"os"
	"strconv"
	"testing"

	"github.com/gtsc-sim/gtsc/internal/dram"
	"github.com/gtsc-sim/gtsc/internal/gpu"
	"github.com/gtsc-sim/gtsc/internal/memsys"
	"github.com/gtsc-sim/gtsc/internal/noc"
	"github.com/gtsc-sim/gtsc/internal/sim"
	"github.com/gtsc-sim/gtsc/internal/workload"
)

// goldenRow pins one (workload, machine config) simulation to the
// exact stats.Run it produced before the cycle-loop optimizations:
// the kernel cycle count, total NoC flits, and an FNV-1a hash over
// the full formatted stats.Run (every counter, including energy).
// Regenerate with `go run ./internal/sim/goldengen` ONLY when the
// simulated machine's intended behaviour changes.
type goldenRow struct {
	workload string
	config   string
	cycles   uint64
	flits    uint64
	hash     uint64
}

var goldenRows = []goldenRow{
	{"BH", "gtsc-rc", 6776, 5242, 0x7726666545ba25d4},
	{"BH", "gtsc-sc", 8831, 5386, 0x3a29b989a1aa8b45},
	{"BH", "gtsc-tso", 8831, 5386, 0x8f92698ad955576},
	{"BH", "tc-rc", 15502, 7654, 0xc260e8d8ec002698},
	{"BH", "bl-rc", 6878, 8612, 0x8f08490c5c876f1c},
	{"BH", "dir-rc", 7401, 5048, 0x6305156f7f0f0f6e},
	{"BH", "gtsc-rc-mesh-banked", 5809, 5306, 0x6da0a333f429a1c3},
	{"BH", "gtsc-rc-ts8", 7019, 7054, 0x7dc0ab7126e8ae34},
	{"CC", "gtsc-rc", 7802, 7686, 0x4bc32a5670c84930},
	{"CC", "gtsc-sc", 9483, 8716, 0x94abb28b87adfd74},
	{"CC", "gtsc-tso", 9483, 8716, 0x305b4b1790ee6f9f},
	{"CC", "tc-rc", 12675, 10426, 0xf736afa70de75070},
	{"CC", "bl-rc", 11585, 37860, 0x2703b8ee13c7a818},
	{"CC", "dir-rc", 8370, 7332, 0x1fabaf9cd68cd46b},
	{"CC", "gtsc-rc-mesh-banked", 7249, 8300, 0x98df71c459bf5e48},
	{"CC", "gtsc-rc-ts8", 8743, 13346, 0x60a2b1379c527bd6},
	{"DLP", "gtsc-rc", 11333, 11064, 0x5e26c33d670acaca},
	{"DLP", "gtsc-sc", 14352, 11930, 0x30c93daee2acf2c1},
	{"DLP", "gtsc-tso", 14352, 11930, 0x3a4e61a88cc157c9},
	{"DLP", "tc-rc", 21099, 17856, 0x33c0059f27c84db},
	{"DLP", "bl-rc", 15427, 43628, 0xc2b61a5354f25d87},
	{"DLP", "dir-rc", 13082, 10098, 0x477fddb453c28542},
	{"DLP", "gtsc-rc-mesh-banked", 10264, 11222, 0xb9430ac7a33e1979},
	{"DLP", "gtsc-rc-ts8", 12923, 20772, 0xb55fdcdf7472d132},
	{"VPR", "gtsc-rc", 7463, 6692, 0x465b60893b41c502},
	{"VPR", "gtsc-sc", 8644, 6978, 0x3cfae48369f860be},
	{"VPR", "gtsc-tso", 8644, 6978, 0xb2ab0f26fe84dff3},
	{"VPR", "tc-rc", 13680, 10216, 0x7b41dbf1b163940d},
	{"VPR", "bl-rc", 10549, 27200, 0x9318f8f4f452eaab},
	{"VPR", "dir-rc", 8971, 6252, 0x52fb3d6722bf2016},
	{"VPR", "gtsc-rc-mesh-banked", 6946, 7176, 0xa970bf8051046253},
	{"VPR", "gtsc-rc-ts8", 7988, 10754, 0x217d0ec80de66571},
	{"STN", "gtsc-rc", 9970, 9192, 0x483387e10a4014e9},
	{"STN", "gtsc-sc", 11168, 9624, 0xaffde62c14468f89},
	{"STN", "gtsc-tso", 11168, 9624, 0x98a43cad3a2d4e70},
	{"STN", "tc-rc", 19815, 11062, 0x1153cbe12f4a96a6},
	{"STN", "bl-rc", 12112, 21842, 0x6fb01a18f25c5fe5},
	{"STN", "dir-rc", 10238, 10674, 0xb373f23c69254fa0},
	{"STN", "gtsc-rc-mesh-banked", 8226, 9502, 0x283855ae09d6fdec},
	{"STN", "gtsc-rc-ts8", 9811, 11180, 0xfb88be878885e392},
	{"BFS", "gtsc-rc", 7908, 9246, 0xb6e2f2d0540159ee},
	{"BFS", "gtsc-sc", 9672, 9736, 0xacdb07e9f2b79f0},
	{"BFS", "gtsc-tso", 9672, 9736, 0x8e1e71f9b4de2f71},
	{"BFS", "tc-rc", 10910, 12522, 0x6ea08c1a06f36183},
	{"BFS", "bl-rc", 14308, 50240, 0x12a3a7045aa146d2},
	{"BFS", "dir-rc", 7306, 6592, 0xe9515e7f0a69dc87},
	{"BFS", "gtsc-rc-mesh-banked", 8207, 9966, 0x81a18f276ce85076},
	{"BFS", "gtsc-rc-ts8", 8358, 16428, 0xee9af758b327aea3},
	{"CCP", "gtsc-rc", 778, 480, 0x853696a830e03eb6},
	{"CCP", "gtsc-sc", 790, 480, 0x6d39919ae8a042e6},
	{"CCP", "gtsc-tso", 790, 480, 0x2e7afad54b0b4e22},
	{"CCP", "tc-rc", 778, 480, 0xa85b0ee1b7c51239},
	{"CCP", "bl-rc", 1722, 6048, 0x1ad6c2384152cac1},
	{"CCP", "dir-rc", 804, 512, 0x86ef910648b2d3d4},
	{"CCP", "gtsc-rc-mesh-banked", 1407, 480, 0xfb360e015d0bf480},
	{"CCP", "gtsc-rc-ts8", 778, 480, 0x853696a830e03eb6},
	{"GE", "gtsc-rc", 3602, 2720, 0x4bf7383440306b44},
	{"GE", "gtsc-sc", 4930, 2480, 0x40aa047658e62c7},
	{"GE", "gtsc-tso", 4819, 2752, 0x43f149a6b54aab79},
	{"GE", "tc-rc", 5383, 3120, 0xab46f564d5dca640},
	{"GE", "bl-rc", 3436, 5376, 0x3f606d26adce9448},
	{"GE", "dir-rc", 1966, 384, 0x9546be059a1897c5},
	{"GE", "gtsc-rc-mesh-banked", 2953, 2412, 0xefdc2c4e1e757afe},
	{"GE", "gtsc-rc-ts8", 3614, 2880, 0x1756577b221e1e72},
	{"HS", "gtsc-rc", 1064, 1024, 0x9f5e8f3cb594614a},
	{"HS", "gtsc-sc", 1064, 1024, 0x31c9254073469ee4},
	{"HS", "gtsc-tso", 1064, 1024, 0xf8a2f9c86c02908c},
	{"HS", "tc-rc", 1233, 1280, 0x2d3b632564198569},
	{"HS", "bl-rc", 1611, 2624, 0x3bf93eb7eec69716},
	{"HS", "dir-rc", 932, 384, 0xa45a9f19b52aa508},
	{"HS", "gtsc-rc-mesh-banked", 1545, 1024, 0x623b63c0efe4be83},
	{"HS", "gtsc-rc-ts8", 1064, 1024, 0x9f5e8f3cb594614a},
	{"KM", "gtsc-rc", 4578, 9312, 0x4d6f58dbf08b273f},
	{"KM", "gtsc-sc", 4578, 9312, 0x48a06eda7d74629c},
	{"KM", "gtsc-tso", 4578, 9312, 0xdec1d2ffbe93ef4c},
	{"KM", "tc-rc", 4578, 9312, 0x332f608ce1444ffd},
	{"KM", "bl-rc", 16741, 73824, 0x8b7b1db8a3db5023},
	{"KM", "dir-rc", 4909, 11360, 0x247b4f6f6cdd72f9},
	{"KM", "gtsc-rc-mesh-banked", 8489, 9312, 0x80130c3a252ebeb7},
	{"KM", "gtsc-rc-ts8", 4578, 9312, 0x4d6f58dbf08b273f},
	{"BP", "gtsc-rc", 3661, 2472, 0xa0f79597b8440c2a},
	{"BP", "gtsc-sc", 3960, 2472, 0xe3180b4283e4036d},
	{"BP", "gtsc-tso", 3960, 2472, 0x74df5c3d779aa738},
	{"BP", "tc-rc", 4235, 10320, 0x6a039ca9d1c7f6c5},
	{"BP", "bl-rc", 14542, 63840, 0xa51fa276e851fc3},
	{"BP", "dir-rc", 3656, 2426, 0xcca0bb32968253a0},
	{"BP", "gtsc-rc-mesh-banked", 4797, 2472, 0x5524cdeea69a9bc},
	{"BP", "gtsc-rc-ts8", 3661, 2472, 0xa0f79597b8440c2a},
	{"SGM", "gtsc-rc", 4279, 528, 0x96060b3ff98eb391},
	{"SGM", "gtsc-sc", 4575, 528, 0xbe8b893c7d9fd1e},
	{"SGM", "gtsc-tso", 4575, 528, 0x906c12ae91774b7a},
	{"SGM", "tc-rc", 4279, 864, 0x630a43e4c5eceada},
	{"SGM", "bl-rc", 4241, 3168, 0xc9f168e7ca2e5385},
	{"SGM", "dir-rc", 4306, 560, 0x3efea784ffaf36d1},
	{"SGM", "gtsc-rc-mesh-banked", 3793, 528, 0x788fa2aaaae58fd6},
	{"SGM", "gtsc-rc-ts8", 4279, 528, 0x96060b3ff98eb391},
}

// goldenConfig builds the benchmark machine for one golden row. The
// GTSC_ENGINE, GTSC_SIMWORKERS and GTSC_COMPONENT_WAKES environment
// variables override the engine scheduling knobs so CI can re-run the
// whole golden suite on every (engine, worker-count, dispatch-mode)
// matrix leg without duplicating the table; fingerprints are
// engine-independent by contract, so every leg asserts against the
// same hashes.
func goldenConfig(label string) (sim.Config, bool) {
	cfg := sim.DefaultConfig()
	cfg.Mem.NumSMs = 4
	cfg.Mem.NumBanks = 4
	if v := os.Getenv("GTSC_ENGINE"); v != "" {
		mode, err := sim.ParseEngineMode(v)
		if err != nil {
			panic(err)
		}
		cfg.Engine = mode
	}
	if v := os.Getenv("GTSC_SIMWORKERS"); v != "" {
		w, err := strconv.Atoi(v)
		if err != nil {
			panic(fmt.Sprintf("GTSC_SIMWORKERS: %v", err))
		}
		cfg.SimWorkers = w
	}
	switch v := os.Getenv("GTSC_COMPONENT_WAKES"); v {
	case "", "on", "1":
		// default: per-component dispatch stays enabled
	case "off", "0":
		cfg.DisableComponentWakes = true
	default:
		panic(fmt.Sprintf("GTSC_COMPONENT_WAKES: want on/1/off/0, got %q", v))
	}
	// GTSC_SLACK pins SlackCycles, so CI can assert that slack 0 stays
	// bit-identical on every matrix leg. The golden hashes are only
	// valid at slack 0: nonzero slack deviates in timing by design
	// (functional equivalence is TestRelaxedSlackFunctionalEquivalence's
	// job, not this suite's).
	if v := os.Getenv("GTSC_SLACK"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			panic(fmt.Sprintf("GTSC_SLACK: %v", err))
		}
		cfg.SlackCycles = n
	}
	switch label {
	case "gtsc-rc":
		cfg.Mem.Protocol, cfg.SM.Consistency = memsys.GTSC, gpu.RC
	case "gtsc-sc":
		cfg.Mem.Protocol, cfg.SM.Consistency = memsys.GTSC, gpu.SC
	case "gtsc-tso":
		cfg.Mem.Protocol, cfg.SM.Consistency = memsys.GTSC, gpu.TSO
	case "tc-rc":
		cfg.Mem.Protocol, cfg.SM.Consistency = memsys.TC, gpu.RC
	case "bl-rc":
		cfg.Mem.Protocol, cfg.SM.Consistency = memsys.BL, gpu.RC
	case "dir-rc":
		cfg.Mem.Protocol, cfg.SM.Consistency = memsys.DIR, gpu.RC
	case "gtsc-rc-mesh-banked":
		cfg.Mem.Protocol, cfg.SM.Consistency = memsys.GTSC, gpu.RC
		cfg.Mem.NoC = noc.DefaultMeshConfig()
		cfg.Mem.DRAM = dram.DefaultBankedConfig()
	case "gtsc-rc-ts8":
		// 8-bit timestamp counters: the §V-D overflow reset fires
		// routinely, pinning the epoch-crossing paths bit-for-bit.
		cfg.Mem.Protocol, cfg.SM.Consistency = memsys.GTSC, gpu.RC
		cfg.Mem.GTSC.TSBits = 8
	default:
		return cfg, false
	}
	return cfg, true
}

// TestOptimizedCycleLoopBitIdentical proves the hot-path optimizations
// are deterministically equivalent: every workload under every
// protocol/consistency/topology combination must reproduce, bit for
// bit, the stats.Run recorded before the optimizations landed.
func TestOptimizedCycleLoopBitIdentical(t *testing.T) {
	wls := map[string]*workload.Workload{}
	for _, wl := range workload.All() {
		wls[wl.Name] = wl
	}
	for _, row := range goldenRows {
		row := row
		t.Run(row.workload+"/"+row.config, func(t *testing.T) {
			t.Parallel()
			wl, ok := wls[row.workload]
			if !ok {
				t.Fatalf("unknown workload %q", row.workload)
			}
			cfg, ok := goldenConfig(row.config)
			if !ok {
				t.Fatalf("unknown config label %q", row.config)
			}
			run, err := wl.Build(1).Run(cfg)
			if err != nil {
				t.Fatalf("run failed: %v", err)
			}
			if run.Cycles != row.cycles {
				t.Errorf("cycles = %d, golden %d", run.Cycles, row.cycles)
			}
			if got := run.NoC.TotalFlits(); got != row.flits {
				t.Errorf("total flits = %d, golden %d", got, row.flits)
			}
			h := fnv.New64a()
			fmt.Fprintf(h, "%+v", *run)
			if got := h.Sum64(); got != row.hash {
				t.Errorf("stats.Run fingerprint = %#x, golden %#x (full stats diverged)", got, row.hash)
			}
		})
	}
}
