package sim

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/gtsc-sim/gtsc/internal/check"
	"github.com/gtsc-sim/gtsc/internal/diag"
	"github.com/gtsc-sim/gtsc/internal/fault"
	"github.com/gtsc-sim/gtsc/internal/gpu"
	"github.com/gtsc-sim/gtsc/internal/mem"
	"github.com/gtsc-sim/gtsc/internal/memsys"
	"github.com/gtsc-sim/gtsc/internal/noc"
)

// faultSeeds are the fixed seeds the smoke suite replays. A failure
// reports the full plan; rerunning the test (or `gtscsim -faultseed
// <seed>`) reproduces the exact perturbation schedule.
var faultSeeds = []int64{1, 2, 3}

// faultProtocols lists every coherent protocol; the litmus assertions
// below run them under SC, where each one's forbidden outcomes are
// architecturally forbidden.
var faultProtocols = []struct {
	name string
	p    memsys.Protocol
}{
	{"gtsc", memsys.GTSC},
	{"tc", memsys.TC},
	{"bl", memsys.BL},
	{"dir", memsys.DIR},
}

// checkFaultInvariants applies the ordering rule that holds for the
// protocol under SC to a recorded log.
func checkFaultInvariants(t *testing.T, p memsys.Protocol, ops []check.Record) {
	t.Helper()
	var vio []check.Violation
	if p == memsys.GTSC {
		vio = check.CheckTimestampOrder(ops, 3)
	} else {
		vio = check.CheckPhysical(ops, 3)
	}
	if len(vio) > 0 {
		t.Fatalf("ordering invariant violated: %v", vio[0].Error())
	}
}

// TestLitmusUnderFaults runs the MP and SB litmus tests on every
// protocol under seeded chaos plans (delivery jitter, cross-pair
// reordering, injection rejects, DRAM spikes, timestamp stress). The
// forbidden outcomes must stay forbidden no matter how the fault
// schedule perturbs timing, and the recorded operation log must still
// satisfy the protocol's ordering invariant.
func TestLitmusUnderFaults(t *testing.T) {
	mp := litmusKernel("mp-faults",
		[]*gpu.Instr{
			gpu.Store(lane0(litX), func(*gpu.Thread) uint32 { return 1 }), // data
			gpu.Store(lane0(litY), func(*gpu.Thread) uint32 { return 1 }), // flag
		},
		[]*gpu.Instr{
			gpu.Load(0, lane0(litY)), // flag
			gpu.Load(1, lane0(litX)), // data
		})
	sb := litmusKernel("sb-faults",
		[]*gpu.Instr{
			gpu.Store(lane0(litX), func(*gpu.Thread) uint32 { return 1 }),
			gpu.Load(0, lane0(litY)),
		},
		[]*gpu.Instr{
			gpu.Store(lane0(litY), func(*gpu.Thread) uint32 { return 1 }),
			gpu.Load(0, lane0(litX)),
		})

	plans := []struct {
		name string
		mk   func(int64) fault.Config
	}{
		{"chaos", fault.Chaos},
		// Chaos plus forced mid-run §V-D rollovers: epochs churn on the
		// fault plan's schedule, not only at natural counter overflow.
		{"rollover", fault.ChaosRollover},
	}
	for _, pc := range faultProtocols {
		for _, plan := range plans {
			for _, seed := range faultSeeds {
				pc, plan, seed := pc, plan, seed
				t.Run(fmt.Sprintf("%s/%s/seed%d", pc.name, plan.name, seed), func(t *testing.T) {
					t.Parallel()
					newCfg := func() (Config, *check.Recorder) {
						cfg := smallConfig(pc.p, gpu.SC)
						cfg.Mem.NumSMs = 2
						cfg.Mem.NoC = noc.Config{Latency: 4, InjectQueue: 8}
						cfg.Mem.Fault = plan.mk(seed)
						rec := check.NewRecorder()
						cfg.Observer = rec
						return cfg, rec
					}

					cfg, rec := newCfg()
					r := runLitmus(t, cfg, mp)
					if flag, data := r[1][0], r[1][1]; flag == 1 && data == 0 {
						t.Fatalf("forbidden MP outcome flag=1,data=0 under [%s]", cfg.Mem.Fault)
					}
					checkFaultInvariants(t, pc.p, rec.Ops())

					cfg, rec = newCfg()
					r = runLitmus(t, cfg, sb)
					if r[0][0] == 0 && r[1][0] == 0 {
						t.Fatalf("forbidden SB outcome 0/0 under [%s]", cfg.Mem.Fault)
					}
					checkFaultInvariants(t, pc.p, rec.Ops())
				})
			}
		}
	}
}

// TestForcedRolloverFires pins the rollover plan's mechanism in
// isolation: a plan with ONLY RolloverEvery set (full-width counters,
// so no natural overflow is possible) must still drive §V-D resets on
// its schedule, the run must verify, and the schedule must replay
// exactly from its seed.
func TestForcedRolloverFires(t *testing.T) {
	run := func() (uint64, uint64) {
		cfg := smallConfig(memsys.GTSC, gpu.SC)
		cfg.Mem.Fault = fault.Config{Seed: 11, RolloverEvery: 600, RolloverJitter: 200}
		rec := check.NewRecorder()
		cfg.Observer = rec
		s := New(cfg)
		r, err := s.Run(conflictKernel(0x80000, 64, 16))
		if err != nil {
			t.Fatal(err)
		}
		if vio := check.CheckTimestampOrder(rec.Ops(), 3); len(vio) > 0 {
			t.Fatalf("ordering invariant violated under forced rollover: %v", vio[0].Error())
		}
		return s.Sys.Resets.Resets(), r.Cycles
	}
	resets, cycles := run()
	if resets == 0 {
		t.Fatalf("no §V-D reset fired in %d cycles despite RolloverEvery=600", cycles)
	}
	resets2, cycles2 := run()
	if resets != resets2 || cycles != cycles2 {
		t.Fatalf("same rollover seed diverged: resets %d/%d cycles %d/%d",
			resets, resets2, cycles, cycles2)
	}
}

// TestInjectQueueOne pins the NoC injection queue to a single entry —
// maximal backpressure on every controller's retry path — and runs the
// shared-region stress kernel on all four protocols. The run must
// complete and the ordering invariants must hold.
func TestInjectQueueOne(t *testing.T) {
	const base = mem.Addr(0x40000)
	for _, pc := range faultProtocols {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			t.Parallel()
			cfg := smallConfig(pc.p, gpu.SC)
			cfg.Mem.NoC = noc.Config{Latency: 4, InjectQueue: 1}
			rec := check.NewRecorder()
			cfg.Observer = rec
			s := New(cfg)
			if _, err := s.Run(conflictKernel(base, 4, 8)); err != nil {
				t.Fatal(err)
			}
			if rec.Len() == 0 {
				t.Fatal("no operations observed")
			}
			checkFaultInvariants(t, pc.p, rec.Ops())
		})
	}
}

// TestWedgedRunProducesDeadlock wedges the machine outright — every
// NoC injection attempt is rejected, so no memory request ever leaves
// an L1 — and asserts the forward-progress watchdog converts the hang
// into a structured DeadlockError with a populated machine-state dump,
// long before the MaxCycles budget would expire.
func TestWedgedRunProducesDeadlock(t *testing.T) {
	cfg := smallConfig(memsys.GTSC, gpu.RC)
	cfg.Mem.Fault = fault.Config{Seed: 7, RejectProb: 1.0}
	cfg.WatchdogWindow = 2_000
	_, err := New(cfg).Run(writeReadKernel(0x50000))
	if err == nil {
		t.Fatal("wedged run completed")
	}
	var de *diag.DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("want DeadlockError, got %T: %v", err, err)
	}
	if de.Reason != "no-forward-progress" {
		t.Fatalf("reason = %q, want no-forward-progress", de.Reason)
	}
	if de.StalledFor < cfg.WatchdogWindow {
		t.Fatalf("stalled %d cycles, want >= %d", de.StalledFor, cfg.WatchdogWindow)
	}
	if de.Cycle > 200_000 {
		t.Fatalf("watchdog fired at cycle %d; should trip shortly after the %d-cycle window",
			de.Cycle, cfg.WatchdogWindow)
	}
	if de.Dump == nil {
		t.Fatal("no machine-state dump attached")
	}
	text := de.Dump.String()
	if !strings.Contains(text, "machine state") || !strings.Contains(text, "end state") {
		t.Fatalf("dump not rendered:\n%s", text)
	}
	if len(de.Dump.SMs) == 0 {
		t.Fatal("dump has no SM states")
	}
	if de.Dump.Faults == "" {
		t.Fatal("dump does not record the active fault plan")
	}
}

// TestProtocolErrorCarriesDump injects a message outside the G-TSC
// state machine (a directory-only invalidation) and asserts the run
// fails with a typed ProtocolError naming the component and event, and
// carrying the machine-state dump — instead of panicking.
func TestProtocolErrorCarriesDump(t *testing.T) {
	cfg := smallConfig(memsys.GTSC, gpu.RC)
	s := New(cfg)
	s.Sys.L2s[0].Deliver(&mem.Msg{Type: mem.BusInv, Block: mem.Addr(0x70000).Block(), Src: 1})
	_, err := s.Run(writeReadKernel(0x70000))
	if err == nil {
		t.Fatal("run with poisoned L2 succeeded")
	}
	var pe *diag.ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("want ProtocolError, got %T: %v", err, err)
	}
	if pe.Event != "unexpected-message" {
		t.Fatalf("event = %q, want unexpected-message", pe.Event)
	}
	if !strings.Contains(pe.Component, "l2") {
		t.Fatalf("component = %q, want an L2 bank", pe.Component)
	}
	if pe.Dump == nil {
		t.Fatal("no machine-state dump attached")
	}
	if !strings.Contains(err.Error(), "protocol error") {
		t.Fatalf("error summary %q", err.Error())
	}
}

// TestFaultScheduleReproducible runs the same kernel under the same
// chaos seed twice and asserts cycle-exact equality — the property that
// makes every harness failure replayable from its seed alone.
func TestFaultScheduleReproducible(t *testing.T) {
	run := func() (uint64, uint64, uint64) {
		cfg := smallConfig(memsys.GTSC, gpu.RC)
		cfg.Mem.Fault = fault.Chaos(42)
		r, err := New(cfg).Run(conflictKernel(0x60000, 4, 8))
		if err != nil {
			t.Fatal(err)
		}
		return r.Cycles, r.SM.InstrIssued, r.NoC.MsgsToL2
	}
	c1, i1, m1 := run()
	c2, i2, m2 := run()
	if c1 != c2 || i1 != i2 || m1 != m2 {
		t.Fatalf("same seed diverged: cycles %d/%d instrs %d/%d msgs %d/%d",
			c1, c2, i1, i2, m1, m2)
	}
}
