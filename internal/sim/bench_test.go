package sim_test

import (
	"testing"

	"github.com/gtsc-sim/gtsc/internal/workload"
)

// BenchmarkDrainPhase pins the satellite fix for the drain loop: the
// loop condition used to re-derive s.Sys.Pending() — a full scan over
// every MSHR, queue and directory entry in the machine — every single
// drain cycle, which dominated short kernels. It now asks the O(1)
// Drained query. CCP is the shortest golden kernel (~780 cycles), so
// the drain tail is the largest fraction of its wall time; this
// benchmark is the canary that the scan never creeps back.
func BenchmarkDrainPhase(b *testing.B) {
	wl, ok := workload.ByName("CCP")
	if !ok {
		b.Fatal("workload CCP missing")
	}
	cfg, ok := goldenConfig("gtsc-rc")
	if !ok {
		b.Fatal("unknown config label")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wl.Build(1).Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCycleSkip measures quiescence fast-forwarding on a
// memory-bound golden row (BH spends most of its cycles stalled on
// DRAM): the run with skipping enabled executes far fewer real ticks
// for the identical simulated cycle count and identical stats.
func BenchmarkCycleSkip(b *testing.B) {
	wl, ok := workload.ByName("BH")
	if !ok {
		b.Fatal("workload BH missing")
	}
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"skip", false}, {"noskip", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg, _ := goldenConfig("gtsc-rc")
			cfg.DisableCycleSkip = mode.disable
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := wl.Build(1).Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
