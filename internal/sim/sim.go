// Package sim is the top-level cycle engine: it owns the global clock,
// ticks the GPU cores and the memory hierarchy, launches kernels,
// drains the machine between kernels, and produces a stats.Run per
// execution — the role GPGPU-Sim's top-level loop plays for the paper.
package sim

import (
	"context"
	"errors"
	"fmt"

	"github.com/gtsc-sim/gtsc/internal/coherence"
	"github.com/gtsc-sim/gtsc/internal/diag"
	"github.com/gtsc-sim/gtsc/internal/energy"
	"github.com/gtsc-sim/gtsc/internal/gpu"
	"github.com/gtsc-sim/gtsc/internal/mem"
	"github.com/gtsc-sim/gtsc/internal/memsys"
	"github.com/gtsc-sim/gtsc/internal/stats"
)

// Config is the full configuration of one simulation.
type Config struct {
	Mem memsys.Config
	SM  gpu.SMConfig

	// MaxCycles aborts a run that fails to converge (hard budget);
	// default 200M. Exhaustion returns a diag.DeadlockError.
	MaxCycles uint64

	// WatchdogWindow is how many cycles the machine may go without
	// forward progress (instructions issued, warps retired, NoC or
	// DRAM traffic) before the run aborts with a diag.DeadlockError;
	// default 100k. The watchdog catches deadlocks in seconds where
	// the MaxCycles budget would grind for minutes.
	//
	// The window counts SIMULATED cycles only — never wall-clock time.
	// A run that is descheduled for seconds by the OS (worker pools
	// oversubscribed past GOMAXPROCS, -j fan-out, CI contention) makes
	// no simulated progress while parked and therefore cannot trip the
	// watchdog; only a machine that ticks without any counter moving
	// does. TestWatchdogOversubscribed pins this.
	WatchdogWindow uint64
	// DisableWatchdog turns the forward-progress check off (the
	// MaxCycles budget still applies).
	DisableWatchdog bool

	// Observer, when non-nil, receives every performed memory
	// operation (used by the invariant checkers in internal/check).
	// An observer belongs to exactly one run: it is called from the
	// simulation goroutine without locking, so concurrent simulations
	// (the experiment engine's worker pool, gtscsim -j) must each
	// attach their own — e.g. one check.Recorder per run, never a
	// shared instance.
	Observer coherence.Observer

	// SimWorkers ticks SMs concurrently on a persistent worker pool
	// during the run phase (1 or 0 = the serial loop). This is a pure
	// SCHEDULING knob: the two-phase tick stages every SM's outbound
	// message, its observations, and its fault draws, and commits them
	// in canonical SM order, so results — every stat, every golden
	// fingerprint, every checkpoint digest, every observer stream —
	// are bit-identical at any worker count, including under observers
	// and fault injection. The engine clamps the request to GOMAXPROCS
	// (GOMAXPROCS==1 always runs serial — the barrier pool loses money
	// without real CPUs) and to the SM count; EngineStats.Workers
	// reports the effective value. See DESIGN.md §7.
	SimWorkers int

	// SlackCycles enables relaxed-synchronization (bounded-slack)
	// execution: the machine is partitioned into domains (each SM with
	// its L1; each L2 bank with its DRAM partition) that free-run up
	// to SlackCycles cycles between epoch barriers, where cross-domain
	// NoC traffic is exchanged in canonical order. 0 (the default)
	// keeps the bit-exact engines. N > 0 is an opt-in fast mode: final
	// memory state, workload verification, and coherence invariants
	// are preserved exactly, but cycle counts and timing-derived stats
	// deviate boundedly (deliveries cross at barriers, so a message
	// can land up to N cycles later than bit-exact execution; see
	// DESIGN.md §7). Relaxed mode disengages automatically — falling
	// back to the bit-exact engines — under fault injection, a legacy
	// engine request, or DisableCycleSkip, all of which demand exact
	// per-cycle interleaving. EngineStats.Relaxed reports what the
	// mode did; checkpoint ConfigHash excludes the knob (checkpoints
	// pause at epoch barriers, and a digest only matches a replay run
	// at the same slack).
	SlackCycles uint64

	// DisableCycleSkip turns off quiescence fast-forwarding, which
	// advances the clock over provably idle cycles (all SMs stalled,
	// no NoC/DRAM event due). Also a pure scheduling knob: skipping is
	// gated on proofs that the skipped ticks were no-ops, so results
	// are bit-identical either way. Exposed for debugging and for the
	// engine benchmarks' baseline measurements. Disabling cycle skip
	// also disables the event engine (its horizons are the same proofs).
	DisableCycleSkip bool

	// Engine selects the cycle engine (see EngineMode). Like SimWorkers
	// and DisableCycleSkip this is a pure scheduling knob: every stat,
	// golden fingerprint, and checkpoint digest is bit-identical under
	// either engine, and a checkpoint taken under one resumes under the
	// other (TestEngineCheckpointInterop pins both directions).
	Engine EngineMode

	// DisableComponentWakes keeps the event engine but ticks the whole
	// memory hierarchy on every executed cycle instead of dispatching
	// per-component wakes (quiet cache banks, NoC, and DRAM partitions
	// sleeping through busy cycles). Another pure scheduling knob —
	// results are bit-identical either way (the CI GTSC_COMPONENT_WAKES
	// matrix leg and TestComponentWakesGoldenEquivalence pin it) —
	// exposed for the engine benchmarks' back-to-back comparison and
	// for bisecting a suspected dispatch bug.
	DisableComponentWakes bool

	// ProfileLabels annotates the engine's hot phases with pprof
	// goroutine labels (engine_phase = sm-tick / hierarchy-tick /
	// agenda) so CPU profiles attribute time per phase without manual
	// bisection. Off by default: the labels cost a goroutine-label
	// store per phase transition on the hot loop. gtscsim switches it
	// on together with -cpuprofile. Scheduling-only: labels never feed
	// back into the simulation.
	ProfileLabels bool
}

// EngineMode selects how the cycle loop advances time.
type EngineMode uint8

const (
	// EngineAuto (the default) uses the scheduled-wake event engine
	// whenever its preconditions hold — cycle skipping enabled and no
	// fault injection — and falls back to the legacy per-cycle probe
	// loop otherwise. See DESIGN.md §7.
	EngineAuto EngineMode = iota
	// EngineEvent requests the event engine explicitly. It still falls
	// back exactly like EngineAuto when the preconditions fail; the
	// value exists so CLIs and tests can state intent.
	EngineEvent
	// EngineLegacy forces the legacy loop: tick every component every
	// executed cycle, probing for skippable windows (trySkipRun).
	EngineLegacy
)

// String names the mode as the CLIs' -engine flag spells it.
func (m EngineMode) String() string {
	switch m {
	case EngineEvent:
		return "event"
	case EngineLegacy:
		return "legacy"
	default:
		return "auto"
	}
}

// ParseEngineMode parses the -engine flag / GTSC_ENGINE spelling of an
// engine mode ("auto", "event", "legacy"; "" = auto).
func ParseEngineMode(s string) (EngineMode, error) {
	switch s {
	case "", "auto":
		return EngineAuto, nil
	case "event":
		return EngineEvent, nil
	case "legacy":
		return EngineLegacy, nil
	}
	return EngineAuto, fmt.Errorf("unknown engine mode %q (want auto, event, or legacy)", s)
}

// DefaultConfig returns the paper's machine: 16 SMs x 48 warps over a
// 16KB L1 / 8x128KB L2 hierarchy with G-TSC coherence and RC.
func DefaultConfig() Config {
	return Config{
		Mem: memsys.DefaultConfig(),
		SM:  gpu.SMConfig{Consistency: gpu.RC},
	}
}

// run phases of one kernel execution.
const (
	phaseRun   = iota // main cycle loop until all warps retire
	phaseDrain        // kernel-boundary flush + hierarchy drain
)

// ctxPollMask throttles context-cancellation checks on the hot cycle
// loop: ctx.Err() is sampled every 1024 simulated cycles. Cancellation
// latency is therefore bounded in simulated cycles (microseconds of
// wall clock), and — critically — polling reads no state that feeds
// back into the simulation, so runs are bit-identical with or without
// a cancelable context.
const ctxPollMask = 1023

// runState is the engine state of one in-progress kernel execution.
// It lives on the Simulator between RunUntil/Resume calls, which is
// what makes a run pausable at an arbitrary cycle: exiting the cycle
// loop loses no machine state, and re-entering it continues exactly
// where the loop stopped.
type runState struct {
	kernel *gpu.Kernel
	phase  int
	start  uint64 // s.now when the run phase began
	guard  uint64 // drain-phase budget counter

	// Forward-progress watchdog sampling state (simulated-cycle based).
	lastSig      uint64
	lastProgress uint64

	// run holds the assembled stats once the run phase completes; the
	// drain phase only advances the hierarchy.
	run *stats.Run
}

// Simulator executes kernels over one assembled machine.
type Simulator struct {
	Cfg   Config
	Store *mem.Store
	Sys   *memsys.System
	SMs   []*gpu.SM
	now   uint64

	cur         *runState // non-nil while a kernel is paused mid-execution
	kernelsDone int       // kernels run to completion on this simulator

	eng    EngineStats      // engine scheduling counters (see engine.go)
	probes []gpu.StallProbe // per-SM quiescence scratch (skip hot path)
	ev     *eventState      // scheduled-wake engine state (see event.go)
	rx     *relaxedState    // relaxed-sync engine state (see relaxed.go)

	// cfgErr holds a configuration validation failure detected at New
	// time. New keeps its no-error signature (a Simulator is still
	// constructed, with clamped-safe parameters); the error surfaces
	// from the first Run/RunUntil instead of panicking mid-build.
	cfgErr error
}

// New builds a simulator. The TC variant is matched to the consistency
// model exactly as the paper pairs them: TC-Weak under RC, TC-Strong
// under SC.
func New(cfg Config) *Simulator {
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 200_000_000
	}
	if cfg.WatchdogWindow == 0 {
		cfg.WatchdogWindow = 100_000
	}
	if cfg.Mem.Protocol == memsys.TC {
		cfg.Mem.TC.Weak = cfg.SM.Consistency == gpu.RC
	}
	store := mem.NewStore()
	sys := memsys.New(cfg.Mem, store, cfg.Observer)
	s := &Simulator{Cfg: cfg, Store: store, Sys: sys, cfgErr: cfg.Mem.Validate()}
	for i, l1 := range sys.L1s {
		smCfg := cfg.SM
		smCfg.MaxWarps = cfg.Mem.MaxWarps
		s.SMs = append(s.SMs, gpu.NewSM(i, smCfg, l1))
	}
	return s
}

// Now returns the current cycle.
func (s *Simulator) Now() uint64 { return s.now }

// KernelsDone returns how many kernels have run to completion.
func (s *Simulator) KernelsDone() int { return s.kernelsDone }

// Paused reports whether a kernel execution is suspended mid-flight
// (after RunUntil hit its stop cycle or a context was canceled).
func (s *Simulator) Paused() bool { return s.cur != nil }

// ReadWord returns the architected value of a global-memory word
// (L2-or-DRAM), for verifying kernel results.
func (s *Simulator) ReadWord(a mem.Addr) uint32 { return s.Sys.ReadWord(a) }

// Run executes one kernel to completion and returns its statistics.
// Multiple kernels may be run back-to-back on the same simulator; the
// paper's per-kernel L1 flush and timestamp reset happen between runs.
func (s *Simulator) Run(kernel *gpu.Kernel) (*stats.Run, error) {
	return s.RunContext(context.Background(), kernel)
}

// RunContext is Run with cancellation: when ctx is canceled (or its
// deadline passes) the cycle loop stops within ctxPollMask+1 simulated
// cycles and returns a *diag.CanceledError. The machine state is left
// intact and paused — the caller may Snapshot() it for a checkpoint or
// Resume() it with a fresh context. Cancellation never perturbs the
// simulation itself: a run that completes under a canceled-too-late
// context is bit-identical to one run without a context.
func (s *Simulator) RunContext(ctx context.Context, kernel *gpu.Kernel) (*stats.Run, error) {
	run, paused, err := s.RunUntil(ctx, kernel, 0)
	if err != nil {
		return nil, err
	}
	if paused {
		// Unreachable with stopAt 0, but keep the invariant explicit.
		return nil, errors.New("sim: run paused without a stop cycle")
	}
	return run, nil
}

// RunUntil executes kernel but pauses the machine once the global
// clock reaches stopAt (0 = never): it returns paused=true with all
// state retained, and Resume continues the same kernel. A pause is a
// pure suspension — the eventual stats.Run of the kernel is
// bit-identical however many times the execution is paused and
// resumed, which is what makes checkpoint/restore exact.
func (s *Simulator) RunUntil(ctx context.Context, kernel *gpu.Kernel, stopAt uint64) (*stats.Run, bool, error) {
	if s.cfgErr != nil {
		return nil, false, s.cfgErr
	}
	if s.cur != nil {
		return nil, false, errors.New("sim: a kernel is already in flight; use Resume")
	}
	s.beginKernel(kernel)
	return s.advance(ctx, stopAt)
}

// Resume continues a paused kernel until completion or until stopAt
// (0 = run to completion). See RunUntil.
func (s *Simulator) Resume(ctx context.Context, stopAt uint64) (*stats.Run, bool, error) {
	if s.cur == nil {
		return nil, false, errors.New("sim: no paused kernel to resume")
	}
	return s.advance(ctx, stopAt)
}

// beginKernel initializes backing store and dispatches the grid.
func (s *Simulator) beginKernel(kernel *gpu.Kernel) {
	if kernel.Init != nil {
		kernel.Init(s.Store)
	}
	disp := gpu.NewDispatcher(kernel)
	for _, sm := range s.SMs {
		sm.Launch(kernel, disp)
	}
	// Distribute the initial CTAs round-robin across SMs, as GPU
	// hardware schedulers do.
	for assigned := true; assigned; {
		assigned = false
		for _, sm := range s.SMs {
			if sm.FillOne() {
				assigned = true
			}
		}
	}
	// Re-arm the fault plan's forced-rollover schedule from this
	// kernel's start, so every kernel sees the plan afresh (§V-D resets
	// also happen naturally at kernel boundaries).
	s.Sys.ArmRollover(s.now)
	s.cur = &runState{
		kernel:       kernel,
		phase:        phaseRun,
		start:        s.now,
		lastSig:      s.progressSig(),
		lastProgress: s.now,
	}
}

// advance drives the current kernel forward. It returns the kernel's
// stats when it completes, paused=true when stopAt (or a context
// cancellation) suspended it, or an error. The order of checks inside
// each loop iteration is part of the determinism contract: a pause
// suspends the machine "after N completed cycles", and capture (a
// canceled run) and replay (RunUntil to the recorded cycle) evaluate
// the same checks at the same points, so they suspend at the identical
// machine state.
func (s *Simulator) advance(ctx context.Context, stopAt uint64) (*stats.Run, bool, error) {
	st := s.cur
	if st.phase == phaseRun {
		paused, err := s.runPhase(ctx, stopAt)
		if err != nil {
			return nil, false, err
		}
		if paused {
			return nil, true, nil
		}
		if err := s.endRunPhase(); err != nil {
			return nil, false, err
		}
	}
	paused, err := s.drainPhase(ctx, stopAt)
	if err != nil {
		return nil, false, err
	}
	if paused {
		return nil, true, nil
	}
	run := st.run
	s.cur = nil
	s.kernelsDone++
	return run, false, nil
}

// runPhase executes the main cycle loop until every warp retires.
//
// When the scheduled-wake engine's preconditions hold this dispatches
// to runPhaseEvent (see event.go), which pops the component agenda
// instead of probing the whole machine every cycle. The legacy loop
// below has two engine accelerations, both bit-identical to the plain
// serial loop by construction (TestParallelTickGoldenEquivalence pins
// this over every golden row):
//
//   - a two-phase parallel SM tick (compute concurrently into staged
//     buffers, commit in canonical SM order), used whenever
//     SimWorkers > 1 — observer streams and fault draws are staged and
//     replayed in the same canonical order (see memsys);
//   - quiescence cycle-skipping (trySkipRun), which fast-forwards the
//     clock over cycles that are provably pure stalls.
//
// The order of checks per iteration is part of the determinism
// contract (see advance); a skipped window preserves every check's
// firing cycle by landing on each sampling boundary.
func (s *Simulator) runPhase(ctx context.Context, stopAt uint64) (bool, error) {
	if s.useRelaxed() {
		return s.runPhaseRelaxed(ctx, stopAt)
	}
	if s.useEventEngine() {
		return s.runPhaseEvent(ctx, stopAt)
	}
	// The legacy loop never calls TickDue, so the ingress hooks must be
	// inert: with nothing draining the agenda heap, their registrations
	// would accumulate unread.
	s.Sys.SetComponentWakes(false)
	st := s.cur
	workers := s.effectiveWorkers()
	par := workers > 1
	var pool *tickPool
	if par {
		pool = newTickPool(s.SMs, workers)
		defer pool.shutdown()
		for _, sm := range s.SMs {
			sm.SetDeferFills(true)
		}
		defer func() {
			for _, sm := range s.SMs {
				sm.SetDeferFills(false)
			}
		}()
		s.eng.Workers = workers
	} else {
		s.eng.Workers = 1
	}
	skipOK := !s.Cfg.DisableCycleSkip && s.Sys.SkipSafe()
	for {
		if stopAt != 0 && s.now >= stopAt {
			return true, nil
		}
		if s.now&ctxPollMask == 0 && ctx.Err() != nil {
			return true, s.canceled(ctx, "run")
		}
		if s.budgetExhausted(s.now - st.start) {
			return false, s.deadlock(st.kernel.Name, "run", "max-cycles", s.now-st.lastProgress)
		}
		if !skipOK || !s.trySkipRun(st, stopAt) {
			s.now++
			s.Sys.Tick(s.now)
			if par {
				// Compute phase: SMs tick concurrently, their NoC
				// injections staged per SM. Commit phase: replay the
				// staged messages and any deferred CTA refills in SM
				// index order — the serial loop's order exactly.
				s.Sys.BeginSMStage()
				pool.tick(s.now, nil)
				s.Sys.CommitSMStage()
				for _, sm := range s.SMs {
					sm.CommitFill()
				}
				s.eng.ParallelCycles++
			} else {
				for _, sm := range s.SMs {
					sm.Tick(s.now)
				}
			}
			// Forced mid-run §V-D rollovers (fault plans only; fault
			// plans force the legacy loop, so this is the single firing
			// point — on the master goroutine, after the commit phase).
			s.Sys.TickRollover(s.now)
			s.eng.RunCycles++
			s.eng.SMTickCycles++ // the legacy loop ticks SMs every executed cycle
		}
		if err := s.Sys.Err(); err != nil {
			return false, s.attachDump(err)
		}
		if s.done() {
			return false, nil
		}
		// Forward-progress watchdog: sample the monotone activity
		// counters every 64 cycles; a window with no change anywhere in
		// the machine is a deadlock, reported with a state dump long
		// before the MaxCycles budget would expire.
		if !s.Cfg.DisableWatchdog && s.now&63 == 0 {
			if sig := s.progressSig(); sig != st.lastSig {
				st.lastSig = sig
				st.lastProgress = s.now
			} else if s.now-st.lastProgress >= s.Cfg.WatchdogWindow {
				return false, s.deadlock(st.kernel.Name, "run", "no-forward-progress", s.now-st.lastProgress)
			}
		}
	}
}

// endRunPhase assembles the kernel's statistics and starts the
// kernel-boundary flush, transitioning the state machine to the drain
// phase.
func (s *Simulator) endRunPhase() error {
	st := s.cur
	run := &stats.Run{
		Kernel:      st.kernel.Name,
		Protocol:    s.Cfg.Mem.Protocol.String(),
		Consistency: s.Cfg.SM.Consistency.String(),
		Cycles:      s.now - st.start,
	}
	for _, sm := range s.SMs {
		run.SM.Add(sm.Stats())
	}
	s.Sys.Collect(run)
	energy.Default().Apply(run)

	// Kernel boundary: flush private caches and reset timestamps
	// (§V-D), as GPUs do between dependent kernels. Write-back
	// protocols (the directory baseline) emit writebacks here, so the
	// hierarchy is drained once more before the results are read.
	for _, l1 := range s.Sys.L1s {
		l1.Flush()
	}
	if err := s.Sys.Err(); err != nil {
		return s.attachDump(err)
	}
	st.run = run
	st.phase = phaseDrain
	st.guard = 0
	st.lastSig = s.progressSig()
	st.lastProgress = s.now
	return nil
}

// drainPhase ticks the hierarchy until no in-flight work remains. The
// loop condition is the O(1) Drained query, not a full Pending scan —
// the scan walked every MSHR and queue in the machine every cycle and
// dominated short kernels (see BenchmarkDrainPhase).
func (s *Simulator) drainPhase(ctx context.Context, stopAt uint64) (bool, error) {
	if s.useEventEngine() {
		return s.drainPhaseEvent(ctx, stopAt)
	}
	s.Sys.SetComponentWakes(false)
	st := s.cur
	skipOK := !s.Cfg.DisableCycleSkip && s.Sys.SkipSafe()
	for ; !s.Sys.Drained(); st.guard++ {
		if stopAt != 0 && s.now >= stopAt {
			return true, nil
		}
		if s.now&ctxPollMask == 0 && ctx.Err() != nil {
			return true, s.canceled(ctx, "drain")
		}
		if s.budgetExhausted(st.guard) {
			return false, s.deadlock(st.kernel.Name, "drain", "max-cycles", s.now-st.lastProgress)
		}
		if !skipOK || !s.trySkipDrain(st, stopAt) {
			s.now++
			s.Sys.Tick(s.now)
			s.eng.DrainCycles++
		}
		if err := s.Sys.Err(); err != nil {
			return false, s.attachDump(err)
		}
		if !s.Cfg.DisableWatchdog && s.now&63 == 0 {
			if sig := s.progressSig(); sig != st.lastSig {
				st.lastSig = sig
				st.lastProgress = s.now
			} else if s.now-st.lastProgress >= s.Cfg.WatchdogWindow {
				return false, s.deadlock(st.kernel.Name, "drain", "no-forward-progress", s.now-st.lastProgress)
			}
		}
	}
	return false, nil
}

// canceled builds the structured cancellation error. The machine stays
// paused: s.cur is retained so the caller can Snapshot() or Resume().
func (s *Simulator) canceled(ctx context.Context, phase string) error {
	return &diag.CanceledError{
		Kernel:      s.cur.kernel.Name,
		Phase:       phase,
		Cycle:       s.now,
		KernelIndex: s.kernelsDone,
		Cause:       context.Cause(ctx),
	}
}

// budgetExhausted reports whether a phase that has already executed
// elapsed cycles has used up the MaxCycles budget. Both the run phase
// and the drain phase route their checks through here, so the budget
// semantics are identical by construction: each phase executes at most
// MaxCycles cycles, and the check fires before the cycle that would
// exceed the budget.
func (s *Simulator) budgetExhausted(elapsed uint64) bool {
	return elapsed >= s.Cfg.MaxCycles
}

// progressSig sums the machine's monotone activity counters; any
// change between samples means forward progress is being made. The
// signature is a pure function of simulated state — it deliberately
// reads no clocks, so scheduling delays cannot masquerade as (or mask)
// a deadlock.
func (s *Simulator) progressSig() uint64 {
	var sig uint64
	for _, sm := range s.SMs {
		st := sm.Stats()
		sig += st.InstrIssued + st.WarpsRetired
	}
	ns := s.Sys.Net.Stats()
	sig += ns.MsgsToL2 + ns.MsgsToL1
	for _, p := range s.Sys.Parts {
		ds := p.Stats()
		sig += ds.Reads + ds.Writes
	}
	return sig
}

// dump assembles the machine-state snapshot: the hierarchy's view plus
// per-SM warp states.
func (s *Simulator) dump() *diag.StateDump {
	d := s.Sys.Dump(s.now)
	for _, sm := range s.SMs {
		d.SMs = append(d.SMs, sm.DumpState())
	}
	return d
}

// deadlock builds the structured no-forward-progress error.
func (s *Simulator) deadlock(kernel, phase, reason string, stalled uint64) error {
	return &diag.DeadlockError{
		Kernel: kernel, Phase: phase, Reason: reason,
		Cycle: s.now, StalledFor: stalled, Pending: s.Sys.Pending(),
		Dump: s.dump(),
	}
}

// attachDump decorates a protocol error with the machine state.
func (s *Simulator) attachDump(err error) error {
	var pe *diag.ProtocolError
	if errors.As(err, &pe) && pe.Dump == nil {
		pe.Dump = s.dump()
	}
	return err
}

func (s *Simulator) done() bool {
	for _, sm := range s.SMs {
		if !sm.Done() {
			return false
		}
	}
	return s.Sys.Drained()
}

// RunToCompletion builds a fresh simulator for cfg and runs kernel.
func RunToCompletion(cfg Config, kernel *gpu.Kernel) (*stats.Run, error) {
	return New(cfg).Run(kernel)
}
