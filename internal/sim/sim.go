// Package sim is the top-level cycle engine: it owns the global clock,
// ticks the GPU cores and the memory hierarchy, launches kernels,
// drains the machine between kernels, and produces a stats.Run per
// execution — the role GPGPU-Sim's top-level loop plays for the paper.
package sim

import (
	"errors"

	"github.com/gtsc-sim/gtsc/internal/coherence"
	"github.com/gtsc-sim/gtsc/internal/diag"
	"github.com/gtsc-sim/gtsc/internal/energy"
	"github.com/gtsc-sim/gtsc/internal/gpu"
	"github.com/gtsc-sim/gtsc/internal/mem"
	"github.com/gtsc-sim/gtsc/internal/memsys"
	"github.com/gtsc-sim/gtsc/internal/stats"
)

// Config is the full configuration of one simulation.
type Config struct {
	Mem memsys.Config
	SM  gpu.SMConfig

	// MaxCycles aborts a run that fails to converge (hard budget);
	// default 200M. Exhaustion returns a diag.DeadlockError.
	MaxCycles uint64

	// WatchdogWindow is how many cycles the machine may go without
	// forward progress (instructions issued, warps retired, NoC or
	// DRAM traffic) before the run aborts with a diag.DeadlockError;
	// default 100k. The watchdog catches deadlocks in seconds where
	// the MaxCycles budget would grind for minutes.
	WatchdogWindow uint64
	// DisableWatchdog turns the forward-progress check off (the
	// MaxCycles budget still applies).
	DisableWatchdog bool

	// Observer, when non-nil, receives every performed memory
	// operation (used by the invariant checkers in internal/check).
	// An observer belongs to exactly one run: it is called from the
	// simulation goroutine without locking, so concurrent simulations
	// (the experiment engine's worker pool, gtscsim -j) must each
	// attach their own — e.g. one check.Recorder per run, never a
	// shared instance.
	Observer coherence.Observer
}

// DefaultConfig returns the paper's machine: 16 SMs x 48 warps over a
// 16KB L1 / 8x128KB L2 hierarchy with G-TSC coherence and RC.
func DefaultConfig() Config {
	return Config{
		Mem: memsys.DefaultConfig(),
		SM:  gpu.SMConfig{Consistency: gpu.RC},
	}
}

// Simulator executes kernels over one assembled machine.
type Simulator struct {
	Cfg   Config
	Store *mem.Store
	Sys   *memsys.System
	SMs   []*gpu.SM
	now   uint64
}

// New builds a simulator. The TC variant is matched to the consistency
// model exactly as the paper pairs them: TC-Weak under RC, TC-Strong
// under SC.
func New(cfg Config) *Simulator {
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 200_000_000
	}
	if cfg.WatchdogWindow == 0 {
		cfg.WatchdogWindow = 100_000
	}
	if cfg.Mem.Protocol == memsys.TC {
		cfg.Mem.TC.Weak = cfg.SM.Consistency == gpu.RC
	}
	store := mem.NewStore()
	sys := memsys.New(cfg.Mem, store, cfg.Observer)
	s := &Simulator{Cfg: cfg, Store: store, Sys: sys}
	for i, l1 := range sys.L1s {
		smCfg := cfg.SM
		smCfg.MaxWarps = cfg.Mem.MaxWarps
		s.SMs = append(s.SMs, gpu.NewSM(i, smCfg, l1))
	}
	return s
}

// Now returns the current cycle.
func (s *Simulator) Now() uint64 { return s.now }

// ReadWord returns the architected value of a global-memory word
// (L2-or-DRAM), for verifying kernel results.
func (s *Simulator) ReadWord(a mem.Addr) uint32 { return s.Sys.ReadWord(a) }

// Run executes one kernel to completion and returns its statistics.
// Multiple kernels may be run back-to-back on the same simulator; the
// paper's per-kernel L1 flush and timestamp reset happen between runs.
func (s *Simulator) Run(kernel *gpu.Kernel) (*stats.Run, error) {
	if kernel.Init != nil {
		kernel.Init(s.Store)
	}
	disp := gpu.NewDispatcher(kernel)
	for _, sm := range s.SMs {
		sm.Launch(kernel, disp)
	}
	// Distribute the initial CTAs round-robin across SMs, as GPU
	// hardware schedulers do.
	for assigned := true; assigned; {
		assigned = false
		for _, sm := range s.SMs {
			if sm.FillOne() {
				assigned = true
			}
		}
	}

	start := s.now
	lastSig := s.progressSig()
	lastProgress := s.now
	for {
		if s.budgetExhausted(s.now - start) {
			return nil, s.deadlock(kernel.Name, "run", "max-cycles", s.now-lastProgress)
		}
		s.now++
		s.Sys.Tick(s.now)
		for _, sm := range s.SMs {
			sm.Tick(s.now)
		}
		if err := s.Sys.Err(); err != nil {
			return nil, s.attachDump(err)
		}
		if s.done() {
			break
		}
		// Forward-progress watchdog: sample the monotone activity
		// counters every 64 cycles; a window with no change anywhere in
		// the machine is a deadlock, reported with a state dump long
		// before the MaxCycles budget would expire.
		if !s.Cfg.DisableWatchdog && s.now&63 == 0 {
			if sig := s.progressSig(); sig != lastSig {
				lastSig = sig
				lastProgress = s.now
			} else if s.now-lastProgress >= s.Cfg.WatchdogWindow {
				return nil, s.deadlock(kernel.Name, "run", "no-forward-progress", s.now-lastProgress)
			}
		}
	}

	run := &stats.Run{
		Kernel:      kernel.Name,
		Protocol:    s.Cfg.Mem.Protocol.String(),
		Consistency: s.Cfg.SM.Consistency.String(),
		Cycles:      s.now - start,
	}
	for _, sm := range s.SMs {
		run.SM.Add(sm.Stats())
	}
	s.Sys.Collect(run)
	energy.Default().Apply(run)

	// Kernel boundary: flush private caches and reset timestamps
	// (§V-D), as GPUs do between dependent kernels. Write-back
	// protocols (the directory baseline) emit writebacks here, so the
	// hierarchy is drained once more before the results are read.
	for _, l1 := range s.Sys.L1s {
		l1.Flush()
	}
	if err := s.Sys.Err(); err != nil {
		return nil, s.attachDump(err)
	}
	lastSig = s.progressSig()
	lastProgress = s.now
	for guard := uint64(0); s.Sys.Pending() != 0; guard++ {
		if s.budgetExhausted(guard) {
			return nil, s.deadlock(kernel.Name, "drain", "max-cycles", s.now-lastProgress)
		}
		s.now++
		s.Sys.Tick(s.now)
		if err := s.Sys.Err(); err != nil {
			return nil, s.attachDump(err)
		}
		if !s.Cfg.DisableWatchdog && s.now&63 == 0 {
			if sig := s.progressSig(); sig != lastSig {
				lastSig = sig
				lastProgress = s.now
			} else if s.now-lastProgress >= s.Cfg.WatchdogWindow {
				return nil, s.deadlock(kernel.Name, "drain", "no-forward-progress", s.now-lastProgress)
			}
		}
	}
	return run, nil
}

// budgetExhausted reports whether a phase that has already executed
// elapsed cycles has used up the MaxCycles budget. Both the run phase
// and the drain phase route their checks through here, so the budget
// semantics are identical by construction: each phase executes at most
// MaxCycles cycles, and the check fires before the cycle that would
// exceed the budget.
func (s *Simulator) budgetExhausted(elapsed uint64) bool {
	return elapsed >= s.Cfg.MaxCycles
}

// progressSig sums the machine's monotone activity counters; any
// change between samples means forward progress is being made.
func (s *Simulator) progressSig() uint64 {
	var sig uint64
	for _, sm := range s.SMs {
		st := sm.Stats()
		sig += st.InstrIssued + st.WarpsRetired
	}
	ns := s.Sys.Net.Stats()
	sig += ns.MsgsToL2 + ns.MsgsToL1
	for _, p := range s.Sys.Parts {
		ds := p.Stats()
		sig += ds.Reads + ds.Writes
	}
	return sig
}

// dump assembles the machine-state snapshot: the hierarchy's view plus
// per-SM warp states.
func (s *Simulator) dump() *diag.StateDump {
	d := s.Sys.Dump(s.now)
	for _, sm := range s.SMs {
		d.SMs = append(d.SMs, sm.DumpState())
	}
	return d
}

// deadlock builds the structured no-forward-progress error.
func (s *Simulator) deadlock(kernel, phase, reason string, stalled uint64) error {
	return &diag.DeadlockError{
		Kernel: kernel, Phase: phase, Reason: reason,
		Cycle: s.now, StalledFor: stalled, Pending: s.Sys.Pending(),
		Dump: s.dump(),
	}
}

// attachDump decorates a protocol error with the machine state.
func (s *Simulator) attachDump(err error) error {
	var pe *diag.ProtocolError
	if errors.As(err, &pe) && pe.Dump == nil {
		pe.Dump = s.dump()
	}
	return err
}

func (s *Simulator) done() bool {
	for _, sm := range s.SMs {
		if !sm.Done() {
			return false
		}
	}
	return s.Sys.Pending() == 0
}

// RunToCompletion builds a fresh simulator for cfg and runs kernel.
func RunToCompletion(cfg Config, kernel *gpu.Kernel) (*stats.Run, error) {
	return New(cfg).Run(kernel)
}
