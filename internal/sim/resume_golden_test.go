package sim_test

import (
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"testing"

	"github.com/gtsc-sim/gtsc/internal/checkpoint"
	"github.com/gtsc-sim/gtsc/internal/workload"
)

// TestKillResumeGoldenEquivalence is the kill-anywhere/resume
// acceptance gate: every golden row is paused at a fuzzed arbitrary
// cycle, checkpointed through the binary codec, restored into a fresh
// process-like state (new workload instance, new simulator — nothing
// shared with the paused machine), and run to completion. The final
// stats fingerprint must be bit-identical to the uninterrupted golden
// — restore is the same run, not approximately the same run.
func TestKillResumeGoldenEquivalence(t *testing.T) {
	wls := map[string]*workload.Workload{}
	for _, wl := range workload.All() {
		wls[wl.Name] = wl
	}
	for _, row := range goldenRows {
		row := row
		t.Run(row.workload+"/"+row.config, func(t *testing.T) {
			t.Parallel()
			wl := wls[row.workload]
			cfg, ok := goldenConfig(row.config)
			if !ok {
				t.Fatalf("unknown config label %q", row.config)
			}
			// Fuzzed but reproducible pause cycle: derived from the
			// golden hash, somewhere inside the run.
			pause := 1 + row.hash%row.cycles

			e1 := checkpoint.NewExecution(cfg, wl.Build(1), row.workload, 1)
			_, paused, err := e1.RunUntil(context.Background(), pause)
			if err != nil {
				t.Fatalf("run to pause cycle %d failed: %v", pause, err)
			}
			if !paused {
				t.Fatalf("execution did not pause at cycle %d", pause)
			}

			// Round-trip the checkpoint through the binary codec, as a
			// kill + restart would.
			var buf bytes.Buffer
			if err := e1.Checkpoint().Encode(&buf); err != nil {
				t.Fatalf("encode: %v", err)
			}
			ck, err := checkpoint.Decode(&buf)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}

			// Fresh process-like state: new instance, new machine.
			e2, err := checkpoint.ResumeExecution(ck, cfg, wl.Build(1), row.workload, 1)
			if err != nil {
				t.Fatalf("resume (verified replay to cycle %d): %v", ck.Cycle, err)
			}
			run, err := e2.Run(context.Background())
			if err != nil {
				t.Fatalf("post-resume run failed: %v", err)
			}
			h := fnv.New64a()
			fmt.Fprintf(h, "%+v", *run)
			if got := h.Sum64(); got != row.hash {
				t.Errorf("resumed-run fingerprint = %#x, golden %#x (pause at %d diverged)", got, row.hash, pause)
			}
		})
	}
}
