package sim_test

import (
	"fmt"
	"hash/fnv"
	"reflect"
	"runtime"
	"testing"

	"context"

	"github.com/gtsc-sim/gtsc/internal/check"
	"github.com/gtsc-sim/gtsc/internal/checkpoint"
	"github.com/gtsc-sim/gtsc/internal/fault"
	"github.com/gtsc-sim/gtsc/internal/gpu"
	"github.com/gtsc-sim/gtsc/internal/mem"
	"github.com/gtsc-sim/gtsc/internal/memsys"
	"github.com/gtsc-sim/gtsc/internal/sim"
	"github.com/gtsc-sim/gtsc/internal/stats"
	"github.com/gtsc-sim/gtsc/internal/workload"
)

// architectedImage renders the architected memory of a finished
// simulation (the L2-overlaid view ReadWord exposes, not the raw DRAM
// store) over a given block set, word for word.
func architectedImage(s *sim.Simulator, blocks []mem.BlockAddr) string {
	h := fnv.New64a()
	var out []byte
	for _, b := range blocks {
		out = fmt.Appendf(out, "blk %#x", uint64(b))
		for i := 0; i < mem.WordsPerBlock; i++ {
			out = fmt.Appendf(out, " %x", s.ReadWord(b.WordAddr(i)))
		}
		out = append(out, '\n')
	}
	h.Write(out)
	return fmt.Sprintf("%#x", h.Sum64())
}

// touchedBlocks returns the union of both simulations' allocated
// backing-store blocks, deduplicated, in ascending order.
func touchedBlocks(a, b *sim.Simulator) []mem.BlockAddr {
	seen := map[mem.BlockAddr]bool{}
	var out []mem.BlockAddr
	collect := func(s *sim.Simulator) {
		s.Store.ForEachBlock(func(blk mem.BlockAddr) {
			if !seen[blk] {
				seen[blk] = true
				out = append(out, blk)
			}
		})
	}
	collect(a)
	collect(b)
	return out
}

// checkOrdering applies the protocol's ordering invariant to a
// recorded operation log (mirrors the gtscsim -check dispatch; TC
// under RC is TC-Weak, whose bounded staleness has no log-level
// invariant — functional verification still applies).
func checkOrdering(t *testing.T, p memsys.Protocol, cons gpu.Consistency, ops []check.Record) {
	t.Helper()
	var vio []check.Violation
	switch p {
	case memsys.GTSC:
		vio = check.CheckTimestampOrder(ops, 3)
	case memsys.BL, memsys.DIR:
		vio = check.CheckPhysical(ops, 3)
	case memsys.TC:
		if cons == gpu.SC {
			vio = check.CheckPhysical(ops, 3)
		}
	}
	if len(vio) > 0 {
		t.Fatalf("ordering invariant violated: %v", vio[0].Error())
	}
}

// relaxedProtocols are the four coherent protocol configurations the
// relaxed-sync equivalence suite sweeps (golden config labels).
var relaxedProtocols = []string{"gtsc-rc", "tc-rc", "bl-rc", "dir-rc"}

// TestRelaxedSlackFunctionalEquivalence is the correctness gate for
// bounded-slack execution: for every coherence-requiring workload
// under every coherent protocol, a run at SlackCycles 1, 8 and 64 must
// be FUNCTIONALLY identical to the bit-exact slack-0 run — the
// workload's word-for-word verification against its sequential
// reference passes (Instance.Run enforces it), the protocol's ordering
// invariant holds over the full recorded operation log, and the final
// architected memory image matches the slack-0 image word for word
// over every block either run touched. Timing (cycle counts, stall
// breakdowns) is allowed to deviate; function is not.
func TestRelaxedSlackFunctionalEquivalence(t *testing.T) {
	for _, wl := range workload.CoherenceSet() {
		for _, label := range relaxedProtocols {
			wl, label := wl, label
			t.Run(wl.Name+"/"+label, func(t *testing.T) {
				t.Parallel()
				cfg, ok := goldenConfig(label)
				if !ok {
					t.Fatalf("unknown config label %q", label)
				}

				run := func(slack uint64) (*sim.Simulator, *check.Recorder) {
					c := cfg
					c.SlackCycles = slack
					rec := check.NewRecorder()
					c.Observer = rec
					s := sim.New(c)
					if _, err := wl.Build(1).RunOn(s); err != nil {
						t.Fatalf("slack=%d: %v", slack, err)
					}
					checkOrdering(t, c.Mem.Protocol, c.SM.Consistency, rec.Ops())
					return s, rec
				}

				base, baseRec := run(0)
				if baseRec.Len() == 0 {
					t.Fatal("observer recorded no operations")
				}
				for _, slack := range []uint64{1, 8, 64} {
					s, rec := run(slack)
					if eng := s.Engine(); eng.Relaxed.Epochs == 0 {
						t.Fatalf("slack=%d: relaxed engine never engaged", slack)
					}
					if rec.Len() == 0 {
						t.Fatalf("slack=%d: observer recorded no operations", slack)
					}
					blocks := touchedBlocks(base, s)
					if got, want := architectedImage(s, blocks), architectedImage(base, blocks); got != want {
						t.Errorf("slack=%d: architected memory diverged from slack=0 (digest %s, want %s)", slack, got, want)
					}
				}
			})
		}
	}
}

// TestRelaxedChaosForcesBitExact pins the safety interlock between
// relaxed sync and fault injection: chaos plans define their
// perturbation schedules in terms of exact per-cycle interleaving, so
// a simulation with an active injector must ignore SlackCycles
// entirely — zero epochs, and a stats.Run bit-identical to the same
// fault seed at slack 0.
func TestRelaxedChaosForcesBitExact(t *testing.T) {
	cfg, _ := goldenConfig("gtsc-rc")
	cfg.Mem.Fault = fault.Chaos(7)

	wl, ok := workload.ByName("CC")
	if !ok {
		t.Fatal("workload CC missing")
	}
	run := func(slack uint64) (*stats.Run, *sim.EngineStats) {
		c := cfg
		c.SlackCycles = slack
		s := sim.New(c)
		r, err := wl.Build(1).RunOn(s)
		if err != nil {
			t.Fatalf("slack=%d: %v", slack, err)
		}
		return r, s.Engine()
	}
	exact, _ := run(0)
	relaxed, eng := run(8)
	if eng.Relaxed.Epochs != 0 {
		t.Fatalf("fault injection active but relaxed engine ran %d epochs", eng.Relaxed.Epochs)
	}
	if !reflect.DeepEqual(exact, relaxed) {
		t.Error("slack=8 under fault injection diverged from slack=0 (must be bit-identical: chaos pins the bit-exact path)")
	}
}

// TestRelaxedWorkerCountInvariant: a relaxed run is deterministic at
// ANY worker count — the epoch buffers capture each domain's sends
// against its own clock and the barrier replays them in canonical
// port order, so goroutine interleaving cannot reach the machine.
// GOMAXPROCS is forced to 4 so the domain pool actually engages even
// on a 1-CPU host (and under -race this doubles as the race gate for
// the relaxed pool).
func TestRelaxedWorkerCountInvariant(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	if prev < 4 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(prev)
	}
	wl, ok := workload.ByName("CC")
	if !ok {
		t.Fatal("workload CC missing")
	}
	for _, label := range []string{"gtsc-rc", "dir-rc"} {
		cfg, _ := goldenConfig(label)
		cfg.SlackCycles = 8

		run := func(workers int) (*stats.Run, *sim.Simulator) {
			c := cfg
			c.SimWorkers = workers
			s := sim.New(c)
			r, err := wl.Build(1).RunOn(s)
			if err != nil {
				t.Fatalf("%s simworkers=%d: %v", label, workers, err)
			}
			if eng := s.Engine(); eng.Relaxed.Epochs == 0 {
				t.Fatalf("%s simworkers=%d: relaxed engine never engaged", label, workers)
			}
			return r, s
		}
		serialRun, serialSim := run(1)
		parRun, parSim := run(4)
		if !reflect.DeepEqual(serialRun, parRun) {
			t.Errorf("%s: relaxed run at simworkers=4 diverged from simworkers=1", label)
		}
		blocks := touchedBlocks(serialSim, parSim)
		if got, want := architectedImage(parSim, blocks), architectedImage(serialSim, blocks); got != want {
			t.Errorf("%s: architected memory diverged across worker counts (%s vs %s)", label, got, want)
		}
	}
}

// TestObserverParallelTickBitIdentical is the regression gate for the
// PR that lifted the observer restriction on the parallel SM tick:
// with an observer attached and SimWorkers=4, the staged tick must
// reproduce the golden fingerprint bit for bit AND deliver the exact
// operation sequence the serial tick delivers (per-component staging
// shims flush in canonical SM order at commit). Before the lift,
// attaching any observer silently forced SimWorkers back to 1.
func TestObserverParallelTickBitIdentical(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	if prev < 4 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(prev)
	}
	wls := map[string]*workload.Workload{}
	for _, wl := range workload.All() {
		wls[wl.Name] = wl
	}
	for _, row := range goldenRows {
		row := row
		if row.workload != "CC" && row.workload != "BFS" {
			continue // two contended workloads across all configs keep this O(seconds)
		}
		t.Run(row.workload+"/"+row.config, func(t *testing.T) {
			t.Parallel()
			cfg, ok := goldenConfig(row.config)
			if !ok {
				t.Fatalf("unknown config label %q", row.config)
			}
			run := func(workers int) (*stats.Run, *check.Recorder) {
				c := cfg
				c.SimWorkers = workers
				rec := check.NewRecorder()
				c.Observer = rec
				r, err := wls[row.workload].Build(1).Run(c)
				if err != nil {
					t.Fatalf("simworkers=%d: %v", workers, err)
				}
				return r, rec
			}
			serial, serialRec := run(1)
			staged, stagedRec := run(4)

			for workers, run := range map[int]*stats.Run{1: serial, 4: staged} {
				h := fnv.New64a()
				fmt.Fprintf(h, "%+v", *run)
				if got := h.Sum64(); got != row.hash {
					t.Errorf("observed simworkers=%d fingerprint = %#x, golden %#x", workers, got, row.hash)
				}
			}
			if a, b := serialRec.Ops(), stagedRec.Ops(); !reflect.DeepEqual(a, b) {
				n := min(len(a), len(b))
				at := n
				for i := 0; i < n; i++ {
					if a[i] != b[i] {
						at = i
						break
					}
				}
				t.Errorf("operation sequences diverge at index %d of %d/%d", at, len(a), len(b))
			}
		})
	}
}

// TestFaultParallelTickBitIdentical is the companion regression for
// the fault-injection restriction: a chaos-plan run must be
// bit-identical at SimWorkers=1 and SimWorkers=4. Injection rejects
// draw from per-lane RNG streams keyed by L1 index (not from the
// shared per-phase stream), so the draw sequence each lane sees is
// independent of tick interleaving; before the lift, an active
// injector silently forced the serial tick.
func TestFaultParallelTickBitIdentical(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	if prev < 4 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(prev)
	}
	wl, ok := workload.ByName("CC")
	if !ok {
		t.Fatal("workload CC missing")
	}
	for _, seed := range []int64{1, 2, 3} {
		cfg, _ := goldenConfig("gtsc-rc")
		cfg.Mem.Fault = fault.Chaos(seed)

		run := func(workers int) *stats.Run {
			c := cfg
			c.SimWorkers = workers
			r, err := wl.Build(1).Run(c)
			if err != nil {
				t.Fatalf("seed=%d simworkers=%d: %v", seed, workers, err)
			}
			return r
		}
		if serial, staged := run(1), run(4); !reflect.DeepEqual(serial, staged) {
			t.Errorf("seed=%d: fault-injected run diverged between simworkers 1 and 4", seed)
		}
	}
}

// TestRelaxedPauseFunctionalEquivalence: pausing a relaxed run at an
// arbitrary mid-window cycle clamps the current epoch to the pause
// point, inserting an extra exchange — an extra observation point —
// so the paused run's cycle counts may drift from the uninterrupted
// run's (pauses landing exactly on grid barriers are trajectory-
// neutral; arbitrary ones are the same bounded added-latency
// perturbation slack itself introduces, and checkpoint restore
// replays the same pause coordinate so resumes stay self-consistent).
// What must hold is functional identity: the workload's word-for-word
// verification passes and the final architected memory matches the
// uninterrupted run over every block either run touched.
func TestRelaxedPauseFunctionalEquivalence(t *testing.T) {
	cfg, _ := goldenConfig("gtsc-rc")
	cfg.SlackCycles = 8
	wl, ok := workload.ByName("CC")
	if !ok {
		t.Fatal("workload CC missing")
	}

	base := sim.New(cfg)
	baseRun, err := wl.Build(1).RunOn(base)
	if err != nil {
		t.Fatalf("uninterrupted: %v", err)
	}

	// Grid-misaligned pause points scattered through the run.
	pauses := []uint64{
		baseRun.Cycles/4 + 1,
		baseRun.Cycles/2 + 3,
		3*baseRun.Cycles/4 + 5,
	}
	e := checkpoint.NewExecution(cfg, wl.Build(1), "CC", 1)
	ctx := context.Background()
	for _, p := range pauses {
		if _, paused, err := e.RunUntil(ctx, p); err != nil {
			t.Fatalf("pause at %d: %v", p, err)
		} else if !paused {
			t.Fatalf("run completed before pause cycle %d", p)
		}
	}
	pausedRun, err := e.Run(ctx)
	if err != nil {
		t.Fatalf("run to completion (verification included): %v", err)
	}
	s := e.Sim()
	if eng := s.Engine(); eng.Relaxed.Epochs == 0 {
		t.Fatal("relaxed engine never engaged")
	}
	t.Logf("cycles: uninterrupted=%d paused=%d identical=%t",
		baseRun.Cycles, pausedRun.Cycles, reflect.DeepEqual(baseRun, pausedRun))
	blocks := touchedBlocks(base, s)
	if got, want := architectedImage(s, blocks), architectedImage(base, blocks); got != want {
		t.Errorf("paused relaxed run diverged functionally from uninterrupted (%s vs %s)", got, want)
	}
}

// TestRelaxedCheckpointHandoff: a checkpoint taken mid-run under
// relaxed sync must survive a cross-process-style handoff — encode,
// decode, ResumeExecution in a fresh machine — with the digest
// verification PASSING. This is only possible because the checkpoint
// records the pause schedule (Checkpoint.PauseCycles): each mid-window
// pause perturbs the relaxed trajectory, so a replay that ran straight
// to the checkpoint cycle would land in a different machine state and
// be rejected. The resumed execution and the original must then finish
// with bit-identical stats — after a verified resume they are the same
// machine.
func TestRelaxedCheckpointHandoff(t *testing.T) {
	cfg, _ := goldenConfig("gtsc-rc")
	cfg.SlackCycles = 8
	wl, ok := workload.ByName("CC")
	if !ok {
		t.Fatal("workload CC missing")
	}
	ctx := context.Background()

	// Dense grid-misaligned pauses: each clamps an epoch mid-window,
	// accumulating trajectory perturbation the replay must reproduce.
	var pauses []uint64
	for p := uint64(37); p <= 37*13; p += 37 {
		pauses = append(pauses, p)
	}
	orig := checkpoint.NewExecution(cfg, wl.Build(1), "CC", 1)
	for _, p := range pauses {
		if _, paused, err := orig.RunUntil(ctx, p); err != nil {
			t.Fatalf("pause at %d: %v", p, err)
		} else if !paused {
			t.Fatalf("run completed before pause cycle %d", p)
		}
	}

	// Hand off through the wire format, as the sweep worker does.
	frame, err := orig.Checkpoint().EncodeBytes()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	ck, err := checkpoint.DecodeBytes(frame)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(ck.PauseCycles) == 0 {
		t.Fatal("checkpoint carries no pause schedule")
	}
	resumed, err := checkpoint.ResumeExecution(ck, cfg, wl.Build(1), "CC", 1)
	if err != nil {
		t.Fatalf("resume (digest-verified replay): %v", err)
	}

	origRun, err := orig.Run(ctx)
	if err != nil {
		t.Fatalf("original completion: %v", err)
	}
	resumedRun, err := resumed.Run(ctx)
	if err != nil {
		t.Fatalf("resumed completion: %v", err)
	}
	if !reflect.DeepEqual(origRun, resumedRun) {
		t.Errorf("resumed run diverged from original:\norig    %+v\nresumed %+v", origRun, resumedRun)
	}
	if eng := resumed.Sim().Engine(); eng.Relaxed.Epochs == 0 {
		t.Fatal("relaxed engine never engaged in resumed run")
	}
	blocks := touchedBlocks(orig.Sim(), resumed.Sim())
	if got, want := architectedImage(resumed.Sim(), blocks), architectedImage(orig.Sim(), blocks); got != want {
		t.Errorf("resumed architected memory diverged (%s vs %s)", got, want)
	}
}
