package sim

import (
	"fmt"
	"hash/fnv"
	"io"
)

// Snapshot is the checkpoint coordinate of a simulator: where the
// machine stands (cycle, completed kernels, execution phase) and an
// FNV-1a digest of its complete state. The digest is canonical and
// process-independent, so a fresh process that deterministically
// replays the same workload to the same cycle computes the same
// digest — which is exactly how checkpoint restore verifies itself
// (see internal/checkpoint).
type Snapshot struct {
	// Cycle is the global clock: the machine has executed exactly this
	// many cycles since construction.
	Cycle uint64
	// KernelsDone counts kernels run to completion.
	KernelsDone int
	// Phase is "idle" between kernels, or "run"/"drain" while a kernel
	// is paused mid-execution.
	Phase string
	// Digest is the FNV-1a hash of the machine's canonical state
	// rendering.
	Digest uint64
}

// Snapshot captures the simulator's current coordinate and state
// digest. The machine must be quiescent or paused (never mid-Tick);
// any point where RunUntil/RunContext has returned qualifies.
func (s *Simulator) Snapshot() Snapshot {
	return Snapshot{
		Cycle:       s.now,
		KernelsDone: s.kernelsDone,
		Phase:       s.phaseName(),
		Digest:      s.StateDigest(),
	}
}

func (s *Simulator) phaseName() string {
	if s.cur == nil {
		return "idle"
	}
	if s.cur.phase == phaseRun {
		return "run"
	}
	return "drain"
}

// StateDigest hashes the machine's canonical state rendering with
// FNV-1a. Equal digests (given equal configurations) mean equal
// machine state: every architectural and microarchitectural bit that
// influences future behavior — warp registers, cache lines with
// timestamp/lease metadata, MSHRs, queues, event heaps, RNG position —
// feeds the hash through a rendering that contains no pointer or
// func values and no unordered map iteration.
func (s *Simulator) StateDigest() uint64 {
	h := fnv.New64a()
	s.DigestState(h)
	return h.Sum64()
}

// DigestState writes the canonical state rendering: the engine's own
// coordinate (clock, phase, drain guard, watchdog sampling state),
// every SM, and the whole memory system.
func (s *Simulator) DigestState(w io.Writer) {
	fmt.Fprintf(w, "sim now=%d done=%d phase=%s\n", s.now, s.kernelsDone, s.phaseName())
	if st := s.cur; st != nil {
		fmt.Fprintf(w, "cur %s start=%d guard=%d sig=%d prog=%d\n",
			st.kernel.Name, st.start, st.guard, st.lastSig, st.lastProgress)
		if st.run != nil {
			fmt.Fprintf(w, "run %+v\n", *st.run)
		}
	}
	for _, sm := range s.SMs {
		sm.DigestState(w)
	}
	s.Sys.DigestState(w)
}
