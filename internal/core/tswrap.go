// Wraparound-safe comparison of width-limited counters.
//
// The §V-D overflow protocol guarantees that *data* timestamps (wts,
// rts, warp_ts, mem_ts) never wrap inside an epoch: ensureRoom fires
// the chip-wide reset before any computation could exceed tsMax, so
// in-epoch compares are plain integer compares. The one counter that
// DOES wrap is the epoch tag itself: it increments on every reset for
// the lifetime of the machine, and on a real chip it travels in a
// narrow message field. This file makes that tag safe to narrow, the
// way Cicada's CompactTimestamp makes its counters safe: compare by
// signed difference in the ring, valid while the true distance stays
// under half the ring (2^(bits-1)).
package core

// tsLess reports a < b for counters confined to `bits` low-order bits,
// by signed difference: the comparison is exact as long as the true
// distance |a-b| is below 2^(bits-1), even when the counter has
// wrapped between the two observations. bits <= 0 or >= 64 selects the
// full-width (plain) comparison.
func tsLess(a, b uint64, bits int) bool {
	if bits <= 0 || bits >= 64 {
		return int64(a-b) < 0
	}
	return int64((a-b)<<uint(64-bits)) < 0
}

// tsBefore reports a <= b under the same signed-difference order.
func tsBefore(a, b uint64, bits int) bool {
	return a == b || tsLess(a, b, bits)
}

// sdelta returns the signed ring distance from b to a (positive when a
// is ahead), sign-extended from `bits`. Exact while |a-b| < 2^(bits-1).
func sdelta(a, b uint64, bits int) int64 {
	if bits <= 0 || bits >= 64 {
		return int64(a - b)
	}
	shift := uint(64 - bits)
	return int64((a-b)<<shift) >> shift
}

// epochMask returns the wire mask of the epoch tag.
func (c *Config) epochMask() uint64 {
	if c.EpochBits <= 0 || c.EpochBits >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(c.EpochBits)) - 1
}

// wireEpoch narrows a full epoch counter to the tag width messages
// carry. Controllers keep the full counter internally (it feeds the
// monotone unrolled-timestamp domain the checker consumes); only the
// wire representation is narrowed.
func (c *Config) wireEpoch(full uint64) uint64 { return full & c.epochMask() }

// epochDelta reconstructs the signed epoch distance from a message's
// wire tag to the local full counter. Positive means the sender has
// seen resets the receiver has not (the receiver must catch up);
// negative means the message was sent before a reset the receiver
// already adopted (the message's timestamps belong to a dead epoch).
// Exact while the true distance is under 2^(EpochBits-1) — the §V-D
// reset is chip-wide and synchronous, so a component only lags by the
// number of resets that fired since it last heard from an L2, which
// stays far below the window for any practical EpochBits.
func (c *Config) epochDelta(tag, local uint64) int64 {
	return sdelta(tag, local&c.epochMask(), c.EpochBits)
}

// The signed half-ring decode above is symmetric: it assumes the true
// distance may point either way and splits the ring down the middle,
// which caps the tolerable lag at 2^(EpochBits-1)-1. Both directions
// of G-TSC traffic actually come with a one-sided bound, and decoding
// against that bound doubles the window — this is what makes a 2-bit
// wire tag survive multiple back-to-back resets (the exhaustive model
// checker found the failure: an L1 that slept through two resets saw
// the legitimately-newer fill alias to "two behind", discarded it as
// dead, and re-requested forever).
//
//   - A response owed to an L1 can never be older than the L1's epoch
//     when it sent the request (banks only move forward, and the bank
//     was at least at the L1's epoch then): decode the tag as the
//     unique representative at or above that floor.
//   - A request arriving at a bank can never be from the future (L1s
//     learn epochs only from bank responses, and all banks reset
//     together): decode against the bank's own epoch as a ceiling.

// epochAtLeast reconstructs a full epoch counter from a wire tag,
// given a sound lower bound on the true value. Exact while
// true - floor < 2^EpochBits.
func (c *Config) epochAtLeast(tag, floor uint64) uint64 {
	if c.EpochBits <= 0 || c.EpochBits >= 64 {
		return tag
	}
	return floor + ((tag - floor) & c.epochMask())
}

// epochAtMost reconstructs a full epoch counter from a wire tag,
// given a sound upper bound on the true value. Exact while
// ceil - true < 2^EpochBits.
func (c *Config) epochAtMost(tag, ceil uint64) uint64 {
	if c.EpochBits <= 0 || c.EpochBits >= 64 {
		return tag
	}
	return ceil - ((ceil - tag) & c.epochMask())
}
