package core

import (
	"testing"
	"testing/quick"

	"github.com/gtsc-sim/gtsc/internal/check"
	"github.com/gtsc-sim/gtsc/internal/coherence"
	"github.com/gtsc-sim/gtsc/internal/mem"
)

// newHarnessObs builds a harness whose controllers report every
// performed operation to obs (the fuzz tests' checker hook).
func newHarnessObs(t *testing.T, nSM int, cfg Config, obs coherence.Observer) *harness {
	h := &harness{t: t, store: mem.NewStore()}
	h.rc = NewResetController()
	h.l2 = NewL2(cfg, 0, L2Geometry{Sets: 8, Ways: 2},
		coherence.SenderFunc(func(m *mem.Msg) bool { h.toL1 = append(h.toL1, m); return true }),
		coherence.SenderFunc(func(m *mem.Msg) bool { h.dram = append(h.dram, m); return true }),
		obs)
	h.l2.AttachResets(h.rc)
	for i := 0; i < nSM; i++ {
		h.l1s = append(h.l1s, NewL1(cfg, i, 1,
			L1Geometry{Sets: 4, Ways: 2, MSHRs: 4, Warps: 4},
			coherence.SenderFunc(func(m *mem.Msg) bool { h.toL2 = append(h.toL2, m); return true }),
			obs))
	}
	return h
}

// fuzzStep decodes one byte pair into an operation against a small
// block pool and issues it; bursts of operations overlap in flight
// before the harness quiesces.
func runFuzzHistory(t *testing.T, cfg Config, raw []byte) []check.Record {
	rec := check.NewRecorder()
	h := newHarnessObs(t, 3, cfg, rec)
	var vals uint32
	i := 0
	for i+1 < len(raw) {
		burst := int(raw[i]%4) + 1
		i++
		for b := 0; b < burst && i+1 < len(raw); b++ {
			op := raw[i]
			arg := raw[i+1]
			i += 2
			sm := int(op) % len(h.l1s)
			warp := int(op>>2) % 4
			block := mem.BlockAddr(1 + int(arg)%5) // 5 shared blocks
			word := int(arg>>4) % 4
			switch op % 5 {
			case 0, 1: // loads dominate, as on real GPUs
				h.load(sm, warp, block, word)
			case 2:
				vals++
				h.storeWord(sm, warp, block, word, vals)
			case 3:
				h.atomic(sm, warp, block, word, mem.AtomAdd, uint32(arg)+1)
			case 4:
				h.atomic(sm, warp, block, word, mem.AtomMax, uint32(arg))
			}
		}
		h.pump()
	}
	h.pump()
	return rec.Ops()
}

// TestFuzzTimestampOrder is the heavyweight soundness test: random
// racing loads, stores and atomics from 3 SMs x 4 warps over a tiny
// shared block pool, under several protocol configurations (including
// narrow timestamps that force overflow resets, forward-all, and
// old-copy visibility), must always produce a history that satisfies
// the paper's timestamp-ordering invariant.
func TestFuzzTimestampOrder(t *testing.T) {
	configs := map[string]Config{
		"default":    {},
		"tiny-ts":    {TSBits: 7},
		"forwardall": {ForwardAll: true},
		"oldcopy":    {KeepOldCopy: true},
		"adaptive":   {AdaptiveLease: true},
		"kitchen":    {TSBits: 9, ForwardAll: true, KeepOldCopy: true, AdaptiveLease: true},
	}
	for name, cfg := range configs {
		name, cfg := name, cfg
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			f := func(raw []byte) bool {
				ops := runFuzzHistory(t, cfg, raw)
				v := check.CheckTimestampOrder(ops, 1)
				if len(v) > 0 {
					t.Logf("violation under %s: %s", name, v[0].Error())
					return false
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFuzzFinalState cross-checks the architected memory after a fuzz
// history: replaying the observed stores in timestamp order against a
// reference memory must produce exactly the words the L2 holds.
func TestFuzzFinalState(t *testing.T) {
	f := func(raw []byte) bool {
		rec := check.NewRecorder()
		h := newHarnessObs(t, 3, Config{}, rec)
		var vals uint32
		for i := 0; i+1 < len(raw); i += 2 {
			op, arg := raw[i], raw[i+1]
			sm := int(op) % len(h.l1s)
			warp := int(op>>2) % 4
			block := mem.BlockAddr(1 + int(arg)%3)
			word := int(arg>>4) % 4
			if op%3 == 0 {
				vals++
				h.storeWord(sm, warp, block, word, vals)
			} else {
				h.atomic(sm, warp, block, word, mem.AtomAdd, uint32(arg)%7)
			}
			if op%4 == 0 {
				h.pump()
			}
		}
		h.pump()

		// Replay observed stores in (ts, seq) order.
		type wkey struct {
			b mem.BlockAddr
			w int
		}
		want := map[wkey]uint32{}
		ops := rec.Ops()
		// Stable sort by (TS, Seq).
		for i := 1; i < len(ops); i++ {
			for j := i; j > 0 && (ops[j].TS < ops[j-1].TS || (ops[j].TS == ops[j-1].TS && ops[j].Seq < ops[j-1].Seq)); j-- {
				ops[j], ops[j-1] = ops[j-1], ops[j]
			}
		}
		for _, o := range ops {
			if !o.Store {
				continue
			}
			for w := 0; w < 4; w++ {
				if o.Mask.Has(w) {
					want[wkey{o.Block, w}] = o.Data.Words[w]
				}
			}
		}
		for k, v := range want {
			got, ok := h.l2.Peek(k.b)
			var gv uint32
			if ok {
				gv = got.Words[k.w]
			} else {
				var blk mem.Block
				h.store.ReadBlock(k.b, &blk)
				gv = blk.Words[k.w]
			}
			if gv != v {
				t.Logf("final state mismatch at %v word %d: got %d want %d", k.b, k.w, gv, v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
