package core

import (
	"fmt"

	"github.com/gtsc-sim/gtsc/internal/cache"
	"github.com/gtsc-sim/gtsc/internal/coherence"
	"github.com/gtsc-sim/gtsc/internal/diag"
	"github.com/gtsc-sim/gtsc/internal/mem"
	"github.com/gtsc-sim/gtsc/internal/stats"
)

// l2Meta is the per-line G-TSC metadata in the shared cache.
type l2Meta struct {
	wts uint64
	rts uint64
	// lease is the block's current lease length (== cfg.Lease unless
	// AdaptiveLease adjusts it per access history).
	lease uint64
}

// l2Miss tracks one outstanding DRAM read and the requests (reads and
// writes) that arrived for the block while it was in flight; they are
// replayed in order when the fill lands, preserving the bank's
// serialization of the block.
type l2Miss struct {
	block   mem.BlockAddr
	waiting []*mem.Msg
}

// L2 is one G-TSC shared cache bank. It implements coherence.L2.
//
// The L2 is non-inclusive (§V-C): evictions never stall; the victim's
// rts folds into the bank's single mem_ts, and later stores to a
// refetched block order after mem_ts by timestamp assignment rather
// than by waiting.
type L2 struct {
	cfg    Config
	bankID int
	now    uint64

	array *cache.Array[l2Meta]
	memTS uint64
	miss  map[mem.BlockAddr]*l2Miss

	inQ      mem.MsgQueue
	perCycle int

	sendNoC  coherence.Sender
	sendDRAM coherence.Sender
	outNoC   mem.MsgQueue
	outDRAM  mem.MsgQueue

	// pool recycles the bank's response msgs and blocks plus the
	// request msgs it consumes; it is shared with the bank's DRAM
	// partition (both tick in the hierarchy phase) so the DRAM
	// read/fill loop recycles too.
	pool *mem.Pool

	stats stats.L2Stats
	obs   coherence.Observer

	// renewDist records how far each renewal pushed a block's rts —
	// the "lease extension distance" characterization (§VI-E flavour).
	renewDist *stats.Histogram

	resets *ResetController
	epoch  uint64
	fail   *diag.ProtocolError
}

// L2Geometry describes one bank's organization.
type L2Geometry struct {
	Sets int
	Ways int
	// PerCycle is the bank's request service rate (default 1).
	PerCycle int
}

// NewL2 builds bank bankID. sendNoC injects responses toward SMs;
// sendDRAM feeds the bank's memory partition. obs may be nil.
func NewL2(cfg Config, bankID int, geo L2Geometry, sendNoC, sendDRAM coherence.Sender, obs coherence.Observer) *L2 {
	cfg.fillDefaults()
	if geo.PerCycle == 0 {
		geo.PerCycle = 1
	}
	return &L2{
		cfg:       cfg,
		bankID:    bankID,
		array:     cache.NewArray[l2Meta](geo.Sets, geo.Ways),
		memTS:     cfg.startTS(),
		miss:      make(map[mem.BlockAddr]*l2Miss),
		perCycle:  geo.PerCycle,
		sendNoC:   sendNoC,
		sendDRAM:  sendDRAM,
		obs:       obs,
		renewDist: stats.NewHistogram(),
		pool:      &mem.Pool{},
	}
}

// Pool exposes the bank's message pool so the paired DRAM partition
// can draw its fills from (and free its consumed requests into) the
// same free lists, closing the DRAM read/write loops.
func (l *L2) Pool() *mem.Pool { return l.pool }

// AttachResets wires the bank into the chip-wide overflow reset
// controller (§V-D). Optional; without it timestamps are assumed wide
// enough not to wrap (the controller panics if they do).
func (l *L2) AttachResets(rc *ResetController) {
	l.resets = rc
	rc.banks = append(rc.banks, l)
}

// Stats implements coherence.L2.
func (l *L2) Stats() *stats.L2Stats { return &l.stats }

// Pending implements coherence.L2.
func (l *L2) Pending() int {
	n := l.inQ.Len() + l.outNoC.Len() + l.outDRAM.Len()
	for _, m := range l.miss {
		n += len(m.waiting) + 1
	}
	return n
}

// Quiescent implements coherence.L2. Outstanding misses do not block
// quiescence: fills never stall (installFill evicts unconditionally in
// this non-inclusive design), so a miss entry only changes state when
// a DRAM fill message arrives, which the skip engine models as a
// scheduled event.
func (l *L2) Quiescent() bool {
	return l.inQ.Empty() && l.outNoC.Empty() && l.outDRAM.Empty()
}

// Drained implements coherence.L2: O(1) Pending() == 0.
func (l *L2) Drained() bool {
	return l.inQ.Empty() && l.outNoC.Empty() && l.outDRAM.Empty() && len(l.miss) == 0
}

// MemTS exposes the bank's memory timestamp (tests, trace tooling).
func (l *L2) MemTS() uint64 { return l.memTS }

// Epoch exposes the bank's current (full, unwrapped) timestamp epoch.
func (l *L2) Epoch() uint64 { return l.epoch }

// ForEachLease implements coherence.LeaseHolder: it visits every valid
// line's [wts, rts] lease, for invariant checking by the model checker.
func (l *L2) ForEachLease(fn func(b mem.BlockAddr, wts, rts uint64)) {
	l.array.ForEach(func(c *cache.Line[l2Meta]) { fn(c.Addr, c.Meta.wts, c.Meta.rts) })
}

// RenewalDistances returns the histogram of rts extension distances —
// how far each read pushed a block's lease forward. Large values mean
// the reader's warp_ts had advanced far past the block (store-heavy
// phases); values near the lease length mean steady renewal.
func (l *L2) RenewalDistances() *stats.Histogram { return l.renewDist }

// failf records the first protocol violation; the bank then drops
// further input until the simulator surfaces the error.
func (l *L2) failf(event, format string, args ...any) {
	if l.fail == nil {
		l.fail = diag.Errf(fmt.Sprintf("gtsc-l2[%d]", l.bankID), event, format, args...)
	}
}

// Err implements coherence.L2.
func (l *L2) Err() error {
	if l.fail == nil {
		return nil
	}
	return l.fail
}

// DumpState implements coherence.L2.
func (l *L2) DumpState() diag.CacheState {
	st := diag.CacheState{
		Name: "gtsc-l2", ID: l.bankID, Pending: l.Pending(),
		InQ: l.inQ.Len(), OutQ: l.outNoC.Len() + l.outDRAM.Len(), Misses: len(l.miss),
	}
	if st.Pending > 0 {
		st.Detail = l.DebugString()
	}
	return st
}

// Deliver implements coherence.L2: requests queue and are serviced at
// the bank's port rate in Tick, modeling shared-cache input contention.
func (l *L2) Deliver(msg *mem.Msg) {
	if l.fail != nil {
		return
	}
	l.inQ.Push(msg)
}

// DRAMFill implements coherence.L2.
func (l *L2) DRAMFill(msg *mem.Msg) {
	if l.fail != nil {
		return
	}
	m, ok := l.miss[msg.Block]
	if !ok {
		l.failf("orphan-dram-fill", "DRAM fill for %v without outstanding miss", msg.Block)
		return
	}
	delete(l.miss, msg.Block)

	line := l.installFill(msg.Block, msg.Data)
	for _, waiting := range m.waiting {
		// Replay in arrival order. The line cannot be evicted between
		// replays within this call, so re-lookup is unnecessary. Each
		// replayed request is consumed by process and recycles here.
		l.process(waiting, line)
		l.pool.PutBlock(waiting.Data)
		l.pool.PutMsg(waiting)
	}
	// installFill copied the payload into the array; the fill message
	// returns to the pool it was drawn from (the partition shares ours).
	l.pool.PutBlock(msg.Data)
	l.pool.PutMsg(msg)
}

// installFill allocates a line for a block arriving from DRAM, evicting
// any victim (non-inclusive: no constraint, never a stall), and assigns
// the lease [mem_ts, mem_ts+lease] (Fig 6).
func (l *L2) installFill(b mem.BlockAddr, data *mem.Block) *cache.Line[l2Meta] {
	victim := l.array.Victim(b, nil)
	if victim.Valid {
		l.evict(victim)
	}
	l.ensureRoom(l.memTS + l.cfg.Lease)
	l.array.Install(victim, b, data, l.now)
	victim.Meta.wts = l.memTS
	victim.Meta.rts = l.checked(l.memTS + l.cfg.Lease)
	victim.Meta.lease = l.cfg.Lease
	l.stats.DataAccesses++
	return victim
}

// evict writes back a dirty victim and folds its rts into mem_ts so
// future stores to the block order after every outstanding lease.
func (l *L2) evict(victim *cache.Line[l2Meta]) {
	l.stats.Evictions++
	l.memTS = maxu(l.memTS, victim.Meta.rts)
	if victim.Dirty {
		l.stats.WritebackDRAM++
		data := l.pool.Block()
		*data = victim.Data
		msg := l.pool.Msg()
		*msg = mem.Msg{
			Type: mem.DRAMWr, Block: victim.Addr, Src: l.bankID, Dst: l.bankID,
			Data: data, Mask: mem.MaskAll,
		}
		l.postDRAM(msg)
	}
	l.array.Invalidate(victim)
}

// process serves one request against a present line.
func (l *L2) process(msg *mem.Msg, line *cache.Line[l2Meta]) {
	switch msg.Type {
	case mem.BusRd:
		l.processRead(msg, line)
	case mem.BusWr:
		l.processWrite(msg, line)
	case mem.BusAtom:
		l.processAtomic(msg, line)
	default:
		l.failf("unexpected-message", "message %v for block %v from SM %d", msg.Type, msg.Block, msg.Src)
	}
}

// processAtomic performs a read-modify-write as an indivisible
// load+store at a single timestamp wts' = max(rts+1, warp_ts+1): the
// read half returns the value current at wts', the write half creates
// the new version — no stall, like every G-TSC write.
func (l *L2) processAtomic(msg *mem.Msg, line *cache.Line[l2Meta]) {
	if l.cfg.AdaptiveLease && line.Meta.lease > l.cfg.Lease {
		line.Meta.lease /= 2
		if line.Meta.lease < l.cfg.Lease {
			line.Meta.lease = l.cfg.Lease
		}
	}
	lease := l.lineLease(line)
	l.ensureRoom(maxu(line.Meta.rts+1, l.reqWarpTS(msg)+1) + lease)
	warpTS := l.reqWarpTS(msg)
	wts := l.checked(maxu(line.Meta.rts+1, warpTS+1))
	rts := l.checked(wts + lease)

	old := l.pool.Block()
	mem.Merge(old, &line.Data, msg.Mask)
	for i := 0; i < mem.WordsPerBlock; i++ {
		if msg.Mask.Has(i) {
			line.Data.Words[i] = msg.Atom.Apply(line.Data.Words[i], msg.Data.Words[i])
		}
	}
	line.Dirty = true
	line.Meta.wts = wts
	line.Meta.rts = rts
	l.array.Touch(line, l.now)
	l.stats.DataAccesses++

	if l.obs != nil {
		// The read half observes the pre-update values, ordered just
		// before the write half at the same timestamp (same ts,
		// earlier physical sequence).
		l.obs.Observe(coherence.Op{
			SM: msg.Src, Warp: msg.Warp, Block: msg.Block,
			Mask: msg.Mask, Data: *old, TS: l.unrolled(wts), Cycle: l.now,
		})
		var stored mem.Block
		mem.Merge(&stored, &line.Data, msg.Mask)
		l.obs.Observe(coherence.Op{
			SM: msg.Src, Warp: msg.Warp, Store: true, Block: msg.Block,
			Mask: msg.Mask, Data: stored, TS: l.unrolled(wts), Cycle: l.now,
		})
	}

	ack := l.pool.Msg()
	*ack = mem.Msg{
		Type: mem.BusAtomAck, Block: msg.Block, Src: l.bankID, Dst: msg.Src,
		WTS: wts, RTS: rts, Data: old, Mask: msg.Mask,
		ReqID: msg.ReqID, Warp: msg.Warp, Epoch: l.cfg.wireEpoch(l.epoch),
		Reset: l.staleReq(msg),
	}
	l.postNoC(ack)
}

// reqWarpTS interprets the request's warp timestamp, discarding
// timestamps from a previous epoch (the requester will be told to
// reset via the response's Epoch/Reset fields). Epoch tags are
// decoded against the bank's own epoch as a ceiling so a narrow wire
// tag survives counter wraparound (see tswrap.go).
func (l *L2) reqWarpTS(msg *mem.Msg) uint64 {
	if l.staleReq(msg) {
		return initialTS
	}
	return msg.WarpTS
}

// staleReq reports whether the request was sent before the bank's
// current epoch began (its timestamps belong to a dead epoch). A
// requester can never be ahead of a bank — L1s learn epochs only from
// bank responses and all banks reset together — so the bank's own
// epoch is a ceiling for the decode and any non-current tag is stale,
// no matter how many resets the requester slept through (exact while
// the requester lags fewer than 2^EpochBits resets; the signed
// half-ring compare this replaces misread a lag of 2^(EpochBits-1) or
// more as "requester ahead").
func (l *L2) staleReq(msg *mem.Msg) bool {
	return l.cfg.epochAtMost(msg.Epoch, l.epoch) < l.epoch
}

// processRead implements Fig 4: renewal when the requester's version
// matches (dataless BusRnw), fill otherwise.
func (l *L2) processRead(msg *mem.Msg, line *cache.Line[l2Meta]) {
	// A same-version re-request means the fixed lease ran out while
	// the data stayed current: under the adaptive policy the block
	// earns a longer lease (Tardis-2.0-style prediction).
	if l.cfg.AdaptiveLease && !l.staleReq(msg) && msg.WTS == line.Meta.wts && line.Meta.lease < l.cfg.MaxLease {
		line.Meta.lease *= 2
		if line.Meta.lease > l.cfg.MaxLease {
			line.Meta.lease = l.cfg.MaxLease
		}
	}
	lease := l.lineLease(line)
	// A lease extension past the timestamp width triggers the
	// chip-wide reset first; afterwards every input is re-read in the
	// new epoch (the request's warp_ts is discarded as stale).
	l.ensureRoom(l.reqWarpTS(msg) + lease)
	warpTS := l.reqWarpTS(msg)
	newRTS := maxu(line.Meta.rts, warpTS+lease)
	if newRTS > line.Meta.rts {
		l.renewDist.Observe(newRTS - line.Meta.rts)
	}
	line.Meta.rts = newRTS
	l.array.Touch(line, l.now)

	stale := l.staleReq(msg)
	if !stale && msg.WTS == line.Meta.wts {
		// Same version at the requester: renew the lease without data.
		l.stats.RenewalsSent++
		rnw := l.pool.Msg()
		*rnw = mem.Msg{
			Type: mem.BusRnw, Block: msg.Block, Src: l.bankID, Dst: msg.Src,
			RTS: newRTS, ReqID: msg.ReqID, Epoch: l.cfg.wireEpoch(l.epoch),
		}
		l.postNoC(rnw)
		return
	}
	l.stats.FillsSent++
	l.stats.DataAccesses++
	data := l.pool.Block()
	*data = line.Data
	fill := l.pool.Msg()
	*fill = mem.Msg{
		Type: mem.BusFill, Block: msg.Block, Src: l.bankID, Dst: msg.Src,
		WTS: line.Meta.wts, RTS: newRTS, Data: data, ReqID: msg.ReqID,
		Epoch: l.cfg.wireEpoch(l.epoch), Reset: stale,
	}
	l.postNoC(fill)
}

// processWrite implements Fig 5: the store is logically scheduled
// strictly after every granted lease and after the writing warp's past
// (wts' = max(rts+1, warp_ts+1)) — no stall, ever.
func (l *L2) processWrite(msg *mem.Msg, line *cache.Line[l2Meta]) {
	// A write demotes an adaptive lease: the block is not read-only.
	if l.cfg.AdaptiveLease && line.Meta.lease > l.cfg.Lease {
		line.Meta.lease /= 2
		if line.Meta.lease < l.cfg.Lease {
			line.Meta.lease = l.cfg.Lease
		}
	}
	lease := l.lineLease(line)
	// Trigger the overflow reset before computing anything, then
	// recompute all inputs in the (possibly new) epoch.
	l.ensureRoom(maxu(line.Meta.rts+1, l.reqWarpTS(msg)+1) + lease)
	warpTS := l.reqWarpTS(msg)
	prevWTS := line.Meta.wts
	wts := l.checked(maxu(line.Meta.rts+1, warpTS+1))
	rts := l.checked(wts + lease)

	mem.Merge(&line.Data, msg.Data, msg.Mask)
	line.Dirty = true
	line.Meta.wts = wts
	line.Meta.rts = rts
	l.array.Touch(line, l.now)
	l.stats.DataAccesses++

	if l.obs != nil {
		var stored mem.Block
		mem.Merge(&stored, msg.Data, msg.Mask)
		l.obs.Observe(coherence.Op{
			SM: msg.Src, Warp: msg.Warp, Store: true, Block: msg.Block,
			Mask: msg.Mask, Data: stored, TS: l.unrolled(wts), Cycle: l.now,
		})
	}

	ack := l.pool.Msg()
	*ack = mem.Msg{
		Type: mem.BusWrAck, Block: msg.Block, Src: l.bankID, Dst: msg.Src,
		WTS: wts, RTS: rts, ReqID: msg.ReqID, Warp: msg.Warp, Epoch: l.cfg.wireEpoch(l.epoch),
		Reset: l.staleReq(msg),
	}
	if msg.WTS != mem.NoWTS && (msg.WTS != prevWTS || l.staleReq(msg)) {
		// The writer's cached base version was stale: return the
		// authoritative merged block so its L1 copy is coherent.
		data := l.pool.Block()
		*data = line.Data
		ack.Data = data
	}
	l.postNoC(ack)
}

func (l *L2) unrolled(ts uint64) uint64 { return l.epoch*(l.cfg.tsMax()+1) + ts }

// lineLease returns the lease to grant on a line (per-block under the
// adaptive policy, the fixed config lease otherwise).
func (l *L2) lineLease(line *cache.Line[l2Meta]) uint64 {
	if line.Meta.lease == 0 {
		line.Meta.lease = l.cfg.Lease
	}
	return line.Meta.lease
}

// ensureRoom triggers the chip-wide overflow reset (§V-D) when the
// worst-case timestamp a pending computation will produce does not fit
// in the configured width. Callers must re-read every timestamp input
// after calling it: the reset rewrites line metadata, mem_ts and the
// epoch (which in turn invalidates the request's stale warp_ts).
func (l *L2) ensureRoom(worst uint64) {
	if worst <= l.cfg.tsMax() {
		return
	}
	if l.resets == nil {
		l.failf("timestamp-overflow", "timestamp overflow (%d > %d) with no reset controller", worst, l.cfg.tsMax())
		return
	}
	l.resets.trigger(l)
}

// checked asserts a computed timestamp fits the width; ensureRoom must
// have created space beforehand, so a failure is a protocol bug.
func (l *L2) checked(ts uint64) uint64 {
	if ts > l.cfg.tsMax() {
		l.failf("timestamp-width", "timestamp %d exceeds width after reset (lease too large for TSBits?)", ts)
		return l.cfg.tsMax()
	}
	return ts
}

// reset is invoked by the ResetController on every bank: wts of all
// blocks restarts at 1, rts at lease, mem_ts at 1 (§V-D). Data is
// up-to-date in L2, so nothing flushes here; L1s learn of the new
// epoch from response messages and flush themselves.
func (l *L2) reset(epoch uint64) {
	l.epoch = epoch
	l.stats.TSResets++
	l.array.ForEach(func(c *cache.Line[l2Meta]) {
		c.Meta.wts = initialTS
		c.Meta.rts = initialTS + l.cfg.Lease
		c.Meta.lease = l.cfg.Lease
	})
	l.memTS = initialTS
}

// SyncClock implements coherence.L2.
func (l *L2) SyncClock(now uint64) { l.now = now }

// Tick implements coherence.L2: drain output backpressure first, then
// service up to perCycle queued requests.
func (l *L2) Tick(now uint64) {
	l.now = now
	l.drainOut()
	if !l.outNoC.Empty() || !l.outDRAM.Empty() {
		return // head-of-line: do not accept new work while blocked
	}
	for i := 0; i < l.perCycle && !l.inQ.Empty(); i++ {
		l.service(l.inQ.Pop())
	}
}

// service handles one request from the NoC.
func (l *L2) service(msg *mem.Msg) {
	switch msg.Type {
	case mem.BusRd:
		l.stats.Reads++
	case mem.BusWr:
		l.stats.Writes++
	case mem.BusAtom:
		l.stats.Atomics++
	default:
		l.failf("unexpected-message", "request %v for block %v from SM %d", msg.Type, msg.Block, msg.Src)
		return
	}
	l.stats.TagProbes++

	if m, ok := l.miss[msg.Block]; ok {
		// A fill for this block is in flight; preserve order behind it.
		m.waiting = append(m.waiting, msg)
		return
	}
	line := l.array.Lookup(msg.Block)
	if line == nil {
		l.stats.Misses++
		m := &l2Miss{block: msg.Block, waiting: []*mem.Msg{msg}}
		l.miss[msg.Block] = m
		rd := l.pool.Msg()
		*rd = mem.Msg{Type: mem.DRAMRd, Block: msg.Block, Src: l.bankID, Dst: l.bankID}
		l.postDRAM(rd)
		return
	}
	l.stats.Hits++
	l.process(msg, line)
	// The request was served synchronously; recycle it and its payload.
	l.pool.PutBlock(msg.Data)
	l.pool.PutMsg(msg)
}

func (l *L2) postNoC(msg *mem.Msg) {
	if l.outNoC.Empty() && l.sendNoC.TrySend(msg) {
		return
	}
	l.outNoC.Push(msg)
}

func (l *L2) postDRAM(msg *mem.Msg) {
	if l.outDRAM.Empty() && l.sendDRAM.TrySend(msg) {
		return
	}
	l.outDRAM.Push(msg)
}

func (l *L2) drainOut() {
	for !l.outNoC.Empty() {
		if !l.sendNoC.TrySend(l.outNoC.Head()) {
			break
		}
		l.outNoC.Pop()
	}
	for !l.outDRAM.Empty() {
		if !l.sendDRAM.TrySend(l.outDRAM.Head()) {
			break
		}
		l.outDRAM.Pop()
	}
}

// ResetController coordinates the chip-wide timestamp overflow reset:
// the overflowing bank "sends a reset signal to all L2 cache banks"
// (§V-D) and every bank restarts its timestamps in a new epoch.
type ResetController struct {
	banks []*L2
	epoch uint64
	count uint64

	// MutSkipBroadcast is a test-only protocol mutation: a triggered
	// reset is applied only to the overflowing bank instead of being
	// broadcast chip-wide, leaving the other banks in the old epoch.
	// It exists so the model checker's mutation tests can prove the
	// epoch-agreement invariant has teeth; never set it in a real run.
	MutSkipBroadcast bool
}

// NewResetController returns an empty controller; banks join via
// (*L2).AttachResets.
func NewResetController() *ResetController { return &ResetController{} }

// Resets reports how many overflow resets occurred.
func (rc *ResetController) Resets() uint64 { return rc.count }

// Epoch reports the current timestamp epoch.
func (rc *ResetController) Epoch() uint64 { return rc.epoch }

func (rc *ResetController) trigger(origin *L2) {
	rc.epoch++
	rc.count++
	for _, b := range rc.banks {
		if rc.MutSkipBroadcast && origin != nil && b != origin {
			continue
		}
		b.reset(rc.epoch)
	}
}

// ForceReset triggers a chip-wide overflow reset out of band — the
// fault package's rollover plan uses it to exercise the §V-D protocol
// mid-run instead of only near a natural wraparound. It is exactly the
// reset an overflowing bank would trigger, minus the overflow.
func (rc *ResetController) ForceReset() { rc.trigger(nil) }

// Peek implements coherence.L2 (verification hook).
func (l *L2) Peek(b mem.BlockAddr) (*mem.Block, bool) {
	line := l.array.Lookup(b)
	if line == nil {
		return nil, false
	}
	data := line.Data
	return &data, true
}

// DebugString renders the bank's transient state for deadlock
// diagnosis and the gtsctrace tool.
func (l *L2) DebugString() string {
	s := fmt.Sprintf("L2[bank%d] epoch=%d memTS=%d inQ=%d outNoC=%d outDRAM=%d\n",
		l.bankID, l.epoch, l.memTS, l.inQ.Len(), l.outNoC.Len(), l.outDRAM.Len())
	for b, m := range l.miss {
		s += fmt.Sprintf("  miss %v waiting=%d\n", b, len(m.waiting))
	}
	return s
}
