// Package core implements G-TSC, the paper's contribution: a
// timestamp-ordering cache coherence protocol for GPUs built on the
// ideas of Tardis (Yu & Devadas, PACT'15) and adapted to the GPU's
// massive thread parallelism (Sections III–V of the paper).
//
// Every cache block carries a write timestamp (wts) and read timestamp
// (rts); the half-open logical interval [wts, rts] is the block's
// lease, during which its data is valid. Each warp carries warp_ts,
// the timestamp of its last memory operation. Coherence transactions
// execute in logical time: a store can be ordered "in the future"
// (wts' = max(rts+1, warp_ts+1)) instead of stalling for lease expiry
// as Temporal Coherence must, which eliminates TC's lease-induced
// stalls, permits a non-inclusive L2, and needs no synchronized
// global clocks.
//
// GPU-specific mechanisms implemented here, mirroring Section V:
//
//   - Update visibility (V-A): a stored-to L1 line is locked until the
//     store's BusWrAck returns; intervening readers wait in the MSHR
//     (option 1), or read a preserved old copy (option 2, configurable).
//   - Request combining (V-B): only the first reader of a block sends a
//     BusRd; merged readers whose warp_ts exceeds the filled lease
//     trigger dataless renewals (forward-all is available for ablation).
//   - Non-inclusive L2 (V-C): evictions fold the victim's rts into a
//     single per-bank mem_ts; later fills/stores order after it.
//   - Timestamp overflow (V-D): width-limited timestamps (16-bit by
//     default) with the paper's L2-driven epoch reset protocol.
package core

import (
	"fmt"

	"github.com/gtsc-sim/gtsc/internal/mem"
)

// Config holds G-TSC protocol parameters.
type Config struct {
	// Lease is the logical lease length added to a reader's warp_ts
	// when granting or renewing read access (paper sweeps 8–20,
	// default 10; Fig 14 shows insensitivity in that range).
	Lease uint64
	// TSBits is the timestamp width; timestamps wrapping past
	// (1<<TSBits)-1 trigger the overflow reset protocol (default 16).
	TSBits int
	// ForwardAll, when true, forwards every reader's BusRd to L2
	// instead of combining them in the MSHR — the Section V-B
	// ablation (raises traffic 12–35%).
	ForwardAll bool
	// KeepOldCopy selects update-visibility option 2 (Section V-A):
	// a stored-to line preserves its old data and lease so readers
	// whose warp_ts falls in the old lease proceed without waiting.
	// Default (false) is option 1: readers wait for the BusWrAck.
	KeepOldCopy bool
	// AdaptiveLease enables per-block lease prediction in the spirit
	// of Tardis 2.0's lease policies (an extension beyond the paper):
	// a block renewed without an intervening write doubles its lease
	// (up to MaxLease); a written block halves it (down to Lease).
	// Read-mostly blocks thus survive the warp-timestamp advances
	// that stores cause, cutting renewal traffic.
	AdaptiveLease bool
	// MaxLease caps adaptive leases (default 8*Lease).
	MaxLease uint64
	// InitTS overrides the power-on / kernel-boundary value of warp_ts
	// and mem_ts (default initialTS = 1). The fault package's
	// timestamp-stress mode sets it near tsMax so the §V-D overflow
	// reset fires within the first few accesses of every kernel;
	// overflow resets themselves always return to initialTS.
	InitTS uint64
}

// DefaultConfig returns the configuration the paper evaluates.
func DefaultConfig() Config { return Config{Lease: 10, TSBits: 16} }

func (c *Config) fillDefaults() {
	if c.Lease == 0 {
		c.Lease = 10
	}
	if c.TSBits == 0 {
		c.TSBits = 16
	}
	if c.MaxLease == 0 {
		c.MaxLease = 8 * c.Lease
	}
	if c.MaxLease < c.Lease {
		c.MaxLease = c.Lease
	}
	// The overflow reset must leave room for at least one full
	// store+lease computation in the fresh epoch, or resets cannot
	// make progress (worst post-reset value is 2*leaseCeil + 3).
	if worst := c.leaseCeil(); 2*worst+3 > c.tsMax() {
		panic(fmt.Sprintf("gtsc: lease %d too large for %d-bit timestamps", worst, c.TSBits))
	}
	// A stressed start value must still leave room for one full
	// store+lease computation before the reset protocol engages.
	if limit := c.tsMax() - 2*c.leaseCeil() - 3; c.InitTS > limit {
		c.InitTS = limit
	}
}

// startTS is the power-on / kernel-boundary timestamp value.
func (c *Config) startTS() uint64 {
	if c.InitTS == 0 {
		return initialTS
	}
	return c.InitTS
}

// leaseCeil is the largest lease the configuration can grant.
func (c *Config) leaseCeil() uint64 {
	if c.AdaptiveLease {
		return c.MaxLease
	}
	return c.Lease
}

// tsMax returns the largest representable timestamp.
func (c *Config) tsMax() uint64 { return (uint64(1) << uint(c.TSBits)) - 1 }

// initialTS is the power-on value of warp_ts and mem_ts (paper §III-B:
// "All mem_ts and warp_ts are initially set to 1").
const initialTS = 1

// bankOf maps a block to its L2 bank / memory partition by low-order
// block address interleaving.
func bankOf(b mem.BlockAddr, nBanks int) int { return int(uint64(b) % uint64(nBanks)) }

func maxu(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
