// Package core implements G-TSC, the paper's contribution: a
// timestamp-ordering cache coherence protocol for GPUs built on the
// ideas of Tardis (Yu & Devadas, PACT'15) and adapted to the GPU's
// massive thread parallelism (Sections III–V of the paper).
//
// Every cache block carries a write timestamp (wts) and read timestamp
// (rts); the half-open logical interval [wts, rts] is the block's
// lease, during which its data is valid. Each warp carries warp_ts,
// the timestamp of its last memory operation. Coherence transactions
// execute in logical time: a store can be ordered "in the future"
// (wts' = max(rts+1, warp_ts+1)) instead of stalling for lease expiry
// as Temporal Coherence must, which eliminates TC's lease-induced
// stalls, permits a non-inclusive L2, and needs no synchronized
// global clocks.
//
// GPU-specific mechanisms implemented here, mirroring Section V:
//
//   - Update visibility (V-A): a stored-to L1 line is locked until the
//     store's BusWrAck returns; intervening readers wait in the MSHR
//     (option 1), or read a preserved old copy (option 2, configurable).
//   - Request combining (V-B): only the first reader of a block sends a
//     BusRd; merged readers whose warp_ts exceeds the filled lease
//     trigger dataless renewals (forward-all is available for ablation).
//   - Non-inclusive L2 (V-C): evictions fold the victim's rts into a
//     single per-bank mem_ts; later fills/stores order after it.
//   - Timestamp overflow (V-D): width-limited timestamps (16-bit by
//     default) with the paper's L2-driven epoch reset protocol.
package core

import (
	"github.com/gtsc-sim/gtsc/internal/diag"
	"github.com/gtsc-sim/gtsc/internal/mem"
)

// Config holds G-TSC protocol parameters.
type Config struct {
	// Lease is the logical lease length added to a reader's warp_ts
	// when granting or renewing read access (paper sweeps 8–20,
	// default 10; Fig 14 shows insensitivity in that range).
	Lease uint64
	// TSBits is the timestamp width; timestamps wrapping past
	// (1<<TSBits)-1 trigger the overflow reset protocol (default 16).
	TSBits int
	// ForwardAll, when true, forwards every reader's BusRd to L2
	// instead of combining them in the MSHR — the Section V-B
	// ablation (raises traffic 12–35%).
	ForwardAll bool
	// KeepOldCopy selects update-visibility option 2 (Section V-A):
	// a stored-to line preserves its old data and lease so readers
	// whose warp_ts falls in the old lease proceed without waiting.
	// Default (false) is option 1: readers wait for the BusWrAck.
	KeepOldCopy bool
	// AdaptiveLease enables per-block lease prediction in the spirit
	// of Tardis 2.0's lease policies (an extension beyond the paper):
	// a block renewed without an intervening write doubles its lease
	// (up to MaxLease); a written block halves it (down to Lease).
	// Read-mostly blocks thus survive the warp-timestamp advances
	// that stores cause, cutting renewal traffic.
	AdaptiveLease bool
	// MaxLease caps adaptive leases (default 8*Lease).
	MaxLease uint64
	// InitTS overrides the power-on / kernel-boundary value of warp_ts
	// and mem_ts (default initialTS = 1). The fault package's
	// timestamp-stress mode sets it near tsMax so the §V-D overflow
	// reset fires within the first few accesses of every kernel;
	// overflow resets themselves always return to initialTS.
	InitTS uint64
	// EpochBits is the wire width of the timestamp-epoch tag carried in
	// every message (default 64 = effectively unbounded). Unlike data
	// timestamps, the epoch counter is never reset, so a narrow tag
	// wraps; receivers decode tags against a one-sided bound they each
	// hold — an L1 against its epoch at the oldest outstanding
	// request's send, a bank against its own epoch as a ceiling (see
	// tswrap.go). The decode stays exact while no component sleeps
	// through 2^EpochBits or more resets between exchanges with the
	// banks; the exhaustive model checker drives EpochBits=2 through
	// enough resets to wrap the tag and relies on exactly this window.
	EpochBits int
}

// DefaultConfig returns the configuration the paper evaluates.
func DefaultConfig() Config { return Config{Lease: 10, TSBits: 16} }

func (c *Config) fillDefaults() {
	if c.Lease == 0 {
		c.Lease = 10
	}
	if c.TSBits == 0 {
		c.TSBits = 16
	}
	if c.EpochBits == 0 {
		c.EpochBits = 64
	}
	if c.MaxLease == 0 {
		c.MaxLease = 8 * c.Lease
	}
	if c.MaxLease < c.Lease {
		c.MaxLease = c.Lease
	}
	// The overflow reset must leave room for at least one full
	// store+lease computation in the fresh epoch, or resets cannot make
	// progress (worst post-reset value is 2*leaseCeil + 3). Validate
	// reports the misconfiguration as a typed error; callers that skip
	// it (constructing controllers directly) get the lease clamped to
	// the largest workable value instead of a wedged machine.
	if c.TSBits < minTSBits {
		c.TSBits = minTSBits
	}
	if limit := (c.tsMax() - 3) / 2; c.Lease > limit || c.MaxLease > limit {
		if c.Lease > limit {
			c.Lease = limit
		}
		if c.MaxLease > limit {
			c.MaxLease = limit
		}
	}
	// A stressed start value must still leave room for one full
	// store+lease computation before the reset protocol engages.
	if limit := c.tsMax() - 2*c.leaseCeil() - 3; c.InitTS > limit {
		c.InitTS = limit
	}
}

// minTSBits is the narrowest workable timestamp width: even a lease of
// 1 needs 2*1+3 = 5 distinct values after a reset, which 3 bits (tsMax
// 7) is the first width to provide.
const minTSBits = 3

// Validate reports lease/TSBits combinations the protocol cannot make
// forward progress under, as a typed *diag.ConfigError (no panics; the
// simulator surfaces it like any other run failure). The zero fields
// of an unvalidated config are defaulted first, exactly as the
// controller constructors default them.
func (c Config) Validate() error {
	if c.TSBits < 0 || c.TSBits > 64 {
		return diag.ConfigErrf("gtsc", "TSBits", "timestamp width %d outside 1..64", c.TSBits)
	}
	if c.TSBits != 0 && c.TSBits < minTSBits {
		return diag.ConfigErrf("gtsc", "TSBits",
			"timestamp width %d too narrow: the §V-D reset protocol needs at least %d bits", c.TSBits, minTSBits)
	}
	if c.EpochBits < 0 || c.EpochBits > 64 {
		return diag.ConfigErrf("gtsc", "EpochBits", "epoch tag width %d outside 1..64", c.EpochBits)
	}
	if c.EpochBits == 1 {
		// A 1-bit ring tolerates zero lag: one quiet reset anywhere
		// and the bound-decode window is already exhausted.
		return diag.ConfigErrf("gtsc", "EpochBits",
			"epoch tag width 1 cannot order resets; need at least 2 bits")
	}
	d := c
	if d.Lease == 0 {
		d.Lease = 10
	}
	if d.TSBits == 0 {
		d.TSBits = 16
	}
	if d.MaxLease == 0 {
		d.MaxLease = 8 * d.Lease
	}
	if d.MaxLease < d.Lease {
		d.MaxLease = d.Lease
	}
	if worst := d.leaseCeil(); 2*worst+3 > d.tsMax() {
		return diag.ConfigErrf("gtsc", "Lease/TSBits",
			"lease %d too large for %d-bit timestamps: a post-reset store+lease reaches %d but tsMax is %d, so the overflow reset cannot make progress",
			worst, d.TSBits, 2*worst+3, d.tsMax())
	}
	return nil
}

// startTS is the power-on / kernel-boundary timestamp value.
func (c *Config) startTS() uint64 {
	if c.InitTS == 0 {
		return initialTS
	}
	return c.InitTS
}

// leaseCeil is the largest lease the configuration can grant.
func (c *Config) leaseCeil() uint64 {
	if c.AdaptiveLease {
		return c.MaxLease
	}
	return c.Lease
}

// tsMax returns the largest representable timestamp.
func (c *Config) tsMax() uint64 { return (uint64(1) << uint(c.TSBits)) - 1 }

// initialTS is the power-on value of warp_ts and mem_ts (paper §III-B:
// "All mem_ts and warp_ts are initially set to 1").
const initialTS = 1

// bankOf maps a block to its L2 bank / memory partition by low-order
// block address interleaving.
func bankOf(b mem.BlockAddr, nBanks int) int { return int(uint64(b) % uint64(nBanks)) }

func maxu(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
