package core

import (
	"testing"

	"github.com/gtsc-sim/gtsc/internal/coherence"
	"github.com/gtsc-sim/gtsc/internal/mem"
)

// harness wires G-TSC L1 controllers to one L2 bank through explicit
// message queues, with an instant-response DRAM, so protocol flows can
// be driven and inspected step by step without the full simulator.
type harness struct {
	t     *testing.T
	l1s   []*L1
	l2    *L2
	rc    *ResetController
	store *mem.Store

	toL2 []*mem.Msg
	toL1 []*mem.Msg
	dram []*mem.Msg
	now  uint64

	// log snapshots every message that crossed the "NoC". Entries are
	// copies: the controllers recycle a message once its receiver has
	// consumed it, so a retained pointer would be overwritten.
	log []*mem.Msg
}

func (h *harness) logMsg(m *mem.Msg) {
	c := *m
	h.log = append(h.log, &c)
}

func newHarness(t *testing.T, nSM int, cfg Config, l2geo L2Geometry) *harness {
	h := &harness{t: t, store: mem.NewStore()}
	h.rc = NewResetController()
	if l2geo.Sets == 0 {
		l2geo = L2Geometry{Sets: 64, Ways: 8}
	}
	h.l2 = NewL2(cfg, 0, l2geo,
		coherence.SenderFunc(func(m *mem.Msg) bool { h.toL1 = append(h.toL1, m); h.logMsg(m); return true }),
		coherence.SenderFunc(func(m *mem.Msg) bool { h.dram = append(h.dram, m); return true }),
		nil)
	h.l2.AttachResets(h.rc)
	for i := 0; i < nSM; i++ {
		h.l1s = append(h.l1s, NewL1(cfg, i, 1,
			L1Geometry{Sets: 16, Ways: 4, MSHRs: 8, Warps: 8},
			coherence.SenderFunc(func(m *mem.Msg) bool { h.toL2 = append(h.toL2, m); h.logMsg(m); return true }),
			nil))
	}
	return h
}

// pump runs the system to quiescence.
func (h *harness) pump() {
	for i := 0; i < 100000; i++ {
		h.now++
		for _, l1 := range h.l1s {
			l1.Tick(h.now)
		}
		h.l2.Tick(h.now)
		progress := false
		for len(h.toL2) > 0 {
			m := h.toL2[0]
			h.toL2 = h.toL2[1:]
			h.l2.Deliver(m)
			progress = true
		}
		for len(h.toL1) > 0 {
			m := h.toL1[0]
			h.toL1 = h.toL1[1:]
			h.l1s[m.Dst].Deliver(m)
			progress = true
		}
		for len(h.dram) > 0 {
			m := h.dram[0]
			h.dram = h.dram[1:]
			progress = true
			switch m.Type {
			case mem.DRAMRd:
				data := &mem.Block{}
				h.store.ReadBlock(m.Block, data)
				h.l2.DRAMFill(&mem.Msg{Type: mem.DRAMFill, Block: m.Block, Data: data})
			case mem.DRAMWr:
				h.store.WriteBlock(m.Block, m.Data, m.Mask)
			}
		}
		if !progress && h.l2.Pending() == 0 {
			idle := true
			for _, l1 := range h.l1s {
				if l1.Pending() != 0 {
					idle = false
				}
			}
			if idle {
				return
			}
		}
	}
	h.t.Fatal("harness did not quiesce")
}

// captured records one access's completion. Completion.Data is only
// valid during the Done callback (the controller recycles the block),
// so capture deep-copies it.
type captured struct {
	res  coherence.AccessResult
	done bool
	c    coherence.Completion
}

func (out *captured) capture(c coherence.Completion) {
	out.done = true
	out.c = c
	if c.Data != nil {
		d := *c.Data
		out.c.Data = &d
	}
}

func (h *harness) load(sm, warp int, b mem.BlockAddr, word int) *captured {
	out := &captured{}
	req := &coherence.Request{
		Block: b, Mask: mem.WordMask(0).Set(word), Warp: warp,
		Done: out.capture,
	}
	out.res = h.l1s[sm].Access(req)
	return out
}

func (h *harness) storeWord(sm, warp int, b mem.BlockAddr, word int, val uint32) *captured {
	out := &captured{}
	data := &mem.Block{}
	data.Words[word] = val
	req := &coherence.Request{
		Block: b, Store: true, Mask: mem.WordMask(0).Set(word), Data: data, Warp: warp,
		Done: out.capture,
	}
	out.res = h.l1s[sm].Access(req)
	return out
}

// countMsgs counts logged messages of a type for a block.
func (h *harness) countMsgs(ty mem.MsgType, b mem.BlockAddr) int {
	n := 0
	for _, m := range h.log {
		if m.Type == ty && m.Block == b {
			n++
		}
	}
	return n
}

func TestLoadMissFillThenHit(t *testing.T) {
	h := newHarness(t, 1, DefaultConfig(), L2Geometry{})
	h.store.WriteWord(mem.BlockAddr(5).WordAddr(3), 42)

	ld := h.load(0, 0, 5, 3)
	if ld.res != coherence.Pending {
		t.Fatal("cold load must miss")
	}
	h.pump()
	if !ld.done || ld.c.Data.Words[3] != 42 {
		t.Fatalf("load did not complete with data: %+v", ld)
	}
	// Initial lease is [mem_ts, mem_ts+lease] = [1, 11].
	if ld.c.TS != 1 {
		t.Fatalf("load ts %d, want 1", ld.c.TS)
	}

	ld2 := h.load(0, 0, 5, 3)
	if ld2.res != coherence.Hit || !ld2.done {
		t.Fatal("second load must hit synchronously")
	}
	if h.l1s[0].Stats().Hits != 1 {
		t.Fatal("hit not counted")
	}
	if got := h.countMsgs(mem.BusRd, 5); got != 1 {
		t.Fatalf("expected 1 BusRd, saw %d", got)
	}
}

// TestFig9Walkthrough drives the paper's Figure 9 example at the
// protocol level and asserts the timestamps it derives, with the
// default lease of 10: fills at [1,11], the store to Y scheduled at
// wts=12 (= Y.rts+1), the writer's warp_ts jumping to 12, and the
// subsequent re-read of X renewing its lease past 12.
func TestFig9Walkthrough(t *testing.T) {
	h := newHarness(t, 2, DefaultConfig(), L2Geometry{})
	X, Y := mem.BlockAddr(0x10), mem.BlockAddr(0x20)

	// A1: SM0/warp0 reads X; B1: SM1/warp1 reads Y.
	a1 := h.load(0, 0, X, 0)
	b1 := h.load(1, 1, Y, 0)
	h.pump()
	if a1.c.TS != 1 || b1.c.TS != 1 {
		t.Fatalf("initial loads must carry ts=1, got %d/%d", a1.c.TS, b1.c.TS)
	}

	// A2: SM0/warp0 writes Y. Y's lease at L2 is [1,11], so the store
	// is logically scheduled at wts = 12, lease [12,22].
	a2 := h.storeWord(0, 0, Y, 0, 0xA2)
	h.pump()
	if a2.c.TS != 12 {
		t.Fatalf("ST Y wts = %d, want 12", a2.c.TS)
	}
	if got := h.l1s[0].WarpTS(0); got != 12 {
		t.Fatalf("writer warp_ts = %d, want 12", got)
	}

	// B2: SM1/warp1 writes X -> wts = X.rts+1 = 12 as well.
	b2 := h.storeWord(1, 1, X, 0, 0xB2)
	h.pump()
	if b2.c.TS != 12 {
		t.Fatalf("ST X wts = %d, want 12", b2.c.TS)
	}

	// A3: SM0/warp0 re-reads X. warp_ts=12 exceeds the cached lease
	// [1,11]; the renewal discovers X was rewritten (wts mismatch) and
	// a fill returns the new data, logically after B2.
	a3 := h.load(0, 0, X, 0)
	if a3.res != coherence.Pending {
		t.Fatal("A3 must miss on expired lease")
	}
	h.pump()
	if !a3.done || a3.c.Data.Words[0] != 0xB2 {
		t.Fatalf("A3 must observe B2's value, got %+v", a3.c)
	}
	if a3.c.TS < 12 {
		t.Fatalf("A3 ts %d must be >= 12", a3.c.TS)
	}

	// B3: SM1/warp1 re-reads Y: its own cached copy's lease [1,11]
	// has expired for warp_ts=12, the renewal finds Y rewritten by A2.
	b3 := h.load(1, 1, Y, 0)
	h.pump()
	if b3.c.Data.Words[0] != 0xA2 {
		t.Fatalf("B3 must observe A2's value")
	}
	// Timestamp order across the whole history: A1,B1 (ts1) -> A2,B2
	// (ts12) -> A3,B3 (ts>=12): exactly the paper's final order class.
}

// TestRenewalIsDataless verifies an expired lease over unchanged data
// renews without a data payload (the Fig 15 bandwidth saving).
func TestRenewalIsDataless(t *testing.T) {
	h := newHarness(t, 1, DefaultConfig(), L2Geometry{})
	X, Z := mem.BlockAddr(1), mem.BlockAddr(2)
	h.load(0, 0, X, 0)
	h.pump()
	// Advance warp 0's timestamp far past X's lease via a store to Z.
	h.storeWord(0, 0, Z, 0, 7)
	h.pump()
	ld := h.load(0, 0, X, 0)
	if ld.res != coherence.Pending {
		t.Fatal("expired load must not hit")
	}
	h.pump()
	if !ld.done {
		t.Fatal("renewal never completed")
	}
	if got := h.countMsgs(mem.BusRnw, X); got != 1 {
		t.Fatalf("expected 1 dataless renewal for X, saw %d", got)
	}
	if h.l1s[0].Stats().RenewalHits != 1 {
		t.Fatal("renewal hit not counted")
	}
	for _, m := range h.log {
		if m.Type == mem.BusRnw && m.Data != nil {
			t.Fatal("renewal response must not carry data")
		}
	}
}

// TestUpdateVisibilityOption1 reproduces Fig 10's hazard: a load to a
// line with a pending store must wait for the acknowledgment and then
// read the new value at a timestamp no earlier than the store's.
func TestUpdateVisibilityOption1(t *testing.T) {
	h := newHarness(t, 1, DefaultConfig(), L2Geometry{})
	X := mem.BlockAddr(4)
	h.load(0, 0, X, 0)
	h.pump()

	st := h.storeWord(0, 0, X, 0, 0xCC) // lock the line; ack not yet delivered
	ld := h.load(0, 1, X, 0)            // warp 1 reads while locked
	if ld.res != coherence.Pending {
		t.Fatal("load on locked line must wait (option 1)")
	}
	if ld.done {
		t.Fatal("load must not complete before the store is acknowledged")
	}
	h.pump()
	if !st.done || !ld.done {
		t.Fatal("both must complete after the ack")
	}
	if ld.c.Data.Words[0] != 0xCC {
		t.Fatalf("waiting load must see the stored value, got %#x", ld.c.Data.Words[0])
	}
	if ld.c.TS < st.c.TS {
		t.Fatalf("load ts %d must not precede store ts %d (Fig 10 violation)", ld.c.TS, st.c.TS)
	}
	if h.l1s[0].Stats().MissLocked != 1 {
		t.Fatal("locked miss not counted")
	}
}

// TestUpdateVisibilityOption2 checks the alternative design: with
// KeepOldCopy, a reader whose warp_ts lies in the old lease reads the
// old value synchronously, logically before the pending store.
func TestUpdateVisibilityOption2(t *testing.T) {
	cfg := DefaultConfig()
	cfg.KeepOldCopy = true
	h := newHarness(t, 1, cfg, L2Geometry{})
	X := mem.BlockAddr(4)
	h.store.WriteWord(X.WordAddr(0), 0xAA)
	h.load(0, 0, X, 0)
	h.pump()

	st := h.storeWord(0, 0, X, 0, 0xCC)
	ld := h.load(0, 1, X, 0) // warp 1 has warp_ts=1, inside the old lease
	if ld.res != coherence.Hit || !ld.done {
		t.Fatal("option 2 must serve the old copy synchronously")
	}
	if ld.c.Data.Words[0] != 0xAA {
		t.Fatalf("old value expected, got %#x", ld.c.Data.Words[0])
	}
	h.pump()
	if !st.done {
		t.Fatal("store must complete")
	}
	if ld.c.TS >= st.c.TS {
		t.Fatalf("old-copy read (ts %d) must be ordered before the store (ts %d)", ld.c.TS, st.c.TS)
	}
	// After the ack, readers see the new value.
	ld2 := h.load(0, 1, X, 0)
	h.pump()
	if ld2.c.Data.Words[0] != 0xCC {
		t.Fatal("post-ack read must see the new value")
	}
}

// TestRequestCombining: concurrent reads of one block send a single
// BusRd; a waiter whose warp_ts exceeds the granted lease triggers one
// renewal when the fill lands (§V-B).
func TestRequestCombining(t *testing.T) {
	h := newHarness(t, 1, DefaultConfig(), L2Geometry{})
	X, Z := mem.BlockAddr(6), mem.BlockAddr(7)
	// Advance warp 1 beyond the initial lease window.
	h.storeWord(0, 1, Z, 0, 1)
	h.pump()
	warp1TS := h.l1s[0].WarpTS(1)
	if warp1TS <= DefaultConfig().Lease+1 {
		t.Fatalf("warp 1 ts %d not advanced enough for the test", warp1TS)
	}

	ld0 := h.load(0, 0, X, 0) // sends BusRd (warp_ts 1)
	ld1 := h.load(0, 1, X, 0) // merges; fill's lease won't cover it
	if ld0.res != coherence.Pending || ld1.res != coherence.Pending {
		t.Fatal("both must be pending")
	}
	if h.l1s[0].Stats().MSHRMerges != 1 {
		t.Fatal("second load must merge in the MSHR")
	}
	h.pump()
	if !ld0.done || !ld1.done {
		t.Fatal("both loads must complete")
	}
	// One initial read plus one renewal for the uncovered waiter.
	if got := h.countMsgs(mem.BusRd, X); got != 2 {
		t.Fatalf("expected 2 requests for X (read + renewal), saw %d", got)
	}
}

// TestForwardAllAblation: with ForwardAll every reader sends its own
// request (the §V-B traffic increase).
func TestForwardAllAblation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ForwardAll = true
	h := newHarness(t, 1, cfg, L2Geometry{})
	X := mem.BlockAddr(6)
	h.load(0, 0, X, 0)
	h.load(0, 1, X, 0)
	h.load(0, 2, X, 0)
	h.pump()
	if got := h.countMsgs(mem.BusRd, X); got != 3 {
		t.Fatalf("forward-all should send 3 requests, saw %d", got)
	}
}

// TestStaleBaseStore: when an SM stores to a line whose base version
// is stale (another SM wrote meanwhile), the acknowledgment returns
// the authoritative merged block so the L1 copy ends up coherent.
func TestStaleBaseStore(t *testing.T) {
	h := newHarness(t, 2, DefaultConfig(), L2Geometry{})
	X := mem.BlockAddr(9)
	h.store.WriteWord(X.WordAddr(0), 1)
	h.store.WriteWord(X.WordAddr(1), 2)

	// Both SMs cache X.
	h.load(0, 0, X, 0)
	h.load(1, 0, X, 0)
	h.pump()

	// SM1 rewrites word 1.
	h.storeWord(1, 0, X, 1, 0x22)
	h.pump()

	// SM0 stores word 0 from its stale base.
	h.storeWord(0, 0, X, 0, 0x11)
	h.pump()

	// SM0's next read (same warp, whose ts advanced with the store)
	// must see both its own word and SM1's word.
	ld0 := h.load(0, 0, X, 0)
	ld1 := h.load(0, 0, X, 1)
	h.pump()
	if ld0.c.Data.Words[0] != 0x11 {
		t.Fatalf("own store lost: %#x", ld0.c.Data.Words[0])
	}
	if ld1.c.Data.Words[1] != 0x22 {
		t.Fatalf("remote store lost in local copy: %#x (stale base not corrected)", ld1.c.Data.Words[1])
	}
}

// TestWriteNoAllocate: a store to an uncached block does not install a
// line (GPU L1s are write-no-allocate).
func TestWriteNoAllocate(t *testing.T) {
	h := newHarness(t, 1, DefaultConfig(), L2Geometry{})
	X := mem.BlockAddr(3)
	st := h.storeWord(0, 0, X, 0, 5)
	h.pump()
	if !st.done {
		t.Fatal("store must complete")
	}
	// A subsequent load must miss (nothing was installed).
	ld := h.load(0, 0, X, 0)
	if ld.res != coherence.Pending {
		t.Fatal("load after no-allocate store must miss")
	}
	h.pump()
	if ld.c.Data.Words[0] != 5 {
		t.Fatal("value must come back from L2")
	}
}

// TestNonInclusiveEviction: evicting an L2 line folds its rts into
// mem_ts; a store to the refetched block is scheduled after it without
// any stall (§V-C).
func TestNonInclusiveEviction(t *testing.T) {
	h := newHarness(t, 1, DefaultConfig(), L2Geometry{Sets: 1, Ways: 1})
	A, B := mem.BlockAddr(1), mem.BlockAddr(2)

	h.load(0, 0, A, 0) // A lease [1,11]
	h.pump()
	h.load(0, 1, B, 0) // evicts A; mem_ts = max(1, 11) = 11
	h.pump()
	if got := h.l2.MemTS(); got != 11 {
		t.Fatalf("mem_ts = %d, want 11", got)
	}
	// Store to A refetches it; its lease starts at mem_ts, so the
	// store's wts must exceed the evicted lease (ordering preserved
	// with no write stall).
	st := h.storeWord(0, 0, A, 0, 9)
	h.pump()
	if !st.done {
		t.Fatal("store must complete without stalling")
	}
	if st.c.TS <= 11 {
		t.Fatalf("store ts %d must order after the evicted lease (11)", st.c.TS)
	}
	if h.l2.Stats().WriteStalls != 0 || h.l2.Stats().EvictStalls != 0 {
		t.Fatal("G-TSC must never stall on writes or evictions")
	}
}

// TestTimestampOverflowReset exercises §V-D end to end with a tiny
// width: timestamps wrap, the L2s reset, the L1 flushes and adopts the
// new epoch, and subsequent operations stay correct.
func TestTimestampOverflowReset(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TSBits = 6 // tsMax = 63
	h := newHarness(t, 1, cfg, L2Geometry{})
	X := mem.BlockAddr(11)

	// Each store advances the block's wts by lease+1; a handful of
	// stores overflow 6 bits.
	for i := 0; i < 8; i++ {
		st := h.storeWord(0, 0, X, 0, uint32(i))
		ld := h.load(0, 0, X, 0)
		h.pump()
		if !st.done || !ld.done {
			t.Fatalf("iteration %d stuck", i)
		}
		if ld.c.Data.Words[0] != uint32(i) {
			t.Fatalf("iteration %d: read %d", i, ld.c.Data.Words[0])
		}
	}
	if h.rc.Resets() == 0 {
		t.Fatal("expected at least one overflow reset")
	}
	if h.l1s[0].Stats().Flushes == 0 {
		t.Fatal("L1 must flush on reset")
	}
	if h.l2.Stats().TSResets == 0 {
		t.Fatal("L2 reset not counted")
	}
}

// TestLeaseTooLargeRejected: the config guard rejects leases the reset
// protocol cannot recover from — as a typed error from Validate, not a
// panic — and fillDefaults clamps the lease so a controller built from
// the unvalidated config still makes progress.
func TestLeaseTooLargeRejected(t *testing.T) {
	cfg := Config{Lease: 60000, TSBits: 16}
	if err := cfg.Validate(); err == nil {
		t.Fatal("expected a config error for oversized lease")
	}
	cfg.fillDefaults()
	if limit := (cfg.tsMax() - 3) / 2; cfg.Lease > limit || cfg.MaxLease > limit {
		t.Fatalf("fillDefaults left lease %d / maxLease %d above workable limit %d",
			cfg.Lease, cfg.MaxLease, limit)
	}
}

// TestWarpTimestampMonotone: a warp's timestamp never regresses within
// an epoch, across loads, stores and renewals.
func TestWarpTimestampMonotone(t *testing.T) {
	h := newHarness(t, 1, DefaultConfig(), L2Geometry{})
	var last uint64
	blocks := []mem.BlockAddr{1, 2, 3}
	for i := 0; i < 12; i++ {
		b := blocks[i%len(blocks)]
		if i%3 == 2 {
			h.storeWord(0, 0, b, 0, uint32(i))
		} else {
			h.load(0, 0, b, 0)
		}
		h.pump()
		ts := h.l1s[0].WarpTS(0)
		if ts < last {
			t.Fatalf("warp_ts regressed: %d after %d", ts, last)
		}
		last = ts
	}
}

func (h *harness) atomic(sm, warp int, b mem.BlockAddr, word int, op mem.AtomicOp, operand uint32) *captured {
	out := &captured{}
	data := &mem.Block{}
	data.Words[word] = operand
	req := &coherence.Request{
		Block: b, Atomic: true, Atom: op, Mask: mem.WordMask(0).Set(word),
		Data: data, Warp: warp,
		Done: out.capture,
	}
	out.res = h.l1s[sm].Access(req)
	return out
}

// TestAtomicAddSerializesAtL2: concurrent atomic adds from two SMs
// both land, and each observes a pre-update value consistent with an
// indivisible read-modify-write.
func TestAtomicAddSerializesAtL2(t *testing.T) {
	h := newHarness(t, 2, DefaultConfig(), L2Geometry{})
	X := mem.BlockAddr(7)
	h.store.WriteWord(X.WordAddr(0), 100)

	a := h.atomic(0, 0, X, 0, mem.AtomAdd, 5)
	b := h.atomic(1, 0, X, 0, mem.AtomAdd, 7)
	h.pump()
	if !a.done || !b.done {
		t.Fatal("atomics must complete")
	}
	olds := []uint32{a.c.Data.Words[0], b.c.Data.Words[0]}
	// One of them saw 100, the other saw 100+other's operand.
	if !(olds[0] == 100 && olds[1] == 105) && !(olds[0] == 107 && olds[1] == 100) {
		t.Fatalf("old values %v not a serialization of {+5,+7} from 100", olds)
	}
	// Final value reflects both.
	ld := h.load(0, 1, X, 0)
	h.pump()
	if ld.c.Data.Words[0] != 112 {
		t.Fatalf("final value %d, want 112", ld.c.Data.Words[0])
	}
	if h.l2.Stats().Atomics != 2 {
		t.Fatal("atomic count wrong")
	}
}

// TestAtomicAdvancesWarpTS: the atomic's write half gives the issuing
// warp a timestamp after every outstanding lease, like a store.
func TestAtomicAdvancesWarpTS(t *testing.T) {
	h := newHarness(t, 1, DefaultConfig(), L2Geometry{})
	X := mem.BlockAddr(7)
	h.load(0, 0, X, 0) // lease [1,11]
	h.pump()
	at := h.atomic(0, 0, X, 0, mem.AtomMax, 3)
	h.pump()
	if at.c.TS != 12 {
		t.Fatalf("atomic ts %d, want 12 (rts+1)", at.c.TS)
	}
	if h.l1s[0].WarpTS(0) != 12 {
		t.Fatalf("warp_ts %d, want 12", h.l1s[0].WarpTS(0))
	}
}

// TestAtomicMinMax: the value semantics of the other two kinds.
func TestAtomicMinMax(t *testing.T) {
	h := newHarness(t, 1, DefaultConfig(), L2Geometry{})
	X := mem.BlockAddr(8)
	h.store.WriteWord(X.WordAddr(2), 50)

	a := h.atomic(0, 0, X, 2, mem.AtomMin, 30)
	h.pump()
	if a.c.Data.Words[2] != 50 {
		t.Fatalf("min old = %d, want 50", a.c.Data.Words[2])
	}
	b := h.atomic(0, 0, X, 2, mem.AtomMax, 90)
	h.pump()
	if b.c.Data.Words[2] != 30 {
		t.Fatalf("max old = %d, want 30 (after min)", b.c.Data.Words[2])
	}
	ld := h.load(0, 0, X, 2)
	h.pump()
	if ld.c.Data.Words[2] != 90 {
		t.Fatalf("final = %d, want 90", ld.c.Data.Words[2])
	}
}

func TestDebugStrings(t *testing.T) {
	h := newHarness(t, 1, DefaultConfig(), L2Geometry{})
	// Park a load behind a pending store so the MSHR has content.
	h.load(0, 0, 3, 0)
	h.pump()
	h.storeWord(0, 0, 3, 0, 1)
	h.load(0, 1, 3, 0)
	s1 := h.l1s[0].DebugString()
	if s1 == "" || h.l2.DebugString() == "" {
		t.Fatal("debug strings empty")
	}
	h.pump()
}

func TestAdaptiveLeaseGrowsAndShrinks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AdaptiveLease = true
	h := newHarness(t, 1, cfg, L2Geometry{})
	X, Z := mem.BlockAddr(1), mem.BlockAddr(2)

	// Read X, then advance the warp past its lease via stores to Z and
	// renew: each same-version renewal doubles X's lease.
	h.load(0, 0, X, 0)
	h.pump()
	renewalsBefore := h.countMsgs(mem.BusRd, X)
	for i := 0; i < 6; i++ {
		h.storeWord(0, 0, Z, 0, uint32(i))
		h.pump()
		h.load(0, 0, X, 0)
		h.pump()
	}
	renewals := h.countMsgs(mem.BusRd, X) - renewalsBefore
	// With doubling leases the later reads hit without renewal: far
	// fewer than 6 renewal requests.
	if renewals >= 6 {
		t.Fatalf("adaptive lease did not reduce renewals: %d", renewals)
	}
	// A write to X demotes its lease again (no crash, still correct).
	st := h.storeWord(0, 0, X, 0, 99)
	h.pump()
	if !st.done {
		t.Fatal("store must complete")
	}
	ld := h.load(0, 0, X, 0)
	h.pump()
	if ld.c.Data.Words[0] != 99 {
		t.Fatal("value lost after demotion")
	}
}

func TestRenewalDistanceHistogram(t *testing.T) {
	h := newHarness(t, 1, DefaultConfig(), L2Geometry{})
	X, Z := mem.BlockAddr(1), mem.BlockAddr(2)
	h.load(0, 0, X, 0)
	h.pump()
	// Push warp 0 far forward, then renew X: distance recorded.
	for i := 0; i < 3; i++ {
		h.storeWord(0, 0, Z, 0, uint32(i))
		h.pump()
	}
	h.load(0, 0, X, 0)
	h.pump()
	hist := h.l2.RenewalDistances()
	if hist.Count() == 0 {
		t.Fatal("no renewal distances recorded")
	}
	if hist.Mean() <= 0 {
		t.Fatal("mean distance must be positive")
	}
	if hist.Percentile(1.0) < DefaultConfig().Lease {
		t.Fatalf("max distance %d should be at least one lease", hist.Percentile(1.0))
	}
}

// TestMSHRFullRejects: when every MSHR entry is taken, further misses
// are rejected and the LDST unit must retry.
func TestMSHRFullRejects(t *testing.T) {
	h := newHarness(t, 1, DefaultConfig(), L2Geometry{})
	// Geometry gives 8 MSHRs; occupy them with distinct block misses.
	for i := 0; i < 8; i++ {
		if res := h.load(0, 0, mem.BlockAddr(0x100+i), 0).res; res != coherence.Pending {
			t.Fatalf("miss %d should be pending, got %v", i, res)
		}
	}
	rej := h.load(0, 1, mem.BlockAddr(0x200), 0)
	if rej.res != coherence.Reject {
		t.Fatalf("9th miss must be rejected, got %v", rej.res)
	}
	if h.l1s[0].Stats().MSHRStalls != 1 {
		t.Fatal("MSHR stall not counted")
	}
	h.pump()
	// After draining, the same access succeeds.
	again := h.load(0, 1, mem.BlockAddr(0x200), 0)
	if again.res != coherence.Pending {
		t.Fatal("retry after drain must be accepted")
	}
	h.pump()
	if !again.done {
		t.Fatal("retried access must complete")
	}
}

// TestWriteAckStaleDataMask: a store ack with data only appears when
// the base version was stale; a clean single store gets a dataless ack.
func TestWriteAckStaleDataMask(t *testing.T) {
	h := newHarness(t, 1, DefaultConfig(), L2Geometry{})
	X := mem.BlockAddr(4)
	h.load(0, 0, X, 0)
	h.pump()
	h.storeWord(0, 0, X, 0, 1)
	h.pump()
	for _, m := range h.log {
		if m.Type == mem.BusWrAck && m.Data != nil {
			t.Fatal("clean store must not receive data in its ack")
		}
	}
}

// TestOldEpochRequestGetsReset: a request stamped with a pre-reset
// epoch is answered with a reset-flagged fill regardless of its
// (stale, huge) warp timestamp — §V-D's "responds to every request
// with timestamp with a large value with a fill response".
func TestOldEpochRequestGetsReset(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TSBits = 6 // tsMax = 63
	h := newHarness(t, 2, cfg, L2Geometry{})
	X, Z := mem.BlockAddr(1), mem.BlockAddr(2)

	// SM1 touches X so it is resident at L2.
	h.load(1, 0, X, 0)
	h.pump()

	// SM0 drives timestamps into overflow via stores to Z.
	for i := 0; i < 8; i++ {
		h.storeWord(0, 0, Z, 0, uint32(i))
		h.pump()
	}
	if h.rc.Resets() == 0 {
		t.Fatal("expected a reset")
	}
	// SM1 never saw a response since the reset: its epoch is stale.
	// Reading its cached X may legally hit locally (the data is still
	// the current version), so force an L2 interaction: a store, whose
	// acknowledgment carries the new epoch and triggers the flush.
	st := h.storeWord(1, 0, X, 0, 0x51)
	h.pump()
	if !st.done {
		t.Fatal("stale-epoch store never completed")
	}
	if h.l1s[1].Stats().Flushes == 0 {
		t.Fatal("stale L1 must flush on learning of the reset")
	}
	// And its post-flush reads see current data at sane timestamps.
	ld := h.load(1, 0, X, 0)
	h.pump()
	if !ld.done || ld.c.Data.Words[0] != 0x51 {
		t.Fatalf("post-reset read wrong: %+v", ld.c)
	}
}

// TestBypassFillWhenAllWaysLocked: a fill arriving when every way of
// its set is locked by pending stores completes waiters directly from
// the message payload without caching.
func TestBypassFillWhenAllWaysLocked(t *testing.T) {
	h := newHarness(t, 1, DefaultConfig(), L2Geometry{})
	// L1 geometry: 16 sets x 4 ways. Occupy all 4 ways of set 0 with
	// locked lines: load then store (ack withheld by not pumping).
	setStride := mem.BlockAddr(16)
	var blocks []mem.BlockAddr
	for i := 0; i < 4; i++ {
		b := mem.BlockAddr(16) + setStride*mem.BlockAddr(i) // set 0
		blocks = append(blocks, b)
		h.load(0, 0, b, 0)
	}
	h.pump()
	// Lock all four lines with pending stores, without pumping.
	var stores []*captured
	for _, b := range blocks {
		stores = append(stores, h.storeWord(0, 0, b, 0, 7))
	}
	// A load to a fifth block of the same set must bypass-fill.
	fifth := mem.BlockAddr(16) + setStride*4
	h.store.WriteWord(fifth.WordAddr(0), 0xBEEF)
	ld := h.load(0, 1, fifth, 0)
	h.pump()
	if !ld.done || ld.c.Data.Words[0] != 0xBEEF {
		t.Fatalf("bypass fill failed: %+v", ld)
	}
	for i, st := range stores {
		if !st.done {
			t.Fatalf("store %d never completed", i)
		}
	}
}
