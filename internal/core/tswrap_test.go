package core

import (
	"errors"
	"testing"

	"github.com/gtsc-sim/gtsc/internal/diag"
)

func TestTsLessWraparound(t *testing.T) {
	cases := []struct {
		a, b uint64
		bits int
		want bool
	}{
		// Plain in-ring ordering.
		{1, 2, 8, true},
		{2, 1, 8, false},
		{5, 5, 8, false},
		// Wrap: 255 -> 0 in an 8-bit ring means 255 < 0.
		{255, 0, 8, true},
		{0, 255, 8, false},
		{250, 3, 8, true},
		// Past half the ring the order flips: distance 129 of 256 reads
		// as the other direction (exactly 128 is ambiguous by design).
		{0, 127, 8, true},
		{0, 129, 8, false},
		// Full-width behaves as plain signed comparison.
		{^uint64(0), 0, 64, true},
		{1, 2, 0, true},
		// 2-bit ring (the narrowest Validate allows): 3 -> 0 wraps.
		{3, 0, 2, true},
		{0, 3, 2, false},
	}
	for _, c := range cases {
		if got := tsLess(c.a, c.b, c.bits); got != c.want {
			t.Errorf("tsLess(%d, %d, %d) = %v, want %v", c.a, c.b, c.bits, got, c.want)
		}
	}
	if !tsBefore(7, 7, 4) {
		t.Errorf("tsBefore(7, 7, 4) = false, want true (reflexive)")
	}
	if !tsBefore(15, 0, 4) {
		t.Errorf("tsBefore(15, 0, 4) = false, want true (wrap)")
	}
}

func TestSdelta(t *testing.T) {
	cases := []struct {
		a, b uint64
		bits int
		want int64
	}{
		{5, 3, 8, 2},
		{3, 5, 8, -2},
		{0, 255, 8, 1},  // wrapped forward by one
		{255, 0, 8, -1}, // one behind
		{0, 3, 2, 1},    // 2-bit ring: 3 -> 0 is +1
		{2, 3, 2, -1},   // and 3 -> 2 is -1
		{10, 10, 16, 0},
	}
	for _, c := range cases {
		if got := sdelta(c.a, c.b, c.bits); got != c.want {
			t.Errorf("sdelta(%d, %d, %d) = %d, want %d", c.a, c.b, c.bits, got, c.want)
		}
	}
}

func TestEpochDeltaNarrowTag(t *testing.T) {
	cfg := Config{EpochBits: 3}
	cfg.fillDefaults()
	// Local epoch 6; a sender one reset ahead tags with wireEpoch(7)=7.
	if d := cfg.epochDelta(cfg.wireEpoch(7), 6); d != 1 {
		t.Errorf("epochDelta ahead-by-1 = %d, want 1", d)
	}
	// Local epoch 8 (wire tag 0); a message sent in epoch 7 (tag 7) is
	// one epoch stale even though its raw tag is numerically larger.
	if d := cfg.epochDelta(cfg.wireEpoch(7), 8); d != -1 {
		t.Errorf("epochDelta stale-across-wrap = %d, want -1", d)
	}
	// Sender ahead across the wrap: local 7, sender at full epoch 9
	// (tag 1) is +2.
	if d := cfg.epochDelta(cfg.wireEpoch(9), 7); d != 2 {
		t.Errorf("epochDelta ahead-across-wrap = %d, want 2", d)
	}
	// Default config (EpochBits 64) is the identity.
	def := DefaultConfig()
	def.fillDefaults()
	if def.wireEpoch(123456) != 123456 {
		t.Errorf("wireEpoch not identity at 64 bits")
	}
	if d := def.epochDelta(3, 5); d != -2 {
		t.Errorf("full-width epochDelta = %d, want -2", d)
	}
}

func TestConfigValidate(t *testing.T) {
	ok := []Config{
		{},                          // all defaults
		DefaultConfig(),             // paper config
		{Lease: 10, TSBits: 8},      // narrow timestamps, default lease
		{Lease: 1, TSBits: 3},       // minimum workable width
		{TSBits: 16, EpochBits: 2},  // narrowest epoch tag
		{TSBits: 16, EpochBits: 64}, // explicit full-width tag
	}
	for _, c := range ok {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", c, err)
		}
	}

	bad := []Config{
		{TSBits: 2},             // below minTSBits
		{TSBits: 65},            // too wide
		{TSBits: -1},            // negative
		{Lease: 100, TSBits: 6}, // reset cannot make progress
		{Lease: 10, MaxLease: 200, TSBits: 8, AdaptiveLease: true}, // adaptive ceiling too big
		{TSBits: 16, EpochBits: 1},                                 // 1-bit ring is unordered
		{TSBits: 16, EpochBits: 65},                                // tag too wide
	}
	for _, c := range bad {
		err := c.Validate()
		if err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
			continue
		}
		var ce *diag.ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("Validate(%+v) error %T is not *diag.ConfigError", c, err)
		}
	}
}

func TestEpochBoundDecode(t *testing.T) {
	cfg := Config{EpochBits: 2}
	cfg.fillDefaults()
	// The half-ring failure the model checker found: a component at
	// epoch 0 sleeps through two resets; the response's tag wire(2)=2
	// aliases to "two behind" under signed decode, but the floor
	// (epoch at request send = 0) recovers the true value.
	if got := cfg.epochAtLeast(cfg.wireEpoch(2), 0); got != 2 {
		t.Errorf("epochAtLeast(wire(2), floor 0) = %d, want 2", got)
	}
	// Exact up to 2^bits-1 ahead of the floor, including across the
	// tag wrap: true epoch 5 tags as wire(5)=1.
	if got := cfg.epochAtLeast(cfg.wireEpoch(5), 2); got != 5 {
		t.Errorf("epochAtLeast(wire(5), floor 2) = %d, want 5", got)
	}
	// A genuinely dead-epoch response (sent at the floor, receiver
	// since moved on) still decodes to its true old value.
	if got := cfg.epochAtLeast(cfg.wireEpoch(4), 4); got != 4 {
		t.Errorf("epochAtLeast(wire(4), floor 4) = %d, want 4", got)
	}
	// Bank side: the bank's own epoch is a ceiling. A requester three
	// resets behind a bank at epoch 7 tags wire(4)=0.
	if got := cfg.epochAtMost(cfg.wireEpoch(4), 7); got != 4 {
		t.Errorf("epochAtMost(wire(4), ceil 7) = %d, want 4", got)
	}
	// Current-epoch request decodes to the ceiling itself.
	if got := cfg.epochAtMost(cfg.wireEpoch(7), 7); got != 7 {
		t.Errorf("epochAtMost(wire(7), ceil 7) = %d, want 7", got)
	}
	// Wide tags are the identity regardless of the bound.
	def := DefaultConfig()
	def.fillDefaults()
	if got := def.epochAtLeast(9, 3); got != 9 {
		t.Errorf("full-width epochAtLeast = %d, want 9", got)
	}
	if got := def.epochAtMost(9, 30); got != 9 {
		t.Errorf("full-width epochAtMost = %d, want 9", got)
	}
}
