package core

import (
	"fmt"

	"github.com/gtsc-sim/gtsc/internal/cache"
	"github.com/gtsc-sim/gtsc/internal/coherence"
	"github.com/gtsc-sim/gtsc/internal/diag"
	"github.com/gtsc-sim/gtsc/internal/mem"
	"github.com/gtsc-sim/gtsc/internal/stats"
)

// l1Meta is the per-line G-TSC metadata in the private cache.
type l1Meta struct {
	wts uint64
	rts uint64
	// lockCount counts stores to this line whose BusWrAck has not yet
	// returned; while nonzero the line's new data must not be read
	// (update-visibility option 1, Fig 10 of the paper).
	lockCount int
	// Option 2 (KeepOldCopy): the pre-store data and lease, readable
	// by warps whose warp_ts falls within the old lease while the
	// store is pending.
	oldValid bool
	oldData  mem.Block
	oldWTS   uint64
	oldRTS   uint64
}

// waiter is a load parked in the MSHR: either merged behind an
// outstanding read (request combining, §V-B) or blocked on a locked
// line (update visibility, §V-A).
type waiter struct {
	req *coherence.Request
}

// pendingStore tracks one write-through store between BusWr and
// BusWrAck.
type pendingStore struct {
	reqID uint64
	block mem.BlockAddr
	warp  int
	mask  mem.WordMask
	data  mem.Block // the store's words (masked), re-applied over fills
	req   *coherence.Request
	// lineHit records whether the store updated a local line (and so
	// contributes to its lockCount).
	lineHit bool
}

// L1 is the G-TSC private cache controller of one SM. It implements
// coherence.L1.
//
// It is a write-through, write-no-allocate cache. Loads hit when the
// tag matches, the line is not locked by a pending store, and the
// issuing warp's warp_ts lies within the line's lease (warp_ts <= rts).
type L1 struct {
	cfg    Config
	smID   int
	nBanks int
	now    uint64

	array *cache.Array[l1Meta]
	mshr  *cache.MSHR[waiter]

	warpTS []uint64

	send  coherence.Sender
	outQ  mem.MsgQueue // messages awaiting NoC injection (backpressure)
	pool  mem.Pool     // recycles request msgs and data blocks
	stats stats.L1Stats
	obs   coherence.Observer

	// stores in flight, by ReqID, plus per-block send-ordered lists so
	// fills arriving under a locked line can be patched (see
	// applyPendingStores).
	storesByID    map[uint64]*pendingStore
	storesByBlock map[mem.BlockAddr][]*pendingStore
	nextReqID     uint64

	// atomics in flight, by ReqID (performed wholly at the L2).
	atomicsByID map[uint64]*coherence.Request

	epoch   uint64 // timestamp overflow epoch learned from L2 responses
	pending int    // outstanding Done callbacks
	fail    *diag.ProtocolError

	// reqsOut counts posted requests whose response has not yet been
	// delivered; epochFloor is this L1's epoch when the oldest of them
	// was sent. No response still owed can be older than that, so the
	// floor decodes a narrow response epoch tag unambiguously across up
	// to 2^EpochBits-1 resets (see tswrap.go) — the signed half-ring
	// compare it replaces livelocked after just two back-to-back
	// resets at EpochBits=2.
	reqsOut    int
	epochFloor uint64

	// MutDropLeaseCheck is a test-only protocol mutation: loads treat
	// any tag match as a hit, ignoring the lease bound (warp_ts <= rts).
	// It exists so the model checker's mutation tests can prove the
	// coherence invariants have teeth; never set it in a real run.
	MutDropLeaseCheck bool
}

// L1Geometry describes the cache organization.
type L1Geometry struct {
	Sets  int
	Ways  int
	MSHRs int
	Warps int // warps per SM, sizing the warp_ts table
}

// NewL1 builds the controller for SM smID, sending through send to
// nBanks L2 banks. obs may be nil.
func NewL1(cfg Config, smID, nBanks int, geo L1Geometry, send coherence.Sender, obs coherence.Observer) *L1 {
	cfg.fillDefaults()
	l := &L1{
		cfg:           cfg,
		smID:          smID,
		nBanks:        nBanks,
		array:         cache.NewArray[l1Meta](geo.Sets, geo.Ways),
		mshr:          cache.NewMSHR[waiter](geo.MSHRs),
		warpTS:        make([]uint64, geo.Warps),
		send:          send,
		obs:           obs,
		storesByID:    make(map[uint64]*pendingStore),
		storesByBlock: make(map[mem.BlockAddr][]*pendingStore),
		atomicsByID:   make(map[uint64]*coherence.Request),
	}
	for i := range l.warpTS {
		l.warpTS[i] = cfg.startTS()
	}
	return l
}

// Stats implements coherence.L1.
func (l *L1) Stats() *stats.L1Stats { return &l.stats }

// Pending implements coherence.L1.
func (l *L1) Pending() int { return l.pending }

// Quiescent implements coherence.L1: Tick only drains outQ, so an
// empty output queue means ticking is a pure no-op until new input.
func (l *L1) Quiescent() bool { return l.outQ.Empty() }

// failf records the first protocol violation; the controller then
// drops further input until the simulator surfaces the error.
func (l *L1) failf(event, format string, args ...any) {
	if l.fail == nil {
		l.fail = diag.Errf(fmt.Sprintf("gtsc-l1[%d]", l.smID), event, format, args...)
	}
}

// Err implements coherence.L1.
func (l *L1) Err() error {
	if l.fail == nil {
		return nil
	}
	return l.fail
}

// DumpState implements coherence.L1.
func (l *L1) DumpState() diag.CacheState {
	st := diag.CacheState{
		Name: "gtsc-l1", ID: l.smID, Pending: l.pending,
		MSHRUsed: l.mshr.Len(), MSHRCap: l.mshr.Cap(), OutQ: l.outQ.Len(),
	}
	if l.pending > 0 || l.mshr.Len() > 0 {
		st.Detail = l.DebugString()
	}
	return st
}

// WarpTS exposes a warp's current timestamp (tests, trace tooling).
func (l *L1) WarpTS(warp int) uint64 { return l.warpTS[warp] }

// Epoch exposes the current (full, unwrapped) timestamp epoch.
func (l *L1) Epoch() uint64 { return l.epoch }

// ForEachLease implements coherence.LeaseHolder: it visits every valid
// line's [wts, rts] lease, for invariant checking by the model checker.
func (l *L1) ForEachLease(fn func(b mem.BlockAddr, wts, rts uint64)) {
	l.array.ForEach(func(c *cache.Line[l1Meta]) { fn(c.Addr, c.Meta.wts, c.Meta.rts) })
}

// Access implements coherence.L1.
func (l *L1) Access(req *coherence.Request) coherence.AccessResult {
	if req.Atomic {
		return l.accessAtomic(req)
	}
	if req.Store {
		return l.accessStore(req)
	}
	return l.accessLoad(req)
}

// accessAtomic forwards a read-modify-write to the L2, where it is
// performed as an indivisible load+store at one timestamp. The local
// copy (if any) is left in place: it remains a valid *older* version
// under timestamp ordering, readable by warps whose warp_ts its lease
// still covers.
func (l *L1) accessAtomic(req *coherence.Request) coherence.AccessResult {
	l.stats.Atomics++
	l.nextReqID++
	l.atomicsByID[l.nextReqID] = req
	l.pending++
	data := l.pool.Block()
	mem.Merge(data, req.Data, req.Mask)
	msg := l.pool.Msg()
	*msg = mem.Msg{
		Type:   mem.BusAtom,
		Block:  req.Block,
		Src:    l.smID,
		Dst:    bankOf(req.Block, l.nBanks),
		WarpTS: l.warpTS[req.Warp],
		Data:   data,
		Mask:   req.Mask,
		Atom:   req.Atom,
		ReqID:  l.nextReqID,
		Warp:   req.Warp,
		Epoch:  l.cfg.wireEpoch(l.epoch),
	}
	l.post(msg)
	return coherence.Pending
}

func (l *L1) accessLoad(req *coherence.Request) coherence.AccessResult {
	l.stats.Loads++
	l.stats.TagProbes++
	line := l.array.Lookup(req.Block)
	wts := l.warpTS[req.Warp]

	if line != nil && line.Meta.lockCount > 0 {
		// Update visibility: a store to this line is in flight.
		if l.cfg.KeepOldCopy && line.Meta.oldValid && wts <= line.Meta.oldRTS {
			// Option 2: serve the preserved old version; the load is
			// logically ordered before the pending store.
			l.stats.Hits++
			l.stats.DataAccesses++
			l.pending++ // completeLoad decrements
			l.completeLoad(req, &line.Meta.oldData, line.Meta.oldWTS)
			return coherence.Hit
		}
		// Option 1 (default): park the load until the BusWrAck.
		if l.mshr.Lookup(req.Block) == nil && l.mshr.Full() {
			l.stats.MSHRStalls++
			return coherence.Reject
		}
		l.stats.MissLocked++
		e := l.mshr.Lookup(req.Block)
		if e == nil {
			if e = l.mshr.Allocate(req.Block); e == nil {
				l.failf("mshr-allocate", "allocate for %v failed despite capacity check", req.Block)
				return coherence.Reject
			}
		} else {
			l.stats.MSHRMerges++
		}
		e.Waiters = append(e.Waiters, waiter{req: req})
		l.pending++
		return coherence.Pending
	}

	if line != nil && (wts <= line.Meta.rts || l.MutDropLeaseCheck) {
		// L1 hit: tag match and warp_ts within the lease (§IV-A-1).
		l.stats.Hits++
		l.stats.DataAccesses++
		l.array.Touch(line, l.now)
		l.pending++ // completeLoad decrements
		l.completeLoad(req, &line.Data, line.Meta.wts)
		return coherence.Hit
	}

	// Miss: cold (no tag) or expired (lease behind warp_ts).
	e := l.mshr.Lookup(req.Block)
	if e == nil && l.mshr.Full() {
		l.stats.MSHRStalls++
		return coherence.Reject
	}
	if line != nil {
		l.stats.MissExpired++
	} else {
		l.stats.MissCold++
	}
	if e != nil {
		// Request combining (§V-B): merge behind the in-flight read.
		l.stats.MSHRMerges++
		e.Waiters = append(e.Waiters, waiter{req: req})
		l.pending++
		if l.cfg.ForwardAll {
			l.sendRead(e, line, wts)
		}
		return coherence.Pending
	}
	if e = l.mshr.Allocate(req.Block); e == nil {
		l.failf("mshr-allocate", "allocate for %v failed despite capacity check", req.Block)
		return coherence.Reject
	}
	e.Waiters = append(e.Waiters, waiter{req: req})
	l.pending++
	l.sendRead(e, line, wts)
	return coherence.Pending
}

// sendRead issues a read/renewal on behalf of an MSHR entry, tracking
// it so later events know whether a response is still owed.
func (l *L1) sendRead(e *cache.MSHREntry[waiter], line *cache.Line[l1Meta], warpTS uint64) {
	e.Issued = true
	e.InFlight++
	l.sendBusRd(e.Block, line, warpTS)
}

// noteResponse records that one in-flight read for the block answered.
func (l *L1) noteResponse(b mem.BlockAddr) {
	if e := l.mshr.Lookup(b); e != nil && e.InFlight > 0 {
		e.InFlight--
	}
}

// sendBusRd issues a read/renewal request. A renewal (expired tag hit)
// carries the line's wts so L2 can answer without data when the L1's
// copy is still current (§IV-B-1).
func (l *L1) sendBusRd(b mem.BlockAddr, line *cache.Line[l1Meta], warpTS uint64) {
	var wts uint64
	if line != nil {
		wts = line.Meta.wts
		l.stats.Renewals++
	}
	l.nextReqID++
	msg := l.pool.Msg()
	*msg = mem.Msg{
		Type:   mem.BusRd,
		Block:  b,
		Src:    l.smID,
		Dst:    bankOf(b, l.nBanks),
		WTS:    wts,
		WarpTS: warpTS,
		ReqID:  l.nextReqID,
		Epoch:  l.cfg.wireEpoch(l.epoch),
	}
	l.post(msg)
}

func (l *L1) accessStore(req *coherence.Request) coherence.AccessResult {
	l.stats.Stores++
	l.stats.TagProbes++
	line := l.array.Lookup(req.Block)

	l.nextReqID++
	ps := &pendingStore{
		reqID: l.nextReqID,
		block: req.Block,
		warp:  req.Warp,
		mask:  req.Mask,
		req:   req,
	}
	mem.Merge(&ps.data, req.Data, req.Mask)

	baseWTS := mem.NoWTS
	if line != nil {
		// Write-through with local update: the line's data is updated
		// now but locked until the ack returns (§IV-A-2, §V-A).
		if l.cfg.KeepOldCopy && line.Meta.lockCount == 0 {
			line.Meta.oldValid = true
			line.Meta.oldData = line.Data
			line.Meta.oldWTS = line.Meta.wts
			line.Meta.oldRTS = line.Meta.rts
		}
		baseWTS = line.Meta.wts
		mem.Merge(&line.Data, req.Data, req.Mask)
		line.Meta.lockCount++
		ps.lineHit = true
		l.stats.DataAccesses++
		l.array.Touch(line, l.now)
	}

	l.storesByID[ps.reqID] = ps
	l.storesByBlock[req.Block] = append(l.storesByBlock[req.Block], ps)
	l.pending++

	data := l.pool.Block()
	mem.Merge(data, req.Data, req.Mask)
	msg := l.pool.Msg()
	*msg = mem.Msg{
		Type:   mem.BusWr,
		Block:  req.Block,
		Src:    l.smID,
		Dst:    bankOf(req.Block, l.nBanks),
		WTS:    baseWTS,
		WarpTS: l.warpTS[req.Warp],
		Data:   data,
		Mask:   req.Mask,
		ReqID:  ps.reqID,
		Warp:   req.Warp,
		Epoch:  l.cfg.wireEpoch(l.epoch),
	}
	l.post(msg)
	return coherence.Pending
}

// completeLoad binds a load's value and timestamp and fires Done.
// The load's logical timestamp is max(warp_ts, wts) (Tardis rule);
// warp_ts advances to it. The masked-word scratch block is recycled as
// soon as Done returns — Completion.Data must not be retained past the
// callback (see coherence.Completion).
func (l *L1) completeLoad(req *coherence.Request, data *mem.Block, wts uint64) {
	ts := maxu(l.warpTS[req.Warp], wts)
	if ts != l.warpTS[req.Warp] {
		l.stats.TSUpdates++
	}
	l.warpTS[req.Warp] = ts
	out := l.pool.Block()
	mem.Merge(out, data, req.Mask)
	if l.obs != nil {
		l.obs.Observe(coherence.Op{
			SM: l.smID, Warp: req.Warp, Block: req.Block, Mask: req.Mask,
			Data: *out, TS: l.unrolled(ts), Cycle: l.now,
		})
	}
	l.pending--
	req.Done(coherence.Completion{Data: out, TS: ts})
	l.pool.PutBlock(out)
}

// unrolled maps a wire timestamp into the monotonically increasing
// epoch-unrolled domain the invariant checker consumes.
func (l *L1) unrolled(ts uint64) uint64 { return l.epoch*(l.cfg.tsMax()+1) + ts }

// Deliver implements coherence.L1.
func (l *L1) Deliver(msg *mem.Msg) {
	if l.fail != nil {
		return
	}
	// Decode the response's epoch tag against the epoch this L1 held
	// when its oldest outstanding request went out — a sound lower
	// bound on any owed response's true epoch, which disambiguates a
	// narrow wire tag across multiple back-to-back resets (tswrap.go).
	full := l.cfg.epochAtLeast(msg.Epoch, l.epochFloor)
	if l.reqsOut > 0 {
		l.reqsOut--
	}
	if full > l.epoch {
		// The L2 reset its timestamps since we sent the request
		// (§V-D): flush everything and adopt the new epoch before
		// processing the response.
		l.timestampReset(full)
	}
	// A response older than the current epoch was computed before a
	// reset this L1 has already adopted (it was in the NoC when the
	// reset fired): its timestamps belong to a dead epoch and must not
	// leak into the new one — installing such a fill's lease would let
	// warps read the old version long after new-epoch stores
	// superseded it.
	stale := full < l.epoch
	switch msg.Type {
	case mem.BusFill:
		l.onFill(msg, stale)
	case mem.BusRnw:
		l.onRenew(msg, stale)
	case mem.BusWrAck:
		l.onWriteAck(msg, stale)
	case mem.BusAtomAck:
		l.onAtomAck(msg, stale)
	default:
		l.failf("unexpected-message", "message %v for block %v from bank %d", msg.Type, msg.Block, msg.Src)
	}
	// The response is fully consumed: fills install their payload into
	// the array (or complete waiters synchronously on the bypass path)
	// and acks complete their Done callbacks before returning, so the
	// message and its block recycle here.
	l.pool.PutBlock(msg.Data)
	l.pool.PutMsg(msg)
}

// onFill installs new data + lease and completes eligible waiters
// (Fig 8).
func (l *L1) onFill(msg *mem.Msg, stale bool) {
	l.stats.Fills++
	l.noteResponse(msg.Block)
	if stale {
		// The fill's lease belongs to the epoch a reset just retired;
		// drop it and refetch in the current epoch for whoever still
		// waits (the retry carries new-epoch tags, so the L2 answers
		// with a current lease).
		if e := l.mshr.Lookup(msg.Block); e != nil && len(e.Waiters) > 0 && e.InFlight == 0 {
			l.sendRead(e, l.array.Lookup(msg.Block), l.maxWaiterTS(e))
		}
		return
	}
	line := l.array.Lookup(msg.Block)
	if line == nil {
		// Allocate; locked lines are not evictable (their pending
		// stores still need the line). If the set is entirely locked,
		// serve the waiters straight from the message without caching.
		victim := l.array.Victim(msg.Block, func(c *cache.Line[l1Meta]) bool {
			return c.Meta.lockCount == 0
		})
		if victim != nil {
			if victim.Valid {
				l.stats.SelfInval++
			}
			l.array.Install(victim, msg.Block, msg.Data, l.now)
			line = victim
		}
	} else {
		line.Data = *msg.Data
		l.array.Touch(line, l.now)
	}
	if line != nil {
		line.Meta.wts = msg.WTS
		line.Meta.rts = msg.RTS
		l.stats.TSUpdates++
		// If stores to this block are still in flight, their words
		// must stay visible in the local copy (they are ordered after
		// this fill's version at L2); re-apply them in send order.
		l.applyPendingStores(msg.Block, line)
		l.stats.DataAccesses++
		l.serviceWaiters(msg.Block, line)
		return
	}
	// Bypass path: no allocatable way; complete every waiter whose
	// warp_ts the granted lease covers, renew for the rest.
	l.serviceWaitersBypass(msg)
}

// onRenew extends the lease of data the L1 already holds (Fig 7a).
func (l *L1) onRenew(msg *mem.Msg, stale bool) {
	l.stats.RenewalHits++
	l.noteResponse(msg.Block)
	line := l.array.Lookup(msg.Block)
	if stale || line == nil {
		// The line was evicted or flushed while the renewal was in
		// flight — or the renewal's rts belongs to a dead epoch — so the
		// dataless response cannot complete the waiters. Refetch on
		// their behalf.
		if e := l.mshr.Lookup(msg.Block); e != nil && len(e.Waiters) > 0 && e.InFlight == 0 {
			l.sendRead(e, line, l.maxWaiterTS(e))
		}
		return
	}
	if msg.RTS > line.Meta.rts {
		line.Meta.rts = msg.RTS
		l.stats.TSUpdates++
	}
	l.serviceWaiters(msg.Block, line)
}

// onWriteAck finishes a store: adopt the assigned timestamps, unlock
// the line, and wake parked readers (Fig 7b).
func (l *L1) onWriteAck(msg *mem.Msg, stale bool) {
	l.stats.WriteAcks++
	ps, ok := l.storesByID[msg.ReqID]
	if !ok {
		l.failf("unknown-write-ack", "write ack req=%d block=%v has no pending store", msg.ReqID, msg.Block)
		return
	}
	delete(l.storesByID, msg.ReqID)
	l.removeBlockStore(ps)

	// The writing warp's timestamp jumps to the store's wts (§IV-D) —
	// unless the ack's timestamps belong to a dead epoch: then the
	// store is ordered before everything in the current epoch, which
	// the post-reset warp_ts already is. (A stale ack also implies the
	// reset flush cleared ps.lineHit, so no line update runs below.)
	if !stale && msg.WTS > l.warpTS[ps.warp] {
		l.warpTS[ps.warp] = msg.WTS
		l.stats.TSUpdates++
	}

	line := l.array.Lookup(ps.block)
	if line != nil && ps.lineHit {
		line.Meta.lockCount--
		if line.Meta.lockCount < 0 {
			l.failf("lock-underflow", "block %v lock count went negative", ps.block)
			return
		}
		if msg.WTS >= line.Meta.wts {
			line.Meta.wts = msg.WTS
			line.Meta.rts = msg.RTS
			l.stats.TSUpdates++
		}
		if msg.Data != nil {
			// The L2 detected our base version was stale and returned
			// the authoritative merged block; later local stores (not
			// yet acked) are re-applied on top.
			line.Data = *msg.Data
			l.applyPendingStores(ps.block, line)
		}
		if line.Meta.lockCount == 0 {
			line.Meta.oldValid = false
		}
	}
	l.pending--
	ps.req.Done(coherence.Completion{TS: msg.WTS})

	if line != nil {
		if line.Meta.lockCount == 0 {
			l.serviceWaiters(ps.block, line)
		}
		return
	}
	// The line vanished while the store was in flight (overflow reset
	// flush): readers parked behind the lock would strand without a
	// line to service them from — refetch on their behalf.
	if e := l.mshr.Lookup(ps.block); e != nil && len(e.Waiters) > 0 && e.InFlight == 0 {
		l.sendRead(e, nil, l.maxWaiterTS(e))
	}
}

// onAtomAck completes an atomic: the warp's timestamp jumps to the
// operation's wts and the pre-update values return to the lanes.
func (l *L1) onAtomAck(msg *mem.Msg, stale bool) {
	req, ok := l.atomicsByID[msg.ReqID]
	if !ok {
		l.failf("unknown-atomic-ack", "atomic ack req=%d block=%v has no pending request", msg.ReqID, msg.Block)
		return
	}
	delete(l.atomicsByID, msg.ReqID)
	if !stale && msg.WTS > l.warpTS[req.Warp] {
		l.warpTS[req.Warp] = msg.WTS
		l.stats.TSUpdates++
	}
	l.pending--
	req.Done(coherence.Completion{Data: msg.Data, TS: msg.WTS})
}

// applyPendingStores merges the words of this SM's in-flight stores to
// block into line.Data, in the order they were sent (their L2 ordering).
func (l *L1) applyPendingStores(block mem.BlockAddr, line *cache.Line[l1Meta]) {
	for _, ps := range l.storesByBlock[block] {
		if ps.lineHit {
			mem.Merge(&line.Data, &ps.data, ps.mask)
		}
	}
}

func (l *L1) removeBlockStore(ps *pendingStore) {
	list := l.storesByBlock[ps.block]
	for i, p := range list {
		if p == ps {
			list = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(list) == 0 {
		delete(l.storesByBlock, ps.block)
	} else {
		l.storesByBlock[ps.block] = list
	}
}

// serviceWaiters completes every MSHR waiter the line's lease now
// covers. Remaining waiters (warp_ts beyond rts) trigger one renewal
// carrying the maximum outstanding warp_ts (§V-B). A locked line
// services nobody; the pending ack will retry.
func (l *L1) serviceWaiters(block mem.BlockAddr, line *cache.Line[l1Meta]) {
	e := l.mshr.Lookup(block)
	if e == nil {
		return
	}
	if line.Meta.lockCount > 0 {
		return
	}
	kept := e.Waiters[:0]
	for _, w := range e.Waiters {
		if l.warpTS[w.req.Warp] <= line.Meta.rts {
			l.stats.DataAccesses++
			l.completeLoad(w.req, &line.Data, line.Meta.wts)
		} else {
			kept = append(kept, w)
		}
	}
	e.Waiters = kept
	if len(e.Waiters) == 0 {
		l.mshr.Release(block)
		return
	}
	if e.InFlight == 0 {
		l.sendRead(e, line, l.maxWaiterTS(e))
	}
}

// serviceWaitersBypass handles the rare fill that found no allocatable
// way: complete covered waiters from the message payload.
func (l *L1) serviceWaitersBypass(msg *mem.Msg) {
	e := l.mshr.Lookup(msg.Block)
	if e == nil {
		return
	}
	kept := e.Waiters[:0]
	for _, w := range e.Waiters {
		if l.warpTS[w.req.Warp] <= msg.RTS {
			l.completeLoad(w.req, msg.Data, msg.WTS)
		} else {
			kept = append(kept, w)
		}
	}
	e.Waiters = kept
	if len(e.Waiters) == 0 {
		l.mshr.Release(msg.Block)
		return
	}
	if e.InFlight == 0 {
		l.sendRead(e, nil, l.maxWaiterTS(e))
	}
}

func (l *L1) maxWaiterTS(e *cache.MSHREntry[waiter]) uint64 {
	var ts uint64
	for _, w := range e.Waiters {
		ts = maxu(ts, l.warpTS[w.req.Warp])
	}
	return ts
}

// timestampReset implements the L1 side of the overflow protocol
// (§V-D): flush every line and restart warp timestamps; in-flight
// requests will be answered with reset-flagged fills by the L2.
func (l *L1) timestampReset(epoch uint64) {
	l.epoch = epoch
	l.stats.Flushes++
	l.array.ForEach(func(c *cache.Line[l1Meta]) {
		l.stats.SelfInval++
		l.array.Invalidate(c)
	})
	for i := range l.warpTS {
		l.warpTS[i] = initialTS
	}
	// Pending stores keep their contexts: their acks arrive with
	// new-epoch timestamps and complete normally (lineHit no longer
	// finds a line, which is handled).
	for _, ps := range l.storesByID {
		ps.lineHit = false
	}
	l.storesByBlock = make(map[mem.BlockAddr][]*pendingStore)
}

// Flush implements coherence.L1: kernel-boundary invalidation
// ("the L1 cache is flushed after each kernel and all timestamps are
// reset", §V-D). The simulator drains outstanding accesses first.
func (l *L1) Flush() {
	if l.pending != 0 {
		l.failf("flush-outstanding", "flush with %d outstanding accesses", l.pending)
		return
	}
	l.stats.Flushes++
	l.array.ForEach(func(c *cache.Line[l1Meta]) { l.array.Invalidate(c) })
	for i := range l.warpTS {
		l.warpTS[i] = l.cfg.startTS()
	}
}

// post sends a message, queueing it when the NoC port is full.
func (l *L1) post(msg *mem.Msg) {
	if l.reqsOut == 0 {
		l.epochFloor = l.epoch
	}
	l.reqsOut++
	if l.outQ.Empty() && l.send.TrySend(msg) {
		return
	}
	l.outQ.Push(msg)
}

// SyncClock implements coherence.L1: the local clock stamps array
// Touch/Install recency and completion cycles, so it must track the
// machine clock even across skipped ticks.
func (l *L1) SyncClock(now uint64) { l.now = now }

// Tick implements coherence.L1: drain backpressured sends in order.
func (l *L1) Tick(now uint64) {
	l.now = now
	for !l.outQ.Empty() {
		if !l.send.TrySend(l.outQ.Head()) {
			return
		}
		l.outQ.Pop()
	}
}

// DebugString renders the controller's transient state (MSHR entries,
// pending stores, warp timestamps of interest) for deadlock diagnosis
// and the gtsctrace tool.
func (l *L1) DebugString() string {
	s := fmt.Sprintf("L1[sm%d] epoch=%d pending=%d outQ=%d\n", l.smID, l.epoch, l.pending, l.outQ.Len())
	l.mshr.ForEach(func(e *cache.MSHREntry[waiter]) {
		s += fmt.Sprintf("  mshr %v issued=%t waiters=%d:", e.Block, e.Issued, len(e.Waiters))
		for _, w := range e.Waiters {
			s += fmt.Sprintf(" (warp %d ts %d)", w.req.Warp, l.warpTS[w.req.Warp])
		}
		line := l.array.Lookup(e.Block)
		if line != nil {
			s += fmt.Sprintf(" line[wts=%d rts=%d lock=%d]", line.Meta.wts, line.Meta.rts, line.Meta.lockCount)
		} else {
			s += " line=nil"
		}
		s += "\n"
	})
	for id, ps := range l.storesByID {
		s += fmt.Sprintf("  store req=%d block=%v warp=%d lineHit=%t\n", id, ps.block, ps.warp, ps.lineHit)
	}
	return s
}
