package core

import (
	"fmt"
	"io"
	"sort"

	"github.com/gtsc-sim/gtsc/internal/mem"
)

// DigestState implements coherence.StateDigester: a canonical,
// process-independent rendering of the G-TSC L1's complete state.
// Pending-store records carry the access's completion callback via
// their *coherence.Request; the request pointer is skipped and every
// architectural field of the record (data, mask, lock accounting) is
// rendered by value — replay reproduces the callbacks.
func (l *L1) DigestState(w io.Writer) {
	fmt.Fprintf(w, "gtsc-l1[%d] now=%d epoch=%d next=%d pend=%d out=%d floor=%d\n",
		l.smID, l.now, l.epoch, l.nextReqID, l.pending, l.reqsOut, l.epochFloor)
	fmt.Fprintf(w, "warpts %d\n", l.warpTS)
	l.array.DigestInto(w)
	l.mshr.DigestInto(w)
	mem.DigestMsgs(w, "outq", l.outQ.Items())
	ids := make([]uint64, 0, len(l.storesByID))
	for id := range l.storesByID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		ps := l.storesByID[id]
		fmt.Fprintf(w, "st %d %#x wp=%d m=%#x hit=%t %x\n",
			ps.reqID, uint64(ps.block), ps.warp, uint32(ps.mask), ps.lineHit, ps.data.Words)
	}
	// storesByBlock holds the same records in per-block send order;
	// digest the order, not the records again.
	mem.DigestBlockMap(w, l.storesByBlock, func(w io.Writer, b mem.BlockAddr, stores []*pendingStore) {
		fmt.Fprintf(w, "stblk %#x", uint64(b))
		for _, ps := range stores {
			fmt.Fprintf(w, " %d", ps.reqID)
		}
		io.WriteString(w, "\n")
	})
	mem.DigestIDTable(w, "atom", l.atomicsByID)
}

// DigestState implements coherence.StateDigester for a G-TSC L2 bank.
func (l *L2) DigestState(w io.Writer) {
	fmt.Fprintf(w, "gtsc-l2[%d] now=%d memts=%d epoch=%d\n", l.bankID, l.now, l.memTS, l.epoch)
	l.array.DigestInto(w)
	mem.DigestBlockMap(w, l.miss, func(w io.Writer, b mem.BlockAddr, m *l2Miss) {
		fmt.Fprintf(w, "miss %#x\n", uint64(b))
		mem.DigestMsgs(w, "wait", m.waiting)
	})
	mem.DigestMsgs(w, "inq", l.inQ.Items())
	mem.DigestMsgs(w, "outnoc", l.outNoC.Items())
	mem.DigestMsgs(w, "outdram", l.outDRAM.Items())
	l.renewDist.DigestInto(w)
}
