package tc

import (
	"testing"
	"testing/quick"

	"github.com/gtsc-sim/gtsc/internal/check"
	"github.com/gtsc-sim/gtsc/internal/coherence"
	"github.com/gtsc-sim/gtsc/internal/mem"
)

// harness wires TC L1s to one TC L2 bank through explicit queues with
// an instant DRAM, under manual clock control (TC's behaviour is
// defined by physical time, so tests advance the clock deliberately).
type harness struct {
	t     *testing.T
	l1s   []*L1
	l2    *L2
	store *mem.Store

	toL2 []*mem.Msg
	toL1 []*mem.Msg
	dram []*mem.Msg
	now  uint64

	log []*mem.Msg
}

func newHarness(t *testing.T, nSM int, cfg Config, l2geo L2Geometry) *harness {
	h := &harness{t: t, store: mem.NewStore()}
	if l2geo.Sets == 0 {
		l2geo = L2Geometry{Sets: 64, Ways: 8}
	}
	h.l2 = NewL2(cfg, 0, l2geo,
		coherence.SenderFunc(func(m *mem.Msg) bool { h.toL1 = append(h.toL1, m); h.log = append(h.log, m); return true }),
		coherence.SenderFunc(func(m *mem.Msg) bool { h.dram = append(h.dram, m); return true }),
		nil)
	for i := 0; i < nSM; i++ {
		h.l1s = append(h.l1s, NewL1(cfg, i, 1,
			Geometry{Sets: 16, Ways: 4, MSHRs: 8},
			coherence.SenderFunc(func(m *mem.Msg) bool { h.toL2 = append(h.toL2, m); h.log = append(h.log, m); return true }),
			nil))
	}
	return h
}

// step advances one cycle, moving all queued messages.
func (h *harness) step() {
	h.now++
	for _, l1 := range h.l1s {
		l1.Tick(h.now)
	}
	h.l2.Tick(h.now)
	for len(h.toL2) > 0 {
		m := h.toL2[0]
		h.toL2 = h.toL2[1:]
		h.l2.Deliver(m)
	}
	for len(h.toL1) > 0 {
		m := h.toL1[0]
		h.toL1 = h.toL1[1:]
		h.l1s[m.Dst].Deliver(m)
	}
	for len(h.dram) > 0 {
		m := h.dram[0]
		h.dram = h.dram[1:]
		switch m.Type {
		case mem.DRAMRd:
			data := &mem.Block{}
			h.store.ReadBlock(m.Block, data)
			h.l2.DRAMFill(&mem.Msg{Type: mem.DRAMFill, Block: m.Block, Data: data})
		case mem.DRAMWr:
			h.store.WriteBlock(m.Block, m.Data, m.Mask)
		}
	}
}

// stepUntil advances the clock to the given cycle.
func (h *harness) stepUntil(cycle uint64) {
	for h.now < cycle {
		h.step()
	}
}

// settle steps until quiescent (bounded).
func (h *harness) settle() {
	for i := 0; i < 100000; i++ {
		if h.l2.Pending() == 0 && len(h.toL2)+len(h.toL1)+len(h.dram) == 0 {
			idle := true
			for _, l1 := range h.l1s {
				if l1.Pending() != 0 {
					idle = false
				}
			}
			if idle {
				return
			}
		}
		h.step()
	}
	h.t.Fatal("harness did not settle")
}

type captured struct {
	res    coherence.AccessResult
	done   bool
	doneAt uint64
	c      coherence.Completion
}

func (h *harness) load(sm, warp int, b mem.BlockAddr, word int) *captured {
	out := &captured{}
	req := &coherence.Request{
		Block: b, Mask: mem.WordMask(0).Set(word), Warp: warp,
		Done: func(c coherence.Completion) { out.done = true; out.c = c; out.doneAt = h.now },
	}
	out.res = h.l1s[sm].Access(req)
	return out
}

func (h *harness) storeWord(sm, warp int, b mem.BlockAddr, word int, val uint32) *captured {
	out := &captured{}
	data := &mem.Block{}
	data.Words[word] = val
	req := &coherence.Request{
		Block: b, Store: true, Mask: mem.WordMask(0).Set(word), Data: data, Warp: warp,
		Done: func(c coherence.Completion) { out.done = true; out.c = c; out.doneAt = h.now },
	}
	out.res = h.l1s[sm].Access(req)
	return out
}

func TestLeaseExpirySelfInvalidation(t *testing.T) {
	cfg := Config{Lease: 100}
	h := newHarness(t, 1, cfg, L2Geometry{})
	X := mem.BlockAddr(5)
	h.store.WriteWord(X.WordAddr(0), 7)

	ld := h.load(0, 0, X, 0)
	h.settle()
	if !ld.done || ld.c.Data.Words[0] != 7 {
		t.Fatal("fill failed")
	}
	// Within the lease: hit.
	if h.load(0, 0, X, 0).res != coherence.Hit {
		t.Fatal("in-lease load must hit")
	}
	// Past the lease: self-invalidated, coherence miss.
	h.stepUntil(h.now + 200)
	ld3 := h.load(0, 0, X, 0)
	if ld3.res != coherence.Pending {
		t.Fatal("expired load must miss")
	}
	if h.l1s[0].Stats().MissExpired != 1 || h.l1s[0].Stats().SelfInval == 0 {
		t.Fatalf("expiry accounting wrong: %+v", h.l1s[0].Stats())
	}
	h.settle()
	if !ld3.done {
		t.Fatal("refetch failed")
	}
}

// TestStrongWriteStallsUntilExpiry: a TC-Strong write to a leased
// block is delayed until every private copy has self-invalidated, and
// reads arriving meanwhile queue behind it (§II-D3).
func TestStrongWriteStallsUntilExpiry(t *testing.T) {
	cfg := Config{Lease: 100, Weak: false}
	h := newHarness(t, 2, cfg, L2Geometry{})
	X := mem.BlockAddr(5)

	// SM0 takes a lease on X.
	h.load(0, 0, X, 0)
	h.settle()
	leaseEnd := h.now + cfg.Lease // upper bound on the lease L2 granted

	// SM1 writes X: must stall at L2 until the lease expires.
	st := h.storeWord(1, 0, X, 0, 0xEE)
	h.stepUntil(h.now + 10)
	if st.done {
		t.Fatal("strong write must not complete under a live lease")
	}
	// A read arriving during the stall queues behind the write.
	ld := h.load(1, 1, X, 0)
	h.stepUntil(h.now + 10)
	if ld.done {
		t.Fatal("read must queue behind the stalled write")
	}
	h.stepUntil(leaseEnd + 10)
	h.settle()
	if !st.done || !ld.done {
		t.Fatal("write and queued read must complete after expiry")
	}
	if ld.c.Data.Words[0] != 0xEE {
		t.Fatal("queued read must observe the write")
	}
	if ld.doneAt < st.doneAt {
		t.Fatal("read completed before the write it queued behind")
	}
	if h.l2.Stats().WriteStalls == 0 {
		t.Fatal("write stall cycles not counted")
	}
}

// TestWeakWriteReturnsGWCT: TC-Weak completes the write immediately
// and reports the lease expiry as the GWCT for fence accounting.
func TestWeakWriteReturnsGWCT(t *testing.T) {
	cfg := Config{Lease: 100, Weak: true}
	h := newHarness(t, 2, cfg, L2Geometry{})
	X := mem.BlockAddr(5)

	h.load(0, 0, X, 0) // SM0 lease
	h.settle()
	grant := h.now

	st := h.storeWord(1, 0, X, 0, 0xEE)
	h.settle()
	if !st.done {
		t.Fatal("weak write must complete immediately")
	}
	// The GWCT is the live lease's expiry: after the grant cycle, no
	// later than grant+lease.
	if st.c.GWCT < grant || st.c.GWCT > grant+cfg.Lease {
		t.Fatalf("GWCT %d out of range [%d, %d]", st.c.GWCT, grant, grant+cfg.Lease)
	}
	if h.l2.Stats().WriteStalls != 0 {
		t.Fatal("weak writes never stall")
	}
}

// TestWeakStaleReadWithinLease: after a TC-Weak write, an SM holding
// an unexpired lease keeps reading its stale copy (RC-legal) until
// self-invalidation, then fetches the new value.
func TestWeakStaleReadWithinLease(t *testing.T) {
	cfg := Config{Lease: 200, Weak: true}
	h := newHarness(t, 2, cfg, L2Geometry{})
	X := mem.BlockAddr(5)
	h.store.WriteWord(X.WordAddr(0), 1)

	h.load(0, 0, X, 0)
	h.settle()
	h.storeWord(1, 0, X, 0, 2)
	h.settle()

	stale := h.load(0, 0, X, 0)
	if stale.res != coherence.Hit || stale.c.Data.Words[0] != 1 {
		t.Fatal("in-lease read must return the stale value under TC-Weak")
	}
	h.stepUntil(h.now + 2*cfg.Lease)
	fresh := h.load(0, 0, X, 0)
	h.settle()
	if fresh.c.Data.Words[0] != 2 {
		t.Fatal("post-expiry read must see the new value")
	}
}

// TestInclusionReplacementStall: a fill into a set whose lines all
// hold live leases stalls until one expires (§II-D2's forced
// inclusion).
func TestInclusionReplacementStall(t *testing.T) {
	cfg := Config{Lease: 100}
	h := newHarness(t, 1, cfg, L2Geometry{Sets: 1, Ways: 1})
	A, B := mem.BlockAddr(1), mem.BlockAddr(2)

	h.load(0, 0, A, 0)
	h.settle()
	// B's fill cannot evict A while A's lease is live.
	ldB := h.load(0, 1, B, 0)
	h.stepUntil(h.now + 20)
	if ldB.done {
		t.Fatal("fill must stall: the only way holds a live lease")
	}
	if h.l2.Stats().EvictStalls == 0 {
		t.Fatal("eviction stall cycles not counted")
	}
	h.stepUntil(h.now + 2*cfg.Lease)
	h.settle()
	if !ldB.done {
		t.Fatal("fill must proceed once the lease expires")
	}
}

// TestResponsesAlwaysCarryData: TC has no dataless renewal — every
// read response is a full fill (one reason G-TSC saves traffic).
func TestResponsesAlwaysCarryData(t *testing.T) {
	cfg := Config{Lease: 50}
	h := newHarness(t, 1, cfg, L2Geometry{})
	X := mem.BlockAddr(5)
	for i := 0; i < 3; i++ {
		h.load(0, 0, X, 0)
		h.settle()
		h.stepUntil(h.now + 200) // expire
	}
	fills := 0
	for _, m := range h.log {
		if m.Type == mem.BusRnw {
			t.Fatal("TC must not send renewals")
		}
		if m.Type == mem.BusFill {
			fills++
			if m.Data == nil {
				t.Fatal("fill without data")
			}
		}
	}
	if fills != 3 {
		t.Fatalf("expected 3 fills, saw %d", fills)
	}
}

// TestWriteToUnleasedBlockIsImmediate: strong writes only wait when a
// lease is live.
func TestWriteToUnleasedBlockIsImmediate(t *testing.T) {
	cfg := Config{Lease: 100, Weak: false}
	h := newHarness(t, 1, cfg, L2Geometry{})
	st := h.storeWord(0, 0, mem.BlockAddr(9), 0, 1)
	h.settle()
	if !st.done {
		t.Fatal("write to unleased block must not stall")
	}
	if h.l2.Stats().WriteStalls != 0 {
		t.Fatal("no stall expected")
	}
}

func (h *harness) atomic(sm, warp int, b mem.BlockAddr, word int, op mem.AtomicOp, operand uint32) *captured {
	out := &captured{}
	data := &mem.Block{}
	data.Words[word] = operand
	req := &coherence.Request{
		Block: b, Atomic: true, Atom: op, Mask: mem.WordMask(0).Set(word),
		Data: data, Warp: warp,
		Done: func(c coherence.Completion) { out.done = true; out.c = c; out.doneAt = h.now },
	}
	out.res = h.l1s[sm].Access(req)
	return out
}

// TestStrongAtomicStallsLikeWrite: under TC-Strong an atomic to a
// leased block waits for every private copy to self-invalidate.
func TestStrongAtomicStallsLikeWrite(t *testing.T) {
	cfg := Config{Lease: 100, Weak: false}
	h := newHarness(t, 2, cfg, L2Geometry{})
	X := mem.BlockAddr(5)
	h.load(0, 0, X, 0)
	h.settle()
	at := h.atomic(1, 0, X, 0, mem.AtomAdd, 3)
	h.stepUntil(h.now + 20)
	if at.done {
		t.Fatal("strong atomic must wait for the lease")
	}
	h.stepUntil(h.now + 2*cfg.Lease)
	h.settle()
	if !at.done || at.c.Data.Words[0] != 0 {
		t.Fatalf("atomic completion wrong: %+v", at)
	}
}

// TestWeakAtomicImmediateWithGWCT: under TC-Weak an atomic performs
// immediately and carries a GWCT for fence accounting.
func TestWeakAtomicImmediateWithGWCT(t *testing.T) {
	cfg := Config{Lease: 100, Weak: true}
	h := newHarness(t, 2, cfg, L2Geometry{})
	X := mem.BlockAddr(5)
	h.load(0, 0, X, 0)
	h.settle()
	at := h.atomic(1, 0, X, 0, mem.AtomAdd, 3)
	h.settle()
	if !at.done || at.c.GWCT == 0 {
		t.Fatalf("weak atomic must complete immediately with GWCT: %+v", at)
	}
}

func TestTCFlushAndDebug(t *testing.T) {
	cfg := Config{Lease: 100}
	h := newHarness(t, 1, cfg, L2Geometry{})
	h.load(0, 0, 5, 0)
	h.settle()
	h.l1s[0].Flush()
	ld := h.load(0, 0, 5, 0)
	if ld.res != coherence.Pending {
		t.Fatal("post-flush load must miss")
	}
	h.settle()
	if h.l1s[0].Stats().Flushes != 1 {
		t.Fatal("flush not counted")
	}
}

func TestTCAtomicAggregation(t *testing.T) {
	// Two atomics to the same word from the same SM: both applied.
	cfg := Config{Lease: 50, Weak: true}
	h := newHarness(t, 1, cfg, L2Geometry{})
	h.atomic(0, 0, 9, 0, mem.AtomAdd, 4)
	h.atomic(0, 1, 9, 0, mem.AtomAdd, 6)
	h.settle()
	if data, ok := h.l2.Peek(9); !ok || data.Words[0] != 10 {
		t.Fatal("atomics lost")
	}
	if h.l2.Stats().Atomics != 2 {
		t.Fatal("atomic count wrong")
	}
}

// TestFuzzStrongLinearizability: TC-Strong delays every write past all
// outstanding leases, so histories are per-location linearizable in
// physical order. Random racing loads/stores/atomics from 3 SMs must
// never violate that.
func TestFuzzStrongLinearizability(t *testing.T) {
	f := func(raw []byte) bool {
		rec := check.NewRecorder()
		h := newHarnessObs(t, 3, Config{Lease: 60, Weak: false}, rec)
		var vals uint32
		i := 0
		for i+1 < len(raw) {
			burst := int(raw[i]%4) + 1
			i++
			for b := 0; b < burst && i+1 < len(raw); b++ {
				op, arg := raw[i], raw[i+1]
				i += 2
				sm := int(op) % len(h.l1s)
				warp := int(op>>2) % 4
				block := mem.BlockAddr(1 + int(arg)%5)
				word := int(arg>>4) % 4
				switch op % 5 {
				case 0, 1:
					h.load(sm, warp, block, word)
				case 2:
					vals++
					h.storeWord(sm, warp, block, word, vals)
				case 3:
					h.atomic(sm, warp, block, word, mem.AtomAdd, uint32(arg)+1)
				default:
					h.atomic(sm, warp, block, word, mem.AtomMax, uint32(arg))
				}
			}
			h.settle()
		}
		h.settle()
		if v := check.CheckPhysical(rec.Ops(), 1); len(v) > 0 {
			t.Logf("violation: %s", v[0].Error())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// newHarnessObs builds a TC harness with an observer attached.
func newHarnessObs(t *testing.T, nSM int, cfg Config, obs coherence.Observer) *harness {
	h := &harness{t: t, store: mem.NewStore()}
	h.l2 = NewL2(cfg, 0, L2Geometry{Sets: 8, Ways: 2},
		coherence.SenderFunc(func(m *mem.Msg) bool { h.toL1 = append(h.toL1, m); return true }),
		coherence.SenderFunc(func(m *mem.Msg) bool { h.dram = append(h.dram, m); return true }),
		obs)
	for i := 0; i < nSM; i++ {
		h.l1s = append(h.l1s, NewL1(cfg, i, 1,
			Geometry{Sets: 4, Ways: 2, MSHRs: 4},
			coherence.SenderFunc(func(m *mem.Msg) bool { h.toL2 = append(h.toL2, m); return true }),
			obs))
	}
	return h
}
