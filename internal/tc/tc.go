// Package tc implements Temporal Coherence (Singh et al., HPCA 2013),
// the time-based GPU coherence protocol G-TSC is evaluated against
// (Section II-D of the G-TSC paper).
//
// TC drives coherence with globally synchronized counters — in this
// simulator, the global cycle count, which is exactly the idealized
// synchronized clock the protocol assumes. Each L1 block holds a lease
// expiry in cycles and self-invalidates when the clock passes it; the
// L2 tracks the maximum lease granted per block.
//
// Two variants are provided:
//
//   - TC-Strong: a write to a block with an unexpired lease stalls at
//     the L2 until every private copy has self-invalidated; requests
//     arriving for the block meanwhile queue behind the write. Used
//     for sequential consistency runs.
//   - TC-Weak: writes complete immediately and the acknowledgment
//     carries the Global Write Completion Time (GWCT, the lease expiry
//     at write time); fences stall the warp until the clock passes the
//     maximum GWCT of its prior writes. Used for release consistency.
//
// TC's L2 must be inclusive (§II-D2): victims with unexpired leases
// cannot be evicted, so fills may stall on replacement — the
// lease-induced contention the paper measures.
package tc

// Config holds TC protocol parameters.
type Config struct {
	// Lease is the lease length in cycles granted to L1 readers
	// (the TC paper's fixed-lease configuration; default 400).
	Lease uint64
	// Weak selects TC-Weak (GWCT-based write completion); false is
	// TC-Strong (writes stall for lease expiry).
	Weak bool
}

// DefaultConfig returns the baseline TC-Strong configuration.
func DefaultConfig() Config { return Config{Lease: 400} }

func (c *Config) fillDefaults() {
	if c.Lease == 0 {
		c.Lease = 400
	}
}

func maxu(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// bankOf maps a block to its L2 bank by block-address interleaving
// (identical to G-TSC's mapping so traffic distributions are
// comparable).
func bankOf(b uint64, nBanks int) int { return int(b % uint64(nBanks)) }
