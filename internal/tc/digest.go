package tc

import (
	"fmt"
	"io"

	"github.com/gtsc-sim/gtsc/internal/mem"
)

// DigestState implements coherence.StateDigester for a TC L1.
// In-flight store/atomic tables hold only *coherence.Request (a
// callback carrier); their IDs pin occupancy, and their architectural
// content rides in the BusWr/BusAtom messages digested in whatever
// queue currently holds them.
func (l *L1) DigestState(w io.Writer) {
	fmt.Fprintf(w, "tc-l1[%d] now=%d next=%d pend=%d\n", l.smID, l.now, l.nextReqID, l.pending)
	l.array.DigestInto(w)
	l.mshr.DigestInto(w)
	mem.DigestMsgs(w, "outq", l.outQ)
	mem.DigestIDTable(w, "st", l.storesByID)
	mem.DigestIDTable(w, "atom", l.atomicsByID)
}

// DigestState implements coherence.StateDigester for a TC L2 bank.
func (l *L2) DigestState(w io.Writer) {
	fmt.Fprintf(w, "tc-l2[%d] now=%d\n", l.bankID, l.now)
	l.array.DigestInto(w)
	mem.DigestBlockMap(w, l.miss, func(w io.Writer, b mem.BlockAddr, m *l2Miss) {
		fmt.Fprintf(w, "miss %#x", uint64(b))
		if m.data != nil {
			fmt.Fprintf(w, " d%x", m.data.Words)
		}
		io.WriteString(w, "\n")
		mem.DigestMsgs(w, "wait", m.waiting)
	})
	mem.DigestBlockMap(w, l.blocked, func(w io.Writer, b mem.BlockAddr, msgs []*mem.Msg) {
		fmt.Fprintf(w, "blocked %#x\n", uint64(b))
		mem.DigestMsgs(w, "q", msgs)
	})
	mem.DigestMsgs(w, "inq", l.inQ)
	mem.DigestMsgs(w, "outnoc", l.outNoC)
	mem.DigestMsgs(w, "outdram", l.outDRAM)
}
