package tc

import (
	"fmt"

	"github.com/gtsc-sim/gtsc/internal/cache"
	"github.com/gtsc-sim/gtsc/internal/coherence"
	"github.com/gtsc-sim/gtsc/internal/diag"
	"github.com/gtsc-sim/gtsc/internal/mem"
	"github.com/gtsc-sim/gtsc/internal/stats"
)

// l1Meta is the per-line TC metadata: the self-invalidation deadline in
// global cycles.
type l1Meta struct {
	expiry uint64
}

type waiter struct {
	req *coherence.Request
}

type pendingStore struct {
	req *coherence.Request
}

type pendingAtomic struct {
	req *coherence.Request
}

// L1 is the TC private cache controller of one SM: write-through,
// write-no-allocate, with time-based self-invalidation instead of
// invalidation traffic. It implements coherence.L1.
type L1 struct {
	cfg    Config
	smID   int
	nBanks int
	now    uint64

	array *cache.Array[l1Meta]
	mshr  *cache.MSHR[waiter]

	send  coherence.Sender
	outQ  []*mem.Msg
	stats stats.L1Stats
	obs   coherence.Observer

	storesByID  map[uint64]*pendingStore
	atomicsByID map[uint64]*pendingAtomic
	nextReqID   uint64
	pending     int
	fail        *diag.ProtocolError
}

// Geometry describes the cache organization (shared with G-TSC runs so
// capacity is identical across protocols).
type Geometry struct {
	Sets  int
	Ways  int
	MSHRs int
}

// NewL1 builds the TC controller for SM smID.
func NewL1(cfg Config, smID, nBanks int, geo Geometry, send coherence.Sender, obs coherence.Observer) *L1 {
	cfg.fillDefaults()
	return &L1{
		cfg:         cfg,
		smID:        smID,
		nBanks:      nBanks,
		array:       cache.NewArray[l1Meta](geo.Sets, geo.Ways),
		mshr:        cache.NewMSHR[waiter](geo.MSHRs),
		send:        send,
		obs:         obs,
		storesByID:  make(map[uint64]*pendingStore),
		atomicsByID: make(map[uint64]*pendingAtomic),
	}
}

// Stats implements coherence.L1.
func (l *L1) Stats() *stats.L1Stats { return &l.stats }

// Pending implements coherence.L1.
func (l *L1) Pending() int { return l.pending }

// Quiescent implements coherence.L1: Tick only drains outQ, so an
// empty output queue means ticking is a pure no-op until new input.
func (l *L1) Quiescent() bool { return len(l.outQ) == 0 }

// failf records the first protocol violation; the controller then
// drops further input until the simulator surfaces the error.
func (l *L1) failf(event, format string, args ...any) {
	if l.fail == nil {
		l.fail = diag.Errf(fmt.Sprintf("tc-l1[%d]", l.smID), event, format, args...)
	}
}

// Err implements coherence.L1.
func (l *L1) Err() error {
	if l.fail == nil {
		return nil
	}
	return l.fail
}

// DumpState implements coherence.L1.
func (l *L1) DumpState() diag.CacheState {
	return diag.CacheState{
		Name: "tc-l1", ID: l.smID, Pending: l.pending,
		MSHRUsed: l.mshr.Len(), MSHRCap: l.mshr.Cap(), OutQ: len(l.outQ),
	}
}

// Access implements coherence.L1.
func (l *L1) Access(req *coherence.Request) coherence.AccessResult {
	if req.Atomic {
		return l.accessAtomic(req)
	}
	if req.Store {
		return l.accessStore(req)
	}
	return l.accessLoad(req)
}

// accessAtomic forwards a read-modify-write to the L2. Under
// TC-Strong it waits out every lease like a write; under TC-Weak it
// performs immediately and the acknowledgment carries a GWCT.
func (l *L1) accessAtomic(req *coherence.Request) coherence.AccessResult {
	l.stats.Atomics++
	l.nextReqID++
	l.atomicsByID[l.nextReqID] = &pendingAtomic{req: req}
	l.pending++
	data := &mem.Block{}
	mem.Merge(data, req.Data, req.Mask)
	l.post(&mem.Msg{
		Type:  mem.BusAtom,
		Block: req.Block,
		Src:   l.smID,
		Dst:   bankOf(uint64(req.Block), l.nBanks),
		Data:  data,
		Mask:  req.Mask,
		Atom:  req.Atom,
		ReqID: l.nextReqID,
		Warp:  req.Warp,
	})
	return coherence.Pending
}

func (l *L1) accessLoad(req *coherence.Request) coherence.AccessResult {
	l.stats.Loads++
	l.stats.TagProbes++
	line := l.array.Lookup(req.Block)
	if line != nil && l.now < line.Meta.expiry {
		l.stats.Hits++
		l.stats.DataAccesses++
		l.array.Touch(line, l.now)
		l.pending++ // completeLoad decrements
		l.completeLoad(req, &line.Data)
		return coherence.Hit
	}
	// Cold miss, or coherence miss: the block self-invalidated when
	// its lease expired (a tag match with an expired lease, §II-D).
	e := l.mshr.Lookup(req.Block)
	if e == nil && l.mshr.Full() {
		l.stats.MSHRStalls++
		return coherence.Reject
	}
	if line != nil {
		l.stats.MissExpired++
		l.stats.SelfInval++
		l.array.Invalidate(line)
	} else {
		l.stats.MissCold++
	}
	if e != nil {
		l.stats.MSHRMerges++
		e.Waiters = append(e.Waiters, waiter{req: req})
		l.pending++
		return coherence.Pending
	}
	if e = l.mshr.Allocate(req.Block); e == nil {
		l.failf("mshr-allocate", "allocate for %v failed despite capacity check", req.Block)
		return coherence.Reject
	}
	e.Waiters = append(e.Waiters, waiter{req: req})
	e.Issued = true
	l.pending++
	l.sendBusRd(req.Block)
	return coherence.Pending
}

func (l *L1) sendBusRd(b mem.BlockAddr) {
	l.nextReqID++
	l.post(&mem.Msg{
		Type:  mem.BusRd,
		Block: b,
		Src:   l.smID,
		Dst:   bankOf(uint64(b), l.nBanks),
		ReqID: l.nextReqID,
	})
}

// accessStore sends the write through to L2. TC does not update the
// local copy: under TC-Strong the write completes only after every
// lease (including this SM's) has expired, and under TC-Weak stale
// local reads are permitted until the next fence, so the cached copy
// simply ages out.
func (l *L1) accessStore(req *coherence.Request) coherence.AccessResult {
	l.stats.Stores++
	l.stats.TagProbes++
	l.nextReqID++
	l.storesByID[l.nextReqID] = &pendingStore{req: req}
	l.pending++
	data := &mem.Block{}
	mem.Merge(data, req.Data, req.Mask)
	l.post(&mem.Msg{
		Type:  mem.BusWr,
		Block: req.Block,
		Src:   l.smID,
		Dst:   bankOf(uint64(req.Block), l.nBanks),
		Data:  data,
		Mask:  req.Mask,
		ReqID: l.nextReqID,
		Warp:  req.Warp,
	})
	return coherence.Pending
}

func (l *L1) completeLoad(req *coherence.Request, data *mem.Block) {
	out := &mem.Block{}
	mem.Merge(out, data, req.Mask)
	if l.obs != nil {
		l.obs.Observe(coherence.Op{
			SM: l.smID, Warp: req.Warp, Block: req.Block, Mask: req.Mask,
			Data: *out, Cycle: l.now,
		})
	}
	l.pending--
	req.Done(coherence.Completion{Data: out})
}

// Deliver implements coherence.L1.
func (l *L1) Deliver(msg *mem.Msg) {
	if l.fail != nil {
		return
	}
	switch msg.Type {
	case mem.BusFill:
		l.onFill(msg)
	case mem.BusWrAck:
		l.onWriteAck(msg)
	case mem.BusAtomAck:
		pa, ok := l.atomicsByID[msg.ReqID]
		if !ok {
			l.failf("unknown-atomic-ack", "atomic ack req=%d block=%v has no pending request", msg.ReqID, msg.Block)
			return
		}
		delete(l.atomicsByID, msg.ReqID)
		l.pending--
		pa.req.Done(coherence.Completion{Data: msg.Data, GWCT: msg.GWCT})
	default:
		l.failf("unexpected-message", "message %v for block %v from bank %d", msg.Type, msg.Block, msg.Src)
	}
}

func (l *L1) onFill(msg *mem.Msg) {
	l.stats.Fills++
	e := l.mshr.Lookup(msg.Block)
	if msg.RTS <= l.now {
		// The granted lease already expired in flight (possible with
		// very short leases): retry rather than caching dead data.
		if e != nil && len(e.Waiters) > 0 {
			l.sendBusRd(msg.Block)
		}
		return
	}
	line := l.array.Lookup(msg.Block)
	if line == nil {
		// Expired lines are ordinary victims (self-invalidated).
		victim := l.array.Victim(msg.Block, nil)
		if victim.Valid {
			l.stats.SelfInval++
		}
		l.array.Install(victim, msg.Block, msg.Data, l.now)
		line = victim
	} else {
		line.Data = *msg.Data
		l.array.Touch(line, l.now)
	}
	line.Meta.expiry = msg.RTS
	l.stats.TSUpdates++
	l.stats.DataAccesses++
	if e == nil {
		return
	}
	// Physical leases cover every waiter at once: complete them all.
	for _, w := range e.Waiters {
		l.stats.DataAccesses++
		l.completeLoad(w.req, &line.Data)
	}
	e.Waiters = e.Waiters[:0]
	l.mshr.Release(msg.Block)
}

func (l *L1) onWriteAck(msg *mem.Msg) {
	l.stats.WriteAcks++
	ps, ok := l.storesByID[msg.ReqID]
	if !ok {
		l.failf("unknown-write-ack", "write ack req=%d block=%v has no pending store", msg.ReqID, msg.Block)
		return
	}
	delete(l.storesByID, msg.ReqID)
	l.pending--
	// GWCT rides back to the LDST unit; fences stall on it (TC-Weak).
	ps.req.Done(coherence.Completion{GWCT: msg.GWCT})
}

// Flush implements coherence.L1 (kernel boundary).
func (l *L1) Flush() {
	if l.pending != 0 {
		l.failf("flush-outstanding", "flush with %d outstanding accesses", l.pending)
		return
	}
	l.stats.Flushes++
	l.array.ForEach(func(c *cache.Line[l1Meta]) { l.array.Invalidate(c) })
}

func (l *L1) post(msg *mem.Msg) {
	if len(l.outQ) == 0 && l.send.TrySend(msg) {
		return
	}
	l.outQ = append(l.outQ, msg)
}

// ForEachLease implements coherence.LeaseHolder. TC leases are
// physical-time intervals; they are reported as (0, expiry) so checkers
// can compare containment against the bank's granted expiries.
func (l *L1) ForEachLease(fn func(b mem.BlockAddr, wts, rts uint64)) {
	l.array.ForEach(func(c *cache.Line[l1Meta]) { fn(c.Addr, 0, c.Meta.expiry) })
}

// NextTimeEvent implements coherence.TimeSensitive: the earliest future
// lease expiry, after which a currently-hitting load would miss.
func (l *L1) NextTimeEvent(now uint64) (uint64, bool) {
	var at uint64
	ok := false
	l.array.ForEach(func(c *cache.Line[l1Meta]) {
		if e := c.Meta.expiry; e > now && (!ok || e < at) {
			at, ok = e, true
		}
	})
	return at, ok
}

// SyncClock implements coherence.L1. For TC the local clock is
// semantically load-bearing outside Tick: accessLoad compares it
// against line lease expiries on every SM access, and the fill path
// detects leases that died in flight with msg.RTS <= l.now — so a
// controller skipped by the per-component dispatcher must still see
// its clock advance or stale leases read as live.
func (l *L1) SyncClock(now uint64) { l.now = now }

// Tick implements coherence.L1.
func (l *L1) Tick(now uint64) {
	l.now = now
	for len(l.outQ) > 0 {
		if !l.send.TrySend(l.outQ[0]) {
			return
		}
		l.outQ = l.outQ[1:]
	}
}
