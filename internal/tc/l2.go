package tc

import (
	"fmt"
	"slices"

	"github.com/gtsc-sim/gtsc/internal/cache"
	"github.com/gtsc-sim/gtsc/internal/coherence"
	"github.com/gtsc-sim/gtsc/internal/diag"
	"github.com/gtsc-sim/gtsc/internal/mem"
	"github.com/gtsc-sim/gtsc/internal/stats"
)

// l2Meta is the per-line TC metadata: the latest lease expiry granted
// to any L1, in global cycles.
type l2Meta struct {
	expiry uint64
}

// l2Miss tracks an outstanding DRAM read. Once data arrives it may
// still wait for an evictable victim (inclusion: only expired lines
// can be replaced), which is TC's delayed-eviction stall (§II-D3).
type l2Miss struct {
	block   mem.BlockAddr
	waiting []*mem.Msg
	data    *mem.Block // non-nil once DRAM returned but install stalled
}

// L2 is one TC shared cache bank. It implements coherence.L2.
type L2 struct {
	cfg    Config
	bankID int
	now    uint64

	array *cache.Array[l2Meta]
	miss  map[mem.BlockAddr]*l2Miss
	// blocked holds, per block, a stalled TC-Strong write at the head
	// and every request that arrived behind it, serviced in order once
	// the block's leases expire.
	blocked map[mem.BlockAddr][]*mem.Msg

	inQ      []*mem.Msg
	perCycle int

	sendNoC  coherence.Sender
	sendDRAM coherence.Sender
	outNoC   []*mem.Msg
	outDRAM  []*mem.Msg

	stats   stats.L2Stats
	obs     coherence.Observer
	fail    *diag.ProtocolError
	scratch []mem.BlockAddr // reusable sorted-block buffer (hot path)

	// MutIgnoreWriteStall is a test-only mutation hook for the model
	// checker's teeth: when set, TC-Strong writes commit without waiting
	// for the block's leases to expire — exactly the stall §II-D3 exists
	// to enforce — so L1s holding live leases read stale data.
	MutIgnoreWriteStall bool

	// stalledFills counts misses whose DRAM data has returned but whose
	// install stalled on unexpired victims (m.data != nil). While any
	// fill is stalled, Tick retries installs (and counts EvictStalls)
	// every cycle, so the bank must not be treated as quiescent.
	stalledFills int
}

// Geometry describes one bank's organization.
type L2Geometry struct {
	Sets     int
	Ways     int
	PerCycle int
}

// NewL2 builds TC bank bankID.
func NewL2(cfg Config, bankID int, geo L2Geometry, sendNoC, sendDRAM coherence.Sender, obs coherence.Observer) *L2 {
	cfg.fillDefaults()
	if geo.PerCycle == 0 {
		geo.PerCycle = 1
	}
	return &L2{
		cfg:      cfg,
		bankID:   bankID,
		array:    cache.NewArray[l2Meta](geo.Sets, geo.Ways),
		miss:     make(map[mem.BlockAddr]*l2Miss),
		blocked:  make(map[mem.BlockAddr][]*mem.Msg),
		perCycle: geo.PerCycle,
		sendNoC:  sendNoC,
		sendDRAM: sendDRAM,
		obs:      obs,
	}
}

// Stats implements coherence.L2.
func (l *L2) Stats() *stats.L2Stats { return &l.stats }

// Pending implements coherence.L2.
func (l *L2) Pending() int {
	n := len(l.inQ) + len(l.outNoC) + len(l.outDRAM)
	for _, m := range l.miss {
		n += len(m.waiting) + 1
	}
	for _, q := range l.blocked {
		n += len(q)
	}
	return n
}

// Quiescent implements coherence.L2. Blocked write queues bar
// quiescence because they resume on lease expiry (a time-based event,
// counting WriteStalls every waiting cycle); stalled fills bar it
// because Tick retries installs (counting EvictStalls) every cycle.
// A plain outstanding miss is fine: it only changes state when its
// DRAM fill message arrives.
func (l *L2) Quiescent() bool {
	return len(l.inQ) == 0 && len(l.outNoC) == 0 && len(l.outDRAM) == 0 &&
		len(l.blocked) == 0 && l.stalledFills == 0
}

// Drained implements coherence.L2: O(1) Pending() == 0.
func (l *L2) Drained() bool {
	return len(l.inQ) == 0 && len(l.outNoC) == 0 && len(l.outDRAM) == 0 &&
		len(l.miss) == 0 && len(l.blocked) == 0
}

// failf records the first protocol violation; the bank then drops
// further input until the simulator surfaces the error.
func (l *L2) failf(event, format string, args ...any) {
	if l.fail == nil {
		l.fail = diag.Errf(fmt.Sprintf("tc-l2[%d]", l.bankID), event, format, args...)
	}
}

// Err implements coherence.L2.
func (l *L2) Err() error {
	if l.fail == nil {
		return nil
	}
	return l.fail
}

// DumpState implements coherence.L2.
func (l *L2) DumpState() diag.CacheState {
	blocked := 0
	for _, q := range l.blocked {
		blocked += len(q)
	}
	return diag.CacheState{
		Name: "tc-l2", ID: l.bankID, Pending: l.Pending(),
		InQ: len(l.inQ), OutQ: len(l.outNoC) + len(l.outDRAM),
		Misses: len(l.miss), Blocked: blocked,
	}
}

// Deliver implements coherence.L2.
func (l *L2) Deliver(msg *mem.Msg) {
	if l.fail != nil {
		return
	}
	l.inQ = append(l.inQ, msg)
}

// DRAMFill implements coherence.L2.
func (l *L2) DRAMFill(msg *mem.Msg) {
	if l.fail != nil {
		return
	}
	m, ok := l.miss[msg.Block]
	if !ok {
		l.failf("orphan-dram-fill", "DRAM fill for %v without outstanding miss", msg.Block)
		return
	}
	m.data = msg.Data
	l.stalledFills++
	l.tryInstall(m)
}

// tryInstall attempts to place a returned fill. Inclusion forbids
// evicting lines with live leases; when the whole set is leased the
// fill stalls and retries every cycle (EvictStalls counts those
// cycles).
func (l *L2) tryInstall(m *l2Miss) {
	victim := l.array.Victim(m.block, func(c *cache.Line[l2Meta]) bool {
		return c.Meta.expiry <= l.now && l.blocked[c.Addr] == nil
	})
	if victim == nil {
		l.stats.EvictStalls++
		return
	}
	if victim.Valid {
		l.evict(victim)
	}
	l.array.Install(victim, m.block, m.data, l.now)
	l.stats.DataAccesses++
	delete(l.miss, m.block)
	l.stalledFills--
	l.runQueue(m.block, victim, m.waiting)
}

func (l *L2) evict(victim *cache.Line[l2Meta]) {
	l.stats.Evictions++
	if victim.Dirty {
		l.stats.WritebackDRAM++
		data := &mem.Block{}
		*data = victim.Data
		l.postDRAM(&mem.Msg{
			Type: mem.DRAMWr, Block: victim.Addr, Src: l.bankID, Dst: l.bankID,
			Data: data, Mask: mem.MaskAll,
		})
	}
	l.array.Invalidate(victim)
}

// runQueue services msgs against line in order until a TC-Strong write
// must stall; the stalling write and everything behind it park in
// l.blocked for Tick to resume.
func (l *L2) runQueue(block mem.BlockAddr, line *cache.Line[l2Meta], msgs []*mem.Msg) {
	for i, msg := range msgs {
		writesBack := msg.Type == mem.BusWr || msg.Type == mem.BusAtom
		if writesBack && !l.cfg.Weak && line.Meta.expiry > l.now && !l.MutIgnoreWriteStall {
			l.blocked[block] = append(l.blocked[block], msgs[i:]...)
			return
		}
		l.process(msg, line)
	}
}

func (l *L2) process(msg *mem.Msg, line *cache.Line[l2Meta]) {
	switch msg.Type {
	case mem.BusRd:
		l.processRead(msg, line)
	case mem.BusWr:
		l.performWrite(msg, line)
	case mem.BusAtom:
		l.performAtomic(msg, line)
	default:
		l.failf("unexpected-message", "message %v for block %v from SM %d", msg.Type, msg.Block, msg.Src)
	}
}

// performAtomic commits a read-modify-write at the L2. TC-Strong
// callers guarantee the lease has expired (runQueue stalls it like a
// write); TC-Weak performs immediately and reports the GWCT.
func (l *L2) performAtomic(msg *mem.Msg, line *cache.Line[l2Meta]) {
	gwct := maxu(line.Meta.expiry, l.now)
	old := &mem.Block{}
	mem.Merge(old, &line.Data, msg.Mask)
	for i := 0; i < mem.WordsPerBlock; i++ {
		if msg.Mask.Has(i) {
			line.Data.Words[i] = msg.Atom.Apply(line.Data.Words[i], msg.Data.Words[i])
		}
	}
	line.Dirty = true
	l.array.Touch(line, l.now)
	l.stats.DataAccesses++
	if l.obs != nil {
		l.obs.Observe(coherence.Op{
			SM: msg.Src, Warp: msg.Warp, Block: msg.Block,
			Mask: msg.Mask, Data: *old, Cycle: l.now,
		})
		var stored mem.Block
		mem.Merge(&stored, &line.Data, msg.Mask)
		l.obs.Observe(coherence.Op{
			SM: msg.Src, Warp: msg.Warp, Store: true, Block: msg.Block,
			Mask: msg.Mask, Data: stored, Cycle: l.now,
		})
	}
	ack := &mem.Msg{
		Type: mem.BusAtomAck, Block: msg.Block, Src: l.bankID, Dst: msg.Src,
		Data: old, Mask: msg.Mask, ReqID: msg.ReqID, Warp: msg.Warp,
	}
	if l.cfg.Weak {
		ack.GWCT = gwct
	}
	l.postNoC(ack)
}

// processRead extends the block's lease and returns data — TC
// responses always carry the block, unlike G-TSC's dataless renewals,
// which is one source of its extra NoC traffic (Fig 15).
func (l *L2) processRead(msg *mem.Msg, line *cache.Line[l2Meta]) {
	line.Meta.expiry = maxu(line.Meta.expiry, l.now+l.cfg.Lease)
	l.array.Touch(line, l.now)
	l.stats.FillsSent++
	l.stats.DataAccesses++
	data := &mem.Block{}
	*data = line.Data
	l.postNoC(&mem.Msg{
		Type: mem.BusFill, Block: msg.Block, Src: l.bankID, Dst: msg.Src,
		RTS: line.Meta.expiry, Data: data, ReqID: msg.ReqID,
	})
}

// performWrite commits a write at the L2. TC-Strong callers guarantee
// the lease has expired; TC-Weak commits immediately and reports the
// write's global completion time (GWCT = when all private copies will
// have self-invalidated) in the acknowledgment.
func (l *L2) performWrite(msg *mem.Msg, line *cache.Line[l2Meta]) {
	gwct := maxu(line.Meta.expiry, l.now)
	mem.Merge(&line.Data, msg.Data, msg.Mask)
	line.Dirty = true
	l.array.Touch(line, l.now)
	l.stats.DataAccesses++
	if l.obs != nil {
		var stored mem.Block
		mem.Merge(&stored, msg.Data, msg.Mask)
		l.obs.Observe(coherence.Op{
			SM: msg.Src, Warp: msg.Warp, Store: true, Block: msg.Block,
			Mask: msg.Mask, Data: stored, Cycle: l.now,
		})
	}
	ack := &mem.Msg{
		Type: mem.BusWrAck, Block: msg.Block, Src: l.bankID, Dst: msg.Src,
		ReqID: msg.ReqID, Warp: msg.Warp,
	}
	if l.cfg.Weak {
		ack.GWCT = gwct
	}
	l.postNoC(ack)
}

// SyncClock implements coherence.L2. The bank clock gates lease-expiry
// eviction eligibility and write-unblocking, and stamps granted leases,
// so it must track the machine clock across skipped ticks.
func (l *L2) SyncClock(now uint64) { l.now = now }

// Tick implements coherence.L2.
func (l *L2) Tick(now uint64) {
	l.now = now
	l.drainOut()
	l.resumeBlocked()
	l.retryInstalls()
	if len(l.outNoC) > 0 || len(l.outDRAM) > 0 {
		return
	}
	for i := 0; i < l.perCycle && len(l.inQ) > 0; i++ {
		msg := l.inQ[0]
		l.inQ = l.inQ[1:]
		l.service(msg)
	}
}

// resumeBlocked re-runs each parked queue whose head write's leases
// have expired, and counts the stall cycles of those still waiting
// (the paper's lease-induced stall, §II-D3). Blocks resume in address
// order so runs are reproducible.
func (l *L2) resumeBlocked() {
	if len(l.blocked) == 0 {
		return
	}
	blocks := l.scratch[:0]
	for block := range l.blocked {
		blocks = append(blocks, block)
	}
	l.scratch = blocks
	slices.Sort(blocks)
	for _, block := range blocks {
		q := l.blocked[block]
		line := l.array.Lookup(block)
		if line == nil {
			l.failf("blocked-line-vanished", "blocked queue for %v lost its line", block)
			return
		}
		if line.Meta.expiry > l.now && !l.MutIgnoreWriteStall {
			l.stats.WriteStalls++
			continue
		}
		delete(l.blocked, block)
		l.runQueue(block, line, q)
	}
}

// retryInstalls re-attempts stalled fills in address order so victim
// selection is reproducible.
func (l *L2) retryInstalls() {
	if l.stalledFills == 0 {
		return
	}
	blocks := l.scratch[:0]
	for block, m := range l.miss {
		if m.data != nil {
			blocks = append(blocks, block)
		}
	}
	l.scratch = blocks
	slices.Sort(blocks)
	for _, block := range blocks {
		if m, ok := l.miss[block]; ok && m.data != nil {
			l.tryInstall(m)
		}
	}
}

func (l *L2) service(msg *mem.Msg) {
	switch msg.Type {
	case mem.BusRd:
		l.stats.Reads++
	case mem.BusWr:
		l.stats.Writes++
	case mem.BusAtom:
		l.stats.Atomics++
	default:
		l.failf("unexpected-message", "request %v for block %v from SM %d", msg.Type, msg.Block, msg.Src)
		return
	}
	l.stats.TagProbes++

	if q, ok := l.blocked[msg.Block]; ok {
		// Order behind the stalled write.
		l.blocked[msg.Block] = append(q, msg)
		return
	}
	if m, ok := l.miss[msg.Block]; ok {
		m.waiting = append(m.waiting, msg)
		return
	}
	line := l.array.Lookup(msg.Block)
	if line == nil {
		l.stats.Misses++
		m := &l2Miss{block: msg.Block, waiting: []*mem.Msg{msg}}
		l.miss[msg.Block] = m
		l.postDRAM(&mem.Msg{Type: mem.DRAMRd, Block: msg.Block, Src: l.bankID, Dst: l.bankID})
		return
	}
	l.stats.Hits++
	l.runQueue(msg.Block, line, []*mem.Msg{msg})
}

func (l *L2) postNoC(msg *mem.Msg) {
	if len(l.outNoC) == 0 && l.sendNoC.TrySend(msg) {
		return
	}
	l.outNoC = append(l.outNoC, msg)
}

func (l *L2) postDRAM(msg *mem.Msg) {
	if len(l.outDRAM) == 0 && l.sendDRAM.TrySend(msg) {
		return
	}
	l.outDRAM = append(l.outDRAM, msg)
}

func (l *L2) drainOut() {
	for len(l.outNoC) > 0 {
		if !l.sendNoC.TrySend(l.outNoC[0]) {
			break
		}
		l.outNoC = l.outNoC[1:]
	}
	for len(l.outDRAM) > 0 {
		if !l.sendDRAM.TrySend(l.outDRAM[0]) {
			break
		}
		l.outDRAM = l.outDRAM[1:]
	}
}

// MsgPending reports message-driven work: queued input not yet
// serviced, or output not yet injected. Time-driven work (blocked
// TC-Strong writes, installs stalled on unexpired victims) is excluded
// — it resolves by the passage of time, not by message processing. The
// model checker uses this to advance its clock only when every message
// in flight has been fully absorbed, which excludes zeno behaviors
// (e.g. a lease expiring in flight forever re-sending the same read)
// while preserving the expiry-vs-access races.
func (l *L2) MsgPending() bool {
	return len(l.inQ) > 0 || len(l.outNoC) > 0 || len(l.outDRAM) > 0
}

// ForEachLease implements coherence.LeaseHolder: each resident line's
// granted lease as (0, expiry) in physical time.
func (l *L2) ForEachLease(fn func(b mem.BlockAddr, wts, rts uint64)) {
	l.array.ForEach(func(c *cache.Line[l2Meta]) { fn(c.Addr, 0, c.Meta.expiry) })
}

// NextTimeEvent implements coherence.TimeSensitive: the earliest future
// lease expiry, which unblocks parked TC-Strong writes and frees
// eviction victims for stalled fills.
func (l *L2) NextTimeEvent(now uint64) (uint64, bool) {
	var at uint64
	ok := false
	l.array.ForEach(func(c *cache.Line[l2Meta]) {
		if e := c.Meta.expiry; e > now && (!ok || e < at) {
			at, ok = e, true
		}
	})
	return at, ok
}

// Peek implements coherence.L2 (verification hook).
func (l *L2) Peek(b mem.BlockAddr) (*mem.Block, bool) {
	line := l.array.Lookup(b)
	if line == nil {
		return nil, false
	}
	data := line.Data
	return &data, true
}
