package memsys

import (
	"testing"

	"github.com/gtsc-sim/gtsc/internal/coherence"
	"github.com/gtsc-sim/gtsc/internal/mem"
)

func smallConfig(p Protocol) Config {
	cfg := DefaultConfig()
	cfg.Protocol = p
	cfg.NumSMs = 2
	cfg.NumBanks = 2
	cfg.L1Sets = 8
	cfg.L1Ways = 2
	cfg.L1MSHRs = 4
	cfg.L2Sets = 16
	cfg.L2Ways = 2
	return cfg
}

func TestBuildAllProtocols(t *testing.T) {
	for _, p := range []Protocol{GTSC, TC, BL, L1NC} {
		store := mem.NewStore()
		s := New(smallConfig(p), store, nil)
		if len(s.L1s) != 2 || len(s.L2s) != 2 || len(s.Parts) != 2 {
			t.Fatalf("%v: component counts wrong", p)
		}
		if p == GTSC && s.Resets == nil {
			t.Fatal("G-TSC needs a reset controller")
		}
		if s.Pending() != 0 {
			t.Fatal("fresh system must be idle")
		}
	}
}

// TestEndToEndAccess drives one load through the full hierarchy for
// every protocol: L1 -> NoC -> L2 -> DRAM -> back.
func TestEndToEndAccess(t *testing.T) {
	for _, p := range []Protocol{GTSC, TC, BL, L1NC} {
		store := mem.NewStore()
		addr := mem.Addr(0x5000)
		store.WriteWord(addr, 99)
		s := New(smallConfig(p), store, nil)

		var got *uint32
		res := s.L1s[0].Access(&coherence.Request{
			Block: addr.Block(), Mask: mem.WordMask(0).Set(addr.WordIndex()), Warp: 0,
			Done: func(c coherence.Completion) {
				v := c.Data.Words[addr.WordIndex()]
				got = &v
			},
		})
		if res != coherence.Pending {
			t.Fatalf("%v: cold access should be pending", p)
		}
		for cyc := uint64(1); cyc < 5000 && got == nil; cyc++ {
			s.Tick(cyc)
		}
		if got == nil || *got != 99 {
			t.Fatalf("%v: load did not return 99 (got %v)", p, got)
		}
		if s.Pending() != 0 {
			t.Fatalf("%v: system did not drain", p)
		}
	}
}

func TestReadWordPrefersL2(t *testing.T) {
	store := mem.NewStore()
	s := New(smallConfig(GTSC), store, nil)
	addr := mem.Addr(0x100)
	// Not cached anywhere: falls back to the backing store.
	store.WriteWord(addr, 7)
	if s.ReadWord(addr) != 7 {
		t.Fatal("fallback read failed")
	}
	// Write through the hierarchy; the dirty copy lives in L2 only.
	done := false
	data := &mem.Block{}
	data.Words[addr.WordIndex()] = 8
	s.L1s[0].Access(&coherence.Request{
		Block: addr.Block(), Store: true, Mask: mem.WordMask(0).Set(addr.WordIndex()),
		Data: data, Warp: 0,
		Done: func(coherence.Completion) { done = true },
	})
	for cyc := uint64(1); cyc < 5000 && !done; cyc++ {
		s.Tick(cyc)
	}
	if !done {
		t.Fatal("store never completed")
	}
	if store.ReadWord(addr) == 8 {
		t.Fatal("test premise broken: value already written back")
	}
	if s.ReadWord(addr) != 8 {
		t.Fatal("ReadWord must see the L2 copy")
	}
}

func TestProtocolStrings(t *testing.T) {
	names := map[Protocol]string{GTSC: "G-TSC", TC: "TC", BL: "BL", L1NC: "BL-w/L1"}
	for p, want := range names {
		if p.String() != want {
			t.Fatalf("%d: %q", p, p.String())
		}
	}
	if Protocol(99).String() != "?" {
		t.Fatal("unknown protocol name")
	}
}

func TestUnknownProtocolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cfg := smallConfig(GTSC)
	cfg.Protocol = Protocol(42)
	New(cfg, mem.NewStore(), nil)
}
