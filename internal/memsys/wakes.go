// Scheduled-wake registration and per-component dispatch for the
// event-driven engine.
//
// The agenda holds one slot per hierarchy component in canonical tick
// order (net, partitions, L2 banks, L1s) plus the SM slots the
// simulator appends. A slot's wake answers "when could ticking this
// component next change state?" — exactly the question the legacy
// engine answered by calling NextEvent/Quiescent probes every cycle.
//
// The slots serve two roles. They always bound the machine horizon
// (how far the clock may jump over fully-idle windows). With
// per-component wakes enabled they additionally drive DISPATCH:
// TickDue walks the components in canonical order and ticks only those
// whose wake is due, so a quiet L2 bank sleeps through cycles on which
// the rest of the machine is busy. Soundness rests on each component's
// local contract:
//
//   - NoC: NextWork is a sound lower bound maintained on every
//     injection (noc.noteWork) and recomputed after every real tick;
//     Tick on a pre-wake cycle would only advance n.now, which Sync
//     does instead.
//   - DRAM partition: NextEvent is exact (flat) or conservative
//     (banked); Tick before the wake is a no-op because all partition
//     timing state is absolute (see dram.NextEvent).
//   - L1/L2 controllers: Quiescent() means "Tick would be a pure no-op
//     at any future cycle until a new message or access arrives"
//     (coherence.L1 contract), so a quiescent controller parks at
//     Never and is re-armed by the ingress hooks below the moment a
//     delivery or enqueue targets it; a non-quiescent one is Hot.
//
// Re-registration happens at every point that can pull a wake earlier:
// NoC delivery to an L2/L1 and DRAM-fill delivery mark the receiver
// Hot before the message lands (memsys.New wires the hooks), an L2's
// DRAM enqueue re-registers the partition from its post-enqueue
// NextEvent (dramSender), and RefreshDue re-probes exactly the
// components that were ticked this cycle — plus the L1s of SMs that
// ticked, because an SM access can un-quiesce its L1 without any
// hierarchy dispatch. The coarse System.NextEvent aggregate is no
// longer the dispatcher; it remains the cross-check the horizon
// property tests (sim.TestComponentWakeClaimsSound) verify the slots
// against.
package memsys

import "github.com/gtsc-sim/gtsc/internal/sched"

// DispatchStats counts per-component dispatch decisions made by
// TickDue: for each component class, how many per-cycle ticks were
// performed vs skipped because the component's wake was not due
// (sleep-cycles). All zero when per-component wakes are off (the
// hierarchy is then ticked wholesale). Like the rest of EngineStats
// these are pure scheduling observability — the same machine state is
// reached with any dispatch mode.
type DispatchStats struct {
	NoCTicks   uint64
	NoCSleeps  uint64
	DRAMTicks  uint64
	DRAMSleeps uint64
	L2Ticks    uint64
	L2Sleeps   uint64
	L1Ticks    uint64
	L1Sleeps   uint64
}

// HierarchyTicks is the total number of component ticks dispatched.
func (d *DispatchStats) HierarchyTicks() uint64 {
	return d.NoCTicks + d.DRAMTicks + d.L2Ticks + d.L1Ticks
}

// HierarchySleeps is the total number of component-cycles skipped: a
// component asleep through one executed cycle counts one.
func (d *DispatchStats) HierarchySleeps() uint64 {
	return d.NoCSleeps + d.DRAMSleeps + d.L2Sleeps + d.L1Sleeps
}

func (s *System) initWakes() {
	s.Wakes = sched.NewAgenda()
	s.slotNet = s.Wakes.AddSlot()
	s.slotPart = s.Wakes.Slots()
	for range s.Parts {
		s.Wakes.AddSlot()
	}
	s.slotL2 = s.Wakes.Slots()
	for range s.L2s {
		s.Wakes.AddSlot()
	}
	s.slotL1 = s.Wakes.Slots()
	for range s.L1s {
		s.Wakes.AddSlot()
	}
	s.tickedParts = make([]int, 0, len(s.Parts))
	s.tickedL2s = make([]int, 0, len(s.L2s))
	s.tickedL1s = make([]int, 0, len(s.L1s))
}

// AddSlot appends one extra slot (the simulator registers its SMs
// here) so every timed component shares a single deterministic agenda.
func (s *System) AddSlot() int { return s.Wakes.AddSlot() }

// SetComponentWakes switches per-component dispatch on or off. On, the
// ingress hooks re-arm receivers and TickDue/RefreshDue drive the
// cycle; off, the hooks are inert (so the legacy loop never floods the
// agenda heap with entries nothing drains) and the engine ticks the
// hierarchy wholesale. Fault-injected runs force it off: delay shims
// hold messages on schedules the wake registrations do not model.
func (s *System) SetComponentWakes(on bool) {
	s.compWakes = on && s.inj == nil
}

// ComponentWakesOn reports whether per-component dispatch is active.
func (s *System) ComponentWakesOn() bool { return s.compWakes }

// due reports whether a slot's wake means "tick this cycle": Hot (0)
// always, Never never, a concrete wake when it has arrived. Overdue
// concrete wakes (< now) can only arise from the Horizon clamp; they
// dispatch immediately, which errs toward extra no-op ticks.
func due(wake, now uint64) bool { return wake <= now }

// TickDue advances the hierarchy one cycle, dispatching Tick only to
// components whose agenda wake is due, in exactly the canonical order
// Tick uses (net, partitions, L2s, L1s) — so among the components that
// do tick, the observable event sequence is identical to the wholesale
// tick, and the skipped ones were provably no-ops (see the package
// comment). Ticked component indices are recorded for RefreshDue; d
// accumulates the dispatch decisions.
//
// Deliveries mark their receiver Hot via the ingress hooks BEFORE the
// receiver's own slot is inspected (the NoC and partitions dispatch
// first), so a message delivered this cycle is consumed this cycle,
// exactly as under the wholesale tick.
func (s *System) TickDue(now uint64, d *DispatchStats) {
	if s.inj != nil {
		// Defensive: the engine never routes perturbed runs here, but a
		// wholesale tick is always correct.
		s.Tick(now)
		return
	}
	s.clock = now
	s.Net.Sync(now)
	if due(s.Wakes.Wake(s.slotNet), now) {
		s.Net.Tick(now)
		d.NoCTicks++
	} else {
		d.NoCSleeps++
	}
	s.tickedParts = s.tickedParts[:0]
	for i, p := range s.Parts {
		if due(s.Wakes.Wake(s.slotPart+i), now) {
			p.Tick(now)
			d.DRAMTicks++
			s.tickedParts = append(s.tickedParts, i)
		} else {
			d.DRAMSleeps++
		}
	}
	s.tickedL2s = s.tickedL2s[:0]
	for i, l2 := range s.L2s {
		if due(s.Wakes.Wake(s.slotL2+i), now) {
			l2.Tick(now)
			d.L2Ticks++
			s.tickedL2s = append(s.tickedL2s, i)
		} else {
			l2.SyncClock(now)
			d.L2Sleeps++
		}
	}
	s.tickedL1s = s.tickedL1s[:0]
	for i, l1 := range s.L1s {
		if due(s.Wakes.Wake(s.slotL1+i), now) {
			l1.Tick(now)
			d.L1Ticks++
			s.tickedL1s = append(s.tickedL1s, i)
		} else {
			l1.SyncClock(now)
			d.L1Sleeps++
		}
	}
}

// SyncClocks advances component-local clocks across a proven-quiet
// window without ticking anything. It replaces the wholesale
// Sys.Tick(j) resync at the end of a fast-forward jump when
// per-component wakes are on: every slot's wake lies beyond j (that is
// what made the window skippable), so each component's Tick(j) would
// be a no-op — except the clock assignment it opens with, which is
// exactly what Sync/SyncClock perform. Controller clocks matter even
// while inert (see coherence.L1.SyncClock); DRAM partitions keep no
// local clock (all their timing state is absolute).
func (s *System) SyncClocks(now uint64) {
	s.clock = now
	s.Net.Sync(now)
	for _, l2 := range s.L2s {
		l2.SyncClock(now)
	}
	for _, l1 := range s.L1s {
		l1.SyncClock(now)
	}
}

// RefreshDue re-registers wakes after an executed cycle under
// per-component dispatch, touching only the components whose state can
// have changed: the NoC (always — any L1/SM send this cycle lowered
// its cached next-work bound, and the read is O(1)), the partitions
// and controllers that ticked, and the L1s of the SMs in smsTicked (an
// SM access can un-quiesce its L1 with no hierarchy dispatch
// involved). Everything else kept the wake it registered when it last
// changed. Schedule dedups same-value writes, so double-refreshing an
// index is free.
func (s *System) RefreshDue(now uint64, smsTicked []int) {
	if s.inj != nil {
		s.Wakes.Schedule(s.slotNet, sched.Hot)
		return
	}
	s.Wakes.Schedule(s.slotNet, s.Net.NextWork(now))
	for _, i := range s.tickedParts {
		s.Wakes.Schedule(s.slotPart+i, s.Parts[i].NextEvent(now))
	}
	for _, i := range s.tickedL2s {
		s.refreshL2(i)
	}
	for _, i := range s.tickedL1s {
		s.refreshL1(i)
	}
	for _, i := range smsTicked {
		s.refreshL1(i)
	}
}

func (s *System) refreshL2(i int) {
	if s.L2s[i].Quiescent() {
		s.Wakes.Schedule(s.slotL2+i, sched.Never)
	} else {
		s.Wakes.Schedule(s.slotL2+i, sched.Hot)
	}
}

func (s *System) refreshL1(i int) {
	if s.L1s[i].Quiescent() {
		s.Wakes.Schedule(s.slotL1+i, sched.Never)
	} else {
		s.Wakes.Schedule(s.slotL1+i, sched.Hot)
	}
}

// RefreshWakes re-registers every hierarchy component's wake from live
// state after the cycle at now fully executed. Each registration is
// O(1):
//
//   - the NoC reports its incrementally-maintained next-work cycle;
//   - each DRAM partition reports its O(1) NextEvent (head-of-queue
//     issue opportunity or earliest scheduled fill);
//   - L1/L2 controllers are either quiescent (inert until an input
//     arrives, at which point an ingress hook or RefreshDue re-arms
//     them) or must tick every cycle (Hot).
//
// Under per-component dispatch this full scan runs only at phase entry
// (after between-phase work like the kernel-boundary L1 flush, or an
// engine switch across a checkpoint, mutated components outside any
// dispatch); steady-state cycles use the incremental RefreshDue.
//
// Fault shims hold messages on schedules the probes do not model, so
// perturbed runs never use the agenda (see SkipSafe); RefreshWakes
// pins the horizon to Hot in that case as a defensive backstop.
func (s *System) RefreshWakes(now uint64) {
	if s.inj != nil {
		s.Wakes.Schedule(s.slotNet, sched.Hot)
		return
	}
	s.Wakes.Schedule(s.slotNet, s.Net.NextWork(now))
	for i, p := range s.Parts {
		s.Wakes.Schedule(s.slotPart+i, p.NextEvent(now))
	}
	for i := range s.L2s {
		s.refreshL2(i)
	}
	for i := range s.L1s {
		s.refreshL1(i)
	}
}
