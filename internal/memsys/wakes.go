// Scheduled-wake registration for the event-driven engine.
//
// The agenda holds one slot per hierarchy component in canonical tick
// order (net, partitions, L2 banks, L1s) plus the SM slots the
// simulator appends. The hierarchy is still ticked as one unit every
// executed cycle — Tick's internal back-to-front order is what golden
// determinism is pinned to — so its slots exist purely to bound the
// machine horizon: a slot's wake answers "when could ticking this
// component next change state?", exactly the question the legacy
// engine answered by calling NextEvent/Quiescent probes every cycle.
package memsys

import "github.com/gtsc-sim/gtsc/internal/sched"

func (s *System) initWakes() {
	s.Wakes = sched.NewAgenda()
	s.slotNet = s.Wakes.AddSlot()
	s.slotPart = s.Wakes.Slots()
	for range s.Parts {
		s.Wakes.AddSlot()
	}
	s.slotL2 = s.Wakes.Slots()
	for range s.L2s {
		s.Wakes.AddSlot()
	}
	s.slotL1 = s.Wakes.Slots()
	for range s.L1s {
		s.Wakes.AddSlot()
	}
}

// AddSlot appends one extra slot (the simulator registers its SMs
// here) so every timed component shares a single deterministic agenda.
func (s *System) AddSlot() int { return s.Wakes.AddSlot() }

// RefreshWakes re-registers every hierarchy component's wake after the
// cycle at now fully executed. Each registration is O(1):
//
//   - the NoC reports its incrementally-maintained next-work cycle;
//   - each DRAM partition reports its O(1) NextEvent (head-of-queue
//     issue opportunity or earliest scheduled fill);
//   - L1/L2 controllers are either quiescent (inert until an input
//     arrives, and inputs only arrive on executed cycles, which
//     re-refresh) or must tick every cycle (Hot).
//
// Fault shims hold messages on schedules the probes do not model, so
// perturbed runs never use the agenda (see SkipSafe); RefreshWakes
// pins the horizon to Hot in that case as a defensive backstop.
func (s *System) RefreshWakes(now uint64) {
	if s.inj != nil {
		s.Wakes.Schedule(s.slotNet, sched.Hot)
		return
	}
	s.Wakes.Schedule(s.slotNet, s.Net.NextWork(now))
	for i, p := range s.Parts {
		s.Wakes.Schedule(s.slotPart+i, p.NextEvent(now))
	}
	for i, l2 := range s.L2s {
		if l2.Quiescent() {
			s.Wakes.Schedule(s.slotL2+i, sched.Never)
		} else {
			s.Wakes.Schedule(s.slotL2+i, sched.Hot)
		}
	}
	for i, l1 := range s.L1s {
		if l1.Quiescent() {
			s.Wakes.Schedule(s.slotL1+i, sched.Never)
		} else {
			s.Wakes.Schedule(s.slotL1+i, sched.Hot)
		}
	}
}
