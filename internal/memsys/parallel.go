// Deterministic intra-simulation parallelism support: staged message
// injection for the barrier-synchronized parallel SM tick, and the
// next-event / quiescence queries behind machine-level cycle-skipping.
//
// The two-phase tick works like this. During the COMPUTE phase the
// simulator ticks SMs concurrently; everything an SM touches is
// SM-private except the message it injects into its NoC port. Each
// L1's sender is therefore interposed with a stagedSender: while a
// stage is armed, TrySend reserves injection-queue vacancy (computed
// before the phase — exact, because only SM i's own L1 fills port i
// and ports drain only inside Net.Tick, which already ran this cycle)
// and buffers the message instead of injecting. During the COMMIT
// phase the simulator replays the staged messages into the NoC in
// canonical SM-index order, single-threaded. Port FIFO order within an
// SM is its program order and ports are per-SM, so the observable
// event sequence is identical to the serial loop at any worker count.
package memsys

import (
	"github.com/gtsc-sim/gtsc/internal/coherence"
	"github.com/gtsc-sim/gtsc/internal/mem"
	"github.com/gtsc-sim/gtsc/internal/sched"
)

// Never is the NextEvent result when nothing is scheduled at all
// (shared sentinel, see internal/sched).
const Never = sched.Never

// stagedSender interposes one L1's request path to the NoC. Disarmed
// (the serial loop, and every non-SM phase of the parallel loop) it is
// a transparent passthrough.
//
// Fault injection draws the transient-reject chance FIRST on every
// attempt, from this lane's private RNG stream (fault.LaneReject), in
// both the serial and the staged path — so the perturbation schedule
// is a function of the lane's own send count and replays identically
// at any worker count. The commit replay then uses the raw sender:
// the reject was already decided at stage time, and a second draw at
// commit would both double-consume the stream and break the exact
// vacancy reservation.
type stagedSender struct {
	real    coherence.Sender
	reject  func() bool // per-lane fault draw; nil when not perturbed
	relax   *epochBuf   // relaxed-sync epoch buffer (see relaxed.go)
	staging bool
	space   int // remaining injection-queue vacancy this cycle
	buf     []*mem.Msg
}

// TrySend implements coherence.Sender.
func (ss *stagedSender) TrySend(msg *mem.Msg) bool {
	if ss.reject != nil && ss.reject() {
		return false // transient fault: indistinguishable from a full port
	}
	if ss.relax.on {
		ss.relax.add(msg)
		return true
	}
	if !ss.staging {
		return ss.real.TrySend(msg)
	}
	if ss.space <= 0 {
		return false // port would backpressure; L1 queues and retries
	}
	ss.space--
	ss.buf = append(ss.buf, msg)
	return true
}

// BeginSMStage arms every L1's staged sender (and, when an observer is
// attached, its observation shim) for one parallel SM compute phase,
// capturing each port's exact vacancy.
func (s *System) BeginSMStage() {
	for i, ss := range s.staged {
		ss.staging = true
		ss.space = s.Net.InjectSpaceToL2(i)
		ss.buf = ss.buf[:0]
	}
	for _, sh := range s.l1Obs {
		if sh != nil {
			sh.staging = true
		}
	}
}

// CommitSMStage disarms the staged senders and replays the buffered
// messages into the NoC in SM-index order; staged observations flush
// in the same order. Every replayed send must succeed: the fault draw
// (if any) already happened at stage time, staging reserved exactly
// the vacancy the port had, and nothing else can fill an SM's port
// between stage and commit. The serial loop ticks SMs in index order
// too, so both the NoC event sequence and the observer stream are
// identical to serial at any worker count.
func (s *System) CommitSMStage() {
	for i, ss := range s.staged {
		ss.staging = false
		if sh := s.l1ObsAt(i); sh != nil {
			sh.staging = false
			sh.flush()
		}
		for j, msg := range ss.buf {
			if !ss.real.TrySend(msg) {
				panic("memsys: staged send rejected at commit")
			}
			ss.buf[j] = nil // drop the reference for the GC
		}
		ss.buf = ss.buf[:0]
	}
}

// l1ObsAt returns SM i's observation shim, or nil when no observer is
// attached.
func (s *System) l1ObsAt(i int) *obsShim {
	if s.l1Obs == nil {
		return nil
	}
	return s.l1Obs[i]
}

// SkipSafe reports whether the cycle-skipping engine may fast-forward
// the clock. Fault shims hold messages with wall-of-cycle release
// schedules the next-event query does not model, so perturbed runs
// tick every cycle.
func (s *System) SkipSafe() bool { return s.inj == nil }

// NextEvent returns the earliest future cycle (> now) at which ticking
// the hierarchy could change any state. While any controller is
// non-quiescent the answer is now+1 (it mutates state every tick);
// otherwise only the NoC wire/ports and DRAM schedules hold events.
func (s *System) NextEvent(now uint64) uint64 {
	if s.inj != nil {
		return now + 1
	}
	for _, l2 := range s.L2s {
		if !l2.Quiescent() {
			return now + 1
		}
	}
	for _, l1 := range s.L1s {
		if !l1.Quiescent() {
			return now + 1
		}
	}
	next := s.Net.NextEvent(now)
	for _, p := range s.Parts {
		next = min(next, p.NextEvent(now))
	}
	return next
}

// Drained is the O(1)-per-component equivalent of Pending() == 0,
// cheap enough for the drain loop to evaluate every cycle.
func (s *System) Drained() bool {
	if s.Net.Pending() != 0 {
		return false
	}
	for _, sh := range s.shims {
		if sh.Pending() != 0 {
			return false
		}
	}
	for _, p := range s.Parts {
		if p.Pending() != 0 {
			return false
		}
	}
	for _, l1 := range s.L1s {
		if l1.Pending() != 0 {
			return false
		}
	}
	for _, l2 := range s.L2s {
		if !l2.Drained() {
			return false
		}
	}
	return s.relaxPending() == 0
}
