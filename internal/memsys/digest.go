package memsys

import (
	"fmt"
	"io"

	"github.com/gtsc-sim/gtsc/internal/coherence"
	"github.com/gtsc-sim/gtsc/internal/diag"
)

// DigestState writes a canonical, process-independent rendering of the
// whole memory system: the architected store image, every controller's
// microarchitectural state, the interconnect, the DRAM partitions, the
// overflow-reset epoch and the fault machinery (held messages and the
// injector's RNG position). Two equal digests from different processes
// imply the same memory-system state and the same future behavior.
func (s *System) DigestState(w io.Writer) {
	io.WriteString(w, "store\n")
	s.Store.DigestInto(w)
	for i, l1 := range s.L1s {
		digestController(w, "l1", i, l1)
	}
	for i, l2 := range s.L2s {
		digestController(w, "l2", i, l2)
	}
	s.Net.DigestState(w)
	for _, p := range s.Parts {
		p.DigestState(w)
	}
	if s.Resets != nil {
		fmt.Fprintf(w, "resets epoch=%d count=%d\n", s.Resets.Epoch(), s.Resets.Resets())
	}
	if s.inj != nil {
		fmt.Fprintf(w, "rng %#x rollover=%d\n", s.inj.RNGState(), s.inj.NextRollover())
	}
	for _, sh := range s.shims {
		sh.DigestState(w)
	}
}

// digestController renders one cache controller. Every controller in
// this repository implements coherence.StateDigester; the DumpState
// fallback keeps the digest total (if coarser) for out-of-tree ones.
func digestController(w io.Writer, kind string, id int, c interface {
	DumpState() diag.CacheState
}) {
	if d, ok := c.(coherence.StateDigester); ok {
		d.DigestState(w)
		return
	}
	fmt.Fprintf(w, "%s[%d] %+v\n", kind, id, c.DumpState())
}
