// Relaxed-synchronization (bounded-slack) execution support: epoch
// buffers, barrier-time NoC exchange, and staged observation shims.
//
// In relaxed mode the simulator partitions the machine into domains —
// one per SM (the SM plus its private L1), one per L2 bank (the bank
// plus its DRAM partition) — and lets each domain free-run up to a
// slack bound of N cycles between epoch barriers. Everything a domain
// touches mid-epoch is domain-private; the only cross-domain channel
// is the NoC, and every NoC injection a domain attempts is captured in
// that domain's epochBuf tagged with the domain-local cycle. At the
// barrier the master replays the NoC cycle by cycle over the epoch
// window, injecting each buffered message at its tagged cycle in
// canonical port order, so the wire-level event sequence depends only
// on what the domains did — never on how their execution interleaved.
//
// Injections always "succeed" from the sending controller's point of
// view (the buffer is unbounded); when the replay meets a full port
// the message is parked in a per-port held queue and injected on a
// later replay cycle, preserving FIFO order. That is the one place
// relaxed timing deviates from the bit-exact engine beyond delivery
// crossing a barrier: backpressure a controller would have seen as a
// failed TrySend is absorbed as extra port latency instead. Both
// perturbations are latency-only, which every protocol here already
// tolerates (the chaos harness injects far worse), so functional
// results are preserved while cycle counts drift by a bounded amount.
package memsys

import (
	"fmt"
	"sort"

	"github.com/gtsc-sim/gtsc/internal/coherence"
	"github.com/gtsc-sim/gtsc/internal/mem"
	"github.com/gtsc-sim/gtsc/internal/noc"
)

// taggedMsg is one buffered injection and the domain-local cycle it
// was attempted at.
type taggedMsg struct {
	at  uint64
	msg *mem.Msg
}

// relaxDir aggregates one NoC direction's (toL2 or toL1) relaxed
// injection state across all of its ports, so the exchange can decide
// in O(1) per cycle whether the direction needs a port scan at all:
// pend counts un-injected messages (buffered + held), held counts the
// parked subset (always due), and due is a lower bound on the
// earliest buffered tag (exact after each scan; adds only lower it).
type relaxDir struct {
	pend int
	held int
	due  uint64
}

// epochBuf collects one component's outbound NoC messages during a
// relaxed epoch. now is maintained by the domain runner as it ticks.
//
// live points at the direction aggregate while the MASTER owns the
// buffer, and is nil while a domain worker does: SM-domain adds run
// concurrently across workers and must not touch shared state, so the
// exchange instead reconciles the toL2 aggregate from a buffer scan
// at its start, then takes ownership (deliveries during the exchange
// can trigger further L1 sends, which the gate must see). Bank
// buffers are master-owned always — banks only tick inside the
// exchange — so their live stays set permanently.
type epochBuf struct {
	on   bool
	now  uint64
	buf  []taggedMsg
	cur  int // barrier replay cursor
	live *relaxDir
}

func (b *epochBuf) add(m *mem.Msg) {
	if d := b.live; d != nil {
		d.pend++
		if b.now < d.due {
			d.due = b.now
		}
	}
	b.buf = append(b.buf, taggedMsg{b.now, m})
}

func (b *epochBuf) pending() int { return len(b.buf) - b.cur }

// relaxSender interposes one L2 bank's response path to the NoC so the
// bank's sends can be captured mid-epoch. Outside relaxed mode it is a
// transparent passthrough (one branch).
type relaxSender struct {
	real  coherence.Sender
	relax *epochBuf
}

func (rs *relaxSender) TrySend(msg *mem.Msg) bool {
	if rs.relax.on {
		rs.relax.add(msg)
		return true
	}
	return rs.real.TrySend(msg)
}

// obsShim interposes one component's view of the run observer. While
// staging, observations buffer instead of forwarding; the flush
// re-emits them on the master goroutine in canonical order. Used by
// both the staged parallel SM tick (flushed per cycle in SM-index
// order) and relaxed mode (flushed per epoch, merged across
// components sorted by cycle).
type obsShim struct {
	real    coherence.Observer
	staging bool
	buf     []coherence.Op
}

// Observe implements coherence.Observer.
func (o *obsShim) Observe(op coherence.Op) {
	if o.staging {
		o.buf = append(o.buf, op)
		return
	}
	o.real.Observe(op)
}

func (o *obsShim) flush() {
	for i := range o.buf {
		o.real.Observe(o.buf[i])
	}
	o.buf = o.buf[:0]
}

// shimObs wraps obs with a fresh staging shim recorded in *slot;
// passthrough nil when no observer is attached.
func shimObs(obs coherence.Observer, slot **obsShim) coherence.Observer {
	if obs == nil {
		return nil
	}
	sh := &obsShim{real: obs}
	*slot = sh
	return sh
}

// RelaxedBegin arms the epoch buffers and observer shims for one
// relaxed run phase.
func (s *System) RelaxedBegin() {
	for b := range s.relaxPartNext {
		s.relaxPartNext[b] = 0 // forces a tick on the first exchange cycle
		s.relaxPartStale[b] = false
	}
	for _, b := range s.relaxL1 {
		b.on = true
	}
	for _, b := range s.relaxL2 {
		b.on = true
	}
	for _, sh := range s.l1Obs {
		if sh != nil {
			sh.staging = true
		}
	}
	for _, sh := range s.l2Obs {
		if sh != nil {
			sh.staging = true
		}
	}
}

// RelaxedEnd disarms relaxed capture at the end of a run phase. Every
// epoch buffer must already have been drained by a barrier exchange;
// held-queue messages may survive (they are ordinary pending work the
// next phase's serial ticking would never see, so they must be empty
// by the time the phase declares itself drained — Drained() counts
// them).
func (s *System) RelaxedEnd() {
	for i, b := range s.relaxL1 {
		if b.pending() != 0 {
			panic(fmt.Sprintf("memsys: relaxed L1 buffer %d not drained at phase end", i))
		}
		b.on = false
	}
	for i, b := range s.relaxL2 {
		if b.pending() != 0 {
			panic(fmt.Sprintf("memsys: relaxed L2 buffer %d not drained at phase end", i))
		}
		b.on = false
	}
	for _, sh := range s.l1Obs {
		if sh != nil {
			sh.staging = false
			sh.flush()
		}
	}
	for _, sh := range s.l2Obs {
		if sh != nil {
			sh.staging = false
			sh.flush()
		}
	}
}

// RelaxedTickL1 advances SM domain i's L1 by one cycle. The epoch
// buffer's clock covers both the L1's own sends and the SM accesses
// that follow within the same domain cycle.
func (s *System) RelaxedTickL1(i int, c uint64) {
	s.relaxL1[i].now = c
	s.L1s[i].Tick(c)
}

// RelaxedExchange is the epoch barrier's coupling phase: it simulates
// the entire shared side of the machine — the NoC, the L2 banks, and
// the DRAM partitions — cycle-exactly over (from, to] on the master.
// Each replay cycle ticks the network (delivering wire arrivals at
// their true cycles), injects due L1->L2 buffered messages in
// canonical SM order, ticks every non-quiescent mem domain (DRAM
// partition, then its L2 bank — the canonical intra-cycle order), and
// immediately injects the responses those banks produced, so a
// request that arrives mid-window is serviced at its arrival cycle
// and its response rides the wire within the same barrier. Only the
// receiving SM domain's *observation* of a response waits for the
// epoch boundary — the whole round trip no longer pays an epoch per
// hop, which is what keeps relaxed cycle counts close to bit-exact.
//
// Port backpressure parks messages in per-port held queues,
// preserving FIFO order across cycles and epochs. Quiescent banks
// with no scheduled DRAM event are skipped per cycle (clock-synced
// only); a delivery makes a bank non-quiescent and re-engages it the
// same cycle. When the whole shared side is provably inert — nothing
// held, no buffered injection due, an idle wire (NextWork is exact
// after a tick and injections maintain it), and every bank quiescent
// with no scheduled DRAM event — the replay jumps straight to the
// next event, exactly the skip the scheduled-wake engine performs.
// Returns the messages injected into the NoC, the number parked
// behind a full port, and the mem-domain cycles executed vs skipped.
func (s *System) RelaxedExchange(from, to uint64) (injected, held int, memTicks, memSkipped uint64) {
	banks := uint64(len(s.L2s))
	// Reconcile the toL2 aggregate from the domain phase's buffered
	// sends (workers could not maintain it race-free), then take
	// master ownership so Deliver-triggered L1 sends during the
	// exchange keep it exact.
	dl2 := &s.relaxToL2
	dl2.pend = dl2.held
	dl2.due = noc.Never
	for _, b := range s.relaxL1 {
		dl2.pend += b.pending()
		if b.cur < len(b.buf) && b.buf[b.cur].at < dl2.due {
			dl2.due = b.buf[b.cur].at
		}
		b.live = dl2
	}
	defer func() {
		for _, b := range s.relaxL1 {
			b.live = nil
		}
	}()
	// memNext: cycle at which the bank loop must next run while every
	// bank is quiescent (min of their partitions' next events); any L2
	// delivery re-engages the loop regardless, detected in O(1) via the
	// network's delivery counter.
	memNext := uint64(0)
	delivered := s.Net.DeliveredL2()
	for c := from + 1; c <= to; c++ {
		s.clock = c
		s.Net.Tick(c)
		if d := &s.relaxToL2; d.pend != 0 && (d.held != 0 || d.due <= c) {
			d.due = noc.Never
			for i, b := range s.relaxL1 {
				// Idle-port fast path: nothing held, nothing due — just
				// fold the head tag (if any) back into the watermark.
				if len(s.heldL2[i]) == 0 && (b.cur >= len(b.buf) || b.buf[b.cur].at > c) {
					if b.cur < len(b.buf) && b.buf[b.cur].at < d.due {
						d.due = b.buf[b.cur].at
					}
					continue
				}
				inj, h := s.relaxInjectPort(c, b, &s.heldL2[i], d, true)
				injected, held = injected+inj, held+h
			}
		}
		if d2 := s.Net.DeliveredL2(); d2 != delivered || memNext <= c {
			delivered = d2
			memNext = noc.Never
			for b, l2 := range s.L2s {
				if l2.Quiescent() {
					// Lazily recompute the partition's next event: only
					// on the busy->quiescent transition, not per busy
					// cycle.
					if s.relaxPartStale[b] {
						s.relaxPartNext[b] = s.Parts[b].NextEvent(c)
						s.relaxPartStale[b] = false
					}
					if s.relaxPartNext[b] > c {
						l2.SyncClock(c)
						memSkipped++
						memNext = min(memNext, s.relaxPartNext[b])
						continue
					}
				}
				s.relaxL2[b].now = c
				s.Parts[b].Tick(c)
				l2.Tick(c)
				s.relaxPartStale[b] = true
				memTicks++
				memNext = c + 1 // still (possibly) busy: come back next cycle
			}
		} else {
			memSkipped += banks
		}
		if d := &s.relaxToL1; d.pend != 0 && (d.held != 0 || d.due <= c) {
			d.due = noc.Never
			for i, b := range s.relaxL2 {
				if len(s.heldL1[i]) == 0 && (b.cur >= len(b.buf) || b.buf[b.cur].at > c) {
					if b.cur < len(b.buf) && b.buf[b.cur].at < d.due {
						d.due = b.buf[b.cur].at
					}
					continue
				}
				inj, h := s.relaxInjectPort(c, b, &s.heldL1[i], d, false)
				injected, held = injected+inj, held+h
			}
		}
		if c >= to || s.relaxHeld != 0 {
			continue
		}
		// Event-skip: after injection, every remaining buffered message
		// is tagged > c, so the earliest future event is the min of the
		// wire's next work, the next due injection, and the bank loop's
		// next engagement. NextWork is the cheapest bound, so check it
		// before the rest.
		next := s.Net.NextWork(c)
		if next <= c+1 {
			continue
		}
		next = min(next, memNext)
		if s.relaxToL2.pend != 0 {
			next = min(next, s.relaxToL2.due)
		}
		if s.relaxToL1.pend != 0 {
			next = min(next, s.relaxToL1.due)
		}
		if next > c+1 {
			j := min(next-1, to)
			memSkipped += (j - c) * banks
			c = j
		}
	}
	s.clock = to
	s.Net.Sync(to)
	for _, l2 := range s.L2s {
		l2.SyncClock(to)
	}
	for _, b := range s.relaxL1 {
		if b.cur == len(b.buf) {
			b.buf, b.cur = b.buf[:0], 0
		}
	}
	for _, b := range s.relaxL2 {
		if b.cur == len(b.buf) {
			b.buf, b.cur = b.buf[:0], 0
		}
	}
	return injected, held, memTicks, memSkipped
}

// RelaxedDeliveryHorizon returns a sound lower bound on the earliest
// cycle at which an L1 could receive a delivery, given the traffic in
// flight right now: NoC wire and port state, plus any parked or
// still-buffered L2->L1 messages (those could inject on the next
// exchange cycle, so they clamp the horizon to now+1). Never when no
// L1-bound traffic exists. The relaxed engine pulls the next epoch
// barrier in to this cycle (rounded up to its fine grid) so response
// latency is not stretched to the full slack bound.
func (s *System) RelaxedDeliveryHorizon(now uint64) uint64 {
	if s.relaxToL1.pend != 0 {
		return now + 1
	}
	return s.Net.NextL1Arrival(now)
}

// relaxInjectPort injects one port's due traffic at replay cycle c:
// held messages first (oldest first), then newly due buffered
// messages. Once one message is held, everything younger on the same
// port holds too — ports are FIFO. The direction aggregate d is kept
// exact: pend drops per injection, held tracks parked messages, and
// the port's next buffered tag (if any) is folded into due.
func (s *System) relaxInjectPort(c uint64, b *epochBuf, heldQ *[]*mem.Msg, d *relaxDir, toL2 bool) (injected, held int) {
	send := s.Net.SendToL1
	if toL2 {
		send = s.Net.SendToL2
	}
	for len(*heldQ) > 0 && send((*heldQ)[0]) {
		(*heldQ)[0] = nil
		*heldQ = (*heldQ)[1:]
		s.relaxHeld--
		d.held--
		d.pend--
		injected++
	}
	for b.cur < len(b.buf) && b.buf[b.cur].at <= c {
		msg := b.buf[b.cur].msg
		b.buf[b.cur].msg = nil
		b.cur++
		if len(*heldQ) == 0 && send(msg) {
			d.pend--
			injected++
			continue
		}
		*heldQ = append(*heldQ, msg)
		s.relaxHeld++
		d.held++
		held++
	}
	if b.cur < len(b.buf) && b.buf[b.cur].at < d.due {
		d.due = b.buf[b.cur].at
	}
	return injected, held
}

// RelaxedHeld reports how many barrier injections are currently parked
// behind full ports.
func (s *System) RelaxedHeld() int { return s.relaxHeld }

// relaxPending counts relaxed-mode in-flight work: buffered epoch
// sends not yet replayed plus held-queue messages. Zero whenever
// relaxed mode is off.
func (s *System) relaxPending() int {
	n := s.relaxHeld
	for _, b := range s.relaxL1 {
		n += b.pending()
	}
	for _, b := range s.relaxL2 {
		n += b.pending()
	}
	return n
}

// RelaxedFlushObs merges and emits the epoch's staged observations in
// canonical order: by cycle, L2 observations before L1 within a
// cycle, components in index order, each component's own observations
// in program order. This matches the serial engine's intra-cycle
// component order; only the interleaving of same-cycle observations
// across components can differ from bit-exact execution (concurrent
// events with no cross-domain ordering edge inside one cycle), which
// the coherence checkers accept by construction.
func (s *System) RelaxedFlushObs() {
	if s.obs == nil {
		return
	}
	type ent struct {
		op    coherence.Op
		class int // 0 = L2, 1 = L1
		idx   int // component index
		seq   int // program order within the component
	}
	var all []ent
	for i, sh := range s.l2Obs {
		for j := range sh.buf {
			all = append(all, ent{sh.buf[j], 0, i, j})
		}
		sh.buf = sh.buf[:0]
	}
	for i, sh := range s.l1Obs {
		for j := range sh.buf {
			all = append(all, ent{sh.buf[j], 1, i, j})
		}
		sh.buf = sh.buf[:0]
	}
	if len(all) == 0 {
		return
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].op.Cycle != all[b].op.Cycle {
			return all[a].op.Cycle < all[b].op.Cycle
		}
		if all[a].class != all[b].class {
			return all[a].class < all[b].class
		}
		if all[a].idx != all[b].idx {
			return all[a].idx < all[b].idx
		}
		return all[a].seq < all[b].seq
	})
	for i := range all {
		s.obs.Observe(all[i].op)
	}
}
