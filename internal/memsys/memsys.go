// Package memsys assembles the simulated memory hierarchy for a chosen
// coherence protocol: per-SM L1 controllers, the crossbar NoC, the
// banked shared L2, and one DRAM partition per bank, all over a single
// functional backing store.
package memsys

import (
	"fmt"

	"github.com/gtsc-sim/gtsc/internal/coherence"
	"github.com/gtsc-sim/gtsc/internal/core"
	"github.com/gtsc-sim/gtsc/internal/diag"
	"github.com/gtsc-sim/gtsc/internal/dir"
	"github.com/gtsc-sim/gtsc/internal/dram"
	"github.com/gtsc-sim/gtsc/internal/fault"
	"github.com/gtsc-sim/gtsc/internal/mem"
	"github.com/gtsc-sim/gtsc/internal/noc"
	"github.com/gtsc-sim/gtsc/internal/nocoh"
	"github.com/gtsc-sim/gtsc/internal/sched"
	"github.com/gtsc-sim/gtsc/internal/stats"
	"github.com/gtsc-sim/gtsc/internal/tc"
)

// Protocol selects the coherence configuration of a run.
type Protocol uint8

// The four configurations the paper evaluates.
const (
	// GTSC is the paper's contribution (internal/core).
	GTSC Protocol = iota
	// TC is Temporal Coherence; the Weak flag in the TC config picks
	// the strong/weak variant (the evaluation pairs TC-Weak with RC
	// and TC-Strong with SC).
	TC
	// BL disables the L1 entirely — the normalization baseline.
	BL
	// L1NC is a non-coherent L1 (Baseline-w/L1, Fig 12 right cluster).
	L1NC
	// DIR is a conventional invalidation-based full-map directory
	// protocol (MESI-style) — the class §II-C argues against,
	// implemented so the argument can be measured.
	DIR
)

// String names the protocol as the paper's figures do.
func (p Protocol) String() string {
	switch p {
	case GTSC:
		return "G-TSC"
	case TC:
		return "TC"
	case BL:
		return "BL"
	case L1NC:
		return "BL-w/L1"
	case DIR:
		return "MESI-dir"
	default:
		return "?"
	}
}

// Config describes the hierarchy geometry and protocol parameters.
type Config struct {
	Protocol Protocol

	NumSMs   int // paper: 16
	NumBanks int // L2 banks = DRAM partitions (paper: 8)

	// L1: 16KB, 128B lines, 4-way -> 32 sets (paper §VI-A).
	L1Sets  int
	L1Ways  int
	L1MSHRs int
	// MaxWarps sizes the per-warp timestamp table (paper: 48).
	MaxWarps int

	// L2 per bank: 128KB, 128B lines, 8-way -> 128 sets.
	L2Sets     int
	L2Ways     int
	L2PerCycle int

	NoC  noc.Config
	DRAM dram.Config

	GTSC core.Config
	TC   tc.Config
	DIR  dir.Config

	// Fault is the fault-injection plan; the zero value disables it.
	Fault fault.Config
}

// DefaultConfig returns the paper's simulated machine (§VI-A).
func DefaultConfig() Config {
	return Config{
		Protocol: GTSC,
		NumSMs:   16,
		NumBanks: 8,
		L1Sets:   32, L1Ways: 4, L1MSHRs: 32, MaxWarps: 48,
		L2Sets: 128, L2Ways: 8, L2PerCycle: 1,
		NoC:  noc.DefaultConfig(),
		DRAM: dram.DefaultConfig(),
		GTSC: core.DefaultConfig(),
		TC:   tc.DefaultConfig(),
	}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.NumSMs == 0 {
		c.NumSMs = d.NumSMs
	}
	if c.NumBanks == 0 {
		c.NumBanks = d.NumBanks
	}
	if c.L1Sets == 0 {
		c.L1Sets = d.L1Sets
	}
	if c.L1Ways == 0 {
		c.L1Ways = d.L1Ways
	}
	if c.L1MSHRs == 0 {
		c.L1MSHRs = d.L1MSHRs
	}
	if c.MaxWarps == 0 {
		c.MaxWarps = d.MaxWarps
	}
	if c.L2Sets == 0 {
		c.L2Sets = d.L2Sets
	}
	if c.L2Ways == 0 {
		c.L2Ways = d.L2Ways
	}
	if c.L2PerCycle == 0 {
		c.L2PerCycle = d.L2PerCycle
	}
}

// Validate reports configuration errors that would leave the hierarchy
// unable to make progress, as typed *diag.ConfigError values rather
// than panics. Only protocol-level parameters are checked; geometry
// zero-values are legal (fillDefaults completes them).
func (c Config) Validate() error {
	if c.Protocol == GTSC {
		return c.GTSC.Validate()
	}
	return nil
}

// System is the assembled memory hierarchy of one run.
type System struct {
	Cfg    Config
	L1s    []coherence.L1
	L2s    []coherence.L2
	Net    *noc.Network
	Parts  []*dram.Partition
	Store  *mem.Store
	Resets *core.ResetController // non-nil for G-TSC

	inj   *fault.Injector
	shims []*fault.DelayShim

	// staged interposes each L1's NoC sender for the two-phase
	// parallel tick (see parallel.go); index = SM id.
	staged []*stagedSender

	// Relaxed-sync state (see relaxed.go): the run observer and its
	// per-component staging shims, per-domain outbound epoch buffers,
	// and the per-port held queues for barrier injections that met a
	// full port. l1Obs/l2Obs are nil when no observer is attached.
	obs       coherence.Observer
	l1Obs     []*obsShim
	l2Obs     []*obsShim
	relaxL1   []*epochBuf  // SM domain i -> toL2 port i
	relaxL2   []*epochBuf  // mem domain b -> toL1 port b
	heldL2    [][]*mem.Msg // backpressured barrier injections, toL2 port i
	heldL1    [][]*mem.Msg // backpressured barrier injections, toL1 port b
	relaxHeld int
	relaxToL2 relaxDir // aggregate injection state, L1->L2 direction
	relaxToL1 relaxDir // aggregate injection state, L2->L1 direction
	// relaxPartNext caches each DRAM partition's next scheduled event
	// so the exchange can skip quiescent mem domains per replay cycle;
	// relaxPartStale marks entries invalidated by a tick, recomputed
	// lazily on the next quiescent cycle. Reset each RelaxedBegin.
	relaxPartNext  []uint64
	relaxPartStale []bool

	// Wakes is the scheduled-wake agenda for the event-driven engine
	// (see wakes.go); slot layout is [net, partitions, L2s, L1s] in
	// canonical tick order, with SM slots appended by the simulator.
	Wakes *sched.Agenda

	slotNet  int
	slotPart int // first partition slot; partition i is slotPart+i
	slotL2   int // first L2 slot
	slotL1   int // first L1 slot

	// Per-component dispatch state (see wakes.go). compWakes gates the
	// ingress hooks and the TickDue/RefreshDue pair; clock is the last
	// cycle handed to Tick/TickDue/SyncClocks, which the hooks need to
	// compute post-enqueue wakes; the ticked lists record which
	// components TickDue dispatched this cycle so RefreshDue re-probes
	// exactly those.
	compWakes   bool
	clock       uint64
	tickedParts []int
	tickedL2s   []int
	tickedL1s   []int
}

// New builds the hierarchy. obs may be nil.
func New(cfg Config, store *mem.Store, obs coherence.Observer) *System {
	cfg.fillDefaults()
	if cfg.Fault.TSStress {
		// Start G-TSC timestamps as close to wraparound as the config
		// permits (core.Config.fillDefaults clamps to the safe limit),
		// so the §V-D overflow reset fires within the first accesses.
		cfg.GTSC.InitTS = ^uint64(0)
		// Shorten TC leases so expiry/renewal churn is constant — but
		// never below a few worst-case NoC traversals: a lease shorter
		// than the fill latency arrives dead and the L1 livelocks.
		lat := cfg.NoC.Latency
		if lat == 0 {
			lat = noc.DefaultConfig().Latency
		}
		floor := 4 * (lat + cfg.Fault.DelayMax)
		if floor < 64 {
			floor = 64
		}
		if cfg.TC.Lease == 0 || cfg.TC.Lease > floor {
			cfg.TC.Lease = floor
		}
	}
	s := &System{Cfg: cfg, Store: store, obs: obs}
	if cfg.Fault.Enabled() {
		s.inj = fault.NewInjector(cfg.Fault)
	}
	s.Net = noc.New(cfg.NoC, cfg.NumSMs, cfg.NumBanks)

	if obs != nil {
		s.l1Obs = make([]*obsShim, cfg.NumSMs)
		s.l2Obs = make([]*obsShim, cfg.NumBanks)
	}
	s.relaxToL2.due = noc.Never
	s.relaxToL1.due = noc.Never
	s.relaxL1 = make([]*epochBuf, cfg.NumSMs)
	for i := range s.relaxL1 {
		s.relaxL1[i] = &epochBuf{} // live wired by each exchange
	}
	s.relaxL2 = make([]*epochBuf, cfg.NumBanks)
	for i := range s.relaxL2 {
		s.relaxL2[i] = &epochBuf{live: &s.relaxToL1}
	}
	s.heldL2 = make([][]*mem.Msg, cfg.NumSMs)
	s.heldL1 = make([][]*mem.Msg, cfg.NumBanks)
	s.relaxPartNext = make([]uint64, cfg.NumBanks)
	s.relaxPartStale = make([]bool, cfg.NumBanks)

	s.Parts = make([]*dram.Partition, cfg.NumBanks)
	for i := range s.Parts {
		s.Parts[i] = dram.New(cfg.DRAM, i, store)
	}

	s.L2s = make([]coherence.L2, cfg.NumBanks)
	sendToL1 := coherence.Sender(coherence.SenderFunc(s.Net.SendToL1))
	if s.inj != nil {
		// The L2->L1 path only sends from serial hierarchy phases, so
		// the shared-stream reject shim stays deterministic at any
		// worker count.
		sendToL1 = s.inj.WrapSender(sendToL1)
	}
	// Per-bank relaxed interposer so epoch buffers can capture each
	// bank's sends; a transparent passthrough outside relaxed mode.
	bankSend := func(i int) coherence.Sender {
		return &relaxSender{real: sendToL1, relax: s.relaxL2[i]}
	}
	// Per-bank observer shim; nil passthrough without an observer.
	bankObs := func(i int) coherence.Observer {
		if obs == nil {
			return nil
		}
		return shimObs(obs, &s.l2Obs[i])
	}
	switch cfg.Protocol {
	case GTSC:
		s.Resets = core.NewResetController()
		for i := range s.L2s {
			l2 := core.NewL2(cfg.GTSC, i,
				core.L2Geometry{Sets: cfg.L2Sets, Ways: cfg.L2Ways, PerCycle: cfg.L2PerCycle},
				bankSend(i), s.dramSender(i), bankObs(i))
			l2.AttachResets(s.Resets)
			// The G-TSC controllers follow the consume-and-free
			// message ownership discipline, so the bank's partition
			// recycles through the bank's pool (see mem.Pool).
			s.Parts[i].SetPool(l2.Pool())
			s.L2s[i] = l2
		}
	case TC:
		for i := range s.L2s {
			s.L2s[i] = tc.NewL2(cfg.TC, i,
				tc.L2Geometry{Sets: cfg.L2Sets, Ways: cfg.L2Ways, PerCycle: cfg.L2PerCycle},
				bankSend(i), s.dramSender(i), bankObs(i))
		}
	case DIR:
		dcfg := cfg.DIR
		dcfg.MaxSharers = cfg.NumSMs
		for i := range s.L2s {
			s.L2s[i] = dir.NewL2(dcfg, i,
				dir.L2Geometry{Sets: cfg.L2Sets, Ways: cfg.L2Ways, PerCycle: cfg.L2PerCycle},
				bankSend(i), s.dramSender(i), bankObs(i))
		}
	case BL, L1NC:
		for i := range s.L2s {
			l2 := nocoh.NewL2Plain(i,
				nocoh.L2Geometry{Sets: cfg.L2Sets, Ways: cfg.L2Ways, PerCycle: cfg.L2PerCycle},
				bankSend(i), s.dramSender(i), bankObs(i))
			// Under BL load values bind at the L2 (there is no L1).
			l2.SetObserveLoads(cfg.Protocol == BL)
			s.L2s[i] = l2
		}
	default:
		panic(fmt.Sprintf("memsys: unknown protocol %d", cfg.Protocol))
	}

	s.L1s = make([]coherence.L1, cfg.NumSMs)
	sendToL2 := coherence.Sender(coherence.SenderFunc(s.Net.SendToL2))
	s.staged = make([]*stagedSender, cfg.NumSMs)
	for i := range s.L1s {
		// The L1->L2 path sends from the SM compute phase, which may
		// run staged and parallel; its fault draw therefore comes from
		// a per-lane stream inside the staged sender (reject-at-stage)
		// rather than a shared-stream wrapper. See stagedSender.
		s.staged[i] = &stagedSender{real: sendToL2, relax: s.relaxL1[i]}
		if s.inj != nil {
			s.staged[i].reject = s.inj.LaneReject(i)
		}
		send := coherence.Sender(s.staged[i])
		var l1obs coherence.Observer
		if obs != nil {
			l1obs = shimObs(obs, &s.l1Obs[i])
		}
		switch cfg.Protocol {
		case GTSC:
			s.L1s[i] = core.NewL1(cfg.GTSC, i, cfg.NumBanks,
				core.L1Geometry{Sets: cfg.L1Sets, Ways: cfg.L1Ways, MSHRs: cfg.L1MSHRs, Warps: cfg.MaxWarps},
				send, l1obs)
		case TC:
			s.L1s[i] = tc.NewL1(cfg.TC, i, cfg.NumBanks,
				tc.Geometry{Sets: cfg.L1Sets, Ways: cfg.L1Ways, MSHRs: cfg.L1MSHRs},
				send, l1obs)
		case BL:
			s.L1s[i] = nocoh.NewL1Bypass(i, cfg.NumBanks, send, l1obs)
		case L1NC:
			s.L1s[i] = nocoh.NewL1Simple(i, cfg.NumBanks,
				nocoh.Geometry{Sets: cfg.L1Sets, Ways: cfg.L1Ways, MSHRs: cfg.L1MSHRs},
				send, l1obs)
		case DIR:
			dcfg := cfg.DIR
			dcfg.MaxSharers = cfg.NumSMs
			s.L1s[i] = dir.NewL1(dcfg, i, cfg.NumBanks,
				dir.Geometry{Sets: cfg.L1Sets, Ways: cfg.L1Ways, MSHRs: cfg.L1MSHRs},
				send, l1obs)
		}
	}

	s.Net.DeliverL2 = func(bank int, msg *mem.Msg) { s.L2s[bank].Deliver(msg) }
	s.Net.DeliverL1 = func(sm int, msg *mem.Msg) { s.L1s[sm].Deliver(msg) }
	for i, p := range s.Parts {
		bank := i
		p.Deliver = func(msg *mem.Msg) { s.L2s[bank].DRAMFill(msg) }
	}

	// Interpose the fault-injection delivery shims. Messages a shim
	// holds count toward Pending, so drain checks see them.
	if s.inj != nil && (cfg.Fault.DelayProb > 0 || cfg.Fault.Reorder) {
		l2Shim := fault.NewDelayShim("noc-l2", s.inj, cfg.Fault.DelayProb, cfg.Fault.DelayMax,
			cfg.Fault.Reorder, func(bank int, msg *mem.Msg) { s.L2s[bank].Deliver(msg) })
		l1Shim := fault.NewDelayShim("noc-l1", s.inj, cfg.Fault.DelayProb, cfg.Fault.DelayMax,
			cfg.Fault.Reorder, func(sm int, msg *mem.Msg) { s.L1s[sm].Deliver(msg) })
		s.Net.DeliverL2 = l2Shim.Deliver
		s.Net.DeliverL1 = l1Shim.Deliver
		s.shims = append(s.shims, l2Shim, l1Shim)
	}
	if s.inj != nil && cfg.Fault.DRAMSpikeProb > 0 {
		dShim := fault.NewDelayShim("dram", s.inj, cfg.Fault.DRAMSpikeProb, cfg.Fault.DRAMSpikeMax,
			false, func(bank int, msg *mem.Msg) { s.L2s[bank].DRAMFill(msg) })
		for i, p := range s.Parts {
			bank := i
			p.Deliver = func(msg *mem.Msg) { dShim.Deliver(bank, msg) }
		}
		s.shims = append(s.shims, dShim)
	}
	s.initWakes()

	// Ingress hooks for per-component wake dispatch: a delivery marks
	// its receiver Hot BEFORE the message lands, so a component whose
	// tick was about to be skipped this cycle is dispatched instead the
	// moment input reaches it (the NoC and partitions tick ahead of the
	// controllers in canonical order, so the mark is always seen by this
	// cycle's due-check). The hooks wrap whatever delivery path was
	// wired above — including fault shims, though an active injector
	// forces compWakes off, making the marks inert no-ops there.
	deliverL2, deliverL1 := s.Net.DeliverL2, s.Net.DeliverL1
	s.Net.DeliverL2 = func(bank int, msg *mem.Msg) {
		if s.compWakes {
			s.Wakes.Schedule(s.slotL2+bank, sched.Hot)
		}
		deliverL2(bank, msg)
	}
	s.Net.DeliverL1 = func(sm int, msg *mem.Msg) {
		if s.compWakes {
			s.Wakes.Schedule(s.slotL1+sm, sched.Hot)
		}
		deliverL1(sm, msg)
	}
	for i, p := range s.Parts {
		bank, fill := i, p.Deliver
		p.Deliver = func(msg *mem.Msg) {
			if s.compWakes {
				// A DRAM fill is consumed synchronously by the L2
				// (DRAMFill), which can queue responses the bank's tick
				// must drain this very cycle.
				s.Wakes.Schedule(s.slotL2+bank, sched.Hot)
			}
			fill(msg)
		}
	}
	return s
}

func (s *System) dramSender(bank int) coherence.Sender {
	return coherence.SenderFunc(func(msg *mem.Msg) bool {
		if !s.Parts[bank].Enqueue(msg) {
			return false
		}
		if s.compWakes {
			// The enqueue can pull the partition's wake earlier (an idle
			// partition was parked at Never); its tick slot for this
			// cycle has already passed, and NextEvent is always > clock,
			// so the new wake is a valid future registration.
			s.Wakes.Schedule(s.slotPart+bank, s.Parts[bank].NextEvent(s.clock))
		}
		return true
	})
}

// Tick advances the hierarchy one cycle in back-to-front order so
// responses race ahead of new requests deterministically. Fault shims
// release due messages after the transports tick, so unperturbed
// messages still deliver in their arrival cycle.
func (s *System) Tick(now uint64) {
	s.clock = now
	for _, sh := range s.shims {
		sh.Sync(now)
	}
	s.Net.Tick(now)
	for _, p := range s.Parts {
		p.Tick(now)
	}
	for _, sh := range s.shims {
		sh.Release()
	}
	for _, l2 := range s.L2s {
		l2.Tick(now)
	}
	for _, l1 := range s.L1s {
		l1.Tick(now)
	}
}

// Pending reports in-flight work anywhere in the hierarchy.
func (s *System) Pending() int {
	n := s.Net.Pending()
	for _, p := range s.Parts {
		n += p.Pending()
	}
	for _, l2 := range s.L2s {
		n += l2.Pending()
	}
	for _, l1 := range s.L1s {
		n += l1.Pending()
	}
	for _, sh := range s.shims {
		n += sh.Pending()
	}
	return n + s.relaxPending()
}

// Err reports the first protocol error recorded anywhere in the
// hierarchy, or nil.
func (s *System) Err() error {
	for _, l1 := range s.L1s {
		if err := l1.Err(); err != nil {
			return err
		}
	}
	for _, l2 := range s.L2s {
		if err := l2.Err(); err != nil {
			return err
		}
	}
	for _, p := range s.Parts {
		if err := p.Err(); err != nil {
			return err
		}
	}
	return nil
}

// ForceTimestampReset fires the §V-D overflow reset protocol
// immediately, as if some bank's timestamps had overflowed. It reports
// whether a reset was actually triggered (only G-TSC runs have a reset
// controller; other protocols ignore the request). The fault package's
// rollover plan uses this to exercise epoch-crossing paths mid-run at
// chosen points instead of waiting for natural overflow.
func (s *System) ForceTimestampReset() bool {
	if s.Resets == nil {
		return false
	}
	s.Resets.ForceReset()
	return true
}

// ArmRollover (re)seeds the fault plan's forced-rollover schedule for
// a kernel starting at cycle now. A no-op without an injector or a
// rollover plan — the cycle engine calls it unconditionally at every
// kernel launch.
func (s *System) ArmRollover(now uint64) {
	if s.inj != nil {
		s.inj.ArmRollover(now)
	}
}

// TickRollover fires the fault plan's forced §V-D reset when its
// schedule reaches cycle now, reporting whether one fired. Non-G-TSC
// hierarchies consume the schedule draw but reset nothing, so a plan's
// perturbation stream is protocol-independent.
func (s *System) TickRollover(now uint64) bool {
	if s.inj == nil || !s.inj.RolloverDue(now) {
		return false
	}
	return s.ForceTimestampReset()
}

// Dump snapshots the hierarchy for failure diagnostics. The simulator
// adds per-SM warp states before attaching it to an error.
func (s *System) Dump(now uint64) *diag.StateDump {
	d := &diag.StateDump{Cycle: now}
	for _, l1 := range s.L1s {
		d.L1s = append(d.L1s, l1.DumpState())
	}
	for _, l2 := range s.L2s {
		d.L2s = append(d.L2s, l2.DumpState())
	}
	d.NoC = s.Net.DumpState()
	for _, p := range s.Parts {
		d.DRAMs = append(d.DRAMs, p.DumpState())
	}
	if s.Cfg.Fault.Enabled() {
		d.Faults = s.Cfg.Fault.String()
		for _, sh := range s.shims {
			if sh.Pending() > 0 {
				d.Faults += fmt.Sprintf(" %s-held=%d", sh.Name(), sh.Pending())
			}
		}
	}
	return d
}

// ReadWord returns the architected value of the word at addr: the
// owning L2 bank's copy when cached (dirty lines live there until
// evicted), else the backing store. Verification hook.
func (s *System) ReadWord(a mem.Addr) uint32 {
	b := a.Block()
	bank := int(uint64(b) % uint64(s.Cfg.NumBanks))
	if data, ok := s.L2s[bank].Peek(b); ok {
		return data.Words[a.WordIndex()]
	}
	return s.Store.ReadWord(a)
}

// Collect aggregates every component's counters into run.
func (s *System) Collect(run *stats.Run) {
	for _, l1 := range s.L1s {
		run.L1.Add(l1.Stats())
	}
	for _, l2 := range s.L2s {
		run.L2.Add(l2.Stats())
	}
	run.NoC.Add(s.Net.Stats())
	for _, p := range s.Parts {
		run.DRAM.Add(p.Stats())
	}
}
