package model

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"

	"github.com/gtsc-sim/gtsc/internal/check"
	"github.com/gtsc-sim/gtsc/internal/coherence"
	"github.com/gtsc-sim/gtsc/internal/mem"
)

// digest canonicalizes the machine state into one 64-bit hash. It
// reuses the controllers' DigestState renderings (the same canonical
// form the checkpoint system verifies restores against), and adds the
// model-owned state: transport FIFOs, warp program counters, the
// architected store, the logical clock, and a summary of the operation
// log sufficient to decide every future invariant verdict.
//
// The log summary is what makes visited-state deduplication sound for
// the log-based checks: two states merge only if they agree on the
// per-word operation history as the checker orders it, so any future
// extension produces identical verdicts from either.
func (m *machine) digest() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "proto=%d now=%d forced=%d\n", m.cfg.Protocol, m.now, m.forced)
	for _, l1 := range m.l1s {
		l1.(coherence.StateDigester).DigestState(h)
	}
	for _, l2 := range m.l2s {
		l2.(coherence.StateDigester).DigestState(h)
	}
	for sm := range m.toL2 {
		for bank := range m.toL2[sm] {
			mem.DigestMsgs(h, fmt.Sprintf("toL2[%d][%d]", sm, bank), m.toL2[sm][bank])
		}
	}
	for bank := range m.toL1 {
		for sm := range m.toL1[bank] {
			mem.DigestMsgs(h, fmt.Sprintf("toL1[%d][%d]", bank, sm), m.toL1[bank][sm])
		}
	}
	for bank := range m.dram {
		mem.DigestMsgs(h, fmt.Sprintf("dram[%d]", bank), m.dram[bank])
	}
	for _, w := range m.warps {
		fmt.Fprintf(h, "warp %d.%d pc=%d wait=%t\n", w.sm, w.warp, w.pc, w.wait)
	}
	var blk mem.Block
	for _, b := range m.blocks {
		m.store.ReadBlock(b, &blk)
		fmt.Fprintf(h, "store %#x %x\n", uint64(b), blk.Words)
	}
	m.digestLog(h)
	return h.Sum64()
}

// digestLog folds the future-relevant part of the operation log into
// the state digest.
//
// For the timestamp-ordered protocol (G-TSC) the checker sorts each
// word's operations by (TS, Seq) and validates every load against the
// latest preceding store — and a FUTURE operation can sort between two
// PAST ones (its timestamp is not bounded below by theirs), so a past
// load's verdict can still change. The whole per-word history in
// timestamp order is therefore future-relevant, and all of it is
// digested. (Histories that differ only in physical interleaving but
// agree in timestamp order still merge, which is where the state-space
// reduction comes from. Per-warp last timestamps — the warp-monotonic
// check's future-relevant state — need no extra digesting: they are
// the warp_ts values already rendered in the L1 digests.)
//
// For physically-ordered protocols (TC-Strong, DIR, BL) the checker
// orders by Seq alone, so future operations always sort last: a past
// load can never be re-judged, and the future-relevant state per word
// collapses to the latest stored value plus the inferred initial value
// while no store has been seen.
func (m *machine) digestLog(h io.Writer) {
	ops := m.rec.Ops()
	type key struct {
		block mem.BlockAddr
		word  int
	}
	if m.cfg.Protocol == GTSC {
		perWord := map[key][]check.Record{}
		for _, r := range ops {
			for w := 0; w < mem.WordsPerBlock; w++ {
				if r.Mask.Has(w) {
					k := key{r.Block, w}
					perWord[k] = append(perWord[k], r)
				}
			}
		}
		keys := make([]key, 0, len(perWord))
		for k := range perWord {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].block != keys[j].block {
				return keys[i].block < keys[j].block
			}
			return keys[i].word < keys[j].word
		})
		for _, k := range keys {
			list := perWord[k]
			sort.SliceStable(list, func(i, j int) bool {
				if list[i].TS != list[j].TS {
					return list[i].TS < list[j].TS
				}
				return list[i].Seq < list[j].Seq
			})
			fmt.Fprintf(h, "log %#x.%d", uint64(k.block), k.word)
			for _, r := range list {
				kind := "ld"
				if r.Store {
					kind = "st"
				}
				fmt.Fprintf(h, " %s:%d:%#x", kind, r.TS, r.Data.Words[k.word])
			}
			io.WriteString(h, "\n")
		}
		return
	}
	// Physical order: latest store value (or inferred init) per word.
	type wordSum struct {
		stored    bool
		cur       uint32
		initKnown bool
	}
	sums := map[key]*wordSum{}
	var keys []key
	for _, r := range ops {
		for w := 0; w < mem.WordsPerBlock; w++ {
			if !r.Mask.Has(w) {
				continue
			}
			k := key{r.Block, w}
			s := sums[k]
			if s == nil {
				s = &wordSum{}
				sums[k] = s
				keys = append(keys, k)
			}
			if r.Store {
				s.stored = true
				s.cur = r.Data.Words[w]
			} else if !s.stored && !s.initKnown {
				s.initKnown = true
				s.cur = r.Data.Words[w]
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].block != keys[j].block {
			return keys[i].block < keys[j].block
		}
		return keys[i].word < keys[j].word
	})
	for _, k := range keys {
		s := sums[k]
		fmt.Fprintf(h, "log %#x.%d st=%t init=%t cur=%#x\n",
			uint64(k.block), k.word, s.stored, s.initKnown, s.cur)
	}
}
