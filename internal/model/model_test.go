package model

import (
	"testing"
	"time"

	"github.com/gtsc-sim/gtsc/internal/core"
	"github.com/gtsc-sim/gtsc/internal/tc"
)

// mp is the message-passing litmus shape: SM0 publishes data then a
// flag; SM1 polls in the opposite order. It is the smallest program
// that distinguishes a coherent machine from a racy one.
func mpProgram() [][][]Op {
	return [][][]Op{
		{{St(0, 0, 1), St(1, 0, 1)}},
		{{Ld(1, 0), Ld(0, 0)}},
	}
}

// mp22 adds a second warp per SM contending on block 0, so warp
// interleaving *within* an SM and cross-SM races are both explored.
// With Lease 6 at TSBits 6 the second store to block 0 pushes the
// lease extension past tsMax, firing the natural §V-D overflow reset
// inside the explored space.
func mp22Program() [][][]Op {
	return [][][]Op{
		{{St(0, 0, 1), St(1, 0, 1)}, {St(0, 1, 3)}},
		{{Ld(1, 0), Ld(0, 0)}, {Ld(0, 1)}},
	}
}

// TestExhaustive enumerates every reachable interleaving of the micro
// machine for all four protocols, checking the full invariant set on
// every edge. The G-TSC configs are sized so the §V-D overflow reset
// fires inside the explored space three different ways: forced at
// every reachable point (mp-forced), by natural timestamp exhaustion
// (mp22-natural), and repeatedly against a 2-bit wire epoch tag
// (narrow-epoch, which exercises the bound-decode in
// core/tswrap.go through three back-to-back resets).
func TestExhaustive(t *testing.T) {
	cases := []struct {
		name      string
		cfg       Config
		minResets uint64 // require at least this many §V-D resets observed
		minEpoch  uint64 // require the epoch counter to get this far
		maxStates int    // regression bound: fail if the space grows past this
		minFinal  int    // at least this many distinct completed-run states
	}{
		{"gtsc-mp-forced", Config{Protocol: GTSC, NumBanks: 2, Program: mpProgram(),
			GTSC: core.Config{TSBits: 6, Lease: 4, InitTS: ^uint64(0)}, ForcedResets: 2},
			2, 2, 20_000, 1},
		{"gtsc-mp22-natural", Config{Protocol: GTSC, NumBanks: 2, Program: mp22Program(),
			GTSC: core.Config{TSBits: 6, Lease: 6, InitTS: ^uint64(0)}, MaxStates: 2_000_000},
			1, 1, 200_000, 1},
		{"gtsc-narrow-epoch", Config{Protocol: GTSC, NumBanks: 2, Program: mpProgram(),
			GTSC: core.Config{TSBits: 6, Lease: 4, EpochBits: 2}, ForcedResets: 3,
			GateResets: true, MaxStates: 2_000_000},
			3, 3, 30_000, 1},
		{"tc-mp", Config{Protocol: TCStrong, NumBanks: 2, Program: mpProgram(),
			TC: tc.Config{Lease: 30}},
			0, 0, 10_000, 1},
		{"tc-mp22", Config{Protocol: TCStrong, NumBanks: 2, Program: mp22Program(),
			TC: tc.Config{Lease: 30}, MaxStates: 2_000_000},
			0, 0, 200_000, 1},
		{"dir-mp22", Config{Protocol: DIR, NumBanks: 2, Program: mp22Program(),
			MaxStates: 2_000_000},
			0, 0, 200_000, 1},
		{"bl-mp22", Config{Protocol: BL, NumBanks: 2, Program: mp22Program()},
			0, 0, 200_000, 1},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			start := time.Now()
			res, err := Explore(c.cfg)
			if err != nil {
				t.Fatalf("exhaustive exploration found a violation: %v", err)
			}
			t.Logf("%v in %v", res, time.Since(start))
			if res.Resets < c.minResets {
				t.Errorf("observed %d §V-D resets, want >= %d (the reset paths went unexplored)",
					res.Resets, c.minResets)
			}
			if res.MaxEpoch < c.minEpoch {
				t.Errorf("reached epoch %d, want >= %d", res.MaxEpoch, c.minEpoch)
			}
			if res.States > c.maxStates {
				t.Errorf("%d states explored, regression bound is %d (did a change inflate the state space?)",
					res.States, c.maxStates)
			}
			if res.FinalStates < c.minFinal {
				t.Errorf("%d final states, want >= %d (no interleaving ran to completion?)",
					res.FinalStates, c.minFinal)
			}
		})
	}
}
