// Package model is an exhaustive small-state model checker for the
// repository's coherence protocols. It builds a micro machine — a
// handful of SMs, warps, banks, and blocks — directly from the real
// controller implementations (internal/core, internal/tc,
// internal/dir, internal/nocoh), replaces the cycle-driven NoC and
// DRAM with fully nondeterministic one-step transports, and explores
// EVERY interleaving of the resulting event system by breadth-first
// search over a canonicalized state graph.
//
// The model's transitions are the protocol's atomic events:
//
//   - issue:       a warp presents its next access to its L1
//   - deliverL2:   the head message of one sm→bank FIFO lands at the bank
//   - deliverL1:   the head message of one bank→sm FIFO lands at the L1
//   - dram:        the head request of one bank's DRAM queue performs
//   - tickL2:      one bank services one queued request (controllers
//     consume input from their inQ only on Tick)
//   - advance:     physical time jumps to the next lease-expiry event
//     (Temporal Coherence only; G-TSC is untimed)
//   - reset:       a §V-D overflow reset is forced chip-wide (G-TSC
//     only, budgeted by Config.ForcedResets — the model analogue of
//     the fault package's rollover plan)
//
// States are canonicalized with the same DigestState renderings the
// checkpoint system uses, so the visited set deduplicates states
// reached by different histories; the per-word operation-log summary
// is folded into the digest, which makes that deduplication sound for
// the log-based invariants too (two states merge only if no future
// extension can distinguish their verdicts). Invariants are checked on
// every EDGE, before deduplication, so every distinct history is
// validated up to the point where it provably converges with an
// already-checked one.
//
// Because the real controllers cannot be copied, state restore is
// replay-based: the explorer rebuilds the machine from the
// configuration and re-applies the recorded transition sequence.
// Everything a controller does is a deterministic function of its
// delivered inputs, so replay is exact — the same property that makes
// the simulator's checkpoint/restore exact.
package model

import (
	"fmt"

	"github.com/gtsc-sim/gtsc/internal/check"
	"github.com/gtsc-sim/gtsc/internal/coherence"
	"github.com/gtsc-sim/gtsc/internal/core"
	"github.com/gtsc-sim/gtsc/internal/dir"
	"github.com/gtsc-sim/gtsc/internal/mem"
	"github.com/gtsc-sim/gtsc/internal/nocoh"
	"github.com/gtsc-sim/gtsc/internal/tc"
)

// Protocol selects which controller family the micro machine runs.
type Protocol uint8

// Protocols the checker can drive.
const (
	GTSC Protocol = iota
	TCStrong
	DIR
	BL
)

// String names the protocol.
func (p Protocol) String() string {
	switch p {
	case GTSC:
		return "gtsc"
	case TCStrong:
		return "tc-strong"
	case DIR:
		return "mesi-dir"
	case BL:
		return "baseline"
	default:
		return "unknown"
	}
}

// Op is one memory operation of a model warp's program: a single-word
// load or store.
type Op struct {
	Block mem.BlockAddr
	Word  int
	Store bool
	Value uint32 // stored value; ignored for loads
}

// St and Ld build program ops.
func St(b mem.BlockAddr, word int, v uint32) Op {
	return Op{Block: b, Word: word, Store: true, Value: v}
}

// Ld builds a load op.
func Ld(b mem.BlockAddr, word int) Op { return Op{Block: b, Word: word} }

// Config describes one micro machine and its exploration budget.
type Config struct {
	Protocol Protocol
	NumSMs   int
	NumBanks int
	// Program lists each warp's in-order op sequence: Program[sm][warp].
	// Warps issue one access at a time (SC per warp), which is the
	// regime the paper's checker invariants are stated for.
	Program [][][]Op

	GTSC core.Config
	TC   tc.Config
	DIR  dir.Config

	// ForcedResets budgets the G-TSC reset transition: at any state
	// where fewer than this many forced resets have fired, the checker
	// may fire a chip-wide §V-D reset as its next event. This is the
	// model analogue of the fault package's rollover plan and is what
	// drives epoch-crossing coverage at every possible protocol point.
	ForcedResets int

	// GateResets restricts the forced-reset transition to states where
	// the network is idle (like the time-advance transition). Un-gated
	// resets explore every reset-races-with-in-flight-message
	// interleaving but multiply the state space per budgeted reset;
	// configs that need MANY sequential resets (epoch-ring wraparound
	// coverage) set this and leave the mid-flight races to a smaller
	// un-gated config.
	GateResets bool

	// MaxStates bounds exploration (0 = defaultMaxStates). Exceeding it
	// is an error: the micro machine is meant to be exhaustively
	// explorable, so hitting the bound means the model is too big, not
	// that the protocol is fine.
	MaxStates int

	// Mutation hooks (test-only): inject a known protocol bug into the
	// real controllers so tests can prove the checker catches it.
	MutDropLeaseCheck   bool // G-TSC L1 ignores lease expiry on hits
	MutSkipBroadcast    bool // G-TSC reset applies only to origin bank
	MutAckWithoutInval  bool // DIR L1 acks invalidations without invalidating
	MutIgnoreWriteStall bool // TC-Strong L2 writes skip the lease stall
}

const (
	defaultMaxStates = 400_000

	// Micro-machine cache geometry: big enough that a 2–3 block program
	// never conflicts structurally (capacity effects are not what the
	// checker targets), small enough that digests stay cheap.
	l1Sets, l1Ways, l1MSHRs = 4, 2, 4
	l2Sets, l2Ways          = 4, 2
)

// transition kinds, in deterministic enumeration order.
const (
	kIssue     = iota // a = warp index (flattened)
	kDeliverL2        // a = sm, b = bank
	kDeliverL1        // a = bank, b = sm
	kDRAM             // a = bank
	kTickL2           // a = bank
	kAdvance          // physical-time jump (TC)
	kReset            // forced §V-D reset (G-TSC)
)

// trans is one transition choice; it is self-contained so a recorded
// path can be replayed on a freshly built machine without re-running
// the enumeration that produced it.
type trans struct {
	kind int
	a, b int
}

// warpState drives one warp's program: in-order, one outstanding
// access (the model is the "SM"; real pipeline structure is what the
// simulator tests cover).
type warpState struct {
	sm, warp int
	ops      []Op
	pc       int
	wait     bool
}

func (w *warpState) done() bool { return !w.wait && w.pc >= len(w.ops) }

// machine is one concrete state of the micro machine. It is never
// copied; Explore rebuilds and replays to branch.
type machine struct {
	cfg    *Config
	store  *mem.Store
	rec    *check.Recorder
	l1s    []coherence.L1
	l2s    []coherence.L2
	resets *core.ResetController // G-TSC only

	toL2 [][][]*mem.Msg // [sm][bank] FIFO
	toL1 [][][]*mem.Msg // [bank][sm] FIFO
	dram [][]*mem.Msg   // [bank] FIFO

	warps  []*warpState
	now    uint64
	forced int

	blocks []mem.BlockAddr // sorted program footprint, for store digests
}

// alwaysSender queues into a model FIFO and never backpressures; the
// route function picks the FIFO from the message's Dst at send time.
type alwaysSender func(msg *mem.Msg)

func (f alwaysSender) TrySend(msg *mem.Msg) bool { f(msg); return true }

// build constructs the machine in its initial state.
func build(cfg *Config) *machine {
	m := &machine{cfg: cfg, store: mem.NewStore(), rec: check.NewRecorder()}
	nSM, nBank := cfg.NumSMs, cfg.NumBanks

	m.toL2 = make([][][]*mem.Msg, nSM)
	for i := range m.toL2 {
		m.toL2[i] = make([][]*mem.Msg, nBank)
	}
	m.toL1 = make([][][]*mem.Msg, nBank)
	for i := range m.toL1 {
		m.toL1[i] = make([][]*mem.Msg, nSM)
	}
	m.dram = make([][]*mem.Msg, nBank)

	seen := map[mem.BlockAddr]bool{}
	maxWarps := 1
	for sm, warps := range cfg.Program {
		if len(warps) > maxWarps {
			maxWarps = len(warps)
		}
		for warp, ops := range warps {
			m.warps = append(m.warps, &warpState{sm: sm, warp: warp, ops: ops})
			for _, op := range ops {
				if !seen[op.Block] {
					seen[op.Block] = true
					m.blocks = append(m.blocks, op.Block)
				}
			}
		}
	}
	for i := 1; i < len(m.blocks); i++ { // insertion sort: footprint is tiny
		for j := i; j > 0 && m.blocks[j] < m.blocks[j-1]; j-- {
			m.blocks[j], m.blocks[j-1] = m.blocks[j-1], m.blocks[j]
		}
	}

	obs := m.rec
	m.l2s = make([]coherence.L2, nBank)
	m.l1s = make([]coherence.L1, nSM)
	l2NoC := func(bank int) coherence.Sender {
		return alwaysSender(func(msg *mem.Msg) { m.toL1[bank][msg.Dst] = append(m.toL1[bank][msg.Dst], msg) })
	}
	l2DRAM := func(bank int) coherence.Sender {
		return alwaysSender(func(msg *mem.Msg) { m.dram[bank] = append(m.dram[bank], msg) })
	}
	l1NoC := func(sm int) coherence.Sender {
		return alwaysSender(func(msg *mem.Msg) { m.toL2[sm][msg.Dst] = append(m.toL2[sm][msg.Dst], msg) })
	}

	switch cfg.Protocol {
	case GTSC:
		m.resets = core.NewResetController()
		m.resets.MutSkipBroadcast = cfg.MutSkipBroadcast
		for b := 0; b < nBank; b++ {
			l2 := core.NewL2(cfg.GTSC, b, core.L2Geometry{Sets: l2Sets, Ways: l2Ways, PerCycle: 1},
				l2NoC(b), l2DRAM(b), obs)
			l2.AttachResets(m.resets)
			m.l2s[b] = l2
		}
		for i := 0; i < nSM; i++ {
			l1 := core.NewL1(cfg.GTSC, i, nBank,
				core.L1Geometry{Sets: l1Sets, Ways: l1Ways, MSHRs: l1MSHRs, Warps: maxWarps},
				l1NoC(i), obs)
			l1.MutDropLeaseCheck = cfg.MutDropLeaseCheck
			m.l1s[i] = l1
		}
	case TCStrong:
		tcfg := cfg.TC
		tcfg.Weak = false
		for b := 0; b < nBank; b++ {
			l2 := tc.NewL2(tcfg, b, tc.L2Geometry{Sets: l2Sets, Ways: l2Ways, PerCycle: 1},
				l2NoC(b), l2DRAM(b), obs)
			l2.MutIgnoreWriteStall = cfg.MutIgnoreWriteStall
			m.l2s[b] = l2
		}
		for i := 0; i < nSM; i++ {
			m.l1s[i] = tc.NewL1(tcfg, i, nBank,
				tc.Geometry{Sets: l1Sets, Ways: l1Ways, MSHRs: l1MSHRs}, l1NoC(i), obs)
		}
	case DIR:
		dcfg := cfg.DIR
		dcfg.MaxSharers = nSM
		for b := 0; b < nBank; b++ {
			m.l2s[b] = dir.NewL2(dcfg, b, dir.L2Geometry{Sets: l2Sets, Ways: l2Ways, PerCycle: 1},
				l2NoC(b), l2DRAM(b), obs)
		}
		for i := 0; i < nSM; i++ {
			l1 := dir.NewL1(dcfg, i, nBank,
				dir.Geometry{Sets: l1Sets, Ways: l1Ways, MSHRs: l1MSHRs}, l1NoC(i), obs)
			l1.MutAckWithoutInval = cfg.MutAckWithoutInval
			m.l1s[i] = l1
		}
	case BL:
		for b := 0; b < nBank; b++ {
			l2 := nocoh.NewL2Plain(b, nocoh.L2Geometry{Sets: l2Sets, Ways: l2Ways, PerCycle: 1},
				l2NoC(b), l2DRAM(b), obs)
			l2.SetObserveLoads(true) // no L1: load values bind at the bank
			m.l2s[b] = l2
		}
		for i := 0; i < nSM; i++ {
			m.l1s[i] = nocoh.NewL1Bypass(i, nBank, l1NoC(i), obs)
		}
	default:
		panic(fmt.Sprintf("model: unknown protocol %d", cfg.Protocol))
	}
	return m
}

// enumerate lists every applicable transition of the current state in
// deterministic order. Enumeration is read-only.
func (m *machine) enumerate() []trans {
	var ts []trans
	for i, w := range m.warps {
		if !w.wait && w.pc < len(w.ops) {
			ts = append(ts, trans{kind: kIssue, a: i})
		}
	}
	for sm := range m.toL2 {
		for bank := range m.toL2[sm] {
			if len(m.toL2[sm][bank]) > 0 {
				ts = append(ts, trans{kind: kDeliverL2, a: sm, b: bank})
			}
		}
	}
	for bank := range m.toL1 {
		for sm := range m.toL1[bank] {
			if len(m.toL1[bank][sm]) > 0 {
				ts = append(ts, trans{kind: kDeliverL1, a: bank, b: sm})
			}
		}
	}
	for bank := range m.dram {
		if len(m.dram[bank]) > 0 {
			ts = append(ts, trans{kind: kDRAM, a: bank})
		}
	}
	for bank, l2 := range m.l2s {
		if !l2.Quiescent() {
			ts = append(ts, trans{kind: kTickL2, a: bank})
		}
	}
	if m.networkIdle() {
		if _, ok := m.nextTimeEvent(); ok {
			ts = append(ts, trans{kind: kAdvance})
		}
	}
	if m.resets != nil && m.forced < m.cfg.ForcedResets &&
		(!m.cfg.GateResets || m.networkIdle()) {
		ts = append(ts, trans{kind: kReset})
	}
	return ts
}

// networkIdle reports that no message anywhere is still waiting to be
// delivered or serviced: every model FIFO is empty and every bank has
// absorbed its queued input. The time-advance transition is gated on
// it — physical time may pass before or after any warp's access, but
// never while a message is in flight. Without the gate the model
// admits zeno behaviors (a fill perpetually expiring in flight and
// being re-requested as time outruns it), which have unbounded state
// spaces and correspond to no real machine, where NoC latency is far
// below any lease length. The simulator's fault harness documents the
// same constraint: "a lease shorter than the fill latency arrives dead
// and the L1 livelocks".
func (m *machine) networkIdle() bool {
	for sm := range m.toL2 {
		for bank := range m.toL2[sm] {
			if len(m.toL2[sm][bank]) > 0 {
				return false
			}
		}
	}
	for bank := range m.toL1 {
		for sm := range m.toL1[bank] {
			if len(m.toL1[bank][sm]) > 0 {
				return false
			}
		}
	}
	for bank := range m.dram {
		if len(m.dram[bank]) > 0 {
			return false
		}
	}
	for _, l2 := range m.l2s {
		if mp, ok := l2.(interface{ MsgPending() bool }); ok {
			if mp.MsgPending() {
				return false
			}
		} else if !l2.Quiescent() {
			return false
		}
	}
	return true
}

// nextTimeEvent returns the earliest future physical-time event of any
// time-sensitive controller.
func (m *machine) nextTimeEvent() (uint64, bool) {
	var best uint64
	ok := false
	probe := func(c any) {
		if tsens, is := c.(coherence.TimeSensitive); is {
			if at, has := tsens.NextTimeEvent(m.now); has && (!ok || at < best) {
				best, ok = at, true
			}
		}
	}
	for _, l1 := range m.l1s {
		probe(l1)
	}
	for _, l2 := range m.l2s {
		probe(l2)
	}
	return best, ok
}

// apply performs one transition and returns its human-readable label
// for counterexample traces.
func (m *machine) apply(t trans) string {
	switch t.kind {
	case kIssue:
		w := m.warps[t.a]
		op := w.ops[w.pc]
		label := fmt.Sprintf("sm%d.w%d: %s", w.sm, w.warp, opString(op))
		m.issue(w, op)
		return label
	case kDeliverL2:
		msg := m.toL2[t.a][t.b][0]
		m.toL2[t.a][t.b] = m.toL2[t.a][t.b][1:]
		label := fmt.Sprintf("net: sm%d→L2[%d] %v %v", t.a, t.b, msg.Type, msg.Block)
		m.l2s[t.b].Deliver(msg)
		return label
	case kDeliverL1:
		msg := m.toL1[t.a][t.b][0]
		m.toL1[t.a][t.b] = m.toL1[t.a][t.b][1:]
		label := fmt.Sprintf("net: L2[%d]→sm%d %v %v wts=%d rts=%d ep=%d",
			t.a, t.b, msg.Type, msg.Block, msg.WTS, msg.RTS, msg.Epoch)
		m.l1s[t.b].Deliver(msg)
		return label
	case kDRAM:
		msg := m.dram[t.a][0]
		m.dram[t.a] = m.dram[t.a][1:]
		label := fmt.Sprintf("dram[%d]: %v %v", t.a, msg.Type, msg.Block)
		switch msg.Type {
		case mem.DRAMRd:
			data := &mem.Block{}
			m.store.ReadBlock(msg.Block, data)
			m.l2s[t.a].DRAMFill(&mem.Msg{
				Type: mem.DRAMFill, Block: msg.Block, Src: t.a, Dst: msg.Src,
				Data: data, ReqID: msg.ReqID,
			})
		case mem.DRAMWr:
			m.store.WriteBlock(msg.Block, msg.Data, msg.Mask)
		}
		return label
	case kTickL2:
		m.l2s[t.a].Tick(m.now)
		return fmt.Sprintf("L2[%d]: service", t.a)
	case kAdvance:
		at, _ := m.nextTimeEvent()
		m.now = at
		for _, l1 := range m.l1s {
			l1.SyncClock(at)
		}
		for _, l2 := range m.l2s {
			l2.SyncClock(at)
		}
		return fmt.Sprintf("time: advance to %d", at)
	case kReset:
		m.forced++
		m.resets.ForceReset()
		return fmt.Sprintf("reset: forced §V-D rollover #%d (epoch→%d)", m.forced, m.resets.Epoch())
	default:
		panic("model: unknown transition kind")
	}
}

func (m *machine) issue(w *warpState, op Op) {
	req := &coherence.Request{
		Block: op.Block,
		Mask:  mem.WordMask(0).Set(op.Word),
		Warp:  w.warp,
		Done: func(coherence.Completion) {
			w.wait = false
			w.pc++
		},
	}
	if op.Store {
		req.Store = true
		data := &mem.Block{}
		data.Words[op.Word] = op.Value
		req.Data = data
	}
	switch m.l1s[w.sm].Access(req) {
	case coherence.Hit:
		// Done already ran synchronously.
	case coherence.Pending:
		w.wait = true
	case coherence.Reject:
		// No state change; the explorer prunes it as a self-loop.
	}
}

func opString(op Op) string {
	if op.Store {
		return fmt.Sprintf("ST %v[%d]=%d", op.Block, op.Word, op.Value)
	}
	return fmt.Sprintf("LD %v[%d]", op.Block, op.Word)
}

// final reports whether every warp has retired its whole program.
func (m *machine) final() bool {
	for _, w := range m.warps {
		if !w.done() {
			return false
		}
	}
	return true
}
