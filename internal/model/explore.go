package model

import (
	"fmt"
	"strings"

	"github.com/gtsc-sim/gtsc/internal/diag"
)

// Result summarizes one exhaustive exploration.
type Result struct {
	Protocol    Protocol
	States      int    // distinct canonical states visited
	Edges       int    // productive transitions explored
	FinalStates int    // states where every warp retired
	MaxDepth    int    // longest shortest-path from the initial state
	Resets      uint64 // max §V-D resets observed in any state (G-TSC)
	MaxEpoch    uint64 // max timestamp epoch reached (G-TSC)
}

// String renders the exploration summary for logs.
func (r *Result) String() string {
	return fmt.Sprintf("model[%s]: %d states, %d edges, %d final, depth %d, resets %d, epoch %d",
		r.Protocol, r.States, r.Edges, r.FinalStates, r.MaxDepth, r.Resets, r.MaxEpoch)
}

// Counterexample is a minimal-length violating execution: the event
// trace from the initial state to the first state that breaks an
// invariant (BFS explores in depth order, so no shorter trace reaches
// a violation). It implements error and unwraps to the underlying
// invariant failure (usually a *diag.ProtocolError).
type Counterexample struct {
	Protocol Protocol
	Cause    error
	Trace    []string // human-readable transition labels, in order
}

// Error renders the counterexample with its full event trace.
func (c *Counterexample) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "model[%s]: invariant violated after %d events: %v\n",
		c.Protocol, len(c.Trace), c.Cause)
	fmt.Fprintf(&b, "counterexample (minimal):\n")
	for i, step := range c.Trace {
		fmt.Fprintf(&b, "  %2d. %s\n", i+1, step)
	}
	return strings.TrimRight(b.String(), "\n")
}

// Unwrap exposes the underlying invariant failure to errors.Is/As.
func (c *Counterexample) Unwrap() error { return c.Cause }

// node is one BFS frontier entry: the transition sequence that reaches
// the state from the initial machine. Machines are not copyable, so
// the path IS the state (replay restores it). The digest is carried
// along so expansion never recomputes the parent's hash.
type node struct {
	path []trans
	hash uint64
}

// replay rebuilds the machine and re-applies a recorded path,
// returning the machine and the human-readable labels of the applied
// transitions.
func replay(cfg *Config, path []trans) (*machine, []string) {
	m := build(cfg)
	labels := make([]string, 0, len(path))
	for _, t := range path {
		labels = append(labels, m.apply(t))
	}
	return m, labels
}

// Explore exhaustively enumerates every interleaving of the configured
// micro machine, checking invariants on every productive transition.
// It returns the exploration summary, or a *Counterexample error (the
// minimal violating trace) if any invariant fails, a deadlock error if
// some non-final state admits no productive transition, or a budget
// error if the state space exceeds Config.MaxStates.
func Explore(cfg Config) (*Result, error) {
	if cfg.NumSMs == 0 {
		cfg.NumSMs = len(cfg.Program)
	}
	if cfg.NumBanks == 0 {
		cfg.NumBanks = 1
	}
	maxStates := cfg.MaxStates
	if maxStates == 0 {
		maxStates = defaultMaxStates
	}

	res := &Result{Protocol: cfg.Protocol}
	root := build(&cfg)
	if err := root.checkInvariants(); err != nil {
		return nil, &Counterexample{Protocol: cfg.Protocol, Cause: err}
	}
	rootHash := root.digest()
	visited := map[uint64]struct{}{rootHash: {}}
	res.States = 1
	if root.final() {
		res.FinalStates++
		return res, nil
	}

	queue := []node{{hash: rootHash}}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]

		parent, _ := replay(&cfg, n.path)
		parentHash := n.hash
		parentFinal := parent.final()
		choices := parent.enumerate()
		productive := false
		for i, t := range choices {
			// The parent machine itself serves as the last child's base
			// (nothing reads it afterwards); earlier children replay.
			var child *machine
			var labels []string
			if i == len(choices)-1 {
				child = parent
			} else {
				child, labels = replay(&cfg, n.path)
			}
			label := child.apply(t)
			childHash := child.digest()
			if childHash == parentHash {
				continue // self-loop (Reject, no-op tick): prune
			}
			productive = true
			res.Edges++
			if err := child.checkInvariants(); err != nil {
				if labels == nil {
					_, labels = replay(&cfg, n.path)
				}
				return nil, &Counterexample{
					Protocol: cfg.Protocol,
					Cause:    err,
					Trace:    append(labels, label),
				}
			}
			if _, seen := visited[childHash]; seen {
				continue
			}
			visited[childHash] = struct{}{}
			res.States++
			if res.States > maxStates {
				return nil, fmt.Errorf("model[%s]: state budget exceeded (%d states): shrink the program or raise MaxStates",
					cfg.Protocol, maxStates)
			}
			if d := len(n.path) + 1; d > res.MaxDepth {
				res.MaxDepth = d
			}
			if child.resets != nil {
				if r := child.resets.Resets(); r > res.Resets {
					res.Resets = r
				}
				if e := child.resets.Epoch(); e > res.MaxEpoch {
					res.MaxEpoch = e
				}
			}
			if child.final() {
				res.FinalStates++
				continue
			}
			path := make([]trans, len(n.path)+1)
			copy(path, n.path)
			path[len(n.path)] = t
			queue = append(queue, node{path: path, hash: childHash})
		}
		if !productive && !parentFinal {
			_, labels := replay(&cfg, n.path)
			stuck := ""
			for _, w := range parent.warps {
				if !w.done() {
					stuck += fmt.Sprintf(" sm%d.w%d@pc=%d(wait=%t)", w.sm, w.warp, w.pc, w.wait)
				}
			}
			return nil, &Counterexample{
				Protocol: cfg.Protocol,
				Cause: diag.Errf("model", "deadlock",
					"no productive transition from a non-final state; stuck warps:%s", stuck),
				Trace: labels,
			}
		}
	}
	return res, nil
}
