package model

import (
	"errors"
	"strings"
	"testing"

	"github.com/gtsc-sim/gtsc/internal/core"
	"github.com/gtsc-sim/gtsc/internal/diag"
	"github.com/gtsc-sim/gtsc/internal/tc"
)

// requireCounterexample asserts that a mutated protocol is caught: the
// exploration must end in a *Counterexample whose cause is a
// structured diag error with the expected event tag, carrying a
// non-empty human-readable trace.
func requireCounterexample(t *testing.T, err error, wantEvent string) {
	t.Helper()
	if err == nil {
		t.Fatal("mutated protocol explored cleanly: the invariants have no teeth for this mutation")
	}
	var ce *Counterexample
	if !errors.As(err, &ce) {
		t.Fatalf("want *Counterexample, got %T: %v", err, err)
	}
	var pe *diag.ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("counterexample cause is not a *diag.ProtocolError: %v", ce.Cause)
	}
	if pe.Event != wantEvent {
		t.Errorf("caught by event %q, want %q (cause: %v)", pe.Event, wantEvent, pe)
	}
	if len(ce.Trace) == 0 {
		t.Error("counterexample has an empty event trace")
	}
	if !strings.Contains(ce.Error(), "counterexample (minimal)") {
		t.Error("rendered counterexample is missing the trace header")
	}
	t.Logf("caught:\n%v", ce)
}

// TestMutationDropLeaseCheck: G-TSC L1 loads that ignore lease expiry
// serve stale cached data at warp timestamps past the lease — the
// read-value check must flag the misordered load. SM1 caches block 0,
// advances its warp timestamp past that lease by observing SM0's later
// stores, then re-reads block 0; the mutated hit returns the old value
// at a timestamp that should already see the new one.
func TestMutationDropLeaseCheck(t *testing.T) {
	prog := [][][]Op{
		{{St(0, 0, 1), St(1, 0, 1)}},
		{{Ld(0, 0), Ld(1, 0), Ld(0, 0)}},
	}
	_, err := Explore(Config{Protocol: GTSC, NumBanks: 2, Program: prog,
		GTSC: core.Config{TSBits: 6, Lease: 4}, MaxStates: 2_000_000,
		MutDropLeaseCheck: true})
	requireCounterexample(t, err, "timestamp-order")
}

// TestMutationSkipBroadcast: a natural §V-D overflow reset that
// rewrites only the originating bank leaves the chip with diverged
// epochs — the chip-wide-agreement invariant must catch the very edge
// on which the partial reset fires. Uses the natural-overflow program
// (the mutation only affects organically triggered resets; forced
// resets always broadcast).
func TestMutationSkipBroadcast(t *testing.T) {
	_, err := Explore(Config{Protocol: GTSC, NumBanks: 2, Program: mp22Program(),
		GTSC: core.Config{TSBits: 6, Lease: 6, InitTS: ^uint64(0)}, MaxStates: 2_000_000,
		MutSkipBroadcast: true})
	requireCounterexample(t, err, "epoch-divergence")
}

// TestMutationAckWithoutInval: a MESI-dir L1 that acknowledges an
// invalidation without dropping its copy leaves a sharer alive next
// to the new owner's M line — the single-writer/multiple-reader
// invariant must flag the pair.
func TestMutationAckWithoutInval(t *testing.T) {
	prog := [][][]Op{
		{{Ld(0, 0)}},
		{{St(0, 0, 7)}},
	}
	_, err := Explore(Config{Protocol: DIR, NumBanks: 1, Program: prog,
		MaxStates: 2_000_000, MutAckWithoutInval: true})
	requireCounterexample(t, err, "swmr")
}

// TestMutationIgnoreWriteStall: a TC-Strong bank that commits a store
// without stalling for live reader leases lets an L1 keep hitting its
// unexpired (now stale) copy — the physical-order check must flag the
// stale read.
func TestMutationIgnoreWriteStall(t *testing.T) {
	prog := [][][]Op{
		{{Ld(0, 0), Ld(0, 0)}},
		{{St(0, 0, 7)}},
	}
	_, err := Explore(Config{Protocol: TCStrong, NumBanks: 1, Program: prog,
		TC: tc.Config{Lease: 30}, MaxStates: 2_000_000,
		MutIgnoreWriteStall: true})
	requireCounterexample(t, err, "physical-order")
}
