package model

import (
	"fmt"

	"github.com/gtsc-sim/gtsc/internal/check"
	"github.com/gtsc-sim/gtsc/internal/coherence"
	"github.com/gtsc-sim/gtsc/internal/core"
	"github.com/gtsc-sim/gtsc/internal/diag"
	"github.com/gtsc-sim/gtsc/internal/mem"
)

// checkInvariants validates the machine's current state. It is called
// on every explored EDGE (after each productive transition, before
// visited-state deduplication), so every distinct history is checked
// up to the point where it provably converges with one already
// checked. A nil return means the state satisfies every invariant of
// its protocol.
func (m *machine) checkInvariants() error {
	// Any controller-internal protocol violation is a failure outright.
	for _, l1 := range m.l1s {
		if err := l1.Err(); err != nil {
			return err
		}
	}
	for _, l2 := range m.l2s {
		if err := l2.Err(); err != nil {
			return err
		}
	}

	ops := m.rec.Ops()
	switch m.cfg.Protocol {
	case GTSC:
		if err := m.checkLeaseSanity(); err != nil {
			return err
		}
		if err := m.checkEpochAgreement(); err != nil {
			return err
		}
		if vs := check.CheckTimestampOrder(ops, 1); len(vs) > 0 {
			return diag.Errf("model-gtsc", "timestamp-order", "%v", &vs[0])
		}
		if errs := check.CheckWarpMonotonic(ops); len(errs) > 0 {
			return diag.Errf("model-gtsc", "warp-monotonic", "%v", errs[0])
		}
	case TCStrong:
		if err := m.checkTCContainment(); err != nil {
			return err
		}
		if vs := check.CheckPhysical(ops, 1); len(vs) > 0 {
			return diag.Errf("model-tc", "physical-order", "%v", &vs[0])
		}
	case DIR:
		if err := m.checkSWMR(); err != nil {
			return err
		}
		if vs := check.CheckPhysical(ops, 1); len(vs) > 0 {
			return diag.Errf("model-dir", "physical-order", "%v", &vs[0])
		}
	case BL:
		if vs := check.CheckPhysical(ops, 1); len(vs) > 0 {
			return diag.Errf("model-bl", "physical-order", "%v", &vs[0])
		}
	}
	return nil
}

// checkLeaseSanity: every G-TSC lease anywhere in the hierarchy is a
// well-formed interval, wts <= rts (§III-B). Both timestamps live in
// the current epoch (ensureRoom fires the reset before either can
// wrap), so the comparison is plain.
func (m *machine) checkLeaseSanity() error {
	var bad error
	walk := func(name string, c any) {
		holder, ok := c.(coherence.LeaseHolder)
		if !ok || bad != nil {
			return
		}
		holder.ForEachLease(func(b mem.BlockAddr, wts, rts uint64) {
			if wts > rts && bad == nil {
				bad = diag.Errf("model-gtsc", "lease-inverted",
					"%s holds block %v with wts=%d > rts=%d", name, b, wts, rts)
			}
		})
	}
	for i, l1 := range m.l1s {
		walk(fmt.Sprintf("l1[%d]", i), l1)
	}
	for i, l2 := range m.l2s {
		walk(fmt.Sprintf("l2[%d]", i), l2)
	}
	return bad
}

// checkEpochAgreement: the §V-D overflow reset is chip-wide and
// synchronous, so every L2 bank must be in the same epoch at every
// reachable state. L1s learn of resets lazily from response epoch
// tags, so an L1 may lag the banks but never lead them.
func (m *machine) checkEpochAgreement() error {
	var epoch uint64
	for i, l2 := range m.l2s {
		bank := l2.(*core.L2)
		if i == 0 {
			epoch = bank.Epoch()
			continue
		}
		if bank.Epoch() != epoch {
			return diag.Errf("model-gtsc", "epoch-divergence",
				"l2[0] is in epoch %d but l2[%d] is in epoch %d (the §V-D reset must be chip-wide)",
				epoch, i, bank.Epoch())
		}
	}
	for i, l1 := range m.l1s {
		if e := l1.(*core.L1).Epoch(); e > epoch {
			return diag.Errf("model-gtsc", "epoch-ahead",
				"l1[%d] is in epoch %d, ahead of the banks' epoch %d", i, e, epoch)
		}
	}
	return nil
}

// checkTCContainment: an unexpired L1 lease must be backed by its bank
// — TC's L2 is inclusive and only expired lines are evictable, so a
// line any L1 can still hit must exist at the bank with an expiry at
// least as late (the bank's expiry is the max it ever granted).
func (m *machine) checkTCContainment() error {
	type bankKey struct {
		bank  int
		block mem.BlockAddr
	}
	bankExp := map[bankKey]uint64{}
	for i, l2 := range m.l2s {
		l2.(coherence.LeaseHolder).ForEachLease(func(b mem.BlockAddr, _, rts uint64) {
			bankExp[bankKey{i, b}] = rts
		})
	}
	var bad error
	for i, l1 := range m.l1s {
		sm := i
		l1.(coherence.LeaseHolder).ForEachLease(func(b mem.BlockAddr, _, exp uint64) {
			if exp <= m.now || bad != nil {
				return // expired: a dead line, not a coherence liability
			}
			bank := int(uint64(b) % uint64(len(m.l2s)))
			if got, ok := bankExp[bankKey{bank, b}]; !ok || got < exp {
				bad = diag.Errf("model-tc", "lease-containment",
					"sm%d holds %v live until %d but l2[%d] backs it only until %d (present=%t)",
					sm, b, exp, bank, got, ok)
			}
		})
	}
	return bad
}

// checkSWMR: the directory protocol's single-writer/multiple-reader
// invariant — while any L1 holds a block in M or E, no other L1 may
// hold it in any state.
func (m *machine) checkSWMR() error {
	type holder struct {
		sm    int
		state string
	}
	byBlock := map[mem.BlockAddr][]holder{}
	for i, l1 := range m.l1s {
		sh, ok := l1.(coherence.StateHolder)
		if !ok {
			continue
		}
		sm := i
		sh.ForEachLineState(func(b mem.BlockAddr, state string) {
			byBlock[b] = append(byBlock[b], holder{sm, state})
		})
	}
	for b, hs := range byBlock {
		if len(hs) < 2 {
			continue
		}
		for _, h := range hs {
			if h.state == "M" || h.state == "E" {
				return diag.Errf("model-dir", "swmr",
					"block %v held %s by sm%d while %d other SM(s) also hold it (%v)",
					b, h.state, h.sm, len(hs)-1, hs)
			}
		}
	}
	return nil
}
