package sweep

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/gtsc-sim/gtsc/internal/checkpoint"
	"github.com/gtsc-sim/gtsc/internal/stats"
)

// fakeNow is a hand-advanced clock, so lease-expiry tests never sleep
// and never flake.
type fakeNow struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeNow() *fakeNow { return &fakeNow{t: time.Unix(1700000000, 0)} }

func (f *fakeNow) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeNow) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(d)
}

// testItem is the standard fast test item: CC on a tiny 2-SM machine
// (~9.5k cycles, tens of milliseconds).
func testItem() Item {
	return Item{Workload: "CC", Protocol: "gtsc", Consistency: "rc", NumSMs: 2, NumBanks: 2}
}

func testItemBL() Item {
	it := testItem()
	it.Protocol = "bl"
	return it
}

func mustID(t *testing.T, it Item) string {
	t.Helper()
	id, err := it.ID()
	if err != nil {
		t.Fatalf("item ID: %v", err)
	}
	return id
}

// makeRun executes the item to completion in-process (the reference
// result and the payload for Complete calls).
func makeRun(t *testing.T, it Item, attempt int) *stats.Run {
	t.Helper()
	it = it.withDefaults()
	cfg, err := it.SimConfig(attempt)
	if err != nil {
		t.Fatalf("config: %v", err)
	}
	inst, err := it.Instance()
	if err != nil {
		t.Fatalf("instance: %v", err)
	}
	run, err := checkpoint.NewExecution(cfg, inst, it.Workload, it.Scale).Run(context.Background())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return run
}

// makeFrame executes the item to stopAt and returns the encoded
// checkpoint frame plus the cycle it landed on — what a worker streams
// with a heartbeat.
func makeFrame(t *testing.T, it Item, attempt int, stopAt uint64) ([]byte, uint64) {
	t.Helper()
	it = it.withDefaults()
	cfg, err := it.SimConfig(attempt)
	if err != nil {
		t.Fatalf("config: %v", err)
	}
	inst, err := it.Instance()
	if err != nil {
		t.Fatalf("instance: %v", err)
	}
	exec := checkpoint.NewExecution(cfg, inst, it.Workload, it.Scale)
	_, paused, err := exec.RunUntil(context.Background(), stopAt)
	if err != nil {
		t.Fatalf("run to %d: %v", stopAt, err)
	}
	if !paused {
		t.Fatalf("run finished before cycle %d; pick a smaller stop", stopAt)
	}
	ck := exec.Checkpoint()
	frame, err := ck.EncodeBytes()
	if err != nil {
		t.Fatalf("encode frame: %v", err)
	}
	return frame, ck.Cycle
}

func itemResult(t *testing.T, c *Coordinator, sweepID, itemID string) ItemResult {
	t.Helper()
	st, err := c.Status(StatusRequest{SweepID: sweepID, WithResults: true})
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	for _, sw := range st.Sweeps {
		for _, r := range sw.Results {
			if r.ItemID == itemID {
				return r
			}
		}
	}
	t.Fatalf("item %s not in sweep %s status", itemID, sweepID)
	return ItemResult{}
}

// TestLeaseExpiryReassignsWithCheckpoint is the core robustness
// property: a worker that stops heartbeating loses its lease, and the
// successor inherits the exact streamed resume frame — same attempt,
// same derived seed. Zombie results arriving after reassignment are
// accepted first-wins (determinism makes them equally valid), and the
// displaced holder's stale operations are rejected or ignored.
func TestLeaseExpiryReassignsWithCheckpoint(t *testing.T) {
	clock := newFakeNow()
	c := NewCoordinator(Options{LeaseTTL: time.Second, Now: clock.Now})
	it := testItem()
	sub, err := c.Submit([]Item{it})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	lr1 := c.Lease(LeaseRequest{Worker: "a"})
	if !lr1.OK || lr1.Attempt != 0 || len(lr1.Checkpoint) != 0 {
		t.Fatalf("first lease = %+v, want fresh attempt-0 grant", lr1)
	}
	if lr2 := c.Lease(LeaseRequest{Worker: "b"}); lr2.OK {
		t.Fatalf("second lease granted while the only item is held")
	}

	frame, cycle := makeFrame(t, it, 0, 3000)
	if hb, err := c.Heartbeat(HeartbeatRequest{Worker: "a", LeaseID: lr1.LeaseID, Checkpoint: frame}); err != nil || !hb.OK {
		t.Fatalf("heartbeat = %+v, %v", hb, err)
	}

	// Worker a goes silent (SIGKILL): the deadline passes, and the next
	// lease call reassigns the item WITH the streamed frame.
	clock.Advance(1500 * time.Millisecond)
	lr2 := c.Lease(LeaseRequest{Worker: "b"})
	if !lr2.OK || lr2.ItemID != lr1.ItemID {
		t.Fatalf("reassignment lease = %+v, want item %s", lr2, lr1.ItemID)
	}
	if lr2.Attempt != 0 {
		t.Errorf("reassignment bumped attempt to %d; reassignment must continue attempt 0", lr2.Attempt)
	}
	ck, err := checkpoint.DecodeBytes(lr2.Checkpoint)
	if err != nil || ck.Cycle != cycle {
		t.Fatalf("handed-over frame = cycle %v err %v, want cycle %d", ck, err, cycle)
	}
	if st, _ := c.Status(StatusRequest{}); st.Reassigned != 1 {
		t.Errorf("Reassigned = %d, want 1", st.Reassigned)
	}

	// The displaced holder is now a zombie: its heartbeats are refused…
	if hb, err := c.Heartbeat(HeartbeatRequest{Worker: "a", LeaseID: lr1.LeaseID}); err != nil || hb.OK {
		t.Fatalf("stale heartbeat = %+v, %v; want OK=false", hb, err)
	}
	// …but its COMPLETED result is accepted: first-complete-wins, and
	// determinism makes the zombie's run identical to the successor's.
	run := makeRun(t, it, 0)
	if cr, err := c.Complete(CompleteRequest{Worker: "a", LeaseID: lr1.LeaseID, ItemID: lr1.ItemID, Attempt: 0, Run: run}); err != nil || !cr.OK {
		t.Fatalf("zombie complete = %+v, %v", cr, err)
	}
	// The successor's duplicate completion is an idempotent no-op.
	if cr, err := c.Complete(CompleteRequest{Worker: "b", LeaseID: lr2.LeaseID, ItemID: lr2.ItemID, Attempt: 0, Run: run}); err != nil || !cr.OK {
		t.Fatalf("duplicate complete = %+v, %v", cr, err)
	}

	res := itemResult(t, c, sub.SweepID, lr1.ItemID)
	if res.State != stateDone || res.Fingerprint != Fingerprint(run) {
		t.Fatalf("final state = %s fp %016x, want done with fp %016x", res.State, res.Fingerprint, Fingerprint(run))
	}
	st, _ := c.Status(StatusRequest{SweepID: sub.SweepID})
	if !st.Sweeps[0].Finished() {
		t.Errorf("sweep not finished: %+v", st.Sweeps[0])
	}
}

// TestTransientRetrySchedule pins the retry ladder: a transient
// failure re-queues the item at the NEXT attempt behind the session's
// exponential backoff gate; attempts are bounded by MaxAttempts; stale
// failure reports from revoked leases are ignored.
func TestTransientRetrySchedule(t *testing.T) {
	clock := newFakeNow()
	c := NewCoordinator(Options{LeaseTTL: time.Minute, MaxAttempts: 3, Now: clock.Now})
	it := testItem()
	it.FaultSeed = 7
	sub, err := c.Submit([]Item{it})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	id := mustID(t, it)

	for attempt := 0; attempt < 3; attempt++ {
		lr := c.Lease(LeaseRequest{Worker: "w"})
		if !lr.OK || lr.Attempt != attempt {
			t.Fatalf("lease for attempt %d = %+v", attempt, lr)
		}
		// A stale fail (wrong lease) must not consume the attempt.
		if fr, err := c.Fail(FailRequest{Worker: "x", LeaseID: lr.LeaseID + 99, ItemID: id, Attempt: attempt, Msg: "stale", Transient: true}); err != nil || !fr.OK {
			t.Fatalf("stale fail = %+v, %v", fr, err)
		}
		if got := itemResult(t, c, sub.SweepID, id); got.State != stateLeased {
			t.Fatalf("stale fail changed state to %s", got.State)
		}
		if fr, err := c.Fail(FailRequest{Worker: "w", LeaseID: lr.LeaseID, ItemID: id, Attempt: attempt, Msg: "injected deadlock", Transient: true}); err != nil || !fr.OK {
			t.Fatalf("fail attempt %d = %+v, %v", attempt, fr, err)
		}
		if attempt == 2 {
			break // third transient failure exhausts MaxAttempts=3
		}
		// Backoff gate: the item is queued but not leasable until the
		// derived backoff elapses.
		if lr := c.Lease(LeaseRequest{Worker: "w"}); lr.OK {
			t.Fatalf("lease granted inside the attempt-%d backoff window", attempt+1)
		} else if lr.RetryAfterMs <= 0 {
			t.Fatalf("backoff refusal carries no retry hint: %+v", lr)
		}
		clock.Advance(200 * time.Millisecond) // > RetryBackoff(1..2) = 25/50ms
	}

	res := itemResult(t, c, sub.SweepID, id)
	if res.State != stateFailed || res.Attempt != 2 || res.Err == "" {
		t.Fatalf("after exhausting attempts: %+v, want failed at attempt 2", res)
	}
	if st, _ := c.Status(StatusRequest{}); st.Retried != 2 {
		t.Errorf("Retried = %d, want 2", st.Retried)
	}
	if lr := c.Lease(LeaseRequest{Worker: "w"}); lr.OK {
		t.Fatalf("failed item leased again: %+v", lr)
	}
}

// TestPermanentFailureNoRetry: without a fault plan there is nothing
// transient about a failure — one report fails the item.
func TestPermanentFailureNoRetry(t *testing.T) {
	c := NewCoordinator(Options{})
	it := testItem()
	sub, err := c.Submit([]Item{it})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	lr := c.Lease(LeaseRequest{Worker: "w"})
	if !lr.OK {
		t.Fatalf("lease: %+v", lr)
	}
	if _, err := c.Fail(FailRequest{Worker: "w", LeaseID: lr.LeaseID, ItemID: lr.ItemID, Attempt: 0, Msg: "boom", Transient: false}); err != nil {
		t.Fatalf("fail: %v", err)
	}
	res := itemResult(t, c, sub.SweepID, lr.ItemID)
	if res.State != stateFailed || res.Err != "boom" {
		t.Fatalf("res = %+v, want permanent failure", res)
	}
}

// TestJournalReplayRestoresAssignmentState is the coordinator-crash
// acceptance gate: a restart on the journal restores finished results
// bit-identically (never re-executing them), re-queues unfinished
// items, and preserves their streamed checkpoint frames for handoff.
func TestJournalReplayRestoresAssignmentState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gtscd.jrnl")
	itA, itB := testItem(), testItemBL()
	idA, idB := mustID(t, itA), mustID(t, itB)

	c1, err := OpenCoordinator(path, Options{LeaseTTL: time.Minute})
	if err != nil {
		t.Fatalf("open 1: %v", err)
	}
	s1, err := c1.Submit([]Item{itA, itB})
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	// A second sweep asking for an already-known item shares it.
	s2, err := c1.Submit([]Item{itB})
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	if s2.Total != 1 || s2.Deduped != 1 {
		t.Fatalf("cross-sweep dedupe: %+v, want Total=1 Deduped=1", s2)
	}

	lrA := c1.Lease(LeaseRequest{Worker: "a"})
	if !lrA.OK || lrA.ItemID != idA {
		t.Fatalf("lease A = %+v, want %s", lrA, idA)
	}
	frame, cycle := makeFrame(t, itA, 0, 3000)
	if _, err := c1.Heartbeat(HeartbeatRequest{Worker: "a", LeaseID: lrA.LeaseID, Checkpoint: frame}); err != nil {
		t.Fatalf("heartbeat: %v", err)
	}
	lrB := c1.Lease(LeaseRequest{Worker: "a"})
	if !lrB.OK || lrB.ItemID != idB {
		t.Fatalf("lease B = %+v, want %s", lrB, idB)
	}
	runB := makeRun(t, itB, 0)
	if _, err := c1.Complete(CompleteRequest{Worker: "a", LeaseID: lrB.LeaseID, ItemID: idB, Attempt: 0, Run: runB}); err != nil {
		t.Fatalf("complete B: %v", err)
	}
	if err := c1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Coordinator "crash" and restart: leases are gone (ephemeral by
	// design), durable state is exact.
	c2, err := OpenCoordinator(path, Options{LeaseTTL: time.Minute})
	if err != nil {
		t.Fatalf("open 2: %v", err)
	}
	defer c2.Close()
	if c2.DroppedTail() {
		t.Error("clean journal reported a torn tail")
	}
	resB := itemResult(t, c2, s1.SweepID, idB)
	if resB.State != stateDone || resB.Fingerprint != Fingerprint(runB) {
		t.Fatalf("replayed B = %+v, want done with original fingerprint %016x", resB, Fingerprint(runB))
	}
	resA := itemResult(t, c2, s1.SweepID, idA)
	if resA.State != statePending || resA.CheckpointCycle != cycle {
		t.Fatalf("replayed A = state %s ckpt %d, want pending with ckpt cycle %d", resA.State, resA.CheckpointCycle, cycle)
	}
	// The re-queued item hands its preserved frame to the next worker;
	// the finished one is never handed out again.
	lr := c2.Lease(LeaseRequest{Worker: "b"})
	if !lr.OK || lr.ItemID != idA {
		t.Fatalf("post-restart lease = %+v, want %s", lr, idA)
	}
	if ck, err := checkpoint.DecodeBytes(lr.Checkpoint); err != nil || ck.Cycle != cycle {
		t.Fatalf("post-restart frame cycle = %v, %v; want %d", ck, err, cycle)
	}
	if extra := c2.Lease(LeaseRequest{Worker: "b"}); extra.OK {
		t.Fatalf("finished item re-leased after restart: %+v", extra)
	}
	st, _ := c2.Status(StatusRequest{SweepID: s2.SweepID})
	if !st.Sweeps[0].Finished() {
		t.Errorf("sweep 2 (done item only) not finished after replay: %+v", st.Sweeps[0])
	}
}

// TestJournalTornTailRepair crashes the journal the way a real crash
// does — a partial final record — and proves the reopen repairs it by
// truncation, losing only the torn record.
func TestJournalTornTailRepair(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gtscd.jrnl")
	it := testItem()
	c1, err := OpenCoordinator(path, Options{})
	if err != nil {
		t.Fatalf("open 1: %v", err)
	}
	s1, err := c1.Submit([]Item{it})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	lr := c1.Lease(LeaseRequest{Worker: "a"})
	run := makeRun(t, it, 0)
	if _, err := c1.Complete(CompleteRequest{Worker: "a", LeaseID: lr.LeaseID, ItemID: lr.ItemID, Attempt: 0, Run: run}); err != nil {
		t.Fatalf("complete: %v", err)
	}
	c1.Close()

	// Torn tail: a frame header promising more bytes than follow.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatalf("reopen file: %v", err)
	}
	if _, err := f.Write([]byte{0xff, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 0x01, 0x02}); err != nil {
		t.Fatalf("tear: %v", err)
	}
	f.Close()

	c2, err := OpenCoordinator(path, Options{})
	if err != nil {
		t.Fatalf("open torn: %v", err)
	}
	defer c2.Close()
	if !c2.DroppedTail() {
		t.Error("torn tail not reported")
	}
	res := itemResult(t, c2, s1.SweepID, lr.ItemID)
	if res.State != stateDone || res.Fingerprint != Fingerprint(run) {
		t.Fatalf("after repair: %+v, want intact done result", res)
	}
	// The repaired journal accepts appends again.
	if _, err := c2.Submit([]Item{testItemBL()}); err != nil {
		t.Fatalf("submit after repair: %v", err)
	}
}

// TestCancelSpares SharedItems: cancel drops a sweep's exclusive
// pending items from the queue but keeps items another live sweep
// still wants, and a later sweep re-queues a parked item.
func TestCancelSparesSharedItems(t *testing.T) {
	c := NewCoordinator(Options{})
	itA, itB := testItem(), testItemBL()
	idA, idB := mustID(t, itA), mustID(t, itB)
	s1, err := c.Submit([]Item{itA, itB})
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	if _, err := c.Submit([]Item{itB}); err != nil {
		t.Fatalf("submit 2: %v", err)
	}

	if _, err := c.Cancel(CancelRequest{SweepID: s1.SweepID}); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	st, _ := c.Status(StatusRequest{SweepID: s1.SweepID})
	if !st.Sweeps[0].Canceled || !st.Sweeps[0].Finished() {
		t.Fatalf("canceled sweep status: %+v", st.Sweeps[0])
	}
	// Only itB (still wanted by sweep 2) remains leasable.
	lr := c.Lease(LeaseRequest{Worker: "w"})
	if !lr.OK || lr.ItemID != idB {
		t.Fatalf("post-cancel lease = %+v, want %s", lr, idB)
	}
	if extra := c.Lease(LeaseRequest{Worker: "w"}); extra.OK {
		t.Fatalf("canceled exclusive item still leasable: %+v", extra)
	}
	// A new sweep re-queues the parked item.
	if _, err := c.Submit([]Item{itA}); err != nil {
		t.Fatalf("submit 3: %v", err)
	}
	lr = c.Lease(LeaseRequest{Worker: "w"})
	if !lr.OK || lr.ItemID != idA {
		t.Fatalf("re-queued lease = %+v, want %s", lr, idA)
	}
}

// TestSubmitValidation: bad manifests are rejected whole.
func TestSubmitValidation(t *testing.T) {
	c := NewCoordinator(Options{})
	if _, err := c.Submit(nil); err == nil {
		t.Error("empty manifest accepted")
	}
	if _, err := c.Submit([]Item{{Workload: "NOPE", Protocol: "gtsc", Consistency: "rc"}}); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := c.Submit([]Item{{Workload: "CC", Protocol: "warp9", Consistency: "rc"}}); err == nil {
		t.Error("unknown protocol accepted")
	}
	// In-manifest duplicates collapse to one item.
	sub, err := c.Submit([]Item{testItem(), testItem()})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if sub.Total != 1 {
		t.Errorf("duplicate items not collapsed: %+v", sub)
	}
}
