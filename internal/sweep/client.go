package sweep

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"

	"github.com/gtsc-sim/gtsc/internal/diag"
	"github.com/gtsc-sim/gtsc/internal/experiments"
	"github.com/gtsc-sim/gtsc/internal/stats"
)

// Client talks to a coordinator with the retry discipline the chaos
// transport demands: transport errors, 5xx responses and torn reply
// bodies all retry with the session's bounded exponential backoff
// (every endpoint is idempotent, so replaying a request whose reply
// was lost is safe); 4xx rejections are terminal and surface as
// *diag.RemoteError.
type Client struct {
	base string
	hc   *http.Client
	// Retries bounds attempts per call (default 8: with ChaosTransport
	// loss rates the chance all 8 fail is ~1e-5).
	Retries int
	// Log receives retry chatter; nil discards it.
	Log *log.Logger
}

// NewClient builds a client for the coordinator at base (e.g.
// "http://127.0.0.1:8077"). transport is the http.RoundTripper to use
// — pass fault.NewTransport(...) to chaos-test the wire, nil for the
// default transport.
func NewClient(base string, transport http.RoundTripper) *Client {
	return &Client{
		base:    strings.TrimRight(base, "/"),
		hc:      &http.Client{Transport: transport},
		Retries: 8,
		Log:     log.New(io.Discard, "", 0),
	}
}

// call POSTs one gob request and decodes the gob reply, retrying
// retryable failures.
func (cl *Client) call(ctx context.Context, path string, req, resp any) error {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(req); err != nil {
		return fmt.Errorf("sweep: encode %s request: %w", path, err)
	}
	payload := body.Bytes()
	retries := cl.Retries
	if retries < 1 {
		retries = 1
	}
	var last error
	for attempt := 0; attempt < retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return context.Cause(ctx)
			case <-time.After(experiments.RetryBackoff(attempt)):
			}
		}
		// bytes.Reader bodies carry GetBody, so the chaos shim can
		// duplicate the request and HTTP redirects could replay it.
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, cl.base+path, bytes.NewReader(payload))
		if err != nil {
			return err
		}
		res, err := cl.hc.Do(hreq)
		if err != nil {
			if ctx.Err() != nil {
				return context.Cause(ctx)
			}
			last = err
			cl.Log.Printf("sweep: %s attempt %d/%d: transport: %v", path, attempt+1, retries, err)
			continue
		}
		if res.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(res.Body, 4<<10))
			res.Body.Close()
			if res.StatusCode >= 400 && res.StatusCode < 500 {
				return &diag.RemoteError{Op: path, Status: res.StatusCode, Msg: strings.TrimSpace(string(msg))}
			}
			last = fmt.Errorf("HTTP %d: %s", res.StatusCode, strings.TrimSpace(string(msg)))
			cl.Log.Printf("sweep: %s attempt %d/%d: %v", path, attempt+1, retries, last)
			continue
		}
		err = gob.NewDecoder(res.Body).Decode(resp)
		res.Body.Close()
		if err != nil {
			// A torn reply body (mid-stream disconnect). The server
			// already executed the request; retrying is safe because
			// every endpoint is idempotent.
			last = fmt.Errorf("torn reply: %w", err)
			cl.Log.Printf("sweep: %s attempt %d/%d: %v", path, attempt+1, retries, last)
			continue
		}
		return nil
	}
	return fmt.Errorf("sweep: %s failed after %d attempts: %w", path, retries, last)
}

// Submit registers a manifest and returns the sweep handle.
func (cl *Client) Submit(ctx context.Context, m Manifest) (SubmitResponse, error) {
	var resp SubmitResponse
	err := cl.call(ctx, PathSubmit, &SubmitRequest{Items: m.Items}, &resp)
	return resp, err
}

// Lease asks for one work item.
func (cl *Client) Lease(ctx context.Context, worker string) (LeaseResponse, error) {
	var resp LeaseResponse
	err := cl.call(ctx, PathLease, &LeaseRequest{Worker: worker}, &resp)
	return resp, err
}

// Heartbeat extends a lease, streaming the latest checkpoint frame.
func (cl *Client) Heartbeat(ctx context.Context, worker string, leaseID uint64, frame []byte) (HeartbeatResponse, error) {
	var resp HeartbeatResponse
	err := cl.call(ctx, PathHeartbeat, &HeartbeatRequest{Worker: worker, LeaseID: leaseID, Checkpoint: frame}, &resp)
	return resp, err
}

// Complete reports a finished run.
func (cl *Client) Complete(ctx context.Context, worker string, leaseID uint64, itemID string, attempt int, run *stats.Run) (CompleteResponse, error) {
	var resp CompleteResponse
	err := cl.call(ctx, PathComplete, &CompleteRequest{Worker: worker, LeaseID: leaseID, ItemID: itemID, Attempt: attempt, Run: run}, &resp)
	return resp, err
}

// Fail reports a failed run.
func (cl *Client) Fail(ctx context.Context, worker string, leaseID uint64, itemID string, attempt int, msg string, transient bool) (FailResponse, error) {
	var resp FailResponse
	err := cl.call(ctx, PathFail, &FailRequest{Worker: worker, LeaseID: leaseID, ItemID: itemID, Attempt: attempt, Msg: msg, Transient: transient}, &resp)
	return resp, err
}

// Cancel cancels a sweep.
func (cl *Client) Cancel(ctx context.Context, sweepID string) (CancelResponse, error) {
	var resp CancelResponse
	err := cl.call(ctx, PathCancel, &CancelRequest{SweepID: sweepID}, &resp)
	return resp, err
}

// Status fetches coordinator state.
func (cl *Client) Status(ctx context.Context, sweepID string, withResults bool) (StatusResponse, error) {
	var resp StatusResponse
	err := cl.call(ctx, PathStatus, &StatusRequest{SweepID: sweepID, WithResults: withResults}, &resp)
	return resp, err
}
