package sweep

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"time"

	"github.com/gtsc-sim/gtsc/internal/checkpoint"
	"github.com/gtsc-sim/gtsc/internal/diag"
)

// Worker executes leased items in slices, heartbeating between slices
// with its latest checkpoint frame. If the worker dies at ANY point —
// SIGKILL mid-slice included — the coordinator's lease expiry hands
// the item to a successor, which resumes from the last streamed frame
// by verified deterministic replay; the sweep's results are
// bit-identical either way.
type Worker struct {
	// Name identifies the worker to the coordinator (lease holder,
	// status displays).
	Name string
	// Client is the coordinator connection (carries the retry policy
	// and any chaos transport).
	Client *Client
	// SliceCycles bounds how many cycles run between heartbeat
	// opportunities; default 20000. Smaller slices tighten the resume
	// point a successor inherits, at more pause/heartbeat overhead.
	SliceCycles uint64
	// Log receives execution events; nil discards them.
	Log *log.Logger
}

func (w *Worker) logf(format string, args ...any) {
	if w.Log == nil {
		w.Log = log.New(io.Discard, "", 0)
	}
	w.Log.Printf(format, args...)
}

func (w *Worker) slice() uint64 {
	if w.SliceCycles == 0 {
		return 20000
	}
	return w.SliceCycles
}

// Run is the worker loop: lease, execute, report, repeat, until ctx is
// canceled. An unreachable coordinator (retries exhausted) ends the
// loop with the error; an idle coordinator just makes the loop poll at
// the coordinator's suggested interval.
func (w *Worker) Run(ctx context.Context) error {
	for {
		if ctx.Err() != nil {
			return context.Cause(ctx)
		}
		lr, err := w.Client.Lease(ctx, w.Name)
		if err != nil {
			if ctx.Err() != nil {
				return context.Cause(ctx)
			}
			return fmt.Errorf("sweep: worker %s lost the coordinator: %w", w.Name, err)
		}
		if !lr.OK {
			wait := time.Duration(lr.RetryAfterMs) * time.Millisecond
			if wait < 10*time.Millisecond {
				wait = 10 * time.Millisecond
			}
			select {
			case <-ctx.Done():
				return context.Cause(ctx)
			case <-time.After(wait):
			}
			continue
		}
		w.runItem(ctx, lr)
	}
}

// runItem executes one leased item to completion, failure, or
// abandonment. It never returns an error: every outcome is reported to
// the coordinator (or deliberately abandoned to lease expiry).
func (w *Worker) runItem(ctx context.Context, lr LeaseResponse) {
	it := lr.Item.withDefaults()
	cfg, cfgErr := it.SimConfig(lr.Attempt)
	inst, instErr := it.Instance()
	if cfgErr != nil || instErr != nil {
		// Submission validates items, so this is version skew between
		// worker and coordinator binaries — permanent for this worker.
		err := cfgErr
		if err == nil {
			err = instErr
		}
		w.logf("worker %s: %s: unrunnable item: %v", w.Name, lr.ItemID, err)
		w.Client.Fail(ctx, w.Name, lr.LeaseID, lr.ItemID, lr.Attempt, err.Error(), false)
		return
	}

	// Build the execution: resume from the handed-over frame when there
	// is one, fresh otherwise. A frame that fails verified replay
	// (digest mismatch — wrong binary or a determinism regression) is
	// loud but not fatal: fall back to a fresh run, which is always
	// correct.
	var exec *checkpoint.Execution
	if len(lr.Checkpoint) > 0 {
		if ck, err := checkpoint.DecodeBytes(lr.Checkpoint); err == nil {
			exec, err = checkpoint.ResumeExecution(ck, cfg, inst, it.Workload, it.Scale)
			if err != nil {
				w.logf("worker %s: %s: checkpoint handoff rejected (%v); restarting fresh", w.Name, lr.ItemID, err)
				exec = nil
			} else {
				w.logf("worker %s: %s: resumed predecessor's run at cycle %d (attempt %d)", w.Name, lr.ItemID, ck.Cycle, lr.Attempt)
			}
		}
	}
	if exec == nil {
		exec = checkpoint.NewExecution(cfg, inst, it.Workload, it.Scale)
	}

	// Heartbeat at ~TTL/3 so two heartbeats may be lost before the
	// lease expires; slices bound the checkpoint lag within that.
	hbEvery := time.Duration(lr.TTLMs) * time.Millisecond / 3
	if hbEvery <= 0 {
		hbEvery = time.Second
	}
	lastHB := time.Now()
	for {
		run, paused, err := exec.RunUntil(ctx, exec.Sim().Now()+w.slice())
		if err != nil {
			var canceled *diag.CanceledError
			if errors.As(err, &canceled) {
				// Graceful shutdown: stream the suspension coordinate so
				// a successor resumes exactly here, then abandon the
				// lease (it expires; the item is reassigned).
				if frame, ferr := exec.Checkpoint().EncodeBytes(); ferr == nil {
					w.Client.Heartbeat(ctx, w.Name, lr.LeaseID, frame)
				}
				w.logf("worker %s: %s: suspended at cycle %d; abandoning lease", w.Name, lr.ItemID, canceled.Cycle)
				return
			}
			var deadlock *diag.DeadlockError
			transient := errors.As(err, &deadlock) && it.FaultSeed != 0
			w.logf("worker %s: %s attempt %d failed (transient=%v): %v", w.Name, lr.ItemID, lr.Attempt, transient, err)
			w.Client.Fail(ctx, w.Name, lr.LeaseID, lr.ItemID, lr.Attempt, err.Error(), transient)
			return
		}
		if !paused {
			if _, err := w.Client.Complete(ctx, w.Name, lr.LeaseID, lr.ItemID, lr.Attempt, run); err != nil {
				w.logf("worker %s: %s: complete not delivered: %v", w.Name, lr.ItemID, err)
				return
			}
			w.logf("worker %s: %s done (attempt %d, fingerprint %016x)", w.Name, lr.ItemID, lr.Attempt, Fingerprint(run))
			return
		}
		if time.Since(lastHB) < hbEvery {
			continue
		}
		frame, err := exec.Checkpoint().EncodeBytes()
		if err != nil {
			frame = nil
		}
		hb, err := w.Client.Heartbeat(ctx, w.Name, lr.LeaseID, frame)
		if err != nil {
			w.logf("worker %s: %s: heartbeat failed (%v); abandoning item", w.Name, lr.ItemID, err)
			return
		}
		if !hb.OK {
			// The lease is gone — expired while we stalled, or the item
			// completed elsewhere. Abandon immediately; whatever we had
			// would be discarded as a zombie anyway (and if we DID
			// finish first, Complete is accepted regardless).
			w.logf("worker %s: %s: lease %d revoked; abandoning item", w.Name, lr.ItemID, lr.LeaseID)
			return
		}
		lastHB = time.Now()
	}
}
