package sweep

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"log"
	"sort"
	"sync"
	"time"

	"github.com/gtsc-sim/gtsc/internal/checkpoint"
	"github.com/gtsc-sim/gtsc/internal/experiments"
	"github.com/gtsc-sim/gtsc/internal/stats"
)

// Options configures a coordinator. The zero value gets production
// defaults; tests shrink LeaseTTL and pin Now.
type Options struct {
	// LeaseTTL is the heartbeat deadline: a lease not extended within
	// it is revoked and its item reassigned. Default 5s.
	LeaseTTL time.Duration
	// MaxAttempts bounds transient-failure retries per item (attempts
	// 0..MaxAttempts-1, mirroring the local session). Default 3.
	MaxAttempts int
	// Now is the clock (a test seam; default time.Now).
	Now func() time.Time
	// Log receives scheduling events; nil discards them.
	Log *log.Logger
}

func (o Options) withDefaults() Options {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 5 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.Log == nil {
		o.Log = log.New(io.Discard, "", 0)
	}
	return o
}

// Item lifecycle states.
const (
	statePending = "pending"
	stateLeased  = "leased"
	stateDone    = "done"
	stateFailed  = "failed"
)

// lease is one outstanding grant.
type lease struct {
	id       uint64
	worker   string
	deadline time.Time
}

// trackedItem is the coordinator's record of one unique (content
// address) work item. Items are shared across sweeps: two sweeps
// submitting the same configuration reference one trackedItem and the
// simulation runs once.
type trackedItem struct {
	id   string
	item Item
	// sweeps references every sweep that requested this item.
	sweeps map[string]bool

	state   string
	attempt int
	// queued mirrors queue membership so an item is never enqueued
	// twice.
	queued bool
	// notBefore gates retry backoff: the item may be queued but not
	// leased before this instant.
	notBefore time.Time
	lease     *lease
	// worker last held (or holds) the item.
	worker string

	// ckpt is the last streamed checkpoint frame, valid only for
	// ckptAttempt (a transient retry switches fault seeds, which makes
	// the old trajectory unreplayable).
	ckpt        []byte
	ckptAttempt int
	ckptCycle   uint64

	run         *stats.Run
	fingerprint uint64
	errMsg      string
}

// sweepState is one submitted sweep: an ordered view over shared items.
type sweepState struct {
	id       string
	canceled bool
	order    []string // item IDs in submission order
}

// Coordinator is the sweep service state machine: sweeps, items, the
// FIFO work queue and outstanding leases, with every durable transition
// (submit, complete, fail, checkpoint, cancel) journaled through the
// CRC-framed append-only checkpoint.Journal before it is applied.
// Leases are deliberately NOT journaled: they are ephemeral promises,
// and a coordinator restart revokes all of them — the replayed state
// re-queues every unfinished item (with its last checkpoint frame) and
// never re-executes a finished one.
//
// The Coordinator itself is transport-free; Server exposes it over
// HTTP. All methods are safe for concurrent use.
type Coordinator struct {
	opt Options

	mu       sync.Mutex
	items    map[string]*trackedItem
	sweeps   map[string]*sweepState
	queue    []string
	leases   map[uint64]string // lease ID -> item ID
	workers  map[string]time.Time
	sweepSeq int
	leaseSeq uint64

	// Observability counters (process-local, not journaled).
	leasesGranted int
	reassigned    int
	retried       int

	journal     *checkpoint.Journal
	droppedTail bool
	closed      bool
}

// NewCoordinator builds an in-memory coordinator (no journal). State
// dies with the process; tests and ephemeral sweeps use this.
func NewCoordinator(opt Options) *Coordinator {
	return &Coordinator{
		opt:     opt.withDefaults(),
		items:   make(map[string]*trackedItem),
		sweeps:  make(map[string]*sweepState),
		leases:  make(map[uint64]string),
		workers: make(map[string]time.Time),
	}
}

// OpenCoordinator builds a coordinator backed by the journal at path,
// replaying any existing records to the exact pre-crash durable state:
// finished items stay finished, unfinished ones are re-queued with
// their last checkpoint frames, and a torn final record (crash
// mid-append) is repaired by truncation (see DroppedTail).
func OpenCoordinator(path string, opt Options) (*Coordinator, error) {
	c := NewCoordinator(opt)
	j, err := checkpoint.OpenJournal(path, func(payload []byte) error {
		var rec journalRecord
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
			return fmt.Errorf("sweep: undecodable journal record: %w", err)
		}
		return c.applyLocked(&rec)
	})
	if err != nil {
		return nil, err
	}
	c.journal = j
	c.droppedTail = j.DroppedTail
	if c.sweepSeq == 0 {
		if err := c.appendLocked(&journalRecord{Kind: recHeader, Attempt: journalVersion}); err != nil {
			j.Close()
			return nil, err
		}
	}
	return c, nil
}

// DroppedTail reports that opening the journal found and repaired a
// torn final record — the expected residue of a crash mid-append.
func (c *Coordinator) DroppedTail() bool { return c.droppedTail }

// Close releases the journal (if any). Further mutating calls fail.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.journal == nil {
		return nil
	}
	return c.journal.Close()
}

// Journal records. One gob-encoded journalRecord per durable
// transition; replay routes each through the same applyLocked the live
// path uses, so a replayed coordinator is bit-for-bit the state the
// crashed one had acknowledged.
const (
	recHeader = "header"
	recSweep  = "sweep"
	recDone   = "done"
	recFail   = "fail"
	recCkpt   = "ckpt"
	recCancel = "cancel"

	journalVersion = 1
)

type journalRecord struct {
	Kind    string
	SweepID string
	// Sweep registration: parallel slices of content addresses and
	// item definitions, in submission order.
	ItemIDs []string
	Items   []Item
	// Item transitions.
	ItemID     string
	Attempt    int
	Worker     string
	Run        *stats.Run
	Msg        string
	Transient  bool
	Checkpoint []byte
}

// journalError marks a failure to durably journal a transition. The
// HTTP server maps it to a 5xx (retryable by the client), unlike
// request errors which are terminal 4xx rejections.
type journalError struct{ err error }

func (e *journalError) Error() string { return fmt.Sprintf("sweep: journal append failed: %v", e.err) }
func (e *journalError) Unwrap() error { return e.err }

// appendLocked durably journals rec (no-op without a journal). Called
// with c.mu held, BEFORE the in-memory transition: a transition the
// journal did not acknowledge never happened.
func (c *Coordinator) appendLocked(rec *journalRecord) error {
	if c.journal == nil {
		return nil
	}
	if c.closed {
		return &journalError{err: fmt.Errorf("coordinator closed")}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return &journalError{err: err}
	}
	if err := c.journal.Append(buf.Bytes()); err != nil {
		return &journalError{err: err}
	}
	return nil
}

// applyLocked applies one journal record to in-memory state. It is the
// single transition function shared by the live path and replay.
func (c *Coordinator) applyLocked(rec *journalRecord) error {
	switch rec.Kind {
	case recHeader:
		if rec.Attempt != journalVersion {
			return fmt.Errorf("sweep: journal version %d (this binary speaks %d)", rec.Attempt, journalVersion)
		}
	case recSweep:
		c.applySweepLocked(rec.SweepID, rec.ItemIDs, rec.Items)
	case recDone:
		c.applyDoneLocked(rec.ItemID, rec.Attempt, rec.Worker, rec.Run)
	case recFail:
		c.applyFailLocked(rec.ItemID, rec.Attempt, rec.Worker, rec.Msg, rec.Transient)
	case recCkpt:
		c.applyCkptLocked(rec.ItemID, rec.Attempt, rec.Checkpoint)
	case recCancel:
		c.applyCancelLocked(rec.SweepID)
	default:
		return fmt.Errorf("sweep: unknown journal record kind %q", rec.Kind)
	}
	return nil
}

func (c *Coordinator) applySweepLocked(sweepID string, ids []string, items []Item) {
	sw := &sweepState{id: sweepID, order: ids}
	c.sweeps[sweepID] = sw
	c.sweepSeq++
	for i, id := range ids {
		it := c.items[id]
		if it == nil {
			it = &trackedItem{id: id, item: items[i], sweeps: make(map[string]bool), state: statePending}
			c.items[id] = it
			c.pushBackLocked(it)
		}
		it.sweeps[sweepID] = true
		// A pending item parked by a cancellation rejoins the queue
		// when a new sweep asks for it again.
		if it.state == statePending && !it.queued {
			c.pushBackLocked(it)
		}
	}
}

func (c *Coordinator) applyDoneLocked(itemID string, attempt int, worker string, run *stats.Run) {
	it := c.items[itemID]
	if it == nil || it.state == stateDone || run == nil {
		return
	}
	c.dropLeaseLocked(it)
	it.state = stateDone
	it.attempt = attempt
	it.worker = worker
	it.run = run
	it.fingerprint = Fingerprint(run)
	it.queued = false
	it.ckpt = nil
	it.errMsg = ""
}

func (c *Coordinator) applyFailLocked(itemID string, attempt int, worker, msg string, transient bool) {
	it := c.items[itemID]
	if it == nil || it.state == stateDone || it.state == stateFailed {
		return
	}
	c.dropLeaseLocked(it)
	it.worker = worker
	if transient && attempt+1 < c.opt.MaxAttempts {
		// Retry under the next derived seed after backoff. The old
		// checkpoint describes the old seed's trajectory and is
		// useless now — drop it.
		it.attempt = attempt + 1
		it.ckpt = nil
		it.ckptCycle = 0
		it.notBefore = c.opt.Now().Add(experiments.RetryBackoff(it.attempt))
		it.state = statePending
		c.retried++
		if !it.queued {
			c.pushBackLocked(it)
		}
		return
	}
	it.state = stateFailed
	it.attempt = attempt
	it.errMsg = msg
	it.queued = false
}

func (c *Coordinator) applyCkptLocked(itemID string, attempt int, frame []byte) {
	it := c.items[itemID]
	if it == nil || it.state == stateDone || it.state == stateFailed || attempt != it.attempt {
		return
	}
	ck, err := checkpoint.DecodeBytes(frame)
	if err != nil {
		return // torn or stale frame: ignore, never corrupt the resume point
	}
	if it.ckpt != nil && it.ckptAttempt == attempt && ck.Cycle <= it.ckptCycle {
		return // out-of-order (delayed/duplicated) heartbeat
	}
	it.ckpt = frame
	it.ckptAttempt = attempt
	it.ckptCycle = ck.Cycle
}

func (c *Coordinator) applyCancelLocked(sweepID string) {
	sw := c.sweeps[sweepID]
	if sw == nil || sw.canceled {
		return
	}
	sw.canceled = true
	for _, id := range sw.order {
		it := c.items[id]
		if it == nil || it.state != statePending {
			continue // leased items finish; their results stay reusable
		}
		wanted := false
		for sid := range it.sweeps {
			if s := c.sweeps[sid]; s != nil && !s.canceled {
				wanted = true
				break
			}
		}
		if !wanted {
			it.queued = false // lazily dropped from the queue
		}
	}
}

// Queue helpers. The queue stores item IDs; the queued flag on the item
// is authoritative, so lazy removal is just clearing the flag.

func (c *Coordinator) pushBackLocked(it *trackedItem) {
	c.queue = append(c.queue, it.id)
	it.queued = true
}

func (c *Coordinator) pushFrontLocked(it *trackedItem) {
	c.queue = append([]string{it.id}, c.queue...)
	it.queued = true
}

func (c *Coordinator) dropLeaseLocked(it *trackedItem) {
	if it.lease != nil {
		delete(c.leases, it.lease.id)
		it.lease = nil
	}
}

// expireLocked revokes every lease whose deadline has passed and
// re-queues the item AT THE FRONT, same attempt, checkpoint intact: the
// successor resumes the dead worker's run from its last streamed frame.
func (c *Coordinator) expireLocked(now time.Time) {
	for id, itemID := range c.leases {
		it := c.items[itemID]
		if it == nil || it.lease == nil || it.lease.id != id {
			delete(c.leases, id)
			continue
		}
		if now.After(it.lease.deadline) {
			c.opt.Log.Printf("sweep: lease %d on %s (worker %s) expired; reassigning at attempt %d from checkpoint cycle %d",
				id, itemID, it.lease.worker, it.attempt, it.ckptCycle)
			delete(c.leases, id)
			it.lease = nil
			it.state = statePending
			c.reassigned++
			if !it.queued {
				c.pushFrontLocked(it)
			}
		}
	}
}

func (c *Coordinator) touchWorkerLocked(name string, now time.Time) {
	if name != "" {
		c.workers[name] = now
	}
}

// Submit registers a manifest as one sweep. Every item is validated
// and content-addressed; addresses already known (from this manifest
// or any earlier sweep, finished or not) are shared, not re-queued.
func (c *Coordinator) Submit(items []Item) (SubmitResponse, error) {
	if len(items) == 0 {
		return SubmitResponse{}, fmt.Errorf("sweep: empty manifest")
	}
	ids := make([]string, 0, len(items))
	defs := make([]Item, 0, len(items))
	seen := make(map[string]bool)
	for _, it := range items {
		if err := it.Validate(); err != nil {
			return SubmitResponse{}, err
		}
		id, err := it.ID()
		if err != nil {
			return SubmitResponse{}, err
		}
		if seen[id] {
			continue
		}
		seen[id] = true
		ids = append(ids, id)
		defs = append(defs, it)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	sweepID := fmt.Sprintf("s%03d", c.sweepSeq+1)
	deduped := 0
	for _, id := range ids {
		if c.items[id] != nil {
			deduped++
		}
	}
	rec := &journalRecord{Kind: recSweep, SweepID: sweepID, ItemIDs: ids, Items: defs}
	if err := c.appendLocked(rec); err != nil {
		return SubmitResponse{}, err
	}
	c.applySweepLocked(sweepID, ids, defs)
	c.opt.Log.Printf("sweep: %s submitted: %d items (%d shared with earlier sweeps)", sweepID, len(ids), deduped)
	return SubmitResponse{SweepID: sweepID, Total: len(ids), Deduped: deduped}, nil
}

// Lease hands the next eligible queued item to a worker.
func (c *Coordinator) Lease(req LeaseRequest) LeaseResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opt.Now()
	c.touchWorkerLocked(req.Worker, now)
	c.expireLocked(now)

	retryAfter := c.opt.LeaseTTL / 5
	for i := 0; i < len(c.queue); i++ {
		it := c.items[c.queue[i]]
		if it == nil || !it.queued || it.state != statePending {
			// Lazily compact entries whose items left the queue
			// (completed by a zombie, canceled, or re-queued elsewhere).
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			i--
			continue
		}
		if it.notBefore.After(now) {
			if wait := it.notBefore.Sub(now); wait < retryAfter {
				retryAfter = wait
			}
			continue // backoff gate: stays queued, in order
		}
		c.queue = append(c.queue[:i], c.queue[i+1:]...)
		it.queued = false
		c.leaseSeq++
		it.lease = &lease{id: c.leaseSeq, worker: req.Worker, deadline: now.Add(c.opt.LeaseTTL)}
		it.state = stateLeased
		it.worker = req.Worker
		c.leases[c.leaseSeq] = it.id
		c.leasesGranted++
		resp := LeaseResponse{
			OK:      true,
			LeaseID: c.leaseSeq,
			ItemID:  it.id,
			Item:    it.item,
			Attempt: it.attempt,
			TTLMs:   c.opt.LeaseTTL.Milliseconds(),
		}
		if it.ckpt != nil && it.ckptAttempt == it.attempt {
			resp.Checkpoint = it.ckpt
			c.opt.Log.Printf("sweep: lease %d: %s -> %s (attempt %d, resume from cycle %d)",
				c.leaseSeq, it.id, req.Worker, it.attempt, it.ckptCycle)
		} else {
			c.opt.Log.Printf("sweep: lease %d: %s -> %s (attempt %d, fresh)", c.leaseSeq, it.id, req.Worker, it.attempt)
		}
		return resp
	}
	if retryAfter < 10*time.Millisecond {
		retryAfter = 10 * time.Millisecond
	}
	return LeaseResponse{OK: false, RetryAfterMs: retryAfter.Milliseconds()}
}

// Heartbeat extends a lease and absorbs the holder's latest checkpoint
// frame. OK=false means the lease is gone (expired or the item
// finished elsewhere) and the worker must abandon the item.
func (c *Coordinator) Heartbeat(req HeartbeatRequest) (HeartbeatResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opt.Now()
	c.touchWorkerLocked(req.Worker, now)
	c.expireLocked(now)

	itemID, ok := c.leases[req.LeaseID]
	if !ok {
		return HeartbeatResponse{}, nil
	}
	it := c.items[itemID]
	if it == nil || it.lease == nil || it.lease.id != req.LeaseID {
		return HeartbeatResponse{}, nil
	}
	it.lease.deadline = now.Add(c.opt.LeaseTTL)
	if len(req.Checkpoint) > 0 {
		if err := c.acceptCkptLocked(it, req.Checkpoint); err != nil {
			return HeartbeatResponse{}, err
		}
	}
	return HeartbeatResponse{OK: true}, nil
}

// acceptCkptLocked validates a streamed frame against the item's
// current attempt configuration before journaling it: a torn frame, a
// stale frame from an earlier attempt, or one that rewinds the resume
// cycle is discarded (not an error — the chaos transport manufactures
// all three).
func (c *Coordinator) acceptCkptLocked(it *trackedItem, frame []byte) error {
	ck, err := checkpoint.DecodeBytes(frame)
	if err != nil {
		return nil
	}
	cfg, err := it.item.SimConfig(it.attempt)
	if err != nil || checkpoint.ConfigHash(cfg) != ck.ConfigHash {
		return nil
	}
	if it.ckpt != nil && it.ckptAttempt == it.attempt && ck.Cycle <= it.ckptCycle {
		return nil
	}
	rec := &journalRecord{Kind: recCkpt, ItemID: it.id, Attempt: it.attempt, Checkpoint: frame}
	if err := c.appendLocked(rec); err != nil {
		return err
	}
	c.applyCkptLocked(it.id, it.attempt, frame)
	return nil
}

// Complete records a finished run. First completion wins and is
// idempotent: duplicated deliveries, retries after lost replies, and
// zombie workers whose leases already expired all land here, and the
// engine's determinism makes every one of their runs equally valid.
func (c *Coordinator) Complete(req CompleteRequest) (CompleteResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opt.Now()
	c.touchWorkerLocked(req.Worker, now)
	c.expireLocked(now)

	it := c.items[req.ItemID]
	if it == nil {
		return CompleteResponse{}, fmt.Errorf("sweep: complete for unknown item %q", req.ItemID)
	}
	if it.state == stateDone {
		return CompleteResponse{OK: true}, nil
	}
	if req.Run == nil {
		return CompleteResponse{}, fmt.Errorf("sweep: complete for %s carries no run", req.ItemID)
	}
	rec := &journalRecord{Kind: recDone, ItemID: req.ItemID, Attempt: req.Attempt, Worker: req.Worker, Run: req.Run}
	if err := c.appendLocked(rec); err != nil {
		return CompleteResponse{}, err
	}
	c.applyDoneLocked(req.ItemID, req.Attempt, req.Worker, req.Run)
	c.opt.Log.Printf("sweep: %s done by %s (attempt %d, fingerprint %016x)", req.ItemID, req.Worker, req.Attempt, it.fingerprint)
	return CompleteResponse{OK: true}, nil
}

// Fail records a failed run. Only the current lease holder's report
// acts (stale reports from revoked leases are acknowledged and
// ignored); transient failures retry with the next derived seed after
// bounded exponential backoff, permanent ones fail the item.
func (c *Coordinator) Fail(req FailRequest) (FailResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opt.Now()
	c.touchWorkerLocked(req.Worker, now)
	c.expireLocked(now)

	it := c.items[req.ItemID]
	if it == nil || it.state == stateDone || it.state == stateFailed {
		return FailResponse{OK: true}, nil
	}
	if it.lease == nil || it.lease.id != req.LeaseID || req.Attempt != it.attempt {
		return FailResponse{OK: true}, nil // stale: the lease was reassigned
	}
	rec := &journalRecord{Kind: recFail, ItemID: req.ItemID, Attempt: req.Attempt, Worker: req.Worker, Msg: req.Msg, Transient: req.Transient}
	if err := c.appendLocked(rec); err != nil {
		return FailResponse{}, err
	}
	c.applyFailLocked(req.ItemID, req.Attempt, req.Worker, req.Msg, req.Transient)
	if it.state == statePending {
		c.opt.Log.Printf("sweep: %s attempt %d failed transiently (%s); retrying as attempt %d after backoff",
			req.ItemID, req.Attempt, req.Msg, it.attempt)
	} else {
		c.opt.Log.Printf("sweep: %s failed permanently after attempt %d: %s", req.ItemID, req.Attempt, req.Msg)
	}
	return FailResponse{OK: true}, nil
}

// Cancel cancels a sweep: pending items no other live sweep wants leave
// the queue; leased items run to completion (their results remain
// reusable by future sweeps).
func (c *Coordinator) Cancel(req CancelRequest) (CancelResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sw := c.sweeps[req.SweepID]
	if sw == nil {
		return CancelResponse{}, fmt.Errorf("sweep: unknown sweep %q", req.SweepID)
	}
	if sw.canceled {
		return CancelResponse{OK: true}, nil
	}
	rec := &journalRecord{Kind: recCancel, SweepID: req.SweepID}
	if err := c.appendLocked(rec); err != nil {
		return CancelResponse{}, err
	}
	c.applyCancelLocked(req.SweepID)
	c.opt.Log.Printf("sweep: %s canceled", req.SweepID)
	return CancelResponse{OK: true}, nil
}

// Status reports coordinator state. Calling it also drives lease
// expiry, so a sweep with dead workers makes progress even while only
// being watched.
func (c *Coordinator) Status(req StatusRequest) (StatusResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opt.Now()
	c.expireLocked(now)

	var resp StatusResponse
	horizon := now.Add(-3 * c.opt.LeaseTTL)
	for _, last := range c.workers {
		if last.After(horizon) {
			resp.AliveWorkers++
		}
	}
	resp.LeasesGranted = c.leasesGranted
	resp.Reassigned = c.reassigned
	resp.Retried = c.retried

	ids := make([]string, 0, len(c.sweeps))
	for id := range c.sweeps {
		if req.SweepID == "" || req.SweepID == id {
			ids = append(ids, id)
		}
	}
	if req.SweepID != "" && len(ids) == 0 {
		return resp, fmt.Errorf("sweep: unknown sweep %q", req.SweepID)
	}
	sort.Strings(ids)
	for _, id := range ids {
		sw := c.sweeps[id]
		st := SweepStatus{ID: id, Canceled: sw.canceled, Total: len(sw.order)}
		for _, itemID := range sw.order {
			it := c.items[itemID]
			switch it.state {
			case stateDone:
				st.Done++
			case stateFailed:
				st.Failed++
			case stateLeased:
				st.Leased++
			default:
				st.Pending++
			}
			if req.WithResults {
				r := ItemResult{
					ItemID:          it.id,
					Item:            it.item,
					State:           it.state,
					Attempt:         it.attempt,
					Worker:          it.worker,
					CheckpointCycle: it.ckptCycle,
					Err:             it.errMsg,
					Fingerprint:     it.fingerprint,
					Run:             it.run,
				}
				st.Results = append(st.Results, r)
			}
		}
		resp.Sweeps = append(resp.Sweeps, st)
	}
	return resp, nil
}
