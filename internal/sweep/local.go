package sweep

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"sort"
	"text/tabwriter"
	"time"

	"github.com/gtsc-sim/gtsc/internal/checkpoint"
	"github.com/gtsc-sim/gtsc/internal/diag"
	"github.com/gtsc-sim/gtsc/internal/experiments"
)

// RunLocal executes a manifest serially in-process: the graceful-
// degradation path gtscctl takes when no coordinator is reachable, and
// the bit-identical reference the distributed path is measured against
// (identical items, identical attempt seeds, identical retry policy —
// only the scheduling differs, which the engine's determinism makes
// invisible). maxAttempts <= 0 gets the coordinator default.
func RunLocal(ctx context.Context, m Manifest, maxAttempts int, logger *log.Logger) ([]ItemResult, error) {
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	if maxAttempts <= 0 {
		maxAttempts = Options{}.withDefaults().MaxAttempts
	}
	var results []ItemResult
	seen := make(map[string]bool)
	for _, raw := range m.Items {
		it := raw.withDefaults()
		id, err := it.ID()
		if err != nil {
			return results, err
		}
		if seen[id] {
			continue // same content address: one execution, like the service
		}
		seen[id] = true
		res := ItemResult{ItemID: id, Item: it, Worker: "local"}
		for attempt := 0; ; attempt++ {
			res.Attempt = attempt
			if attempt > 0 {
				select {
				case <-ctx.Done():
					return results, context.Cause(ctx)
				case <-time.After(experiments.RetryBackoff(attempt)):
				}
			}
			cfg, err := it.SimConfig(attempt)
			if err != nil {
				return results, err
			}
			inst, err := it.Instance()
			if err != nil {
				return results, err
			}
			exec := checkpoint.NewExecution(cfg, inst, it.Workload, it.Scale)
			run, err := exec.Run(ctx)
			if err == nil {
				res.State = stateDone
				res.Run = run
				res.Fingerprint = Fingerprint(run)
				logger.Printf("sweep: local: %s done (attempt %d, fingerprint %016x)", id, attempt, res.Fingerprint)
				break
			}
			if errors.As(err, new(*diag.CanceledError)) {
				return results, err
			}
			var deadlock *diag.DeadlockError
			if errors.As(err, &deadlock) && it.FaultSeed != 0 && attempt+1 < maxAttempts {
				logger.Printf("sweep: local: %s attempt %d failed transiently (%v); retrying", id, attempt, err)
				continue
			}
			res.State = stateFailed
			res.Err = err.Error()
			logger.Printf("sweep: local: %s failed permanently: %v", id, err)
			break
		}
		results = append(results, res)
	}
	return results, nil
}

// PrintResults renders results as the deterministic table gtscctl
// prints for both the distributed and the local path — identical
// inputs produce byte-identical output, so the sweep smoke test can
// diff the two directly.
func PrintResults(w io.Writer, results []ItemResult) {
	sorted := append([]ItemResult(nil), results...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ItemID < sorted[j].ItemID })
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "ITEM\tVARIANT\tSTATE\tCYCLES\tINSTR\tFINGERPRINT")
	for _, r := range sorted {
		cycles, instr, fp := "-", "-", "-"
		if r.State == stateDone {
			if r.Run != nil {
				cycles = fmt.Sprintf("%d", r.Run.Cycles)
				instr = fmt.Sprintf("%d", r.Run.SM.InstrIssued)
			}
			fp = fmt.Sprintf("%016x", r.Fingerprint)
		}
		state := r.State
		if r.State == stateFailed && r.Err != "" {
			state = "failed!"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\n", r.ItemID, r.Item.Variant(), state, cycles, instr, fp)
	}
	tw.Flush()
}
