package sweep

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/gtsc-sim/gtsc/internal/checkpoint"
)

// localRef runs the manifest serially in-process and returns the
// reference fingerprint per item ID — the bit-identity yardstick every
// distributed scenario is measured against.
func localRef(t *testing.T, m Manifest) map[string]uint64 {
	t.Helper()
	results, err := RunLocal(context.Background(), m, 0, nil)
	if err != nil {
		t.Fatalf("local reference: %v", err)
	}
	ref := make(map[string]uint64, len(results))
	for _, r := range results {
		if r.State != stateDone {
			t.Fatalf("local reference item %s: %s (%s)", r.ItemID, r.State, r.Err)
		}
		ref[r.ItemID] = r.Fingerprint
	}
	return ref
}

// testManifest is a 2-workload x 2-variant grid on the tiny machine.
func testManifest(t *testing.T) Manifest {
	t.Helper()
	m, err := Grid([]string{"CC", "BH"}, []string{"gtsc-rc", "bl-rc"}, Item{NumSMs: 2, NumBanks: 2})
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	return m
}

// waitFinished polls the sweep through the client until nothing can
// make progress, returning its results.
func waitFinished(t *testing.T, client *Client, sweepID string, timeout time.Duration) SweepStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, err := client.Status(context.Background(), sweepID, true)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		if len(st.Sweeps) != 1 {
			t.Fatalf("status returned %d sweeps, want 1", len(st.Sweeps))
		}
		if st.Sweeps[0].Finished() {
			return st.Sweeps[0]
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s did not finish in %v: %+v", sweepID, timeout, st.Sweeps[0])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// assertMatchesRef fails unless every item completed with the
// reference fingerprint.
func assertMatchesRef(t *testing.T, sw SweepStatus, ref map[string]uint64) {
	t.Helper()
	if len(sw.Results) != len(ref) {
		t.Fatalf("sweep has %d results, reference has %d", len(sw.Results), len(ref))
	}
	for _, r := range sw.Results {
		want, ok := ref[r.ItemID]
		if !ok {
			t.Errorf("item %s not in the reference set", r.ItemID)
			continue
		}
		if r.State != stateDone {
			t.Errorf("item %s: state %s (%s), want done", r.ItemID, r.State, r.Err)
			continue
		}
		if r.Fingerprint != want {
			t.Errorf("item %s: fingerprint %016x != reference %016x — distributed execution diverged",
				r.ItemID, r.Fingerprint, want)
		}
	}
}

// startWorkers launches n workers against the URL, restarting any that
// exit, until the returned stop function is called.
func startWorkers(t *testing.T, url string, n int, slice uint64) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := string(rune('a' + i))
			for ctx.Err() == nil {
				w := &Worker{Name: name, Client: NewClient(url, nil), SliceCycles: slice}
				w.Run(ctx)
			}
		}(i)
	}
	return func() {
		cancel()
		wg.Wait()
	}
}

// TestDistributedSweepBitIdenticalToLocal is the basic service
// acceptance: a sweep sharded across two workers completes with
// results bit-identical to the serial in-process reference.
func TestDistributedSweepBitIdenticalToLocal(t *testing.T) {
	m := testManifest(t)
	ref := localRef(t, m)

	c := NewCoordinator(Options{LeaseTTL: 2 * time.Second})
	srv := httptest.NewServer(NewServer(c))
	defer srv.Close()
	stop := startWorkers(t, srv.URL, 2, 1500)
	defer stop()

	client := NewClient(srv.URL, nil)
	sub, err := client.Submit(context.Background(), m)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if sub.Total != len(m.Items) || sub.Deduped != 0 {
		t.Fatalf("submit = %+v, want %d fresh items", sub, len(m.Items))
	}
	sw := waitFinished(t, client, sub.SweepID, 30*time.Second)
	assertMatchesRef(t, sw, ref)
}

// TestWorkerDeathMidRunResumesBitIdentical is the kill acceptance
// gate: a worker that dies without a trace mid-run (the in-process
// analog of SIGKILL — it simply stops calling) loses its lease; the
// successor receives the dead worker's last streamed frame, resumes by
// verified deterministic replay, and the final result is bit-identical
// to an uninterrupted run.
func TestWorkerDeathMidRunResumesBitIdentical(t *testing.T) {
	it := testItem()
	m := Manifest{Items: []Item{it}}
	ref := localRef(t, m)

	c := NewCoordinator(Options{LeaseTTL: 200 * time.Millisecond})
	srv := httptest.NewServer(NewServer(c))
	defer srv.Close()
	victim := NewClient(srv.URL, nil)

	sub, err := victim.Submit(context.Background(), m)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	lr1, err := victim.Lease(context.Background(), "victim")
	if err != nil || !lr1.OK {
		t.Fatalf("victim lease = %+v, %v", lr1, err)
	}
	// The victim makes real progress and streams one frame…
	frame, cycle := makeFrame(t, it, 0, 3000)
	if hb, err := victim.Heartbeat(context.Background(), "victim", lr1.LeaseID, frame); err != nil || !hb.OK {
		t.Fatalf("victim heartbeat = %+v, %v", hb, err)
	}
	// …then dies: no fail report, no further heartbeats, nothing.

	// The successor polls until the expired lease is reassigned to it.
	successor := NewClient(srv.URL, nil)
	var lr2 LeaseResponse
	deadline := time.Now().Add(5 * time.Second)
	for {
		lr2, err = successor.Lease(context.Background(), "successor")
		if err != nil {
			t.Fatalf("successor lease: %v", err)
		}
		if lr2.OK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("expired lease never reassigned")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if lr2.ItemID != lr1.ItemID || lr2.Attempt != 0 {
		t.Fatalf("reassignment = %+v, want item %s at attempt 0", lr2, lr1.ItemID)
	}
	ck, err := checkpoint.DecodeBytes(lr2.Checkpoint)
	if err != nil || ck.Cycle != cycle {
		t.Fatalf("handoff frame = %v, %v; want the victim's cycle-%d frame", ck, err, cycle)
	}

	// The successor is a REAL worker finishing the item from the frame.
	w := &Worker{Name: "successor", Client: successor, SliceCycles: 1500}
	w.runItem(context.Background(), lr2)

	sw := waitFinished(t, successor, sub.SweepID, 30*time.Second)
	assertMatchesRef(t, sw, ref)
	res := sw.Results[0]
	if res.Worker != "successor" {
		t.Errorf("final holder = %q, want the successor", res.Worker)
	}
	st, err := successor.Status(context.Background(), "", false)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.Reassigned < 1 {
		t.Errorf("Reassigned = %d, want >= 1", st.Reassigned)
	}
}

// TestCoordinatorRestartMidSweep is the crash-recovery acceptance
// gate at the service level: the coordinator dies mid-sweep (clients
// see 5xx and retry), restarts from its journal, and the sweep
// completes bit-identically — finished items are never re-executed,
// in-flight ones resume from their streamed frames.
func TestCoordinatorRestartMidSweep(t *testing.T) {
	itA, itB := testItem(), testItemBL()
	m := Manifest{Items: []Item{itA, itB}}
	ref := localRef(t, m)
	idA, idB := mustID(t, itA), mustID(t, itB)
	path := t.TempDir() + "/gtscd.jrnl"

	// The handler indirection keeps one stable URL across the
	// coordinator's death and rebirth, like a restarting daemon on a
	// fixed port.
	type handlerBox struct{ h http.Handler }
	var handler atomic.Value // handlerBox
	down := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "coordinator restarting", http.StatusServiceUnavailable)
	})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(handlerBox).h.ServeHTTP(w, r)
	}))
	defer srv.Close()

	c1, err := OpenCoordinator(path, Options{LeaseTTL: time.Minute})
	if err != nil {
		t.Fatalf("open 1: %v", err)
	}
	handler.Store(handlerBox{NewServer(c1)})

	client := NewClient(srv.URL, nil)
	sub, err := client.Submit(context.Background(), m)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	lrA, err := client.Lease(context.Background(), "w1")
	if err != nil || !lrA.OK || lrA.ItemID != idA {
		t.Fatalf("lease A = %+v, %v", lrA, err)
	}
	frame, cycle := makeFrame(t, itA, 0, 3000)
	if _, err := client.Heartbeat(context.Background(), "w1", lrA.LeaseID, frame); err != nil {
		t.Fatalf("heartbeat: %v", err)
	}
	lrB, err := client.Lease(context.Background(), "w1")
	if err != nil || !lrB.OK || lrB.ItemID != idB {
		t.Fatalf("lease B = %+v, %v", lrB, err)
	}
	runB := makeRun(t, itB, 0)
	if _, err := client.Complete(context.Background(), "w1", lrB.LeaseID, idB, 0, runB); err != nil {
		t.Fatalf("complete B: %v", err)
	}

	// Crash: the server answers 503 while the coordinator is down. A
	// status call issued during the outage must ride it out on the
	// client's 5xx retry policy.
	handler.Store(handlerBox{down})
	if err := c1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	type statusResult struct {
		st  StatusResponse
		err error
	}
	during := make(chan statusResult, 1)
	go func() {
		cl := NewClient(srv.URL, nil)
		cl.Retries = 20
		st, err := cl.Status(context.Background(), sub.SweepID, true)
		during <- statusResult{st, err}
	}()
	time.Sleep(80 * time.Millisecond) // let the poller hit the outage

	c2, err := OpenCoordinator(path, Options{LeaseTTL: time.Minute})
	if err != nil {
		t.Fatalf("open 2: %v", err)
	}
	defer c2.Close()
	handler.Store(handlerBox{NewServer(c2)})

	res := <-during
	if res.err != nil {
		t.Fatalf("status during outage did not survive the restart: %v", res.err)
	}

	// Recovery: B is done with the pre-crash result, A resumes from the
	// pre-crash frame (the old lease died with the coordinator).
	sw := res.st.Sweeps[0]
	for _, r := range sw.Results {
		switch r.ItemID {
		case idB:
			if r.State != stateDone || r.Fingerprint != Fingerprint(runB) {
				t.Fatalf("B after restart = %+v, want pre-crash done result", r)
			}
		case idA:
			if r.State != statePending || r.CheckpointCycle != cycle {
				t.Fatalf("A after restart = state %s ckpt %d, want pending at cycle %d", r.State, r.CheckpointCycle, cycle)
			}
		}
	}
	lr2, err := client.Lease(context.Background(), "w2")
	if err != nil || !lr2.OK || lr2.ItemID != idA {
		t.Fatalf("post-restart lease = %+v, %v; want %s", lr2, err, idA)
	}
	if ck, err := checkpoint.DecodeBytes(lr2.Checkpoint); err != nil || ck.Cycle != cycle {
		t.Fatalf("post-restart frame = %v, %v; want cycle %d", ck, err, cycle)
	}
	w := &Worker{Name: "w2", Client: client, SliceCycles: 1500}
	w.runItem(context.Background(), lr2)

	sw = waitFinished(t, client, sub.SweepID, 10*time.Second)
	assertMatchesRef(t, sw, ref)
}

// TestLocalFallbackMatchesReference: the graceful-degradation path
// produces the same table the distributed path would.
func TestLocalFallbackMatchesReference(t *testing.T) {
	m := Manifest{Items: []Item{testItem(), testItem(), testItemBL()}} // duplicate collapses
	results, err := RunLocal(context.Background(), m, 0, nil)
	if err != nil {
		t.Fatalf("RunLocal: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("RunLocal returned %d results, want 2 (duplicate collapsed)", len(results))
	}
	ref := localRef(t, m)
	for _, r := range results {
		if r.Fingerprint != ref[r.ItemID] {
			t.Errorf("item %s: %016x != %016x", r.ItemID, r.Fingerprint, ref[r.ItemID])
		}
	}
}
