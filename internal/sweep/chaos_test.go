package sweep

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/gtsc-sim/gtsc/internal/fault"
)

// TestChaosTransportSweepBitIdentical drives a full sweep with EVERY
// wire — two workers and the control client — behind the chaos
// transport shim: requests dropped, replies lost after server
// execution, messages duplicated, responses delayed (reordering
// concurrent calls) and bodies torn mid-stream. The service must
// absorb all of it — retries, idempotent endpoints, lease
// reassignment — and still produce results bit-identical to the serial
// local reference. Run under -race this doubles as the data-race gate
// for the whole coordinator/worker/transport stack.
func TestChaosTransportSweepBitIdentical(t *testing.T) {
	m := testManifest(t)
	ref := localRef(t, m)

	c := NewCoordinator(Options{LeaseTTL: time.Second})
	srv := httptest.NewServer(NewServer(c))
	defer srv.Close()

	chaosClient := func(seed int64) *Client {
		cl := NewClient(srv.URL, fault.NewTransport(fault.ChaosTransport(seed), nil))
		cl.Retries = 12 // chaos loss rates make 8 straight failures plausible enough to flake
		return cl
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i, seed := range []int64{101, 202} {
		wg.Add(1)
		go func(i int, seed int64) {
			defer wg.Done()
			name := string(rune('a' + i))
			for ctx.Err() == nil {
				// A worker that loses the coordinator through the chaos
				// (retries exhausted) is itself a crash — restart it, as
				// the fleet's supervisor would.
				w := &Worker{Name: name, Client: chaosClient(seed + int64(100*i)), SliceCycles: 1500}
				w.Run(ctx)
			}
		}(i, seed)
	}
	defer wg.Wait()
	defer cancel()

	ctl := chaosClient(303)
	sub, err := ctl.Submit(context.Background(), m)
	if err != nil {
		t.Fatalf("submit through chaos: %v", err)
	}

	// Poll through the chaos transport too. Tolerate transient status
	// errors (a poll can exhaust its retries); only the deadline is
	// fatal.
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := ctl.Status(context.Background(), sub.SweepID, true)
		if err == nil && len(st.Sweeps) == 1 && st.Sweeps[0].Finished() {
			assertMatchesRef(t, st.Sweeps[0], ref)
			return
		}
		if time.Now().After(deadline) {
			if err != nil {
				t.Fatalf("sweep did not finish under chaos; last status error: %v", err)
			}
			t.Fatalf("sweep did not finish under chaos: %+v", st.Sweeps)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestChaosDuplicatedLeaseLeaksAreReclaimed pins the protocol-level
// consequence of a duplicated lease request: the duplicate execution
// grants a second lease nobody heartbeats, and TTL expiry reclaims it
// instead of stranding the item.
func TestChaosDuplicatedLeaseLeaksAreReclaimed(t *testing.T) {
	clock := newFakeNow()
	c := NewCoordinator(Options{LeaseTTL: time.Second, Now: clock.Now})
	if _, err := c.Submit([]Item{testItem(), testItemBL()}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	// The "duplicate": the same worker's lease request executes twice;
	// the worker only ever sees (and works) the second grant.
	leaked := c.Lease(LeaseRequest{Worker: "w"})
	worked := c.Lease(LeaseRequest{Worker: "w"})
	if !leaked.OK || !worked.OK {
		t.Fatalf("leases = %+v / %+v", leaked, worked)
	}
	// The worked lease stays heartbeat-extended; the leaked one expires.
	clock.Advance(600 * time.Millisecond)
	if hb, err := c.Heartbeat(HeartbeatRequest{Worker: "w", LeaseID: worked.LeaseID}); err != nil || !hb.OK {
		t.Fatalf("heartbeat = %+v, %v", hb, err)
	}
	clock.Advance(600 * time.Millisecond) // leaked deadline passed, worked still live
	reclaimed := c.Lease(LeaseRequest{Worker: "v"})
	if !reclaimed.OK || reclaimed.ItemID != leaked.ItemID {
		t.Fatalf("leaked lease not reclaimed: %+v, want %s", reclaimed, leaked.ItemID)
	}
}
