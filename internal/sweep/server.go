package sweep

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"net/http"
)

// API paths. One POST endpoint per protocol operation; bodies are gob
// both ways.
const (
	PathSubmit    = "/api/submit"
	PathLease     = "/api/lease"
	PathHeartbeat = "/api/heartbeat"
	PathComplete  = "/api/complete"
	PathFail      = "/api/fail"
	PathCancel    = "/api/cancel"
	PathStatus    = "/api/status"
)

// NewServer exposes a coordinator over HTTP. Error mapping is the
// contract the retrying client relies on: request errors (bad
// manifest, unknown sweep/item) are 4xx and terminal; journal failures
// are 5xx and retryable — the transition did not happen, so replaying
// the request is safe.
func NewServer(c *Coordinator) http.Handler {
	mux := http.NewServeMux()
	handle(mux, PathSubmit, func(req SubmitRequest) (SubmitResponse, error) { return c.Submit(req.Items) })
	handle(mux, PathLease, func(req LeaseRequest) (LeaseResponse, error) { return c.Lease(req), nil })
	handle(mux, PathHeartbeat, c.Heartbeat)
	handle(mux, PathComplete, c.Complete)
	handle(mux, PathFail, c.Fail)
	handle(mux, PathCancel, c.Cancel)
	handle(mux, PathStatus, c.Status)
	return mux
}

func handle[Req, Resp any](mux *http.ServeMux, path string, fn func(Req) (Resp, error)) {
	mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req Req
		if err := gob.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, fmt.Sprintf("undecodable request body: %v", err), http.StatusBadRequest)
			return
		}
		resp, err := fn(req)
		if err != nil {
			code := http.StatusBadRequest
			var je *journalError
			if errors.As(err, &je) {
				code = http.StatusInternalServerError
			}
			http.Error(w, err.Error(), code)
			return
		}
		// Encode to a buffer first: a failed encode must become a 500,
		// not a torn 200 the client would misread as transport chaos.
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&resp); err != nil {
			http.Error(w, fmt.Sprintf("response encode: %v", err), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/x-gob")
		w.Write(buf.Bytes())
	})
}
