package sweep

// Wire types of the coordinator/worker protocol. Bodies travel as gob
// (both ends are gtsc binaries; gob round-trips stats.Run bit-exactly,
// the property the experiments journal already relies on). Durations
// cross the wire as explicit milliseconds rather than absolute
// timestamps, so worker and coordinator clocks never need to agree.
//
// Every endpoint is IDEMPOTENT or safely replayable, because the chaos
// transport (fault.TransportConfig) duplicates and loses messages on
// purpose:
//
//   - a duplicated lease request leaks a lease nobody works on — it
//     expires and the item is reassigned;
//   - a duplicated or replayed complete finds the item already done
//     and reports success without rewriting anything;
//   - a lost complete reply makes the worker retry the same complete;
//   - heartbeats are pure extensions keyed by lease ID; stale ones
//     report OK=false and the zombie worker abandons the item.

import "github.com/gtsc-sim/gtsc/internal/stats"

// SubmitRequest asks the coordinator to run a manifest as one sweep.
type SubmitRequest struct {
	Items []Item
}

// SubmitResponse acknowledges a sweep. Deduped counts items that were
// already known to the content-addressed store (from this or any other
// sweep) — they may even be finished already.
type SubmitResponse struct {
	SweepID string
	Total   int // unique items in the sweep
	Deduped int // of which were already known (shared or done)
}

// LeaseRequest asks for one work item.
type LeaseRequest struct {
	Worker string
}

// LeaseResponse hands out a lease, or OK=false with a retry hint when
// no item is currently available.
type LeaseResponse struct {
	OK           bool
	RetryAfterMs int64

	LeaseID uint64
	ItemID  string
	Item    Item
	// Attempt selects the derived fault seed of this execution; it
	// advances only on transient-failure retries, never on
	// reassignment (a reassigned item CONTINUES the same attempt from
	// its checkpoint).
	Attempt int
	// TTLMs is the lease deadline interval: the worker must heartbeat
	// well within it or lose the lease.
	TTLMs int64
	// Checkpoint, when non-empty, is the last frame the previous
	// holder streamed back (checkpoint.Checkpoint bytes): the new
	// holder resumes by verified deterministic replay instead of
	// starting over blind.
	Checkpoint []byte
}

// HeartbeatRequest extends a lease and optionally streams the holder's
// latest checkpoint frame.
type HeartbeatRequest struct {
	Worker     string
	LeaseID    uint64
	Checkpoint []byte
}

// HeartbeatResponse: OK=false means the lease no longer exists (it
// expired and was reassigned, or the item completed elsewhere); the
// worker must abandon the item immediately.
type HeartbeatResponse struct {
	OK bool
}

// CompleteRequest reports a finished run. Results are accepted even
// from expired leases: the engine is deterministic per attempt, so a
// zombie's completed result is exactly as valid as its successor's.
type CompleteRequest struct {
	Worker  string
	LeaseID uint64
	ItemID  string
	Attempt int
	Run     *stats.Run
}

// CompleteResponse: OK=false only for unknown items or nil runs.
type CompleteResponse struct {
	OK bool
}

// FailRequest reports a failed run. Transient failures (fault-injected
// deadlocks) are retried by the coordinator with a derived seed after
// backoff; permanent ones fail the item.
type FailRequest struct {
	Worker    string
	LeaseID   uint64
	ItemID    string
	Attempt   int
	Msg       string
	Transient bool
}

// FailResponse acknowledges the report (stale reports are ignored but
// still acknowledged).
type FailResponse struct {
	OK bool
}

// CancelRequest cancels a sweep: its exclusively-held pending items
// leave the queue; leased items finish (their results stay reusable).
type CancelRequest struct {
	SweepID string
}

// CancelResponse acknowledges the cancellation.
type CancelResponse struct {
	OK bool
}

// StatusRequest asks for coordinator state; SweepID narrows to one
// sweep, WithResults attaches per-item results (runs included for
// done items).
type StatusRequest struct {
	SweepID     string
	WithResults bool
}

// StatusResponse is the coordinator's observable state.
type StatusResponse struct {
	// AliveWorkers counts workers heard from within 3 lease TTLs.
	AliveWorkers int
	// LeasesGranted / Reassigned / Retried count scheduling events
	// since this coordinator process started (they are observability
	// counters, deliberately not journaled).
	LeasesGranted int
	Reassigned    int
	Retried       int
	Sweeps        []SweepStatus
}

// SweepStatus summarizes one sweep.
type SweepStatus struct {
	ID       string
	Canceled bool
	Total    int
	Done     int
	Failed   int
	Leased   int
	Pending  int
	Results  []ItemResult
}

// Finished reports whether nothing in the sweep can still make
// progress.
func (s *SweepStatus) Finished() bool {
	return s.Canceled || s.Done+s.Failed == s.Total
}

// ItemResult is the externally visible state of one item.
type ItemResult struct {
	ItemID string
	Item   Item
	State  string // pending, leased, done, failed
	// Attempt is the current (or final) attempt index.
	Attempt int
	// Worker last held (or holds) the item.
	Worker string
	// CheckpointCycle is the cycle of the last streamed frame (0 =
	// none) — the coordinate a reassignment would resume from.
	CheckpointCycle uint64
	Err             string
	// Run and Fingerprint are set for done items (Run only when the
	// status request asked WithResults).
	Run         *stats.Run
	Fingerprint uint64
}
