// Package sweep is the fault-tolerant distributed sweep service: an
// HTTP coordinator (cmd/gtscd) shards a manifest of simulations across
// a worker fleet, and no worker death, network fault or coordinator
// crash may lose or corrupt a result.
//
// The design center is robustness, built from the resilience
// primitives the in-process experiment engine already proved out
// (PRs 1, 3–5):
//
//   - work items are handed out as LEASES with heartbeat-extended
//     deadlines; a worker that dies mid-run (missed heartbeats) has
//     its lease revoked and the item reassigned;
//   - workers stream internal/checkpoint frames back with each
//     heartbeat, so a reassigned item resumes by verified
//     deterministic replay from the last frame instead of losing the
//     coordinate entirely — and the digest proves the successor
//     reproduced the exact pre-death trajectory;
//   - the coordinator persists sweeps, completions, failures and
//     checkpoint frames through the CRC-framed append-only
//     checkpoint.Journal; a restart replays to the exact pre-crash
//     assignment state and never re-executes a finished run;
//   - results are content-addressed by config hash, so identical
//     items across concurrent sweeps are simulated once and shared;
//   - transient fault-injected failures retry with bounded
//     exponential backoff under per-attempt derived seeds, exactly
//     the experiments.Session semantics;
//   - the transport is chaos-tested through the injectable
//     fault.TransportConfig shim (drops, lost replies, duplicates,
//     delays, mid-stream disconnects), and every endpoint is
//     idempotent so replayed or lost messages cannot corrupt state;
//   - with no coordinator or workers reachable, gtscctl degrades
//     gracefully to local in-process execution (RunLocal) with a
//     warning — same manifest, bit-identical results.
//
// Determinism is the backbone: every simulation is hermetic and
// seed-stable, so a sweep that survives any number of worker kills,
// reassignments and coordinator restarts completes with results
// bit-identical to a serial local run (Fingerprint pins it).
package sweep

import (
	"fmt"
	"hash/fnv"

	"github.com/gtsc-sim/gtsc/internal/checkpoint"
	"github.com/gtsc-sim/gtsc/internal/experiments"
	"github.com/gtsc-sim/gtsc/internal/fault"
	"github.com/gtsc-sim/gtsc/internal/gpu"
	"github.com/gtsc-sim/gtsc/internal/memsys"
	"github.com/gtsc-sim/gtsc/internal/sim"
	"github.com/gtsc-sim/gtsc/internal/stats"
	"github.com/gtsc-sim/gtsc/internal/workload"
)

// Item is one simulation of a sweep manifest: a (workload, protocol,
// consistency, machine, fault plan) coordinate. Items are plain values
// so they serialize over the wire and into the coordinator journal,
// and two textually different items that assemble the same simulator
// configuration share one content address (see ID).
type Item struct {
	// Workload names a benchmark or microbenchmark (workload.ByName /
	// MicroByName).
	Workload string
	// Scale is the workload scale factor (0 = 1, the test size).
	Scale int
	// Protocol is gtsc, tc, bl, l1nc or dir.
	Protocol string
	// Consistency is rc, sc or tso.
	Consistency string
	// Lease overrides the selected protocol's lease (0 = default:
	// 10 logical for gtsc, 400 cycles for tc).
	Lease uint64
	// NumSMs/NumBanks describe the machine (0 = paper defaults 16/8).
	NumSMs   int
	NumBanks int
	// MaxCycles guards against non-convergence (0 = engine default).
	MaxCycles uint64
	// FaultSeed, when non-zero, runs the simulation under the chaos
	// fault-injection plan. It is the BASE seed: retry attempt n runs
	// under experiments.DeriveFaultSeed(FaultSeed, n), exactly like a
	// local session, so distributed retries stay bit-compatible.
	FaultSeed int64
}

func (it Item) withDefaults() Item {
	if it.Scale == 0 {
		it.Scale = 1
	}
	return it
}

// Instance resolves and builds the workload at the item's scale.
func (it Item) Instance() (*workload.Instance, error) {
	it = it.withDefaults()
	wl, ok := workload.ByName(it.Workload)
	if !ok {
		wl, ok = workload.MicroByName(it.Workload)
	}
	if !ok {
		return nil, fmt.Errorf("sweep: unknown workload %q", it.Workload)
	}
	if it.Protocol == "l1nc" && wl.NeedsCoherence {
		return nil, fmt.Errorf("sweep: workload %s requires coherence and is not runnable under l1nc", wl.Name)
	}
	return wl.Build(it.Scale), nil
}

// SimConfig assembles the simulator configuration of one attempt of
// the item. The attempt index only varies the derived fault seed; with
// fault injection off every attempt is identical. Every node — the
// original worker, a reassigned successor, the local fallback — builds
// the config from the item alone, which is what makes checkpoint
// handoff verifiable: checkpoint.ConfigHash of attempt n matches
// across processes.
func (it Item) SimConfig(attempt int) (sim.Config, error) {
	it = it.withDefaults()
	cfg := sim.DefaultConfig()
	if it.NumSMs > 0 {
		cfg.Mem.NumSMs = it.NumSMs
	}
	if it.NumBanks > 0 {
		cfg.Mem.NumBanks = it.NumBanks
	}
	if it.MaxCycles > 0 {
		cfg.MaxCycles = it.MaxCycles
	}
	switch it.Protocol {
	case "gtsc":
		cfg.Mem.Protocol = memsys.GTSC
		if it.Lease != 0 {
			cfg.Mem.GTSC.Lease = it.Lease
		}
	case "tc":
		cfg.Mem.Protocol = memsys.TC
		if it.Lease != 0 {
			cfg.Mem.TC.Lease = it.Lease
		}
	case "bl":
		cfg.Mem.Protocol = memsys.BL
	case "l1nc":
		cfg.Mem.Protocol = memsys.L1NC
	case "dir":
		cfg.Mem.Protocol = memsys.DIR
	default:
		return cfg, fmt.Errorf("sweep: unknown protocol %q", it.Protocol)
	}
	switch it.Consistency {
	case "rc", "":
		cfg.SM.Consistency = gpu.RC
	case "sc":
		cfg.SM.Consistency = gpu.SC
	case "tso":
		cfg.SM.Consistency = gpu.TSO
	default:
		return cfg, fmt.Errorf("sweep: unknown consistency %q", it.Consistency)
	}
	if it.FaultSeed != 0 {
		cfg.Mem.Fault = fault.Chaos(experiments.DeriveFaultSeed(it.FaultSeed, attempt))
	}
	return cfg, nil
}

// Validate resolves the item completely (workload and configuration),
// returning the first inconsistency. Submission validates every item
// before accepting a sweep, so workers only ever receive runnable work.
func (it Item) Validate() error {
	if _, err := it.Instance(); err != nil {
		return err
	}
	_, err := it.SimConfig(0)
	return err
}

// ID is the item's content address: the workload identity plus the
// checkpoint.ConfigHash of its base (attempt 0) configuration. Two
// items that would run the same simulation — even submitted by
// different sweeps, phrased with different default spellings — collide
// here, which is what dedupes the shared result store.
func (it Item) ID() (string, error) {
	it = it.withDefaults()
	cfg, err := it.SimConfig(0)
	if err != nil {
		return "", err
	}
	if _, err := it.Instance(); err != nil {
		return "", err
	}
	return fmt.Sprintf("%s.%d.%016x", it.Workload, it.Scale, checkpoint.ConfigHash(cfg)), nil
}

// Variant renders the protocol/consistency coordinate compactly
// ("gtsc-rc", "tc-sc l=100", "gtsc-rc seed=7").
func (it Item) Variant() string {
	s := it.Protocol + "-" + it.Consistency
	if it.Consistency == "" {
		s = it.Protocol + "-rc"
	}
	if it.Lease != 0 {
		s += fmt.Sprintf(" l=%d", it.Lease)
	}
	if it.FaultSeed != 0 {
		s += fmt.Sprintf(" seed=%d", it.FaultSeed)
	}
	return s
}

// Manifest is the ordered list of items one sweep requests. Duplicate
// items (same content address) are collapsed at submission, first
// occurrence wins the ordering.
type Manifest struct {
	Items []Item
}

// Grid builds the (workload x variant) cross product over a base item:
// variants are "proto-cons" strings ("gtsc-rc", "tc-sc"); base carries
// the shared machine/scale/fault knobs. Every cell is validated, so a
// grid that builds is a grid that runs.
func Grid(workloads, variants []string, base Item) (Manifest, error) {
	var m Manifest
	if len(workloads) == 0 || len(variants) == 0 {
		return m, fmt.Errorf("sweep: empty grid (%d workloads x %d variants)", len(workloads), len(variants))
	}
	for _, w := range workloads {
		for _, v := range variants {
			it := base
			it.Workload = w
			var ok bool
			it.Protocol, it.Consistency, ok = cutVariant(v)
			if !ok {
				return m, fmt.Errorf("sweep: malformed variant %q (want proto-cons, e.g. gtsc-rc)", v)
			}
			if err := it.Validate(); err != nil {
				return m, err
			}
			m.Items = append(m.Items, it)
		}
	}
	return m, nil
}

// cutVariant splits "gtsc-rc" into ("gtsc", "rc").
func cutVariant(v string) (proto, cons string, ok bool) {
	for i := 0; i < len(v); i++ {
		if v[i] == '-' {
			return v[:i], v[i+1:], i > 0 && i+1 < len(v)
		}
	}
	return "", "", false
}

// Fingerprint condenses a run's complete statistics to the FNV-1a hash
// the golden tables pin: two runs are bit-identical if and only if
// their fingerprints match. This is the currency of the service's
// correctness claim — a sweep that survived kills and reassignments
// must fingerprint identically to a serial local run.
func Fingerprint(run *stats.Run) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", *run)
	return h.Sum64()
}
