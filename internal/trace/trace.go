// Package trace captures the coherence messages crossing a simulated
// system's NoC as structured events — the machinery behind
// cmd/gtsctrace and a debugging aid for protocol work. A Tracer wraps
// the NoC delivery callbacks of an assembled memsys.System; every
// message is recorded (subject to an optional filter and cap) with the
// cycle it arrived.
package trace

import (
	"fmt"
	"io"

	"github.com/gtsc-sim/gtsc/internal/mem"
	"github.com/gtsc-sim/gtsc/internal/memsys"
)

// Direction tells which way an event traveled.
type Direction uint8

// Directions.
const (
	// ToL2 is a request from an L1 to a bank.
	ToL2 Direction = iota
	// ToL1 is a response from a bank to an L1.
	ToL1
)

// String names the direction.
func (d Direction) String() string {
	if d == ToL2 {
		return "->L2"
	}
	return "->L1"
}

// Event is one recorded message arrival.
type Event struct {
	Cycle  uint64
	Dir    Direction
	Type   mem.MsgType
	Block  mem.BlockAddr
	SM     int // the L1 side of the exchange
	Bank   int // the L2 side
	WTS    uint64
	RTS    uint64
	WarpTS uint64
	GWCT   uint64
	Flits  int
	Reset  bool
	Data   bool // carried a data payload
}

// String renders the event compactly.
func (e Event) String() string {
	s := fmt.Sprintf("cycle %6d %s %-10s %v sm%d bank%d %df",
		e.Cycle, e.Dir, e.Type, e.Block, e.SM, e.Bank, e.Flits)
	switch e.Type {
	case mem.BusRd:
		s += fmt.Sprintf(" wts=%d warp_ts=%d", e.WTS, e.WarpTS)
	case mem.BusWr, mem.BusAtom:
		s += fmt.Sprintf(" warp_ts=%d", e.WarpTS)
	case mem.BusFill, mem.BusWrAck, mem.BusAtomAck:
		s += fmt.Sprintf(" lease=[%d,%d]", e.WTS, e.RTS)
		if e.GWCT != 0 {
			s += fmt.Sprintf(" gwct=%d", e.GWCT)
		}
	case mem.BusRnw:
		s += fmt.Sprintf(" rts=%d", e.RTS)
	}
	if e.Reset {
		s += " RESET"
	}
	if e.Data {
		s += " +data"
	}
	return s
}

// Option configures a Tracer.
type Option func(*Tracer)

// WithBlock restricts tracing to one block.
func WithBlock(b mem.BlockAddr) Option {
	return func(t *Tracer) {
		prev := t.filter
		t.filter = func(m *mem.Msg) bool { return m.Block == b && (prev == nil || prev(m)) }
	}
}

// WithLimit caps the number of recorded events (0 = unlimited).
func WithLimit(n int) Option { return func(t *Tracer) { t.limit = n } }

// WithTypes restricts tracing to the given message types.
func WithTypes(types ...mem.MsgType) Option {
	set := map[mem.MsgType]bool{}
	for _, ty := range types {
		set[ty] = true
	}
	return func(t *Tracer) {
		prev := t.filter
		t.filter = func(m *mem.Msg) bool { return set[m.Type] && (prev == nil || prev(m)) }
	}
}

// Tracer records message arrivals on a system's NoC.
type Tracer struct {
	events []Event
	filter func(*mem.Msg) bool
	limit  int
	now    func() uint64
	counts map[mem.MsgType]int
}

// Attach wraps sys's delivery callbacks. now supplies the current
// cycle (typically Simulator.Now). Attach must run before the first
// Tick.
func Attach(sys *memsys.System, now func() uint64, opts ...Option) *Tracer {
	t := &Tracer{now: now, counts: map[mem.MsgType]int{}}
	for _, o := range opts {
		o(t)
	}
	origL2 := sys.Net.DeliverL2
	sys.Net.DeliverL2 = func(bank int, msg *mem.Msg) {
		t.record(ToL2, msg, msg.Src, bank)
		origL2(bank, msg)
	}
	origL1 := sys.Net.DeliverL1
	sys.Net.DeliverL1 = func(sm int, msg *mem.Msg) {
		t.record(ToL1, msg, sm, msg.Src)
		origL1(sm, msg)
	}
	return t
}

func (t *Tracer) record(dir Direction, msg *mem.Msg, sm, bank int) {
	t.counts[msg.Type]++
	if t.filter != nil && !t.filter(msg) {
		return
	}
	if t.limit > 0 && len(t.events) >= t.limit {
		return
	}
	t.events = append(t.events, Event{
		Cycle: t.now(), Dir: dir, Type: msg.Type, Block: msg.Block,
		SM: sm, Bank: bank, WTS: msg.WTS, RTS: msg.RTS, WarpTS: msg.WarpTS,
		GWCT: msg.GWCT, Flits: msg.Flits(), Reset: msg.Reset, Data: msg.Data != nil,
	})
}

// Events returns the recorded events in arrival order.
func (t *Tracer) Events() []Event { return t.events }

// Counts returns per-type message totals (unfiltered).
func (t *Tracer) Counts() map[mem.MsgType]int { return t.counts }

// Dump writes every recorded event to w.
func (t *Tracer) Dump(w io.Writer) {
	for _, e := range t.events {
		fmt.Fprintln(w, e.String())
	}
}

// Summary writes per-type totals to w in a stable order.
func (t *Tracer) Summary(w io.Writer) {
	order := []mem.MsgType{
		mem.BusRd, mem.BusWr, mem.BusAtom,
		mem.BusFill, mem.BusRnw, mem.BusWrAck, mem.BusAtomAck,
	}
	for _, ty := range order {
		if n := t.counts[ty]; n > 0 {
			fmt.Fprintf(w, "%-10s %d\n", ty, n)
		}
	}
}
