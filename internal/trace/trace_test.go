package trace

import (
	"bytes"
	"strings"
	"testing"

	"github.com/gtsc-sim/gtsc/internal/gpu"
	"github.com/gtsc-sim/gtsc/internal/mem"
	"github.com/gtsc-sim/gtsc/internal/memsys"
	"github.com/gtsc-sim/gtsc/internal/sim"
	"github.com/gtsc-sim/gtsc/internal/workload"
)

func traceRun(t *testing.T, opts ...Option) *Tracer {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Mem.Protocol = memsys.GTSC
	cfg.Mem.NumSMs = 4
	cfg.Mem.NumBanks = 2
	cfg.SM.Consistency = gpu.RC
	s := sim.New(cfg)
	tr := Attach(s.Sys, s.Now, opts...)
	wl, _ := workload.ByName("CC")
	if _, err := wl.Build(1).RunOn(s); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTracerRecordsProtocolMix(t *testing.T) {
	tr := traceRun(t)
	if len(tr.Events()) == 0 {
		t.Fatal("no events recorded")
	}
	counts := tr.Counts()
	for _, ty := range []mem.MsgType{mem.BusRd, mem.BusWr, mem.BusFill, mem.BusRnw, mem.BusWrAck} {
		if counts[ty] == 0 {
			t.Fatalf("expected %v traffic on CC under G-TSC", ty)
		}
	}
	// Events are in non-decreasing cycle order.
	var last uint64
	for _, e := range tr.Events() {
		if e.Cycle < last {
			t.Fatal("events out of order")
		}
		last = e.Cycle
	}
}

func TestTracerFilters(t *testing.T) {
	full := traceRun(t)
	someBlock := full.Events()[0].Block

	byBlock := traceRun(t, WithBlock(someBlock))
	if len(byBlock.Events()) == 0 {
		t.Fatal("block filter recorded nothing")
	}
	for _, e := range byBlock.Events() {
		if e.Block != someBlock {
			t.Fatalf("filter leaked block %v", e.Block)
		}
	}

	limited := traceRun(t, WithLimit(7))
	if len(limited.Events()) != 7 {
		t.Fatalf("limit not honoured: %d", len(limited.Events()))
	}
	// Counts keep counting past the cap.
	if limited.Counts()[mem.BusRd] <= 7 && limited.Counts()[mem.BusWr] <= 7 &&
		limited.Counts()[mem.BusRd]+limited.Counts()[mem.BusWr] <= 7 {
		t.Fatal("counts should be unfiltered")
	}

	typed := traceRun(t, WithTypes(mem.BusRnw))
	for _, e := range typed.Events() {
		if e.Type != mem.BusRnw {
			t.Fatalf("type filter leaked %v", e.Type)
		}
	}
	if len(typed.Events()) == 0 {
		t.Fatal("CC under G-TSC must produce renewals")
	}
}

func TestDumpAndSummary(t *testing.T) {
	tr := traceRun(t, WithLimit(5))
	var buf bytes.Buffer
	tr.Dump(&buf)
	if got := strings.Count(buf.String(), "\n"); got != 5 {
		t.Fatalf("dump lines: %d", got)
	}
	if !strings.Contains(buf.String(), "cycle") {
		t.Fatal("dump format wrong")
	}
	buf.Reset()
	tr.Summary(&buf)
	if !strings.Contains(buf.String(), "BusRd") {
		t.Fatal("summary missing BusRd")
	}
}

func TestEventString(t *testing.T) {
	cases := []Event{
		{Cycle: 5, Dir: ToL2, Type: mem.BusRd, Block: 3, WTS: 1, WarpTS: 9, Flits: 1},
		{Cycle: 6, Dir: ToL1, Type: mem.BusFill, Block: 3, WTS: 2, RTS: 12, Flits: 5, Data: true},
		{Cycle: 7, Dir: ToL1, Type: mem.BusRnw, Block: 3, RTS: 20, Flits: 1},
		{Cycle: 8, Dir: ToL1, Type: mem.BusWrAck, Block: 3, WTS: 13, RTS: 23, Reset: true, Flits: 1},
	}
	for _, e := range cases {
		s := e.String()
		if !strings.Contains(s, e.Type.String()) {
			t.Fatalf("missing type in %q", s)
		}
	}
	if !strings.Contains(cases[3].String(), "RESET") {
		t.Fatal("reset flag not rendered")
	}
	if !strings.Contains(cases[1].String(), "+data") {
		t.Fatal("data flag not rendered")
	}
}
