package cache

import (
	"testing"
	"testing/quick"

	"github.com/gtsc-sim/gtsc/internal/mem"
)

type meta struct {
	pinned bool
	tag    int
}

func TestArrayGeometryValidation(t *testing.T) {
	for _, bad := range []struct{ sets, ways int }{{0, 1}, {3, 1}, {4, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewArray(%d,%d) should panic", bad.sets, bad.ways)
				}
			}()
			NewArray[meta](bad.sets, bad.ways)
		}()
	}
	a := NewArray[meta](4, 2)
	if s, w := a.Geometry(); s != 4 || w != 2 {
		t.Fatalf("geometry %d/%d", s, w)
	}
}

func TestArrayInstallLookup(t *testing.T) {
	a := NewArray[meta](4, 2)
	if a.Lookup(5) != nil {
		t.Fatal("empty array must miss")
	}
	var data mem.Block
	data.Words[0] = 99
	v := a.Victim(5, nil)
	a.Install(v, 5, &data, 10)
	l := a.Lookup(5)
	if l == nil || l.Data.Words[0] != 99 || l.Addr != 5 {
		t.Fatal("lookup after install failed")
	}
	if a.CountValid() != 1 {
		t.Fatalf("valid=%d", a.CountValid())
	}
	a.Invalidate(l)
	if a.Lookup(5) != nil || a.CountValid() != 0 {
		t.Fatal("invalidate failed")
	}
}

func TestArrayLRUVictim(t *testing.T) {
	a := NewArray[meta](1, 2) // one set, two ways
	a.Install(a.Victim(1, nil), 1, nil, 10)
	a.Install(a.Victim(2, nil), 2, nil, 20)
	// Touch 1 so 2 becomes LRU.
	a.Touch(a.Lookup(1), 30)
	v := a.Victim(3, nil)
	if !v.Valid || v.Addr != 2 {
		t.Fatalf("LRU victim should be block 2, got %+v", v)
	}
}

func TestArrayVictimFiltering(t *testing.T) {
	a := NewArray[meta](1, 2)
	a.Install(a.Victim(1, nil), 1, nil, 10)
	a.Lookup(1).Meta.pinned = true
	a.Install(a.Victim(2, nil), 2, nil, 20)
	a.Lookup(2).Meta.pinned = true

	// All pinned: no victim — TC's inclusive replacement stall.
	if v := a.Victim(3, func(l *Line[meta]) bool { return !l.Meta.pinned }); v != nil {
		t.Fatalf("expected nil victim, got %+v", v)
	}
	a.Lookup(1).Meta.pinned = false
	v := a.Victim(3, func(l *Line[meta]) bool { return !l.Meta.pinned })
	if v == nil || v.Addr != 1 {
		t.Fatal("unpinned line must be chosen")
	}
}

func TestArraySetMapping(t *testing.T) {
	a := NewArray[meta](8, 1)
	// Same set index -> conflict; different -> no conflict.
	a.Install(a.Victim(0, nil), 0, nil, 1)
	a.Install(a.Victim(8, nil), 8, nil, 2) // maps to set 0 too
	if a.Lookup(0) != nil {
		t.Fatal("block 0 should have been evicted by block 8")
	}
	if a.Lookup(8) == nil {
		t.Fatal("block 8 must be present")
	}
}

func TestArrayForEach(t *testing.T) {
	a := NewArray[meta](4, 2)
	for i := mem.BlockAddr(0); i < 6; i++ {
		a.Install(a.Victim(i, nil), i, nil, uint64(i))
	}
	n := 0
	a.ForEach(func(l *Line[meta]) { n++ })
	if n != a.CountValid() || n == 0 {
		t.Fatalf("ForEach visited %d, valid %d", n, a.CountValid())
	}
}

// TestArrayNeverExceedsWays is a property test: after any sequence of
// installs, each set holds at most `ways` valid lines and Lookup finds
// the most recently installed block of each address.
func TestArrayNeverExceedsWays(t *testing.T) {
	f := func(addrs []uint16) bool {
		a := NewArray[meta](8, 2)
		now := uint64(0)
		for _, raw := range addrs {
			b := mem.BlockAddr(raw % 64)
			now++
			if a.Lookup(b) != nil {
				continue
			}
			a.Install(a.Victim(b, nil), b, nil, now)
		}
		counts := map[int]int{}
		a.ForEach(func(l *Line[meta]) { counts[a.SetIndex(l.Addr)]++ })
		for _, c := range counts {
			if c > 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMSHRBasics(t *testing.T) {
	m := NewMSHR[int](2)
	if m.Full() || m.Lookup(1) != nil {
		t.Fatal("fresh table state wrong")
	}
	e := m.Allocate(1)
	e.Waiters = append(e.Waiters, 10)
	if m.Lookup(1) != e || m.Len() != 1 {
		t.Fatal("lookup after allocate failed")
	}
	m.Allocate(2)
	if !m.Full() {
		t.Fatal("table should be full")
	}
	m.Release(1)
	if m.Full() || m.Lookup(1) != nil {
		t.Fatal("release failed")
	}
	n := 0
	m.ForEach(func(*MSHREntry[int]) { n++ })
	if n != 1 {
		t.Fatalf("ForEach visited %d", n)
	}
}

func TestMSHRRejectsBadAllocate(t *testing.T) {
	m := NewMSHR[int](1)
	if m.Allocate(1) == nil {
		t.Fatal("first allocate failed")
	}
	if m.Allocate(1) != nil {
		t.Fatal("duplicate allocate should return nil")
	}
	if m.Allocate(2) != nil {
		t.Fatal("allocate on full table should return nil")
	}
	if m.Cap() != 1 {
		t.Fatalf("Cap() = %d, want 1", m.Cap())
	}
}
