// Package cache provides the generic storage structures shared by
// every cache controller in the simulator: a set-associative tag/data
// array with pluggable per-line protocol metadata, LRU replacement
// with victim filtering (needed by TC's inclusive L2, which may only
// evict expired lines), and an MSHR table with request merging.
package cache

import (
	"fmt"

	"github.com/gtsc-sim/gtsc/internal/mem"
)

// Line is one cache line: the tag state owned by this package plus a
// protocol-defined metadata payload M (timestamps, lease expiry, lock
// bits, ...).
type Line[M any] struct {
	Valid   bool
	Addr    mem.BlockAddr
	Dirty   bool
	LastUse uint64 // for LRU
	Data    mem.Block
	Meta    M
}

// Array is a set-associative cache array.
type Array[M any] struct {
	sets  int
	ways  int
	lines []Line[M] // sets*ways, row-major by set
}

// NewArray builds an array with the given geometry. Sets must be a
// power of two.
func NewArray[M any](sets, ways int) *Array[M] {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: sets must be a positive power of two, got %d", sets))
	}
	if ways <= 0 {
		panic("cache: ways must be positive")
	}
	return &Array[M]{sets: sets, ways: ways, lines: make([]Line[M], sets*ways)}
}

// Geometry returns (sets, ways).
func (a *Array[M]) Geometry() (sets, ways int) { return a.sets, a.ways }

// SetIndex returns the set an address maps to.
func (a *Array[M]) SetIndex(b mem.BlockAddr) int { return int(uint64(b) & uint64(a.sets-1)) }

// Lookup returns the line holding block b, or nil on a tag miss. It
// does not touch LRU state; callers use Touch on a hit they consume.
func (a *Array[M]) Lookup(b mem.BlockAddr) *Line[M] {
	set := a.SetIndex(b)
	base := set * a.ways
	for i := 0; i < a.ways; i++ {
		l := &a.lines[base+i]
		if l.Valid && l.Addr == b {
			return l
		}
	}
	return nil
}

// Touch marks the line most-recently-used at time now.
func (a *Array[M]) Touch(l *Line[M], now uint64) { l.LastUse = now }

// Victim selects the line block b would replace: an invalid way if one
// exists, otherwise the least-recently-used line for which evictable
// returns true (evictable == nil accepts any line). It returns nil if
// every valid candidate is pinned — the replacement stall case of TC's
// inclusive L2.
func (a *Array[M]) Victim(b mem.BlockAddr, evictable func(*Line[M]) bool) *Line[M] {
	set := a.SetIndex(b)
	base := set * a.ways
	var lru *Line[M]
	for i := 0; i < a.ways; i++ {
		l := &a.lines[base+i]
		if !l.Valid {
			return l
		}
		if evictable != nil && !evictable(l) {
			continue
		}
		if lru == nil || l.LastUse < lru.LastUse {
			lru = l
		}
	}
	return lru
}

// Install places block b in line l with the given data, resetting the
// line's dirty bit and metadata to the zero value; the caller fills
// protocol metadata afterwards.
func (a *Array[M]) Install(l *Line[M], b mem.BlockAddr, data *mem.Block, now uint64) {
	var zero M
	l.Valid = true
	l.Addr = b
	l.Dirty = false
	l.LastUse = now
	l.Meta = zero
	if data != nil {
		l.Data = *data
	} else {
		l.Data = mem.Block{}
	}
}

// Invalidate clears the line.
func (a *Array[M]) Invalidate(l *Line[M]) {
	var zero M
	l.Valid = false
	l.Dirty = false
	l.Meta = zero
}

// ForEach calls fn on every valid line; fn may mutate the line.
// Used by flushes and by TC/G-TSC bulk operations (kernel-boundary
// flush, timestamp reset).
func (a *Array[M]) ForEach(fn func(*Line[M])) {
	for i := range a.lines {
		if a.lines[i].Valid {
			fn(&a.lines[i])
		}
	}
}

// CountValid returns the number of valid lines (test/debug helper).
func (a *Array[M]) CountValid() int {
	n := 0
	for i := range a.lines {
		if a.lines[i].Valid {
			n++
		}
	}
	return n
}
