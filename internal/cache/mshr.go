package cache

import "github.com/gtsc-sim/gtsc/internal/mem"

// MSHR is a miss-status holding register table. It tracks outstanding
// misses by block address and merges subsequent requests to the same
// block into the existing entry — the request-combining behaviour
// Section V-B of the paper analyzes. The waiter payload W is defined
// by each protocol (it typically carries the warp, its timestamp and
// the completion callback).
type MSHR[W any] struct {
	entries map[mem.BlockAddr]*MSHREntry[W]
	max     int
	// free recycles released entries together with their waiter
	// slices, whose capacity is the expensive part: the steady-state
	// miss path then allocates nothing. Bounded by max, since at most
	// max entries can ever be live.
	free []*MSHREntry[W]
}

// MSHREntry tracks one outstanding block miss and the requests merged
// into it.
type MSHREntry[W any] struct {
	Block   mem.BlockAddr
	Waiters []W
	// Issued reports whether a request for this block is in flight to
	// L2 (set on first send; renewals re-set it).
	Issued bool
	// InFlight counts outstanding read/renewal requests for this block
	// (used by controllers that must know exactly, e.g. G-TSC, where a
	// response can arrive while the line is locked and a later event
	// must decide whether to re-request).
	InFlight int
	// ReqID correlates the in-flight request with its response.
	ReqID uint64
}

// NewMSHR builds a table with capacity max entries (GPGPU-Sim default
// is 32 per L1).
func NewMSHR[W any](max int) *MSHR[W] {
	return &MSHR[W]{entries: make(map[mem.BlockAddr]*MSHREntry[W]), max: max}
}

// Lookup returns the entry for block b, or nil.
func (m *MSHR[W]) Lookup(b mem.BlockAddr) *MSHREntry[W] { return m.entries[b] }

// Full reports whether no new entry can be allocated.
func (m *MSHR[W]) Full() bool { return len(m.entries) >= m.max }

// Allocate creates an entry for block b. The caller must have checked
// Full and Lookup first; allocating a duplicate or overflowing returns
// nil, which the controller reports as a protocol error.
func (m *MSHR[W]) Allocate(b mem.BlockAddr) *MSHREntry[W] {
	if m.Full() {
		return nil
	}
	if _, ok := m.entries[b]; ok {
		return nil
	}
	var e *MSHREntry[W]
	if n := len(m.free); n > 0 {
		e = m.free[n-1]
		m.free[n-1] = nil
		m.free = m.free[:n-1]
		e.Block = b
	} else {
		e = &MSHREntry[W]{Block: b}
	}
	m.entries[b] = e
	return e
}

// Release frees the entry for block b and recycles it. The entry's
// waiter payloads are cleared so a parked completion callback is never
// pinned past its release.
func (m *MSHR[W]) Release(b mem.BlockAddr) {
	e, ok := m.entries[b]
	if !ok {
		return
	}
	delete(m.entries, b)
	clear(e.Waiters)
	e.Waiters = e.Waiters[:0]
	e.Issued = false
	e.InFlight = 0
	e.ReqID = 0
	m.free = append(m.free, e)
}

// Len returns the number of live entries.
func (m *MSHR[W]) Len() int { return len(m.entries) }

// Cap returns the table capacity.
func (m *MSHR[W]) Cap() int { return m.max }

// ForEach visits every live entry.
func (m *MSHR[W]) ForEach(fn func(*MSHREntry[W])) {
	for _, e := range m.entries {
		fn(e)
	}
}
