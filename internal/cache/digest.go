package cache

import (
	"fmt"
	"io"
	"sort"

	"github.com/gtsc-sim/gtsc/internal/mem"
)

// DigestInto writes a canonical rendering of every valid line: way
// position, tag, dirty bit, LRU stamp, protocol metadata and data.
// Lines are visited in array order (set-major), which is stable and
// identical across processes. The metadata payload M must be a plain
// value type (no pointers, maps or funcs) so its %+v rendering is
// process-independent — every protocol's meta in this codebase is.
func (a *Array[M]) DigestInto(w io.Writer) {
	for i := range a.lines {
		l := &a.lines[i]
		if !l.Valid {
			continue
		}
		fmt.Fprintf(w, "ln %d %#x d=%t u=%d m=%+v %x\n",
			i, uint64(l.Addr), l.Dirty, l.LastUse, l.Meta, l.Data.Words)
	}
}

// DigestInto writes a canonical rendering of the MSHR table in
// ascending block order. Waiter payloads carry completion callbacks
// (func values), which cannot be rendered process-independently; the
// digest therefore records the waiter count only. The waiters' effect
// on the machine is still covered: the warps they will wake are
// digested through the SM state, and replay reproduces the callbacks
// themselves.
func (m *MSHR[W]) DigestInto(w io.Writer) {
	if len(m.entries) == 0 {
		return
	}
	keys := make([]mem.BlockAddr, 0, len(m.entries))
	for b := range m.entries {
		keys = append(keys, b)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, b := range keys {
		e := m.entries[b]
		fmt.Fprintf(w, "mshr %#x w=%d iss=%t inf=%d id=%d\n",
			uint64(b), len(e.Waiters), e.Issued, e.InFlight, e.ReqID)
	}
}
