package energy

import (
	"testing"

	"github.com/gtsc-sim/gtsc/internal/stats"
)

func baseRun() *stats.Run {
	r := &stats.Run{Cycles: 1000}
	r.L1.TagProbes = 500
	r.L1.DataAccesses = 400
	r.L1.TSUpdates = 100
	r.L2.TagProbes = 200
	r.L2.DataAccesses = 150
	r.NoC.FlitsToL2 = 300
	r.NoC.FlitsToL1 = 700
	r.DRAM.Reads = 20
	r.DRAM.Writes = 5
	r.SM.InstrIssued = 900
	return r
}

func TestApplyProducesPositiveComponents(t *testing.T) {
	r := baseRun()
	Default().Apply(r)
	e := r.EnergyJ
	for name, v := range map[string]float64{
		"L1": e.L1, "L2": e.L2, "NoC": e.NoC, "DRAM": e.DRAM, "Core": e.Core,
	} {
		if v <= 0 {
			t.Fatalf("%s energy must be positive, got %g", name, v)
		}
	}
	if e.Total() <= 0 {
		t.Fatal("total must be positive")
	}
}

func TestEnergyScalesWithEvents(t *testing.T) {
	a := baseRun()
	b := baseRun()
	b.NoC.FlitsToL2 *= 10
	b.NoC.FlitsToL1 *= 10
	Default().Apply(a)
	Default().Apply(b)
	if b.EnergyJ.NoC <= a.EnergyJ.NoC {
		t.Fatal("NoC energy must grow with flits")
	}
	if b.EnergyJ.DRAM != a.EnergyJ.DRAM {
		t.Fatal("unrelated components must not change")
	}

	c := baseRun()
	c.Cycles *= 10
	Default().Apply(c)
	if c.EnergyJ.Total() <= a.EnergyJ.Total() {
		t.Fatal("static energy must grow with cycles")
	}
}

func TestDRAMDominatesPerEvent(t *testing.T) {
	m := Default()
	// Sanity on the constant hierarchy the analysis relies on: a DRAM
	// access costs orders of magnitude more than an SRAM access.
	if m.DRAMAccess < 100*m.L2DataAccess {
		t.Fatal("DRAM access must dwarf L2 access")
	}
	if m.L2DataAccess < m.L1DataAccess {
		t.Fatal("L2 access must cost at least an L1 access")
	}
	// Timestamp updates are cheap metadata writes.
	if m.L1TSUpdate >= m.L1DataAccess {
		t.Fatal("timestamp update must be cheaper than a data access")
	}
}
