// Package energy is the repository's stand-in for GPUWattch: it
// converts the event counts a run accumulates into joules using
// per-event and per-cycle constants.
//
// The constants below are synthetic but magnitude-plausible for a
// ~40nm-class GPU (the paper's GTX480-era setup): SRAM accesses cost
// tens of picojoules, NoC flits tens of picojoules, DRAM accesses tens
// of nanojoules, and static/constant power contributes tens of
// nanojoules per cycle across the chip. The paper's Figs 16–17 compare
// protocols *relative* to one another and to the no-L1 baseline; those
// ratios are driven by the event counts and the cycle count, which the
// simulator measures, not by the absolute constants. See DESIGN.md
// ("Substitutions").
package energy

import "github.com/gtsc-sim/gtsc/internal/stats"

// Model holds the energy constants, in joules per event or per cycle.
type Model struct {
	// L1 (per event)
	L1TagProbe   float64
	L1DataAccess float64
	L1TSUpdate   float64 // timestamp/lease metadata writes (G-TSC > TC)
	L1MSHROp     float64

	// L2 (per event)
	L2TagProbe   float64
	L2DataAccess float64

	// NoC (per flit)
	NoCFlit float64

	// DRAM (per block access)
	DRAMAccess float64

	// Core dynamic (per instruction issued)
	CoreInstr float64

	// Static power shares (per cycle, whole chip, split by component)
	StaticCore float64
	StaticL1   float64
	StaticL2   float64
	StaticNoC  float64
	StaticDRAM float64
}

// Default returns the model used by every experiment.
func Default() Model {
	const (
		pJ = 1e-12
		nJ = 1e-9
	)
	return Model{
		L1TagProbe:   8 * pJ,
		L1DataAccess: 35 * pJ,
		L1TSUpdate:   3 * pJ,
		L1MSHROp:     4 * pJ,
		L2TagProbe:   14 * pJ,
		L2DataAccess: 60 * pJ,
		NoCFlit:      26 * pJ,
		DRAMAccess:   20 * nJ,
		CoreInstr:    80 * pJ,
		StaticCore:   18 * nJ,
		StaticL1:     0.15 * nJ,
		StaticL2:     3 * nJ,
		StaticNoC:    2.5 * nJ,
		StaticDRAM:   6 * nJ,
	}
}

// Apply computes the energy breakdown for run and stores it in
// run.EnergyJ.
func (m Model) Apply(run *stats.Run) {
	cyc := float64(run.Cycles)
	l1 := float64(run.L1.TagProbes)*m.L1TagProbe +
		float64(run.L1.DataAccesses)*m.L1DataAccess +
		float64(run.L1.TSUpdates)*m.L1TSUpdate +
		float64(run.L1.MSHRMerges+run.L1.Misses())*m.L1MSHROp +
		cyc*m.StaticL1
	l2 := float64(run.L2.TagProbes)*m.L2TagProbe +
		float64(run.L2.DataAccesses)*m.L2DataAccess +
		cyc*m.StaticL2
	noc := float64(run.NoC.TotalFlits())*m.NoCFlit + cyc*m.StaticNoC
	dramE := float64(run.DRAM.Reads+run.DRAM.Writes)*m.DRAMAccess + cyc*m.StaticDRAM
	core := float64(run.SM.InstrIssued)*m.CoreInstr + cyc*m.StaticCore

	run.EnergyJ = stats.EnergyBreakdown{
		L1:   l1,
		L2:   l2,
		NoC:  noc,
		DRAM: dramE,
		Core: core,
		// Static is folded into each component above; the Static field
		// reports the total static share for breakdown displays.
		Static: 0,
	}
}
