// Package stats collects the counters the evaluation reports: cycles,
// stalls, cache hit/miss breakdowns, coherence traffic, DRAM accesses
// and the raw event counts the energy model converts to joules.
//
// Every component of the simulator owns one of the typed stat groups
// below and increments plain uint64 fields; the simulator is
// single-goroutine per run, so no synchronization is needed.
package stats

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// L1Stats counts events at one private (per-SM) L1 cache.
type L1Stats struct {
	Loads  uint64 // coalesced load accesses presented by the LDST unit
	Stores uint64 // coalesced store accesses presented by the LDST unit

	Hits        uint64 // load hits serviced locally
	MissCold    uint64 // tag miss (block absent)
	MissExpired uint64 // tag hit, lease/timestamp check failed (coherence miss)
	MissLocked  uint64 // tag hit, block locked by a pending store (update visibility)
	MSHRMerges  uint64 // loads merged into an existing MSHR entry
	MSHRStalls  uint64 // accesses rejected because the MSHR table was full

	Atomics      uint64 // atomic read-modify-writes forwarded to L2
	Renewals     uint64 // renewal requests sent (G-TSC)
	RenewalHits  uint64 // renewal responses that completed waiters without data
	Fills        uint64 // fill responses received
	WriteAcks    uint64 // store acknowledgements received
	SelfInval    uint64 // blocks self-invalidated on expiry (TC) or reset (G-TSC)
	InvsReceived uint64 // invalidations received (directory baseline)
	Writebacks   uint64 // dirty blocks written back (directory baseline)
	Flushes      uint64 // whole-cache flushes (kernel boundary, timestamp reset)
	TagProbes    uint64 // tag array lookups (energy)
	DataAccesses uint64 // data array reads/writes (energy)
	TSUpdates    uint64 // timestamp metadata updates (energy; G-TSC only)
}

// Misses returns the total load misses of any cause.
func (s *L1Stats) Misses() uint64 { return s.MissCold + s.MissExpired + s.MissLocked }

// Add accumulates other into s.
func (s *L1Stats) Add(o *L1Stats) {
	s.Loads += o.Loads
	s.Stores += o.Stores
	s.Hits += o.Hits
	s.MissCold += o.MissCold
	s.MissExpired += o.MissExpired
	s.MissLocked += o.MissLocked
	s.MSHRMerges += o.MSHRMerges
	s.MSHRStalls += o.MSHRStalls
	s.Atomics += o.Atomics
	s.Renewals += o.Renewals
	s.RenewalHits += o.RenewalHits
	s.Fills += o.Fills
	s.WriteAcks += o.WriteAcks
	s.SelfInval += o.SelfInval
	s.InvsReceived += o.InvsReceived
	s.Writebacks += o.Writebacks
	s.Flushes += o.Flushes
	s.TagProbes += o.TagProbes
	s.DataAccesses += o.DataAccesses
	s.TSUpdates += o.TSUpdates
}

// L2Stats counts events at one shared L2 cache bank.
type L2Stats struct {
	Reads         uint64 // BusRd requests processed
	Writes        uint64 // BusWr requests processed
	Atomics       uint64 // BusAtom read-modify-writes performed
	Hits          uint64
	Misses        uint64
	RenewalsSent  uint64 // dataless renewal responses (G-TSC)
	FillsSent     uint64 // data fill responses
	Evictions     uint64
	EvictStalls   uint64 // cycles a fill stalled because no victim was evictable (TC inclusion)
	WriteStalls   uint64 // cycles writes waited on unexpired leases (TC-Strong)
	WritebackDRAM uint64
	TagProbes     uint64
	DataAccesses  uint64
	TSResets      uint64 // timestamp overflow resets (G-TSC)

	// Directory-protocol traffic (invalidation baseline only).
	Invalidations uint64 // BusInv sent to sharers
	Recalls       uint64 // L2 evictions that had to recall L1 copies
}

// Add accumulates other into s.
func (s *L2Stats) Add(o *L2Stats) {
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.Atomics += o.Atomics
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.RenewalsSent += o.RenewalsSent
	s.FillsSent += o.FillsSent
	s.Evictions += o.Evictions
	s.EvictStalls += o.EvictStalls
	s.WriteStalls += o.WriteStalls
	s.WritebackDRAM += o.WritebackDRAM
	s.TagProbes += o.TagProbes
	s.DataAccesses += o.DataAccesses
	s.TSResets += o.TSResets
	s.Invalidations += o.Invalidations
	s.Recalls += o.Recalls
}

// NoCStats counts interconnect traffic. Flits are the unit the paper's
// Fig 15 normalizes; bytes are kept for sanity checks.
type NoCStats struct {
	MsgsToL2   uint64
	MsgsToL1   uint64
	FlitsToL2  uint64
	FlitsToL1  uint64
	BytesToL2  uint64
	BytesToL1  uint64
	QueueDelay uint64 // total cycles messages waited for a free port
}

// TotalFlits returns all flits moved in both directions.
func (s *NoCStats) TotalFlits() uint64 { return s.FlitsToL2 + s.FlitsToL1 }

// Add accumulates other into s.
func (s *NoCStats) Add(o *NoCStats) {
	s.MsgsToL2 += o.MsgsToL2
	s.MsgsToL1 += o.MsgsToL1
	s.FlitsToL2 += o.FlitsToL2
	s.FlitsToL1 += o.FlitsToL1
	s.BytesToL2 += o.BytesToL2
	s.BytesToL1 += o.BytesToL1
	s.QueueDelay += o.QueueDelay
}

// DRAMStats counts accesses at one memory partition.
type DRAMStats struct {
	Reads      uint64
	Writes     uint64
	BusyCycles uint64
	// Row-buffer outcomes (banked mode only).
	RowHits   uint64
	RowMisses uint64
}

// Add accumulates other into s.
func (s *DRAMStats) Add(o *DRAMStats) {
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.BusyCycles += o.BusyCycles
	s.RowHits += o.RowHits
	s.RowMisses += o.RowMisses
}

// SMStats counts per-SM pipeline behaviour; MemStallCycles is the Fig 13
// metric (cycles the SM had runnable work resident but every warp was
// blocked behind the memory system).
type SMStats struct {
	Cycles             uint64
	ActiveCycles       uint64 // cycles at least one instruction issued
	MemStallCycles     uint64
	FenceStallCycles   uint64
	BarrierStallCycles uint64
	InstrIssued        uint64
	LoadsIssued        uint64
	StoresIssued       uint64
	AtomicsIssued      uint64
	FencesIssued       uint64
	WarpsRetired       uint64
	CTAsRetired        uint64
}

// Add accumulates other into s.
func (s *SMStats) Add(o *SMStats) {
	s.Cycles += o.Cycles
	s.ActiveCycles += o.ActiveCycles
	s.MemStallCycles += o.MemStallCycles
	s.FenceStallCycles += o.FenceStallCycles
	s.BarrierStallCycles += o.BarrierStallCycles
	s.InstrIssued += o.InstrIssued
	s.LoadsIssued += o.LoadsIssued
	s.StoresIssued += o.StoresIssued
	s.AtomicsIssued += o.AtomicsIssued
	s.FencesIssued += o.FencesIssued
	s.WarpsRetired += o.WarpsRetired
	s.CTAsRetired += o.CTAsRetired
}

// Run aggregates every counter from one simulation run.
type Run struct {
	Kernel      string
	Protocol    string
	Consistency string
	Cycles      uint64

	SM   SMStats
	L1   L1Stats
	L2   L2Stats
	NoC  NoCStats
	DRAM DRAMStats

	EnergyJ EnergyBreakdown
}

// Accumulate adds o's counters into r (identity fields are left
// alone). Multi-kernel workloads sum per-kernel runs into one
// aggregate; partial-figure assembly sums whatever completed.
func (r *Run) Accumulate(o *Run) {
	r.Cycles += o.Cycles
	r.SM.Add(&o.SM)
	r.L1.Add(&o.L1)
	r.L2.Add(&o.L2)
	r.NoC.Add(&o.NoC)
	r.DRAM.Add(&o.DRAM)
	r.EnergyJ.L1 += o.EnergyJ.L1
	r.EnergyJ.L2 += o.EnergyJ.L2
	r.EnergyJ.NoC += o.EnergyJ.NoC
	r.EnergyJ.DRAM += o.EnergyJ.DRAM
	r.EnergyJ.Core += o.EnergyJ.Core
	r.EnergyJ.Static += o.EnergyJ.Static
}

// EnergyBreakdown holds joules per component, filled in by the energy model.
type EnergyBreakdown struct {
	L1     float64
	L2     float64
	NoC    float64
	DRAM   float64
	Core   float64
	Static float64
}

// Total returns whole-chip energy in joules.
func (e EnergyBreakdown) Total() float64 {
	return e.L1 + e.L2 + e.NoC + e.DRAM + e.Core + e.Static
}

// String renders a compact human-readable report of the run.
func (r *Run) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s/%s: %d cycles\n", r.Kernel, r.Protocol, r.Consistency, r.Cycles)
	fmt.Fprintf(&b, "  SM: issued=%d memStall=%d active=%d\n", r.SM.InstrIssued, r.SM.MemStallCycles, r.SM.ActiveCycles)
	fmt.Fprintf(&b, "  L1: loads=%d hits=%d missCold=%d missExp=%d renewals=%d\n",
		r.L1.Loads, r.L1.Hits, r.L1.MissCold, r.L1.MissExpired, r.L1.Renewals)
	fmt.Fprintf(&b, "  L2: reads=%d writes=%d hits=%d misses=%d wrStall=%d evStall=%d\n",
		r.L2.Reads, r.L2.Writes, r.L2.Hits, r.L2.Misses, r.L2.WriteStalls, r.L2.EvictStalls)
	fmt.Fprintf(&b, "  NoC: flits=%d  DRAM: rd=%d wr=%d\n", r.NoC.TotalFlits(), r.DRAM.Reads, r.DRAM.Writes)
	fmt.Fprintf(&b, "  Energy: %.3g J (L1 %.3g, NoC %.3g, DRAM %.3g)\n",
		r.EnergyJ.Total(), r.EnergyJ.L1, r.EnergyJ.NoC, r.EnergyJ.DRAM)
	return b.String()
}

// Histogram is a simple integer histogram used by ancillary analyses
// (e.g. lease-extension distance, MSHR occupancy).
type Histogram struct {
	buckets map[uint64]uint64
	total   uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{buckets: make(map[uint64]uint64)} }

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.buckets[v]++
	h.total++
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.total }

// DigestInto writes the histogram's contents in ascending bucket
// order — a canonical rendering for checkpoint state digests.
func (h *Histogram) DigestInto(w io.Writer) {
	if h.total == 0 {
		return
	}
	keys := make([]uint64, 0, len(h.buckets))
	for v := range h.buckets {
		keys = append(keys, v)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	fmt.Fprintf(w, "hist n=%d", h.total)
	for _, v := range keys {
		fmt.Fprintf(w, " %d:%d", v, h.buckets[v])
	}
	fmt.Fprintln(w)
}

// Mean returns the sample mean (0 for an empty histogram).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum float64
	for v, n := range h.buckets {
		sum += float64(v) * float64(n)
	}
	return sum / float64(h.total)
}

// Percentile returns the smallest value v such that at least p (0..1)
// of the samples are <= v.
func (h *Histogram) Percentile(p float64) uint64 {
	if h.total == 0 {
		return 0
	}
	keys := make([]uint64, 0, len(h.buckets))
	for v := range h.buckets {
		keys = append(keys, v)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	need := uint64(p * float64(h.total))
	if need == 0 {
		need = 1
	}
	var seen uint64
	for _, v := range keys {
		seen += h.buckets[v]
		if seen >= need {
			return v
		}
	}
	return keys[len(keys)-1]
}
