package stats

import (
	"strings"
	"testing"
)

func TestL1Add(t *testing.T) {
	a := L1Stats{Loads: 1, Hits: 2, MissCold: 3, MissExpired: 4, MissLocked: 5, Renewals: 6}
	b := a
	a.Add(&b)
	if a.Loads != 2 || a.Hits != 4 || a.Misses() != 24 || a.Renewals != 12 {
		t.Fatalf("add wrong: %+v", a)
	}
}

func TestNoCTotals(t *testing.T) {
	n := NoCStats{FlitsToL2: 3, FlitsToL1: 4}
	if n.TotalFlits() != 7 {
		t.Fatal("total flits")
	}
	n.Add(&NoCStats{FlitsToL2: 1, MsgsToL1: 2})
	if n.FlitsToL2 != 4 || n.MsgsToL1 != 2 {
		t.Fatal("add wrong")
	}
}

func TestEnergyTotal(t *testing.T) {
	e := EnergyBreakdown{L1: 1, L2: 2, NoC: 3, DRAM: 4, Core: 5, Static: 6}
	if e.Total() != 21 {
		t.Fatal("total wrong")
	}
}

func TestRunString(t *testing.T) {
	r := Run{Kernel: "K", Protocol: "G-TSC", Consistency: "RC", Cycles: 123}
	s := r.String()
	for _, want := range []string{"K", "G-TSC", "RC", "123"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in %q", want, s)
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Percentile(0.5) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram behaviour")
	}
	for _, v := range []uint64{1, 2, 2, 3, 10} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatal("count")
	}
	if m := h.Mean(); m < 3.5 || m > 3.7 {
		t.Fatalf("mean %f", m)
	}
	if p := h.Percentile(0.5); p != 2 {
		t.Fatalf("p50 = %d", p)
	}
	if p := h.Percentile(1.0); p != 10 {
		t.Fatalf("p100 = %d", p)
	}
}

func TestSMAndL2Add(t *testing.T) {
	s := SMStats{Cycles: 1, MemStallCycles: 2, InstrIssued: 3}
	s.Add(&SMStats{Cycles: 10, MemStallCycles: 20, InstrIssued: 30, CTAsRetired: 1})
	if s.Cycles != 11 || s.MemStallCycles != 22 || s.InstrIssued != 33 || s.CTAsRetired != 1 {
		t.Fatal("SM add wrong")
	}
	l := L2Stats{Reads: 1, WriteStalls: 2}
	l.Add(&L2Stats{Reads: 4, WriteStalls: 5, EvictStalls: 6})
	if l.Reads != 5 || l.WriteStalls != 7 || l.EvictStalls != 6 {
		t.Fatal("L2 add wrong")
	}
	d := DRAMStats{Reads: 1}
	d.Add(&DRAMStats{Reads: 2, Writes: 3})
	if d.Reads != 3 || d.Writes != 3 {
		t.Fatal("DRAM add wrong")
	}
}
