// Package cli holds the process-level conventions every gtsc binary
// shares, so gtscsim, gtscbench, gtscd and gtscctl behave identically
// under signals instead of carrying per-binary copies:
//
//   - exit codes: 0 success, 1 failure, 3 graceful suspend (the run
//     was interrupted but left resumable state — a checkpoint, a
//     journal, a coordinator journal), 130 hard abort on a second
//     signal;
//   - SIGINT/SIGTERM handling: the first signal cancels the returned
//     context (in-flight work suspends at its next poll point), the
//     second exits immediately with ExitSecondSignal.
package cli

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

// Exit codes shared by every binary. CI and wrappers rely on the
// distinction: ExitInterrupted means "killed mid-run, resumable",
// ExitFailure means "broken".
const (
	ExitOK           = 0
	ExitFailure      = 1
	ExitInterrupted  = 3
	ExitSecondSignal = 130
)

// WithSignals derives a context that is canceled (with a cause
// wrapping context.Canceled) by the first SIGINT/SIGTERM; a second
// signal exits the process immediately with ExitSecondSignal. name
// prefixes the stderr notice. The returned stop function releases the
// signal handler and must be deferred.
func WithSignals(ctx context.Context, name string) (context.Context, func()) {
	ctx, cancel := context.WithCancelCause(ctx)
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		select {
		case sig := <-sigc:
			fmt.Fprintf(os.Stderr, "%s: caught %v; suspending gracefully (send again to abort hard)\n", name, sig)
			cancel(fmt.Errorf("caught signal %v: %w", sig, context.Canceled))
			select {
			case <-sigc:
				os.Exit(ExitSecondSignal)
			case <-done:
			}
		case <-done:
		}
	}()
	return ctx, func() {
		signal.Stop(sigc)
		close(done)
		cancel(nil)
	}
}
