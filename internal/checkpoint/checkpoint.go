// Package checkpoint makes long simulations killable and resumable.
//
// A checkpoint is NOT a serialized machine image. The simulator's
// kernels are execution-driven Go closures (programs compute addresses
// with captured functions; in-flight requests carry completion
// callbacks into warp state), so mid-flight state cannot be written to
// disk literally. What CAN be relied on is the engine's determinism:
// the same configuration and workload replayed in a fresh process
// passes through bit-identical machine states at every cycle (the
// property the 84-row golden-fingerprint table pins). A checkpoint
// therefore records a *coordinate* — workload identity, configuration
// hash, completed-kernel count and the global cycle — plus an FNV-1a
// digest of the complete machine state at that coordinate. Restore
// builds a fresh machine, deterministically replays to the recorded
// cycle, and verifies the digest before continuing: restore is not
// "approximately the same run", it is the same run, and the digest
// proves it (and catches misuse: wrong binary, wrong config, wrong
// workload, or a determinism regression).
//
// The package also provides the versioned binary codec for checkpoint
// files and the crash-safe append-only journal the experiments layer
// uses to persist completed runs (see Journal).
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"os"

	"github.com/gtsc-sim/gtsc/internal/sim"
)

// Checkpoint is the saved coordinate of a suspended execution.
type Checkpoint struct {
	// Workload and Scale identify what was running.
	Workload string
	Scale    int
	// ConfigHash pins the full simulator configuration (protocol,
	// consistency, geometry, leases, fault plan); restore refuses a
	// mismatched config rather than replay a different machine.
	ConfigHash uint64
	// KernelIndex counts kernels that had fully completed.
	KernelIndex int
	// Cycle is the global clock at suspension.
	Cycle uint64
	// Phase is "idle" (suspended between kernels), "run" or "drain".
	Phase string
	// Digest is the machine-state digest at the coordinate; restore
	// replays to Cycle and verifies it reproduced this exact state.
	Digest uint64
	// PauseCycles is every stop cycle this execution has paused at, in
	// order. Under the bit-exact engines a
	// pause is pure suspension and replay could ignore these; under
	// relaxed sync (SlackCycles > 0) a mid-window pause clamps the
	// current epoch, inserting an extra exchange that perturbs the
	// trajectory from that point on, so the replay must pause at every
	// cycle the original run paused at to pass through the same machine
	// states. Recording them unconditionally keeps restore one code
	// path for both.
	PauseCycles []uint64
}

// ConfigHash canonically hashes a simulator configuration. The
// Observer is excluded: it receives events but never feeds state back
// into the simulation, so it does not affect the run's trajectory.
// SimWorkers, DisableCycleSkip, Engine, DisableComponentWakes and
// ProfileLabels are excluded for the same reason — they schedule how
// the engine evaluates cycles (or annotate profiles), never what the
// machine computes, so a checkpoint taken at one worker count or under
// one cycle engine restores under any other
// (TestEngineCheckpointInterop pins both engine directions). Every
// other field of sim.Config is a plain value, so the rendering is
// process-independent.
//
// SlackCycles is excluded as a scheduling knob too, with one caveat:
// unlike the other excluded knobs, a nonzero slack changes the
// machine's cycle-by-cycle trajectory (boundedly, functionally
// equivalently — see sim/relaxed.go). A checkpoint records a state
// digest, and restore replays from cycle 0 under the restoring
// process's own config, so restoring a slack-N checkpoint under a
// different slack fails with ErrDigestMismatch rather than silently
// diverging. Restore under the same slack that took the checkpoint.
func ConfigHash(cfg sim.Config) uint64 {
	cfg.Observer = nil
	cfg.SimWorkers = 0
	cfg.DisableCycleSkip = false
	cfg.Engine = sim.EngineAuto
	cfg.DisableComponentWakes = false
	cfg.ProfileLabels = false
	cfg.SlackCycles = 0
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", cfg)
	return h.Sum64()
}

// Binary codec: magic, version, and a CRC-framed gob payload. The
// version gates decoding — a future layout bumps codecVersion and old
// binaries reject new files loudly instead of misreading them.
const (
	ckptMagic    = "GTSCCKPT"
	codecVersion = 2        // v2: appended PauseCycles (pause-schedule replay)
	maxFrame     = 64 << 20 // sanity bound on a frame length field
)

// ErrCorrupt reports that a checkpoint or journal frame failed its
// integrity check (bad magic, impossible length, CRC mismatch, or a
// torn tail).
var ErrCorrupt = errors.New("checkpoint: corrupt data")

// Encode writes the checkpoint to w in the versioned binary format.
func (ck *Checkpoint) Encode(w io.Writer) error {
	if _, err := io.WriteString(w, ckptMagic); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(codecVersion)); err != nil {
		return err
	}
	return writeFrame(w, ck.marshal())
}

// marshal renders the checkpoint payload. A hand-rolled fixed layout
// (not gob) keeps the format stable across Go versions and trivially
// versionable.
func (ck *Checkpoint) marshal() []byte {
	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ck.Workload)))
	buf = append(buf, ck.Workload...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(ck.Scale))
	buf = binary.LittleEndian.AppendUint64(buf, ck.ConfigHash)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(ck.KernelIndex))
	buf = binary.LittleEndian.AppendUint64(buf, ck.Cycle)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ck.Phase)))
	buf = append(buf, ck.Phase...)
	buf = binary.LittleEndian.AppendUint64(buf, ck.Digest)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ck.PauseCycles)))
	for _, p := range ck.PauseCycles {
		buf = binary.LittleEndian.AppendUint64(buf, p)
	}
	return buf
}

func (ck *Checkpoint) unmarshal(buf []byte) error {
	str := func() (string, bool) {
		if len(buf) < 4 {
			return "", false
		}
		n := binary.LittleEndian.Uint32(buf)
		buf = buf[4:]
		if uint32(len(buf)) < n {
			return "", false
		}
		s := string(buf[:n])
		buf = buf[n:]
		return s, true
	}
	u64 := func() (uint64, bool) {
		if len(buf) < 8 {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(buf)
		buf = buf[8:]
		return v, true
	}
	var ok bool
	if ck.Workload, ok = str(); !ok {
		return ErrCorrupt
	}
	scale, ok := u64()
	if !ok {
		return ErrCorrupt
	}
	ck.Scale = int(scale)
	if ck.ConfigHash, ok = u64(); !ok {
		return ErrCorrupt
	}
	ki, ok := u64()
	if !ok {
		return ErrCorrupt
	}
	ck.KernelIndex = int(ki)
	if ck.Cycle, ok = u64(); !ok {
		return ErrCorrupt
	}
	if ck.Phase, ok = str(); !ok {
		return ErrCorrupt
	}
	if ck.Digest, ok = u64(); !ok {
		return ErrCorrupt
	}
	if len(buf) < 4 {
		return ErrCorrupt
	}
	n := binary.LittleEndian.Uint32(buf)
	buf = buf[4:]
	if uint64(len(buf)) < uint64(n)*8 {
		return ErrCorrupt
	}
	if n > 0 {
		ck.PauseCycles = make([]uint64, n)
		for i := range ck.PauseCycles {
			ck.PauseCycles[i], _ = u64()
		}
	}
	return nil
}

// Decode reads a checkpoint written by Encode, validating magic,
// version and CRC.
func Decode(r io.Reader) (*Checkpoint, error) {
	magic := make([]byte, len(ckptMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("%w: short magic: %v", ErrCorrupt, err)
	}
	if string(magic) != ckptMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, magic)
	}
	var version uint32
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("%w: short version: %v", ErrCorrupt, err)
	}
	if version != codecVersion {
		return nil, fmt.Errorf("checkpoint: unsupported codec version %d (this binary speaks %d)", version, codecVersion)
	}
	payload, err := readFrame(r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("%w: missing payload frame", ErrCorrupt)
		}
		return nil, err
	}
	ck := &Checkpoint{}
	if err := ck.unmarshal(payload); err != nil {
		return nil, err
	}
	return ck, nil
}

// EncodeBytes renders the checkpoint in the versioned binary format —
// the frame a sweep worker streams to the coordinator with each
// heartbeat, so a reassigned lease can hand the successor the exact
// resume coordinate.
func (ck *Checkpoint) EncodeBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := ck.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeBytes reads a checkpoint rendered by EncodeBytes, validating
// magic, version and CRC — a truncated or bit-flipped frame reports
// ErrCorrupt rather than a bogus coordinate.
func DecodeBytes(b []byte) (*Checkpoint, error) {
	return Decode(bytes.NewReader(b))
}

// SaveFile atomically writes the checkpoint to path (tmp + rename), so
// a crash mid-write never leaves a torn checkpoint behind.
func (ck *Checkpoint) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := ck.Encode(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a checkpoint file written by SaveFile.
func LoadFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}

// writeFrame emits one length/CRC-framed payload.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, validating length and CRC. A clean end
// of input — zero bytes where the next frame would start — returns
// io.EOF untouched, so callers can tell "no more frames" from "torn
// frame" (any partial or corrupt frame reports ErrCorrupt).
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: short frame header: %v", ErrCorrupt, err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > maxFrame {
		return nil, fmt.Errorf("%w: frame length %d exceeds bound", ErrCorrupt, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: short frame payload: %v", ErrCorrupt, err)
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, fmt.Errorf("%w: frame CRC mismatch", ErrCorrupt)
	}
	return payload, nil
}
