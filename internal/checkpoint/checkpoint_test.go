package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func testCheckpoint() *Checkpoint {
	return &Checkpoint{
		Workload:    "CC",
		Scale:       3,
		ConfigHash:  0xDEADBEEFCAFEF00D,
		KernelIndex: 2,
		Cycle:       123456789,
		Phase:       "drain",
		Digest:      0x0123456789ABCDEF,
		PauseCycles: []uint64{1000, 65537, 123456789},
	}
}

func TestCheckpointCodecRoundTrip(t *testing.T) {
	ck := testCheckpoint()
	var buf bytes.Buffer
	if err := ck.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, ck) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, ck)
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.ckpt")
	ck := testCheckpoint()
	if err := ck.SaveFile(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !reflect.DeepEqual(got, ck) {
		t.Errorf("file round trip mismatch: got %+v want %+v", got, ck)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("temp file left behind: %v", err)
	}
}

// TestCheckpointDecodeCorruption proves every class of damage is
// rejected loudly instead of misread: bad magic, an unsupported
// version, a flipped payload bit (CRC), and truncation anywhere.
func TestCheckpointDecodeCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := testCheckpoint().Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	good := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[0] ^= 0xFF
		if _, err := Decode(bytes.NewReader(b)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[len(ckptMagic)] = 99
		_, err := Decode(bytes.NewReader(b))
		if err == nil || errors.Is(err, ErrCorrupt) {
			t.Errorf("err = %v, want a distinct unsupported-version error", err)
		}
	})
	t.Run("payload bit flip", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[len(b)-1] ^= 0x01
		if _, err := Decode(bytes.NewReader(b)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("err = %v, want ErrCorrupt (CRC)", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for cut := 1; cut < len(good); cut += 7 {
			if _, err := Decode(bytes.NewReader(good[:len(good)-cut])); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("truncated by %d: err = %v, want ErrCorrupt", cut, err)
			}
		}
	})
}

func journalRecords(t *testing.T, path string) [][]byte {
	t.Helper()
	var got [][]byte
	j, err := OpenJournal(path, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer j.Close()
	return got
}

func TestJournalAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jrnl")
	j, err := OpenJournal(path, func([]byte) error { t.Fatal("fresh journal replayed records"); return nil })
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	want := [][]byte{[]byte("alpha"), []byte("bravo"), {}, []byte("charlie")}
	for _, rec := range want {
		if err := j.Append(rec); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	got := journalRecords(t, path)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestJournalCleanReopen pins the clean-EOF path: reopening a
// journal whose last append completed must NOT report (or truncate) a
// torn tail — every record survives arbitrarily many reopen cycles.
func TestJournalCleanReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jrnl")
	for round := 0; round < 3; round++ {
		n := 0
		j, err := OpenJournal(path, func([]byte) error { n++; return nil })
		if err != nil {
			t.Fatalf("round %d open: %v", round, err)
		}
		if j.DroppedTail {
			t.Fatalf("round %d: clean journal reported a torn tail", round)
		}
		if n != round {
			t.Fatalf("round %d replayed %d records, want %d", round, n, round)
		}
		if err := j.Append([]byte{byte(round)}); err != nil {
			t.Fatalf("round %d append: %v", round, err)
		}
		if err := j.Close(); err != nil {
			t.Fatalf("round %d close: %v", round, err)
		}
	}
}

// TestJournalTornTail simulates a crash mid-append: the truncated
// final record is dropped (reported via DroppedTail), every record
// before it replays, and the journal accepts new appends at the
// repaired offset.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jrnl")
	j, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for _, rec := range []string{"one", "two", "three"} {
		if err := j.Append([]byte(rec)); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	j.Close()

	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the tail: cut into the last record's payload.
	if err := os.Truncate(path, info.Size()-2); err != nil {
		t.Fatal(err)
	}

	var got []string
	j2, err := OpenJournal(path, func(p []byte) error { got = append(got, string(p)); return nil })
	if err != nil {
		t.Fatalf("open after tear: %v", err)
	}
	if !j2.DroppedTail {
		t.Error("DroppedTail = false, want true")
	}
	if len(got) != 2 || got[0] != "one" || got[1] != "two" {
		t.Errorf("replayed %q, want [one two]", got)
	}
	if err := j2.Append([]byte("four")); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
	j2.Close()

	got2 := journalRecords(t, path)
	want := []string{"one", "two", "four"}
	if len(got2) != len(want) {
		t.Fatalf("after repair+append: %d records, want %d", len(got2), len(want))
	}
	for i, w := range want {
		if string(got2[i]) != w {
			t.Errorf("record %d = %q, want %q", i, got2[i], w)
		}
	}
}

// TestJournalBadHeaderFatal: unlike a torn tail, a file that is not a
// journal at all must be rejected, not silently reinitialized.
func TestJournalBadHeaderFatal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jrnl")
	if err := os.WriteFile(path, []byte("definitely not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path, nil); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}
