package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

const jrnlMagic = "GTSCJRNL"

// Journal is a crash-safe append-only record log. Each record is a
// length/CRC-framed opaque payload; appends are synced to disk before
// returning, so a record that Append reported durable survives a kill
// at any later point. A torn tail — the partial record a crash
// mid-append leaves behind — is detected on open by its short frame or
// CRC mismatch, dropped, and truncated away; every record before it
// replays intact. The experiments session journals completed runs
// through this (keyed by the result-cache key) so a restarted sweep
// re-executes only what is missing.
type Journal struct {
	f *os.File
	// DroppedTail reports that Open found and discarded a torn final
	// record (the expected aftermath of a crash mid-append).
	DroppedTail bool
}

// OpenJournal opens (or creates) the journal at path and replays every
// intact existing record, in append order, through replay. A torn
// final record is truncated, not fatal; a corrupt header (wrong magic
// or version) is fatal — the file is not a journal. The returned
// journal is positioned for appends.
func OpenJournal(path string, replay func(payload []byte) error) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{f: f}
	if err := j.init(replay); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

func (j *Journal) init(replay func(payload []byte) error) error {
	info, err := j.f.Stat()
	if err != nil {
		return err
	}
	if info.Size() == 0 {
		if _, err := io.WriteString(j.f, jrnlMagic); err != nil {
			return err
		}
		if err := binary.Write(j.f, binary.LittleEndian, uint32(codecVersion)); err != nil {
			return err
		}
		return j.f.Sync()
	}
	magic := make([]byte, len(jrnlMagic))
	if _, err := io.ReadFull(j.f, magic); err != nil || string(magic) != jrnlMagic {
		return fmt.Errorf("%w: not a journal (bad magic)", ErrCorrupt)
	}
	var version uint32
	if err := binary.Read(j.f, binary.LittleEndian, &version); err != nil {
		return fmt.Errorf("%w: not a journal (short version)", ErrCorrupt)
	}
	if version != codecVersion {
		return fmt.Errorf("checkpoint: unsupported journal version %d (this binary speaks %d)", version, codecVersion)
	}
	// Replay records until the clean end of the file or the torn tail.
	offset := int64(len(jrnlMagic)) + 4
	for {
		payload, err := readFrame(j.f)
		if errors.Is(err, io.EOF) {
			break // clean end: the last append completed
		}
		if err != nil {
			// A partial or corrupt trailing frame is the residue of a
			// crash mid-append: truncate to the last intact record and
			// continue from there.
			if err := j.f.Truncate(offset); err != nil {
				return err
			}
			j.DroppedTail = true
			break
		}
		if err := replay(payload); err != nil {
			return err
		}
		offset += 8 + int64(len(payload))
	}
	_, err = j.f.Seek(offset, io.SeekStart)
	return err
}

// Append durably writes one record: the frame is written and fsynced
// before Append returns.
func (j *Journal) Append(payload []byte) error {
	if err := writeFrame(j.f, payload); err != nil {
		return err
	}
	return j.f.Sync()
}

// Close releases the journal file.
func (j *Journal) Close() error { return j.f.Close() }
