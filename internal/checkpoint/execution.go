package checkpoint

import (
	"context"
	"errors"
	"fmt"

	"github.com/gtsc-sim/gtsc/internal/diag"
	"github.com/gtsc-sim/gtsc/internal/sim"
	"github.com/gtsc-sim/gtsc/internal/stats"
	"github.com/gtsc-sim/gtsc/internal/workload"
)

// ErrDigestMismatch reports that deterministic replay did not
// reproduce the checkpointed machine state — the config hash matched
// but the machine diverged, which means the checkpoint was taken by a
// different binary/workload build or determinism regressed. Either
// way the restore must not continue.
var ErrDigestMismatch = errors.New("checkpoint: state digest mismatch after replay")

// Execution drives one workload instance (a sequence of kernels) on
// one simulator, pausable at any global cycle and checkpointable at
// any pause. It owns the cross-kernel bookkeeping a checkpoint
// coordinate needs: which kernel is in flight and the aggregate stats
// of completed kernels.
type Execution struct {
	cfg   sim.Config
	inst  *workload.Instance
	name  string
	scale int

	sim      *sim.Simulator
	agg      *stats.Run
	finished bool
	pauses   []uint64 // every stop cycle paused at (Checkpoint.PauseCycles)
}

// NewExecution builds a fresh execution (cycle 0, nothing run).
func NewExecution(cfg sim.Config, inst *workload.Instance, name string, scale int) *Execution {
	return &Execution{cfg: cfg, inst: inst, name: name, scale: scale, sim: sim.New(cfg)}
}

// Sim exposes the underlying simulator (for Snapshot, ReadWord).
func (e *Execution) Sim() *sim.Simulator { return e.sim }

// Run executes the remaining work to completion, honoring ctx. On
// cancellation it returns a *diag.CanceledError with the machine
// suspended — Checkpoint() then captures the exact coordinate.
func (e *Execution) Run(ctx context.Context) (*stats.Run, error) {
	run, paused, err := e.RunUntil(ctx, 0)
	if err != nil {
		return nil, err
	}
	if paused {
		return nil, errors.New("checkpoint: execution paused without a stop cycle")
	}
	return run, nil
}

// RunUntil advances the execution until it completes or the global
// clock reaches stopAt (0 = run to completion). Resuming a pause — in
// this process, or in another one via Checkpoint/ResumeExecution —
// continues the exact suspended trajectory. Under the bit-exact
// engines that trajectory is also identical to an unpaused run's;
// under relaxed sync (SlackCycles > 0) a mid-window pause clamps the
// current epoch, which perturbs cycle counts the same bounded,
// functionally-invisible way slack itself does
// (TestRelaxedPauseFunctionalEquivalence), so every pause is recorded
// for ResumeExecution's replay to reproduce.
func (e *Execution) RunUntil(ctx context.Context, stopAt uint64) (*stats.Run, bool, error) {
	if e.finished {
		return e.agg, false, nil
	}
	for {
		if !e.sim.Paused() && e.sim.KernelsDone() == len(e.inst.Kernels) {
			if e.inst.Verify != nil {
				if err := e.inst.Verify(e.sim.ReadWord); err != nil {
					return e.agg, false, fmt.Errorf("workload verification failed: %w", err)
				}
			}
			e.finished = true
			return e.agg, false, nil
		}
		if stopAt != 0 && e.sim.Now() >= stopAt {
			e.notePause(stopAt)
			return nil, true, nil // suspended at a kernel boundary
		}
		if !e.sim.Paused() && ctx.Err() != nil {
			// Canceled between kernels: suspend before launching the
			// next one, with the same typed error in-kernel pauses use.
			return nil, false, &diag.CanceledError{
				Kernel:      e.inst.Kernels[e.sim.KernelsDone()].Name,
				Phase:       "idle",
				Cycle:       e.sim.Now(),
				KernelIndex: e.sim.KernelsDone(),
				Cause:       context.Cause(ctx),
			}
		}
		var (
			run    *stats.Run
			paused bool
			err    error
		)
		if e.sim.Paused() {
			run, paused, err = e.sim.Resume(ctx, stopAt)
		} else {
			run, paused, err = e.sim.RunUntil(ctx, e.inst.Kernels[e.sim.KernelsDone()], stopAt)
		}
		if err != nil {
			return nil, false, err
		}
		if paused {
			e.notePause(stopAt)
			return nil, true, nil
		}
		if e.agg == nil {
			e.agg = run
		} else {
			e.agg.Accumulate(run)
		}
	}
}

// notePause records a stop cycle the execution paused at, so a
// cross-process resume can replay the identical pause schedule
// (consecutive duplicate stop cycles collapse — re-pausing at a cycle
// already reached advances nothing).
func (e *Execution) notePause(stopAt uint64) {
	if n := len(e.pauses); n > 0 && e.pauses[n-1] == stopAt {
		return
	}
	e.pauses = append(e.pauses, stopAt)
}

// Checkpoint captures the execution's current coordinate and state
// digest. Valid whenever the execution is not mid-Tick — i.e. any time
// RunUntil/Run has returned (paused, canceled, or even mid-idle).
func (e *Execution) Checkpoint() *Checkpoint {
	snap := e.sim.Snapshot()
	return &Checkpoint{
		Workload:    e.name,
		Scale:       e.scale,
		ConfigHash:  ConfigHash(e.cfg),
		KernelIndex: snap.KernelsDone,
		Cycle:       snap.Cycle,
		Phase:       snap.Phase,
		Digest:      snap.Digest,
		PauseCycles: append([]uint64(nil), e.pauses...),
	}
}

// ResumeExecution reconstructs a suspended execution from its
// checkpoint by verified deterministic replay: it validates the
// identity (workload, scale, config hash), replays a fresh machine to
// the recorded cycle, and proves the replay reproduced the suspended
// state by comparing machine-state digests. The returned execution
// continues exactly where the checkpointed one stopped.
func ResumeExecution(ck *Checkpoint, cfg sim.Config, inst *workload.Instance, name string, scale int) (*Execution, error) {
	if ck.Workload != name {
		return nil, fmt.Errorf("checkpoint: workload mismatch: checkpoint has %q, resuming %q", ck.Workload, name)
	}
	if ck.Scale != scale {
		return nil, fmt.Errorf("checkpoint: scale mismatch: checkpoint has %d, resuming %d", ck.Scale, scale)
	}
	if got := ConfigHash(cfg); got != ck.ConfigHash {
		return nil, fmt.Errorf("checkpoint: config mismatch: checkpoint has %#x, resuming %#x", ck.ConfigHash, got)
	}
	e := NewExecution(cfg, inst, name, scale)
	if ck.Cycle == 0 && ck.KernelIndex == 0 && ck.Phase == "idle" {
		return e, nil // checkpointed before anything ran
	}
	// Deterministic replay to the recorded coordinate, pausing at every
	// cycle the original run paused at: under relaxed sync each pause
	// clamps an epoch and perturbs the trajectory from there on, so the
	// replay must take the same pause schedule to pass through the same
	// machine states (under the bit-exact engines the extra pauses are
	// pure suspension — same trajectory either way). Replaying the
	// schedule also re-records it, so a resumed execution's own future
	// checkpoints carry the full history across repeated handoffs.
	for _, p := range ck.PauseCycles {
		if p >= ck.Cycle {
			break
		}
		if _, _, err := e.RunUntil(context.Background(), p); err != nil {
			return nil, fmt.Errorf("checkpoint: replay failed at pause %d: %w", p, err)
		}
	}
	_, _, err := e.RunUntil(context.Background(), ck.Cycle)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: replay failed: %w", err)
	}
	snap := e.sim.Snapshot()
	if snap.Cycle != ck.Cycle || snap.KernelsDone != ck.KernelIndex || snap.Phase != ck.Phase {
		return nil, fmt.Errorf("%w: replay landed at cycle=%d kernels=%d phase=%s, checkpoint recorded cycle=%d kernels=%d phase=%s",
			ErrDigestMismatch, snap.Cycle, snap.KernelsDone, snap.Phase, ck.Cycle, ck.KernelIndex, ck.Phase)
	}
	if snap.Digest != ck.Digest {
		return nil, fmt.Errorf("%w: replayed state digest %#x != checkpointed %#x (cycle %d)",
			ErrDigestMismatch, snap.Digest, ck.Digest, ck.Cycle)
	}
	return e, nil
}
