package nocoh

import (
	"fmt"
	"io"

	"github.com/gtsc-sim/gtsc/internal/mem"
)

// DigestState implements coherence.StateDigester for the BL shim.
func (l *L1Bypass) DigestState(w io.Writer) {
	fmt.Fprintf(w, "bl-l1[%d] now=%d next=%d pend=%d max=%d\n",
		l.smID, l.now, l.nextID, l.pending, l.maxOutstanding)
	mem.DigestMsgs(w, "outq", l.outQ)
	mem.DigestIDTable(w, "req", l.reqByID)
}

// DigestState implements coherence.StateDigester for the non-coherent L1.
func (l *L1Simple) DigestState(w io.Writer) {
	fmt.Fprintf(w, "nocoh-l1[%d] now=%d next=%d pend=%d\n",
		l.smID, l.now, l.nextReqID, l.pending)
	l.array.DigestInto(w)
	l.mshr.DigestInto(w)
	mem.DigestMsgs(w, "outq", l.outQ)
	mem.DigestIDTable(w, "st", l.storesByID)
	mem.DigestIDTable(w, "atom", l.atomicsByID)
}

// DigestState implements coherence.StateDigester for the plain L2 bank.
func (l *L2Plain) DigestState(w io.Writer) {
	fmt.Fprintf(w, "plain-l2[%d] now=%d\n", l.bankID, l.now)
	l.array.DigestInto(w)
	mem.DigestBlockMap(w, l.miss, func(w io.Writer, b mem.BlockAddr, m *plainMiss) {
		fmt.Fprintf(w, "miss %#x\n", uint64(b))
		mem.DigestMsgs(w, "wait", m.waiting)
	})
	mem.DigestMsgs(w, "inq", l.inQ)
	mem.DigestMsgs(w, "outnoc", l.outNoC)
	mem.DigestMsgs(w, "outdram", l.outDRAM)
}
