package nocoh

import (
	"testing"

	"github.com/gtsc-sim/gtsc/internal/coherence"
	"github.com/gtsc-sim/gtsc/internal/mem"
)

// harness shuttles messages between one L1 (bypass or simple) and one
// plain L2 with instant DRAM.
type harness struct {
	t     *testing.T
	l1    coherence.L1
	l2    *L2Plain
	store *mem.Store
	toL2  []*mem.Msg
	toL1  []*mem.Msg
	dram  []*mem.Msg
	now   uint64
	log   []*mem.Msg
}

func newHarness(t *testing.T, simple bool) *harness {
	h := &harness{t: t, store: mem.NewStore()}
	h.l2 = NewL2Plain(0, L2Geometry{Sets: 16, Ways: 4},
		coherence.SenderFunc(func(m *mem.Msg) bool { h.toL1 = append(h.toL1, m); return true }),
		coherence.SenderFunc(func(m *mem.Msg) bool { h.dram = append(h.dram, m); return true }),
		nil)
	send := coherence.SenderFunc(func(m *mem.Msg) bool { h.toL2 = append(h.toL2, m); h.log = append(h.log, m); return true })
	if simple {
		h.l1 = NewL1Simple(0, 1, Geometry{Sets: 8, Ways: 2, MSHRs: 4}, send, nil)
	} else {
		h.l1 = NewL1Bypass(0, 1, send, nil)
	}
	return h
}

func (h *harness) pump() {
	for i := 0; i < 10000; i++ {
		h.now++
		h.l1.Tick(h.now)
		h.l2.Tick(h.now)
		progress := false
		for len(h.toL2) > 0 {
			m := h.toL2[0]
			h.toL2 = h.toL2[1:]
			h.l2.Deliver(m)
			progress = true
		}
		for len(h.toL1) > 0 {
			m := h.toL1[0]
			h.toL1 = h.toL1[1:]
			h.l1.Deliver(m)
			progress = true
		}
		for len(h.dram) > 0 {
			m := h.dram[0]
			h.dram = h.dram[1:]
			progress = true
			switch m.Type {
			case mem.DRAMRd:
				data := &mem.Block{}
				h.store.ReadBlock(m.Block, data)
				h.l2.DRAMFill(&mem.Msg{Type: mem.DRAMFill, Block: m.Block, Data: data})
			case mem.DRAMWr:
				h.store.WriteBlock(m.Block, m.Data, m.Mask)
			}
		}
		if !progress && h.l2.Pending() == 0 && h.l1.Pending() == 0 {
			return
		}
	}
	h.t.Fatal("no quiescence")
}

// loadResult holds a load's value once it completes (V stays nil
// until then).
type loadResult struct{ V *uint32 }

func (h *harness) load(b mem.BlockAddr, word int) *loadResult {
	out := &loadResult{}
	h.l1.Access(&coherence.Request{
		Block: b, Mask: mem.WordMask(0).Set(word), Warp: 0,
		Done: func(c coherence.Completion) { v := c.Data.Words[word]; out.V = &v },
	})
	return out
}

func (h *harness) storeWord(b mem.BlockAddr, word int, val uint32) *bool {
	done := new(bool)
	data := &mem.Block{}
	data.Words[word] = val
	h.l1.Access(&coherence.Request{
		Block: b, Store: true, Mask: mem.WordMask(0).Set(word), Data: data, Warp: 0,
		Done: func(coherence.Completion) { *done = true },
	})
	return done
}

func TestBypassForwardsEverything(t *testing.T) {
	h := newHarness(t, false)
	h.store.WriteWord(mem.BlockAddr(2).WordAddr(1), 11)
	v1 := h.load(2, 1)
	h.pump()
	v2 := h.load(2, 1) // no caching: second load crosses again
	h.pump()
	if v1.V == nil || *v1.V != 11 || v2.V == nil || *v2.V != 11 {
		t.Fatal("values wrong")
	}
	reads := 0
	for _, m := range h.log {
		if m.Type == mem.BusRd {
			reads++
		}
	}
	if reads != 2 {
		t.Fatalf("bypass must send 2 reads, sent %d", reads)
	}
	if h.l1.Stats().Hits != 0 {
		t.Fatal("bypass cannot hit")
	}
}

func TestBypassBoundsOutstanding(t *testing.T) {
	h := newHarness(t, false)
	for i := 0; i < 64; i++ {
		if h.l1.Access(&coherence.Request{
			Block: mem.BlockAddr(i), Mask: 1, Warp: 0,
			Done: func(coherence.Completion) {},
		}) != coherence.Pending {
			t.Fatal("accepting")
		}
	}
	res := h.l1.Access(&coherence.Request{Block: 99, Mask: 1, Warp: 0, Done: func(coherence.Completion) {}})
	if res != coherence.Reject {
		t.Fatal("65th access must be rejected")
	}
	h.pump()
}

func TestSimpleL1CachesForever(t *testing.T) {
	h := newHarness(t, true)
	h.store.WriteWord(mem.BlockAddr(3).WordAddr(0), 5)
	h.load(3, 0)
	h.pump()
	v := h.load(3, 0)
	if v.V == nil || *v.V != 5 {
		t.Fatal("second load must hit synchronously")
	}
	if h.l1.Stats().Hits != 1 {
		t.Fatal("hit not counted")
	}
}

func TestSimpleL1WriteThroughUpdatesLocalLine(t *testing.T) {
	h := newHarness(t, true)
	h.load(4, 0)
	h.pump()
	done := h.storeWord(4, 0, 77)
	// Even before the ack, the local line reflects the store (no
	// coherence, no locking).
	v := h.load(4, 0)
	if v.V == nil || *v.V != 77 {
		t.Fatal("local line must be updated by the store")
	}
	h.pump()
	if !*done {
		t.Fatal("store must be acknowledged")
	}
	// And the L2 has it too (write-through).
	if data, ok := h.l2.Peek(4); !ok || data.Words[0] != 77 {
		t.Fatal("L2 must have the stored value")
	}
}

func TestSimpleL1MergesMisses(t *testing.T) {
	h := newHarness(t, true)
	h.load(6, 0)
	h.load(6, 1)
	if h.l1.Stats().MSHRMerges != 1 {
		t.Fatal("second miss must merge")
	}
	h.pump()
	reads := 0
	for _, m := range h.log {
		if m.Type == mem.BusRd {
			reads++
		}
	}
	if reads != 1 {
		t.Fatalf("one read expected, sent %d", reads)
	}
}

func TestPlainL2WritebackOnEviction(t *testing.T) {
	h := newHarness(t, false)
	h.l2dirtyEvictionScenario()
}

func (h *harness) l2dirtyEvictionScenario() {
	// Make block 1 dirty at L2, then force eviction pressure via many
	// distinct blocks mapping everywhere; finally re-read block 1 and
	// confirm the written value survived in DRAM.
	h.storeWord(1, 0, 42)
	h.pump()
	for i := 16; i < 16+16*4+8; i++ {
		h.load(mem.BlockAddr(i), 0)
		h.pump()
	}
	v := h.load(1, 0)
	h.pump()
	if v.V == nil || *v.V != 42 {
		h.t.Fatalf("dirty eviction lost data: got %v", v.V)
	}
	if h.l2.Stats().WritebackDRAM == 0 {
		h.t.Fatal("writeback not counted")
	}
}

func (h *harness) atomicAdd(b mem.BlockAddr, word int, operand uint32) *loadResult {
	out := &loadResult{}
	data := &mem.Block{}
	data.Words[word] = operand
	h.l1.Access(&coherence.Request{
		Block: b, Atomic: true, Atom: mem.AtomAdd,
		Mask: mem.WordMask(0).Set(word), Data: data, Warp: 0,
		Done: func(c coherence.Completion) { v := c.Data.Words[word]; out.V = &v },
	})
	return out
}

func TestBypassAtomic(t *testing.T) {
	h := newHarness(t, false)
	h.store.WriteWord(mem.BlockAddr(5).WordAddr(0), 10)
	old := h.atomicAdd(5, 0, 3)
	h.pump()
	if old.V == nil || *old.V != 10 {
		t.Fatalf("atomic old value: %v", old.V)
	}
	if data, ok := h.l2.Peek(5); !ok || data.Words[0] != 13 {
		t.Fatal("atomic not applied at L2")
	}
	if h.l2.Stats().Atomics != 1 {
		t.Fatal("atomic not counted")
	}
}

func TestSimpleL1AtomicUpdatesLocalLine(t *testing.T) {
	h := newHarness(t, true)
	h.store.WriteWord(mem.BlockAddr(5).WordAddr(0), 10)
	h.load(5, 0)
	h.pump()
	h.atomicAdd(5, 0, 7)
	// Even before the ack, the local copy reflects the update (SM-local
	// consistency in the non-coherent configuration).
	v := h.load(5, 0)
	if v.V == nil || *v.V != 17 {
		t.Fatalf("local atomic update missing: %v", v.V)
	}
	h.pump()
	if data, _ := h.l2.Peek(5); data.Words[0] != 17 {
		t.Fatal("L2 must apply the atomic too")
	}
}

func TestSimpleL1Flush(t *testing.T) {
	h := newHarness(t, true)
	h.load(3, 0)
	h.pump()
	h.l1.Flush()
	// Post-flush load must miss again.
	h.load(3, 0)
	if h.l1.Stats().MissCold != 2 {
		t.Fatalf("expected 2 cold misses, got %d", h.l1.Stats().MissCold)
	}
	h.pump()
	if h.l1.Stats().Flushes != 1 {
		t.Fatal("flush not counted")
	}
}

func TestBackpressureRetry(t *testing.T) {
	// A sender that rejects the first N sends exercises the outQ path.
	rejects := 3
	var sentLater []*mem.Msg
	store := mem.NewStore()
	l2 := NewL2Plain(0, L2Geometry{Sets: 8, Ways: 2},
		coherence.SenderFunc(func(m *mem.Msg) bool { return true }),
		coherence.SenderFunc(func(m *mem.Msg) bool { return true }),
		nil)
	_ = store
	l1 := NewL1Simple(0, 1, Geometry{Sets: 8, Ways: 2, MSHRs: 4},
		coherence.SenderFunc(func(m *mem.Msg) bool {
			if rejects > 0 {
				rejects--
				return false
			}
			sentLater = append(sentLater, m)
			return true
		}), nil)
	_ = l2
	res := l1.Access(&coherence.Request{Block: 1, Mask: 1, Warp: 0, Done: func(coherence.Completion) {}})
	if res != coherence.Pending {
		t.Fatal("access should be accepted")
	}
	if len(sentLater) != 0 {
		t.Fatal("first send must have been rejected")
	}
	for c := uint64(1); c <= 10; c++ {
		l1.Tick(c)
	}
	if len(sentLater) != 1 {
		t.Fatalf("retry did not send: %d", len(sentLater))
	}
}
