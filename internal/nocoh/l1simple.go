package nocoh

import (
	"fmt"

	"github.com/gtsc-sim/gtsc/internal/cache"
	"github.com/gtsc-sim/gtsc/internal/coherence"
	"github.com/gtsc-sim/gtsc/internal/diag"
	"github.com/gtsc-sim/gtsc/internal/mem"
	"github.com/gtsc-sim/gtsc/internal/stats"
)

// L1Simple is the Baseline-w/L1 configuration: a conventional
// write-through, write-no-allocate L1 with MSHR merging and no
// coherence whatsoever — cached lines remain valid until evicted. It
// is only safe for kernels that do not communicate through global
// memory (the paper's second benchmark set). It implements
// coherence.L1.
type L1Simple struct {
	smID   int
	nBanks int
	now    uint64

	array *cache.Array[struct{}]
	mshr  *cache.MSHR[simpleWaiter]

	send  coherence.Sender
	outQ  []*mem.Msg
	stats stats.L1Stats
	obs   coherence.Observer

	storesByID  map[uint64]*coherence.Request
	atomicsByID map[uint64]*coherence.Request
	nextReqID   uint64
	pending     int
	fail        *diag.ProtocolError
}

type simpleWaiter struct {
	req *coherence.Request
}

// Geometry mirrors the coherent controllers' organization.
type Geometry struct {
	Sets  int
	Ways  int
	MSHRs int
}

// NewL1Simple builds the non-coherent L1 for SM smID.
func NewL1Simple(smID, nBanks int, geo Geometry, send coherence.Sender, obs coherence.Observer) *L1Simple {
	return &L1Simple{
		smID:        smID,
		nBanks:      nBanks,
		array:       cache.NewArray[struct{}](geo.Sets, geo.Ways),
		mshr:        cache.NewMSHR[simpleWaiter](geo.MSHRs),
		send:        send,
		obs:         obs,
		storesByID:  make(map[uint64]*coherence.Request),
		atomicsByID: make(map[uint64]*coherence.Request),
	}
}

// Stats implements coherence.L1.
func (l *L1Simple) Stats() *stats.L1Stats { return &l.stats }

// Pending implements coherence.L1.
func (l *L1Simple) Pending() int { return l.pending }

// Quiescent implements coherence.L1: Tick only drains outQ, so an
// empty output queue means ticking is a pure no-op until new input.
func (l *L1Simple) Quiescent() bool { return len(l.outQ) == 0 }

// failf records the first protocol violation; the controller then
// drops further input until the simulator surfaces the error.
func (l *L1Simple) failf(event, format string, args ...any) {
	if l.fail == nil {
		l.fail = diag.Errf(fmt.Sprintf("nocoh-l1[%d]", l.smID), event, format, args...)
	}
}

// Err implements coherence.L1.
func (l *L1Simple) Err() error {
	if l.fail == nil {
		return nil
	}
	return l.fail
}

// DumpState implements coherence.L1.
func (l *L1Simple) DumpState() diag.CacheState {
	return diag.CacheState{
		Name: "nocoh-l1", ID: l.smID, Pending: l.pending,
		MSHRUsed: l.mshr.Len(), MSHRCap: l.mshr.Cap(), OutQ: len(l.outQ),
	}
}

// Access implements coherence.L1.
func (l *L1Simple) Access(req *coherence.Request) coherence.AccessResult {
	if req.Atomic {
		return l.accessAtomic(req)
	}
	if req.Store {
		return l.accessStore(req)
	}
	return l.accessLoad(req)
}

// accessAtomic forwards the read-modify-write to the L2 and applies
// the same update to the local copy (if present), keeping the SM
// internally consistent — remote updates remain invisible, as
// everywhere in this non-coherent configuration.
func (l *L1Simple) accessAtomic(req *coherence.Request) coherence.AccessResult {
	l.stats.Atomics++
	l.stats.TagProbes++
	if line := l.array.Lookup(req.Block); line != nil {
		for i := 0; i < mem.WordsPerBlock; i++ {
			if req.Mask.Has(i) {
				line.Data.Words[i] = req.Atom.Apply(line.Data.Words[i], req.Data.Words[i])
			}
		}
		l.stats.DataAccesses++
	}
	l.nextReqID++
	l.atomicsByID[l.nextReqID] = req
	l.pending++
	data := &mem.Block{}
	mem.Merge(data, req.Data, req.Mask)
	l.post(&mem.Msg{
		Type: mem.BusAtom, Block: req.Block, Src: l.smID,
		Dst: bankOf(req.Block, l.nBanks), Data: data, Mask: req.Mask,
		Atom: req.Atom, ReqID: l.nextReqID, Warp: req.Warp,
	})
	return coherence.Pending
}

func (l *L1Simple) accessLoad(req *coherence.Request) coherence.AccessResult {
	l.stats.Loads++
	l.stats.TagProbes++
	if line := l.array.Lookup(req.Block); line != nil {
		l.stats.Hits++
		l.stats.DataAccesses++
		l.array.Touch(line, l.now)
		l.pending++ // completeLoad decrements
		l.completeLoad(req, &line.Data)
		return coherence.Hit
	}
	e := l.mshr.Lookup(req.Block)
	if e == nil && l.mshr.Full() {
		l.stats.MSHRStalls++
		return coherence.Reject
	}
	l.stats.MissCold++
	if e != nil {
		l.stats.MSHRMerges++
		e.Waiters = append(e.Waiters, simpleWaiter{req: req})
		l.pending++
		return coherence.Pending
	}
	if e = l.mshr.Allocate(req.Block); e == nil {
		l.failf("mshr-allocate", "allocate for %v failed despite capacity check", req.Block)
		return coherence.Reject
	}
	e.Waiters = append(e.Waiters, simpleWaiter{req: req})
	e.Issued = true
	l.pending++
	l.nextReqID++
	l.post(&mem.Msg{
		Type: mem.BusRd, Block: req.Block, Src: l.smID,
		Dst: bankOf(req.Block, l.nBanks), ReqID: l.nextReqID,
	})
	return coherence.Pending
}

func (l *L1Simple) accessStore(req *coherence.Request) coherence.AccessResult {
	l.stats.Stores++
	l.stats.TagProbes++
	if line := l.array.Lookup(req.Block); line != nil {
		// Write-through with local update and no locking: without
		// coherence there is no remote writer to race with.
		mem.Merge(&line.Data, req.Data, req.Mask)
		l.stats.DataAccesses++
		l.array.Touch(line, l.now)
	}
	l.nextReqID++
	l.storesByID[l.nextReqID] = req
	l.pending++
	data := &mem.Block{}
	mem.Merge(data, req.Data, req.Mask)
	l.post(&mem.Msg{
		Type: mem.BusWr, Block: req.Block, Src: l.smID,
		Dst: bankOf(req.Block, l.nBanks), Data: data, Mask: req.Mask,
		ReqID: l.nextReqID, Warp: req.Warp,
	})
	return coherence.Pending
}

func (l *L1Simple) completeLoad(req *coherence.Request, data *mem.Block) {
	out := &mem.Block{}
	mem.Merge(out, data, req.Mask)
	if l.obs != nil {
		l.obs.Observe(coherence.Op{
			SM: l.smID, Warp: req.Warp, Block: req.Block, Mask: req.Mask,
			Data: *out, Cycle: l.now,
		})
	}
	l.pending--
	req.Done(coherence.Completion{Data: out})
}

// Deliver implements coherence.L1.
func (l *L1Simple) Deliver(msg *mem.Msg) {
	if l.fail != nil {
		return
	}
	switch msg.Type {
	case mem.BusFill:
		l.stats.Fills++
		line := l.array.Lookup(msg.Block)
		if line == nil {
			victim := l.array.Victim(msg.Block, nil)
			l.array.Install(victim, msg.Block, msg.Data, l.now)
			line = victim
		} else {
			line.Data = *msg.Data
		}
		l.stats.DataAccesses++
		e := l.mshr.Lookup(msg.Block)
		if e == nil {
			return
		}
		for _, w := range e.Waiters {
			l.stats.DataAccesses++
			l.completeLoad(w.req, &line.Data)
		}
		l.mshr.Release(msg.Block)
	case mem.BusWrAck:
		l.stats.WriteAcks++
		req, ok := l.storesByID[msg.ReqID]
		if !ok {
			l.failf("unknown-write-ack", "write ack req=%d block=%v has no pending store", msg.ReqID, msg.Block)
			return
		}
		delete(l.storesByID, msg.ReqID)
		l.pending--
		req.Done(coherence.Completion{})
	case mem.BusAtomAck:
		req, ok := l.atomicsByID[msg.ReqID]
		if !ok {
			l.failf("unknown-atomic-ack", "atomic ack req=%d block=%v has no pending request", msg.ReqID, msg.Block)
			return
		}
		delete(l.atomicsByID, msg.ReqID)
		l.pending--
		req.Done(coherence.Completion{Data: msg.Data})
	default:
		l.failf("unexpected-message", "message %v for block %v from bank %d", msg.Type, msg.Block, msg.Src)
	}
}

// Flush implements coherence.L1.
func (l *L1Simple) Flush() {
	if l.pending != 0 {
		l.failf("flush-outstanding", "flush with %d outstanding accesses", l.pending)
		return
	}
	l.stats.Flushes++
	l.array.ForEach(func(c *cache.Line[struct{}]) { l.array.Invalidate(c) })
}

func (l *L1Simple) post(msg *mem.Msg) {
	if len(l.outQ) == 0 && l.send.TrySend(msg) {
		return
	}
	l.outQ = append(l.outQ, msg)
}

// SyncClock implements coherence.L1.
func (l *L1Simple) SyncClock(now uint64) { l.now = now }

// Tick implements coherence.L1.
func (l *L1Simple) Tick(now uint64) {
	l.now = now
	for len(l.outQ) > 0 {
		if !l.send.TrySend(l.outQ[0]) {
			return
		}
		l.outQ = l.outQ[1:]
	}
}
