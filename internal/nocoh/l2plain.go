package nocoh

import (
	"fmt"

	"github.com/gtsc-sim/gtsc/internal/cache"
	"github.com/gtsc-sim/gtsc/internal/coherence"
	"github.com/gtsc-sim/gtsc/internal/diag"
	"github.com/gtsc-sim/gtsc/internal/mem"
	"github.com/gtsc-sim/gtsc/internal/stats"
)

// L2Plain is a shared cache bank with no coherence metadata: reads
// return data, writes merge and acknowledge, misses fetch from DRAM.
// Both non-coherent configurations (BL and Baseline-w/L1) run over it.
// It implements coherence.L2.
type L2Plain struct {
	bankID int
	now    uint64

	array *cache.Array[struct{}]
	miss  map[mem.BlockAddr]*plainMiss

	inQ      []*mem.Msg
	perCycle int

	sendNoC  coherence.Sender
	sendDRAM coherence.Sender
	outNoC   []*mem.Msg
	outDRAM  []*mem.Msg

	stats stats.L2Stats
	obs   coherence.Observer
	// observeLoads makes the bank report loads to the observer at
	// processing time — set for the BL configuration, where there is
	// no L1 and load values bind here.
	observeLoads bool
	fail         *diag.ProtocolError
}

type plainMiss struct {
	block   mem.BlockAddr
	waiting []*mem.Msg
}

// L2Geometry describes one bank's organization.
type L2Geometry struct {
	Sets     int
	Ways     int
	PerCycle int
}

// NewL2Plain builds bank bankID.
func NewL2Plain(bankID int, geo L2Geometry, sendNoC, sendDRAM coherence.Sender, obs coherence.Observer) *L2Plain {
	if geo.PerCycle == 0 {
		geo.PerCycle = 1
	}
	return &L2Plain{
		bankID:   bankID,
		array:    cache.NewArray[struct{}](geo.Sets, geo.Ways),
		miss:     make(map[mem.BlockAddr]*plainMiss),
		perCycle: geo.PerCycle,
		sendNoC:  sendNoC,
		sendDRAM: sendDRAM,
		obs:      obs,
	}
}

// Stats implements coherence.L2.
func (l *L2Plain) Stats() *stats.L2Stats { return &l.stats }

// Pending implements coherence.L2.
func (l *L2Plain) Pending() int {
	n := len(l.inQ) + len(l.outNoC) + len(l.outDRAM)
	for _, m := range l.miss {
		n += len(m.waiting) + 1
	}
	return n
}

// Quiescent implements coherence.L2. Outstanding misses do not block
// quiescence: fills install unconditionally, so a miss entry only
// changes state when its DRAM fill arrives (a scheduled event).
func (l *L2Plain) Quiescent() bool {
	return len(l.inQ) == 0 && len(l.outNoC) == 0 && len(l.outDRAM) == 0
}

// Drained implements coherence.L2: O(1) Pending() == 0.
func (l *L2Plain) Drained() bool {
	return len(l.inQ) == 0 && len(l.outNoC) == 0 && len(l.outDRAM) == 0 && len(l.miss) == 0
}

// failf records the first protocol violation; the bank then drops
// further input until the simulator surfaces the error.
func (l *L2Plain) failf(event, format string, args ...any) {
	if l.fail == nil {
		l.fail = diag.Errf(fmt.Sprintf("plain-l2[%d]", l.bankID), event, format, args...)
	}
}

// Err implements coherence.L2.
func (l *L2Plain) Err() error {
	if l.fail == nil {
		return nil
	}
	return l.fail
}

// DumpState implements coherence.L2.
func (l *L2Plain) DumpState() diag.CacheState {
	return diag.CacheState{
		Name: "plain-l2", ID: l.bankID, Pending: l.Pending(),
		MSHRUsed: len(l.miss), InQ: len(l.inQ),
		OutQ: len(l.outNoC) + len(l.outDRAM), Misses: len(l.miss),
	}
}

// Deliver implements coherence.L2.
func (l *L2Plain) Deliver(msg *mem.Msg) {
	if l.fail != nil {
		return
	}
	l.inQ = append(l.inQ, msg)
}

// DRAMFill implements coherence.L2.
func (l *L2Plain) DRAMFill(msg *mem.Msg) {
	if l.fail != nil {
		return
	}
	m, ok := l.miss[msg.Block]
	if !ok {
		l.failf("orphan-dram-fill", "DRAM fill for %v without outstanding miss", msg.Block)
		return
	}
	delete(l.miss, msg.Block)
	victim := l.array.Victim(msg.Block, nil)
	if victim.Valid {
		l.evict(victim)
	}
	l.array.Install(victim, msg.Block, msg.Data, l.now)
	l.stats.DataAccesses++
	for _, w := range m.waiting {
		l.process(w, victim)
	}
}

func (l *L2Plain) evict(victim *cache.Line[struct{}]) {
	l.stats.Evictions++
	if victim.Dirty {
		l.stats.WritebackDRAM++
		data := &mem.Block{}
		*data = victim.Data
		l.postDRAM(&mem.Msg{
			Type: mem.DRAMWr, Block: victim.Addr, Src: l.bankID, Dst: l.bankID,
			Data: data, Mask: mem.MaskAll,
		})
	}
	l.array.Invalidate(victim)
}

func (l *L2Plain) process(msg *mem.Msg, line *cache.Line[struct{}]) {
	switch msg.Type {
	case mem.BusRd:
		l.array.Touch(line, l.now)
		l.stats.FillsSent++
		l.stats.DataAccesses++
		data := &mem.Block{}
		*data = line.Data
		if l.observeLoads && l.obs != nil {
			var loaded mem.Block
			mem.Merge(&loaded, data, msg.Mask)
			l.obs.Observe(coherence.Op{
				SM: msg.Src, Warp: msg.Warp, Block: msg.Block,
				Mask: msg.Mask, Data: loaded, Cycle: l.now,
			})
		}
		l.postNoC(&mem.Msg{
			Type: mem.BusFill, Block: msg.Block, Src: l.bankID, Dst: msg.Src,
			Data: data, ReqID: msg.ReqID,
		})
	case mem.BusWr:
		mem.Merge(&line.Data, msg.Data, msg.Mask)
		line.Dirty = true
		l.array.Touch(line, l.now)
		l.stats.DataAccesses++
		if l.obs != nil {
			var stored mem.Block
			mem.Merge(&stored, msg.Data, msg.Mask)
			l.obs.Observe(coherence.Op{
				SM: msg.Src, Warp: msg.Warp, Store: true, Block: msg.Block,
				Mask: msg.Mask, Data: stored, Cycle: l.now,
			})
		}
		l.postNoC(&mem.Msg{
			Type: mem.BusWrAck, Block: msg.Block, Src: l.bankID, Dst: msg.Src,
			ReqID: msg.ReqID, Warp: msg.Warp,
		})
	case mem.BusAtom:
		old := &mem.Block{}
		mem.Merge(old, &line.Data, msg.Mask)
		for i := 0; i < mem.WordsPerBlock; i++ {
			if msg.Mask.Has(i) {
				line.Data.Words[i] = msg.Atom.Apply(line.Data.Words[i], msg.Data.Words[i])
			}
		}
		line.Dirty = true
		l.array.Touch(line, l.now)
		l.stats.DataAccesses++
		if l.obs != nil {
			l.obs.Observe(coherence.Op{
				SM: msg.Src, Warp: msg.Warp, Block: msg.Block,
				Mask: msg.Mask, Data: *old, Cycle: l.now,
			})
			var stored mem.Block
			mem.Merge(&stored, &line.Data, msg.Mask)
			l.obs.Observe(coherence.Op{
				SM: msg.Src, Warp: msg.Warp, Store: true, Block: msg.Block,
				Mask: msg.Mask, Data: stored, Cycle: l.now,
			})
		}
		l.postNoC(&mem.Msg{
			Type: mem.BusAtomAck, Block: msg.Block, Src: l.bankID, Dst: msg.Src,
			Data: old, Mask: msg.Mask, ReqID: msg.ReqID, Warp: msg.Warp,
		})
	default:
		l.failf("unexpected-message", "message %v for block %v from SM %d", msg.Type, msg.Block, msg.Src)
	}
}

// SyncClock implements coherence.L2.
func (l *L2Plain) SyncClock(now uint64) { l.now = now }

// Tick implements coherence.L2.
func (l *L2Plain) Tick(now uint64) {
	l.now = now
	l.drainOut()
	if len(l.outNoC) > 0 || len(l.outDRAM) > 0 {
		return
	}
	for i := 0; i < l.perCycle && len(l.inQ) > 0; i++ {
		msg := l.inQ[0]
		l.inQ = l.inQ[1:]
		l.service(msg)
	}
}

func (l *L2Plain) service(msg *mem.Msg) {
	switch msg.Type {
	case mem.BusRd:
		l.stats.Reads++
	case mem.BusWr:
		l.stats.Writes++
	case mem.BusAtom:
		l.stats.Atomics++
	default:
		l.failf("unexpected-message", "request %v for block %v from SM %d", msg.Type, msg.Block, msg.Src)
		return
	}
	l.stats.TagProbes++
	if m, ok := l.miss[msg.Block]; ok {
		m.waiting = append(m.waiting, msg)
		return
	}
	line := l.array.Lookup(msg.Block)
	if line == nil {
		l.stats.Misses++
		m := &plainMiss{block: msg.Block, waiting: []*mem.Msg{msg}}
		l.miss[msg.Block] = m
		l.postDRAM(&mem.Msg{Type: mem.DRAMRd, Block: msg.Block, Src: l.bankID, Dst: l.bankID})
		return
	}
	l.stats.Hits++
	l.process(msg, line)
}

func (l *L2Plain) postNoC(msg *mem.Msg) {
	if len(l.outNoC) == 0 && l.sendNoC.TrySend(msg) {
		return
	}
	l.outNoC = append(l.outNoC, msg)
}

func (l *L2Plain) postDRAM(msg *mem.Msg) {
	if len(l.outDRAM) == 0 && l.sendDRAM.TrySend(msg) {
		return
	}
	l.outDRAM = append(l.outDRAM, msg)
}

func (l *L2Plain) drainOut() {
	for len(l.outNoC) > 0 {
		if !l.sendNoC.TrySend(l.outNoC[0]) {
			break
		}
		l.outNoC = l.outNoC[1:]
	}
	for len(l.outDRAM) > 0 {
		if !l.sendDRAM.TrySend(l.outDRAM[0]) {
			break
		}
		l.outDRAM = l.outDRAM[1:]
	}
}

// SetObserveLoads makes the bank observe loads at processing time
// (BL configuration).
func (l *L2Plain) SetObserveLoads(v bool) { l.observeLoads = v }

// Peek implements coherence.L2 (verification hook).
func (l *L2Plain) Peek(b mem.BlockAddr) (*mem.Block, bool) {
	line := l.array.Lookup(b)
	if line == nil {
		return nil, false
	}
	data := line.Data
	return &data, true
}
