// Package nocoh implements the paper's two non-coherent reference
// configurations:
//
//   - BL ("baseline"): the private L1 is disabled outright and every
//     coalesced access crosses the NoC to the shared L2 — how current
//     GPUs provide coherence by construction (§I), and the
//     configuration every figure normalizes to. Matching the paper's
//     own BL implementation, there are no L1 tags to check and no L1
//     MSHRs: each access becomes its own NoC request (§VI-A).
//   - Baseline-w/L1: a plain non-coherent write-through L1 (lines stay
//     valid until evicted). Only meaningful for the benchmark set that
//     does not require coherence (right cluster of Fig 12).
//
// Both run over L2Plain, a shared cache with no coherence metadata.
package nocoh

import (
	"fmt"

	"github.com/gtsc-sim/gtsc/internal/coherence"
	"github.com/gtsc-sim/gtsc/internal/diag"
	"github.com/gtsc-sim/gtsc/internal/mem"
	"github.com/gtsc-sim/gtsc/internal/stats"
)

func bankOf(b mem.BlockAddr, nBanks int) int { return int(uint64(b) % uint64(nBanks)) }

// L1Bypass is the BL configuration's "L1": a pass-through shim that
// turns every access into an L2 request. It implements coherence.L1.
type L1Bypass struct {
	smID    int
	nBanks  int
	now     uint64
	send    coherence.Sender
	outQ    []*mem.Msg
	stats   stats.L1Stats
	obs     coherence.Observer
	reqByID map[uint64]*coherence.Request
	nextID  uint64
	pending int
	// maxOutstanding bounds in-flight accesses so the shim exerts the
	// same finite buffering a real LDST path would (default 64).
	maxOutstanding int
	fail           *diag.ProtocolError
}

// NewL1Bypass builds the BL shim for SM smID.
func NewL1Bypass(smID, nBanks int, send coherence.Sender, obs coherence.Observer) *L1Bypass {
	return &L1Bypass{
		smID: smID, nBanks: nBanks, send: send, obs: obs,
		reqByID: make(map[uint64]*coherence.Request), maxOutstanding: 64,
	}
}

// Stats implements coherence.L1.
func (l *L1Bypass) Stats() *stats.L1Stats { return &l.stats }

// Pending implements coherence.L1.
func (l *L1Bypass) Pending() int { return l.pending }

// Quiescent implements coherence.L1: Tick only drains outQ, so an
// empty output queue means ticking is a pure no-op until new input.
func (l *L1Bypass) Quiescent() bool { return len(l.outQ) == 0 }

// Flush implements coherence.L1 (nothing cached, nothing to do).
func (l *L1Bypass) Flush() {}

// failf records the first protocol violation; the shim then drops
// further input until the simulator surfaces the error.
func (l *L1Bypass) failf(event, format string, args ...any) {
	if l.fail == nil {
		l.fail = diag.Errf(fmt.Sprintf("bl-l1[%d]", l.smID), event, format, args...)
	}
}

// Err implements coherence.L1.
func (l *L1Bypass) Err() error {
	if l.fail == nil {
		return nil
	}
	return l.fail
}

// DumpState implements coherence.L1.
func (l *L1Bypass) DumpState() diag.CacheState {
	return diag.CacheState{
		Name: "bl-l1", ID: l.smID, Pending: l.pending,
		MSHRUsed: len(l.reqByID), MSHRCap: l.maxOutstanding, OutQ: len(l.outQ),
	}
}

// Access implements coherence.L1.
func (l *L1Bypass) Access(req *coherence.Request) coherence.AccessResult {
	if l.pending >= l.maxOutstanding {
		l.stats.MSHRStalls++
		return coherence.Reject
	}
	l.nextID++
	l.reqByID[l.nextID] = req
	l.pending++
	msg := &mem.Msg{
		Block: req.Block, Src: l.smID, Dst: bankOf(req.Block, l.nBanks),
		ReqID: l.nextID, Warp: req.Warp,
	}
	if req.Atomic {
		l.stats.Atomics++
		msg.Type = mem.BusAtom
		msg.Mask = req.Mask
		msg.Atom = req.Atom
		data := &mem.Block{}
		mem.Merge(data, req.Data, req.Mask)
		msg.Data = data
	} else if req.Store {
		l.stats.Stores++
		msg.Type = mem.BusWr
		msg.Mask = req.Mask
		data := &mem.Block{}
		mem.Merge(data, req.Data, req.Mask)
		msg.Data = data
	} else {
		l.stats.Loads++
		l.stats.MissCold++ // every access crosses the NoC
		msg.Type = mem.BusRd
		// The mask rides along so the L2 can observe the load with the
		// words it actually returns (value binds at the L2 under BL).
		msg.Mask = req.Mask
	}
	l.post(msg)
	return coherence.Pending
}

// Deliver implements coherence.L1.
func (l *L1Bypass) Deliver(msg *mem.Msg) {
	if l.fail != nil {
		return
	}
	req, ok := l.reqByID[msg.ReqID]
	if !ok {
		l.failf("unknown-response", "response %v req=%d block=%v has no pending request", msg.Type, msg.ReqID, msg.Block)
		return
	}
	delete(l.reqByID, msg.ReqID)
	l.pending--
	switch msg.Type {
	case mem.BusFill:
		l.stats.Fills++
		out := &mem.Block{}
		mem.Merge(out, msg.Data, req.Mask)
		// Loads are observed at the L2, where their value binds; the
		// shim only delivers the completion.
		req.Done(coherence.Completion{Data: out})
	case mem.BusWrAck:
		l.stats.WriteAcks++
		req.Done(coherence.Completion{})
	case mem.BusAtomAck:
		req.Done(coherence.Completion{Data: msg.Data})
	default:
		l.failf("unexpected-message", "message %v for block %v from bank %d", msg.Type, msg.Block, msg.Src)
	}
}

func (l *L1Bypass) post(msg *mem.Msg) {
	if len(l.outQ) == 0 && l.send.TrySend(msg) {
		return
	}
	l.outQ = append(l.outQ, msg)
}

// SyncClock implements coherence.L1.
func (l *L1Bypass) SyncClock(now uint64) { l.now = now }

// Tick implements coherence.L1.
func (l *L1Bypass) Tick(now uint64) {
	l.now = now
	for len(l.outQ) > 0 {
		if !l.send.TrySend(l.outQ[0]) {
			return
		}
		l.outQ = l.outQ[1:]
	}
}
