package dram

import "github.com/gtsc-sim/gtsc/internal/mem"

// Banked row-buffer timing: when Config.Banked is set, the partition
// models per-bank open rows — a request hitting the open row pays
// RowHitLatency, anything else pays RowMissLatency (precharge +
// activate + access) — with first-come-first-served scheduling per
// bank. This refines the flat-latency mode the paper-scale experiments
// use, for the DRAM-sensitivity ablation.

// bank is one DRAM bank's state.
type bank struct {
	openRow  uint64
	rowValid bool
	busyTill uint64
}

// bankedState holds the per-partition banked-mode machinery.
type bankedState struct {
	banks []bank
}

// bankOf maps a block to a bank within the partition, and rowOf to a
// row within the bank (rows of RowBlocks consecutive blocks).
func (p *Partition) bankIndex(b mem.BlockAddr) int {
	return int((uint64(b) / uint64(p.cfg.RowBlocks)) % uint64(p.cfg.Banks))
}

func (p *Partition) rowOf(b mem.BlockAddr) uint64 {
	return uint64(b) / uint64(p.cfg.RowBlocks) / uint64(p.cfg.Banks)
}

// tickBanked issues at most one request per cycle to a free bank,
// oldest-first, and delivers due fills. The channel still enforces
// IssueInterval between issues.
func (p *Partition) tickBanked(now uint64) {
	if now >= p.nextIssue {
		for i, msg := range p.queue {
			bk := &p.banked.banks[p.bankIndex(msg.Block)]
			if bk.busyTill > now {
				continue // bank busy; try a younger request (FR over banks)
			}
			row := p.rowOf(msg.Block)
			lat := p.cfg.RowMissLatency
			if bk.rowValid && bk.openRow == row {
				lat = p.cfg.RowHitLatency
				p.stats.RowHits++
			} else {
				p.stats.RowMisses++
			}
			bk.openRow = row
			bk.rowValid = true
			bk.busyTill = now + lat
			p.queue = append(p.queue[:i], p.queue[i+1:]...)
			p.nextIssue = now + p.cfg.IssueInterval
			p.stats.BusyCycles += p.cfg.IssueInterval
			p.serve(msg, now, lat)
			break
		}
	}
	p.deliverDue(now)
}
