// Package dram models one GDDR memory partition per L2 bank: a request
// queue, a fixed access latency and a minimum issue interval that
// bounds bandwidth. It also owns the functional backing store so that
// data returned by fills is architecturally correct — the workloads'
// results are verified against sequential references, which requires
// the memory system to actually move real values.
package dram

import (
	"fmt"

	"github.com/gtsc-sim/gtsc/internal/diag"
	"github.com/gtsc-sim/gtsc/internal/mem"
	"github.com/gtsc-sim/gtsc/internal/sched"
	"github.com/gtsc-sim/gtsc/internal/stats"
)

// Config sets the partition timing parameters.
type Config struct {
	// Latency is the cycles from issue to fill delivery in the flat
	// model (default 200).
	Latency uint64
	// IssueInterval is the minimum cycles between issues on one
	// partition, bounding bandwidth (default 4: one 128B block per 4
	// cycles per partition).
	IssueInterval uint64
	// QueueCap bounds the request queue (default 64).
	QueueCap int

	// Banked switches to the per-bank row-buffer model: requests
	// hitting a bank's open row pay RowHitLatency, others pay
	// RowMissLatency; banks serve independently, oldest-first.
	Banked bool
	// Banks per partition (default 8).
	Banks int
	// RowBlocks is the row size in 128-byte blocks (default 16 = 2KB).
	RowBlocks int
	// RowHitLatency (default 120) and RowMissLatency (default 280).
	RowHitLatency  uint64
	RowMissLatency uint64
}

// DefaultConfig returns paper-scale partition parameters (flat model).
func DefaultConfig() Config { return Config{Latency: 200, IssueInterval: 4, QueueCap: 64} }

// DefaultBankedConfig returns the banked row-buffer parameters.
func DefaultBankedConfig() Config {
	cfg := DefaultConfig()
	cfg.Banked = true
	return cfg
}

// Partition is one memory channel. Reads copy the block from the
// backing store at issue time; writes merge into it immediately on
// issue (write completion is not acknowledged — L2 write-backs are
// fire-and-forget, as in GPGPU-Sim's simple DRAM mode).
type Partition struct {
	cfg       Config
	id        int
	store     *mem.Store
	queue     []*mem.Msg
	fills     fillHeap
	seqCtr    uint64
	nextIssue uint64
	stats     stats.DRAMStats
	banked    bankedState
	fail      *diag.ProtocolError
	pool      *mem.Pool

	// Deliver hands a completed DRAMFill back to the owning L2 bank.
	Deliver func(msg *mem.Msg)
}

// SetPool shares a message pool with the partition (normally the
// owning L2 bank's, so the DRAM read->fill->recycle loop is closed).
// The partition then frees every request it consumes into the pool and
// draws its fills from it. Without a pool it allocates fresh fills and
// frees nothing — required for protocols whose L2s do not follow the
// consume-and-free ownership discipline.
func (p *Partition) SetPool(pool *mem.Pool) { p.pool = pool }

// New builds a partition backed by store. The store is shared among
// partitions (it is the single global memory image); address
// interleaving is the caller's concern.
func New(cfg Config, id int, store *mem.Store) *Partition {
	if cfg.Latency == 0 {
		cfg.Latency = DefaultConfig().Latency
	}
	if cfg.IssueInterval == 0 {
		cfg.IssueInterval = DefaultConfig().IssueInterval
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = DefaultConfig().QueueCap
	}
	if cfg.Banks == 0 {
		cfg.Banks = 8
	}
	if cfg.RowBlocks == 0 {
		cfg.RowBlocks = 16
	}
	if cfg.RowHitLatency == 0 {
		cfg.RowHitLatency = 120
	}
	if cfg.RowMissLatency == 0 {
		cfg.RowMissLatency = 280
	}
	p := &Partition{cfg: cfg, id: id, store: store}
	if cfg.Banked {
		p.banked.banks = make([]bank, cfg.Banks)
	}
	return p
}

// Stats returns the partition's counters.
func (p *Partition) Stats() *stats.DRAMStats { return &p.stats }

// Pending reports queued plus in-flight requests.
func (p *Partition) Pending() int { return len(p.queue) + len(p.fills) }

// Err reports the first protocol violation seen by the partition, or
// nil.
func (p *Partition) Err() error {
	if p.fail == nil {
		return nil
	}
	return p.fail
}

// DumpState snapshots the partition for failure diagnostics.
func (p *Partition) DumpState() diag.DRAMState {
	return diag.DRAMState{ID: p.id, Queue: len(p.queue), Fills: len(p.fills)}
}

// Enqueue accepts a DRAMRd or DRAMWr request; it returns false when the
// queue is full and the L2 bank must retry.
func (p *Partition) Enqueue(msg *mem.Msg) bool {
	if len(p.queue) >= p.cfg.QueueCap {
		return false
	}
	p.queue = append(p.queue, msg)
	return true
}

// Tick issues requests and delivers due fills. The flat model issues
// the queue head every IssueInterval with a fixed latency; the banked
// model schedules per-bank with row-buffer timing.
func (p *Partition) Tick(now uint64) {
	if p.cfg.Banked {
		p.tickBanked(now)
		return
	}
	if len(p.queue) > 0 && now >= p.nextIssue {
		msg := p.queue[0]
		// Shift-down dequeue: the queue is bounded by QueueCap and
		// usually near-empty, so copying keeps one backing array alive
		// forever instead of resliced-append churn.
		copy(p.queue, p.queue[1:])
		p.queue[len(p.queue)-1] = nil
		p.queue = p.queue[:len(p.queue)-1]
		p.nextIssue = now + p.cfg.IssueInterval
		p.stats.BusyCycles += p.cfg.IssueInterval
		p.serve(msg, now, p.cfg.Latency)
	}
	p.deliverDue(now)
}

// serve performs one request: reads snapshot and schedule a fill after
// latency; writes apply immediately.
func (p *Partition) serve(msg *mem.Msg, now, latency uint64) {
	switch msg.Type {
	case mem.DRAMRd:
		p.stats.Reads++
		var data *mem.Block
		var fill *mem.Msg
		if p.pool != nil {
			data, fill = p.pool.Block(), p.pool.Msg()
		} else {
			data, fill = &mem.Block{}, &mem.Msg{}
		}
		p.store.ReadBlock(msg.Block, data)
		*fill = mem.Msg{
			Type:  mem.DRAMFill,
			Block: msg.Block,
			Src:   p.id,
			Dst:   msg.Src,
			Data:  data,
			ReqID: msg.ReqID,
		}
		p.fills.push(fill2{at: now + latency, seq: p.fillSeq(), msg: fill})
		p.recycle(msg)
	case mem.DRAMWr:
		p.stats.Writes++
		p.store.WriteBlock(msg.Block, msg.Data, msg.Mask)
		p.recycle(msg)
	default:
		if p.fail == nil {
			p.fail = diag.Errf(fmt.Sprintf("dram[%d]", p.id), "unexpected-message",
				"message %v for block %v from bank %d", msg.Type, msg.Block, msg.Src)
		}
	}
}

// deliverDue hands completed fills to the L2.
func (p *Partition) deliverDue(now uint64) {
	for len(p.fills) > 0 && p.fills[0].at <= now {
		f := p.fills.pop()
		p.Deliver(f.msg)
	}
}

// fillSeq is the FIFO tiebreak for fills due the same cycle, keeping
// delivery order deterministic and independent of heap layout.
func (p *Partition) fillSeq() uint64 { p.seqCtr++; return p.seqCtr }

// recycle frees a consumed request (and its payload) into the shared
// pool; a no-op without one.
func (p *Partition) recycle(msg *mem.Msg) {
	if p.pool == nil {
		return
	}
	p.pool.PutBlock(msg.Data)
	p.pool.PutMsg(msg)
}

type fill2 struct {
	at  uint64
	seq uint64
	msg *mem.Msg
}

// fillHeap is a hand-rolled binary min-heap ordered by (at, seq). It
// replaces container/heap to avoid interface boxing on the fill path;
// (at, seq) is a total order, so pop order is fully deterministic.
type fillHeap []fill2

func (h fillHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *fillHeap) push(f fill2) {
	*h = append(*h, f)
	s := *h
	for i := len(s) - 1; i > 0; {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *fillHeap) pop() fill2 {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s[last] = fill2{} // drop the msg reference for the GC
	s = s[:last]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= len(s) {
			break
		}
		c := l
		if r < len(s) && s.less(r, l) {
			c = r
		}
		if !s.less(c, i) {
			break
		}
		s[i], s[c] = s[c], s[i]
		i = c
	}
	return top
}

// Never is the NextEvent result when no event is scheduled at all
// (shared sentinel, see internal/sched).
const Never = sched.Never

// NextEvent returns the earliest future cycle (> now) at which ticking
// the partition could change state: the next issue opportunity while
// requests are queued, or the earliest scheduled fill delivery. The
// queued-request bound is conservative for the banked model (a free
// bank may appear later than nextIssue), which only shortens skip
// windows, never reorders events. Returns Never when idle.
//
// The per-component wake dispatcher skips Tick entirely on cycles
// before the registered wake, so this bound carries a no-op contract:
// for any u with now < u < NextEvent(now), Tick(u) must not change
// state. That holds because the partition keeps no local clock — all
// timing state (nextIssue, fill due-times, bank busyTill) is absolute —
// and both tick bodies only act when now reaches one of those
// deadlines, each of which is >= the bound returned here. New work can
// only arrive via Enqueue, whose caller (the owning L2, see
// memsys.dramSender) re-registers the wake at enqueue time.
func (p *Partition) NextEvent(now uint64) uint64 {
	next := uint64(Never)
	if len(p.queue) > 0 {
		next = max(p.nextIssue, now+1)
	}
	if len(p.fills) > 0 {
		next = min(next, max(p.fills[0].at, now+1))
	}
	return next
}
