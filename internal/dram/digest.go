package dram

import (
	"fmt"
	"io"
	"sort"

	"github.com/gtsc-sim/gtsc/internal/mem"
)

// DigestState writes a canonical, process-independent rendering of the
// partition: the request queue in arrival order and the scheduled fill
// heap sorted by (completion, sequence). The issue/sequence cursors
// are included because they determine all future scheduling.
func (p *Partition) DigestState(w io.Writer) {
	fmt.Fprintf(w, "dram[%d] seq=%d next=%d\n", p.id, p.seqCtr, p.nextIssue)
	mem.DigestMsgs(w, "q", p.queue)
	fills := make([]fill2, len(p.fills))
	copy(fills, p.fills)
	sort.Slice(fills, func(i, j int) bool {
		if fills[i].at != fills[j].at {
			return fills[i].at < fills[j].at
		}
		return fills[i].seq < fills[j].seq
	})
	for _, f := range fills {
		fmt.Fprintf(w, "fill %d %d ", f.at, f.seq)
		f.msg.DigestInto(w)
	}
	for i := range p.banked.banks {
		b := &p.banked.banks[i]
		if !b.rowValid && b.busyTill == 0 {
			continue
		}
		fmt.Fprintf(w, "bank %d row=%d v=%t busy=%d\n", i, b.openRow, b.rowValid, b.busyTill)
	}
}
