package dram

import (
	"strings"
	"testing"

	"github.com/gtsc-sim/gtsc/internal/mem"
)

func newTestPartition(cfg Config) (*Partition, *mem.Store, *[]*mem.Msg) {
	store := mem.NewStore()
	p := New(cfg, 0, store)
	fills := &[]*mem.Msg{}
	p.Deliver = func(msg *mem.Msg) { *fills = append(*fills, msg) }
	return p, store, fills
}

func TestReadLatency(t *testing.T) {
	p, store, fills := newTestPartition(Config{Latency: 50, IssueInterval: 1, QueueCap: 4})
	store.WriteWord(mem.BlockAddr(3).WordAddr(2), 77)
	if !p.Enqueue(&mem.Msg{Type: mem.DRAMRd, Block: 3, Src: 0}) {
		t.Fatal("enqueue rejected")
	}
	for c := uint64(1); c <= 50; c++ {
		p.Tick(c)
		if len(*fills) != 0 {
			t.Fatalf("fill too early at cycle %d", c)
		}
	}
	p.Tick(51)
	if len(*fills) != 1 {
		t.Fatal("fill missing")
	}
	f := (*fills)[0]
	if f.Type != mem.DRAMFill || f.Block != 3 || f.Data.Words[2] != 77 {
		t.Fatalf("bad fill %+v", f)
	}
	if p.Pending() != 0 {
		t.Fatal("should be drained")
	}
}

func TestWriteUpdatesStore(t *testing.T) {
	p, store, _ := newTestPartition(Config{Latency: 10, IssueInterval: 1, QueueCap: 4})
	data := &mem.Block{}
	data.Words[5] = 123
	p.Enqueue(&mem.Msg{Type: mem.DRAMWr, Block: 9, Data: data, Mask: mem.WordMask(0).Set(5)})
	p.Tick(1)
	if got := store.ReadWord(mem.BlockAddr(9).WordAddr(5)); got != 123 {
		t.Fatalf("store not updated: %d", got)
	}
	if p.Stats().Writes != 1 {
		t.Fatal("write not counted")
	}
}

func TestIssueIntervalBoundsBandwidth(t *testing.T) {
	p, _, fills := newTestPartition(Config{Latency: 5, IssueInterval: 10, QueueCap: 8})
	for i := 0; i < 3; i++ {
		p.Enqueue(&mem.Msg{Type: mem.DRAMRd, Block: mem.BlockAddr(i)})
	}
	// At 1 issue per 10 cycles, the third read issues at cycle ~21 and
	// fills at ~26; by cycle 16 only two fills can exist.
	for c := uint64(1); c <= 16; c++ {
		p.Tick(c)
	}
	if len(*fills) > 2 {
		t.Fatalf("bandwidth not limited: %d fills by cycle 16", len(*fills))
	}
	for c := uint64(17); c <= 40; c++ {
		p.Tick(c)
	}
	if len(*fills) != 3 {
		t.Fatalf("all fills should complete, got %d", len(*fills))
	}
}

func TestQueueCap(t *testing.T) {
	p, _, _ := newTestPartition(Config{Latency: 5, IssueInterval: 100, QueueCap: 2})
	if !p.Enqueue(&mem.Msg{Type: mem.DRAMRd, Block: 1}) ||
		!p.Enqueue(&mem.Msg{Type: mem.DRAMRd, Block: 2}) {
		t.Fatal("first two must fit")
	}
	if p.Enqueue(&mem.Msg{Type: mem.DRAMRd, Block: 3}) {
		t.Fatal("third must be rejected")
	}
}

func TestReadSnapshotsAtIssue(t *testing.T) {
	// The data returned reflects the store contents at issue time.
	p, store, fills := newTestPartition(Config{Latency: 20, IssueInterval: 1, QueueCap: 4})
	store.WriteWord(mem.BlockAddr(1).WordAddr(0), 1)
	p.Enqueue(&mem.Msg{Type: mem.DRAMRd, Block: 1})
	p.Tick(1) // issues, snapshots value 1
	store.WriteWord(mem.BlockAddr(1).WordAddr(0), 2)
	for c := uint64(2); c <= 25; c++ {
		p.Tick(c)
	}
	if (*fills)[0].Data.Words[0] != 1 {
		t.Fatalf("expected snapshot value 1, got %d", (*fills)[0].Data.Words[0])
	}
}

func TestUnexpectedMessageFails(t *testing.T) {
	p, _, _ := newTestPartition(Config{})
	p.Enqueue(&mem.Msg{Type: mem.BusRd})
	p.Tick(1)
	err := p.Err()
	if err == nil {
		t.Fatal("BusRd at DRAM should record a protocol error")
	}
	if !strings.Contains(err.Error(), "unexpected-message") {
		t.Fatalf("wrong error: %v", err)
	}
}

func TestBankedRowBuffer(t *testing.T) {
	cfg := Config{Banked: true, IssueInterval: 1, QueueCap: 16,
		Banks: 2, RowBlocks: 4, RowHitLatency: 10, RowMissLatency: 100}
	p, store, fills := newTestPartition(cfg)
	store.WriteWord(mem.BlockAddr(0).WordAddr(0), 1)

	// Two reads in the same row: one miss, one hit.
	p.Enqueue(&mem.Msg{Type: mem.DRAMRd, Block: 0})
	p.Enqueue(&mem.Msg{Type: mem.DRAMRd, Block: 1}) // same row (RowBlocks=4)
	for c := uint64(1); c <= 150; c++ {
		p.Tick(c)
	}
	if len(*fills) != 2 {
		t.Fatalf("fills: %d", len(*fills))
	}
	if p.Stats().RowMisses != 1 || p.Stats().RowHits != 1 {
		t.Fatalf("row outcomes: %d misses, %d hits", p.Stats().RowMisses, p.Stats().RowHits)
	}
}

func TestBankedParallelism(t *testing.T) {
	cfg := Config{Banked: true, IssueInterval: 1, QueueCap: 16,
		Banks: 2, RowBlocks: 1, RowHitLatency: 10, RowMissLatency: 50}
	p, _, fills := newTestPartition(cfg)
	// Blocks 0 and 1 land in different banks (RowBlocks=1): both can be
	// in flight concurrently, so both fills complete within ~55 cycles
	// rather than ~100 serial.
	p.Enqueue(&mem.Msg{Type: mem.DRAMRd, Block: 0})
	p.Enqueue(&mem.Msg{Type: mem.DRAMRd, Block: 1})
	for c := uint64(1); c <= 60; c++ {
		p.Tick(c)
	}
	if len(*fills) != 2 {
		t.Fatalf("bank-level parallelism missing: %d fills by cycle 60", len(*fills))
	}
}

func TestBankedBusyBankDefersToYounger(t *testing.T) {
	cfg := Config{Banked: true, IssueInterval: 1, QueueCap: 16,
		Banks: 2, RowBlocks: 1, RowHitLatency: 10, RowMissLatency: 50}
	p, _, fills := newTestPartition(cfg)
	// Two requests to bank 0 and one to bank 1: the bank-1 request may
	// issue while bank 0 is busy with the first.
	p.Enqueue(&mem.Msg{Type: mem.DRAMRd, Block: 0})
	p.Enqueue(&mem.Msg{Type: mem.DRAMRd, Block: 2}) // bank 0 again
	p.Enqueue(&mem.Msg{Type: mem.DRAMRd, Block: 1}) // bank 1
	for c := uint64(1); c <= 60; c++ {
		p.Tick(c)
	}
	// By cycle 60: block 0 (miss, 50) + block 1 (miss, 50, issued at
	// cycle ~2) are done; block 2 waits behind bank 0.
	if len(*fills) != 2 {
		t.Fatalf("expected 2 fills by cycle 60, got %d", len(*fills))
	}
	for c := uint64(61); c <= 160; c++ {
		p.Tick(c)
	}
	if len(*fills) != 3 {
		t.Fatalf("all fills must eventually complete, got %d", len(*fills))
	}
}
