// Package diag defines the structured failure types the simulator
// reports when a run goes wrong: typed protocol errors raised by the
// coherence controllers in place of panics, a deadlock error raised by
// the forward-progress watchdog, and the machine-state dump both carry
// so a wedged or misbehaving machine can be diagnosed from its error
// alone. The package is dependency-free so every layer of the
// simulator can use it.
package diag

import (
	"fmt"
	"sort"
	"strings"
)

// ProtocolError reports a coherence-protocol invariant violation: a
// controller received a message or reached a state its state machine
// has no transition for. Controllers record the first such violation
// and stop processing; the simulator surfaces it with a state dump.
type ProtocolError struct {
	// Component names the failing controller, e.g. "gtsc-l1[3]".
	Component string
	// Event is a short machine-readable tag, e.g. "unexpected-message".
	Event string
	// Detail is the human-readable specifics.
	Detail string
	// Dump is the machine state at the time the error surfaced; it is
	// attached by the simulator, not the controller.
	Dump *StateDump
}

// Errf builds a ProtocolError. Controllers use it in place of panic.
func Errf(component, event, format string, args ...any) *ProtocolError {
	return &ProtocolError{
		Component: component,
		Event:     event,
		Detail:    fmt.Sprintf(format, args...),
	}
}

// Error implements error with a one-line summary. The full dump is
// available via Dump.
func (e *ProtocolError) Error() string {
	return fmt.Sprintf("protocol error: %s: %s: %s", e.Component, e.Event, e.Detail)
}

// ConfigError reports a configuration the simulated machine cannot run
// correctly — e.g. a G-TSC lease too large for the timestamp width, so
// the §V-D overflow reset could never make forward progress. It is
// returned from validation paths in place of the panics they replaced.
type ConfigError struct {
	// Component names the subsystem rejecting the config, e.g. "gtsc".
	Component string
	// Param names the offending parameter(s), e.g. "Lease/TSBits".
	Param string
	// Detail is the human-readable specifics.
	Detail string
}

// ConfigErrf builds a ConfigError.
func ConfigErrf(component, param, format string, args ...any) *ConfigError {
	return &ConfigError{
		Component: component,
		Param:     param,
		Detail:    fmt.Sprintf(format, args...),
	}
}

// Error implements error.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("config error: %s: %s: %s", e.Component, e.Param, e.Detail)
}

// DeadlockError reports that the machine stopped making forward
// progress: no instructions issued, no warps retired and no memory
// traffic moved for StalledFor cycles (Reason "no-forward-progress"),
// or the hard cycle budget was exhausted (Reason "max-cycles").
type DeadlockError struct {
	Kernel string
	// Phase is "run" during kernel execution or "drain" during the
	// kernel-boundary flush.
	Phase      string
	Reason     string
	Cycle      uint64
	StalledFor uint64
	Pending    int
	Dump       *StateDump
}

// Error implements error with a one-line summary.
func (e *DeadlockError) Error() string {
	return fmt.Sprintf("deadlock: kernel %q %s at cycle %d (%s; stalled %d cycles; pending=%d)",
		e.Kernel, e.Phase, e.Cycle, e.Reason, e.StalledFor, e.Pending)
}

// CanceledError reports that a run was suspended by context
// cancellation (Ctrl-C, -timeout deadline, or a session shutdown)
// rather than by a failure. The machine state behind it is intact and
// paused: the cycle coordinate it carries, replayed deterministically,
// reproduces the exact machine state — which is what checkpoints store.
type CanceledError struct {
	Kernel string
	// Phase is "run" or "drain", as for DeadlockError.
	Phase string
	// Cycle is the global clock at suspension: the machine has executed
	// exactly this many cycles since construction.
	Cycle uint64
	// KernelIndex counts the kernels that had fully completed on this
	// simulator before the canceled one.
	KernelIndex int
	// Cause is the context's cancellation cause (context.Canceled,
	// context.DeadlineExceeded, or a caller-supplied cause).
	Cause error
}

// Error implements error with a one-line summary.
func (e *CanceledError) Error() string {
	return fmt.Sprintf("canceled: kernel %q %s at cycle %d (kernel index %d): %v",
		e.Kernel, e.Phase, e.Cycle, e.KernelIndex, e.Cause)
}

// Unwrap exposes the cancellation cause, so errors.Is(err,
// context.Canceled) works through a CanceledError.
func (e *CanceledError) Unwrap() error { return e.Cause }

// WorkerPanicError reports a panic captured inside an experiment
// worker and converted into a typed error, so one panicking run aborts
// only its own (workload, variant) cell instead of the whole process.
type WorkerPanicError struct {
	// Key identifies the run (the session cache key).
	Key string
	// Value is the recovered panic value, rendered.
	Value string
	// Stack is the goroutine stack at the panic site.
	Stack string
}

// Error implements error with a one-line summary; the stack is
// available via the Stack field.
func (e *WorkerPanicError) Error() string {
	return fmt.Sprintf("worker panic in %s: %s", e.Key, e.Value)
}

// RemoteError reports a sweep-service request the coordinator
// REJECTED — a non-2xx response carrying a reason, as opposed to a
// transport failure (which the client retries). Rejections are
// terminal for the request: retrying an invalid submit or a stale
// lease operation cannot succeed.
type RemoteError struct {
	// Op is the API path that was rejected (e.g. "/api/lease").
	Op string
	// Status is the HTTP status code of the rejection.
	Status int
	// Msg is the coordinator's reason line.
	Msg string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("sweep coordinator rejected %s (HTTP %d): %s", e.Op, e.Status, e.Msg)
}

// StateDump is a structured snapshot of the whole machine, assembled
// when a run fails: per-SM warp states, per-controller occupancy, NoC
// queue depths and the in-flight transaction table.
type StateDump struct {
	Cycle uint64
	SMs   []SMState
	L1s   []CacheState
	L2s   []CacheState
	NoC   NoCState
	DRAMs []DRAMState
	// Faults describes the active fault-injection plan, if any.
	Faults string
}

// SMState snapshots one streaming multiprocessor.
type SMState struct {
	ID        int
	LiveWarps int
	LDSTQueue int // memory jobs waiting in the load-store unit
	Warps     []WarpState
}

// WarpState snapshots one resident, unfinished warp.
type WarpState struct {
	ID            int
	CTA           int
	AtBarrier     bool
	Dispatching   bool
	PendingAcc    int
	PendingStores int
	BusyUntil     uint64
	GWCT          uint64
}

// CacheState snapshots one cache controller's occupancy. Fields that
// do not apply to a given controller are zero.
type CacheState struct {
	Name     string
	ID       int
	Pending  int
	MSHRUsed int
	MSHRCap  int
	InQ      int // L2 input queue
	OutQ     int // backpressured output messages
	Misses   int // outstanding DRAM misses (L2)
	Blocked  int // blocked/stalled protocol transactions
	// Detail is optional controller-specific text (MSHR contents,
	// transient states), kept short.
	Detail string
}

// NoCState snapshots the interconnect.
type NoCState struct {
	InFlight int
	ToL2     []PortState
	ToL1     []PortState
	// Wire lists in-flight messages (the transaction table), capped at
	// WireCap entries; WireTotal is the uncapped count.
	Wire      []TxnState
	WireTotal int
}

// PortState is one injection port's queue depth and serialization
// state. Only busy ports are included in a dump, so ID names the port.
type PortState struct {
	ID        int
	Queue     int
	BusyUntil uint64
}

// TxnState is one in-flight NoC message.
type TxnState struct {
	Due   uint64
	Type  string
	Block string
	Src   int
	Dst   int
	ToL2  bool
}

// DRAMState snapshots one DRAM partition.
type DRAMState struct {
	ID       int
	Queue    int
	Fills    int // scheduled read completions
	Deferred int // fault-shim held fills
}

// WireCap bounds the rendered transaction table.
const WireCap = 32

// String renders the dump for terminals and test failures.
func (d *StateDump) String() string {
	if d == nil {
		return "<no state dump>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "=== machine state @ cycle %d ===\n", d.Cycle)
	if d.Faults != "" {
		fmt.Fprintf(&b, "fault plan: %s\n", d.Faults)
	}
	for i := range d.SMs {
		sm := &d.SMs[i]
		if sm.LiveWarps == 0 && len(sm.Warps) == 0 {
			continue
		}
		fmt.Fprintf(&b, "SM[%d]: live=%d ldst-queue=%d\n", sm.ID, sm.LiveWarps, sm.LDSTQueue)
		for j, w := range sm.Warps {
			if j >= 8 {
				fmt.Fprintf(&b, "  ... %d more warps\n", len(sm.Warps)-j)
				break
			}
			var flags []string
			if w.AtBarrier {
				flags = append(flags, "barrier")
			}
			if w.Dispatching {
				flags = append(flags, "dispatching")
			}
			if w.BusyUntil > d.Cycle {
				flags = append(flags, fmt.Sprintf("busy-until=%d", w.BusyUntil))
			}
			state := "stalled"
			if len(flags) > 0 {
				state = strings.Join(flags, ",")
			}
			fmt.Fprintf(&b, "  warp %d (cta %d): %s acc=%d stores=%d",
				w.ID, w.CTA, state, w.PendingAcc, w.PendingStores)
			if w.GWCT != 0 {
				fmt.Fprintf(&b, " gwct=%d", w.GWCT)
			}
			b.WriteByte('\n')
		}
	}
	writeCaches(&b, d.L1s)
	writeCaches(&b, d.L2s)
	b.WriteString(d.NoC.render())
	for _, p := range d.DRAMs {
		if p.Queue == 0 && p.Fills == 0 && p.Deferred == 0 {
			continue
		}
		fmt.Fprintf(&b, "DRAM[%d]: queue=%d fills=%d", p.ID, p.Queue, p.Fills)
		if p.Deferred > 0 {
			fmt.Fprintf(&b, " deferred=%d", p.Deferred)
		}
		b.WriteByte('\n')
	}
	b.WriteString("=== end state ===")
	return b.String()
}

func writeCaches(b *strings.Builder, cs []CacheState) {
	for i := range cs {
		c := &cs[i]
		if c.Pending == 0 && c.InQ == 0 && c.OutQ == 0 && c.Misses == 0 && c.Blocked == 0 && c.MSHRUsed == 0 {
			continue
		}
		fmt.Fprintf(b, "%s[%d]: pending=%d", c.Name, c.ID, c.Pending)
		if c.MSHRCap > 0 {
			fmt.Fprintf(b, " mshr=%d/%d", c.MSHRUsed, c.MSHRCap)
		}
		if c.InQ > 0 {
			fmt.Fprintf(b, " inq=%d", c.InQ)
		}
		if c.OutQ > 0 {
			fmt.Fprintf(b, " outq=%d", c.OutQ)
		}
		if c.Misses > 0 {
			fmt.Fprintf(b, " misses=%d", c.Misses)
		}
		if c.Blocked > 0 {
			fmt.Fprintf(b, " blocked=%d", c.Blocked)
		}
		b.WriteByte('\n')
		if c.Detail != "" {
			for _, line := range strings.Split(strings.TrimRight(c.Detail, "\n"), "\n") {
				fmt.Fprintf(b, "  %s\n", line)
			}
		}
	}
}

func (n *NoCState) render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "NoC: in-flight=%d", n.InFlight)
	var busy []string
	for _, p := range n.ToL2 {
		if p.Queue > 0 {
			busy = append(busy, fmt.Sprintf("sm%d:%d", p.ID, p.Queue))
		}
	}
	for _, p := range n.ToL1 {
		if p.Queue > 0 {
			busy = append(busy, fmt.Sprintf("bank%d:%d", p.ID, p.Queue))
		}
	}
	if len(busy) > 0 {
		fmt.Fprintf(&b, " queued[%s]", strings.Join(busy, " "))
	}
	b.WriteByte('\n')
	if len(n.Wire) > 0 {
		txns := append([]TxnState(nil), n.Wire...)
		sort.Slice(txns, func(i, j int) bool {
			if txns[i].Due != txns[j].Due {
				return txns[i].Due < txns[j].Due
			}
			return txns[i].Src < txns[j].Src
		})
		for _, t := range txns {
			dir := "->L1"
			if t.ToL2 {
				dir = "->L2"
			}
			fmt.Fprintf(&b, "  wire%s %s %s %d->%d due=%d\n", dir, t.Type, t.Block, t.Src, t.Dst, t.Due)
		}
		if n.WireTotal > len(n.Wire) {
			fmt.Fprintf(&b, "  ... %d more in flight\n", n.WireTotal-len(n.Wire))
		}
	}
	return b.String()
}
