// Package check verifies protocol correctness from a global log of
// performed memory operations.
//
// The central invariant is the paper's timestamp ordering (§III-A):
//
//	Op1 -> Op2  <=>  Op1 <ts Op2, or Op1 =ts Op2 and Op1 <time Op2
//
// i.e. the value every load returns must be the value written by the
// last store ordered before it under (timestamp, physical time). The
// simulator reports each operation's timestamp and an observation
// sequence consistent with simulated causality, so the checker can
// replay the order and compare values word by word.
//
// For protocols ordered purely in physical time (TC-Strong, BL), the
// corresponding invariant is per-location linearizability in
// observation order, which CheckPhysical verifies.
package check

import (
	"fmt"
	"sort"
	"sync"

	"github.com/gtsc-sim/gtsc/internal/coherence"
	"github.com/gtsc-sim/gtsc/internal/mem"
)

// Record is one logged operation plus its observation sequence number.
type Record struct {
	coherence.Op
	Seq uint64
}

// Recorder collects every performed operation. It implements
// coherence.Observer. A mutex keeps it safe if runs are ever driven
// from multiple goroutines (e.g. parallel tests each with their own
// simulator share nothing, but belt and braces).
type Recorder struct {
	mu  sync.Mutex
	ops []Record
	seq uint64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Observe implements coherence.Observer.
func (r *Recorder) Observe(op coherence.Op) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	r.ops = append(r.ops, Record{Op: op, Seq: r.seq})
}

// Ops returns a copy of the log in observation order. The copy is
// made under the lock so callers never alias the live slice a
// concurrent Observe may be appending to.
func (r *Recorder) Ops() []Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Record, len(r.ops))
	copy(out, r.ops)
	return out
}

// Len returns the number of recorded operations.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ops)
}

// Reset clears the log.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops = nil
	r.seq = 0
}

// wordKey identifies one word of global memory.
type wordKey struct {
	block mem.BlockAddr
	word  int
}

// Violation describes one failed check.
type Violation struct {
	Load     Record
	Word     int
	Got      uint32
	Want     uint32
	LastStTS uint64
}

// Error renders the violation.
func (v *Violation) Error() string {
	return fmt.Sprintf("check: load (sm %d warp %d ts %d seq %d cycle %d) of %v word %d returned %#x, want %#x (last store ts %d)",
		v.Load.SM, v.Load.Warp, v.Load.TS, v.Load.Seq, v.Load.Cycle,
		v.Load.Block, v.Word, v.Got, v.Want, v.LastStTS)
}

// CheckTimestampOrder verifies the timestamp-ordering invariant over
// the log: per word, with operations sorted by (TS, Seq), every load
// returns the value of the latest preceding store (memory reads as
// zero before the first store). It returns every violation found, up
// to max (0 = unlimited).
func CheckTimestampOrder(ops []Record, max int) []Violation {
	perWord := splitByWord(ops)
	var out []Violation
	for _, list := range perWord {
		sort.SliceStable(list, func(i, j int) bool {
			if list[i].rec.TS != list[j].rec.TS {
				return list[i].rec.TS < list[j].rec.TS
			}
			return list[i].rec.Seq < list[j].rec.Seq
		})
		out = append(out, scanList(list, max-len(out))...)
		if max > 0 && len(out) >= max {
			return out
		}
	}
	return out
}

// CheckPhysical verifies per-location linearizability in observation
// order: per word, every load returns the value of the latest store
// observed before it. Valid for protocols whose global memory order is
// physical time (TC-Strong, the no-L1 baseline, the non-coherent L1 on
// private data).
func CheckPhysical(ops []Record, max int) []Violation {
	perWord := splitByWord(ops)
	var out []Violation
	for _, list := range perWord {
		sort.SliceStable(list, func(i, j int) bool { return list[i].rec.Seq < list[j].rec.Seq })
		out = append(out, scanList(list, max-len(out))...)
		if max > 0 && len(out) >= max {
			return out
		}
	}
	return out
}

type wordOp struct {
	rec  Record
	word int
}

func splitByWord(ops []Record) map[wordKey][]wordOp {
	perWord := make(map[wordKey][]wordOp)
	for _, r := range ops {
		for w := 0; w < mem.WordsPerBlock; w++ {
			if r.Mask.Has(w) {
				k := wordKey{block: r.Block, word: w}
				perWord[k] = append(perWord[k], wordOp{rec: r, word: w})
			}
		}
	}
	return perWord
}

func scanList(list []wordOp, budget int) []Violation {
	var out []Violation
	var cur uint32
	var lastTS uint64
	// Kernel Init writes bypass the observer, so a word's initial
	// value is unknown: it is inferred from the first ordered load.
	// Every further load before the first store must agree with it.
	initKnown, stored := false, false
	for _, o := range list {
		v := o.rec.Data.Words[o.word]
		if o.rec.Op.Store {
			cur = v
			lastTS = o.rec.TS
			stored = true
			continue
		}
		if !stored && !initKnown {
			cur = v
			initKnown = true
			continue
		}
		if v != cur {
			out = append(out, Violation{Load: o.rec, Word: o.word, Got: v, Want: cur, LastStTS: lastTS})
			if budget > 0 && len(out) >= budget {
				return out
			}
		}
	}
	return out
}

// CheckWarpMonotonic verifies that each warp's operations carry
// non-decreasing timestamps in completion order — which equals program
// order under SC (one outstanding reference per warp), where Tardis
// guarantees monotonic warp timestamps.
func CheckWarpMonotonic(ops []Record) []error {
	type warpKey struct{ sm, warp int }
	last := make(map[warpKey]Record)
	var errs []error
	for _, r := range ops {
		k := warpKey{r.SM, r.Warp}
		if prev, ok := last[k]; ok && r.TS < prev.TS {
			errs = append(errs, fmt.Errorf(
				"check: warp (sm %d, warp %d) timestamp went backwards: %d (seq %d) after %d (seq %d)",
				r.SM, r.Warp, r.TS, r.Seq, prev.TS, prev.Seq))
		}
		last[k] = r
	}
	return errs
}

// Summary counts loads and stores in a log (test diagnostics).
func Summary(ops []Record) (loads, stores int) {
	for _, r := range ops {
		if r.Op.Store {
			stores++
		} else {
			loads++
		}
	}
	return loads, stores
}
