package check

import (
	"testing"
	"testing/quick"

	"github.com/gtsc-sim/gtsc/internal/coherence"
	"github.com/gtsc-sim/gtsc/internal/mem"
)

func op(store bool, block mem.BlockAddr, word int, val uint32, ts uint64) coherence.Op {
	o := coherence.Op{Store: store, Block: block, Mask: mem.WordMask(0).Set(word), TS: ts}
	o.Data.Words[word] = val
	return o
}

func record(ops ...coherence.Op) []Record {
	r := NewRecorder()
	for _, o := range ops {
		r.Observe(o)
	}
	return r.Ops()
}

func TestTimestampOrderAcceptsSerialHistory(t *testing.T) {
	ops := record(
		op(true, 1, 0, 10, 5),
		op(false, 1, 0, 10, 6),
		op(true, 1, 0, 20, 8),
		op(false, 1, 0, 20, 9),
	)
	if v := CheckTimestampOrder(ops, 0); len(v) != 0 {
		t.Fatalf("valid history rejected: %v", v[0].Error())
	}
}

func TestTimestampOrderUsesTSNotSeq(t *testing.T) {
	// A load observed *after* a store in physical order but with a
	// smaller timestamp is ordered before it — must return the old
	// value. (This is G-TSC's whole point: reads in the logical past.)
	ops := record(
		op(true, 1, 0, 10, 5),
		op(true, 1, 0, 20, 12), // the "future" store
		op(false, 1, 0, 10, 7), // logically before it: wants 10
	)
	if v := CheckTimestampOrder(ops, 0); len(v) != 0 {
		t.Fatalf("logical-past read rejected: %v", v[0].Error())
	}
	bad := record(
		op(true, 1, 0, 10, 5),
		op(true, 1, 0, 20, 12),
		op(false, 1, 0, 20, 7), // claims ts 7 yet saw the ts-12 value
	)
	if v := CheckTimestampOrder(bad, 0); len(v) != 1 {
		t.Fatalf("future-value read must be flagged, got %d violations", len(v))
	}
}

func TestTimestampOrderTieBreakBySeq(t *testing.T) {
	// Equal timestamps order by observation sequence (physical time),
	// per the paper's ordering rule.
	ops := record(
		op(true, 1, 0, 33, 9),
		op(false, 1, 0, 33, 9), // same ts, observed later: sees the store
	)
	if v := CheckTimestampOrder(ops, 0); len(v) != 0 {
		t.Fatalf("tie-break history rejected: %v", v[0].Error())
	}
}

func TestInitialValueInference(t *testing.T) {
	// Loads before any store define and must agree on the initial
	// value (kernel Init bypasses the observer).
	good := record(
		op(false, 1, 0, 42, 3),
		op(false, 1, 0, 42, 5),
	)
	if v := CheckTimestampOrder(good, 0); len(v) != 0 {
		t.Fatal("consistent pre-store loads rejected")
	}
	bad := record(
		op(false, 1, 0, 42, 3),
		op(false, 1, 0, 43, 5), // disagrees with inferred initial value
	)
	if v := CheckTimestampOrder(bad, 0); len(v) != 1 {
		t.Fatalf("inconsistent pre-store loads must be flagged, got %d", len(v))
	}
}

func TestCheckPhysical(t *testing.T) {
	good := record(
		op(true, 2, 1, 7, 0),
		op(false, 2, 1, 7, 0),
	)
	if v := CheckPhysical(good, 0); len(v) != 0 {
		t.Fatal("linearizable history rejected")
	}
	bad := record(
		op(true, 2, 1, 7, 0),
		op(false, 2, 1, 99, 0),
	)
	if v := CheckPhysical(bad, 0); len(v) != 1 {
		t.Fatal("stale read must be flagged")
	}
}

func TestViolationLimit(t *testing.T) {
	var ops []coherence.Op
	ops = append(ops, op(true, 1, 0, 1, 1))
	for i := 0; i < 10; i++ {
		ops = append(ops, op(false, 1, 0, 999, uint64(i+2)))
	}
	if v := CheckTimestampOrder(record(ops...), 3); len(v) != 3 {
		t.Fatalf("limit not honoured: %d", len(v))
	}
}

func TestWarpMonotonic(t *testing.T) {
	r := NewRecorder()
	r.Observe(coherence.Op{SM: 0, Warp: 1, TS: 5})
	r.Observe(coherence.Op{SM: 0, Warp: 1, TS: 5})
	r.Observe(coherence.Op{SM: 0, Warp: 1, TS: 9})
	r.Observe(coherence.Op{SM: 1, Warp: 1, TS: 2}) // different warp: fine
	if errs := CheckWarpMonotonic(r.Ops()); len(errs) != 0 {
		t.Fatalf("monotonic history rejected: %v", errs[0])
	}
	r.Observe(coherence.Op{SM: 0, Warp: 1, TS: 4}) // regression
	if errs := CheckWarpMonotonic(r.Ops()); len(errs) != 1 {
		t.Fatal("regression must be flagged")
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	r.Observe(op(true, 1, 0, 1, 1))
	r.Observe(op(false, 1, 0, 1, 2))
	if r.Len() != 2 {
		t.Fatal("len wrong")
	}
	if r.Ops()[0].Seq >= r.Ops()[1].Seq {
		t.Fatal("sequence numbers must increase")
	}
	loads, stores := Summary(r.Ops())
	if loads != 1 || stores != 1 {
		t.Fatal("summary wrong")
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("reset failed")
	}
}

// TestTimestampOrderAcrossRollover pins the §V-D rollover contract
// between the simulator and this checker: Op.TS is the UNROLLED
// timestamp, epoch*(tsMax+1)+ts, so a mid-log overflow reset appears
// as a jump to the next epoch's range, never as a wrap back to small
// values. An MP (message-passing) litmus log whose raw 8-bit
// timestamps wrap mid-history must verify when unrolled — and the
// same history logged with raw (un-unrolled) timestamps must fail,
// which is what makes the checker a real rollover oracle.
func TestTimestampOrderAcrossRollover(t *testing.T) {
	const span = uint64(256) // tsMax+1 at TSBits=8
	// Epoch 0: data and flag stored near the top of the 8-bit range;
	// epoch 1 (post-reset): both loads carry unrolled timestamps.
	good := record(
		op(false, 1, 0, 0, 250),    // data reads 0 before the store
		op(true, 1, 0, 7, 254),     // data = 7, raw ts 254
		op(true, 2, 0, 1, 255),     // flag = 1, raw ts 255 (counter saturated)
		op(false, 2, 0, 1, span+3), // flag read after reset: epoch 1, raw 3
		op(false, 1, 0, 7, span+4), // data read: sees the pre-reset store
	)
	if v := CheckTimestampOrder(good, 0); len(v) != 0 {
		t.Fatalf("wrapping litmus log rejected despite unrolled timestamps: %v", v[0].Error())
	}

	// The same execution logged WITHOUT unrolling: the post-reset data
	// read's raw timestamp (4) sorts before every epoch-0 operation,
	// so it claims to be in the logical past yet returns the store's
	// value — the checker must flag the misordering. (It surfaces as a
	// violation on the pre-store read: the wrapped load usurps the
	// initial-value inference.)
	bad := record(
		op(false, 1, 0, 0, 250),
		op(true, 1, 0, 7, 254),
		op(true, 2, 0, 1, 255),
		op(false, 2, 0, 1, 3),
		op(false, 1, 0, 7, 4),
	)
	if v := CheckTimestampOrder(bad, 0); len(v) == 0 {
		t.Fatal("raw wrapped timestamps must be flagged as misordered")
	}
}

// TestWarpMonotonicAcrossRollover: unrolled warp timestamps keep
// increasing across a §V-D reset; raw ones regress and must be caught.
func TestWarpMonotonicAcrossRollover(t *testing.T) {
	const span = uint64(256)
	r := NewRecorder()
	r.Observe(coherence.Op{SM: 0, Warp: 0, TS: 250})
	r.Observe(coherence.Op{SM: 0, Warp: 0, TS: 255})
	r.Observe(coherence.Op{SM: 0, Warp: 0, TS: span + 2}) // post-reset, unrolled
	if errs := CheckWarpMonotonic(r.Ops()); len(errs) != 0 {
		t.Fatalf("unrolled post-reset timestamp rejected: %v", errs[0])
	}
	r.Observe(coherence.Op{SM: 0, Warp: 0, TS: 2}) // raw post-reset value: regression
	if errs := CheckWarpMonotonic(r.Ops()); len(errs) != 1 {
		t.Fatal("raw wrapped warp timestamp must be flagged")
	}
}

// TestSerialHistoriesAlwaysPass is a property test: any history
// generated by executing stores/loads against a reference memory in
// timestamp order (with unique increasing timestamps) passes the
// checker.
func TestSerialHistoriesAlwaysPass(t *testing.T) {
	f := func(raw []byte) bool {
		memory := map[int]uint32{}
		r := NewRecorder()
		ts := uint64(1)
		for i, b := range raw {
			word := int(b % 4)
			ts++
			if b%2 == 0 {
				v := uint32(i) + 1
				memory[word] = v
				r.Observe(op(true, 7, word, v, ts))
			} else {
				r.Observe(op(false, 7, word, memory[word], ts))
			}
		}
		return len(CheckTimestampOrder(r.Ops(), 0)) == 0 &&
			len(CheckPhysical(r.Ops(), 0)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptedHistoriesAreCaught is the dual property: flipping one
// loaded value in a non-trivial serial history produces a violation.
func TestCorruptedHistoriesAreCaught(t *testing.T) {
	f := func(raw []byte) bool {
		memory := map[int]uint32{}
		var ops []coherence.Op
		ts := uint64(1)
		loadIdx := -1
		for i, b := range raw {
			word := int(b % 4)
			ts++
			if b%2 == 0 {
				v := uint32(i) + 1
				memory[word] = v
				ops = append(ops, op(true, 7, word, v, ts))
			} else if memory[word] != 0 {
				ops = append(ops, op(false, 7, word, memory[word], ts))
				loadIdx = len(ops) - 1
			}
		}
		if loadIdx < 0 {
			return true // nothing to corrupt
		}
		w := 0
		for i := 0; i < 4; i++ {
			if ops[loadIdx].Mask.Has(i) {
				w = i
			}
		}
		ops[loadIdx].Data.Words[w] += 12345
		return len(CheckTimestampOrder(record(ops...), 0)) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
