package coherence

import "github.com/gtsc-sim/gtsc/internal/mem"

// Op is one globally performed memory operation, reported to an
// Observer for invariant checking (internal/check). Loads are observed
// where their value binds (the L1 that services them); stores are
// observed at the L2 bank that performs them. The single-threaded
// simulator guarantees observation order is consistent with simulated
// causality, which the checkers use as the physical-time tiebreak of
// the paper's timestamp-ordering rule (Section III-A).
type Op struct {
	SM    int
	Warp  int
	Store bool
	Block mem.BlockAddr
	Mask  mem.WordMask
	Data  mem.Block // masked words hold the loaded/stored values
	// TS is the operation's logical timestamp, unrolled across
	// overflow resets (epoch*(tsMax+1)+ts) so it is monotonic for the
	// whole run. Zero for protocols without timestamps.
	TS uint64
	// Cycle is the global cycle the operation performed at.
	Cycle uint64
}

// Observer receives every performed memory operation. Implementations
// must not retain the Op's Data pointer semantics (Data is by value).
type Observer interface {
	Observe(op Op)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(op Op)

// Observe implements Observer.
func (f ObserverFunc) Observe(op Op) { f(op) }
