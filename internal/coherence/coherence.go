// Package coherence defines the contract every coherence protocol in
// this repository implements: a per-SM L1 controller and a per-bank L2
// controller, connected by the NoC, plus the request/completion types
// the GPU core's load-store unit uses to talk to the L1.
//
// Four protocol families implement these interfaces:
//
//   - internal/core: G-TSC, the paper's contribution (timestamp ordering)
//   - internal/tc:   Temporal Coherence (TC-Strong and TC-Weak leases)
//   - internal/nocoh: the no-L1 baseline (BL) and the non-coherent L1
//
// The GPU core is protocol-agnostic: it presents coalesced accesses and
// receives completions; consistency (SC vs RC) is enforced above this
// interface in the SM, except for TC-Weak's GWCT which rides back on
// the completion.
package coherence

import (
	"io"

	"github.com/gtsc-sim/gtsc/internal/diag"
	"github.com/gtsc-sim/gtsc/internal/mem"
	"github.com/gtsc-sim/gtsc/internal/stats"
)

// Request is one coalesced memory access presented by an SM's LDST
// unit to its L1 controller.
type Request struct {
	Block mem.BlockAddr
	Store bool
	// Atomic marks a read-modify-write performed at the L2 (global
	// atomic); Atom gives the operation. Data carries the combined
	// per-word operands; the completion returns the pre-update values.
	Atomic bool
	Atom   mem.AtomicOp
	Mask   mem.WordMask // words touched by the access
	Data   *mem.Block   // store/atomic payload (masked words valid); nil for loads
	Warp   int          // issuing warp index within the SM

	// Done is invoked exactly once when the access completes. Loads
	// receive the block contents; stores receive nil data. It must not
	// be nil.
	Done func(c Completion)
}

// Completion reports the result of an access back to the LDST unit.
type Completion struct {
	// Data is the loaded block (nil for stores). It is valid only for
	// the duration of the Done callback: controllers recycle the block
	// after Done returns, so a callback that needs the contents later
	// must copy the words it cares about.
	Data *mem.Block
	// TS is the logical timestamp the operation was performed at
	// (G-TSC: load ts or assigned store wts). Zero for protocols
	// without timestamps.
	TS uint64
	// GWCT is TC-Weak's global write completion time for stores; a
	// fence must stall the warp until the global clock passes the
	// maximum GWCT of its prior stores. Zero elsewhere.
	GWCT uint64
}

// AccessResult is the immediate outcome of presenting a Request.
type AccessResult uint8

// Access outcomes.
const (
	// Hit: the access completed synchronously; Done was already called.
	Hit AccessResult = iota
	// Pending: the access was accepted and Done will be called later.
	Pending
	// Reject: the controller is out of resources (MSHR full, port
	// busy); the LDST unit must retry the same access next cycle.
	Reject
)

// L1 is a per-SM private cache controller.
type L1 interface {
	// Access presents one coalesced access. See AccessResult.
	Access(req *Request) AccessResult
	// Deliver hands the controller a message that arrived from the NoC.
	Deliver(msg *mem.Msg)
	// Tick advances internal state one cycle (retries, timeouts).
	Tick(now uint64)
	// SyncClock advances the controller's local clock to now without
	// performing any work — exactly the effect Tick(now) has on a
	// quiescent controller. The per-component dispatcher calls it on
	// cycles it skips the controller's Tick, because the local clock
	// feeds decisions on the Access and Deliver paths even while the
	// controller is otherwise inert: TC's lease-validity check compares
	// expiry against it on every SM access, fill handlers compare
	// in-flight lease timestamps against it on arrival, and completions
	// stamp it into reply messages. A controller with no clock
	// implements this as a no-op.
	SyncClock(now uint64)
	// Flush invalidates the whole cache, e.g. at a kernel boundary.
	// Outstanding misses are allowed to complete normally.
	Flush()
	// Pending reports the number of outstanding accesses not yet
	// completed (the simulator drains these before ending a kernel).
	Pending() int
	// Err reports the first protocol violation the controller hit, as
	// a *diag.ProtocolError, or nil. A failed controller drops further
	// input; the simulator aborts the run when Err becomes non-nil.
	Err() error
	// DumpState snapshots the controller's occupancy for diagnostics.
	DumpState() diag.CacheState
	// Stats exposes the controller's counters.
	Stats() *stats.L1Stats
	// Quiescent reports that Tick would be a pure no-op at any future
	// cycle until a new message or access arrives: no queued output, no
	// retry loops, no per-cycle counter updates. The cycle-skipping
	// engine only fast-forwards the clock when every component is
	// quiescent, so Quiescent must never return true while the
	// controller still mutates state (or stats) on its own clock.
	Quiescent() bool
}

// L2 is a shared cache bank controller.
type L2 interface {
	// Deliver hands the bank a request that arrived from the NoC.
	Deliver(msg *mem.Msg)
	// DRAMFill hands the bank a completed memory read.
	DRAMFill(msg *mem.Msg)
	// Tick advances internal state one cycle (TC write stalls,
	// replayed fills, overflow resets).
	Tick(now uint64)
	// SyncClock advances the bank's local clock to now without
	// performing any work (see L1.SyncClock).
	SyncClock(now uint64)
	// Pending reports in-flight work (stalled writes, DRAM waits).
	Pending() int
	// Peek returns the bank's current copy of a block, if cached —
	// a zero-cost debug/verification hook, not a protocol action.
	Peek(b mem.BlockAddr) (*mem.Block, bool)
	// Err reports the first protocol violation the bank hit, as a
	// *diag.ProtocolError, or nil.
	Err() error
	// DumpState snapshots the bank's occupancy for diagnostics.
	DumpState() diag.CacheState
	// Stats exposes the bank's counters.
	Stats() *stats.L2Stats
	// Quiescent reports that Tick would be a pure no-op until new input
	// arrives (see L1.Quiescent). Banks with time-based retry loops
	// (TC lease-expiry unblocking, stalled fill replays) must report
	// non-quiescent while any such loop is armed.
	Quiescent() bool
	// Drained reports that no in-flight work remains at all — the O(1)
	// equivalent of Pending() == 0, used by the drain loop every cycle
	// where the full Pending scan would dominate short kernels.
	Drained() bool
}

// StateDigester is implemented by controllers that can write a
// canonical, process-independent rendering of their complete
// microarchitectural state (tag arrays with protocol metadata, MSHRs,
// pending-transaction tables, backpressured queues). The rendering
// must contain no pointer values, func values, or unordered map
// iterations, so equal digests produced in different processes imply
// equal machine state. Checkpoint restore hashes this rendering to
// verify that deterministic replay reproduced the suspended machine.
//
// All four protocol families implement it; the memsys layer falls
// back to DumpState for any controller that does not.
type StateDigester interface {
	DigestState(w io.Writer)
}

// Sender abstracts the transport a controller injects messages into.
// The memsys package wires L1 senders to the NoC's SM ports, L2
// senders to bank ports and the DRAM channel.
type Sender interface {
	// TrySend attempts to inject msg; it returns false if the port's
	// injection queue is full this cycle and the caller must retry.
	TrySend(msg *mem.Msg) bool
}

// SenderFunc adapts a function to the Sender interface.
type SenderFunc func(msg *mem.Msg) bool

// TrySend implements Sender.
func (f SenderFunc) TrySend(msg *mem.Msg) bool { return f(msg) }

// LeaseHolder is implemented by controllers whose lines carry
// timestamp leases: G-TSC [wts, rts] intervals, or TC [0, expiry]
// physical-time leases reported as (0, expiry). The model checker
// walks them at every explored state to check lease containment
// invariants (wts <= rts at the holder; an L1 lease contained in the
// backing L2 state).
type LeaseHolder interface {
	ForEachLease(fn func(b mem.BlockAddr, wts, rts uint64))
}

// StateHolder is implemented by controllers with named per-line
// protocol states (the directory protocol's MESI letters). The model
// checker walks them to check the single-writer/multiple-reader
// invariant across private caches.
type StateHolder interface {
	ForEachLineState(fn func(b mem.BlockAddr, state string))
}

// TimeSensitive is implemented by controllers whose behavior can
// change with the passage of physical time alone (TC lease expiry:
// L1 hits die, blocked TC-Strong writes unblock). NextTimeEvent
// reports the earliest cycle after now at which such a change can
// occur, or ok=false if none is armed. The model checker uses it to
// advance its logical clock in semantic jumps instead of enumerating
// empty cycles.
type TimeSensitive interface {
	NextTimeEvent(now uint64) (at uint64, ok bool)
}
