package gpu

// Quiescence probing for the simulator's cycle-skipping engine.
//
// A stalled SM burns cycles in issue() without changing any warp
// state — but it does advance per-cycle stall counters, and a
// compute-blocked warp wakes at a known future cycle. Quiesce mirrors
// tryIssue's decision tree *without executing anything*: it proves
// that ticking this SM for the next k cycles would (a) issue nothing,
// (b) mutate no warp state, and (c) apply exactly the same per-cycle
// counter deltas every cycle, and reports the earliest cycle at which
// that stops being true. SkipCycles then bulk-applies those k
// identical cycles in O(1). Any state the probe cannot prove inert —
// a fetch that would run (Program.Next mutates program state), an
// instruction that could issue, a busy LDST unit — makes the SM
// non-quiescent and the simulator ticks normally.

// NeverWake marks a stall with no self-scheduled wake-up: the warp
// resumes only when a message arrives (tracked by the memsys
// next-event query), or never.
const NeverWake = ^uint64(0)

// StallProbe is the result of a successful quiescence probe: the
// per-cycle stall-counter deltas ticking would apply, and the earliest
// self-scheduled cycle the SM must actually tick at.
type StallProbe struct {
	// Wake is the earliest compute/fence wake-up (busyUntil, gwct)
	// among stalled warps, or NeverWake.
	Wake uint64
	// Mem / Barrier record issue()'s sawMem/sawBarrier flags, which
	// classify each stalled cycle (Mem wins, as in issue()).
	Mem, Barrier bool
	// FenceStalls is how many warps count FenceStallCycles each cycle.
	FenceStalls uint64
}

// Quiesce reports whether ticking this SM is provably a pure stall
// (or pure idle) with constant per-cycle effects, and if so which.
// It must mirror tryIssue exactly; any divergence breaks the golden
// bit-identity the skip engine is pinned to.
func (s *SM) Quiesce() (StallProbe, bool) {
	p := StallProbe{Wake: NeverWake}
	if len(s.ldst) > 0 {
		// pumpLDST would present an access to the L1 (or at minimum
		// retry a rejected one) — a state change we cannot model here.
		return p, false
	}
	if s.liveWarps == 0 {
		return p, true // the idle fast path: Cycles++ only
	}
	for _, w := range s.warps {
		if w.finished {
			continue
		}
		if w.atBarrier {
			p.Barrier = true
			continue
		}
		if s.now < w.busyUntil {
			// blockedComp: counts toward no stall class; wakes alone.
			p.Wake = min(p.Wake, w.busyUntil)
			continue
		}
		if w.dispatching {
			p.Mem = true // resumes only when the LDST stream restarts
			continue
		}
		if s.cfg.Consistency == SC && (w.pendingAcc > 0 || w.pendingStores > 0) {
			p.Mem = true // resumes on completion delivery
			continue
		}
		if w.cur == nil {
			if w.fetchStalled {
				// The last Next call returned !ready and no completion
				// has landed since: readiness is a pure function of the
				// warp's in-flight accesses (see Program.Next), so the
				// fetch would stall again. Resumes on completion
				// delivery, exactly like a memory stall.
				p.Mem = true
				continue
			}
			return p, false // fetch would run; Program.Next mutates
		}
		instr := w.cur
		if s.cfg.Consistency == RC || s.cfg.Consistency == TSO {
			if !w.RegsReady(instr.SrcRegs...) {
				p.Mem = true
				continue
			}
			if (instr.Op == OpLoad || instr.Op == OpAtomic) && w.pendingReg(instr.Dst) > 0 {
				p.Mem = true
				continue
			}
		}
		if s.cfg.Consistency == TSO {
			if instr.Op != OpStore && w.pendingAcc > 0 {
				p.Mem = true
				continue
			}
			if instr.Op != OpLoad && w.pendingStores > 0 {
				p.Mem = true
				continue
			}
		}
		switch instr.Op {
		case OpFence:
			if w.pendingAcc > 0 || w.pendingStores > 0 {
				p.FenceStalls++
				p.Mem = true
				continue
			}
			if s.now < w.gwct {
				p.FenceStalls++
				p.Mem = true
				p.Wake = min(p.Wake, w.gwct)
				continue
			}
			return p, false // fence would issue
		case OpLoad, OpStore, OpAtomic:
			// Mirror issueMem's non-mutating admission checks; the
			// LDST queue is empty here (checked above), so only the
			// RC in-flight-load bound can block without side effects.
			if s.cfg.Consistency == RC && instr.Op != OpStore &&
				w.pendingAcc >= s.cfg.MaxPendingLoads {
				p.Mem = true
				continue
			}
			return p, false // the access would dispatch
		default:
			return p, false // OpComp/OpALU/OpBarrier would issue
		}
	}
	return p, true
}

// SkipCycles bulk-applies k provably identical stalled (or idle)
// cycles, advancing the SM's clock to cycle `to`. p must come from a
// Quiesce call made at cycle to-k with to < p.Wake.
func (s *SM) SkipCycles(to, k uint64, p StallProbe) {
	s.now = to
	s.stats.Cycles += k
	if s.liveWarps == 0 {
		return
	}
	// issue() classifies each zero-issue cycle: Mem wins over Barrier.
	if p.Mem {
		s.stats.MemStallCycles += k
	} else if p.Barrier {
		s.stats.BarrierStallCycles += k
	}
	s.stats.FenceStallCycles += p.FenceStalls * k
}
