package gpu

import (
	"testing"

	"github.com/gtsc-sim/gtsc/internal/coherence"
	"github.com/gtsc-sim/gtsc/internal/diag"
	"github.com/gtsc-sim/gtsc/internal/mem"
	"github.com/gtsc-sim/gtsc/internal/stats"
)

// fakeL1 is a manually-controlled memory system: accesses park until
// the test completes them, so pipeline interlocks are observable.
type fakeL1 struct {
	parked  []*coherence.Request
	stats   stats.L1Stats
	instant bool // complete loads immediately with zeroes
	gwct    uint64
	store   *mem.Store
}

func (f *fakeL1) Access(req *coherence.Request) coherence.AccessResult {
	if f.instant {
		f.complete(req)
		return coherence.Hit
	}
	f.parked = append(f.parked, req)
	return coherence.Pending
}

func (f *fakeL1) complete(req *coherence.Request) {
	if req.Store {
		if f.store != nil {
			f.store.WriteBlock(req.Block, req.Data, req.Mask)
		}
		req.Done(coherence.Completion{GWCT: f.gwct})
		return
	}
	data := &mem.Block{}
	if f.store != nil {
		f.store.ReadBlock(req.Block, data)
	}
	req.Done(coherence.Completion{Data: data})
}

// release completes all parked accesses.
func (f *fakeL1) release() {
	parked := f.parked
	f.parked = nil
	for _, r := range parked {
		f.complete(r)
	}
}

func (f *fakeL1) Deliver(*mem.Msg)           {}
func (f *fakeL1) Tick(uint64)                {}
func (f *fakeL1) SyncClock(uint64)           {}
func (f *fakeL1) Flush()                     {}
func (f *fakeL1) Pending() int               { return len(f.parked) }
func (f *fakeL1) Quiescent() bool            { return true }
func (f *fakeL1) Stats() *stats.L1Stats      { return &f.stats }
func (f *fakeL1) Err() error                 { return nil }
func (f *fakeL1) DumpState() diag.CacheState { return diag.CacheState{Name: "fake-l1"} }

var _ coherence.L1 = (*fakeL1)(nil)

func addrGTID(base mem.Addr) func(t *Thread) (mem.Addr, bool) {
	return func(t *Thread) (mem.Addr, bool) { return base + mem.Addr(t.GTID*4), true }
}

// runSM builds one SM with the kernel entirely resident and ticks it
// until done or the bound is hit.
func runSM(t *testing.T, cfg SMConfig, k *Kernel, l1 *fakeL1, autorelease bool, bound int) *SM {
	t.Helper()
	sm := NewSM(0, cfg, l1)
	disp := NewDispatcher(k)
	sm.Launch(k, disp)
	for sm.FillOne() {
	}
	for c := 1; c <= bound; c++ {
		sm.Tick(uint64(c))
		if autorelease && c%3 == 0 {
			l1.release()
		}
	}
	if autorelease {
		for i := 0; i < 10 && !sm.Done(); i++ {
			l1.release()
			sm.Tick(uint64(bound + i + 1))
		}
	}
	return sm
}

func TestCoalescerMergesBlocks(t *testing.T) {
	w := &Warp{}
	for lane := 0; lane < WarpWidth; lane++ {
		w.Threads[lane] = &Thread{Lane: lane, GTID: lane, Regs: make([]uint32, 4)}
	}
	// All lanes read consecutive words of one block: 1 access.
	one := coalesce(&accGroup{}, w, Load(0, func(t *Thread) (mem.Addr, bool) {
		return mem.Addr(t.Lane * 4), true
	}))
	if len(one) != 1 || one[0].mask != mem.MaskAll {
		t.Fatalf("expected 1 full-mask access, got %d (%#x)", len(one), one[0].mask)
	}
	// Stride of one block per lane: 32 accesses.
	many := coalesce(&accGroup{}, w, Load(0, func(t *Thread) (mem.Addr, bool) {
		return mem.Addr(t.Lane * mem.BlockBytes), true
	}))
	if len(many) != WarpWidth {
		t.Fatalf("expected %d accesses, got %d", WarpWidth, len(many))
	}
	// Divergence: odd lanes off -> half coverage.
	half := coalesce(&accGroup{}, w, Load(0, func(t *Thread) (mem.Addr, bool) {
		return mem.Addr(t.Lane * 4), t.Lane%2 == 0
	}))
	if len(half) != 1 || half[0].mask.Count() != WarpWidth/2 {
		t.Fatalf("divergent coalesce wrong: %d accesses mask %d", len(half), half[0].mask.Count())
	}
	// Store values land at word positions.
	st := coalesce(&accGroup{}, w, Store(func(t *Thread) (mem.Addr, bool) {
		return mem.Addr(t.Lane * 4), true
	}, func(t *Thread) uint32 { return uint32(t.Lane + 100) }))
	if st[0].data.Words[5] != 105 {
		t.Fatalf("store value misplaced: %d", st[0].data.Words[5])
	}
}

func TestSeqAndLoopPrograms(t *testing.T) {
	p := Seq(Comp(1), Fence())
	i1, ok := p.Next(nil)
	if !ok || i1.Op != OpComp {
		t.Fatal("seq first")
	}
	i2, _ := p.Next(nil)
	if i2.Op != OpFence {
		t.Fatal("seq second")
	}
	if i3, ok := p.Next(nil); i3 != nil || !ok {
		t.Fatal("seq end")
	}

	calls := 0
	lp := &LoopProgram{Iters: 3, Body: func(iter int) []*Instr {
		calls++
		return []*Instr{Comp(iter + 1)}
	}}
	var cycles []int
	for {
		in, _ := lp.Next(nil)
		if in == nil {
			break
		}
		cycles = append(cycles, in.Cycles)
	}
	if len(cycles) != 3 || cycles[0] != 1 || cycles[2] != 3 || calls != 3 {
		t.Fatalf("loop program wrong: %v (%d calls)", cycles, calls)
	}
}

func TestSCBlocksBehindOutstandingMemory(t *testing.T) {
	l1 := &fakeL1{}
	k := &Kernel{
		Name: "sc", CTAs: 1, WarpsPerCTA: 1, Regs: 2,
		ProgramFor: func(w *Warp) Program {
			return Seq(
				Load(0, addrGTID(0)),
				Comp(1), // must NOT issue while the load is outstanding under SC
			)
		},
	}
	sm := runSM(t, SMConfig{Consistency: SC, MaxWarps: 4}, k, l1, false, 20)
	if got := sm.Stats().InstrIssued; got != 1 {
		t.Fatalf("SC issued %d instructions with load outstanding, want 1", got)
	}
	if sm.Stats().MemStallCycles == 0 {
		t.Fatal("memory stalls must accumulate")
	}
	l1.release()
	for c := 21; c <= 30; c++ {
		sm.Tick(uint64(c))
	}
	if !sm.Done() {
		t.Fatal("warp should finish after release")
	}
}

func TestRCScoreboardAllowsIndependentWork(t *testing.T) {
	l1 := &fakeL1{}
	k := &Kernel{
		Name: "rc", CTAs: 1, WarpsPerCTA: 1, Regs: 4,
		ProgramFor: func(w *Warp) Program {
			return Seq(
				Load(0, addrGTID(0)),
				Comp(1),                   // independent: may issue
				Load(1, addrGTID(0x1000)), // independent load: may issue
				ALU(func(t *Thread) { _ = t.Regs[0] }, 0), // depends on r0: must wait
			)
		},
	}
	sm := runSM(t, SMConfig{Consistency: RC, MaxWarps: 4}, k, l1, false, 30)
	// Under RC the comp and the second load issue past the first load;
	// the dependent ALU stalls. Loads dispatch through the LDST unit.
	if got := sm.Stats().InstrIssued; got != 3 {
		t.Fatalf("RC issued %d, want 3 (two loads + comp)", got)
	}
	l1.release()
	for c := 31; c <= 45; c++ {
		sm.Tick(uint64(c))
		l1.release()
	}
	if !sm.Done() {
		t.Fatal("kernel should complete")
	}
}

func TestFenceWaitsForGWCT(t *testing.T) {
	l1 := &fakeL1{instant: true, gwct: 50}
	k := &Kernel{
		Name: "fence", CTAs: 1, WarpsPerCTA: 1, Regs: 2,
		ProgramFor: func(w *Warp) Program {
			return Seq(
				Store(addrGTID(0), func(t *Thread) uint32 { return 1 }),
				Fence(), // must hold until cycle 50 (the GWCT)
				Comp(1),
			)
		},
	}
	sm := NewSM(0, SMConfig{Consistency: RC, MaxWarps: 4}, l1)
	disp := NewDispatcher(k)
	sm.Launch(k, disp)
	for sm.FillOne() {
	}
	doneAt := 0
	for c := 1; c <= 80 && doneAt == 0; c++ {
		sm.Tick(uint64(c))
		if sm.Done() {
			doneAt = c
		}
	}
	if doneAt == 0 {
		t.Fatal("kernel never finished")
	}
	if doneAt < 50 {
		t.Fatalf("fence released at %d, before GWCT 50", doneAt)
	}
	if sm.Stats().FenceStallCycles == 0 {
		t.Fatal("fence stalls not counted")
	}
}

func TestBarrierSynchronizesCTA(t *testing.T) {
	l1 := &fakeL1{instant: true}
	var order []int
	k := &Kernel{
		Name: "barrier", CTAs: 1, WarpsPerCTA: 2, Regs: 2,
		ProgramFor: func(w *Warp) Program {
			if w.InCTA == 0 {
				// Warp 0 computes for a long time before the barrier.
				return Seq(
					Comp(25),
					Barrier(),
					ALU(func(t *Thread) {
						if t.Lane == 0 {
							order = append(order, 0)
						}
					}),
				)
			}
			return Seq(
				Barrier(),
				ALU(func(t *Thread) {
					if t.Lane == 0 {
						order = append(order, 1)
					}
				}),
			)
		},
	}
	sm := NewSM(0, SMConfig{Consistency: SC, MaxWarps: 4}, l1)
	disp := NewDispatcher(k)
	sm.Launch(k, disp)
	for sm.FillOne() {
	}
	for c := 1; c <= 15; c++ {
		sm.Tick(uint64(c))
	}
	if len(order) != 0 {
		t.Fatal("no warp may pass the barrier while warp 0 has not reached it")
	}
	if sm.Stats().BarrierStallCycles == 0 {
		t.Fatal("barrier stalls not counted")
	}
	for c := 16; c <= 60; c++ {
		sm.Tick(uint64(c))
	}
	if len(order) != 2 || !sm.Done() {
		t.Fatalf("both warps must pass after warp 0 arrives (order=%v done=%t)", order, sm.Done())
	}
}

func TestDataDependentProgramRetriesFetch(t *testing.T) {
	l1 := &fakeL1{store: mem.NewStore()}
	l1.store.WriteWord(0, 3) // loop bound loaded from memory
	iterations := 0
	k := &Kernel{
		Name: "dyn", CTAs: 1, WarpsPerCTA: 1, Regs: 2,
		ProgramFor: func(w *Warp) Program {
			phase := 0
			return FuncProgram(func(w *Warp) (*Instr, bool) {
				switch {
				case phase == 0:
					phase = 1
					return Load(0, func(t *Thread) (mem.Addr, bool) { return 0, t.Lane == 0 }), true
				case phase == 1:
					if !w.RegsReady(0) {
						return nil, false // branch depends on the load
					}
					phase = 2
					fallthrough
				default:
					if iterations < int(w.Reg(0, 0)) {
						iterations++
						return Comp(1), true
					}
					return nil, true
				}
			})
		},
	}
	sm := runSM(t, SMConfig{Consistency: RC, MaxWarps: 4}, k, l1, true, 40)
	if !sm.Done() {
		t.Fatal("dynamic program did not finish")
	}
	if iterations != 3 {
		t.Fatalf("loop ran %d times, want 3 (loaded bound)", iterations)
	}
}

func TestDispatcherRoundRobinAndOccupancy(t *testing.T) {
	k := &Kernel{
		Name: "occ", CTAs: 6, WarpsPerCTA: 2, Regs: 1, MaxCTAsPerSM: 2,
		ProgramFor: func(w *Warp) Program { return Seq(Comp(1)) },
	}
	disp := NewDispatcher(k)
	l1a, l1b := &fakeL1{instant: true}, &fakeL1{instant: true}
	smA := NewSM(0, SMConfig{MaxWarps: 48}, l1a)
	smB := NewSM(1, SMConfig{MaxWarps: 48}, l1b)
	smA.Launch(k, disp)
	smB.Launch(k, disp)
	// Round-robin fill honouring MaxCTAsPerSM.
	for filled := true; filled; {
		filled = smA.FillOne() || smB.FillOne()
	}
	if smA.residentCTAs != 2 || smB.residentCTAs != 2 {
		t.Fatalf("occupancy limit violated: %d/%d", smA.residentCTAs, smB.residentCTAs)
	}
	if disp.exhausted() {
		t.Fatal("2 CTAs must remain queued")
	}
	// Run both SMs; retiring CTAs must pull the remaining work.
	for c := 1; c <= 200 && !(smA.Done() && smB.Done()); c++ {
		smA.Tick(uint64(c))
		smB.Tick(uint64(c))
	}
	if !smA.Done() || !smB.Done() {
		t.Fatal("kernel did not drain")
	}
	if got := smA.Stats().CTAsRetired + smB.Stats().CTAsRetired; got != 6 {
		t.Fatalf("retired %d CTAs, want 6", got)
	}
	if smA.Stats().WarpsRetired+smB.Stats().WarpsRetired != 12 {
		t.Fatal("warp retirement count wrong")
	}
}

func TestThreadIdentity(t *testing.T) {
	k := &Kernel{
		Name: "ids", CTAs: 3, WarpsPerCTA: 2, Regs: 1,
		ProgramFor: func(w *Warp) Program { return Seq() },
	}
	disp := NewDispatcher(k)
	sm := NewSM(0, SMConfig{MaxWarps: 48}, &fakeL1{instant: true})
	sm.Launch(k, disp)
	for sm.FillOne() {
	}
	seen := map[int]bool{}
	for _, w := range sm.warps {
		for lane, th := range w.Threads {
			if th.Lane != lane {
				t.Fatal("lane mismatch")
			}
			want := th.CTA*2*WarpWidth + th.Warp*WarpWidth + lane
			if th.GTID != want {
				t.Fatalf("GTID %d, want %d", th.GTID, want)
			}
			if seen[th.GTID] {
				t.Fatalf("duplicate GTID %d", th.GTID)
			}
			seen[th.GTID] = true
		}
	}
	if len(seen) != 3*2*WarpWidth {
		t.Fatalf("thread count %d", len(seen))
	}
}

func TestConsistencyString(t *testing.T) {
	if SC.String() != "SC" || RC.String() != "RC" {
		t.Fatal("names wrong")
	}
}

// TestGTOStickiness: under GTO the same warp keeps issuing while
// ready; under LRR issue alternates.
func TestGTOStickiness(t *testing.T) {
	issueOrder := func(sched Scheduler) []int {
		var order []int
		k := &Kernel{
			Name: "sticky", CTAs: 1, WarpsPerCTA: 2, Regs: 1,
			ProgramFor: func(w *Warp) Program {
				id := w.InCTA
				return Seq(
					ALU(func(t *Thread) {
						if t.Lane == 0 {
							order = append(order, id)
						}
					}),
					ALU(func(t *Thread) {
						if t.Lane == 0 {
							order = append(order, id)
						}
					}),
				)
			},
		}
		sm := NewSM(0, SMConfig{MaxWarps: 4, Scheduler: sched}, &fakeL1{instant: true})
		disp := NewDispatcher(k)
		sm.Launch(k, disp)
		for sm.FillOne() {
		}
		for c := 1; c <= 30 && !sm.Done(); c++ {
			sm.Tick(uint64(c))
		}
		return order
	}
	gto := issueOrder(GTO)
	lrr := issueOrder(LRR)
	if len(gto) != 4 || len(lrr) != 4 {
		t.Fatalf("instruction counts wrong: gto=%v lrr=%v", gto, lrr)
	}
	// GTO stays on warp 0 until it finishes: 0,0,1,1.
	if !(gto[0] == 0 && gto[1] == 0) {
		t.Fatalf("GTO not greedy: %v", gto)
	}
	// LRR alternates: 0,1,0,1.
	if !(lrr[0] == 0 && lrr[1] == 1) {
		t.Fatalf("LRR not round-robin: %v", lrr)
	}
}

// TestAtomicCoalescingPrefix: three lanes adding to the same word are
// warp-aggregated, and each lane reconstructs its serial old value.
func TestAtomicCoalescingPrefix(t *testing.T) {
	w := &Warp{}
	for lane := 0; lane < WarpWidth; lane++ {
		w.Threads[lane] = &Thread{Lane: lane, GTID: lane, Regs: make([]uint32, 4)}
	}
	instr := Atomic(mem.AtomAdd, 0, func(t *Thread) (mem.Addr, bool) {
		return 0x100, t.Lane < 3 // three lanes, same word
	}, func(t *Thread) uint32 { return uint32(t.Lane + 1) }) // +1, +2, +3
	accs := coalesce(&accGroup{}, w, instr)
	if len(accs) != 1 {
		t.Fatalf("expected 1 coalesced access, got %d", len(accs))
	}
	word := mem.Addr(0x100).WordIndex()
	if accs[0].data.Words[word] != 6 {
		t.Fatalf("combined operand = %d, want 6", accs[0].data.Words[word])
	}
	wantPrefix := []uint32{0, 1, 3}
	for i, lt := range accs[0].lanes {
		if lt.prefix != wantPrefix[i] {
			t.Fatalf("lane %d prefix = %d, want %d", i, lt.prefix, wantPrefix[i])
		}
	}
}

func TestSchedulerString(t *testing.T) {
	if LRR.String() != "LRR" || GTO.String() != "GTO" {
		t.Fatal("scheduler names wrong")
	}
	if TSO.String() != "TSO" {
		t.Fatal("TSO name wrong")
	}
}

// rejectingL1 rejects the first N accesses, then accepts instantly —
// exercising the LDST unit's retry path.
type rejectingL1 struct {
	fakeL1
	rejects int
}

func (r *rejectingL1) Access(req *coherence.Request) coherence.AccessResult {
	if r.rejects > 0 {
		r.rejects--
		return coherence.Reject
	}
	r.complete(req)
	return coherence.Hit
}

func TestLDSTRetriesRejectedAccesses(t *testing.T) {
	l1 := &rejectingL1{rejects: 5}
	l1.instant = true
	k := &Kernel{
		Name: "retry", CTAs: 1, WarpsPerCTA: 1, Regs: 2,
		ProgramFor: func(w *Warp) Program {
			return Seq(
				Load(0, addrGTID(0)),
				Store(addrGTID(0x1000), func(t *Thread) uint32 { return 1 }),
			)
		},
	}
	sm := NewSM(0, SMConfig{Consistency: SC, MaxWarps: 4}, l1)
	disp := NewDispatcher(k)
	sm.Launch(k, disp)
	for sm.FillOne() {
	}
	for c := 1; c <= 40 && !sm.Done(); c++ {
		sm.Tick(uint64(c))
	}
	if !sm.Done() {
		t.Fatal("kernel must complete despite rejections")
	}
	if l1.rejects != 0 {
		t.Fatal("rejections not consumed")
	}
}
