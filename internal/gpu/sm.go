package gpu

import (
	"fmt"

	"github.com/gtsc-sim/gtsc/internal/coherence"
	"github.com/gtsc-sim/gtsc/internal/diag"
	"github.com/gtsc-sim/gtsc/internal/stats"
)

// Consistency selects the memory consistency model the SM enforces
// (§II-B of the paper).
type Consistency uint8

// Consistency models.
const (
	// SC: sequential consistency — each warp has at most one
	// outstanding memory request and issues nothing past an
	// incomplete memory operation.
	SC Consistency = iota
	// RC: release consistency — loads are scoreboarded, stores are
	// fire-and-forget, and only fences order memory (draining the
	// warp's accesses and, under TC-Weak, waiting out its GWCT).
	RC
	// TSO: total store order, the intermediate model the paper points
	// at (§II-B). Loads retire in program order among themselves and
	// stores among themselves, but loads bypass older stores. This is
	// an extension beyond the paper's SC/RC evaluation.
	TSO
)

// String names the model.
func (c Consistency) String() string {
	switch c {
	case SC:
		return "SC"
	case TSO:
		return "TSO"
	default:
		return "RC"
	}
}

// Scheduler selects the warp scheduling policy.
type Scheduler uint8

// Warp schedulers.
const (
	// LRR: loose round-robin (default; what the evaluation uses).
	LRR Scheduler = iota
	// GTO: greedy-then-oldest — stay on the last issuing warp until
	// it stalls, then fall back to the oldest ready warp. The
	// standard alternative in GPGPU-Sim; exposed for ablations.
	GTO
)

// String names the scheduler.
func (s Scheduler) String() string {
	if s == GTO {
		return "GTO"
	}
	return "LRR"
}

// SMConfig sets per-SM pipeline parameters.
type SMConfig struct {
	MaxWarps   int // resident warp contexts (paper: 48)
	IssueWidth int // instructions issued per cycle (default 1)
	// MaxPendingLoads bounds a warp's in-flight load accesses under RC
	// (default 8; SC is inherently 1).
	MaxPendingLoads int
	// LDSTQueue is the depth of the memory-instruction queue feeding
	// the coalescer/L1, one access dispatched per cycle (default 4).
	LDSTQueue   int
	Consistency Consistency
	Scheduler   Scheduler
}

func (c *SMConfig) fillDefaults() {
	if c.MaxWarps == 0 {
		c.MaxWarps = 48
	}
	if c.IssueWidth == 0 {
		c.IssueWidth = 1
	}
	if c.MaxPendingLoads == 0 {
		c.MaxPendingLoads = 8
	}
	if c.LDSTQueue == 0 {
		c.LDSTQueue = 4
	}
}

// memJob is one memory instruction streaming its coalesced accesses
// through the LDST unit, one per cycle. It is embedded in its pooled
// accGroup; group points back so the job's retirement can release its
// reference on the group's arrays.
type memJob struct {
	warp  *Warp
	instr *Instr
	accs  []*coalesced
	next  int
	group *accGroup
}

// SM is one streaming multiprocessor: a loose-round-robin scheduler
// over resident warps, a single-issue pipeline, and an LDST unit that
// coalesces and dispatches memory accesses to the private L1.
type SM struct {
	id     int
	cfg    SMConfig
	l1     coherence.L1
	kernel *Kernel
	disp   *Dispatcher
	now    uint64

	warps        []*Warp // resident warps (live and recently finished)
	freeIDs      []int   // free warp context slots (L1 warp_ts indices)
	liveWarps    int
	residentCTAs int

	ldst       []*memJob
	rr         int
	lastIssued *Warp       // GTO greediness
	scanBuf    []*Warp     // reusable scheduler scan order (hot path)
	groupPool  []*accGroup // recycled LDST access groups (see pool.go)

	// deferFills redirects CTA refills (which draw from the dispatcher
	// shared by every SM) to CommitFill, so SMs ticking concurrently
	// never race on CTA assignment: the simulator commits fills in SM
	// index order after the parallel compute phase.
	deferFills  bool
	pendingFill bool

	// completions counts memory-completion callbacks delivered to this
	// SM's warps, monotonically. Every change to warp readiness that can
	// originate outside the SM's own tick flows through a Done callback
	// (register writeback, pending-store retirement, GWCT advance), so
	// the event engine uses "completions changed" as the exact wake
	// signal for a stall-quiesced SM.
	completions uint64

	stats stats.SMStats
}

// NewSM builds SM id over the given L1 controller.
func NewSM(id int, cfg SMConfig, l1 coherence.L1) *SM {
	cfg.fillDefaults()
	s := &SM{id: id, cfg: cfg, l1: l1}
	for i := 0; i < cfg.MaxWarps; i++ {
		s.freeIDs = append(s.freeIDs, i)
	}
	return s
}

// ID returns the SM index.
func (s *SM) ID() int { return s.id }

// Stats returns the SM's counters.
func (s *SM) Stats() *stats.SMStats { return &s.stats }

// L1 returns the SM's private cache controller.
func (s *SM) L1() coherence.L1 { return s.l1 }

// Launch binds the SM to a kernel and its CTA dispatcher. The
// simulator fills SMs round-robin afterwards (FillOne) so CTAs spread
// across the chip as real GPUs schedule them.
func (s *SM) Launch(kernel *Kernel, disp *Dispatcher) {
	s.kernel = kernel
	s.disp = disp
}

// FillOne pulls at most one CTA from the dispatcher, respecting warp
// contexts and the kernel's per-SM CTA occupancy limit. It reports
// whether a CTA was assigned.
func (s *SM) FillOne() bool {
	if s.kernel == nil || len(s.freeIDs) < s.kernel.WarpsPerCTA {
		return false
	}
	if limit := s.kernel.MaxCTAsPerSM; limit > 0 && s.residentCTAs >= limit {
		return false
	}
	cta := s.disp.next(s)
	if cta == nil {
		return false
	}
	s.residentCTAs++
	for _, w := range cta.Warps {
		id := s.freeIDs[len(s.freeIDs)-1]
		s.freeIDs = s.freeIDs[:len(s.freeIDs)-1]
		w.ID = id
		s.warps = append(s.warps, w)
		s.liveWarps++
	}
	return true
}

// fill greedily refills freed contexts when a CTA retires.
func (s *SM) fill() {
	for s.FillOne() {
	}
}

// Done reports whether the SM has retired all its work: no live warps,
// no queued memory instructions, and no more CTAs to fetch.
func (s *SM) Done() bool {
	return s.liveWarps == 0 && len(s.ldst) == 0 && s.disp.exhausted()
}

// DumpState snapshots the SM's unfinished warps for failure
// diagnostics.
func (s *SM) DumpState() diag.SMState {
	st := diag.SMState{ID: s.id, LiveWarps: s.liveWarps, LDSTQueue: len(s.ldst)}
	for _, w := range s.warps {
		if w.finished {
			continue
		}
		st.Warps = append(st.Warps, diag.WarpState{
			ID:            w.ID,
			CTA:           w.CTA.ID,
			AtBarrier:     w.atBarrier,
			Dispatching:   w.dispatching,
			PendingAcc:    w.pendingAcc,
			PendingStores: w.pendingStores,
			BusyUntil:     w.busyUntil,
			GWCT:          w.gwct,
		})
	}
	return st
}

// Tick advances the SM one cycle: pump the LDST unit, then issue.
func (s *SM) Tick(now uint64) {
	s.now = now
	s.stats.Cycles++
	if s.liveWarps == 0 && len(s.ldst) == 0 {
		// Provably idle: no resident work and nothing streaming through
		// the LDST unit. pumpLDST and issue would both no-op; skip them.
		return
	}
	s.pumpLDST()
	s.issue()
}

// pumpLDST dispatches the head job's next coalesced access to the L1.
func (s *SM) pumpLDST() {
	if len(s.ldst) == 0 {
		return
	}
	job := s.ldst[0]
	acc := job.accs[job.next]
	res := s.dispatchAccess(job, acc)
	if res == coherence.Reject {
		return // retry next cycle
	}
	job.next++
	if job.next == len(job.accs) {
		job.warp.dispatching = false
		// Shift-down dequeue: the queue is bounded (LDSTQueue, default
		// 4), so copying the tail reuses the backing array forever where
		// re-slicing would leak capacity and re-allocate on every append.
		copy(s.ldst, s.ldst[1:])
		s.ldst = s.ldst[:len(s.ldst)-1]
		job.group.release()
	}
}

// noteCompletion records one memory completion landing on warp w. The
// monotone counter is the event engine's wake signal; clearing
// fetchStalled keeps the stall-probe contract honest: a warp's fetch
// readiness (Program.Next) may only change when one of its accesses
// completes, so fetchStalled==true always means "Next returned !ready
// and nothing has completed since" — safe to treat as still stalled
// without re-running Next.
func (s *SM) noteCompletion(w *Warp) {
	s.completions++
	w.fetchStalled = false
}

// Completions returns the monotone count of memory-completion
// callbacks delivered to this SM's warps.
func (s *SM) Completions() uint64 { return s.completions }

// dispatchAccess hands one coalesced access to the L1 through its
// pooled request record; the record's prebound Done callback scatters
// data and releases trackers (see reqRec.complete). A Reject leaves
// the record untouched for an identical retry next cycle.
func (s *SM) dispatchAccess(job *memJob, acc *coalesced) coherence.AccessResult {
	w, instr := job.warp, job.instr
	r := job.group.rec(job.next)
	r.w = w
	r.lanes = acc.lanes
	r.dst = instr.Dst
	r.op = instr.Op
	r.atom = instr.Atom
	req := &r.req
	*req = coherence.Request{
		Block: acc.block,
		Store: instr.Op == OpStore,
		Mask:  acc.mask,
		Warp:  w.ID,
		Done:  r.done,
	}
	if instr.Op == OpAtomic {
		req.Atomic = true
		req.Atom = instr.Atom
		// acc.data is never written after coalesce and the controllers
		// only read request payloads, so the access aliases it directly
		// instead of copying the 128-byte block per dispatch.
		req.Data = &acc.data
	} else if instr.Op == OpStore {
		req.Data = &acc.data
	}
	return s.l1.Access(req)
}

// blockReason classifies why a warp could not issue (for the Fig 13
// stall breakdown).
type blockReason uint8

const (
	notBlocked blockReason = iota
	blockedMem
	blockedBarrier
	blockedComp
)

// issue scans warps in loose round-robin order and issues up to
// IssueWidth instructions; if nothing issues while live warps remain,
// the cycle is a stall, classified by the strongest reason seen.
func (s *SM) issue() {
	if s.liveWarps == 0 {
		return
	}
	issued := 0
	sawMem, sawBarrier := false, false
	for _, w := range s.scanOrder() {
		if issued >= s.cfg.IssueWidth {
			break
		}
		if w.finished {
			continue
		}
		ok, reason := s.tryIssue(w)
		if ok {
			issued++
			s.lastIssued = w
			if s.cfg.Scheduler == LRR {
				s.advanceRR(w)
			}
		} else {
			switch reason {
			case blockedMem:
				sawMem = true
			case blockedBarrier:
				sawBarrier = true
			}
		}
	}
	s.reapFinished()
	if issued > 0 {
		s.stats.ActiveCycles++
		s.stats.InstrIssued += uint64(issued)
		return
	}
	if s.liveWarps == 0 {
		return
	}
	if sawMem {
		s.stats.MemStallCycles++
	} else if sawBarrier {
		s.stats.BarrierStallCycles++
	}
}

// scanOrder yields warps in scheduler priority order. LRR starts
// after the last issuer; GTO tries the last issuer first and then the
// oldest resident warps (resident order approximates age: CTAs are
// appended at launch). The returned slice aliases a per-SM scratch
// buffer reused every cycle — valid only until the next call.
func (s *SM) scanOrder() []*Warp {
	n := len(s.warps)
	if n == 0 {
		return nil
	}
	out := s.scanBuf[:0]
	if s.cfg.Scheduler == GTO {
		if s.lastIssued != nil && !s.lastIssued.finished {
			out = append(out, s.lastIssued)
		}
		for _, w := range s.warps {
			if w != s.lastIssued {
				out = append(out, w)
			}
		}
		s.scanBuf = out
		return out
	}
	for i := 0; i < n; i++ {
		out = append(out, s.warps[(s.rr+i)%n])
	}
	s.scanBuf = out
	return out
}

// advanceRR moves the round-robin pointer past the warp that issued.
func (s *SM) advanceRR(issued *Warp) {
	for i, w := range s.warps {
		if w == issued {
			s.rr = (i + 1) % maxi(len(s.warps), 1)
			return
		}
	}
}

// tryIssue attempts to issue one instruction from warp w.
func (s *SM) tryIssue(w *Warp) (bool, blockReason) {
	if w.atBarrier {
		return false, blockedBarrier
	}
	if s.now < w.busyUntil {
		return false, blockedComp
	}
	if w.dispatching {
		return false, blockedMem
	}
	if s.cfg.Consistency == SC && (w.pendingAcc > 0 || w.pendingStores > 0) {
		// One outstanding memory request per warp (§VI-B).
		return false, blockedMem
	}
	if w.cur == nil {
		instr, ready := w.prog.Next(w)
		if !ready {
			// Waiting on loaded data to fetch. Remember the stall so the
			// quiescence probe can classify this warp without re-running
			// Next: readiness can only change via a completion callback,
			// which clears the flag (see noteCompletion).
			w.fetchStalled = true
			return false, blockedMem
		}
		w.fetchStalled = false
		if instr == nil {
			s.finishWarp(w)
			return false, notBlocked
		}
		w.cur = instr
	}
	instr := w.cur
	if s.cfg.Consistency == RC || s.cfg.Consistency == TSO {
		if !w.RegsReady(instr.SrcRegs...) {
			return false, blockedMem
		}
		if (instr.Op == OpLoad || instr.Op == OpAtomic) && w.pendingReg(instr.Dst) > 0 {
			return false, blockedMem // WAW on the destination register
		}
	}
	if s.cfg.Consistency == TSO {
		// Program order within each stream: loads retire before the
		// next load issues; stores acknowledge before the next store
		// issues. Loads bypass older stores (the TSO relaxation).
		if instr.Op != OpStore && w.pendingAcc > 0 {
			return false, blockedMem
		}
		if instr.Op != OpLoad && w.pendingStores > 0 {
			return false, blockedMem
		}
	}
	switch instr.Op {
	case OpComp:
		w.busyUntil = s.now + uint64(instr.Cycles)
		w.cur = nil
		return true, notBlocked
	case OpALU:
		for lane := 0; lane < WarpWidth; lane++ {
			if w.Threads[lane] != nil {
				instr.Exec(w.Threads[lane])
			}
		}
		w.busyUntil = s.now + uint64(instr.Cycles)
		w.cur = nil
		return true, notBlocked
	case OpLoad, OpStore, OpAtomic:
		return s.issueMem(w, instr)
	case OpFence:
		if w.pendingAcc > 0 || w.pendingStores > 0 || s.now < w.gwct {
			s.stats.FenceStallCycles++
			return false, blockedMem
		}
		w.cur = nil
		s.stats.FencesIssued++
		return true, notBlocked
	case OpBarrier:
		w.atBarrier = true
		w.CTA.atBarrier++
		w.CTA.barrierRelease()
		// Reaching the barrier consumes an issue slot; the warp then
		// waits (cur is cleared by barrierRelease).
		return true, notBlocked
	default:
		panic(fmt.Sprintf("gpu: unknown opcode %d", instr.Op))
	}
}

func (s *SM) issueMem(w *Warp, instr *Instr) (bool, blockReason) {
	if len(s.ldst) >= s.cfg.LDSTQueue {
		return false, blockedMem
	}
	if s.cfg.Consistency == RC && instr.Op != OpStore && w.pendingAcc >= s.cfg.MaxPendingLoads {
		return false, blockedMem
	}
	g := s.getGroup()
	accs := coalesce(g, w, instr)
	w.cur = nil
	if len(accs) == 0 {
		g.putGroup()
		return true, notBlocked // fully divergent-off instruction
	}
	n := len(accs)
	switch instr.Op {
	case OpLoad:
		w.pendingAcc += n
		w.addPendingReg(instr.Dst, n)
		s.stats.LoadsIssued++
	case OpAtomic:
		// An atomic returns data (like a load) and writes (ordered
		// like a store); it counts against the load tracking so SC,
		// TSO and fences all wait for it.
		w.pendingAcc += n
		w.addPendingReg(instr.Dst, n)
		s.stats.AtomicsIssued++
	default:
		w.pendingStores += n
		s.stats.StoresIssued++
	}
	w.dispatching = true
	// live = one per access (released by its completion) plus one for
	// the streaming job (released when the last access dispatches).
	g.live = n + 1
	g.job = memJob{warp: w, instr: instr, accs: accs, group: g}
	s.ldst = append(s.ldst, &g.job)
	return true, notBlocked
}

// finishWarp retires a warp; when its CTA fully retires, the SM pulls
// more work from the dispatcher.
func (s *SM) finishWarp(w *Warp) {
	w.finished = true
	s.liveWarps--
	s.stats.WarpsRetired++
	cta := w.CTA
	cta.finished++
	cta.barrierRelease() // finished warps drop out of barriers
	if cta.finished == len(cta.Warps) {
		s.stats.CTAsRetired++
		s.residentCTAs--
		for _, cw := range cta.Warps {
			s.freeIDs = append(s.freeIDs, cw.ID)
		}
		if s.deferFills {
			s.pendingFill = true
		} else {
			s.fill()
		}
	}
}

// reapFinished compacts the resident warp list.
func (s *SM) reapFinished() {
	kept := s.warps[:0]
	for _, w := range s.warps {
		if !w.finished || w.CTA.finished != len(w.CTA.Warps) {
			kept = append(kept, w)
		}
	}
	if len(kept) != len(s.warps) {
		s.rr = 0
	}
	if s.lastIssued != nil && s.lastIssued.finished {
		s.lastIssued = nil
	}
	s.warps = kept
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Dispatcher hands out the kernel's CTAs to SMs in launch order.
type Dispatcher struct {
	kernel  *Kernel
	nextCTA int
}

// NewDispatcher builds a dispatcher over kernel's grid.
func NewDispatcher(kernel *Kernel) *Dispatcher { return &Dispatcher{kernel: kernel} }

func (d *Dispatcher) exhausted() bool { return d.nextCTA >= d.kernel.CTAs }

// next constructs the next CTA's warps, threads and programs for SM s.
func (d *Dispatcher) next(s *SM) *CTA {
	if d.exhausted() {
		return nil
	}
	id := d.nextCTA
	d.nextCTA++
	k := d.kernel
	regs := k.Regs
	if regs == 0 {
		regs = 8
	}
	cta := &CTA{ID: id}
	ctaSize := k.WarpsPerCTA * WarpWidth
	for wi := 0; wi < k.WarpsPerCTA; wi++ {
		w := &Warp{CTA: cta, InCTA: wi, pendingRegs: make([]int, regs)}
		for lane := 0; lane < WarpWidth; lane++ {
			tid := wi*WarpWidth + lane
			w.Threads[lane] = &Thread{
				CTA: id, Warp: wi, Lane: lane, TIDInCTA: tid,
				GTID: id*ctaSize + tid,
				Regs: make([]uint32, regs),
			}
		}
		w.prog = k.ProgramFor(w)
		cta.Warps = append(cta.Warps, w)
	}
	return cta
}

// SetDeferFills switches CTA refills between immediate (the serial
// loop) and deferred-to-CommitFill (the parallel loop). See the
// deferFills field.
func (s *SM) SetDeferFills(v bool) { s.deferFills = v }

// PendingFill reports whether a deferred CTA refill is waiting for
// CommitFill. The relaxed engine checks it at epoch barriers: a refill
// gives a sleeping SM domain new work, invalidating its stall probe.
func (s *SM) PendingFill() bool { return s.pendingFill }

// CommitFill performs any CTA refill deferred during a parallel
// compute phase. The simulator calls it in SM index order, which
// reproduces the serial loop's dispatcher draw order exactly: within
// one cycle each SM retires CTAs (and would refill) in SM order.
func (s *SM) CommitFill() {
	if !s.pendingFill {
		return
	}
	s.pendingFill = false
	s.fill()
}
