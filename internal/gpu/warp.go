package gpu

// Warp is one SIMT execution context resident on an SM.
type Warp struct {
	ID    int // warp slot within the SM
	CTA   *CTA
	InCTA int // warp index within the CTA

	Threads [WarpWidth]*Thread

	prog Program
	cur  *Instr // fetched, not yet completed/consumed

	// fetchStalled records that the last Program.Next call returned
	// !ready and no memory completion has landed on this warp since
	// (noteCompletion clears it). While set, the fetch is provably
	// still blocked, so the quiescence probe may classify the warp as
	// memory-stalled without re-running Next.
	fetchStalled bool

	finished  bool
	atBarrier bool
	busyUntil uint64 // OpComp completion time

	// Memory tracking.
	pendingAcc    int    // in-flight accesses of blocking ops (loads under SC/RC)
	pendingStores int    // stores issued but not yet acknowledged
	pendingRegs   []int  // per-register in-flight load count (RC scoreboard)
	gwct          uint64 // max GWCT of this warp's stores (TC-Weak)

	// dispatching marks a memory instruction currently streaming its
	// coalesced accesses through the LDST unit.
	dispatching bool
}

// Reg returns lane's register idx (helper for data-dependent programs).
func (w *Warp) Reg(lane, idx int) uint32 { return w.Threads[lane].Regs[idx] }

// RegsReady reports whether no in-flight load targets any of regs —
// programs use it from Next to decide whether a data-dependent branch
// can be resolved yet.
func (w *Warp) RegsReady(regs ...int) bool {
	for _, r := range regs {
		if w.pendingReg(r) > 0 {
			return false
		}
	}
	return true
}

// pendingReg returns the in-flight load count targeting register r.
func (w *Warp) pendingReg(r int) int {
	if r < len(w.pendingRegs) {
		return w.pendingRegs[r]
	}
	return 0
}

// addPendingReg adjusts the in-flight load count for register r,
// growing the scoreboard on first use of a high register index.
func (w *Warp) addPendingReg(r, delta int) {
	for r >= len(w.pendingRegs) {
		w.pendingRegs = append(w.pendingRegs, 0)
	}
	w.pendingRegs[r] += delta
}

// Finished reports whether the warp has retired.
func (w *Warp) Finished() bool { return w.finished }

// CTA is one resident thread block.
type CTA struct {
	ID        int
	Warps     []*Warp
	atBarrier int
	finished  int
}

// barrierRelease checks whether every live warp of the CTA reached the
// barrier and, if so, releases them. Finished warps do not count
// toward the barrier (as in CUDA, exited threads drop out of
// __syncthreads).
func (c *CTA) barrierRelease() bool {
	if c.atBarrier+c.finished < len(c.Warps) {
		return false
	}
	for _, w := range c.Warps {
		if w.atBarrier {
			w.atBarrier = false
			w.cur = nil // barrier consumed
		}
	}
	c.atBarrier = 0
	return true
}
