// Package gpu models the execution side of the simulated GPU: SIMT
// warps running a small kernel ISA, per-SM schedulers and load-store
// units with access coalescing, CTA (thread block) dispatch, and the
// enforcement of the two memory consistency models the paper
// evaluates (sequential consistency and release consistency).
//
// Kernels are execution-driven, not trace-driven: programs compute
// addresses and values from per-thread registers, and loads feed
// registers back, so protocol timing feeds back into the access
// stream exactly as it would in GPGPU-Sim.
package gpu

import "github.com/gtsc-sim/gtsc/internal/mem"

// WarpWidth is the SIMT width (threads per warp).
const WarpWidth = 32

// Op is a kernel instruction opcode.
type Op uint8

// Kernel ISA opcodes.
const (
	// OpComp models Cycles of non-memory work (ALU/SFU latency).
	OpComp Op = iota
	// OpLoad reads one word per active lane into register Dst.
	OpLoad
	// OpStore writes one word per active lane.
	OpStore
	// OpFence orders memory: the warp stalls until all its prior
	// accesses are performed (and, under TC-Weak, until the global
	// clock passes its maximum GWCT).
	OpFence
	// OpBarrier synchronizes all warps of the CTA.
	OpBarrier
	// OpALU applies a per-lane register transform (Exec) — the
	// register arithmetic between loads and stores.
	OpALU
	// OpAtomic is a global read-modify-write (add/min/max) performed
	// at the shared L2; the pre-update value returns into Dst.
	OpAtomic
)

// Instr is one kernel instruction, executed by all active lanes of a
// warp. Address and value functions receive the per-lane thread
// context; a nil Addr for OpLoad/OpStore panics at issue.
type Instr struct {
	Op     Op
	Cycles int // OpComp: busy cycles

	// Dst is the destination register of OpLoad/OpAtomic.
	Dst int
	// Atom is OpAtomic's operation kind.
	Atom mem.AtomicOp
	// Addr yields the lane's byte address; ok=false deactivates the
	// lane for this instruction (divergence).
	Addr func(t *Thread) (addr mem.Addr, ok bool)
	// Val yields the lane's store value for OpStore.
	Val func(t *Thread) uint32
	// Exec is OpALU's per-lane register transform.
	Exec func(t *Thread)
	// SrcRegs lists registers Addr/Val/Exec read; under RC the
	// scoreboard holds the instruction until in-flight loads to them
	// complete.
	SrcRegs []int
}

// Comp returns a compute instruction burning n cycles.
func Comp(n int) *Instr { return &Instr{Op: OpComp, Cycles: n} }

// Fence returns a memory fence.
func Fence() *Instr { return &Instr{Op: OpFence} }

// Barrier returns a CTA-wide barrier.
func Barrier() *Instr { return &Instr{Op: OpBarrier} }

// Load returns a load of addr(t) into dst for every active lane.
func Load(dst int, addr func(t *Thread) (mem.Addr, bool), srcRegs ...int) *Instr {
	return &Instr{Op: OpLoad, Dst: dst, Addr: addr, SrcRegs: srcRegs}
}

// Store returns a store of val(t) to addr(t) for every active lane.
func Store(addr func(t *Thread) (mem.Addr, bool), val func(t *Thread) uint32, srcRegs ...int) *Instr {
	return &Instr{Op: OpStore, Addr: addr, Val: val, SrcRegs: srcRegs}
}

// ALU returns a single-cycle per-lane register transform.
func ALU(exec func(t *Thread), srcRegs ...int) *Instr {
	return &Instr{Op: OpALU, Cycles: 1, Exec: exec, SrcRegs: srcRegs}
}

// Atomic returns a global read-modify-write: every active lane applies
// op with operand val(t) to addr(t) and receives the pre-update value
// in dst. Same-word lanes are warp-aggregated: the memory result is
// the combined update, and for AtomAdd each lane's return value
// includes the preceding active lanes' operands (hardware-equivalent
// per-lane results).
func Atomic(op mem.AtomicOp, dst int, addr func(t *Thread) (mem.Addr, bool), val func(t *Thread) uint32, srcRegs ...int) *Instr {
	return &Instr{Op: OpAtomic, Atom: op, Dst: dst, Addr: addr, Val: val, SrcRegs: srcRegs}
}

// Thread is the per-lane SIMT context.
type Thread struct {
	CTA      int // global CTA id
	Warp     int // warp index within the CTA
	Lane     int // 0..WarpWidth-1
	TIDInCTA int // thread index within the CTA
	GTID     int // global thread id across the grid
	Regs     []uint32
}

// Program generates a warp's instruction stream. Next returns the next
// instruction; ready=false means the program cannot decide yet (it
// branches on a register whose load is still in flight) and the SM
// retries next cycle. (nil, true) ends the warp.
//
// A ready=false return must be side-effect-free and a pure function of
// the warp's own architectural state (typically RegsReady), so that
// readiness can only flip when one of the warp's in-flight accesses
// completes. The quiescence machinery relies on this to treat a
// fetch-stalled warp as inert until its next completion (see
// Warp.fetchStalled); a Program that polls anything else would break
// cycle-skipping bit-identity.
//
// Programs may keep per-warp state (loop counters, traversal
// frontiers); each warp receives its own Program instance.
type Program interface {
	Next(w *Warp) (instr *Instr, ready bool)
}

// Kernel describes one grid launch.
type Kernel struct {
	Name        string
	CTAs        int // number of thread blocks in the grid
	WarpsPerCTA int
	Regs        int // registers per thread
	// MaxCTAsPerSM caps resident CTAs per SM (occupancy); 0 = only
	// the warp-context limit applies.
	MaxCTAsPerSM int

	// NeedsCoherence marks kernels that communicate between CTAs
	// through global memory (the paper's first benchmark set); they
	// are only functionally correct under a coherent configuration.
	NeedsCoherence bool

	// Init populates the backing store with the kernel's input data.
	Init func(store *mem.Store)

	// ProgramFor builds the instruction stream of one warp.
	ProgramFor func(w *Warp) Program
}

// seqProgram replays a fixed instruction slice.
type seqProgram struct {
	instrs []*Instr
	pc     int
}

// Seq returns a Program that executes instrs once, in order.
func Seq(instrs ...*Instr) Program { return &seqProgram{instrs: instrs} }

// Next implements Program.
func (p *seqProgram) Next(w *Warp) (*Instr, bool) {
	if p.pc >= len(p.instrs) {
		return nil, true
	}
	i := p.instrs[p.pc]
	p.pc++
	return i, true
}

// FuncProgram adapts a closure to the Program interface.
type FuncProgram func(w *Warp) (*Instr, bool)

// Next implements Program.
func (f FuncProgram) Next(w *Warp) (*Instr, bool) { return f(w) }

// LoopProgram runs Iters iterations, asking Body for the instruction
// slice of each iteration (data-independent loop bounds).
type LoopProgram struct {
	Iters int
	Body  func(iter int) []*Instr

	iter int
	cur  []*Instr
	pc   int
}

// Next implements Program.
func (p *LoopProgram) Next(w *Warp) (*Instr, bool) {
	for p.pc >= len(p.cur) {
		if p.iter >= p.Iters {
			return nil, true
		}
		p.cur = p.Body(p.iter)
		p.pc = 0
		p.iter++
	}
	i := p.cur[p.pc]
	p.pc++
	return i, true
}
