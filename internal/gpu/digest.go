package gpu

import (
	"fmt"
	"io"
)

// DigestState writes a canonical, process-independent rendering of the
// SM: scheduler cursors, every resident warp's execution state
// (including per-thread registers and the RC scoreboard), and the LDST
// unit's in-flight coalesced accesses. Program closures and the
// fetched instruction's address/value funcs cannot be rendered;
// instead the fetched instruction's value fields pin the fetch
// position, and the registers pin everything the program has done —
// deterministic replay reproduces the closures themselves.
func (s *SM) DigestState(w io.Writer) {
	last := -1
	if s.lastIssued != nil {
		last = s.lastIssued.ID
	}
	fmt.Fprintf(w, "sm[%d] now=%d live=%d ctas=%d rr=%d last=%d free=%d\n",
		s.id, s.now, s.liveWarps, s.residentCTAs, s.rr, last, s.freeIDs)
	if s.disp != nil {
		fmt.Fprintf(w, "disp next=%d\n", s.disp.nextCTA)
	}
	for _, wp := range s.warps {
		wp.digestInto(w)
	}
	for _, job := range s.ldst {
		fmt.Fprintf(w, "ldst wp=%d op=%d next=%d\n", job.warp.ID, job.instr.Op, job.next)
		for _, acc := range job.accs {
			fmt.Fprintf(w, "acc %#x m=%#x n=%d %x\n",
				uint64(acc.block), uint32(acc.mask), len(acc.lanes), acc.data.Words)
		}
	}
	fmt.Fprintf(w, "smstats %+v\n", s.stats)
}

func (wp *Warp) digestInto(w io.Writer) {
	fmt.Fprintf(w, "warp %d cta=%d/%d fin=%t bar=%t busy=%d acc=%d st=%d gwct=%d disp=%t regs=%d\n",
		wp.ID, wp.CTA.ID, wp.InCTA, wp.finished, wp.atBarrier, wp.busyUntil,
		wp.pendingAcc, wp.pendingStores, wp.gwct, wp.dispatching, wp.pendingRegs)
	if wp.cur != nil {
		fmt.Fprintf(w, "cur op=%d cyc=%d dst=%d atom=%d src=%d\n",
			wp.cur.Op, wp.cur.Cycles, wp.cur.Dst, wp.cur.Atom, wp.cur.SrcRegs)
	}
	if wp.finished {
		return
	}
	for _, t := range wp.Threads {
		if t == nil {
			continue
		}
		fmt.Fprintf(w, "t%d %x\n", t.Lane, t.Regs)
	}
}
