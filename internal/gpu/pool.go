package gpu

import (
	"github.com/gtsc-sim/gtsc/internal/coherence"
	"github.com/gtsc-sim/gtsc/internal/mem"
)

// accGroup owns every allocation of one memory instruction's trip
// through the LDST unit: the coalesced accesses, their shared
// lane-target backing, the request records handed to the L1, and the
// memJob that streams them. Groups are pooled per SM and recycled once
// the instruction has fully dispatched AND every access has completed,
// so steady-state memory issue is allocation-free.
//
// Recycle safety: a group's arrays are referenced by (a) the memJob
// while accesses are still streaming and (b) each access's completion
// record until its Done callback has run. live counts both — one per
// access plus one for the streaming job — and only the final release
// returns the group to the pool. Controllers never use a *Request or a
// Completion.Data after Done returns (that is part of the coherence
// contract), so nothing can observe a recycled group. The pool itself
// is owned by the SM: it is touched during the SM compute phase (issue
// and synchronous-hit completions, on the SM's tick goroutine) and
// during the hierarchy phase (asynchronous completions, on the master
// goroutine); the two-phase tick's barrier orders those accesses, so
// no lock is needed.
type accGroup struct {
	sm    *SM
	job   memJob
	accs  []coalesced
	out   []*coalesced
	lanes []laneTarget
	recs  []*reqRec
	live  int
}

// reqRec is one access's pooled request record: the Request handed to
// the L1 plus the completion context its Done callback needs. done is
// bound to complete once, when the record is created, so re-dispatch
// costs no closure allocation.
type reqRec struct {
	group *accGroup
	req   coherence.Request
	done  func(coherence.Completion)

	w     *Warp
	lanes []laneTarget
	dst   int
	op    Op
	atom  mem.AtomicOp
}

// getGroup pops a recycled group or builds a fresh one.
func (s *SM) getGroup() *accGroup {
	if n := len(s.groupPool); n > 0 {
		g := s.groupPool[n-1]
		s.groupPool = s.groupPool[:n-1]
		return g
	}
	return &accGroup{sm: s}
}

// putGroup clears the group's per-instruction references (so a pooled
// group never pins a retired warp's memory) and returns it to the
// pool. The coalesced array itself holds no foreign pointers — its
// lane lists alias the group's own backing — so it needs no clearing.
func (g *accGroup) putGroup() {
	for _, r := range g.recs {
		r.w = nil
		r.lanes = nil
		r.req = coherence.Request{}
	}
	g.job = memJob{}
	s := g.sm
	s.groupPool = append(s.groupPool, g)
}

// release drops one reference (a completed access or the fully
// dispatched job) and recycles the group at zero.
func (g *accGroup) release() {
	g.live--
	if g.live == 0 {
		g.putGroup()
	}
}

// rec returns the i-th request record, growing the stable pointer list
// on first use. Records are allocated once per slot and keep their
// prebound Done closure across recycles.
func (g *accGroup) rec(i int) *reqRec {
	for len(g.recs) <= i {
		r := &reqRec{group: g}
		r.done = r.complete
		g.recs = append(g.recs, r)
	}
	return g.recs[i]
}

// complete is the Done callback for every pooled access; it reproduces
// exactly the per-op completion the LDST unit used to install as a
// fresh closure per dispatch: scatter loaded words (with the AtomAdd
// prefix reconstruction for atomics), release the warp's trackers,
// fold in the GWCT, and bump the SM's completion counter.
func (r *reqRec) complete(c coherence.Completion) {
	w := r.w
	s := r.group.sm
	switch r.op {
	case OpAtomic:
		for _, lt := range r.lanes {
			old := c.Data.Words[lt.word]
			if r.atom == mem.AtomAdd {
				old += lt.prefix
			}
			w.Threads[lt.lane].Regs[r.dst] = old
		}
		w.pendingAcc--
		w.addPendingReg(r.dst, -1)
		if c.GWCT > w.gwct {
			w.gwct = c.GWCT
		}
	case OpStore:
		w.pendingStores--
		if c.GWCT > w.gwct {
			w.gwct = c.GWCT
		}
	default: // OpLoad
		for _, lt := range r.lanes {
			w.Threads[lt.lane].Regs[r.dst] = c.Data.Words[lt.word]
		}
		w.pendingAcc--
		w.addPendingReg(r.dst, -1)
	}
	s.noteCompletion(w)
	r.group.release()
}
